GO ?= go

.PHONY: build test race vet ci bench bench-p1 bench-ps bench-smoke bench-g1 fuzz-smoke chaos-soak metrics-smoke difftest difftest-soak multinode-smoke failover-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# go vet plus scrubvet, the project's own seven analyzers (hot-path
# allocation freedom, pooled-memory retention, atomic/guarded field
# discipline, metric naming, wire-codec symmetry/exhaustiveness,
# lock-order and lock-leak checking, goroutine lifecycle). The passes
# run concurrently over one shared type-checked load; `-seq` restores
# sequential execution, `-json` emits machine-readable findings.
# See DESIGN.md §12 for the annotation grammar.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/scrubvet ./...

ci:
	./scripts/ci.sh

# Full evaluation sweep (writes BENCH_P1.json alongside the tables).
bench:
	$(GO) run ./cmd/benchrunner

# Host-overhead sweep only: the hot-path perf gate tracked across PRs.
bench-p1:
	$(GO) run ./cmd/benchrunner -only P1

# Query-scale sweep only: shared-index dispatch at up to 256 concurrent
# queries, overlap vs distinct predicate mixes (writes BENCH_P2.json).
bench-ps:
	$(GO) run ./cmd/benchrunner -only PS -p1json ''

# Tiny PS sweep asserting the BENCH_P2.json pipeline works end to end;
# writes to a scratch file so the committed full-scale sweep is never
# clobbered by a smoke pass.
bench-smoke:
	@tmp=$$(mktemp) && \
	$(GO) run ./cmd/benchrunner -only PS -quick -p1json '' -p2json "$$tmp" >/dev/null && \
	test -s "$$tmp" && rm -f "$$tmp" && echo "bench-smoke: BENCH_P2 pipeline OK"

# Governor comparison: the same expensive query unbounded vs budgeted
# (writes BENCH_G1.json).
bench-g1:
	$(GO) run ./cmd/benchrunner -only G1

# Boot scrubcentral + scrubd with -metrics, scrape both /metrics
# endpoints, and fail on missing or duplicate series (plus a pprof probe).
metrics-smoke:
	$(GO) run ./scripts/metricssmoke

# Short coverage-guided fuzz pass over the two surfaces that parse
# untrusted input: the transport frame decoder (arbitrary network bytes)
# and the query-language parser (arbitrary operator-typed text).
fuzz-smoke:
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzDecode -fuzztime=5s
	$(GO) test ./internal/transport -run='^$$' -fuzz=FuzzRecvFrame -fuzztime=5s
	$(GO) test ./internal/ql -run='^$$' -fuzz=FuzzParse -fuzztime=5s
	$(GO) test ./internal/replay -run='^$$' -fuzz=FuzzDecodeChunk -fuzztime=5s

# Fixed-seed chaos soak (quick mode) under the race detector.
chaos-soak:
	$(GO) run -race ./cmd/benchrunner -only C1 -quick -p1json ''

# Differential-oracle sweep: 200 seeded cluster simulations (two full
# family × shards × mode coverage cycles) cross-checking Engine,
# ShardedEngine at 1–8 shards, the coordinator + 2/4-shard multiprocess
# topology over the pipe transport, and the exact oracle, under the
# race detector. Every failure prints its exact replay command
# (DESIGN.md §13, §16).
difftest:
	$(GO) test -race ./internal/difftest -run 'TestDifferentialSweep|TestRegressionSeeds' -difftest.seeds=200

# Long soak: ~21 coverage cycles of the same harness.
difftest-soak:
	$(GO) test -race ./internal/difftest -run TestDifferentialSweep -difftest.seeds=2000 -timeout 30m

# Distributed deployment smoke: coordinator + 2 shard processes (one
# static, one hello-joined) + 3 host agents routing by shard map, full
# wire protocol on loopback, under the race detector (DESIGN.md §16).
multinode-smoke:
	$(GO) test -race -run TestMultinodeSmoke ./internal/server

# Coordinator HA smoke: replicating leader + warm standby + 2 shard
# processes + 2 host agents on loopback, kill -9 the leader mid-query,
# require the standby to promote, adopt the query and keep closing
# windows. All children built with -race (DESIGN.md §16).
failover-smoke:
	$(GO) run ./scripts/failoversmoke
