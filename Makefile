GO ?= go

.PHONY: build test race vet ci bench bench-p1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

ci:
	./scripts/ci.sh

# Full evaluation sweep (writes BENCH_P1.json alongside the tables).
bench:
	$(GO) run ./cmd/benchrunner

# Host-overhead sweep only: the hot-path perf gate tracked across PRs.
bench-p1:
	$(GO) run ./cmd/benchrunner -only P1
