// Quickstart: the smallest complete Scrub setup.
//
//  1. Define an event type from a tagged Go struct (the paper's Figure-1
//     annotation model).
//  2. Assemble a single-process cluster: three application hosts, a
//     ScrubCentral, and a query server.
//  3. Log events from the "application" and run a windowed, grouped
//     query over them — aggregation happens centrally, never on hosts.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"scrub/internal/core"
	"scrub/internal/event"
)

// Checkout is the application's event: one per purchase attempt. Only
// scrub-tagged fields become queryable.
type Checkout struct {
	Store   string  `scrub:"store"`
	Amount  float64 `scrub:"amount"`
	Success bool    `scrub:"success"`
	Items   int64   `scrub:"items"`
}

func main() {
	// 1. Event type definition and registration.
	schema, err := event.SchemaOf("checkout", Checkout{})
	if err != nil {
		log.Fatal(err)
	}
	catalog := event.NewCatalog()
	catalog.MustRegister(schema)

	// 2. A three-host cluster ("web" service) with Scrub embedded.
	cluster, err := core.NewLocalCluster(core.LocalConfig{
		Catalog: catalog,
		Hosts: []core.HostSpec{
			{Name: "web-1", Service: "WebServers", DC: "DC1"},
			{Name: "web-2", Service: "WebServers", DC: "DC1"},
			{Name: "web-3", Service: "WebServers", DC: "DC1"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 3. A troubleshooting query: revenue and failure counts per store in
	// 2-second windows, only for carts above $5.
	stream, err := cluster.Query(`
		select checkout.store, count(*), sum(checkout.amount) as revenue
		from checkout
		where checkout.amount > 5.0
		group by checkout.store
		window 2s duration 10s
		@[Service in WebServers]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %d accepted on %d hosts; columns: %v\n",
		stream.Info.ID, stream.Info.SampledHosts, stream.Info.Columns)

	// The "application": each host logs checkouts.
	reqIDs := event.NewRequestIDGenerator(1)
	stores := []string{"sf", "nyc", "berlin"}
	go func() {
		for i := 0; i < 600; i++ {
			hostName := fmt.Sprintf("web-%d", i%3+1)
			agent, _ := cluster.Agent(hostName)
			ev, err := event.Marshal(schema, reqIDs.Next(), time.Now(), Checkout{
				Store:   stores[i%len(stores)],
				Amount:  3 + float64(i%20),
				Success: i%7 != 0,
				Items:   int64(i%4 + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			agent.Log(ev)
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Stream result windows until the query span (10s) expires.
	for rw := range stream.Windows {
		fmt.Printf("window [%s, %s): %d tuples from %d hosts\n",
			time.Unix(0, rw.WindowStart).Format("15:04:05"),
			time.Unix(0, rw.WindowEnd).Format("15:04:05"),
			rw.Stats.TuplesIn, rw.Stats.HostsReporting)
		for _, row := range rw.Rows {
			fmt.Printf("  store=%-8s checkouts=%-4s revenue=$%s\n",
				row[0], row[1], row[2])
		}
	}
	stats := stream.Final()
	fmt.Printf("query finished: %d windows, %d rows, %d tuples (drops: %d)\n",
		stats.Windows, stats.Rows, stats.TuplesIn, stats.HostDrops+stats.LateDrops)
}
