// A/B testing of ad targeting models (paper §8.3): model A runs on half
// the machines, model B on the other half. Scrub queries — the paper's
// Figure 13/14 templates, parameterized by host list — compute each
// side's CPM and CTR live, in production, without touching the models.
//
// Run with:
//
//	go run ./examples/abtesting
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/core"
	"scrub/internal/workload"
)

func main() {
	// The line item whose targeting is being A/B tested.
	li := &adplatform.LineItem{ID: 7777, CampaignID: 9, AdvisoryPrice: 2.0}
	li.SetBudget(1e9)
	items := append([]*adplatform.LineItem{li}, adplatform.GenerateLineItems(40, 3)...)

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 4, NumPresentationServers: 4,
		LineItems: items,
		// Machines 0-1 run the incumbent model A; 2-3 run candidate B.
		ModelForAdServer: func(i int) adplatform.TargetingModel {
			if i < 2 {
				return adplatform.BaselineModel{}
			}
			return adplatform.ImprovedModel{}
		},
		ExternalWinRate: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: 11, NumUsers: 4000, MeanPageViewsPerMin: 4,
	}, time.Now().Add(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	gen.InstallProfiles(platform.Store)

	// Build one CPM query and two count queries per model, targeting
	// that model's machines (the paper's `@[Servers in (list)]`).
	hostList := func(model string) string {
		hosts := platform.PresentationHostsForModel(model)
		quoted := make([]string, len(hosts))
		for i, h := range hosts {
			quoted[i] = fmt.Sprintf("%q", h)
		}
		return strings.Join(quoted, ", ")
	}
	submit := func(q string) *core.Stream {
		st, err := platform.Cluster.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	type side struct {
		model             string
		cpm, imps, clicks *core.Stream
	}
	sides := []side{}
	for _, m := range []string{"A", "B"} {
		list := hostList(m)
		sides = append(sides, side{
			model: m,
			cpm: submit(fmt.Sprintf(
				`select 1000*avg(impression.cost) from impression where impression.line_item_id = 7777 window 30m duration 1h @[Servers in (%s)]`, list)),
			imps: submit(fmt.Sprintf(
				`select count(*) from impression where impression.line_item_id = 7777 window 30m duration 1h @[Servers in (%s)]`, list)),
			clicks: submit(fmt.Sprintf(
				`select count(*) from click where click.line_item_id = 7777 window 30m duration 1h @[Servers in (%s)]`, list)),
		})
	}

	n := gen.Run(4*time.Minute, func(r adplatform.BidRequest) { platform.Process(r) })
	fmt.Printf("processed %d bid requests (4 virtual minutes)\n\n", n)
	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()

	collect := func(st *core.Stream) float64 {
		_ = platform.Cluster.Cancel(st.Info.ID)
		var total float64
		seen := false
		for rw := range st.Windows {
			for _, row := range rw.Rows {
				if f, ok := row[0].AsFloat(); ok {
					total += f
					seen = true
				}
			}
		}
		if !seen {
			return 0
		}
		return total
	}
	fmt.Printf("%-6s  %-10s  %-12s  %-8s  %-8s\n", "model", "CPM ($)", "impressions", "clicks", "CTR")
	var ctr [2]float64
	for i, s := range sides {
		cpm := collect(s.cpm)
		imps := collect(s.imps)
		clicks := collect(s.clicks)
		if imps > 0 {
			ctr[i] = clicks / imps
		}
		fmt.Printf("%-6s  %-10.2f  %-12.0f  %-8.0f  %.4f\n", s.model, cpm, imps, clicks, ctr[i])
	}
	fmt.Printf("\nCTR lift B over A: %.2fx at roughly constant CPM — ship model B.\n", ctr[1]/ctr[0])
}
