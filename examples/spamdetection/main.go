// Spam detection (paper §8.1): run the Figure-9 query against the
// simulated bidding platform with two bots hidden in a human population,
// and flag the users whose per-window request counts are inhuman.
//
// Run with:
//
//	go run ./examples/spamdetection
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/workload"
)

func main() {
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 1, NumAdServers: 2, NumPresentationServers: 2,
		LineItems: adplatform.GenerateLineItems(100, 1),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	// A human population plus two scripted bots issuing large batches of
	// fake page views.
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: 7, NumUsers: 1000, MeanPageViewsPerMin: 2,
		Bots: []workload.BotSpec{
			{UserID: 900001, BatchSize: 400, Period: 20 * time.Second},
			{UserID: 900002, BatchSize: 250, Period: 30 * time.Second, StartAt: 45 * time.Second},
		},
	}, time.Now().Add(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	gen.InstallProfiles(platform.Store)

	// The paper's Figure-9 query: per-user bid counts in 10s windows on
	// one BidServer.
	stream, err := platform.Cluster.Query(`
		select bid.user_id, count(*)
		from bid
		group by bid.user_id
		window 10s duration 1h
		@[Service in BidServers and Server = "bid-DC1-000"]`)
	if err != nil {
		log.Fatal(err)
	}

	maxPerUser := map[string]int64{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rw := range stream.Windows {
			for _, row := range rw.Rows {
				if n, _ := row[1].AsInt(); n > maxPerUser[row[0].String()] {
					maxPerUser[row[0].String()] = n
				}
			}
		}
	}()

	// Five virtual minutes of traffic, as fast as the machine allows.
	n := gen.Run(5*time.Minute, func(r adplatform.BidRequest) { platform.Process(r) })
	fmt.Printf("processed %d bid requests (5 virtual minutes)\n", n)

	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()
	if err := platform.Cluster.Cancel(stream.Info.ID); err != nil {
		log.Fatal(err)
	}
	<-done

	// Humans view a handful of pages a minute; >50 requests inside 10
	// seconds is scripted traffic.
	const threshold = 50
	type suspect struct {
		user string
		max  int64
	}
	var suspects []suspect
	histogram := map[string]int{}
	for user, max := range maxPerUser {
		switch {
		case max <= 3:
			histogram["1-3 (normal browsing)"]++
		case max <= 10:
			histogram["4-10 (busy pages)"]++
		case max <= threshold:
			histogram["11-50 (heavy)"]++
		default:
			suspects = append(suspects, suspect{user, max})
		}
	}
	fmt.Println("\npeak requests per 10s window, by user:")
	for _, k := range []string{"1-3 (normal browsing)", "4-10 (busy pages)", "11-50 (heavy)"} {
		fmt.Printf("  %-24s %d users\n", k, histogram[k])
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i].max > suspects[j].max })
	fmt.Println("\nbots detected (blacklist these):")
	for _, s := range suspects {
		fmt.Printf("  user %s: %d requests in one 10s window\n", s.user, s.max)
	}
	if len(suspects) == 0 {
		fmt.Println("  (none)")
	}
}
