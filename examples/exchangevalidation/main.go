// Validating a new ad exchange (paper §8.2): a new exchange joins the
// ecosystem mid-run. The Figure-11 query counts impressions per exchange
// in 10-second windows — sampling 10% of the PresentationServers and 10%
// of their events, because only statistical information is needed — and
// shows the newcomer ramping from zero, confirming a healthy integration
// while the platform stays in production.
//
// Run with:
//
//	go run ./examples/exchangevalidation
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/workload"
)

func main() {
	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 4, NumAdServers: 4, NumPresentationServers: 10,
		LineItems:       adplatform.GenerateLineItems(80, 5),
		ExternalWinRate: 0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	start := time.Now().Add(5 * time.Second)
	const onboardAt = 90 * time.Second // exchange 4 goes live here
	gen, err := workload.NewGenerator(workload.Spec{
		Seed: 5, NumUsers: 2500, MeanPageViewsPerMin: 4,
		Exchanges: []workload.Exchange{
			{ID: 1, Weight: 1},
			{ID: 2, Weight: 1},
			{ID: 3, Weight: 1},
			{ID: 4, Weight: 2, EnableAt: onboardAt},
		},
	}, start)
	if err != nil {
		log.Fatal(err)
	}
	gen.InstallProfiles(platform.Store)

	// Figure 11: sampled, grouped impression counts.
	stream, err := platform.Cluster.Query(`
		select impression.exchange_id, count(*)
		from impression
		group by impression.exchange_id
		window 10s duration 1h
		@[Service in PresentationServers and DC = DC1]
		sample hosts 10% events 10%`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query on %d of %d PresentationServers (host sampling)\n\n",
		stream.Info.SampledHosts, stream.Info.NumHosts)

	type point struct {
		winStart int64
		counts   map[string]int64
		bounds   map[string]float64
	}
	var series []point
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rw := range stream.Windows {
			p := point{winStart: rw.WindowStart, counts: map[string]int64{}, bounds: map[string]float64{}}
			for _, row := range rw.Rows {
				n, _ := row[1].AsInt()
				p.counts[row[0].String()] = n
				if len(rw.ErrBounds) > 1 && !math.IsNaN(rw.ErrBounds[1]) {
					p.bounds[row[0].String()] = rw.ErrBounds[1]
				}
			}
			series = append(series, p)
		}
	}()

	n := gen.Run(3*time.Minute, func(r adplatform.BidRequest) { platform.Process(r) })
	fmt.Printf("processed %d bid requests (3 virtual minutes; exchange 4 onboarded at +%s)\n\n", n, onboardAt)
	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()
	_ = platform.Cluster.Cancel(stream.Info.ID)
	<-done

	sort.Slice(series, func(i, j int) bool { return series[i].winStart < series[j].winStart })
	boundary := start.Add(onboardAt).UnixNano()
	fmt.Println("estimated impressions per 10s window (scaled up from the 10%/10% sample):")
	fmt.Printf("%-8s  %8s  %8s  %8s  %8s\n", "t (s)", "exch 1", "exch 2", "exch 3", "exch 4")
	for _, p := range series {
		marker := ""
		if p.winStart >= boundary && p.winStart-boundary < int64(10*time.Second) {
			marker = "  <- exchange 4 live"
		}
		fmt.Printf("%-8d  %8d  %8d  %8d  %8d%s\n",
			(p.winStart-start.UnixNano())/int64(time.Second),
			p.counts["1"], p.counts["2"], p.counts["3"], p.counts["4"], marker)
	}
	fmt.Println("\nexchange 4 shows zero impressions before onboarding and a healthy ramp after —")
	fmt.Println("the integration is validated in realtime, from a 1% effective sample of events.")
}
