// Line-item cannibalization (paper §8.5): line item λ has budget and
// relaxed targeting but never delivers. The §8.5 query joins auction and
// impression events on the request id, restricted to auctions where λ
// participated, and reports each winner's win count and average winning
// bid price — revealing that λ's whole advisory-price band sits below
// every winner's. Bumping λ's price fixes delivery immediately.
//
// Run with:
//
//	go run ./examples/cannibalization
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"scrub/internal/adplatform"
	"scrub/internal/workload"
)

const lambdaID = 4242

func main() {
	fmt.Println("— phase 1: λ advisory price $1.00 (the advertiser's complaint) —")
	wins, winners := run(1.00)
	printFindings(wins, winners, 1.00)

	fmt.Println("\n— phase 2: after bumping λ's advisory price to $4.00 —")
	wins, winners = run(4.00)
	printFindings(wins, winners, 4.00)
}

// run simulates the platform with λ at the given advisory price and
// returns λ's win count plus every winner's (wins, avg price).
func run(lambdaPrice float64) (int64, map[string][2]float64) {
	lambda := &adplatform.LineItem{ID: lambdaID, CampaignID: 1, AdvisoryPrice: lambdaPrice}
	lambda.SetBudget(1e9)
	rivalA := &adplatform.LineItem{ID: 4243, CampaignID: 2, AdvisoryPrice: 3.0}
	rivalA.SetBudget(1e9)
	rivalB := &adplatform.LineItem{ID: 4244, CampaignID: 2, AdvisoryPrice: 2.6}
	rivalB.SetBudget(1e9)

	platform, err := adplatform.New(adplatform.Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:       []*adplatform.LineItem{lambda, rivalA, rivalB},
		EmitAuctions:    true,
		ExternalWinRate: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	gen, err := workload.NewGenerator(workload.Spec{
		Seed: 13, NumUsers: 1000, MeanPageViewsPerMin: 3,
	}, time.Now().Add(5*time.Second))
	if err != nil {
		log.Fatal(err)
	}
	gen.InstallProfiles(platform.Store)

	// The §8.5 query: for auctions λ participated in that led to a served
	// ad, who won and at what price?
	stream, err := platform.Cluster.Query(fmt.Sprintf(`
		select auction.winner_line_item_id, count(*), avg(auction.winner_bid_price)
		from auction, impression
		where auction.line_item_ids contains %d
		group by auction.winner_line_item_id
		window 30s duration 1h @[all]`, lambdaID))
	if err != nil {
		log.Fatal(err)
	}

	winners := map[string][2]float64{} // id -> {wins, weighted price sum}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rw := range stream.Windows {
			for _, row := range rw.Rows {
				id := row[0].String()
				n, _ := row[1].AsInt()
				avg, _ := row[2].AsFloat()
				cur := winners[id]
				winners[id] = [2]float64{cur[0] + float64(n), cur[1] + avg*float64(n)}
			}
		}
	}()

	gen.Run(90*time.Second, func(r adplatform.BidRequest) { platform.Process(r) })
	platform.Cluster.FlushAgents()
	platform.Cluster.FlushAgents()
	_ = platform.Cluster.Cancel(stream.Info.ID)
	<-done

	var lambdaWins int64
	if v, ok := winners[fmt.Sprint(lambdaID)]; ok {
		lambdaWins = int64(v[0])
		delete(winners, fmt.Sprint(lambdaID))
	}
	return lambdaWins, winners
}

func printFindings(lambdaWins int64, winners map[string][2]float64, lambdaPrice float64) {
	var ids []string
	for id := range winners {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("  λ (%d) wins: %d\n", lambdaID, lambdaWins)
	for _, id := range ids {
		v := winners[id]
		fmt.Printf("  line item %s: %d wins at avg $%.2f\n", id, int64(v[0]), v[1]/v[0])
	}
	lo, hi := lambdaPrice*0.85, lambdaPrice*1.15
	fmt.Printf("  λ's possible bid band: $%.2f – $%.2f\n", lo, hi)
	if lambdaWins == 0 {
		fmt.Println("  diagnosis: every winner's average sits above λ's entire band — λ is cannibalized.")
	} else {
		fmt.Println("  λ is delivering again.")
	}
}
