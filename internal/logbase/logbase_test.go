package logbase

import (
	"testing"
	"time"

	"scrub/internal/event"
)

var bidSchema = event.MustSchema("bid",
	event.FieldDef{Name: "user_id", Kind: event.KindInt},
	event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
	event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
)

var clickSchema = event.MustSchema("click",
	event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
)

func testCatalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(bidSchema)
	cat.MustRegister(clickSchema)
	return cat
}

func bidEv(req uint64, user int64, price float64, tsSec int64) *event.Event {
	// +1ns: the Builder treats a zero timestamp as "unset, use now".
	return event.NewBuilder(bidSchema).
		SetRequestID(req).SetTimeNanos(tsSec*int64(time.Second)+1).
		Int("user_id", user).Int("exchange_id", 1).Float("bid_price", price).
		MustBuild()
}

func TestLoggerAccountsFullBytes(t *testing.T) {
	store := NewLogStore()
	l := NewLogger("h1", store)
	ev := bidEv(1, 42, 1.5, 1)
	l.Log(ev)
	events, bytes := l.Stats()
	if events != 1 {
		t.Errorf("events = %d", events)
	}
	want := len(event.AppendEvent(nil, ev))
	if bytes != uint64(want) {
		t.Errorf("bytes = %d, want %d (full event)", bytes, want)
	}
	if store.Len() != 1 || store.Bytes() != uint64(want) {
		t.Errorf("store %d events %d bytes", store.Len(), store.Bytes())
	}
}

func TestBatchQueryMatchesScrubSemantics(t *testing.T) {
	store := NewLogStore()
	l1 := NewLogger("h1", store)
	l2 := NewLogger("h2", store)
	// Window [0,10): user 42×2 on h1, 42×1 + 7×1 on h2. Window [10,20):
	// 42×1. A low-price event is filtered by the WHERE.
	l1.Log(bidEv(1, 42, 2.0, 1))
	l1.Log(bidEv(2, 42, 2.0, 2))
	l1.Log(bidEv(3, 42, 0.1, 3)) // filtered
	l2.Log(bidEv(4, 42, 2.0, 4))
	l2.Log(bidEv(5, 7, 2.0, 5))
	l2.Log(bidEv(6, 42, 2.0, 15))

	res, err := store.RunQuery(
		`select bid.user_id, count(*) from bid where bid.bid_price > 1.0 group by bid.user_id window 10s`,
		testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 6 || res.Matched != 5 {
		t.Errorf("scanned %d matched %d", res.Scanned, res.Matched)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	counts := map[string]string{}
	for _, row := range res.Windows[0].Rows {
		counts[row[0].String()] = row[1].String()
	}
	if counts["42"] != "3" || counts["7"] != "1" {
		t.Errorf("window 0 counts = %v", counts)
	}
	if len(res.Windows[1].Rows) != 1 || res.Windows[1].Rows[0][1].String() != "1" {
		t.Errorf("window 1 rows = %v", res.Windows[1].Rows)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
}

func TestBatchJoin(t *testing.T) {
	store := NewLogStore()
	l := NewLogger("h1", store)
	l.Log(bidEv(1, 42, 2.0, 1))
	l.Log(event.NewBuilder(clickSchema).
		SetRequestID(1).SetTimeNanos(2*int64(time.Second)).
		Int("line_item_id", 9).MustBuild())
	l.Log(bidEv(2, 43, 2.0, 3)) // no click

	res, err := store.RunQuery(
		`select bid.user_id, count(*) from bid, click group by bid.user_id window 10s`,
		testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 || len(res.Windows[0].Rows) != 1 {
		t.Fatalf("windows = %+v", res.Windows)
	}
	row := res.Windows[0].Rows[0]
	if row[0].String() != "42" || row[1].String() != "1" {
		t.Errorf("join row = %v", row)
	}
}

func TestBatchCrossHostWindowsMerge(t *testing.T) {
	// Host streams replay sequentially; windows must still merge across
	// hosts (regression test for watermark-induced late drops).
	store := NewLogStore()
	for h := 0; h < 5; h++ {
		l := NewLogger("host-"+string(rune('a'+h)), store)
		for i := 0; i < 10; i++ {
			l.Log(bidEv(uint64(h*100+i), 1, 2.0, int64(i)))
		}
	}
	res, err := store.RunQuery(`select count(*) from bid window 10s`, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	if got := res.Windows[0].Rows[0][0].String(); got != "50" {
		t.Errorf("count = %s, want 50 (no late drops in batch)", got)
	}
	if res.Windows[0].Stats.LateDrops != 0 {
		t.Errorf("late drops = %d", res.Windows[0].Stats.LateDrops)
	}
}

func TestBatchQueryErrors(t *testing.T) {
	store := NewLogStore()
	if _, err := store.RunQuery(`not a query`, testCatalog()); err == nil {
		t.Error("parse error expected")
	}
	if _, err := store.RunQuery(`select count(*) from ghost`, testCatalog()); err == nil {
		t.Error("analyze error expected")
	}
	// Empty store: valid query, zero windows... an ungrouped aggregate
	// still emits nothing because no window was ever opened.
	res, err := store.RunQuery(`select count(*) from bid`, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 0 || res.Scanned != 0 {
		t.Errorf("empty store result = %+v", res)
	}
}

func TestShippedBytesDwarfProjected(t *testing.T) {
	// The architectural point: full-event logging ships far more than a
	// Scrub projection would. A bid event has 3 fields (+2 system);
	// the spam query needs only user_id.
	store := NewLogStore()
	l := NewLogger("h1", store)
	for i := 0; i < 1000; i++ {
		l.Log(bidEv(uint64(i), int64(i%10), 1.5, 1))
	}
	_, full := l.Stats()
	// Approximate Scrub per-tuple cost: request id + ts + one int value.
	scrubApprox := uint64(1000 * (8 + 8 + 9))
	if full*2 < 3*scrubApprox { // ≥1.5× even for this minimal 3-field schema
		t.Errorf("full bytes %d not clearly above projected approx %d", full, scrubApprox)
	}
}
