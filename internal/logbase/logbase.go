// Package logbase implements the troubleshooting approach Scrub replaces:
// log every event in full, ship it to a central store, and analyze it
// offline in batch (paper §1, §8.1's cost contrast). It exists so the
// benchmark harness can measure exactly what the paper argues —
//
//   - hosts ship every field of every event (no selection, projection,
//     or sampling), so shipped bytes dwarf Scrub's;
//   - nothing is known until a batch scan runs over the accumulated log,
//     so answers arrive after the fact instead of online.
//
// Query semantics intentionally match Scrub's: the batch executor reuses
// the same plans and the same central engine, fed from the log instead
// of from live agents, so comparisons measure the architecture, not
// implementation skew.
package logbase

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/obs"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

// Logger is the per-host "log everything" shipper: every event is fully
// serialized (all fields — queries are not known a priori, so nothing
// can be projected away) and appended to the central store.
type Logger struct {
	hostID string
	store  *LogStore

	events obs.Counter
	bytes  obs.Counter

	mu      sync.Mutex
	scratch []byte
}

// NewLogger creates a logger for one host.
func NewLogger(hostID string, store *LogStore) *Logger {
	return &Logger{hostID: hostID, store: store}
}

// Log serializes and ships one event in full.
func (l *Logger) Log(ev *event.Event) {
	l.mu.Lock()
	l.scratch = event.AppendEvent(l.scratch[:0], ev)
	n := len(l.scratch)
	l.mu.Unlock()
	l.events.Inc()
	l.bytes.Add(uint64(n))
	l.store.append(l.hostID, ev, n)
}

// Stats returns events logged and bytes shipped by this host.
func (l *Logger) Stats() (events, bytes uint64) {
	return l.events.Value(), l.bytes.Value()
}

// LogStore is the central log warehouse: everything every host shipped,
// retained for batch analysis.
type LogStore struct {
	mu      sync.Mutex
	entries []logEntry
	bytes   uint64
	hosts   map[string]bool
}

type logEntry struct {
	host string
	ev   *event.Event
}

// NewLogStore returns an empty store.
func NewLogStore() *LogStore {
	return &LogStore{hosts: make(map[string]bool)}
}

func (s *LogStore) append(host string, ev *event.Event, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries = append(s.entries, logEntry{host: host, ev: ev})
	s.bytes += uint64(bytes)
	s.hosts[host] = true
}

// Len returns the number of stored events.
func (s *LogStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total bytes shipped into the store.
func (s *LogStore) Bytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// ScanResult is one batch query's output.
type ScanResult struct {
	Windows []transport.ResultWindow
	Scanned int           // log entries read
	Matched uint64        // events that passed selection
	Elapsed time.Duration // scan wall time — the paper's "while the query
	// is running, the problem persists" delay
}

// RunQuery executes Scrub query text over the accumulated log in batch.
// Sampling clauses are ignored (the log already paid for everything) and
// the query span is ignored (batch scans whatever was retained); target
// specs filter by originating host service only when hosts follow the
// "service-name-…" convention used by the simulator — batch systems
// typically re-derive such metadata from log paths.
func (s *LogStore) RunQuery(text string, cat *event.Catalog) (*ScanResult, error) {
	q, err := ql.Parse(text)
	if err != nil {
		return nil, err
	}
	plan, err := ql.Analyze(q, cat)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	entries := make([]logEntry, len(s.entries))
	copy(entries, s.entries)
	nHosts := len(s.hosts)
	s.mu.Unlock()
	if nHosts == 0 {
		nHosts = 1
	}

	// Reuse the central engine for identical semantics: one batch query,
	// windows flushed at the end of the scan.
	engine := central.NewEngine()
	var out ScanResult
	var mu sync.Mutex
	cp := central.FromPlan(plan, 1, 0, 0, nHosts, nHosts)
	cp.SampleEvents = 1
	// Batch replay feeds host streams sequentially, so event time jumps
	// backwards between hosts; effectively unbounded lateness keeps every
	// window open until the final flush.
	cp.Lateness = 365 * 24 * time.Hour
	err = engine.StartQuery(cp, func(rw transport.ResultWindow) {
		mu.Lock()
		out.Windows = append(out.Windows, rw)
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}

	// Compile per-type selection (Scrub runs this on hosts; batch runs
	// it in the scan — same predicate, different place).
	types := plan.TypeNames()
	preds := make(map[string]func(expr.Row) bool, len(types))
	colIdx := make(map[string][]int, len(types))
	typeIdx := make(map[string]uint8, len(types))
	for i, tn := range types {
		typeIdx[tn] = uint8(i)
		schema := plan.Schemas[i]
		if p := plan.HostPred[tn]; p != nil {
			ev, err := expr.Compile(p)
			if err != nil {
				return nil, err
			}
			preds[tn] = expr.Predicate(ev)
		}
		idx := make([]int, len(plan.Columns[tn]))
		for j, col := range plan.Columns[tn] {
			fi := schema.FieldIndex(col)
			if fi < 0 {
				return nil, fmt.Errorf("logbase: schema %s missing column %s", tn, col)
			}
			idx[j] = fi
		}
		colIdx[tn] = idx
	}

	startScan := time.Now()
	// Batch per (type, host) to amortize engine calls, preserving event
	// order within the log.
	const batchSize = 1024
	type batchKey struct {
		typeName string
		host     string
	}
	pend := make(map[batchKey][]transport.Tuple)
	flush := func(k batchKey) {
		tuples := pend[k]
		if len(tuples) == 0 {
			return
		}
		engine.HandleBatch(transport.TupleBatch{
			QueryID: 1, HostID: k.host, TypeIdx: typeIdx[k.typeName],
			Tuples: tuples,
		})
		pend[k] = nil
	}
	for _, e := range entries {
		out.Scanned++
		tn := e.ev.Schema.Name()
		idx, ok := colIdx[tn]
		if !ok {
			continue // not a type this query reads
		}
		if p := preds[tn]; p != nil && !p(expr.EventRow{Event: e.ev}) {
			continue
		}
		out.Matched++
		vals := make([]event.Value, len(idx))
		for j, fi := range idx {
			vals[j] = e.ev.At(fi)
		}
		k := batchKey{typeName: tn, host: e.host}
		pend[k] = append(pend[k], transport.Tuple{
			RequestID: e.ev.RequestID, TsNanos: e.ev.TimeNanos, Values: vals,
		})
		if len(pend[k]) >= batchSize {
			flush(k)
		}
	}
	keys := make([]batchKey, 0, len(pend))
	for k := range pend {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].typeName != keys[j].typeName {
			return keys[i].typeName < keys[j].typeName
		}
		return keys[i].host < keys[j].host
	})
	for _, k := range keys {
		flush(k)
	}
	engine.StopQuery(1)
	out.Elapsed = time.Since(startScan)

	sort.Slice(out.Windows, func(i, j int) bool {
		return out.Windows[i].WindowStart < out.Windows[j].WindowStart
	})
	return &out, nil
}
