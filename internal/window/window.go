// Package window implements the tumbling event-time windows Scrub queries
// aggregate over (paper §3.2: "currently, only tumbling windows are
// supported, but Scrub can easily be extended to allow sliding windows" —
// the Manager below is the extension point: a sliding variant would assign
// each event to multiple windows in Get).
//
// Windows close on a watermark: the maximum event time seen, minus an
// allowed lateness. Events arriving after their window closed are counted
// and dropped — accuracy traded for bounded state, the paper's standing
// rule.
package window

import (
	"fmt"
	"sort"
	"time"
)

// Assigner maps event times to tumbling-window start times.
type Assigner struct {
	size int64 // nanoseconds
}

// NewAssigner creates an assigner for the given window size.
func NewAssigner(size time.Duration) (Assigner, error) {
	if size <= 0 {
		return Assigner{}, fmt.Errorf("window: size must be positive, got %v", size)
	}
	return Assigner{size: int64(size)}, nil
}

// Size returns the window length.
func (a Assigner) Size() time.Duration { return time.Duration(a.size) }

// Start returns the start of the window containing ts (unix nanos).
// Negative timestamps floor correctly.
func (a Assigner) Start(ts int64) int64 {
	s := ts % a.size
	if s < 0 {
		s += a.size
	}
	return ts - s
}

// End returns the exclusive end of the window containing ts.
func (a Assigner) End(ts int64) int64 { return a.Start(ts) + a.size }

// Closed is a window the watermark has passed, carrying its accumulated
// state.
type Closed[S any] struct {
	Start int64 // unix nanos, inclusive
	End   int64 // unix nanos, exclusive
	State S
}

// Manager tracks open windows of per-window state S, closing them as the
// watermark advances. It is not safe for concurrent use; ScrubCentral
// drives one Manager per query from its event loop.
type Manager[S any] struct {
	assigner  Assigner
	lateness  int64
	newState  func(start, end int64) S
	open      map[int64]S
	watermark int64 // max event time observed
	hasMark   bool
	lateDrops uint64
}

// NewManager creates a window manager. newState allocates the accumulator
// for a window when its first event arrives; lateness is how far behind
// the max observed event time an event may be and still be accepted.
func NewManager[S any](size, lateness time.Duration, newState func(start, end int64) S) (*Manager[S], error) {
	a, err := NewAssigner(size)
	if err != nil {
		return nil, err
	}
	if lateness < 0 {
		return nil, fmt.Errorf("window: lateness must be non-negative, got %v", lateness)
	}
	if newState == nil {
		return nil, fmt.Errorf("window: nil state constructor")
	}
	return &Manager[S]{
		assigner: a,
		lateness: int64(lateness),
		newState: newState,
		open:     make(map[int64]S),
	}, nil
}

// Get returns the state for the window containing ts, creating it if
// needed. ok is false when the event is too late (its window already
// closed); such events are counted in LateDrops.
func (m *Manager[S]) Get(ts int64) (state S, ok bool) {
	start := m.assigner.Start(ts)
	if s, exists := m.open[start]; exists {
		return s, true
	}
	// A window can only be (re)opened if the watermark has not passed its
	// end plus lateness.
	if m.hasMark && start+int64(m.assigner.size)+m.lateness <= m.watermark {
		m.lateDrops++
		var zero S
		return zero, false
	}
	s := m.newState(start, start+m.assigner.size)
	m.open[start] = s
	return s, true
}

// Observe advances the watermark with an event time and returns any
// windows that closed as a result, ordered by start time. Call it after
// Get for each event (or on a timer with the wall clock to flush idle
// streams).
func (m *Manager[S]) Observe(ts int64) []Closed[S] {
	if !m.hasMark || ts > m.watermark {
		m.watermark = ts
		m.hasMark = true
	}
	return m.closeBefore(m.watermark - m.lateness)
}

// closeBefore pops windows whose end <= bound.
func (m *Manager[S]) closeBefore(bound int64) []Closed[S] {
	var out []Closed[S]
	for start, s := range m.open {
		end := start + m.assigner.size
		if end <= bound {
			out = append(out, Closed[S]{Start: start, End: end, State: s})
			delete(m.open, start)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Flush closes every open window regardless of the watermark, in start
// order. Used when a query's span expires.
func (m *Manager[S]) Flush() []Closed[S] {
	out := m.closeBefore(int64(1)<<62 - 1)
	return out
}

// Open returns the number of currently open windows.
func (m *Manager[S]) Open() int { return len(m.open) }

// LateDrops returns how many events were rejected as too late.
func (m *Manager[S]) LateDrops() uint64 { return m.lateDrops }

// Watermark returns the current watermark and whether any event has been
// observed.
func (m *Manager[S]) Watermark() (int64, bool) { return m.watermark, m.hasMark }

// Assigner returns the manager's window assigner.
func (m *Manager[S]) Assigner() Assigner { return m.assigner }
