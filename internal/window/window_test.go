package window

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAssignerStartEnd(t *testing.T) {
	a, err := NewAssigner(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sec := int64(time.Second)
	cases := []struct{ ts, start int64 }{
		{0, 0},
		{1, 0},
		{9 * sec, 0},
		{10 * sec, 10 * sec},
		{19*sec + 999, 10 * sec},
		{-1, -10 * sec},
		{-10 * sec, -10 * sec},
		{-11 * sec, -20 * sec},
	}
	for _, c := range cases {
		if got := a.Start(c.ts); got != c.start {
			t.Errorf("Start(%d) = %d, want %d", c.ts, got, c.start)
		}
		if got := a.End(c.ts); got != c.start+10*sec {
			t.Errorf("End(%d) = %d", c.ts, got)
		}
	}
	if a.Size() != 10*time.Second {
		t.Error("Size wrong")
	}
}

func TestAssignerValidation(t *testing.T) {
	if _, err := NewAssigner(0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewAssigner(-time.Second); err == nil {
		t.Error("negative size should fail")
	}
}

func TestAssignerInvariantQuick(t *testing.T) {
	a, _ := NewAssigner(7 * time.Millisecond)
	f := func(ts int64) bool {
		start := a.Start(ts)
		return start <= ts && ts < start+int64(a.Size()) && start%int64(a.Size()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type counter struct{ n int }

func newManager(t *testing.T, lateness time.Duration) *Manager[*counter] {
	t.Helper()
	m, err := NewManager(10*time.Second, lateness, func(start, end int64) *counter { return &counter{} })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerValidation(t *testing.T) {
	mk := func(start, end int64) *counter { return &counter{} }
	if _, err := NewManager(0, 0, mk); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := NewManager(time.Second, -1, mk); err == nil {
		t.Error("negative lateness should fail")
	}
	if _, err := NewManager[*counter](time.Second, 0, nil); err == nil {
		t.Error("nil constructor should fail")
	}
}

func TestManagerBasicFlow(t *testing.T) {
	m := newManager(t, 0)
	sec := int64(time.Second)

	s, ok := m.Get(1 * sec)
	if !ok {
		t.Fatal("first event rejected")
	}
	s.n++
	if closed := m.Observe(1 * sec); len(closed) != 0 {
		t.Errorf("premature close: %v", closed)
	}

	// Same window reuses state.
	s2, _ := m.Get(9 * sec)
	s2.n++
	if s2 != s {
		t.Error("same window should share state")
	}
	m.Observe(9 * sec)

	// Event in the next window closes the first.
	s3, _ := m.Get(12 * sec)
	s3.n++
	closed := m.Observe(12 * sec)
	if len(closed) != 1 {
		t.Fatalf("closed = %v", closed)
	}
	if closed[0].Start != 0 || closed[0].End != 10*sec || closed[0].State.n != 2 {
		t.Errorf("closed[0] = %+v (n=%d)", closed[0], closed[0].State.n)
	}
	if m.Open() != 1 {
		t.Errorf("open = %d", m.Open())
	}
}

func TestManagerLateEvents(t *testing.T) {
	m := newManager(t, 0)
	sec := int64(time.Second)
	m.Get(5 * sec)
	m.Observe(5 * sec)
	m.Get(25 * sec)
	m.Observe(25 * sec) // closes [0,10s)

	// An event for the closed window is rejected and counted.
	if _, ok := m.Get(7 * sec); ok {
		t.Error("late event accepted into closed window")
	}
	if m.LateDrops() != 1 {
		t.Errorf("LateDrops = %d", m.LateDrops())
	}
}

func TestManagerLatenessGrace(t *testing.T) {
	m := newManager(t, 5*time.Second)
	sec := int64(time.Second)
	m.Get(5 * sec)
	m.Observe(5 * sec)

	// Watermark 12s: window [0,10s) not closed yet (needs 10s+5s).
	m.Get(12 * sec)
	if closed := m.Observe(12 * sec); len(closed) != 0 {
		t.Errorf("closed too early: %v", closed)
	}
	// Late event within the grace period is accepted.
	if _, ok := m.Get(8 * sec); !ok {
		t.Error("in-grace late event rejected")
	}
	// Watermark 15s closes [0,10s).
	closed := m.Observe(15 * sec)
	if len(closed) != 1 || closed[0].Start != 0 {
		t.Errorf("closed = %v", closed)
	}
}

func TestManagerWatermarkMonotonic(t *testing.T) {
	m := newManager(t, 0)
	sec := int64(time.Second)
	m.Observe(20 * sec)
	m.Observe(5 * sec) // out-of-order observation must not regress
	if w, ok := m.Watermark(); !ok || w != 20*sec {
		t.Errorf("watermark = %d, %v", w, ok)
	}
}

func TestManagerMultipleWindowsCloseInOrder(t *testing.T) {
	m := newManager(t, 0)
	sec := int64(time.Second)
	for _, ts := range []int64{5, 15, 25, 35} {
		s, ok := m.Get(ts * sec)
		if !ok {
			t.Fatalf("event at %ds rejected", ts)
		}
		s.n++
	}
	closed := m.Observe(100 * sec)
	if len(closed) != 4 {
		t.Fatalf("closed %d windows", len(closed))
	}
	for i := 1; i < len(closed); i++ {
		if closed[i].Start <= closed[i-1].Start {
			t.Error("closed windows out of order")
		}
	}
}

func TestManagerFlush(t *testing.T) {
	m := newManager(t, 0)
	sec := int64(time.Second)
	s, _ := m.Get(5 * sec)
	s.n = 42
	m.Get(15 * sec)
	closed := m.Flush()
	if len(closed) != 2 || m.Open() != 0 {
		t.Fatalf("Flush closed %d, open %d", len(closed), m.Open())
	}
	if closed[0].State.n != 42 {
		t.Error("flush lost state")
	}
	// Flush of empty manager.
	if closed := m.Flush(); len(closed) != 0 {
		t.Errorf("second flush = %v", closed)
	}
}

func TestManagerNoEventsNoWatermark(t *testing.T) {
	m := newManager(t, 0)
	if _, ok := m.Watermark(); ok {
		t.Error("empty manager should have no watermark")
	}
	// Get before any Observe works (no watermark to compare against).
	if _, ok := m.Get(-1000); !ok {
		t.Error("first Get should always succeed")
	}
}

func BenchmarkManagerGetObserve(b *testing.B) {
	m, _ := NewManager(10*time.Second, 0, func(start, end int64) *counter { return &counter{} })
	b.ReportAllocs()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		ts += int64(time.Millisecond)
		s, ok := m.Get(ts)
		if ok {
			s.n++
		}
		m.Observe(ts)
	}
}
