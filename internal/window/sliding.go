package window

import (
	"fmt"
	"time"
)

// Sliding windows — the extension the paper explicitly leaves open
// (§3.2: "currently, only tumbling windows are supported, but Scrub can
// easily be extended to allow sliding windows"). A sliding window of
// size S and slide s assigns each event to the ⌈S/s⌉ windows whose span
// covers it; tumbling is the special case s == S.

// SlidingAssigner maps event times to the set of covering window starts.
type SlidingAssigner struct {
	size  int64
	slide int64
}

// NewSlidingAssigner validates and builds an assigner. The slide must be
// positive, no larger than the size, and divide it evenly (so windows
// align and results are deterministic).
func NewSlidingAssigner(size, slide time.Duration) (SlidingAssigner, error) {
	if size <= 0 {
		return SlidingAssigner{}, fmt.Errorf("window: size must be positive, got %v", size)
	}
	if slide <= 0 || slide > size {
		return SlidingAssigner{}, fmt.Errorf("window: slide must be in (0, size], got %v for size %v", slide, size)
	}
	if int64(size)%int64(slide) != 0 {
		return SlidingAssigner{}, fmt.Errorf("window: slide %v must divide size %v", slide, size)
	}
	return SlidingAssigner{size: int64(size), slide: int64(slide)}, nil
}

// Size returns the window length.
func (a SlidingAssigner) Size() time.Duration { return time.Duration(a.size) }

// Slide returns the slide interval.
func (a SlidingAssigner) Slide() time.Duration { return time.Duration(a.slide) }

// Count returns how many windows cover each event.
func (a SlidingAssigner) Count() int { return int(a.size / a.slide) }

// Starts appends the start times of every window containing ts, in
// ascending order.
func (a SlidingAssigner) Starts(ts int64, dst []int64) []int64 {
	// Latest window start covering ts.
	latest := ts - (ts % a.slide)
	if ts%a.slide < 0 { // floor for negative timestamps
		latest -= a.slide
	}
	earliest := latest - a.size + a.slide
	for s := earliest; s <= latest; s += a.slide {
		dst = append(dst, s)
	}
	return dst
}

// SlidingManager tracks open sliding windows of per-window state S,
// closing them as the watermark advances. Semantics mirror Manager; each
// event contributes to every covering window.
type SlidingManager[S any] struct {
	assigner  SlidingAssigner
	lateness  int64
	newState  func(start, end int64) S
	open      map[int64]S
	watermark int64
	hasMark   bool
	lateDrops uint64
	scratch   []int64
}

// NewSlidingManager builds a manager; see NewManager for the lateness and
// constructor semantics.
func NewSlidingManager[S any](size, slide, lateness time.Duration, newState func(start, end int64) S) (*SlidingManager[S], error) {
	a, err := NewSlidingAssigner(size, slide)
	if err != nil {
		return nil, err
	}
	if lateness < 0 {
		return nil, fmt.Errorf("window: lateness must be non-negative, got %v", lateness)
	}
	if newState == nil {
		return nil, fmt.Errorf("window: nil state constructor")
	}
	return &SlidingManager[S]{
		assigner: a,
		lateness: int64(lateness),
		newState: newState,
		open:     make(map[int64]S),
	}, nil
}

// GetAll returns the states of every window covering ts, creating them as
// needed. Windows already closed by the watermark are skipped and counted
// once per event in LateDrops when every covering window is gone.
func (m *SlidingManager[S]) GetAll(ts int64) []S {
	m.scratch = m.assigner.Starts(ts, m.scratch[:0])
	out := make([]S, 0, len(m.scratch))
	for _, start := range m.scratch {
		if s, ok := m.open[start]; ok {
			out = append(out, s)
			continue
		}
		if m.hasMark && start+m.assigner.size+m.lateness <= m.watermark {
			continue // this window already closed
		}
		s := m.newState(start, start+m.assigner.size)
		m.open[start] = s
		out = append(out, s)
	}
	if len(out) == 0 {
		m.lateDrops++
	}
	return out
}

// Observe advances the watermark and returns closed windows in start
// order.
func (m *SlidingManager[S]) Observe(ts int64) []Closed[S] {
	if !m.hasMark || ts > m.watermark {
		m.watermark = ts
		m.hasMark = true
	}
	return m.closeBefore(m.watermark - m.lateness)
}

// ForceBefore closes every window ending at or before bound (wall-clock
// tick path; see Manager.ForceBefore).
func (m *SlidingManager[S]) ForceBefore(bound int64) []Closed[S] {
	if !m.hasMark || bound > m.watermark-m.lateness {
		m.watermark = bound + m.lateness
		m.hasMark = true
	}
	return m.closeBefore(bound)
}

func (m *SlidingManager[S]) closeBefore(bound int64) []Closed[S] {
	var out []Closed[S]
	for start, s := range m.open {
		end := start + m.assigner.size
		if end <= bound {
			out = append(out, Closed[S]{Start: start, End: end, State: s})
			delete(m.open, start)
		}
	}
	sortClosed(out)
	return out
}

// Flush closes every open window.
func (m *SlidingManager[S]) Flush() []Closed[S] {
	return m.closeBefore(int64(1)<<62 - 1)
}

// Open returns the number of open windows.
func (m *SlidingManager[S]) Open() int { return len(m.open) }

// LateDrops counts events whose every covering window had closed.
func (m *SlidingManager[S]) LateDrops() uint64 { return m.lateDrops }

func sortClosed[S any](cs []Closed[S]) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Start < cs[j-1].Start; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
