package window

import (
	"testing"
	"time"
)

// These tests pin the satellite audit of ForceBefore's watermark rewrite
// (`bound > watermark − lateness` ⇒ watermark = bound + lateness): once a
// window is force-closed, no later Observe or Get/GetAll interleaving may
// re-open it or cause a second emission of the same window start.

// TestForceBeforeTumblingInterleaving walks a deterministic interleaving
// of Get/Observe/ForceBefore on the tumbling manager and asserts every
// window start closes at most once and force-closed windows reject
// re-opening.
func TestForceBeforeTumblingInterleaving(t *testing.T) {
	m, err := NewManager(time.Second, 2*time.Second, func(start, end int64) *int { v := 0; return &v })
	if err != nil {
		t.Fatal(err)
	}
	sec := func(s int64) int64 { return s * int64(time.Second) }
	closed := make(map[int64]int)
	record := func(cs []Closed[*int]) {
		for _, c := range cs {
			closed[c.Start]++
		}
	}

	// Open windows [0s,1s) and [1s,2s); watermark via Observe at 1.5s
	// closes nothing (lateness 2s).
	if _, ok := m.Get(sec(0) + 1); !ok {
		t.Fatal("window 0 should open")
	}
	if _, ok := m.Get(sec(1) + 1); !ok {
		t.Fatal("window 1 should open")
	}
	record(m.Observe(sec(1) + 500_000_000))

	// Force-close everything ending at or before 2s: both windows emit.
	record(m.ForceBefore(sec(2)))
	if closed[sec(0)] != 1 || closed[sec(1)] != 1 {
		t.Fatalf("expected both windows force-closed once, got %v", closed)
	}

	// A later event inside a force-closed window must be late, not
	// re-open it — the rewritten watermark (bound+lateness) guards this.
	if _, ok := m.Get(sec(0) + 2); ok {
		t.Error("force-closed window re-opened by a late Get")
	}
	if got := m.LateDrops(); got != 1 {
		t.Errorf("late drops = %d, want 1", got)
	}

	// An Observe with an *older* event time than the rewritten watermark
	// must not regress it (or re-close anything).
	record(m.Observe(sec(1)))
	for start, n := range closed {
		if n != 1 {
			t.Errorf("window %d closed %d times", start, n)
		}
	}

	// New data beyond the forced bound still works normally.
	if _, ok := m.Get(sec(5) + 1); !ok {
		t.Error("fresh window beyond the forced bound should open")
	}
	record(m.Observe(sec(8)))
	if closed[sec(5)] != 1 {
		t.Errorf("fresh window should close once via watermark, got %v", closed)
	}

	// A second ForceBefore at an older bound is a no-op: nothing closes
	// twice, the watermark does not move backwards.
	record(m.ForceBefore(sec(2)))
	for start, n := range closed {
		if n != 1 {
			t.Errorf("after stale ForceBefore: window %d closed %d times", start, n)
		}
	}
}

// TestForceBeforeSlidingInterleaving runs the same audit on the sliding
// manager, where each event belongs to several windows and re-opening
// would double-count the overlap.
func TestForceBeforeSlidingInterleaving(t *testing.T) {
	// size 2s, slide 1s: each event covered by two windows.
	m, err := NewSlidingManager(2*time.Second, time.Second, time.Second, func(start, end int64) *int { v := 0; return &v })
	if err != nil {
		t.Fatal(err)
	}
	sec := func(s int64) int64 { return s * int64(time.Second) }
	closed := make(map[int64]int)
	record := func(cs []Closed[*int]) {
		for _, c := range cs {
			closed[c.Start]++
		}
	}

	if got := len(m.GetAll(sec(1) + 1)); got != 2 {
		t.Fatalf("event should open 2 covering windows, got %d", got)
	}
	record(m.Observe(sec(1) + 1))

	// Force-close windows ending at or before 3s: starts 0s and 1s.
	record(m.ForceBefore(sec(3)))
	if closed[sec(0)] != 1 || closed[sec(1)] != 1 {
		t.Fatalf("expected starts 0s,1s force-closed once, got %v", closed)
	}

	// A late event at 1.5s is covered by exactly the two closed windows:
	// GetAll must return none and count one late drop, not resurrect them.
	if got := len(m.GetAll(sec(1) + 500_000_000)); got != 0 {
		t.Errorf("late event re-opened %d force-closed windows", got)
	}
	if got := m.LateDrops(); got != 1 {
		t.Errorf("late drops = %d, want 1", got)
	}

	// An event at 2.5s is covered by starts 1s (closed) and 2s (open):
	// only the open window may accept it, and no late drop is counted.
	if got := len(m.GetAll(sec(2) + 500_000_000)); got != 1 {
		t.Errorf("partially-late event should reach exactly 1 window, got %d", got)
	}
	if got := m.LateDrops(); got != 1 {
		t.Errorf("late drops after partial = %d, want still 1", got)
	}

	// Older Observe must not re-close; advancing far must close each
	// remaining start exactly once.
	record(m.Observe(sec(2)))
	record(m.Observe(sec(10)))
	for start, n := range closed {
		if n != 1 {
			t.Errorf("window %d closed %d times", start, n)
		}
	}
	if m.Open() != 0 {
		t.Errorf("%d windows left open after watermark passed all", m.Open())
	}
}

// TestForceBeforeWatermarkNeverRegresses checks the rewrite rule
// directly: alternating Observe and ForceBefore in any magnitude order
// keeps the effective close bound (watermark − lateness) monotone.
func TestForceBeforeWatermarkNeverRegresses(t *testing.T) {
	m, err := NewManager(time.Second, 3*time.Second, func(start, end int64) *int { v := 0; return &v })
	if err != nil {
		t.Fatal(err)
	}
	sec := func(s int64) int64 { return s * int64(time.Second) }
	bound := func() int64 {
		wm, ok := m.Watermark()
		if !ok {
			return -1 << 62
		}
		return wm - 3*int64(time.Second)
	}
	steps := []struct {
		force bool
		ts    int64
	}{
		{false, sec(5)}, {true, sec(1)}, {true, sec(8)}, {false, sec(6)},
		{true, sec(4)}, {false, sec(20)}, {true, sec(2)},
	}
	prev := bound()
	for i, s := range steps {
		if s.force {
			m.ForceBefore(s.ts)
		} else {
			m.Observe(s.ts)
		}
		if b := bound(); b < prev {
			t.Fatalf("step %d (%+v): close bound regressed %d -> %d", i, s, prev, b)
		} else {
			prev = b
		}
	}
}
