package window

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSlidingAssignerValidation(t *testing.T) {
	cases := []struct{ size, slide time.Duration }{
		{0, time.Second},
		{time.Second, 0},
		{time.Second, -time.Second},
		{time.Second, 2 * time.Second},      // slide > size
		{10 * time.Second, 3 * time.Second}, // does not divide
	}
	for _, c := range cases {
		if _, err := NewSlidingAssigner(c.size, c.slide); err == nil {
			t.Errorf("NewSlidingAssigner(%v, %v) should fail", c.size, c.slide)
		}
	}
	a, err := NewSlidingAssigner(10*time.Second, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != 10*time.Second || a.Slide() != 5*time.Second || a.Count() != 2 {
		t.Errorf("assigner = %+v", a)
	}
}

func TestSlidingAssignerStarts(t *testing.T) {
	a, _ := NewSlidingAssigner(10*time.Second, 5*time.Second)
	sec := int64(time.Second)
	cases := []struct {
		ts     int64
		starts []int64
	}{
		{0, []int64{-5 * sec, 0}},
		{3 * sec, []int64{-5 * sec, 0}},
		{5 * sec, []int64{0, 5 * sec}},
		{7 * sec, []int64{0, 5 * sec}},
		{12 * sec, []int64{5 * sec, 10 * sec}},
		{-1, []int64{-10 * sec, -5 * sec}},
		{-6 * sec, []int64{-15 * sec, -10 * sec}},
	}
	for _, c := range cases {
		got := a.Starts(c.ts, nil)
		if !reflect.DeepEqual(got, c.starts) {
			t.Errorf("Starts(%d) = %v, want %v", c.ts, got, c.starts)
		}
	}
	// Tumbling special case matches the tumbling assigner.
	tum, _ := NewSlidingAssigner(10*time.Second, 10*time.Second)
	plain, _ := NewAssigner(10 * time.Second)
	f := func(ts int64) bool {
		got := tum.Starts(ts, nil)
		return len(got) == 1 && got[0] == plain.Start(ts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidingAssignerCoverageInvariant(t *testing.T) {
	// Every returned window covers ts; there are exactly Count of them.
	a, _ := NewSlidingAssigner(12*time.Second, 4*time.Second)
	f := func(ts int64) bool {
		starts := a.Starts(ts, nil)
		if len(starts) != a.Count() {
			return false
		}
		for i, s := range starts {
			if !(s <= ts && ts < s+int64(a.Size())) {
				return false
			}
			if s%int64(a.Slide()) != 0 {
				return false
			}
			if i > 0 && s != starts[i-1]+int64(a.Slide()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSlidingManagerBasicFlow(t *testing.T) {
	m, err := NewSlidingManager(10*time.Second, 5*time.Second, 0,
		func(start, end int64) *counter { return &counter{} })
	if err != nil {
		t.Fatal(err)
	}
	sec := int64(time.Second)
	// Event at 7s lands in windows [0,10) and [5,15).
	states := m.GetAll(7 * sec)
	if len(states) != 2 {
		t.Fatalf("GetAll returned %d states", len(states))
	}
	for _, s := range states {
		s.n++
	}
	if m.Open() != 2 {
		t.Errorf("open = %d", m.Open())
	}
	// Event at 12s: windows [5,15) and [10,20); [5,15) is shared.
	states = m.GetAll(12 * sec)
	if len(states) != 2 {
		t.Fatalf("GetAll returned %d", len(states))
	}
	for _, s := range states {
		s.n++
	}
	closed := m.Observe(12 * sec)
	if len(closed) != 1 || closed[0].Start != 0 {
		t.Fatalf("closed = %v", closed)
	}
	if closed[0].State.n != 1 {
		t.Errorf("window [0,10) count = %d, want 1", closed[0].State.n)
	}
	// Flush the rest: [5,15) saw both events; [10,20) saw one.
	rest := m.Flush()
	if len(rest) != 2 {
		t.Fatalf("flush closed %d", len(rest))
	}
	if rest[0].Start != 5*sec || rest[0].State.n != 2 {
		t.Errorf("[5,15) = %+v n=%d", rest[0], rest[0].State.n)
	}
	if rest[1].Start != 10*sec || rest[1].State.n != 1 {
		t.Errorf("[10,20) = %+v n=%d", rest[1], rest[1].State.n)
	}
}

func TestSlidingManagerLateDrops(t *testing.T) {
	m, _ := NewSlidingManager(10*time.Second, 5*time.Second, 0,
		func(start, end int64) *counter { return &counter{} })
	sec := int64(time.Second)
	m.GetAll(7 * sec)
	m.Observe(40 * sec) // closes everything through [30,40)
	if got := m.GetAll(2 * sec); len(got) != 0 {
		t.Errorf("late event opened %d windows", len(got))
	}
	if m.LateDrops() != 1 {
		t.Errorf("late drops = %d", m.LateDrops())
	}
	// Partially late: at watermark 40s with lateness 0, an event at 36s
	// fits [35,45) but not [30,40).
	if got := m.GetAll(36 * sec); len(got) != 1 {
		t.Errorf("partially-late event got %d windows, want 1", len(got))
	}
}

func TestSlidingManagerForceBefore(t *testing.T) {
	m, _ := NewSlidingManager(10*time.Second, 5*time.Second, 0,
		func(start, end int64) *counter { return &counter{} })
	sec := int64(time.Second)
	m.GetAll(7 * sec) // opens [0,10) and [5,15)
	closed := m.ForceBefore(12 * sec)
	if len(closed) != 1 || closed[0].Start != 0 {
		t.Errorf("forced = %v", closed)
	}
	if m.Open() != 1 {
		t.Errorf("open = %d", m.Open())
	}
}
