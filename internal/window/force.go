package window

// ForceBefore closes every window whose end is at or before bound,
// regardless of the event-time watermark. ScrubCentral drives this from a
// wall-clock tick so that idle event streams still emit their windows: the
// tuples are near-real-time, so processing time bounds event time closely.
func (m *Manager[S]) ForceBefore(bound int64) []Closed[S] {
	// The forced bound also acts as a watermark: events older than it are
	// late by definition.
	if !m.hasMark || bound > m.watermark-m.lateness {
		m.watermark = bound + m.lateness
		m.hasMark = true
	}
	return m.closeBefore(bound)
}
