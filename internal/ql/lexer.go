// Package ql implements the Scrub query language: lexer, recursive-descent
// parser, semantic validation against the event catalog, and planning —
// splitting a validated query into the host-side part (selection,
// projection, sampling) and the central part (join, group-by, aggregation),
// per the paper's execution model (§4).
package ql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString
	tokDuration
	tokSymbol // punctuation and operators, Text holds the spelling
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokFloat:
		return "float"
	case tokString:
		return "string"
	case tokDuration:
		return "duration"
	case tokSymbol:
		return "symbol"
	default:
		return "?"
	}
}

type token struct {
	Kind tokKind
	Text string
	Pos  int // byte offset into the query text
}

func (t token) String() string {
	if t.Kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.Text)
}

// isKeyword reports whether an identifier token equals the keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.Kind == tokIdent && strings.EqualFold(t.Text, kw)
}

func (t token) isSymbol(s string) bool {
	return t.Kind == tokSymbol && t.Text == s
}

// SyntaxError reports a lexical or grammatical error with its position.
type SyntaxError struct {
	Pos   int
	Query string
	Msg   string
}

func (e *SyntaxError) Error() string {
	line, col := 1, 1
	for i := 0; i < e.Pos && i < len(e.Query); i++ {
		if e.Query[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("ql: syntax error at line %d col %d: %s", line, col, e.Msg)
}

// lex tokenizes query text. Durations like `10s`, `5m`, `1h30m`, `250ms`
// lex as a single duration token; identifiers may not start with a digit.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	errf := func(pos int, format string, args ...any) error {
		return &SyntaxError{Pos: pos, Query: src, Msg: fmt.Sprintf(format, args...)}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++

		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			// SQL-style line comment.
			for i < len(src) && src[i] != '\n' {
				i++
			}

		case c >= '0' && c <= '9':
			start := i
			sawDot := false
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
				if src[i] == '.' {
					if sawDot {
						return nil, errf(i, "malformed number")
					}
					// A dot not followed by a digit terminates the number
					// (e.g. `1.x` is invalid anyway, but `bid.f` never
					// starts with a digit so this is just strictness).
					if i+1 >= len(src) || src[i+1] < '0' || src[i+1] > '9' {
						return nil, errf(i, "malformed number")
					}
					sawDot = true
				}
				i++
			}
			// Duration suffix: ns, us, ms, s, m, h immediately following.
			sufStart := i
			for i < len(src) && (src[i] >= 'a' && src[i] <= 'z') {
				i++
			}
			if i > sufStart {
				unit := src[sufStart:i]
				switch unit {
				case "ns", "us", "ms", "s", "m", "h":
					// Allow compound durations like 1h30m: keep consuming
					// digit+unit pairs.
					for i < len(src) && src[i] >= '0' && src[i] <= '9' {
						j := i
						for j < len(src) && src[j] >= '0' && src[j] <= '9' {
							j++
						}
						k := j
						for k < len(src) && src[k] >= 'a' && src[k] <= 'z' {
							k++
						}
						switch src[j:k] {
						case "ns", "us", "ms", "s", "m", "h":
							i = k
						default:
							return nil, errf(j, "malformed duration")
						}
					}
					toks = append(toks, token{Kind: tokDuration, Text: src[start:i], Pos: start})
					continue
				default:
					return nil, errf(sufStart, "unexpected characters %q after number", unit)
				}
			}
			kind := tokInt
			if sawDot {
				kind = tokFloat
			}
			toks = append(toks, token{Kind: kind, Text: src[start:i], Pos: start})

		case c == '\'' || c == '"':
			quote := c
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					// Full Go escape set: the AST printer renders string
					// literals with %q, which can emit any of these, and
					// every parsed query must re-parse from its rendering.
					switch e := src[i+1]; e {
					case 'a':
						sb.WriteByte('\a')
					case 'b':
						sb.WriteByte('\b')
					case 'f':
						sb.WriteByte('\f')
					case 'n':
						sb.WriteByte('\n')
					case 'r':
						sb.WriteByte('\r')
					case 't':
						sb.WriteByte('\t')
					case 'v':
						sb.WriteByte('\v')
					case '\\', '\'', '"':
						sb.WriteByte(e)
					case 'x', 'u', 'U':
						digits := map[byte]int{'x': 2, 'u': 4, 'U': 8}[e]
						if i+2+digits > len(src) {
							return nil, errf(i, "truncated escape \\%c", e)
						}
						v, err := strconv.ParseUint(src[i+2:i+2+digits], 16, 32)
						if err != nil {
							return nil, errf(i, "malformed escape \\%c", e)
						}
						if e == 'x' {
							sb.WriteByte(byte(v))
						} else {
							if v > unicode.MaxRune || (v >= 0xD800 && v <= 0xDFFF) {
								return nil, errf(i, "escape \\%c is not a valid rune", e)
							}
							sb.WriteRune(rune(v))
						}
						i += 2 + digits
						continue
					default:
						return nil, errf(i, "unknown escape \\%c", e)
					}
					i += 2
					continue
				}
				if src[i] == quote {
					closed = true
					i++
					break
				}
				sb.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, errf(start, "unterminated string")
			}
			toks = append(toks, token{Kind: tokString, Text: sb.String(), Pos: start})

		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, token{Kind: tokIdent, Text: src[start:i], Pos: start})

		default:
			start := i
			// Two-character symbols first.
			if i+1 < len(src) {
				two := src[i : i+2]
				switch two {
				case "!=", "<>", "<=", ">=":
					toks = append(toks, token{Kind: tokSymbol, Text: two, Pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '(', ')', '@', '[', ']', '.', ';', '=', '<', '>', '+', '-', '*', '/', '%':
				toks = append(toks, token{Kind: tokSymbol, Text: string(c), Pos: start})
				i++
			default:
				return nil, errf(i, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{Kind: tokEOF, Pos: len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
