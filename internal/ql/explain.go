package ql

import (
	"fmt"
	"strings"
)

// Explain renders a validated plan as text, showing exactly how the query
// splits across the deployment — which predicates and projections run on
// the hosts, and which operators run at ScrubCentral. Surfaced by
// `scrubql -explain` and used in docs and tests.
func Explain(p *Plan) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for: %s\n", p.Query.String())

	fmt.Fprintf(&sb, "host side (selection + projection + sampling only):\n")
	for i, typ := range p.TypeNames() {
		fmt.Fprintf(&sb, "  [%d] event type %q\n", i, typ)
		if pred := p.HostPred[typ]; pred != nil {
			fmt.Fprintf(&sb, "      select: %s\n", pred)
		} else {
			fmt.Fprintf(&sb, "      select: (all events)\n")
		}
		cols := p.Columns[typ]
		if len(cols) == 0 {
			fmt.Fprintf(&sb, "      project: (system fields only: request_id, ts)\n")
		} else {
			fmt.Fprintf(&sb, "      project: %s (+ request_id, ts)\n", strings.Join(cols, ", "))
		}
	}
	if p.SampleEvents < 1 {
		fmt.Fprintf(&sb, "  event sampling: %.4g%% per host\n", p.SampleEvents*100)
	}
	if p.SampleHosts < 1 {
		fmt.Fprintf(&sb, "  host sampling: %.4g%% of %s\n", p.SampleHosts*100, p.Target)
	} else {
		fmt.Fprintf(&sb, "  targets: %s\n", p.Target)
	}

	fmt.Fprintf(&sb, "central side (ScrubCentral):\n")
	if p.IsJoin() {
		names := p.TypeNames()
		fmt.Fprintf(&sb, "  join: %s ⋈ %s on request_id, within the window\n", names[0], names[1])
	}
	if p.CentralPred != nil {
		fmt.Fprintf(&sb, "  post-join filter: %s\n", p.CentralPred)
	}
	if len(p.GroupBy) > 0 {
		keys := make([]string, len(p.GroupBy))
		for i, g := range p.GroupBy {
			keys[i] = g.String()
		}
		fmt.Fprintf(&sb, "  group by: %s\n", strings.Join(keys, ", "))
	}
	for i, a := range p.Aggs {
		if a.Arg == nil {
			fmt.Fprintf(&sb, "  agg[%d]: %s\n", i, a.Spec.Kind)
		} else {
			fmt.Fprintf(&sb, "  agg[%d]: %s(%s)\n", i, a.Spec.Kind, a.Arg)
		}
	}
	if p.Having != nil {
		fmt.Fprintf(&sb, "  having: %s\n", p.Having)
	}
	if p.Slide == p.Window {
		fmt.Fprintf(&sb, "  window: tumbling %s\n", p.Window)
	} else {
		fmt.Fprintf(&sb, "  window: %s sliding every %s\n", p.Window, p.Slide)
	}
	if len(p.OrderBy) > 0 {
		keys := make([]string, len(p.OrderBy))
		for i, k := range p.OrderBy {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("%s %s", p.Select[k.Col].Label, dir)
		}
		fmt.Fprintf(&sb, "  order by: %s\n", strings.Join(keys, ", "))
	}
	if p.Limit > 0 {
		fmt.Fprintf(&sb, "  limit: %d rows per window\n", p.Limit)
	}
	fmt.Fprintf(&sb, "  span: %s\n", p.Span)
	labels := make([]string, len(p.Select))
	for i, s := range p.Select {
		labels[i] = fmt.Sprintf("%s %s", s.Label, s.Kind)
	}
	fmt.Fprintf(&sb, "  emit: %s\n", strings.Join(labels, ", "))
	return sb.String()
}
