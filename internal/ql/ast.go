package ql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"scrub/internal/expr"
)

// Default query parameters (paper §3.2: both the window and the query span
// have defaults so forgotten queries expire and windowing always applies).
const (
	DefaultWindow = 10 * time.Second
	DefaultSpan   = 5 * time.Minute
	MaxSpan       = 24 * time.Hour
)

// SelectItem is one output column: an expression and an optional alias.
type SelectItem struct {
	Expr  expr.Node
	Alias string
}

// Label returns the column header: the alias if present, otherwise the
// expression's text.
func (s SelectItem) Label() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Expr.String()
}

// TargetSpec is the parsed `@[...]` construct choosing the hosts a query
// runs on. Empty spec (or All) targets every host. Multiple criteria are
// conjunctive: `@[Service in BidServers and DC = "DC1"]` targets BidServer
// hosts in DC1.
type TargetSpec struct {
	All      bool
	Services []string // service names, ORed within the list
	Servers  []string // explicit host names, ORed within the list
	DC       string   // data-center filter
}

// IsZero reports whether no targeting was specified.
func (t TargetSpec) IsZero() bool {
	return !t.All && len(t.Services) == 0 && len(t.Servers) == 0 && t.DC == ""
}

// String renders the spec in query syntax.
func (t TargetSpec) String() string {
	if t.All || t.IsZero() {
		return "@[all]"
	}
	var parts []string
	if len(t.Services) > 0 {
		parts = append(parts, fmt.Sprintf("Service in (%s)", strings.Join(t.Services, ", ")))
	}
	if len(t.Servers) > 0 {
		parts = append(parts, fmt.Sprintf("Server in (%s)", strings.Join(t.Servers, ", ")))
	}
	if t.DC != "" {
		parts = append(parts, fmt.Sprintf("DC = %q", t.DC))
	}
	return "@[" + strings.Join(parts, " and ") + "]"
}

// Query is a parsed (not yet validated) Scrub query.
// OrderKey is one ORDER BY key: a resolved select-column index and a
// direction.
type OrderKey struct {
	Col  int // 0-based index into the select list
	Desc bool
}

type Query struct {
	Select  []SelectItem
	From    []string // event types; two entries mean an equi-join on request_id
	Where   expr.Node
	GroupBy []expr.FieldRef
	Having  expr.Node // filter over aggregate results, evaluated per group

	// OrderBy/Limit order and truncate each window's result rows at
	// ScrubCentral. OrderByRaw holds the parsed keys before validation
	// (column labels or 1-based ordinals).
	OrderByRaw []RawOrderKey
	Limit      int // 0 = no limit

	Window time.Duration // window size; 0 → DefaultWindow
	Slide  time.Duration // sliding interval; 0 → Window (tumbling)

	// Query span: the finite lifetime of the query (paper §3.2). StartAt
	// zero + StartIn zero means "start now".
	StartAt time.Time     // absolute start, if given
	StartIn time.Duration // relative start ("start +30s"), if given
	Span    time.Duration // 0 → DefaultSpan

	// Replay asks hosts with a record stream to replay this much history
	// from before the query's start through the normal pipeline before
	// going live (the REPLAY clause); 0 disables replay.
	Replay time.Duration

	Target TargetSpec

	// Sampling rates as fractions in (0,1]; 0 means unset (no sampling).
	SampleHosts  float64
	SampleEvents float64

	// Host-impact budget (the BUDGET clause); 0 means unlimited. When a
	// host exceeds the budget the governor first tightens the effective
	// event-sampling rate, then sheds the query on that host.
	BudgetCPUPct      float64 // share of one core, as a fraction in (0,1]
	BudgetBytesPerSec float64 // shipped tuple-batch bytes per second

	Raw string // original query text
}

// Budgeted reports whether the query carries a host-impact budget.
func (q *Query) Budgeted() bool { return q.BudgetCPUPct > 0 || q.BudgetBytesPerSec > 0 }

// RawOrderKey is an ORDER BY key as parsed: either a 1-based select
// ordinal or a column label, plus the direction.
type RawOrderKey struct {
	Ordinal int    // 1-based; 0 when Label is set
	Label   string // select alias or expression text
	Desc    bool
}

// IsJoin reports whether the query reads two event types.
func (q *Query) IsJoin() bool { return len(q.From) == 2 }

// String reconstructs a canonical query text (not byte-identical to the
// input; used in logs and diagnostics).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("select ")
	for i, it := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" as ")
			sb.WriteString(it.Alias)
		}
	}
	sb.WriteString(" from ")
	sb.WriteString(strings.Join(q.From, ", "))
	if q.Where != nil {
		sb.WriteString(" where ")
		sb.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" group by ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if q.Having != nil {
		sb.WriteString(" having ")
		sb.WriteString(q.Having.String())
	}
	if len(q.OrderByRaw) > 0 {
		sb.WriteString(" order by ")
		for i, k := range q.OrderByRaw {
			if i > 0 {
				sb.WriteString(", ")
			}
			if k.Ordinal > 0 {
				fmt.Fprintf(&sb, "%d", k.Ordinal)
			} else {
				sb.WriteString(k.Label)
			}
			if k.Desc {
				sb.WriteString(" desc")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sb, " limit %d", q.Limit)
	}
	if q.Window != 0 {
		fmt.Fprintf(&sb, " window %s", q.Window)
		if q.Slide != 0 && q.Slide != q.Window {
			fmt.Fprintf(&sb, " slide %s", q.Slide)
		}
	}
	if !q.StartAt.IsZero() {
		fmt.Fprintf(&sb, " start %q", q.StartAt.Format(time.RFC3339))
	} else if q.StartIn != 0 {
		fmt.Fprintf(&sb, " start +%s", q.StartIn)
	}
	if q.Span != 0 {
		fmt.Fprintf(&sb, " duration %s", q.Span)
	}
	if q.Replay != 0 {
		fmt.Fprintf(&sb, " replay %s", q.Replay)
	}
	if !q.Target.IsZero() {
		sb.WriteString(" ")
		sb.WriteString(q.Target.String())
	}
	if q.SampleHosts != 0 || q.SampleEvents != 0 {
		sb.WriteString(" sample")
		if q.SampleHosts != 0 {
			fmt.Fprintf(&sb, " hosts %s%%", formatNum(q.SampleHosts*100))
		}
		if q.SampleEvents != 0 {
			fmt.Fprintf(&sb, " events %s%%", formatNum(q.SampleEvents*100))
		}
	}
	if q.Budgeted() {
		sb.WriteString(" budget")
		if q.BudgetCPUPct != 0 {
			fmt.Fprintf(&sb, " cpu %s%%", formatNum(q.BudgetCPUPct*100))
		}
		if q.BudgetBytesPerSec != 0 {
			fmt.Fprintf(&sb, " bytes %s", formatNum(q.BudgetBytesPerSec))
		}
	}
	return sb.String()
}

// formatNum renders a float without exponent notation: %g emits strings
// like 1.048576e+06 for large budgets, which the lexer (by design)
// refuses to read back, breaking the String→Parse round-trip.
func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'f', -1, 64)
}
