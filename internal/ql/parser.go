package ql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
)

// Parse turns query text into a Query. Grammar (keywords case-insensitive;
// the optional clauses after FROM may appear in any order):
//
//	query  := SELECT items FROM types [WHERE pred] [GROUP BY fields]
//	          [HAVING pred] [ORDER BY (label|ordinal) [DESC|ASC], ...]
//	          [LIMIT n] [WINDOW dur [SLIDE dur]]
//	          [START (+dur | string | NOW)] [DURATION dur] [REPLAY dur]
//	          [@[ target ]] [SAMPLE [HOSTS n%] [EVENTS n%]]
//	          [BUDGET [CPU n%] [BYTES n]] [;]
//	target := ALL | clause (AND clause)*
//	clause := SERVICE (= name | IN (names)) | SERVER[S] (= name | IN (names))
//	        | DC = name
//
// Expressions use SQL-ish operators: and/or/not, = != <> < <= > >=, + - * /
// %, [not] in (...), like 'pat%', contains 'sub'. Aggregates COUNT(*),
// COUNT(e), SUM, AVG, MIN, MAX, TOP_K(e, k), COUNT_DISTINCT(e) appear in
// the select list only. Validation happens separately (Analyze).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Raw = src
	return q, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t token, format string, args ...any) error {
	return &SyntaxError{Pos: t.Pos, Query: p.src, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errf(p.cur(), "expected %s, got %s", strings.ToUpper(kw), p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) expectSymbol(s string) error {
	if !p.cur().isSymbol(s) {
		return p.errf(p.cur(), "expected %q, got %s", s, p.cur())
	}
	p.pos++
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.cur().isSymbol(",") {
			p.pos++
			continue
		}
		break
	}

	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != tokIdent {
			return nil, p.errf(t, "expected event type name, got %s", t)
		}
		q.From = append(q.From, t.Text)
		p.pos++
		if p.cur().isSymbol(",") {
			p.pos++
			continue
		}
		break
	}

	// Optional clauses, in any order after FROM.
	for {
		t := p.cur()
		switch {
		case t.isKeyword("where"):
			if q.Where != nil {
				return nil, p.errf(t, "duplicate WHERE")
			}
			p.pos++
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Where = w

		case t.isKeyword("group"):
			if len(q.GroupBy) > 0 {
				return nil, p.errf(t, "duplicate GROUP BY")
			}
			p.pos++
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			for {
				f, err := p.parseFieldRef()
				if err != nil {
					return nil, err
				}
				q.GroupBy = append(q.GroupBy, f)
				if p.cur().isSymbol(",") {
					p.pos++
					continue
				}
				break
			}

		case t.isKeyword("having"):
			if q.Having != nil {
				return nil, p.errf(t, "duplicate HAVING")
			}
			p.pos++
			h, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			q.Having = h

		case t.isKeyword("order"):
			if len(q.OrderByRaw) > 0 {
				return nil, p.errf(t, "duplicate ORDER BY")
			}
			p.pos++
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			for {
				var key RawOrderKey
				switch cur := p.cur(); {
				case cur.Kind == tokInt:
					n, err := strconv.Atoi(cur.Text)
					if err != nil || n < 1 {
						return nil, p.errf(cur, "ORDER BY ordinal must be a positive integer")
					}
					key.Ordinal = n
					p.pos++
				case cur.Kind == tokIdent:
					key.Label = cur.Text
					p.pos++
				default:
					return nil, p.errf(cur, "ORDER BY expects a column label or 1-based ordinal")
				}
				switch {
				case p.cur().isKeyword("desc"):
					key.Desc = true
					p.pos++
				case p.cur().isKeyword("asc"):
					p.pos++
				}
				q.OrderByRaw = append(q.OrderByRaw, key)
				if p.cur().isSymbol(",") {
					p.pos++
					continue
				}
				break
			}

		case t.isKeyword("limit"):
			if q.Limit != 0 {
				return nil, p.errf(t, "duplicate LIMIT")
			}
			p.pos++
			cur := p.cur()
			if cur.Kind != tokInt {
				return nil, p.errf(cur, "LIMIT expects a positive integer")
			}
			n, err := strconv.Atoi(cur.Text)
			if err != nil || n < 1 {
				return nil, p.errf(cur, "LIMIT expects a positive integer")
			}
			q.Limit = n
			p.pos++

		case t.isKeyword("window"):
			if q.Window != 0 {
				return nil, p.errf(t, "duplicate WINDOW")
			}
			p.pos++
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			q.Window = d
			if p.cur().isKeyword("slide") {
				p.pos++
				sd, err := p.parseDuration()
				if err != nil {
					return nil, err
				}
				q.Slide = sd
			}

		case t.isKeyword("start"):
			if !q.StartAt.IsZero() || q.StartIn != 0 {
				return nil, p.errf(t, "duplicate START")
			}
			p.pos++
			switch cur := p.cur(); {
			case cur.isSymbol("+"):
				p.pos++
				d, err := p.parseDuration()
				if err != nil {
					return nil, err
				}
				q.StartIn = d
			case cur.Kind == tokString:
				at, err := time.Parse(time.RFC3339, cur.Text)
				if err != nil {
					return nil, p.errf(cur, "bad START time %q: use RFC3339", cur.Text)
				}
				q.StartAt = at
				p.pos++
			case cur.isKeyword("now"):
				p.pos++
			default:
				return nil, p.errf(cur, "START expects +duration, an RFC3339 string, or NOW")
			}

		case t.isKeyword("duration"):
			if q.Span != 0 {
				return nil, p.errf(t, "duplicate DURATION")
			}
			p.pos++
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			q.Span = d

		case t.isKeyword("replay"):
			if q.Replay != 0 {
				return nil, p.errf(t, "duplicate REPLAY")
			}
			p.pos++
			d, err := p.parseDuration()
			if err != nil {
				return nil, err
			}
			q.Replay = d

		case t.isSymbol("@"):
			if !q.Target.IsZero() {
				return nil, p.errf(t, "duplicate target spec")
			}
			p.pos++
			spec, err := p.parseTarget()
			if err != nil {
				return nil, err
			}
			q.Target = spec

		case t.isKeyword("sample"):
			if q.SampleHosts != 0 || q.SampleEvents != 0 {
				return nil, p.errf(t, "duplicate SAMPLE")
			}
			p.pos++
			if err := p.parseSample(q); err != nil {
				return nil, err
			}

		case t.isKeyword("budget"):
			if q.Budgeted() {
				return nil, p.errf(t, "duplicate BUDGET")
			}
			p.pos++
			if err := p.parseBudget(q); err != nil {
				return nil, err
			}

		case t.isSymbol(";"):
			p.pos++
			if p.cur().Kind != tokEOF {
				return nil, p.errf(p.cur(), "unexpected input after ';'")
			}
			return q, nil

		case t.Kind == tokEOF:
			return q, nil

		default:
			return nil, p.errf(t, "unexpected %s", t)
		}
	}
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.cur().isKeyword("as") {
		p.pos++
		t := p.cur()
		if t.Kind != tokIdent {
			return SelectItem{}, p.errf(t, "expected alias after AS, got %s", t)
		}
		item.Alias = t.Text
		p.pos++
	}
	return item, nil
}

func (p *parser) parseFieldRef() (expr.FieldRef, error) {
	t := p.cur()
	if t.Kind != tokIdent {
		return expr.FieldRef{}, p.errf(t, "expected field name, got %s", t)
	}
	p.pos++
	if p.cur().isSymbol(".") {
		p.pos++
		f := p.cur()
		if f.Kind != tokIdent {
			return expr.FieldRef{}, p.errf(f, "expected field name after '.', got %s", f)
		}
		p.pos++
		return expr.FieldRef{Type: t.Text, Name: f.Text}, nil
	}
	return expr.FieldRef{Name: t.Text}, nil
}

func (p *parser) parseDuration() (time.Duration, error) {
	t := p.cur()
	switch t.Kind {
	case tokDuration:
		d, err := time.ParseDuration(t.Text)
		if err != nil {
			return 0, p.errf(t, "bad duration %q", t.Text)
		}
		p.pos++
		return d, nil
	case tokInt:
		// Bare integer means seconds.
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return 0, p.errf(t, "bad duration %q", t.Text)
		}
		p.pos++
		return time.Duration(n) * time.Second, nil
	default:
		return 0, p.errf(t, "expected a duration (like 10s, 5m), got %s", t)
	}
}

// parseTarget parses the bracketed target spec after '@'.
func (p *parser) parseTarget() (TargetSpec, error) {
	var spec TargetSpec
	if err := p.expectSymbol("["); err != nil {
		return spec, err
	}
	if p.cur().isKeyword("all") {
		p.pos++
		spec.All = true
		if err := p.expectSymbol("]"); err != nil {
			return spec, err
		}
		return spec, nil
	}
	for {
		t := p.cur()
		if t.Kind != tokIdent {
			return spec, p.errf(t, "expected target clause (Service/Server/DC), got %s", t)
		}
		key := strings.ToLower(t.Text)
		p.pos++
		switch key {
		case "service", "services":
			names, err := p.parseNameSet()
			if err != nil {
				return spec, err
			}
			spec.Services = append(spec.Services, names...)
		case "server", "servers", "host", "hosts":
			names, err := p.parseNameSet()
			if err != nil {
				return spec, err
			}
			spec.Servers = append(spec.Servers, names...)
		case "dc", "datacenter":
			if err := p.expectSymbol("="); err != nil {
				return spec, err
			}
			name, err := p.parseName()
			if err != nil {
				return spec, err
			}
			if spec.DC != "" {
				return spec, p.errf(t, "duplicate DC clause")
			}
			spec.DC = name
		default:
			return spec, p.errf(t, "unknown target clause %q (want Service, Server, or DC)", t.Text)
		}
		if p.cur().isKeyword("and") {
			p.pos++
			continue
		}
		break
	}
	if err := p.expectSymbol("]"); err != nil {
		return spec, err
	}
	return spec, nil
}

// parseNameSet parses `= name` or `in (name, name, ...)` or `in name`
// (the paper writes `Service in BidServers` without parens).
func (p *parser) parseNameSet() ([]string, error) {
	t := p.cur()
	switch {
	case t.isSymbol("="):
		p.pos++
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		return []string{n}, nil
	case t.isKeyword("in"):
		p.pos++
		if p.cur().isSymbol("(") {
			p.pos++
			var names []string
			for {
				n, err := p.parseName()
				if err != nil {
					return nil, err
				}
				names = append(names, n)
				if p.cur().isSymbol(",") {
					p.pos++
					continue
				}
				break
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return names, nil
		}
		n, err := p.parseName()
		if err != nil {
			return nil, err
		}
		return []string{n}, nil
	default:
		return nil, p.errf(t, "expected '=' or IN in target clause, got %s", t)
	}
}

func (p *parser) parseName() (string, error) {
	t := p.cur()
	if t.Kind != tokIdent && t.Kind != tokString {
		return "", p.errf(t, "expected a name, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

// parseSample parses `SAMPLE [HOSTS n%] [EVENTS n%]`; at least one clause
// is required.
func (p *parser) parseSample(q *Query) error {
	parsed := false
	for {
		t := p.cur()
		var dst *float64
		switch {
		case t.isKeyword("hosts"):
			dst = &q.SampleHosts
		case t.isKeyword("events"):
			dst = &q.SampleEvents
		default:
			if !parsed {
				return p.errf(t, "SAMPLE expects HOSTS or EVENTS")
			}
			return nil
		}
		if *dst != 0 {
			return p.errf(t, "duplicate SAMPLE %s", strings.ToUpper(t.Text))
		}
		p.pos++
		rate, err := p.parsePercent()
		if err != nil {
			return err
		}
		*dst = rate
		parsed = true
	}
}

// parseBudget parses `BUDGET [CPU n%] [BYTES n]`; at least one clause is
// required. CPU is a share of one core; BYTES is shipped bytes per second.
func (p *parser) parseBudget(q *Query) error {
	parsed := false
	for {
		t := p.cur()
		switch {
		case t.isKeyword("cpu"):
			if q.BudgetCPUPct != 0 {
				return p.errf(t, "duplicate BUDGET CPU")
			}
			p.pos++
			pct, err := p.parsePercent()
			if err != nil {
				return err
			}
			q.BudgetCPUPct = pct
		case t.isKeyword("bytes"):
			if q.BudgetBytesPerSec != 0 {
				return p.errf(t, "duplicate BUDGET BYTES")
			}
			p.pos++
			n := p.cur()
			if n.Kind != tokInt && n.Kind != tokFloat {
				return p.errf(n, "BUDGET BYTES expects a positive number (bytes per second), got %s", n)
			}
			v, err := strconv.ParseFloat(n.Text, 64)
			if err != nil || v <= 0 {
				return p.errf(n, "BUDGET BYTES expects a positive number, got %q", n.Text)
			}
			p.pos++
			q.BudgetBytesPerSec = v
		default:
			if !parsed {
				return p.errf(t, "BUDGET expects CPU or BYTES")
			}
			return nil
		}
		parsed = true
	}
}

func (p *parser) parsePercent() (float64, error) {
	t := p.cur()
	if t.Kind != tokInt && t.Kind != tokFloat {
		return 0, p.errf(t, "expected a percentage, got %s", t)
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, p.errf(t, "bad percentage %q", t.Text)
	}
	p.pos++
	if err := p.expectSymbol("%"); err != nil {
		return 0, err
	}
	if v <= 0 || v > 100 {
		return 0, p.errf(t, "percentage must be in (0, 100], got %g", v)
	}
	return v / 100, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (expr.Node, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("or") {
		p.pos++
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.cur().isKeyword("and") {
		p.pos++
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Node, error) {
	if p.cur().isKeyword("not") {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.Unary{Op: expr.OpNot, X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "!=": expr.OpNe, "<>": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseComparison() (expr.Node, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == tokSymbol {
		if op, ok := cmpOps[t.Text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.Binary{Op: op, L: l, R: r}, nil
		}
	}
	if t.isKeyword("like") || t.isKeyword("contains") {
		op := expr.OpLike
		if t.isKeyword("contains") {
			op = expr.OpContains
		}
		p.pos++
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.Binary{Op: op, L: l, R: r}, nil
	}
	negate := false
	if t.isKeyword("not") && p.toks[p.pos+1].isKeyword("in") {
		negate = true
		p.pos++
		t = p.cur()
	}
	if t.isKeyword("in") {
		p.pos++
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr.Node
		for {
			e, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.cur().isSymbol(",") {
				p.pos++
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return expr.In{X: l, List: list, Negate: negate}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Node, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op expr.Op
		switch {
		case t.isSymbol("+"):
			op = expr.OpAdd
		case t.isSymbol("-"):
			op = expr.OpSub
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (expr.Node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op expr.Op
		switch {
		case t.isSymbol("*"):
			op = expr.OpMul
		case t.isSymbol("/"):
			op = expr.OpDiv
		case t.isSymbol("%"):
			op = expr.OpMod
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (expr.Node, error) {
	if p.cur().isSymbol("-") {
		p.pos++
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals.
		if l, ok := x.(expr.Lit); ok {
			if i, ok := l.Val.AsInt(); ok {
				return expr.Lit{Val: event.Int(-i)}, nil
			}
			if f, ok := l.Val.AsFloat(); ok {
				return expr.Lit{Val: event.Float(-f)}, nil
			}
		}
		return expr.Unary{Op: expr.OpNeg, X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Node, error) {
	t := p.cur()
	switch {
	case t.Kind == tokInt:
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "bad integer %q", t.Text)
		}
		p.pos++
		return expr.Lit{Val: event.Int(n)}, nil

	case t.Kind == tokFloat:
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf(t, "bad number %q", t.Text)
		}
		p.pos++
		return expr.Lit{Val: event.Float(f)}, nil

	case t.Kind == tokString:
		p.pos++
		return expr.Lit{Val: event.Str(t.Text)}, nil

	case t.isSymbol("("):
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == tokIdent:
		switch {
		case t.isKeyword("true"):
			p.pos++
			return expr.Lit{Val: event.Bool(true)}, nil
		case t.isKeyword("false"):
			p.pos++
			return expr.Lit{Val: event.Bool(false)}, nil
		}
		// Function call?
		if p.toks[p.pos+1].isSymbol("(") {
			name := t.Text
			p.pos += 2
			call := expr.Call{Name: name}
			if p.cur().isSymbol("*") {
				p.pos++
				call.Star = true
			} else if !p.cur().isSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.cur().isSymbol(",") {
						p.pos++
						continue
					}
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		return p.parseFieldRef()

	default:
		return nil, p.errf(t, "unexpected %s in expression", t)
	}
}
