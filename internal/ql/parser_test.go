package ql

import (
	"strings"
	"testing"
	"time"

	"scrub/internal/expr"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`select x, COUNT(*) from bid where a >= 1.5 and b != 'hi' -- comment
	@[Service in BidServers] sample hosts 10% window 10s duration 1h30m`)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	if toks[len(toks)-1].Kind != tokEOF {
		t.Error("missing EOF token")
	}
	// Spot checks.
	find := func(text string) *token {
		for i := range toks {
			if toks[i].Text == text {
				return &toks[i]
			}
		}
		return nil
	}
	if tk := find(">="); tk == nil || tk.Kind != tokSymbol {
		t.Error(">= not lexed as one symbol")
	}
	if tk := find("1.5"); tk == nil || tk.Kind != tokFloat {
		t.Error("1.5 not lexed as float")
	}
	if tk := find("hi"); tk == nil || tk.Kind != tokString {
		t.Error("string not lexed")
	}
	if tk := find("10s"); tk == nil || tk.Kind != tokDuration {
		t.Error("10s not lexed as duration")
	}
	if tk := find("1h30m"); tk == nil || tk.Kind != tokDuration {
		t.Error("compound duration not lexed")
	}
	if find("comment") != nil {
		t.Error("comment leaked into tokens")
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"select 'unterminated",
		"select 1.2.3",
		"select 1x",
		"select `backtick`",
		`select "bad \q escape"`,
		"select 1.",
		"select 10q",
	}
	for _, src := range bad {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) should fail", src)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`select "a\n\t\"b\\c"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Text != "a\n\t\"b\\c" {
		t.Errorf("escaped string = %q", toks[1].Text)
	}
	// The AST printer renders string literals with %q, so the lexer must
	// accept the full Go escape set or rendered queries fail to re-parse.
	toks, err = lex(`select "\a\b\f\r\v\xdeé\U0001F600"`)
	if err != nil {
		t.Fatal(err)
	}
	if want := "\a\b\f\r\v\xdeé\U0001F600"; toks[1].Text != want {
		t.Errorf("escaped string = %q, want %q", toks[1].Text, want)
	}
	for _, bad := range []string{
		`select "\x1"`,        // truncated hex
		`select "\xzz"`,       // malformed hex
		`select "\ud800"`,     // surrogate half
		`select "\U00110000"`, // beyond MaxRune
	} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) should fail", bad)
		}
	}
}

// TestStringLiteralRoundTrip pins the fuzzer-found divergence where the
// lexer accepted a raw non-UTF-8 byte in a string literal but rejected
// the \xNN escape the printer emits for it.
func TestStringLiteralRoundTrip(t *testing.T) {
	q, err := Parse("seleCt 0 from A where'\xde'")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(q.String()); err != nil {
		t.Fatalf("rendering %q did not re-parse: %v", q.String(), err)
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("select x\nfrom bid\nwhere $")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should carry line info: %v", err)
	}
}

// --- Paper query examples (Figures 9, 11, 13, 14) ---

func TestParsePaperSpamQuery(t *testing.T) {
	// Figure 9, plus an explicit window.
	q, err := Parse(`Select bid.user_id, COUNT(*)
		from bid
		@[Service in BidServers and Server = host1]
		group by bid.user_id
		window 10s`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if f, ok := q.Select[0].Expr.(expr.FieldRef); !ok || f.Type != "bid" || f.Name != "user_id" {
		t.Errorf("select[0] = %v", q.Select[0].Expr)
	}
	if c, ok := q.Select[1].Expr.(expr.Call); !ok || !c.Star || !strings.EqualFold(c.Name, "count") {
		t.Errorf("select[1] = %v", q.Select[1].Expr)
	}
	if len(q.From) != 1 || q.From[0] != "bid" {
		t.Errorf("from = %v", q.From)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Name != "user_id" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Window != 10*time.Second {
		t.Errorf("window = %v", q.Window)
	}
	if len(q.Target.Services) != 1 || q.Target.Services[0] != "BidServers" {
		t.Errorf("target services = %v", q.Target.Services)
	}
	if len(q.Target.Servers) != 1 || q.Target.Servers[0] != "host1" {
		t.Errorf("target servers = %v", q.Target.Servers)
	}
}

func TestParsePaperSampledImpressionsQuery(t *testing.T) {
	// Figure 11 shape: impressions per exchange, 10% hosts, 10% events.
	q, err := Parse(`select impression.exchange_id, count(*)
		from impression
		group by impression.exchange_id
		@[Service in PresentationServers and DC = "DC1"]
		sample hosts 10% events 10%`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.SampleHosts != 0.1 || q.SampleEvents != 0.1 {
		t.Errorf("sampling = %g/%g", q.SampleHosts, q.SampleEvents)
	}
	if q.Target.DC != "DC1" {
		t.Errorf("DC = %q", q.Target.DC)
	}
}

func TestParsePaperCPMQuery(t *testing.T) {
	// Figure 13: 1000*AVG(impression.cost) with a server list.
	q, err := Parse(`Select 1000*AVG(impression.cost)
		from impression
		where impression.line_item_id = 7
		@[Servers in (host1, host2, host3)]`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	mul, ok := q.Select[0].Expr.(expr.Binary)
	if !ok || mul.Op != expr.OpMul {
		t.Fatalf("select[0] = %v", q.Select[0].Expr)
	}
	if _, ok := mul.R.(expr.Call); !ok {
		t.Errorf("rhs should be AVG call, got %T", mul.R)
	}
	if len(q.Target.Servers) != 3 {
		t.Errorf("servers = %v", q.Target.Servers)
	}
	if q.Where == nil {
		t.Error("where missing")
	}
}

func TestParseJoinQuery(t *testing.T) {
	q, err := Parse(`select bid.exchange_id, exclusion.reason, count(*)
		from bid, exclusion
		where bid.exchange_id = 5
		group by bid.exchange_id, exclusion.reason`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !q.IsJoin() || len(q.From) != 2 {
		t.Errorf("join not detected: %v", q.From)
	}
}

func TestParseSpanClauses(t *testing.T) {
	q, err := Parse(`select count(*) from bid start +30s duration 20m`)
	if err != nil {
		t.Fatal(err)
	}
	if q.StartIn != 30*time.Second || q.Span != 20*time.Minute {
		t.Errorf("span = %v + %v", q.StartIn, q.Span)
	}
	q, err = Parse(`select count(*) from bid start "2026-07-05T10:00:00Z" duration 60`)
	if err != nil {
		t.Fatal(err)
	}
	if q.StartAt.IsZero() || q.Span != 60*time.Second {
		t.Errorf("absolute start = %v span %v", q.StartAt, q.Span)
	}
	q, err = Parse(`select count(*) from bid start now`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.StartAt.IsZero() || q.StartIn != 0 {
		t.Error("start now should leave both zero")
	}
}

func TestParseReplay(t *testing.T) {
	q, err := Parse(`select count(*) from bid duration 20m replay 30s`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Replay != 30*time.Second {
		t.Errorf("Replay = %v, want 30s", q.Replay)
	}
	// Bare integers are seconds, like DURATION.
	q, err = Parse(`select count(*) from bid replay 45`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Replay != 45*time.Second {
		t.Errorf("Replay = %v, want 45s", q.Replay)
	}
}

func TestParseTargetVariants(t *testing.T) {
	cases := map[string]TargetSpec{
		`@[all]`:                         {All: true},
		`@[Service = AdServers]`:         {Services: []string{"AdServers"}},
		`@[Service in (A, B)]`:           {Services: []string{"A", "B"}},
		`@[Server = "h-1.sj.turn.com"]`:  {Servers: []string{"h-1.sj.turn.com"}},
		`@[hosts in (h1, h2)]`:           {Servers: []string{"h1", "h2"}},
		`@[DC = DC1]`:                    {DC: "DC1"},
		`@[Service in X and dc = "DC2"]`: {Services: []string{"X"}, DC: "DC2"},
	}
	for src, want := range cases {
		q, err := Parse("select count(*) from bid " + src)
		if err != nil {
			t.Errorf("Parse(%s): %v", src, err)
			continue
		}
		got := q.Target
		if got.All != want.All || got.DC != want.DC ||
			strings.Join(got.Services, ",") != strings.Join(want.Services, ",") ||
			strings.Join(got.Servers, ",") != strings.Join(want.Servers, ",") {
			t.Errorf("%s → %+v, want %+v", src, got, want)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := Parse(`select 1 + 2 * 3 from bid`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Select[0].Expr.String(); got != "(1 + (2 * 3))" {
		t.Errorf("precedence = %s", got)
	}
	q, err = Parse(`select (1 + 2) * 3 from bid`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Select[0].Expr.String(); got != "((1 + 2) * 3)" {
		t.Errorf("parens = %s", got)
	}
	q, err = Parse(`select a from bid where x = 1 or y = 2 and z = 3`)
	if err != nil {
		t.Fatal(err)
	}
	// AND binds tighter than OR.
	if got := q.Where.String(); got != "((x = 1) or ((y = 2) and (z = 3)))" {
		t.Errorf("bool precedence = %s", got)
	}
}

func TestParseNegativeNumbersFold(t *testing.T) {
	q, err := Parse(`select a from bid where x = -5 and y = -1.5`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Where.String(); got != "((x = -5) and (y = -1.5))" {
		t.Errorf("negatives = %s", got)
	}
}

func TestParseInLike(t *testing.T) {
	q, err := Parse(`select a from bid where city in ('sf', 'la') and name like 'bot%' and note contains 'x' and id not in (1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	for _, want := range []string{`(city in ("sf", "la"))`, `(name like "bot%")`, `(note contains "x")`, `(id not in (1, 2))`} {
		if !strings.Contains(s, want) {
			t.Errorf("where %s missing %s", s, want)
		}
	}
}

func TestParseAliases(t *testing.T) {
	q, err := Parse(`select count(*) as n, user_id as u from bid group by user_id`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Label() != "n" || q.Select[1].Label() != "u" {
		t.Errorf("aliases = %q, %q", q.Select[0].Label(), q.Select[1].Label())
	}
	// Unaliased label falls back to expression text.
	q, _ = Parse(`select count(*) from bid`)
	if q.Select[0].Label() == "" {
		t.Error("fallback label empty")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse(`select count(*) from bid;`); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
	if _, err := Parse(`select count(*) from bid; extra`); err == nil {
		t.Error("trailing garbage after ; should fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`from bid`,
		`select`,
		`select from bid`,
		`select x`,
		`select x from`,
		`select x from 123`,
		`select x from bid where`,
		`select x from bid group x`,
		`select x from bid group by`,
		`select x from bid window`,
		`select x from bid window fast`,
		`select x from bid start yesterday`,
		`select x from bid start "not-a-time"`,
		`select x from bid duration`,
		`select x from bid where a in ()`,
		`select x from bid where a in (1,)`,
		`select x from bid @[Frobnicators in (x)]`,
		`select x from bid @[Service ~ x]`,
		`select x from bid @[Service in (a]`,
		`select x from bid @[]`,
		`select x from bid @ Service`,
		`select x from bid sample`,
		`select x from bid sample hosts`,
		`select x from bid sample hosts 0%`,
		`select x from bid sample hosts 101%`,
		`select x from bid sample hosts 10`,
		`select x from bid sample hosts 10% hosts 20%`,
		`select x from bid where (a = 1`,
		`select x from bid where a = 1 where b = 2`,
		`select x from bid group by a group by b`,
		`select x from bid window 10s window 20s`,
		`select x from bid duration 5m duration 6m`,
		`select x from bid replay`,
		`select x from bid replay 30s replay 1m`,
		`select x from bid start +1s start +2s`,
		`select x from bid @[all] @[all]`,
		`select count( from bid`,
		`select x as from bid`,
		`select x from bid nonsense`,
		`select x from bid where f(`,
		`select x.y.z from bid`,
		`select x from bid @[DC = DC1 and DC = DC2]`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestQueryStringRoundTrips(t *testing.T) {
	// Canonical String() output must re-parse to an equivalent query.
	srcs := []string{
		`select bid.user_id, count(*) from bid group by bid.user_id window 10s duration 20m @[Service in BidServers] sample hosts 10% events 25%`,
		`select 1000 * avg(impression.cost) from impression where impression.line_item_id = 7`,
		`select a, b from bid, exclusion where bid.x = 1 and exclusion.y = "z"`,
		`select count(*) from bid start +5s`,
		`select count(*) from bid duration 10m replay 30s`,
	}
	for _, src := range srcs {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("canonical text not fixed-point:\n  %s\n  %s", q1.String(), q2.String())
		}
	}
}

func TestParseSlide(t *testing.T) {
	q, err := Parse(`select count(*) from bid window 10s slide 5s`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Window != 10*time.Second || q.Slide != 5*time.Second {
		t.Errorf("window/slide = %v/%v", q.Window, q.Slide)
	}
	if _, err := Parse(`select count(*) from bid window 10s slide`); err == nil {
		t.Error("slide without duration should fail")
	}
	// Canonical text round-trips.
	q2, err := Parse(q.String())
	if err != nil || q2.Slide != q.Slide {
		t.Errorf("round trip: %v, %v", q2, err)
	}
}

func TestParseHavingOrderLimit(t *testing.T) {
	q, err := Parse(`select bid.user_id, count(*) as n from bid group by bid.user_id having count(*) > 5 order by n desc limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Having == nil || !strings.Contains(q.Having.String(), "count(*) > 5") {
		t.Errorf("having = %v", q.Having)
	}
	if len(q.OrderByRaw) != 1 || q.OrderByRaw[0].Label != "n" || !q.OrderByRaw[0].Desc {
		t.Errorf("order by = %+v", q.OrderByRaw)
	}
	if q.Limit != 3 {
		t.Errorf("limit = %d", q.Limit)
	}
	// Canonical text round-trips.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.Limit != 3 || len(q2.OrderByRaw) != 1 || q2.Having == nil {
		t.Error("round trip lost clauses")
	}
	bad := []string{
		`select count(*) from bid limit 0`,
		`select count(*) from bid limit x`,
		`select count(*) from bid order by`,
		`select count(*) from bid order by -1`,
		`select count(*) from bid having`,
		`select count(*) from bid limit 1 limit 2`,
		`select count(*) from bid order by 1 order by 1`,
		`select count(*) from bid having 1=1 having 1=1`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseBudget(t *testing.T) {
	q, err := Parse(`select count(*) from bid budget cpu 2% bytes 65536`)
	if err != nil {
		t.Fatal(err)
	}
	if q.BudgetCPUPct != 0.02 || q.BudgetBytesPerSec != 65536 {
		t.Errorf("budget = %g/%g", q.BudgetCPUPct, q.BudgetBytesPerSec)
	}
	if !q.Budgeted() {
		t.Error("Budgeted() false")
	}
	// Single-dimension forms.
	q, err = Parse(`select count(*) from bid budget bytes 1024.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.BudgetCPUPct != 0 || q.BudgetBytesPerSec != 1024.5 {
		t.Errorf("bytes-only budget = %g/%g", q.BudgetCPUPct, q.BudgetBytesPerSec)
	}
	q, err = Parse(`select count(*) from bid budget cpu 0.5%`)
	if err != nil {
		t.Fatal(err)
	}
	if q.BudgetCPUPct != 0.005 {
		t.Errorf("cpu-only budget = %g", q.BudgetCPUPct)
	}
	// Composes with the other optional clauses in any order.
	q, err = Parse(`select count(*) from bid budget bytes 100 sample events 10% window 5s`)
	if err != nil {
		t.Fatal(err)
	}
	if q.BudgetBytesPerSec != 100 || q.SampleEvents != 0.1 {
		t.Errorf("budget+sample = %g/%g", q.BudgetBytesPerSec, q.SampleEvents)
	}
	// Canonical text round-trips.
	q, err = Parse(`select count(*) from bid sample events 50% budget cpu 2% bytes 4096`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.BudgetCPUPct != q.BudgetCPUPct || q2.BudgetBytesPerSec != q.BudgetBytesPerSec {
		t.Errorf("round trip lost budget: %q", q.String())
	}
	bad := []string{
		`select count(*) from bid budget`,
		`select count(*) from bid budget cpu`,
		`select count(*) from bid budget cpu 2`,
		`select count(*) from bid budget cpu 0%`,
		`select count(*) from bid budget cpu 101%`,
		`select count(*) from bid budget bytes`,
		`select count(*) from bid budget bytes 0`,
		`select count(*) from bid budget bytes -5`,
		`select count(*) from bid budget bytes x`,
		`select count(*) from bid budget cpu 1% cpu 2%`,
		`select count(*) from bid budget bytes 1 bytes 2`,
		`select count(*) from bid budget cpu 1% budget bytes 2`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
