package ql_test

import (
	"fmt"

	"scrub/internal/event"
	"scrub/internal/ql"
)

// Example shows the full front half of Scrub: declare an event type,
// parse the paper's spam query, validate it against the catalog, and
// inspect the host/central split the planner produced.
func Example() {
	catalog := event.NewCatalog()
	catalog.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))

	q, err := ql.Parse(`
		select bid.user_id, count(*)
		from bid
		where bid.exchange_id = 2
		group by bid.user_id
		window 10s duration 20m
		@[Service in BidServers]`)
	if err != nil {
		fmt.Println("parse:", err)
		return
	}
	plan, err := ql.Analyze(q, catalog)
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}

	// The host runs only selection and projection; grouping and counting
	// happen at ScrubCentral.
	fmt.Println("host predicate: ", plan.HostPred["bid"])
	fmt.Println("host projection:", plan.Columns["bid"])
	fmt.Println("group by:       ", plan.GroupBy)
	fmt.Println("aggregates:     ", len(plan.Aggs))
	// Output:
	// host predicate:  (bid.exchange_id = 2)
	// host projection: [user_id]
	// group by:        [bid.user_id]
	// aggregates:      1
}

// ExampleExplain renders a validated plan as text.
func ExampleExplain() {
	catalog := event.NewCatalog()
	catalog.MustRegister(event.MustSchema("impression",
		event.FieldDef{Name: "cost", Kind: event.KindFloat},
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
	))
	q, _ := ql.Parse(`select 1000*avg(impression.cost) as cpm from impression where impression.line_item_id = 7 window 1m duration 10m`)
	plan, _ := ql.Analyze(q, catalog)
	fmt.Print(ql.Explain(plan))
	// Output:
	// plan for: select (1000 * avg(impression.cost)) as cpm from impression where (impression.line_item_id = 7) window 1m0s duration 10m0s
	// host side (selection + projection + sampling only):
	//   [0] event type "impression"
	//       select: (impression.line_item_id = 7)
	//       project: cost (+ request_id, ts)
	//   targets: @[all]
	// central side (ScrubCentral):
	//   agg[0]: AVG(impression.cost)
	//   window: tumbling 1m0s
	//   span: 10m0s
	//   emit: cpm float
}
