package ql

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/expr"
)

// testCatalog builds the event types used across the analyzer tests,
// mirroring the Turn platform's schema (§7).
func testCatalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "city", Kind: event.KindString},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
		event.FieldDef{Name: "campaign_id", Kind: event.KindInt},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
		event.FieldDef{Name: "publisher_id", Kind: event.KindInt},
	))
	cat.MustRegister(event.MustSchema("impression",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "cost", Kind: event.KindFloat},
	))
	return cat
}

func analyze(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p, err := Analyze(q, testCatalog())
	if err != nil {
		t.Fatalf("Analyze(%q): %v", src, err)
	}
	return p
}

func analyzeErr(t *testing.T, src, want string) {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	_, err = Analyze(q, testCatalog())
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("Analyze(%q) err = %v, want contains %q", src, err, want)
	}
}

func TestAnalyzeSpamQuery(t *testing.T) {
	p := analyze(t, `select bid.user_id, count(*) from bid group by bid.user_id window 10s`)
	if !p.HasAgg || len(p.Aggs) != 1 || p.Aggs[0].Spec.Kind != agg.KindCountStar {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	if p.Window != 10*time.Second || p.Span != DefaultSpan {
		t.Errorf("window/span = %v/%v", p.Window, p.Span)
	}
	if len(p.GroupBy) != 1 || p.GroupBy[0] != (expr.FieldRef{Type: "bid", Name: "user_id"}) {
		t.Errorf("group by = %v", p.GroupBy)
	}
	// Projection: only user_id ships (count(*) needs no field).
	if !reflect.DeepEqual(p.Columns["bid"], []string{"user_id"}) {
		t.Errorf("columns = %v", p.Columns["bid"])
	}
	if p.SampleHosts != 1 || p.SampleEvents != 1 {
		t.Errorf("default sampling = %g/%g", p.SampleHosts, p.SampleEvents)
	}
	// Select item metadata.
	if p.Select[1].Kind != event.KindInt {
		t.Errorf("count kind = %v", p.Select[1].Kind)
	}
}

func TestAnalyzeCPMQuery(t *testing.T) {
	p := analyze(t, `select 1000*avg(impression.cost) as cpm from impression where impression.line_item_id = 7`)
	if len(p.Aggs) != 1 || p.Aggs[0].Spec.Kind != agg.KindAvg {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	// The avg argument must be resolved (qualified).
	arg, ok := p.Aggs[0].Arg.(expr.FieldRef)
	if !ok || arg.Type != "impression" || arg.Name != "cost" {
		t.Errorf("agg arg = %v", p.Aggs[0].Arg)
	}
	if p.Select[0].Label != "cpm" || p.Select[0].Kind != event.KindFloat {
		t.Errorf("item = %+v", p.Select[0])
	}
	// line_item_id is consumed by the host predicate, not shipped; cost is.
	if !reflect.DeepEqual(p.Columns["impression"], []string{"cost"}) {
		t.Errorf("columns = %v", p.Columns["impression"])
	}
	if p.HostPred["impression"] == nil {
		t.Error("host predicate missing")
	}
	if p.CentralPred != nil {
		t.Error("single-type query should have no central predicate")
	}
}

func TestAnalyzeJoinPredicateSplit(t *testing.T) {
	p := analyze(t, `select bid.exchange_id, exclusion.reason, count(*)
		from bid, exclusion
		where bid.exchange_id = 5 and exclusion.publisher_id = 9 and bid.campaign_id = exclusion.line_item_id and bid.bid_price > 0.5
		group by bid.exchange_id, exclusion.reason`)
	if !p.IsJoin() {
		t.Fatal("join not detected")
	}
	bp := p.HostPred["bid"]
	ep := p.HostPred["exclusion"]
	if bp == nil || ep == nil {
		t.Fatalf("host predicates missing: bid=%v exclusion=%v", bp, ep)
	}
	if !strings.Contains(bp.String(), "exchange_id = 5") || !strings.Contains(bp.String(), "bid_price > 0.5") {
		t.Errorf("bid pred = %s", bp)
	}
	if strings.Contains(bp.String(), "publisher_id") {
		t.Errorf("bid pred leaked exclusion conjunct: %s", bp)
	}
	if !strings.Contains(ep.String(), "publisher_id = 9") {
		t.Errorf("exclusion pred = %s", ep)
	}
	// Cross-type conjunct goes central.
	if p.CentralPred == nil || !strings.Contains(p.CentralPred.String(), "campaign_id = exclusion.line_item_id") {
		t.Errorf("central pred = %v", p.CentralPred)
	}
	// Columns: central-pred fields must ship; host-pred-only fields must not.
	if !reflect.DeepEqual(p.Columns["bid"], []string{"exchange_id", "campaign_id"}) {
		t.Errorf("bid columns = %v", p.Columns["bid"])
	}
	if !reflect.DeepEqual(p.Columns["exclusion"], []string{"line_item_id", "reason"}) {
		t.Errorf("exclusion columns = %v", p.Columns["exclusion"])
	}
}

func TestAnalyzeConstantConjunctGoesEverywhere(t *testing.T) {
	p := analyze(t, `select count(*) from bid, exclusion where 1 = 1`)
	if p.HostPred["bid"] == nil || p.HostPred["exclusion"] == nil {
		t.Error("constant conjunct should reach both host predicates")
	}
}

func TestAnalyzeDefaults(t *testing.T) {
	p := analyze(t, `select count(*) from bid`)
	if p.Window != DefaultWindow || p.Span != DefaultSpan {
		t.Errorf("defaults = %v/%v", p.Window, p.Span)
	}
}

func TestAnalyzeTopK(t *testing.T) {
	p := analyze(t, `select top_k(bid.user_id, 5) from bid`)
	if len(p.Aggs) != 1 || p.Aggs[0].Spec.Kind != agg.KindTopK || p.Aggs[0].Spec.K != 5 {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
	if p.Select[0].Kind != event.KindList {
		t.Errorf("top_k kind = %v", p.Select[0].Kind)
	}
}

func TestAnalyzeCountDistinct(t *testing.T) {
	p := analyze(t, `select count_distinct(bid.user_id) from bid`)
	if len(p.Aggs) != 1 || p.Aggs[0].Spec.Kind != agg.KindCountDistinct {
		t.Fatalf("aggs = %+v", p.Aggs)
	}
}

func TestAnalyzeMultipleAggregates(t *testing.T) {
	p := analyze(t, `select count(*), sum(bid.bid_price), min(bid.bid_price), max(bid.bid_price), avg(bid.bid_price) from bid`)
	if len(p.Aggs) != 5 {
		t.Fatalf("aggs = %d", len(p.Aggs))
	}
	kinds := []agg.Kind{agg.KindCountStar, agg.KindSum, agg.KindMin, agg.KindMax, agg.KindAvg}
	for i, k := range kinds {
		if p.Aggs[i].Spec.Kind != k {
			t.Errorf("agg[%d] = %v, want %v", i, p.Aggs[i].Spec.Kind, k)
		}
	}
	// bid_price ships once despite four references.
	if !reflect.DeepEqual(p.Columns["bid"], []string{"bid_price"}) {
		t.Errorf("columns = %v", p.Columns["bid"])
	}
}

func TestAnalyzeSemanticErrors(t *testing.T) {
	analyzeErr(t, `select count(*) from ghost`, "unknown event type")
	analyzeErr(t, `select count(*) from bid, exclusion, impression`, "equi-joins on the request identifier")
	analyzeErr(t, `select count(*) from bid, bid`, "self-joins")
	analyzeErr(t, `select frobnicate(user_id) from bid`, "unknown function")
	analyzeErr(t, `select sum(count(*)) from bid`, "nested")
	analyzeErr(t, `select user_id, count(*) from bid`, "GROUP BY")
	analyzeErr(t, `select bid.user_id from bid group by bid.city`, "GROUP BY")
	analyzeErr(t, `select count(*) from bid where sum(bid_price) > 5`, "not allowed in WHERE")
	analyzeErr(t, `select count(*) from bid where user_id`, "boolean")
	analyzeErr(t, `select count(*) from bid where ghost = 1`, "unknown field")
	analyzeErr(t, `select top_k(user_id) from bid`, "TOP_K takes")
	analyzeErr(t, `select top_k(user_id, user_id) from bid`, "integer literal")
	analyzeErr(t, `select top_k(user_id, 0) from bid`, "TOP_K k")
	analyzeErr(t, `select count(1, 2) from bid`, "COUNT takes")
	analyzeErr(t, `select sum(*) from bid`, "exactly one argument")
	analyzeErr(t, `select sum(city) from bid`, "numeric")
	analyzeErr(t, `select count(*) from bid group by bid.user_id, bid.user_id`, "duplicate group-by")
	analyzeErr(t, `select count(*) from bid duration 25h`, "maximum query span")
	analyzeErr(t, `select count(*) from bid, exclusion where no_such = 1`, "unknown field")
	analyzeErr(t, `select line_item_id from bid, exclusion, impression`, "equi-joins")
	// Ambiguity across join sides requires qualification.
	analyzeErr(t, `select exchange_id, count(*) from bid, impression group by exchange_id`, "ambiguous")
}

func TestAnalyzeGroupByExpressionConsistency(t *testing.T) {
	// Arithmetic over a grouped field is fine.
	p := analyze(t, `select bid.user_id * 2, count(*) from bid group by bid.user_id`)
	if len(p.Select) != 2 {
		t.Fatal("select items")
	}
	// A non-grouped bare field inside arithmetic is not.
	analyzeErr(t, `select bid.city, bid.user_id * 2, count(*) from bid group by bid.city`, "GROUP BY")
}

func TestAnalyzeNonAggregateStreamingQuery(t *testing.T) {
	// A raw event tap: no aggregates, no grouping.
	p := analyze(t, `select bid.user_id, bid.city from bid where bid.bid_price > 1.0`)
	if p.HasAgg || len(p.Aggs) != 0 {
		t.Error("no aggregates expected")
	}
	if !reflect.DeepEqual(p.Columns["bid"], []string{"user_id", "city"}) {
		t.Errorf("columns = %v", p.Columns["bid"])
	}
}

func TestAnalyzeSystemFieldsAlwaysAvailable(t *testing.T) {
	p := analyze(t, `select request_id, count(*) from bid group by request_id`)
	// System fields never appear in the projection column list.
	if len(p.Columns["bid"]) != 0 {
		t.Errorf("columns = %v", p.Columns["bid"])
	}
	if p.GroupBy[0].Name != "request_id" {
		t.Errorf("group by = %v", p.GroupBy)
	}
}

func TestAnalyzeAggArgsResolved(t *testing.T) {
	// Unqualified agg args must come back qualified in p.Aggs.
	p := analyze(t, `select sum(bid_price) from bid`)
	arg, ok := p.Aggs[0].Arg.(expr.FieldRef)
	if !ok || arg.Type != "bid" {
		t.Errorf("agg arg not resolved: %v", p.Aggs[0].Arg)
	}
}

func TestAnalyzeUnqualifiedJoinSystemField(t *testing.T) {
	// request_id is join-aligned: unqualified is fine even in a join.
	p := analyze(t, `select request_id, count(*) from bid, exclusion group by request_id`)
	if len(p.GroupBy) != 1 {
		t.Fatalf("group by = %v", p.GroupBy)
	}
}

func TestAnalyzeWindowSpanValidation(t *testing.T) {
	q, _ := Parse(`select count(*) from bid`)
	q.Window = -time.Second
	if _, err := Analyze(q, testCatalog()); err == nil {
		t.Error("negative window should fail")
	}
	q, _ = Parse(`select count(*) from bid`)
	q.Span = -time.Second
	if _, err := Analyze(q, testCatalog()); err == nil {
		t.Error("negative span should fail")
	}
	q, _ = Parse(`select count(*) from bid`)
	q.Select = nil
	if _, err := Analyze(q, testCatalog()); err == nil {
		t.Error("empty select should fail")
	}
	q, _ = Parse(`select count(*) from bid`)
	q.From = nil
	if _, err := Analyze(q, testCatalog()); err == nil {
		t.Error("empty from should fail")
	}
}

func TestPlanTypeNames(t *testing.T) {
	p := analyze(t, `select count(*) from bid, exclusion`)
	if !reflect.DeepEqual(p.TypeNames(), []string{"bid", "exclusion"}) {
		t.Errorf("TypeNames = %v", p.TypeNames())
	}
}

func TestAnalyzeSlidingWindows(t *testing.T) {
	p := analyze(t, `select count(*) from bid window 10s slide 5s`)
	if p.Window != 10*time.Second || p.Slide != 5*time.Second {
		t.Errorf("window/slide = %v/%v", p.Window, p.Slide)
	}
	// Tumbling default: slide == window.
	p = analyze(t, `select count(*) from bid window 10s`)
	if p.Slide != p.Window {
		t.Errorf("default slide = %v, want %v", p.Slide, p.Window)
	}
	analyzeErr(t, `select count(*) from bid window 10s slide 20s`, "slide must be in")
	analyzeErr(t, `select count(*) from bid window 10s slide 3s`, "divide the window")
}

func TestExplain(t *testing.T) {
	p := analyze(t, `select exclusion.reason, count(*) from bid, exclusion
		where bid.exchange_id = 5 and bid.campaign_id = exclusion.line_item_id
		group by exclusion.reason window 30s slide 10s duration 20m
		@[Service in (BidServers, AdServers)] sample hosts 50% events 25%`)
	out := Explain(p)
	for _, want := range []string{
		`event type "bid"`,
		`select: (bid.exchange_id = 5)`,
		`event type "exclusion"`,
		`join: bid ⋈ exclusion on request_id`,
		`post-join filter: (bid.campaign_id = exclusion.line_item_id)`,
		`group by: exclusion.reason`,
		`agg[0]: COUNT(*)`,
		`window: 30s sliding every 10s`,
		`event sampling: 25%`,
		`host sampling: 50%`,
		`span: 20m`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q:\n%s", want, out)
		}
	}
	// Tumbling phrasing.
	p2 := analyze(t, `select count(*) from bid`)
	if !strings.Contains(Explain(p2), "tumbling") {
		t.Error("tumbling window not labeled")
	}
	if !strings.Contains(Explain(p2), "(all events)") {
		t.Error("no-predicate case not labeled")
	}
}

func TestAnalyzeHaving(t *testing.T) {
	// HAVING over an aggregate already in the select list adds a second
	// aggregator instance (no dedup — correctness over cleverness).
	p := analyze(t, `select bid.user_id, count(*) from bid group by bid.user_id having count(*) > 100`)
	if p.Having == nil {
		t.Fatal("having not planned")
	}
	if len(p.Aggs) != 2 {
		t.Errorf("aggs = %d (select's and having's)", len(p.Aggs))
	}
	// HAVING can introduce the only aggregate.
	p = analyze(t, `select bid.user_id from bid group by bid.user_id having sum(bid.bid_price) > 10`)
	if !p.HasAgg || len(p.Aggs) != 1 {
		t.Errorf("having-only aggs = %+v", p.Aggs)
	}
	// bid_price must ship for the having aggregate.
	if !reflect.DeepEqual(p.Columns["bid"], []string{"user_id", "bid_price"}) {
		t.Errorf("columns = %v", p.Columns["bid"])
	}
	analyzeErr(t, `select bid.user_id, bid.city from bid having bid.user_id > 1`, "HAVING requires aggregates")
	analyzeErr(t, `select count(*) from bid having bid.user_id > 1`, "GROUP BY")
	analyzeErr(t, `select count(*) from bid having bid.user_id`, "boolean")
}

func TestAnalyzeOrderByLimit(t *testing.T) {
	p := analyze(t, `select bid.user_id, count(*) as n from bid group by bid.user_id order by n desc, 1 limit 10`)
	if len(p.OrderBy) != 2 {
		t.Fatalf("order by = %+v", p.OrderBy)
	}
	if p.OrderBy[0].Col != 1 || !p.OrderBy[0].Desc {
		t.Errorf("key 0 = %+v", p.OrderBy[0])
	}
	if p.OrderBy[1].Col != 0 || p.OrderBy[1].Desc {
		t.Errorf("key 1 = %+v", p.OrderBy[1])
	}
	if p.Limit != 10 {
		t.Errorf("limit = %d", p.Limit)
	}
	analyzeErr(t, `select count(*) from bid order by 2`, "exceeds")
	analyzeErr(t, `select count(*) from bid order by ghost`, "not in the select list")
}
