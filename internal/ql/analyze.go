package ql

import (
	"fmt"
	"strings"
	"time"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/expr"
)

// SemanticError is a validation failure (the query parsed, but is not a
// legal Scrub query).
type SemanticError struct{ Msg string }

func (e *SemanticError) Error() string { return "ql: " + e.Msg }

func semf(format string, args ...any) error {
	return &SemanticError{Msg: fmt.Sprintf(format, args...)}
}

// AggPlan is one aggregate instance in a plan: its spec and its (checked,
// qualified) input expression. Arg is nil for COUNT(*).
type AggPlan struct {
	Spec agg.Spec
	Arg  expr.Node
}

// PlannedItem is one output column: its checked expression (with aggregate
// calls replaced by AggRefs), display label, and static result kind.
type PlannedItem struct {
	Expr  expr.Node
	Label string
	Kind  event.Kind
}

// Plan is a validated query split per the paper's execution model: the
// host side gets per-event-type selection predicates, projection column
// lists and the event sampling rate; ScrubCentral gets the join, group-by,
// aggregation, residual cross-type predicate, and windowing.
type Plan struct {
	Query   *Query
	Schemas []*event.Schema // 1 or 2, in FROM order

	Select  []PlannedItem
	Aggs    []AggPlan
	GroupBy []expr.FieldRef
	HasAgg  bool
	// Having filters groups at ScrubCentral after aggregation; its
	// AggRefs index into Aggs like the select items'.
	Having expr.Node
	// OrderBy/Limit order and truncate each emitted window's rows.
	OrderBy []OrderKey
	Limit   int

	// HostPred maps event type → the conjunction of WHERE conjuncts that
	// reference only that type (plus constant conjuncts). Nil means "ship
	// every event of that type".
	HostPred map[string]expr.Node
	// CentralPred holds conjuncts that span both join sides; evaluated at
	// ScrubCentral after the join. Nil for single-type queries.
	CentralPred expr.Node
	// Columns maps event type → the user fields the host must project and
	// ship (system fields always travel).
	Columns map[string][]string

	Window time.Duration
	Slide  time.Duration // == Window for tumbling windows
	Span   time.Duration
	// Replay asks recording hosts to ship this much pre-start history
	// through the pipeline before going live (REPLAY clause); 0 disables.
	Replay time.Duration
	// StartAt/StartIn copied from the query (resolution to absolute time
	// happens at submission in the query server).
	StartAt time.Time
	StartIn time.Duration

	Target       TargetSpec
	SampleHosts  float64 // 1.0 when unset
	SampleEvents float64 // 1.0 when unset

	// Host-impact budget (BUDGET clause); 0 means unlimited. Enforced by
	// the per-host governor: downsample first, then shed with an explicit
	// BudgetShed marker.
	BudgetCPUPct      float64
	BudgetBytesPerSec float64
}

// Budgeted reports whether the plan carries a host-impact budget.
func (p *Plan) Budgeted() bool { return p.BudgetCPUPct > 0 || p.BudgetBytesPerSec > 0 }

// IsJoin reports whether the plan reads two event types.
func (p *Plan) IsJoin() bool { return len(p.Schemas) == 2 }

// TypeNames returns the event-type names in FROM order.
func (p *Plan) TypeNames() []string {
	names := make([]string, len(p.Schemas))
	for i, s := range p.Schemas {
		names[i] = s.Name()
	}
	return names
}

// Analyze validates a parsed query against the catalog and produces the
// split plan. It enforces the language restrictions the paper calls out:
// at most two event types, joined implicitly (and only) on the request
// identifier; aggregates only in the select list; sampling rates in (0,1].
func Analyze(q *Query, cat *event.Catalog) (*Plan, error) {
	if len(q.Select) == 0 {
		return nil, semf("empty select list")
	}
	switch len(q.From) {
	case 1, 2:
	case 0:
		return nil, semf("no event types in FROM")
	default:
		return nil, semf("FROM lists %d event types; Scrub restricts joins to equi-joins on the request identifier between two event types", len(q.From))
	}
	if q.From[0] == "" || (len(q.From) == 2 && q.From[0] == q.From[1]) {
		return nil, semf("FROM may not repeat an event type (self-joins are not supported)")
	}

	p := &Plan{
		Query:             q,
		Window:            q.Window,
		Slide:             q.Slide,
		Span:              q.Span,
		Replay:            q.Replay,
		StartAt:           q.StartAt,
		StartIn:           q.StartIn,
		Target:            q.Target,
		SampleHosts:       q.SampleHosts,
		SampleEvents:      q.SampleEvents,
		BudgetCPUPct:      q.BudgetCPUPct,
		BudgetBytesPerSec: q.BudgetBytesPerSec,
		HostPred:          make(map[string]expr.Node),
		Columns:           make(map[string][]string),
	}
	if q.BudgetCPUPct < 0 || q.BudgetBytesPerSec < 0 {
		return nil, semf("budget values must be positive")
	}
	for _, name := range q.From {
		s, ok := cat.Lookup(name)
		if !ok {
			return nil, semf("unknown event type %q (registered: %s)", name, strings.Join(cat.Names(), ", "))
		}
		p.Schemas = append(p.Schemas, s)
	}
	res := expr.SchemaResolver{Schemas: p.Schemas}

	// Defaults and limits for window and span.
	if p.Window == 0 {
		p.Window = DefaultWindow
	}
	if p.Window <= 0 {
		return nil, semf("window must be positive")
	}
	if p.Slide == 0 {
		p.Slide = p.Window
	}
	if p.Slide < 0 || p.Slide > p.Window {
		return nil, semf("slide must be in (0, window]")
	}
	if p.Window%p.Slide != 0 {
		return nil, semf("slide %s must divide the window %s evenly", p.Slide, p.Window)
	}
	if p.Span == 0 {
		p.Span = DefaultSpan
	}
	if p.Span <= 0 {
		return nil, semf("duration must be positive")
	}
	if p.Span > MaxSpan {
		return nil, semf("duration %s exceeds the maximum query span %s", p.Span, MaxSpan)
	}
	if p.Replay < 0 {
		return nil, semf("replay must be positive")
	}
	if p.Replay > MaxSpan {
		return nil, semf("replay %s exceeds the maximum query span %s", p.Replay, MaxSpan)
	}
	if p.SampleHosts == 0 {
		p.SampleHosts = 1
	}
	if p.SampleEvents == 0 {
		p.SampleEvents = 1
	}

	// Rewrite select items: aggregate calls → AggRefs; then type-check.
	for _, item := range q.Select {
		rewritten, err := p.rewriteAggregates(item.Expr, false)
		if err != nil {
			return nil, err
		}
		checked, kind, err := expr.Check(rewritten, res)
		if err != nil {
			return nil, &SemanticError{Msg: err.Error()}
		}
		p.Select = append(p.Select, PlannedItem{Expr: checked, Label: item.Label(), Kind: kind})
	}
	p.HasAgg = len(p.Aggs) > 0

	// Check resolved field references inside AggRef args in place in the
	// select trees; sync those resolved args back into the plan's agg list
	// (ScrubCentral compiles aggregate inputs from p.Aggs).
	for _, item := range p.Select {
		expr.Walk(item.Expr, func(n expr.Node) bool {
			if a, ok := n.(expr.AggRef); ok && a.Index < len(p.Aggs) {
				p.Aggs[a.Index] = AggPlan{Spec: a.Spec, Arg: a.Arg}
			}
			return true
		})
	}

	// Resolve group-by fields.
	seenGroup := make(map[expr.FieldRef]bool)
	for _, g := range q.GroupBy {
		rg, _, err := res.ResolveField(g)
		if err != nil {
			return nil, &SemanticError{Msg: err.Error()}
		}
		if seenGroup[rg] {
			return nil, semf("duplicate group-by field %s", rg)
		}
		seenGroup[rg] = true
		p.GroupBy = append(p.GroupBy, rg)
	}

	// HAVING: rewrite its aggregates into the shared agg list, then
	// type-check. Only meaningful for aggregate/grouped queries.
	if q.Having != nil {
		rewritten, err := p.rewriteAggregates(q.Having, false)
		if err != nil {
			return nil, err
		}
		checked, kind, err := expr.Check(rewritten, res)
		if err != nil {
			return nil, &SemanticError{Msg: err.Error()}
		}
		if kind != event.KindBool {
			return nil, semf("HAVING must be a boolean predicate, got %s", kind)
		}
		p.Having = checked
		p.HasAgg = len(p.Aggs) > 0
		if !p.HasAgg && len(p.GroupBy) == 0 {
			return nil, semf("HAVING requires aggregates or GROUP BY")
		}
		// Sync any aggregates HAVING introduced (same pass as the select
		// items above).
		expr.Walk(p.Having, func(n expr.Node) bool {
			if a, ok := n.(expr.AggRef); ok && a.Index < len(p.Aggs) {
				p.Aggs[a.Index] = AggPlan{Spec: a.Spec, Arg: a.Arg}
			}
			return true
		})
	}

	// SQL aggregation rule: with aggregates or grouping, every bare field
	// in the select list (and HAVING) must be a group-by key.
	if p.HasAgg || len(p.GroupBy) > 0 {
		for _, item := range p.Select {
			if err := p.checkGrouped(item.Expr); err != nil {
				return nil, err
			}
		}
		if p.Having != nil {
			if err := p.checkGrouped(p.Having); err != nil {
				return nil, err
			}
		}
	}

	// ORDER BY keys resolve against the select list: a 1-based ordinal or
	// a column label (alias or expression text).
	for _, raw := range q.OrderByRaw {
		key := OrderKey{Desc: raw.Desc}
		switch {
		case raw.Ordinal > 0:
			if raw.Ordinal > len(p.Select) {
				return nil, semf("ORDER BY ordinal %d exceeds the %d select columns", raw.Ordinal, len(p.Select))
			}
			key.Col = raw.Ordinal - 1
		default:
			found := -1
			for i, item := range p.Select {
				if item.Label == raw.Label {
					found = i
					break
				}
			}
			if found < 0 {
				return nil, semf("ORDER BY column %q is not in the select list", raw.Label)
			}
			key.Col = found
		}
		p.OrderBy = append(p.OrderBy, key)
	}
	p.Limit = q.Limit

	// WHERE: no aggregates, must be boolean.
	if q.Where != nil {
		if expr.HasAggregate(q.Where) {
			return nil, semf("aggregates are not allowed in WHERE")
		}
		checked, kind, err := expr.Check(q.Where, res)
		if err != nil {
			return nil, &SemanticError{Msg: err.Error()}
		}
		if kind != event.KindBool {
			return nil, semf("WHERE must be a boolean predicate, got %s", kind)
		}
		p.splitPredicate(checked)
	}

	p.computeColumns()
	return p, nil
}

// rewriteAggregates replaces aggregate Calls with AggRefs, appending to
// p.Aggs. inAgg guards against nesting.
func (p *Plan) rewriteAggregates(n expr.Node, inAgg bool) (expr.Node, error) {
	switch t := n.(type) {
	case expr.Call:
		kind, ok := agg.ParseKind(t.Name)
		if !ok {
			return nil, semf("unknown function %q", t.Name)
		}
		if inAgg {
			return nil, semf("aggregates cannot be nested")
		}
		spec := agg.Spec{Kind: kind}
		var arg expr.Node
		switch kind {
		case agg.KindCount:
			if t.Star {
				spec.Kind = agg.KindCountStar
			} else {
				if len(t.Args) != 1 {
					return nil, semf("COUNT takes one argument or *")
				}
				arg = t.Args[0]
			}
		case agg.KindTopK:
			if t.Star || len(t.Args) != 2 {
				return nil, semf("TOP_K takes (expression, k)")
			}
			kLit, ok := t.Args[1].(expr.Lit)
			if !ok {
				return nil, semf("TOP_K k must be an integer literal")
			}
			kv, ok := kLit.Val.AsInt()
			if !ok || kv < 1 || kv > 10000 {
				return nil, semf("TOP_K k must be an integer in [1, 10000]")
			}
			spec.K = int(kv)
			arg = t.Args[0]
		default:
			if t.Star || len(t.Args) != 1 {
				return nil, semf("%s takes exactly one argument", strings.ToUpper(t.Name))
			}
			arg = t.Args[0]
		}
		if arg != nil {
			ra, err := p.rewriteAggregates(arg, true)
			if err != nil {
				return nil, err
			}
			if expr.HasAggregate(ra) {
				return nil, semf("aggregates cannot be nested")
			}
			arg = ra
		}
		ref := expr.AggRef{Index: len(p.Aggs), Spec: spec, Arg: arg}
		p.Aggs = append(p.Aggs, AggPlan{Spec: spec, Arg: arg})
		return ref, nil

	case expr.Unary:
		x, err := p.rewriteAggregates(t.X, inAgg)
		if err != nil {
			return nil, err
		}
		t.X = x
		return t, nil
	case expr.Binary:
		l, err := p.rewriteAggregates(t.L, inAgg)
		if err != nil {
			return nil, err
		}
		r, err := p.rewriteAggregates(t.R, inAgg)
		if err != nil {
			return nil, err
		}
		t.L, t.R = l, r
		return t, nil
	case expr.In:
		x, err := p.rewriteAggregates(t.X, inAgg)
		if err != nil {
			return nil, err
		}
		t.X = x
		for i, e := range t.List {
			re, err := p.rewriteAggregates(e, inAgg)
			if err != nil {
				return nil, err
			}
			t.List[i] = re
		}
		return t, nil
	default:
		return n, nil
	}
}

// checkGrouped verifies every bare field reference (outside aggregate
// arguments) is a group-by key. The plan's AggPlan args were recorded
// before Check resolved the select items, so compare by resolved refs.
func (p *Plan) checkGrouped(n expr.Node) error {
	grouped := make(map[expr.FieldRef]bool, len(p.GroupBy))
	for _, g := range p.GroupBy {
		grouped[g] = true
	}
	var bad *expr.FieldRef
	var walk func(expr.Node, bool)
	walk = func(n expr.Node, inAgg bool) {
		switch t := n.(type) {
		case expr.FieldRef:
			if !inAgg && !grouped[t] && bad == nil {
				f := t
				bad = &f
			}
		case expr.Unary:
			walk(t.X, inAgg)
		case expr.Binary:
			walk(t.L, inAgg)
			walk(t.R, inAgg)
		case expr.In:
			walk(t.X, inAgg)
			for _, e := range t.List {
				walk(e, inAgg)
			}
		case expr.AggRef:
			if t.Arg != nil {
				walk(t.Arg, true)
			}
		}
	}
	walk(n, false)
	if bad != nil {
		return semf("field %s must appear in GROUP BY or inside an aggregate", bad)
	}
	return nil
}

// splitPredicate distributes WHERE conjuncts: single-type conjuncts run on
// the hosts of that type (paper: selection happens on the host); conjuncts
// referencing both join sides run at ScrubCentral after the join. Constant
// conjuncts run on every host.
func (p *Plan) splitPredicate(w expr.Node) {
	conjuncts := flattenAnd(w)
	perType := make(map[string][]expr.Node)
	var central []expr.Node
	for _, c := range conjuncts {
		types := refTypes(c)
		switch len(types) {
		case 0:
			for _, s := range p.Schemas {
				perType[s.Name()] = append(perType[s.Name()], c)
			}
		case 1:
			for t := range types {
				perType[t] = append(perType[t], c)
			}
		default:
			central = append(central, c)
		}
	}
	for t, cs := range perType {
		p.HostPred[t] = joinAnd(cs)
	}
	p.CentralPred = joinAnd(central)
}

func flattenAnd(n expr.Node) []expr.Node {
	if b, ok := n.(expr.Binary); ok && b.Op == expr.OpAnd {
		return append(flattenAnd(b.L), flattenAnd(b.R)...)
	}
	return []expr.Node{n}
}

func joinAnd(ns []expr.Node) expr.Node {
	if len(ns) == 0 {
		return nil
	}
	out := ns[0]
	for _, n := range ns[1:] {
		out = expr.Binary{Op: expr.OpAnd, L: out, R: n}
	}
	return out
}

// refTypes returns the set of event types referenced by n (references are
// already qualified by Check).
func refTypes(n expr.Node) map[string]bool {
	out := make(map[string]bool)
	for _, f := range expr.Fields(n) {
		if f.Type != "" {
			out[f.Type] = true
		}
	}
	return out
}

// computeColumns derives the per-type projection sets: every user field
// the central side needs — select items, aggregate inputs, group-by keys,
// and the residual central predicate. Host predicate fields are NOT
// shipped unless needed elsewhere; they are consumed on the host.
func (p *Plan) computeColumns() {
	need := make(map[string]map[string]bool)
	for _, s := range p.Schemas {
		need[s.Name()] = make(map[string]bool)
	}
	addFields := func(n expr.Node) {
		if n == nil {
			return
		}
		for _, f := range expr.Fields(n) {
			if event.IsSystemField(f.Name) {
				continue // always shipped
			}
			if m, ok := need[f.Type]; ok {
				m[f.Name] = true
			}
		}
	}
	for _, item := range p.Select {
		addFields(item.Expr)
	}
	for _, a := range p.Aggs {
		addFields(a.Arg)
	}
	for _, g := range p.GroupBy {
		addFields(g)
	}
	addFields(p.CentralPred)

	for _, s := range p.Schemas {
		m := need[s.Name()]
		// Keep schema order for deterministic plans.
		var cols []string
		for i := 0; i < s.NumFields(); i++ {
			name := s.Field(i).Name
			if m[name] {
				cols = append(cols, name)
			}
		}
		p.Columns[s.Name()] = cols
	}
}
