package ql

import "testing"

// FuzzParse drives the full lex→parse pipeline with arbitrary query
// text. Beyond not panicking, it checks the printer/parser round-trip:
// any query that parses must re-parse from its own String() rendering,
// and the rendering must be a fixed point (String of the re-parse is
// byte-identical) — the property Explain and the query server's echo
// path rely on.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"select x, COUNT(*) from bid where a >= 1.5 and b != 'hi'",
		"select count(*) from bid",
		`select impression.exchange_id, count(*) from impression group by impression.exchange_id order by 2 desc limit 10`,
		`select bid.exchange_id, exclusion.reason, count(*) from bid, exclusion where bid.request_id = exclusion.request_id group by bid.exchange_id, exclusion.reason`,
		`select count(*) from bid start +30s duration 20m`,
		`select count(*) from bid start "2026-07-05T10:00:00Z" duration 60`,
		`select count(*) from bid start now`,
		`select count(*) from bid duration 10m replay 30s`,
		`select count(*) from bid replay 45`,
		`select sum(price), avg(price) from bid window 10s slide 2s`,
		`select top_k(city, 5) from bid @ service = exchange and dc = iad sample hosts 10% events 50%`,
		`select count_distinct(user_id) from bid having count(*) > 100 budget cpu 1% bytes 1048576;`,
		`select x from bid where name like 'a%' or name contains 'b' and not (a in (1, 2, 3))`,
		"select 'unterminated",
		"select 1.2.3",
		"select `backtick`",
		"select x\nfrom bid\nwhere $",
		"",
		";",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input: only the absence of panics is asserted
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round-trip: %q parsed but its rendering %q did not: %v", src, rendered, err)
		}
		if again := q2.String(); again != rendered {
			t.Fatalf("rendering not a fixed point:\n first: %q\nsecond: %q", rendered, again)
		}
	})
}
