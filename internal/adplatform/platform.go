package adplatform

import (
	"fmt"

	"scrub/internal/core"
	"scrub/internal/event"
	"scrub/internal/host"
)

// Service names used in the cluster registry; target specs in queries
// refer to these (e.g. `@[Service in BidServers]`).
const (
	ServiceBidServers          = "BidServers"
	ServiceAdServers           = "AdServers"
	ServicePresentationServers = "PresentationServers"
)

// Config parametrizes a simulated platform deployment.
type Config struct {
	NumBidServers          int
	NumAdServers           int
	NumPresentationServers int
	DC                     string // data center label, default "DC1"

	LineItems []*LineItem

	// ModelForAdServer assigns a targeting model per AdServer index —
	// the §8.3 A/B mechanism (different models on different machines).
	// Nil installs ImprovedModel everywhere.
	ModelForAdServer func(i int) TargetingModel

	// EmitExclusions / EmitAuctions forward to every AdServer.
	EmitExclusions bool
	EmitAuctions   bool

	// ExternalWinRate forwards to every PresentationServer (0 = default).
	ExternalWinRate float64

	// Agent forwards agent tuning (queue sizes, flush interval).
	Agent host.Config
	// AgentSink forwards core.LocalConfig.AgentSink (see there).
	AgentSink host.Sink
	// CentralShards forwards core.LocalConfig.CentralShards.
	CentralShards int
}

// Platform is a running simulated deployment: the Scrub cluster plus the
// application servers embedded in its hosts.
type Platform struct {
	Cluster *core.LocalCluster
	Catalog *event.Catalog
	Store   *ProfileStore

	BidServers  []*BidServer
	AdServers   []*AdServer
	PresServers []*PresentationServer
	LineItems   []*LineItem

	models map[string]TargetingModel
}

// New builds and starts a platform.
func New(cfg Config) (*Platform, error) {
	if cfg.NumBidServers <= 0 || cfg.NumAdServers <= 0 || cfg.NumPresentationServers <= 0 {
		return nil, fmt.Errorf("adplatform: all server counts must be positive")
	}
	if len(cfg.LineItems) == 0 {
		return nil, fmt.Errorf("adplatform: no line items")
	}
	if cfg.DC == "" {
		cfg.DC = "DC1"
	}
	if cfg.ModelForAdServer == nil {
		m := ImprovedModel{}
		cfg.ModelForAdServer = func(int) TargetingModel { return m }
	}

	catalog := event.NewCatalog()
	RegisterEventTypes(catalog)

	var hosts []core.HostSpec
	bidHost := func(i int) string { return fmt.Sprintf("bid-%s-%03d", cfg.DC, i) }
	adHost := func(i int) string { return fmt.Sprintf("ad-%s-%03d", cfg.DC, i) }
	presHost := func(i int) string { return fmt.Sprintf("pres-%s-%03d", cfg.DC, i) }
	for i := 0; i < cfg.NumBidServers; i++ {
		hosts = append(hosts, core.HostSpec{Name: bidHost(i), Service: ServiceBidServers, DC: cfg.DC})
	}
	for i := 0; i < cfg.NumAdServers; i++ {
		hosts = append(hosts, core.HostSpec{Name: adHost(i), Service: ServiceAdServers, DC: cfg.DC})
	}
	for i := 0; i < cfg.NumPresentationServers; i++ {
		hosts = append(hosts, core.HostSpec{Name: presHost(i), Service: ServicePresentationServers, DC: cfg.DC})
	}

	cluster, err := core.NewLocalCluster(core.LocalConfig{
		Catalog:       catalog,
		Hosts:         hosts,
		Agent:         cfg.Agent,
		AgentSink:     cfg.AgentSink,
		CentralShards: cfg.CentralShards,
	})
	if err != nil {
		return nil, err
	}

	p := &Platform{
		Cluster:   cluster,
		Catalog:   catalog,
		Store:     NewProfileStore(),
		LineItems: cfg.LineItems,
		models:    make(map[string]TargetingModel),
	}
	for i := 0; i < cfg.NumBidServers; i++ {
		agent, _ := cluster.Agent(bidHost(i))
		p.BidServers = append(p.BidServers, NewBidServer(agent))
	}
	for i := 0; i < cfg.NumAdServers; i++ {
		agent, _ := cluster.Agent(adHost(i))
		model := cfg.ModelForAdServer(i)
		as := NewAdServer(agent, p.Store, model, cfg.LineItems)
		as.EmitExclusions = cfg.EmitExclusions
		as.EmitAuctions = cfg.EmitAuctions
		p.AdServers = append(p.AdServers, as)
		p.models[model.Name()] = model
	}
	for i := 0; i < cfg.NumPresentationServers; i++ {
		agent, _ := cluster.Agent(presHost(i))
		ps := NewPresentationServer(agent, p.Store)
		if cfg.ExternalWinRate > 0 {
			ps.ExternalWinRate = cfg.ExternalWinRate
		}
		p.PresServers = append(p.PresServers, ps)
	}
	return p, nil
}

// Model returns a registered model by name.
func (p *Platform) Model(name string) (TargetingModel, bool) {
	m, ok := p.models[name]
	return m, ok
}

// LineItem returns a line item by id.
func (p *Platform) LineItem(id int64) (*LineItem, bool) {
	for _, li := range p.LineItems {
		if li.ID == id {
			return li, true
		}
	}
	return nil, false
}

// route maps a request to its servers: bid servers by request hash; ad
// and presentation servers by user hash, so a user consistently sees one
// model and that model's impressions land on a fixed host set — which is
// what lets the §8.3 A/B queries target "the machines running model X".
func (p *Platform) route(req BidRequest) (*BidServer, *AdServer, *PresentationServer) {
	bs := p.BidServers[int(req.RequestID%uint64(len(p.BidServers)))]
	as := p.AdServers[int(uint64(req.UserID)%uint64(len(p.AdServers)))]
	ps := p.PresServers[int(uint64(req.UserID)%uint64(len(p.PresServers)))]
	return bs, as, ps
}

// Process runs one bid request through the full pipeline and returns the
// outcome. It is safe to call from multiple goroutines (load generators
// model concurrent exchange traffic).
func (p *Platform) Process(req BidRequest) (BidResponse, Outcome, bool) {
	bs, as, ps := p.route(req)
	auction := as.RunAuction(req)
	resp, ok := bs.Respond(req, auction, as.model.Name())
	if !ok {
		return BidResponse{}, Outcome{}, false
	}
	out := ps.HandleBid(req, resp, auction.Winner.LineItem, as.model)
	return resp, out, true
}

// AdServerHostsForModel returns the host names running the named model —
// what a troubleshooter plugs into `@[Servers in (...)]` for A/B queries.
func (p *Platform) AdServerHostsForModel(name string) []string {
	var out []string
	for _, as := range p.AdServers {
		if as.model.Name() == name {
			out = append(out, as.agent.ID())
		}
	}
	return out
}

// PresentationHostsForModel returns the presentation hosts whose traffic
// was selected by the named model. Requires NumPresentationServers ==
// NumAdServers (both route by user hash, so host i of each service sees
// the same users); it returns nil otherwise.
func (p *Platform) PresentationHostsForModel(name string) []string {
	if len(p.PresServers) != len(p.AdServers) {
		return nil
	}
	var out []string
	for i, as := range p.AdServers {
		if as.model.Name() == name {
			out = append(out, p.PresServers[i].agent.ID())
		}
	}
	return out
}

// Close shuts the platform down.
func (p *Platform) Close() { p.Cluster.Close() }
