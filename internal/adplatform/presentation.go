package adplatform

import (
	"time"

	"scrub/internal/event"
	"scrub/internal/host"
)

// PresentationServer handles post-bid outcomes (paper §7): when the
// exchange's external auction is won, the ad is shown — an impression —
// and the user's profile serve count is updated in the ProfileStore; if
// the user interacts, a click follows. Both are logged as Scrub events.
type PresentationServer struct {
	agent *host.Agent
	store *ProfileStore

	// ExternalWinRate is the probability a bid wins the exchange's
	// auction and becomes an impression. Default 0.10.
	ExternalWinRate float64
	// ClearingFactor scales the bid price to the charged cost (second-
	// price-ish). Default 0.85.
	ClearingFactor float64
}

// NewPresentationServer builds a PresentationServer around its agent.
func NewPresentationServer(agent *host.Agent, store *ProfileStore) *PresentationServer {
	return &PresentationServer{
		agent: agent, store: store,
		ExternalWinRate: 0.10, ClearingFactor: 0.85,
	}
}

// Agent exposes the embedded Scrub agent.
func (s *PresentationServer) Agent() *host.Agent { return s.agent }

// detRand returns a deterministic pseudo-uniform in [0,1) keyed by the
// request and a salt, so simulations replay identically under any
// concurrency.
func detRand(reqID uint64, salt uint64) float64 {
	x := reqID*0x9E3779B97F4A7C15 ^ salt*0xD6E8FEB86659FD93
	x ^= x >> 32
	x *= 0xD6E8FEB86659FD93
	x ^= x >> 32
	return float64(x%(1<<53)) / (1 << 53)
}

// Outcome reports what happened to a served bid.
type Outcome struct {
	Impression bool
	Click      bool
	Cost       float64 // dollars charged for the impression
	ServeCount int     // the user's serve count after this impression
}

// HandleBid resolves a bid response: external auction, impression,
// profile update, budget spend, and the click draw — logging impression
// and click events.
func (s *PresentationServer) HandleBid(req BidRequest, resp BidResponse, li *LineItem, model TargetingModel) Outcome {
	var out Outcome
	if detRand(req.RequestID, 1) >= s.ExternalWinRate {
		return out // lost the exchange auction: no impression
	}
	out.Impression = true
	out.Cost = resp.BidPrice * s.ClearingFactor
	now := time.Unix(0, req.TimeNanos)

	out.ServeCount = s.store.RecordServe(req.UserID, li.ID, now)
	li.spend(out.Cost)

	s.agent.Log(event.NewBuilder(ImpressionEventSchema).
		SetRequestID(req.RequestID).SetTimeNanos(req.TimeNanos).
		Int("line_item_id", li.ID).
		Int("exchange_id", req.ExchangeID).
		Int("user_id", req.UserID).
		Float("cost", out.Cost).
		Str("model", resp.ModelName).
		Int("serve_count", int64(out.ServeCount)).
		MustBuild())

	profile := s.store.Get(req.UserID)
	if detRand(req.RequestID, 2) < model.CTR(profile, li) {
		out.Click = true
		s.agent.Log(event.NewBuilder(ClickEventSchema).
			SetRequestID(req.RequestID).SetTimeNanos(req.TimeNanos).
			Int("line_item_id", li.ID).
			Int("exchange_id", req.ExchangeID).
			Int("user_id", req.UserID).
			Str("model", resp.ModelName).
			MustBuild())
	}
	return out
}
