package adplatform

import (
	"math"
	"math/rand"
)

// GenerateLineItems builds a varied portfolio of n active line items for
// simulations: mixed targeting tightness, advisory prices log-uniform in
// roughly [$0.50, $8], moderate budgets, and a minority of
// frequency-capped items. Deterministic for a seed.
func GenerateLineItems(n int, seed int64) []*LineItem {
	rng := rand.New(rand.NewSource(seed))
	countries := []string{"US", "GB", "DE", "FR", "BR"}
	out := make([]*LineItem, 0, n)
	for i := 0; i < n; i++ {
		li := &LineItem{
			ID:            int64(1000 + i),
			CampaignID:    int64(100 + i/5), // ~5 line items per campaign
			AdvisoryPrice: 0.5 * math.Pow(16, rng.Float64()),
		}
		// ~40% geo-targeted to 1–2 countries.
		if rng.Float64() < 0.4 {
			k := 1 + rng.Intn(2)
			perm := rng.Perm(len(countries))[:k]
			for _, idx := range perm {
				li.Countries = append(li.Countries, countries[idx])
			}
		}
		// ~30% exchange-targeted.
		if rng.Float64() < 0.3 {
			li.Exchanges = []int64{int64(1 + rng.Intn(4))}
		}
		// ~50% segment-targeted to 1–3 segments.
		if rng.Float64() < 0.5 {
			k := 1 + rng.Intn(3)
			for s := 0; s < k; s++ {
				li.Segments = append(li.Segments, int64(1+rng.Intn(50)))
			}
		}
		// ~20% frequency-capped at 1–3 per day.
		if rng.Float64() < 0.2 {
			li.FrequencyCap = 1 + rng.Intn(3)
		}
		li.SetBudget(50 + rng.Float64()*450)
		out = append(out, li)
	}
	return out
}
