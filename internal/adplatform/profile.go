package adplatform

import (
	"sync"
	"time"
)

// UserProfile is the per-user state the platform maintains: audience
// segments and per-line-item serve counts used to enforce frequency caps
// (paper §8.6). Profiles are value types; the store hands out copies.
type UserProfile struct {
	UserID   int64
	Segments []int64
	// ServeCounts maps line item id → ads served in the current day.
	ServeCounts map[int64]int
	// DayStart anchors the daily reset of serve counts (unix nanos).
	DayStart int64
}

// clone deep-copies the profile.
func (p UserProfile) clone() UserProfile {
	cp := p
	cp.Segments = append([]int64(nil), p.Segments...)
	cp.ServeCounts = make(map[int64]int, len(p.ServeCounts))
	for k, v := range p.ServeCounts {
		cp.ServeCounts[k] = v
	}
	return cp
}

// ProfileStore is the in-memory profile database backing the
// PresentationServers and the filtering phase. Production Turn runs this
// as a distributed store; a sharded in-memory map preserves the behavior
// the platform depends on: read-modify-write serve counts, daily resets,
// and — for the §8.6 case study — the possibility of corrupt data
// arriving from an external input feed.
type ProfileStore struct {
	shards [16]profileShard
}

type profileShard struct {
	mu       sync.RWMutex
	profiles map[int64]UserProfile
}

// NewProfileStore returns an empty store.
func NewProfileStore() *ProfileStore {
	s := &ProfileStore{}
	for i := range s.shards {
		s.shards[i].profiles = make(map[int64]UserProfile)
	}
	return s
}

func (s *ProfileStore) shard(user int64) *profileShard {
	return &s.shards[uint64(user)%uint64(len(s.shards))]
}

// Get returns a copy of a user's profile; absent users get an empty
// profile (not an error — new users appear constantly).
func (s *ProfileStore) Get(user int64) UserProfile {
	sh := s.shard(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if p, ok := sh.profiles[user]; ok {
		return p.clone()
	}
	return UserProfile{UserID: user, ServeCounts: map[int64]int{}}
}

// Put replaces a user's profile.
func (s *ProfileStore) Put(p UserProfile) {
	sh := s.shard(p.UserID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.profiles[p.UserID] = p.clone()
}

// SetSegments assigns a user's audience segments.
func (s *ProfileStore) SetSegments(user int64, segs []int64) {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[user]
	if !ok {
		p = UserProfile{UserID: user, ServeCounts: map[int64]int{}}
	}
	p.Segments = append([]int64(nil), segs...)
	sh.profiles[user] = p
}

// RecordServe increments a user's serve count for a line item, applying
// the daily reset, and returns the new count.
func (s *ProfileStore) RecordServe(user, lineItem int64, now time.Time) int {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[user]
	if !ok {
		p = UserProfile{UserID: user, ServeCounts: map[int64]int{}}
	}
	dayStart := now.Truncate(24 * time.Hour).UnixNano()
	if p.DayStart != dayStart {
		p.DayStart = dayStart
		p.ServeCounts = map[int64]int{}
	}
	if p.ServeCounts == nil {
		p.ServeCounts = map[int64]int{}
	}
	p.ServeCounts[lineItem]++
	sh.profiles[user] = p
	return p.ServeCounts[lineItem]
}

// ServeCount reads a user's current count for a line item, applying the
// daily reset semantics read-side.
func (s *ProfileStore) ServeCount(user, lineItem int64, now time.Time) int {
	sh := s.shard(user)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	p, ok := sh.profiles[user]
	if !ok || p.ServeCounts == nil {
		return 0
	}
	if p.DayStart != now.Truncate(24*time.Hour).UnixNano() {
		return 0 // stale day: counts reset on next write
	}
	return p.ServeCounts[lineItem]
}

// CorruptServeCounts overwrites a user's serve-count map wholesale —
// the §8.6 scenario: erroneous input data (an external feed) clobbers
// frequency state so capped ads serve again. Negative counts model the
// observed corruption.
func (s *ProfileStore) CorruptServeCounts(user int64, counts map[int64]int, dayStart time.Time) {
	sh := s.shard(user)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	p, ok := sh.profiles[user]
	if !ok {
		p = UserProfile{UserID: user}
	}
	p.DayStart = dayStart.Truncate(24 * time.Hour).UnixNano()
	p.ServeCounts = make(map[int64]int, len(counts))
	for k, v := range counts {
		p.ServeCounts[k] = v
	}
	sh.profiles[user] = p
}

// Len returns the number of stored profiles.
func (s *ProfileStore) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].profiles)
		s.shards[i].mu.RUnlock()
	}
	return n
}
