package adplatform

import (
	"math"
)

// TargetingModel predicts how likely a user is to interact with a line
// item's ad. The internal auction scores every candidate with the
// AdServer's installed model; §8.3 A/B-tests two models by running them
// on disjoint host sets.
type TargetingModel interface {
	// Name labels the model in impression/click events.
	Name() string
	// Score returns a relevance prediction in (0, 1).
	Score(user UserProfile, li *LineItem) float64
	// CTR returns the realized click-through probability for an
	// impression this model selected — the ground truth the simulator
	// uses at the PresentationServers. Better models achieve higher CTR
	// at the same cost.
	CTR(user UserProfile, li *LineItem) float64
}

// affinity is a deterministic pseudo-random user↔line-item match quality
// in (0,1), shared by the models so A/B comparisons see the same users.
func affinity(userID, liID int64) float64 {
	x := uint64(userID)*0x9E3779B97F4A7C15 ^ uint64(liID)*0xC2B2AE3D27D4EB4F
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return float64(x%1_000_000) / 1_000_000
}

// BaselineModel ("model A" in §8.3): a coarse scorer that partially
// observes affinity, so its selections are noisier and convert worse.
type BaselineModel struct {
	// BaseCTR anchors realized click probability.
	BaseCTR float64
}

// Name implements TargetingModel.
func (m BaselineModel) Name() string { return "A" }

// Score implements TargetingModel: half signal, half constant prior.
func (m BaselineModel) Score(user UserProfile, li *LineItem) float64 {
	return 0.5*affinity(user.UserID, li.ID) + 0.25
}

// CTR implements TargetingModel.
func (m BaselineModel) CTR(user UserProfile, li *LineItem) float64 {
	base := m.BaseCTR
	if base == 0 {
		base = 0.02
	}
	// The baseline converts at the population-average affinity.
	return clampProb(base * (0.5 + affinity(user.UserID, li.ID)))
}

// ImprovedModel ("model B" in §8.3): sees affinity more sharply, so it
// targets users who actually click — higher CTR at roughly the same cost
// per impression, the outcome Figure 15 shows.
type ImprovedModel struct {
	BaseCTR float64
	// Lift is the relative CTR improvement over the baseline at equal
	// spend; Figure 15's B-over-A gap. Default 1.35.
	Lift float64
}

// Name implements TargetingModel.
func (m ImprovedModel) Name() string { return "B" }

// Score implements TargetingModel: sharpened affinity.
func (m ImprovedModel) Score(user UserProfile, li *LineItem) float64 {
	a := affinity(user.UserID, li.ID)
	return math.Pow(a, 0.5) // concave: separates good matches harder
}

// CTR implements TargetingModel.
func (m ImprovedModel) CTR(user UserProfile, li *LineItem) float64 {
	base := m.BaseCTR
	if base == 0 {
		base = 0.02
	}
	lift := m.Lift
	if lift == 0 {
		lift = 1.35
	}
	return clampProb(base * lift * (0.5 + affinity(user.UserID, li.ID)))
}

func clampProb(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// priceForScore adjusts the advisory price by the model score so bids
// move in a narrow band (±15%) around it — the §8.5 pricing behavior
// that makes cannibalization possible.
func priceForScore(advisory, score float64) float64 {
	return advisory * (0.85 + 0.3*score)
}
