package adplatform

import (
	"testing"
	"time"

	"scrub/internal/host"
)

func simpleLineItem(id int64, price float64) *LineItem {
	li := &LineItem{ID: id, CampaignID: id / 10, AdvisoryPrice: price}
	li.SetBudget(1000)
	return li
}

func testPlatform(t *testing.T, items []*LineItem, mutate ...func(*Config)) *Platform {
	t.Helper()
	cfg := Config{
		NumBidServers: 2, NumAdServers: 2, NumPresentationServers: 2,
		LineItems:      items,
		EmitExclusions: true, EmitAuctions: true,
		Agent: host.Config{FlushInterval: 5 * time.Millisecond},
	}
	for _, m := range mutate {
		m(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func req(id uint64, user int64, exchange int64, ts time.Time) BidRequest {
	return BidRequest{
		RequestID: id, ExchangeID: exchange, UserID: user,
		Country: "US", City: "san jose", PublisherID: 7,
		TimeNanos: ts.UnixNano(),
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero servers should fail")
	}
	if _, err := New(Config{NumBidServers: 1, NumAdServers: 1, NumPresentationServers: 1}); err == nil {
		t.Error("no line items should fail")
	}
}

func TestPipelineServesAds(t *testing.T) {
	items := []*LineItem{simpleLineItem(1, 2.0), simpleLineItem(2, 1.0)}
	p := testPlatform(t, items)
	now := time.Now()
	served, clicked := 0, 0
	for i := uint64(1); i <= 2000; i++ {
		resp, out, ok := p.Process(req(i, int64(i%50), 1, now))
		if !ok {
			t.Fatal("untargeted line items should always bid")
		}
		// Higher advisory price dominates: its whole price band sits
		// above the cheaper item's (the §8.5 cannibalization mechanic).
		if resp.LineItemID != 1 {
			t.Fatalf("winner = %d, want 1 (higher advisory price)", resp.LineItemID)
		}
		if out.Impression {
			served++
			if out.Cost <= 0 || out.Cost > resp.BidPrice {
				t.Fatalf("cost %v vs bid %v", out.Cost, resp.BidPrice)
			}
		}
		if out.Click {
			clicked++
		}
	}
	// ExternalWinRate defaults to 0.10: ~10% impressions.
	if served < 100 || served > 320 {
		t.Errorf("impressions = %d of 2000, want ≈200", served)
	}
	if clicked == 0 || clicked > served {
		t.Errorf("clicks = %d (impressions %d)", clicked, served)
	}
}

func TestFilteringReasons(t *testing.T) {
	geo := simpleLineItem(1, 1)
	geo.Countries = []string{"DE"}
	exch := simpleLineItem(2, 1)
	exch.Exchanges = []int64{9}
	seg := simpleLineItem(3, 1)
	seg.Segments = []int64{42}
	paused := simpleLineItem(4, 1)
	paused.Paused = true
	broke := simpleLineItem(5, 1)
	broke.SetBudget(0)
	open := simpleLineItem(6, 1)

	p := testPlatform(t, []*LineItem{geo, exch, seg, paused, broke, open})
	as := p.AdServers[0]
	r := req(1, 100, 1, time.Now())
	res := as.RunAuction(r)

	reasons := map[int64]ExclusionReason{}
	for _, e := range res.Exclusions {
		reasons[e.LineItemID] = e.Reason
	}
	want := map[int64]ExclusionReason{
		1: ExclGeo, 2: ExclExchange, 3: ExclSegment, 4: ExclPaused, 5: ExclBudget,
	}
	for id, reason := range want {
		if reasons[id] != reason {
			t.Errorf("line item %d excluded for %q, want %q", id, reasons[id], reason)
		}
	}
	if len(res.Candidates) != 1 || res.Candidates[0].LineItem.ID != 6 {
		t.Errorf("candidates = %+v", res.Candidates)
	}
	if res.Winner == nil || res.Winner.LineItem.ID != 6 {
		t.Error("open item should win")
	}
}

func TestSegmentTargetingUsesProfiles(t *testing.T) {
	seg := simpleLineItem(1, 1)
	seg.Segments = []int64{42}
	p := testPlatform(t, []*LineItem{seg})
	p.Store.SetSegments(100, []int64{42, 7})
	r := req(1, 100, 1, time.Now())
	res := p.AdServers[0].RunAuction(r)
	if res.Winner == nil {
		t.Fatal("user with matching segment should produce a winner")
	}
	res = p.AdServers[0].RunAuction(req(2, 101, 1, time.Now()))
	if res.Winner != nil {
		t.Fatal("user without segment should be filtered")
	}
}

func TestFrequencyCapEnforced(t *testing.T) {
	capped := simpleLineItem(1, 1)
	capped.FrequencyCap = 1
	p := testPlatform(t, []*LineItem{capped}, func(c *Config) {
		c.ExternalWinRate = 1.0 // every bid becomes an impression
	})
	now := time.Now()
	user := int64(5)
	// First request: serves and records.
	_, out, ok := p.Process(req(1, user, 1, now))
	if !ok || !out.Impression || out.ServeCount != 1 {
		t.Fatalf("first serve: ok=%v out=%+v", ok, out)
	}
	// Second request same day: frequency cap filters the item → no bid.
	if _, _, ok := p.Process(req(2, user, 1, now.Add(time.Minute))); ok {
		t.Fatal("capped item should not bid again")
	}
	// Next day: cap resets.
	if _, _, ok := p.Process(req(3, user, 1, now.Add(25*time.Hour))); !ok {
		t.Fatal("cap should reset next day")
	}
}

func TestFrequencyCapBypassedByCorruptProfile(t *testing.T) {
	// The §8.6 scenario: corrupt serve counts (e.g. negative) let a
	// capped ad serve repeatedly.
	capped := simpleLineItem(1, 1)
	capped.FrequencyCap = 1
	p := testPlatform(t, []*LineItem{capped}, func(c *Config) {
		c.ExternalWinRate = 1.0
	})
	now := time.Now()
	user := int64(5)
	served := 0
	for i := uint64(1); i <= 5; i++ {
		if _, out, ok := p.Process(req(i, user, 1, now.Add(time.Duration(i)*time.Minute))); ok && out.Impression {
			served++
		}
		// The corrupt feed clobbers the count after every serve.
		p.Store.CorruptServeCounts(user, map[int64]int{1: -3}, now)
	}
	if served != 5 {
		t.Errorf("corrupt profile served %d times, cap was 1 — expected 5 (the bug)", served)
	}
}

func TestBudgetExhaustionStopsBidding(t *testing.T) {
	tiny := simpleLineItem(1, 10)
	tiny.SetBudget(20) // a few impressions
	p := testPlatform(t, []*LineItem{tiny}, func(c *Config) {
		c.ExternalWinRate = 1.0
	})
	now := time.Now()
	bids := 0
	for i := uint64(1); i <= 100; i++ {
		if _, _, ok := p.Process(req(i, int64(i), 1, now)); ok {
			bids++
		}
	}
	if bids >= 100 {
		t.Error("budget never exhausted")
	}
	if bids < 2 {
		t.Errorf("bids = %d, budget should cover a few", bids)
	}
	if tiny.BudgetRemaining() > 0.0 {
		t.Errorf("remaining budget = %v", tiny.BudgetRemaining())
	}
}

func TestABModelsDiffer(t *testing.T) {
	item := simpleLineItem(1, 2.0)
	item.SetBudget(1e9) // never exhausts during the test
	items := []*LineItem{item}
	p := testPlatform(t, items, func(c *Config) {
		c.ModelForAdServer = func(i int) TargetingModel {
			if i == 0 {
				return BaselineModel{}
			}
			return ImprovedModel{}
		}
		c.ExternalWinRate = 1.0
	})
	if hosts := p.AdServerHostsForModel("A"); len(hosts) != 1 {
		t.Errorf("model A hosts = %v", hosts)
	}
	if hosts := p.PresentationHostsForModel("B"); len(hosts) != 1 {
		t.Errorf("model B pres hosts = %v", hosts)
	}
	// Model B yields a higher click rate over the same users.
	now := time.Now()
	clicks := map[string]int{}
	imps := map[string]int{}
	for i := uint64(1); i <= 20000; i++ {
		r := req(i, int64(i%1000), 1, now)
		resp, out, ok := p.Process(r)
		if !ok || !out.Impression {
			continue
		}
		imps[resp.ModelName]++
		if out.Click {
			clicks[resp.ModelName]++
		}
	}
	ctrA := float64(clicks["A"]) / float64(imps["A"])
	ctrB := float64(clicks["B"]) / float64(imps["B"])
	if ctrB <= ctrA {
		t.Errorf("CTR B (%.4f) should beat CTR A (%.4f)", ctrB, ctrA)
	}
}

func TestGenerateLineItems(t *testing.T) {
	items := GenerateLineItems(200, 1)
	if len(items) != 200 {
		t.Fatalf("generated %d", len(items))
	}
	capped, targeted := 0, 0
	seen := map[int64]bool{}
	for _, li := range items {
		if seen[li.ID] {
			t.Fatalf("duplicate id %d", li.ID)
		}
		seen[li.ID] = true
		if li.AdvisoryPrice < 0.5 || li.AdvisoryPrice > 8.01 {
			t.Errorf("price %v out of range", li.AdvisoryPrice)
		}
		if li.BudgetRemaining() <= 0 {
			t.Error("generated item without budget")
		}
		if li.FrequencyCap > 0 {
			capped++
		}
		if len(li.Countries)+len(li.Exchanges)+len(li.Segments) > 0 {
			targeted++
		}
	}
	if capped == 0 || targeted == 0 {
		t.Error("portfolio lacks variety")
	}
	// Determinism.
	again := GenerateLineItems(200, 1)
	for i := range items {
		if again[i].ID != items[i].ID || again[i].AdvisoryPrice != items[i].AdvisoryPrice {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestProfileStore(t *testing.T) {
	s := NewProfileStore()
	if got := s.Get(1); got.UserID != 1 || len(got.ServeCounts) != 0 {
		t.Errorf("empty profile = %+v", got)
	}
	s.SetSegments(1, []int64{4, 5})
	if got := s.Get(1); len(got.Segments) != 2 {
		t.Errorf("segments = %v", got.Segments)
	}
	now := time.Now()
	if n := s.RecordServe(1, 9, now); n != 1 {
		t.Errorf("first serve count = %d", n)
	}
	if n := s.RecordServe(1, 9, now); n != 2 {
		t.Errorf("second serve count = %d", n)
	}
	if n := s.ServeCount(1, 9, now); n != 2 {
		t.Errorf("read count = %d", n)
	}
	// Daily reset.
	if n := s.ServeCount(1, 9, now.Add(25*time.Hour)); n != 0 {
		t.Errorf("next-day read = %d", n)
	}
	if n := s.RecordServe(1, 9, now.Add(25*time.Hour)); n != 1 {
		t.Errorf("next-day serve = %d", n)
	}
	// Mutating a returned copy must not affect the store.
	p := s.Get(1)
	p.ServeCounts[9] = 99
	if n := s.ServeCount(1, 9, now.Add(25*time.Hour)); n != 1 {
		t.Error("Get returned shared state")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Put(UserProfile{UserID: 2, ServeCounts: map[int64]int{5: 1}})
	if s.Len() != 2 {
		t.Errorf("Len after Put = %d", s.Len())
	}
}
