package adplatform

import (
	"scrub/internal/event"
)

// Scrub event types the platform defines (paper §7: "tens of Scrub event
// types are defined"; these are the ones the case studies use).
var (
	// BidEventSchema mirrors the paper's Figure 1 bid-response event.
	BidEventSchema = event.MustSchema("bid",
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "city", Kind: event.KindString},
		event.FieldDef{Name: "country", Kind: event.KindString},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
		event.FieldDef{Name: "campaign_id", Kind: event.KindInt},
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "model", Kind: event.KindString},
	)

	// ExclusionEventSchema is generated per filtered line item at the
	// AdServers (§8.4).
	ExclusionEventSchema = event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "publisher_id", Kind: event.KindInt},
	)

	// AuctionEventSchema is generated per internal auction (§8.5), with
	// the participating line items and their bid prices.
	AuctionEventSchema = event.MustSchema("auction",
		event.FieldDef{Name: "line_item_ids", Kind: event.KindList, Elem: event.KindInt},
		event.FieldDef{Name: "bid_prices", Kind: event.KindList, Elem: event.KindFloat},
		event.FieldDef{Name: "winner_line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "winner_bid_price", Kind: event.KindFloat},
		event.FieldDef{Name: "num_candidates", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
	)

	// ImpressionEventSchema is generated at the PresentationServers when
	// an ad is actually shown (§8.2, §8.3).
	ImpressionEventSchema = event.MustSchema("impression",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "cost", Kind: event.KindFloat},
		event.FieldDef{Name: "model", Kind: event.KindString},
		event.FieldDef{Name: "serve_count", Kind: event.KindInt},
	)

	// ClickEventSchema is generated when the user interacts with a shown
	// ad (§8.3).
	ClickEventSchema = event.MustSchema("click",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "model", Kind: event.KindString},
	)
)

// RegisterEventTypes installs the platform's event types into a catalog.
func RegisterEventTypes(cat *event.Catalog) {
	cat.MustRegister(BidEventSchema)
	cat.MustRegister(ExclusionEventSchema)
	cat.MustRegister(AuctionEventSchema)
	cat.MustRegister(ImpressionEventSchema)
	cat.MustRegister(ClickEventSchema)
}
