// Package adplatform simulates the online advertisement bidding platform
// Scrub was built for (paper §7): BidServers receive bid requests from ad
// exchanges, AdServers run the filtering phase (producing exclusions) and
// the internal auction over line items, and PresentationServers record
// impressions and clicks, updating user profiles in the ProfileStore.
//
// The paper evaluates Scrub on Turn's production platform — thousands of
// machines, millions of requests per second. That substrate is not
// available, so this package reproduces its *behavioral shape*: the same
// event types at the same relative volumes (a bid request fans out to
// many exclusions, a few auction candidates, occasional impressions and
// rare clicks), the same state dependencies (frequency caps read/write
// user profiles), and the same failure modes the case studies
// investigate (spam bots, exchange onboarding, A/B model differences,
// cannibalization, corrupt profile data).
package adplatform

import (
	"fmt"
	"sync/atomic"
)

// ExclusionReason labels why the filtering phase removed a line item from
// a bid request's auction.
type ExclusionReason string

// Exclusion reasons, mirroring the filtering phase's checks.
const (
	ExclGeo          ExclusionReason = "geo_mismatch"
	ExclExchange     ExclusionReason = "exchange_mismatch"
	ExclSegment      ExclusionReason = "segment_mismatch"
	ExclBudget       ExclusionReason = "budget_exhausted"
	ExclFrequencyCap ExclusionReason = "frequency_cap"
	ExclPaused       ExclusionReason = "paused"
)

// BidRequest is one ad opportunity arriving from an exchange.
type BidRequest struct {
	RequestID   uint64
	ExchangeID  int64
	UserID      int64
	Country     string
	City        string
	PublisherID int64
	TimeNanos   int64 // event (virtual) time
}

// Campaign groups line items under one advertiser budget.
type Campaign struct {
	ID           int64
	AdvertiserID int64
}

// LineItem is one deliverable ad with its targeting and economics.
type LineItem struct {
	ID         int64
	CampaignID int64

	// Targeting criteria: empty slice means "any".
	Countries []string
	Exchanges []int64
	Segments  []int64 // user must have at least one

	// AdvisoryPrice is the preconfigured bid price; the auction adjusts
	// it by the model score so actual bids move in a narrow band around
	// it (paper §8.5).
	AdvisoryPrice float64

	// FrequencyCap bounds ads shown per user per day (0 = uncapped).
	FrequencyCap int

	// Budget is the remaining spend in micro-dollars; hitting zero
	// excludes the line item. Accessed atomically.
	budgetMicros atomic.Int64

	Paused bool
}

// SetBudget initializes the remaining budget in whole dollars.
func (li *LineItem) SetBudget(dollars float64) {
	li.budgetMicros.Store(int64(dollars * 1e6))
}

// BudgetRemaining returns the remaining budget in dollars.
func (li *LineItem) BudgetRemaining() float64 {
	return float64(li.budgetMicros.Load()) / 1e6
}

// spend decrements the budget by cost dollars; it reports false when the
// budget was already exhausted.
func (li *LineItem) spend(cost float64) bool {
	return li.budgetMicros.Add(-int64(cost*1e6)) > 0
}

func (li *LineItem) exhausted() bool { return li.budgetMicros.Load() <= 0 }

// matchesGeo checks the country criterion.
func (li *LineItem) matchesGeo(country string) bool {
	if len(li.Countries) == 0 {
		return true
	}
	for _, c := range li.Countries {
		if c == country {
			return true
		}
	}
	return false
}

// matchesExchange checks the exchange criterion.
func (li *LineItem) matchesExchange(ex int64) bool {
	if len(li.Exchanges) == 0 {
		return true
	}
	for _, e := range li.Exchanges {
		if e == ex {
			return true
		}
	}
	return false
}

// matchesSegments checks the audience criterion against a user's
// segments.
func (li *LineItem) matchesSegments(userSegs []int64) bool {
	if len(li.Segments) == 0 {
		return true
	}
	for _, want := range li.Segments {
		for _, have := range userSegs {
			if want == have {
				return true
			}
		}
	}
	return false
}

// Exclusion is one filtering-phase rejection.
type Exclusion struct {
	LineItemID int64
	Reason     ExclusionReason
}

// Candidate is a line item that survived filtering, with its auction
// pricing.
type Candidate struct {
	LineItem *LineItem
	Score    float64 // model score in (0,1)
	BidPrice float64 // advisory price adjusted by score
}

// AuctionResult is the internal auction's outcome for one bid request.
type AuctionResult struct {
	Candidates []Candidate
	Exclusions []Exclusion
	Winner     *Candidate // nil when no line item survived
}

// BidResponse is what a BidServer returns to the exchange.
type BidResponse struct {
	RequestID  uint64
	LineItemID int64
	CampaignID int64
	BidPrice   float64
	ModelName  string
}

func (b BidResponse) String() string {
	return fmt.Sprintf("bid{req=%d li=%d price=%.4f}", b.RequestID, b.LineItemID, b.BidPrice)
}
