package adplatform

import (
	"scrub/internal/event"
	"scrub/internal/host"
)

// BidServer fronts the exchanges: it receives bid requests, consults an
// AdServer for filtering and the internal auction, and returns the bid
// response — all inside the exchange's latency budget (paper §7: the
// whole transaction completes in under 20ms). The bid event (Figure 1)
// is logged here.
type BidServer struct {
	agent *host.Agent
}

// NewBidServer builds a BidServer around its embedded agent.
func NewBidServer(agent *host.Agent) *BidServer {
	return &BidServer{agent: agent}
}

// Agent exposes the embedded Scrub agent.
func (s *BidServer) Agent() *host.Agent { return s.agent }

// Respond turns an auction result into a bid response (or a no-bid) and
// logs the bid event.
func (s *BidServer) Respond(req BidRequest, auction AuctionResult, modelName string) (BidResponse, bool) {
	if auction.Winner == nil {
		return BidResponse{}, false
	}
	w := auction.Winner
	resp := BidResponse{
		RequestID:  req.RequestID,
		LineItemID: w.LineItem.ID,
		CampaignID: w.LineItem.CampaignID,
		BidPrice:   w.BidPrice,
		ModelName:  modelName,
	}
	s.agent.Log(event.NewBuilder(BidEventSchema).
		SetRequestID(req.RequestID).SetTimeNanos(req.TimeNanos).
		Int("exchange_id", req.ExchangeID).
		Int("user_id", req.UserID).
		Str("city", req.City).
		Str("country", req.Country).
		Float("bid_price", resp.BidPrice).
		Int("campaign_id", resp.CampaignID).
		Int("line_item_id", resp.LineItemID).
		Str("model", modelName).
		MustBuild())
	return resp, true
}
