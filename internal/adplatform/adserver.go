package adplatform

import (
	"time"

	"scrub/internal/event"
	"scrub/internal/host"
)

// AdServer runs the filtering phase and the internal auction (paper §7):
// every active line item either survives filtering into the auction or
// produces an exclusion; the auction scores survivors with the server's
// targeting model and picks the highest adjusted bid.
type AdServer struct {
	agent     *host.Agent
	store     *ProfileStore
	model     TargetingModel
	lineItems []*LineItem

	// EmitExclusions controls whether exclusion events are logged (they
	// dominate event volume, as in production: "every bid request
	// produces tens of thousands of exclusions", §8.4).
	EmitExclusions bool
	// EmitAuctions controls auction-event logging (§8.5).
	EmitAuctions bool
}

// NewAdServer builds an AdServer around its embedded agent.
func NewAdServer(agent *host.Agent, store *ProfileStore, model TargetingModel, lineItems []*LineItem) *AdServer {
	return &AdServer{
		agent: agent, store: store, model: model, lineItems: lineItems,
		EmitExclusions: true, EmitAuctions: true,
	}
}

// Agent exposes the embedded Scrub agent.
func (s *AdServer) Agent() *host.Agent { return s.agent }

// Model returns the installed targeting model.
func (s *AdServer) Model() TargetingModel { return s.model }

// filter applies the filtering-phase checks in their production order;
// the first failing check names the exclusion reason.
func (s *AdServer) filter(li *LineItem, req BidRequest, profile UserProfile, now time.Time) (ExclusionReason, bool) {
	switch {
	case li.Paused:
		return ExclPaused, false
	case !li.matchesGeo(req.Country):
		return ExclGeo, false
	case !li.matchesExchange(req.ExchangeID):
		return ExclExchange, false
	case !li.matchesSegments(profile.Segments):
		return ExclSegment, false
	case li.exhausted():
		return ExclBudget, false
	case li.FrequencyCap > 0 && s.store.ServeCount(req.UserID, li.ID, now) >= li.FrequencyCap:
		return ExclFrequencyCap, false
	default:
		return "", true
	}
}

// RunAuction filters line items and runs the internal auction, logging
// exclusion and auction events along the way.
func (s *AdServer) RunAuction(req BidRequest) AuctionResult {
	now := time.Unix(0, req.TimeNanos)
	profile := s.store.Get(req.UserID)

	res := AuctionResult{}
	for _, li := range s.lineItems {
		if reason, ok := s.filter(li, req, profile, now); !ok {
			res.Exclusions = append(res.Exclusions, Exclusion{LineItemID: li.ID, Reason: reason})
			if s.EmitExclusions {
				s.agent.Log(event.NewBuilder(ExclusionEventSchema).
					SetRequestID(req.RequestID).SetTimeNanos(req.TimeNanos).
					Int("line_item_id", li.ID).
					Str("reason", string(reason)).
					Int("exchange_id", req.ExchangeID).
					Int("publisher_id", req.PublisherID).
					MustBuild())
			}
			continue
		}
		score := s.model.Score(profile, li)
		res.Candidates = append(res.Candidates, Candidate{
			LineItem: li,
			Score:    score,
			BidPrice: priceForScore(li.AdvisoryPrice, score),
		})
	}

	// Highest adjusted bid wins; ties break to the lower id for
	// determinism.
	for i := range res.Candidates {
		c := &res.Candidates[i]
		w := res.Winner
		if w == nil || c.BidPrice > w.BidPrice ||
			(c.BidPrice == w.BidPrice && c.LineItem.ID < w.LineItem.ID) {
			res.Winner = c
		}
	}

	if s.EmitAuctions && len(res.Candidates) > 0 {
		ids := make([]int64, len(res.Candidates))
		prices := make([]float64, len(res.Candidates))
		for i, c := range res.Candidates {
			ids[i] = c.LineItem.ID
			prices[i] = c.BidPrice
		}
		b := event.NewBuilder(AuctionEventSchema).
			SetRequestID(req.RequestID).SetTimeNanos(req.TimeNanos).
			Set("line_item_ids", event.IntList(ids...)).
			Set("bid_prices", event.FloatList(prices...)).
			Int("num_candidates", int64(len(res.Candidates))).
			Int("exchange_id", req.ExchangeID)
		if res.Winner != nil {
			b.Int("winner_line_item_id", res.Winner.LineItem.ID).
				Float("winner_bid_price", res.Winner.BidPrice)
		}
		s.agent.Log(b.MustBuild())
	}
	return res
}
