package workload

import (
	"testing"
	"time"

	"scrub/internal/adplatform"
)

func TestSpecValidation(t *testing.T) {
	if _, err := NewGenerator(Spec{}, time.Now()); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := NewGenerator(Spec{NumUsers: 1, Exchanges: []Exchange{{ID: 1, Weight: -1}}}, time.Now()); err == nil {
		t.Error("negative exchange weight should fail")
	}
	if _, err := NewGenerator(Spec{Bots: []BotSpec{{UserID: 1}}}, time.Now()); err == nil {
		t.Error("bot without batch/period should fail")
	}
}

func TestDeterminism(t *testing.T) {
	spec := Spec{Seed: 7, NumUsers: 100, MeanPageViewsPerMin: 10}
	start := time.Unix(1000, 0)
	collect := func() []adplatform.BidRequest {
		g, err := NewGenerator(spec, start)
		if err != nil {
			t.Fatal(err)
		}
		var out []adplatform.BidRequest
		g.Run(time.Minute, func(r adplatform.BidRequest) { out = append(out, r) })
		return out
	}
	a, b := collect(), collect()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lens %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestVirtualTimeOrderingAndBounds(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 1, NumUsers: 200, MeanPageViewsPerMin: 6}, time.Unix(5000, 0))
	if err != nil {
		t.Fatal(err)
	}
	startN := time.Unix(5000, 0).UnixNano()
	endN := time.Unix(5000, 0).Add(2 * time.Minute).UnixNano()
	prevPageTs := int64(0)
	n := g.Run(2*time.Minute, func(r adplatform.BidRequest) {
		if r.TimeNanos < startN || r.TimeNanos >= endN+int64(10*time.Millisecond) {
			t.Fatalf("ts %d outside run bounds", r.TimeNanos)
		}
		// Page views are non-decreasing (slots within a view advance by
		// only milliseconds).
		if r.TimeNanos+int64(50*time.Millisecond) < prevPageTs {
			t.Fatalf("time went backwards: %d after %d", r.TimeNanos, prevPageTs)
		}
		if r.TimeNanos > prevPageTs {
			prevPageTs = r.TimeNanos
		}
		if r.RequestID == 0 || r.UserID < 0 || r.Country == "" || r.City == "" {
			t.Fatalf("malformed request %+v", r)
		}
	})
	// 200 users × 6 views/min × 2 min × ~2 slots ≈ 4800 requests.
	if n < 2000 || n > 9000 {
		t.Errorf("generated %d requests, want ≈4800", n)
	}
	if g.Requests() != uint64(n) {
		t.Errorf("Requests() = %d, n = %d", g.Requests(), n)
	}
}

func TestHumanRequestRatesAreMostlyLow(t *testing.T) {
	// The spam case study's baseline: most users issue a single bid
	// request batch per window; the per-user per-10s count distribution
	// decays fast.
	g, err := NewGenerator(Spec{Seed: 3, NumUsers: 2000, MeanPageViewsPerMin: 1}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	perUserWindow := map[[2]int64]int{}
	g.Run(time.Minute, func(r adplatform.BidRequest) {
		w := r.TimeNanos / int64(10*time.Second)
		perUserWindow[[2]int64{r.UserID, w}]++
	})
	low, high := 0, 0
	for _, c := range perUserWindow {
		if c <= 3 {
			low++
		}
		if c > 20 {
			high++
		}
	}
	if low == 0 {
		t.Fatal("no low-rate user-windows at all")
	}
	if float64(high) > 0.02*float64(len(perUserWindow)) {
		t.Errorf("too many heavy user-windows: %d of %d", high, len(perUserWindow))
	}
}

func TestBotsDominateTheirWindows(t *testing.T) {
	g, err := NewGenerator(Spec{
		Seed: 4, NumUsers: 500, MeanPageViewsPerMin: 1,
		Bots: []BotSpec{
			{UserID: 666666, BatchSize: 500, Period: 10 * time.Second},
			{UserID: 777777, BatchSize: 300, Period: 15 * time.Second, StartAt: 5 * time.Second},
		},
	}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	g.Run(time.Minute, func(r adplatform.BidRequest) { counts[r.UserID]++ })
	if counts[666666] != 6*500 {
		t.Errorf("bot 666666 issued %d, want 3000", counts[666666])
	}
	if counts[777777] != 4*300 {
		t.Errorf("bot 777777 issued %d, want 1200", counts[777777])
	}
	// Bots vastly outpace any human.
	maxHuman := 0
	for u, c := range counts {
		if u != 666666 && u != 777777 && c > maxHuman {
			maxHuman = c
		}
	}
	if maxHuman >= 500 {
		t.Errorf("a human issued %d requests — population too hot", maxHuman)
	}
}

func TestBotStopAt(t *testing.T) {
	g, err := NewGenerator(Spec{
		NumUsers: 1, MeanPageViewsPerMin: 0.0001,
		Bots: []BotSpec{{UserID: 9, BatchSize: 10, Period: 10 * time.Second, StopAt: 25 * time.Second}},
	}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	botReqs := 0
	g.Run(time.Minute, func(r adplatform.BidRequest) {
		if r.UserID == 9 {
			botReqs++
		}
	})
	// Bursts at 0s, 10s, 20s — stopped before 30s.
	if botReqs != 30 {
		t.Errorf("bot requests = %d, want 30", botReqs)
	}
}

func TestExchangeOnboarding(t *testing.T) {
	// Exchange 4 enables at t=30s: no traffic before, plenty after.
	g, err := NewGenerator(Spec{
		Seed: 5, NumUsers: 1000, MeanPageViewsPerMin: 4,
		Exchanges: []Exchange{
			{ID: 1, Weight: 1},
			{ID: 2, Weight: 1},
			{ID: 3, Weight: 1},
			{ID: 4, Weight: 3, EnableAt: 30 * time.Second},
		},
	}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	before := map[int64]int{}
	after := map[int64]int{}
	g.Run(time.Minute, func(r adplatform.BidRequest) {
		if r.TimeNanos < int64(30*time.Second) {
			before[r.ExchangeID]++
		} else {
			after[r.ExchangeID]++
		}
	})
	if before[4] != 0 {
		t.Errorf("exchange 4 saw %d requests before enabling", before[4])
	}
	if after[4] == 0 {
		t.Error("exchange 4 saw no traffic after enabling")
	}
	// Weight 3 vs 1+1+1: exchange 4 should carry about half of post-
	// enable traffic.
	total := after[1] + after[2] + after[3] + after[4]
	share := float64(after[4]) / float64(total)
	if share < 0.35 || share > 0.65 {
		t.Errorf("exchange 4 share = %.2f, want ≈0.5", share)
	}
}

func TestUsersAndProfiles(t *testing.T) {
	g, err := NewGenerator(Spec{Seed: 6, NumUsers: 50, NumSegments: 10, FirstUserID: 1000}, time.Unix(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	users := g.Users()
	if len(users) != 50 {
		t.Fatalf("users = %d", len(users))
	}
	for id, segs := range users {
		if id < 1000 || id >= 1050 {
			t.Errorf("user id %d outside range", id)
		}
		if len(segs) == 0 || len(segs) > 4 {
			t.Errorf("user %d has %d segments", id, len(segs))
		}
		for _, s := range segs {
			if s < 1 || s > 10 {
				t.Errorf("segment %d out of universe", s)
			}
		}
	}
	store := adplatform.NewProfileStore()
	g.InstallProfiles(store)
	if store.Len() != 50 {
		t.Errorf("installed %d profiles", store.Len())
	}
}
