// Package workload generates the synthetic-but-shaped traffic the
// simulated ad platform consumes: a heterogeneous human user population
// (log-normal page-view rates, multi-slot pages), exchanges with
// weights and onboarding times (§8.2), and spam bots issuing large
// high-frequency request batches (§8.1). Generation is an event-driven
// simulation over virtual time, fully deterministic for a seed.
package workload

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"time"

	"scrub/internal/adplatform"
)

// Exchange is one ad exchange in the mix.
type Exchange struct {
	ID     int64
	Weight float64
	// EnableAt is the virtual offset when the exchange starts sending
	// traffic — the §8.2 onboarding moment. Zero means from the start.
	EnableAt time.Duration
}

// BotSpec is one spam bot (§8.1): it fires a batch of bid requests every
// Period, simulating scripted page views at inhuman frequency.
type BotSpec struct {
	UserID    int64
	BatchSize int
	Period    time.Duration
	StartAt   time.Duration // first burst offset
	StopAt    time.Duration // 0 = never stops
}

// Spec parametrizes a traffic generator.
type Spec struct {
	Seed     int64
	NumUsers int
	// MeanPageViewsPerMin is the population mean page-view rate; actual
	// per-user rates are log-normal around it (humans are heterogeneous).
	MeanPageViewsPerMin float64
	// SlotsPerPage bounds ad slots per page view (each slot is one bid
	// request); default [1, 3].
	MinSlots, MaxSlots int

	Countries []string // uniform per-user assignment; default {"US","GB","DE","FR","BR"}
	Cities    []string // default a small city list
	// NumSegments is the segment-id universe; each user gets 1–4.
	NumSegments int

	Exchanges []Exchange
	Bots      []BotSpec

	// FirstUserID offsets generated user ids (bots use their own ids).
	FirstUserID int64
}

func (s *Spec) fillDefaults() error {
	if s.NumUsers <= 0 && len(s.Bots) == 0 {
		return fmt.Errorf("workload: no users and no bots")
	}
	if s.MeanPageViewsPerMin <= 0 {
		s.MeanPageViewsPerMin = 2
	}
	if s.MinSlots <= 0 {
		s.MinSlots = 1
	}
	if s.MaxSlots < s.MinSlots {
		s.MaxSlots = s.MinSlots + 2
	}
	if len(s.Countries) == 0 {
		s.Countries = []string{"US", "GB", "DE", "FR", "BR"}
	}
	if len(s.Cities) == 0 {
		s.Cities = []string{"san jose", "london", "berlin", "paris", "sao paulo", "new york", "austin"}
	}
	if s.NumSegments <= 0 {
		s.NumSegments = 50
	}
	if len(s.Exchanges) == 0 {
		s.Exchanges = []Exchange{{ID: 1, Weight: 1}}
	}
	for i, e := range s.Exchanges {
		if e.Weight <= 0 {
			return fmt.Errorf("workload: exchange %d has non-positive weight", i)
		}
	}
	return nil
}

// userState is one simulated human.
type userState struct {
	id       int64
	country  string
	city     string
	segments []int64
	rate     float64 // page views per virtual second
}

// actor is a schedulable traffic source.
type actor struct {
	nextNanos int64
	user      *userState
	bot       *BotSpec
	index     int // heap bookkeeping
}

type actorHeap []*actor

func (h actorHeap) Len() int           { return len(h) }
func (h actorHeap) Less(i, j int) bool { return h[i].nextNanos < h[j].nextNanos }
func (h actorHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *actorHeap) Push(x any)        { a := x.(*actor); a.index = len(*h); *h = append(*h, a) }
func (h *actorHeap) Pop() any          { old := *h; n := len(old); a := old[n-1]; *h = old[:n-1]; return a }

// Generator produces bid requests in virtual-time order.
type Generator struct {
	spec  Spec
	rng   *rand.Rand
	users []*userState
	start int64 // virtual epoch, unix nanos
	reqID uint64
	heap  actorHeap
}

// NewGenerator builds a generator whose virtual clock starts at start.
func NewGenerator(spec Spec, start time.Time) (*Generator, error) {
	if err := spec.fillDefaults(); err != nil {
		return nil, err
	}
	g := &Generator{
		spec:  spec,
		rng:   rand.New(rand.NewSource(spec.Seed)),
		start: start.UnixNano(),
	}
	// Build the human population: per-user rates log-normal around the
	// population mean (σ=0.8 gives a realistic heavy tail).
	meanPerSec := spec.MeanPageViewsPerMin / 60
	for i := 0; i < spec.NumUsers; i++ {
		u := &userState{
			id:      spec.FirstUserID + int64(i),
			country: spec.Countries[g.rng.Intn(len(spec.Countries))],
			city:    spec.Cities[g.rng.Intn(len(spec.Cities))],
			rate:    meanPerSec * math.Exp(g.rng.NormFloat64()*0.8-0.32), // mean-preserving
		}
		nSegs := 1 + g.rng.Intn(4)
		for s := 0; s < nSegs; s++ {
			u.segments = append(u.segments, int64(1+g.rng.Intn(spec.NumSegments)))
		}
		g.users = append(g.users, u)
		first := g.start + g.exponential(u.rate)
		heap.Push(&g.heap, &actor{nextNanos: first, user: u})
	}
	for i := range spec.Bots {
		b := &spec.Bots[i]
		if b.BatchSize <= 0 || b.Period <= 0 {
			return nil, fmt.Errorf("workload: bot %d needs positive BatchSize and Period", i)
		}
		heap.Push(&g.heap, &actor{nextNanos: g.start + int64(b.StartAt), bot: b})
	}
	return g, nil
}

// exponential draws an exponential inter-arrival in nanos for a
// per-second rate.
func (g *Generator) exponential(ratePerSec float64) int64 {
	if ratePerSec <= 0 {
		return int64(time.Hour * 24 * 365)
	}
	return int64(g.rng.ExpFloat64() / ratePerSec * float64(time.Second))
}

// Users returns the simulated human users' ids and segments, for
// installing profiles into the platform's ProfileStore.
func (g *Generator) Users() map[int64][]int64 {
	out := make(map[int64][]int64, len(g.users))
	for _, u := range g.users {
		out[u.id] = append([]int64(nil), u.segments...)
	}
	return out
}

// InstallProfiles seeds the platform's ProfileStore with the user
// population's segments.
func (g *Generator) InstallProfiles(store *adplatform.ProfileStore) {
	for _, u := range g.users {
		store.SetSegments(u.id, u.segments)
	}
}

// pickExchange chooses an exchange active at virtual time t.
func (g *Generator) pickExchange(tNanos int64) (int64, bool) {
	var total float64
	for _, e := range g.spec.Exchanges {
		if tNanos >= g.start+int64(e.EnableAt) {
			total += e.Weight
		}
	}
	if total == 0 {
		return 0, false
	}
	x := g.rng.Float64() * total
	for _, e := range g.spec.Exchanges {
		if tNanos < g.start+int64(e.EnableAt) {
			continue
		}
		x -= e.Weight
		if x <= 0 {
			return e.ID, true
		}
	}
	return g.spec.Exchanges[len(g.spec.Exchanges)-1].ID, true
}

// Run generates all bid requests in [start, start+duration), in virtual
// time order, invoking fn for each. It returns the number generated.
func (g *Generator) Run(duration time.Duration, fn func(adplatform.BidRequest)) int {
	endNanos := g.start + int64(duration)
	n := 0
	for g.heap.Len() > 0 {
		a := g.heap[0]
		if a.nextNanos >= endNanos {
			break
		}
		t := a.nextNanos
		switch {
		case a.user != nil:
			n += g.emitPageView(a.user, t, fn)
			a.nextNanos = t + g.exponential(a.user.rate)
		case a.bot != nil:
			b := a.bot
			if b.StopAt != 0 && t >= g.start+int64(b.StopAt) {
				heap.Pop(&g.heap)
				continue
			}
			n += g.emitBotBurst(b, t, fn)
			a.nextNanos = t + int64(b.Period)
		}
		heap.Fix(&g.heap, 0)
	}
	return n
}

// emitPageView issues one page view's bid requests (one per ad slot).
func (g *Generator) emitPageView(u *userState, tNanos int64, fn func(adplatform.BidRequest)) int {
	ex, ok := g.pickExchange(tNanos)
	if !ok {
		return 0
	}
	slots := g.spec.MinSlots
	if g.spec.MaxSlots > g.spec.MinSlots {
		slots += g.rng.Intn(g.spec.MaxSlots - g.spec.MinSlots + 1)
	}
	publisher := int64(1 + g.rng.Intn(200))
	for s := 0; s < slots; s++ {
		g.reqID++
		fn(adplatform.BidRequest{
			RequestID:   g.reqID,
			ExchangeID:  ex,
			UserID:      u.id,
			Country:     u.country,
			City:        u.city,
			PublisherID: publisher,
			TimeNanos:   tNanos + int64(s)*int64(time.Millisecond),
		})
	}
	return slots
}

// emitBotBurst issues one bot batch: BatchSize requests spread over a
// few milliseconds — scripted fake page views.
func (g *Generator) emitBotBurst(b *BotSpec, tNanos int64, fn func(adplatform.BidRequest)) int {
	ex, ok := g.pickExchange(tNanos)
	if !ok {
		return 0
	}
	for i := 0; i < b.BatchSize; i++ {
		g.reqID++
		fn(adplatform.BidRequest{
			RequestID:   g.reqID,
			ExchangeID:  ex,
			UserID:      b.UserID,
			Country:     "US",
			City:        "botville",
			PublisherID: 666,
			TimeNanos:   tNanos + int64(i)*int64(100*time.Microsecond),
		})
	}
	return b.BatchSize
}

// Requests returns how many bid requests have been generated so far.
func (g *Generator) Requests() uint64 { return g.reqID }
