package central

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scrub/internal/liveness"
	"scrub/internal/obs"
	"scrub/internal/transport"
	"scrub/internal/window"
)

// Executor is the central-execution surface the query server drives. Both
// the single-node Engine and the ShardedEngine satisfy it.
type Executor interface {
	StartQuery(p Plan, emit EmitFunc) error
	HandleBatch(b transport.TupleBatch)
	Tick(nowNanos int64)
	StopQuery(id uint64) (transport.QueryStats, bool)
	Stats(id uint64) (transport.QueryStats, bool)
	ActiveQueries() []uint64
}

var (
	_ Executor = (*Engine)(nil)
	_ Executor = (*ShardedEngine)(nil)
)

// shardLateness effectively disables event-time closing inside shards:
// the merger is the only component that closes windows, at barriers that
// cover every shard, so a window it flushes is complete by construction.
const shardLateness = 365 * 24 * time.Hour

// ShardedEngine is a multi-shard ScrubCentral — the paper's "small
// ScrubCentral cluster" (§8.1). Tuples route to shards by request id, so
// the request-identifier equi-join stays shard-local; group and raw
// window state is merged across shards at window close through the
// mergeable aggregators, then rendered exactly like the single-node
// engine (scale-up, bounds, HAVING, ORDER BY, LIMIT).
type ShardedEngine struct {
	opt    Options
	met    *centralMetrics // merger-level; shards keep private nil metrics
	shards []*Engine

	mu      sync.Mutex
	queries map[uint64]*shardedQuery
}

type shardedQuery struct {
	plan Plan // real lateness, post-defaults
	comp *compiled
	emit EmitFunc

	// streams holds the per-(host, type) leases and counters at the
	// merger — the only place that sees whole batches. Shards receive
	// tuples stripped of counters and never emit on their own, so stream
	// liveness lives here.
	streams *liveness.Table
	// pending holds merged-but-unflushed window partials by start time.
	pending map[int64]*winState
	stats   transport.QueryStats
	// mergeDrops counts raw rows truncated when shard partials merged past
	// MaxRawRows; folded into the query's late/overflow totals.
	mergeDrops uint64
	// stoppedShardDrops carries the shards' cumulative late/overflow drop
	// totals once StopQuery has torn the shard queries down: windows
	// flushed during shutdown can no longer poll dropsOf, and without this
	// their stats would silently forget every drop counted so far.
	stoppedShardDrops uint64
	tuplesC           *obs.Counter // per-query ingest counter; nil without a registry
	// Replay hold — the exact twin of queryState's (see engine.go): while
	// open, the merger neither collects nor flushes windows for the query.
	replayHold     bool
	replayDeadline int64
}

// NewShardedEngine creates an engine with n shards (n >= 1) and default
// Options.
func NewShardedEngine(n int) (*ShardedEngine, error) {
	return NewShardedEngineWith(n, Options{})
}

// NewShardedEngineWith creates an engine with n shards (n >= 1).
func NewShardedEngineWith(n int, opt Options) (*ShardedEngine, error) {
	if n < 1 {
		return nil, fmt.Errorf("central: shard count must be >= 1, got %d", n)
	}
	opt.fillDefaults()
	se := &ShardedEngine{opt: opt, met: newCentralMetrics(opt.Metrics), queries: make(map[uint64]*shardedQuery)}
	// Shards must not register series of their own — whole-batch ingest
	// accounting lives at the merger, and shard-level registration would
	// double-count it under the same names.
	shardOpt := opt
	shardOpt.Metrics = nil
	for i := 0; i < n; i++ {
		se.shards = append(se.shards, NewEngineWith(shardOpt))
	}
	return se, nil
}

// NumShards returns the shard count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// StartQuery implements Executor.
func (se *ShardedEngine) StartQuery(p Plan, emit EmitFunc) error {
	if emit == nil {
		return fmt.Errorf("central: nil emit")
	}
	if err := p.fillDefaults(); err != nil {
		return err
	}
	comp, err := compile(&p)
	if err != nil {
		return fmt.Errorf("central: compile plan: %w", err)
	}
	if _, err := p.newAggSet(); err != nil {
		return err
	}

	se.mu.Lock()
	if _, dup := se.queries[p.QueryID]; dup {
		se.mu.Unlock()
		return fmt.Errorf("central: query %d already active", p.QueryID)
	}
	sq := &shardedQuery{
		plan: p, comp: comp, emit: emit,
		streams: liveness.NewTable(se.opt.LeaseTTL),
		pending: make(map[int64]*winState),
		tuplesC: se.met.queryTuples(p.QueryID),
	}
	if p.Replay > 0 {
		sq.replayHold = true
		sq.replayDeadline = se.opt.Clock().UnixNano() + 2*int64(se.opt.LeaseTTL)
	}
	se.queries[p.QueryID] = sq
	se.mu.Unlock()

	for i, sh := range se.shards {
		sp := p
		sp.Lateness = shardLateness
		if err := sh.startQueryDriven(sp); err != nil {
			// Roll back the shards already started.
			for j := 0; j < i; j++ {
				se.shards[j].stopQueryDriven(p.QueryID)
			}
			se.mu.Lock()
			delete(se.queries, p.QueryID)
			se.mu.Unlock()
			return err
		}
	}
	return nil
}

// HandleBatch implements Executor: counters stay at the merger; tuples
// split across shards by request id. The merger mirrors the single-node
// engine's event-time semantics exactly — span filtering, watermark
// advancement on the max in-span event time, per-stream late-drop
// attribution, and window closing as the watermark passes — so the two
// executors agree batch for batch, not just at wall-clock ticks.
func (se *ShardedEngine) HandleBatch(b transport.TupleBatch) {
	se.mu.Lock()
	defer se.mu.Unlock()
	sq, ok := se.queries[b.QueryID]
	if !ok {
		return
	}
	if int(b.TypeIdx) >= len(sq.plan.Types) {
		return
	}
	nowN := se.opt.Clock().UnixNano()
	st, _ := sq.streams.Touch(
		liveness.Key{Host: b.HostID, TypeIdx: b.TypeIdx},
		nowN,
	)
	// Counters are cumulative; max() keeps chaos-induced reorder or
	// duplication from regressing them.
	st.Matched = max(st.Matched, b.MatchedTotal)
	st.Sampled = max(st.Sampled, b.SampledTotal)
	st.Drops = max(st.Drops, b.QueueDrops)
	st.FoldGovernor(b.EffRate, b.BudgetShed, b.CPUNs, b.ShipBytes)
	sq.streams.FoldReplay(st, b.ReplayEpoch, b.ReplayDone)
	if se.met != nil {
		se.met.batches.Inc()
		se.met.tuples.Add(uint64(len(b.Tuples)))
	}
	if sq.tuplesC != nil {
		sq.tuplesC.Add(uint64(len(b.Tuples)))
	}
	// Mirror Engine.HandleBatch: a tuple-free batch is worth processing
	// only when its ReplayDone marker just released the replay hold.
	wasHolding := sq.replayHold
	holding := replayHolding(&sq.replayHold, sq.replayDeadline, sq.streams, nowN)
	released := wasHolding && !holding
	if len(b.Tuples) == 0 && !released {
		return
	}
	n := uint64(len(se.shards))
	sub := make([][]transport.Tuple, len(se.shards))
	dataStart := sq.plan.DataStartNanos()
	var maxTs int64
	hasTs := false
	for _, t := range b.Tuples {
		// Out-of-span tuples neither reach a shard nor advance the
		// stream's event clock (same filter as Engine.HandleBatch).
		if dataStart != 0 && t.TsNanos < dataStart {
			continue
		}
		if sq.plan.EndNanos != 0 && t.TsNanos >= sq.plan.EndNanos {
			continue
		}
		if !hasTs || t.TsNanos > maxTs {
			maxTs = t.TsNanos
			hasTs = true
		}
		i := int(t.RequestID % n)
		// The sub-batches alias the caller's pooled tuple memory, but only
		// within this call: the fan-out below is synchronous and each shard
		// engine deep-copies whatever it keeps (see Engine.processTuple).
		//scrub:allowretain(synchronous fan-out; shards deep-copy kept tuples before HandleBatch returns)
		sub[i] = append(sub[i], t)
	}
	lateBefore := se.winLateLocked(b.QueryID)
	for i, tuples := range sub {
		if len(tuples) == 0 {
			continue
		}
		se.shards[i].HandleBatch(transport.TupleBatch{
			QueryID: b.QueryID, HostID: b.HostID, TypeIdx: b.TypeIdx,
			Tuples: tuples,
		})
	}
	st.LateDrops += se.winLateLocked(b.QueryID) - lateBefore
	if hasTs {
		st.ObserveTs(maxTs)
	}
	if !holding && (hasTs || released) {
		if wm, wok := sq.streams.Watermark(); wok {
			bound := wm - int64(sq.plan.Lateness)
			se.collectLocked(b.QueryID, sq, bound)
			se.flushLocked(sq, bound)
		}
	}
}

// winLateLocked sums the shards' window-late drop counters for a query.
func (se *ShardedEngine) winLateLocked(id uint64) uint64 {
	var late uint64
	for _, sh := range se.shards {
		if l, _, ok := sh.dropsOf(id); ok {
			late += l
		}
	}
	return late
}

// Tick implements Executor: a barrier across every shard. All windows
// ending at or before now − lateness are pulled from all shards, merged,
// rendered and emitted in start order. Because the same bound reaches
// every shard before any flush, a flushed window can never receive more
// tuples from a shard (they would be late there too).
func (se *ShardedEngine) Tick(nowNanos int64) {
	se.mu.Lock()
	defer se.mu.Unlock()
	leaseNow := se.opt.Clock().UnixNano()
	for id, sq := range se.queries {
		// Mirror Engine.Tick: expire before the hold check (evicting a
		// replaying stream can settle the replay), skip every close while
		// the hold is open, and when lease expiry evicts a stream — or
		// this tick released the hold — close at the watermark recomputed
		// over the survivors right away.
		evicted := sq.streams.Expire(leaseNow)
		wasHolding := sq.replayHold
		if replayHolding(&sq.replayHold, sq.replayDeadline, sq.streams, leaseNow) {
			continue
		}
		released := wasHolding && !sq.replayHold
		if len(evicted) > 0 || released {
			if wm, ok := sq.streams.Watermark(); ok {
				b := wm - int64(sq.plan.Lateness)
				se.collectLocked(id, sq, b)
				se.flushLocked(sq, b)
			}
		}
		bound := nowNanos - int64(sq.plan.Lateness)
		se.collectLocked(id, sq, bound)
		se.flushLocked(sq, bound)
	}
}

// collectLocked pulls closed windows from every shard and merges them
// into the query's pending set.
func (se *ShardedEngine) collectLocked(id uint64, sq *shardedQuery, bound int64) {
	for _, sh := range se.shards {
		for _, closed := range sh.forceCloseQuery(id, bound) {
			se.mergePendingLocked(sq, closed)
		}
	}
}

func (se *ShardedEngine) mergePendingLocked(sq *shardedQuery, closed window.Closed[*winState]) {
	if dst, ok := sq.pending[closed.Start]; ok {
		sq.mergeDrops += mergeWinStates(&sq.plan, dst, closed.State)
	} else {
		sq.pending[closed.Start] = closed.State
	}
}

// flushLocked renders and emits pending windows ending at or before
// bound, in start order.
func (se *ShardedEngine) flushLocked(sq *shardedQuery, bound int64) {
	var starts []int64
	winSize := int64(sq.plan.Window)
	for start := range sq.pending {
		if start+winSize <= bound {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		se.emitLocked(sq, start, sq.pending[start])
		delete(sq.pending, start)
	}
}

func (se *ShardedEngine) emitLocked(sq *shardedQuery, start int64, ws *winState) {
	var t0 time.Time
	if se.met != nil {
		t0 = time.Now()
	}
	rw := renderWindow(&sq.plan, sq.comp, start, start+int64(sq.plan.Window), ws,
		sq.streams.RatesByHost(sq.plan.SampleEvents))
	hostDrops := sq.streams.HostDrops()
	lateDrops := sq.mergeDrops + sq.stoppedShardDrops
	for _, sh := range se.shards {
		if late, overflow, ok := sh.dropsOf(sq.plan.QueryID); ok {
			lateDrops += late + overflow
		}
	}
	rw.Stats.HostDrops = hostDrops
	rw.Stats.LateDrops = lateDrops
	rw.Degraded = sq.streams.AnyEvicted()
	rw.BudgetShed = sq.streams.AnyShed()
	rw.Streams = sq.streams.Snapshot()
	if rw.Degraded {
		sq.stats.DegradedWindows++
	}
	if rw.BudgetShed {
		sq.stats.ShedWindows++
	}
	sq.stats.Windows++
	sq.stats.Rows += uint64(len(rw.Rows))
	sq.stats.TuplesIn += ws.tuples
	sq.stats.HostDrops = hostDrops
	sq.stats.LateDrops = lateDrops
	sq.emit(rw)
	if se.met != nil {
		se.met.windows.Inc()
		if rw.Degraded {
			se.met.degraded.Inc()
		}
		if rw.BudgetShed {
			se.met.shed.Inc()
		}
		se.met.closeNs.Observe(float64(time.Since(t0)))
	}
}

// StopQuery implements Executor: drains every shard, merges, emits the
// remainder, and returns the final stats.
func (se *ShardedEngine) StopQuery(id uint64) (transport.QueryStats, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	sq, ok := se.queries[id]
	if !ok {
		return transport.QueryStats{}, false
	}
	var lateDrops uint64
	for _, sh := range se.shards {
		partials, drops, ok := sh.stopQueryDriven(id)
		if !ok {
			continue
		}
		lateDrops += drops
		for _, closed := range partials {
			se.mergePendingLocked(sq, closed)
		}
	}
	// The shard queries are gone now; windows flushed below must inherit
	// their cumulative drop totals rather than polling dropsOf.
	sq.stoppedShardDrops = lateDrops
	se.flushLocked(sq, int64(1)<<62-1)
	sq.stats.LateDrops = lateDrops + sq.mergeDrops
	sq.stats.HostDrops = sq.streams.HostDrops()
	delete(se.queries, id)
	se.met.dropQuery(id)
	return sq.stats, true
}

// Stats implements Executor.
func (se *ShardedEngine) Stats(id uint64) (transport.QueryStats, bool) {
	se.mu.Lock()
	defer se.mu.Unlock()
	sq, ok := se.queries[id]
	if !ok {
		return transport.QueryStats{}, false
	}
	// TuplesIn so far is what the shards have absorbed.
	st := sq.stats
	var tuples uint64
	for _, sh := range se.shards {
		if s, ok := sh.Stats(id); ok {
			tuples += s.TuplesIn
		}
	}
	if tuples > st.TuplesIn {
		st.TuplesIn = tuples
	}
	return st, true
}

// ActiveQueries implements Executor.
func (se *ShardedEngine) ActiveQueries() []uint64 {
	se.mu.Lock()
	defer se.mu.Unlock()
	out := make([]uint64, 0, len(se.queries))
	for id := range se.queries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
