package central

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

// buildPlan parses + analyzes a query against the test catalog and builds
// a central plan for it.
func buildPlan(t *testing.T, src string, queryID uint64, totalHosts, sampledHosts int) Plan {
	t.Helper()
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	q, err := ql.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := ql.Analyze(q, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return FromPlan(p, queryID, 0, 0, totalHosts, sampledHosts)
}

// collector gathers emitted windows.
type collector struct {
	mu   sync.Mutex
	wins []transport.ResultWindow
}

func (c *collector) emit(rw transport.ResultWindow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wins = append(c.wins, rw)
}

func (c *collector) all() []transport.ResultWindow {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]transport.ResultWindow(nil), c.wins...)
}

func sec(n int64) int64 { return n * int64(time.Second) }

// batch builds a TupleBatch of bid tuples: each entry is (reqID, ts,
// values...).
func bidBatch(queryID uint64, host string, tuples ...transport.Tuple) transport.TupleBatch {
	return transport.TupleBatch{QueryID: queryID, HostID: host, TypeIdx: 0, Tuples: tuples}
}

func tup(req uint64, ts int64, vals ...event.Value) transport.Tuple {
	return transport.Tuple{RequestID: req, TsNanos: ts, Values: vals}
}

func TestStartQueryValidation(t *testing.T) {
	e := NewEngine()
	p := buildPlan(t, `select count(*) from bid`, 1, 1, 1)
	if err := e.StartQuery(p, nil); err == nil {
		t.Error("nil emit should fail")
	}
	bad := p
	bad.QueryID = 0
	if err := e.StartQuery(bad, func(transport.ResultWindow) {}); err == nil {
		t.Error("zero query id should fail")
	}
	if err := e.StartQuery(p, func(transport.ResultWindow) {}); err != nil {
		t.Fatalf("valid start: %v", err)
	}
	if err := e.StartQuery(p, func(transport.ResultWindow) {}); err == nil {
		t.Error("duplicate id should fail")
	}
	ids := e.ActiveQueries()
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("active = %v", ids)
	}
}

func TestGroupedCountOverWindows(t *testing.T) {
	// The paper's spam query: COUNT(*) grouped by user in 10s windows.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select bid.user_id, count(*) from bid group by bid.user_id window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	// Window [0,10): user 42 ×3, user 7 ×1. Window [10,20): user 42 ×1.
	e.HandleBatch(bidBatch(1, "h1",
		tup(1, sec(1), event.Int(42)),
		tup(2, sec(2), event.Int(42)),
		tup(3, sec(3), event.Int(7)),
		tup(4, sec(9), event.Int(42)),
	))
	// Crossing into [10,20) and then beyond closes earlier windows
	// (lateness defaults to 2s: event at 22s closes [0,10)).
	e.HandleBatch(bidBatch(1, "h1", tup(5, sec(15), event.Int(42))))
	e.HandleBatch(bidBatch(1, "h1", tup(6, sec(25), event.Int(1))))

	// Watermark 25s − 2s lateness = 23s closes both [0,10) and [10,20).
	wins := c.all()
	if len(wins) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(wins))
	}
	w := wins[0]
	if w.WindowStart != 0 || w.WindowEnd != sec(10) {
		t.Errorf("window = [%d, %d)", w.WindowStart, w.WindowEnd)
	}
	if len(w.Rows) != 2 {
		t.Fatalf("rows = %v", w.Rows)
	}
	// Sorted deterministically; find user 42.
	counts := map[string]string{}
	for _, row := range w.Rows {
		counts[row[0].String()] = row[1].String()
	}
	if counts["42"] != "3" || counts["7"] != "1" {
		t.Errorf("counts = %v", counts)
	}
	if w.Approx {
		t.Error("unsampled query should not be approximate")
	}
	if w.Stats.TuplesIn != 4 || w.Stats.HostsReporting != 1 {
		t.Errorf("stats = %+v", w.Stats)
	}
}

func TestUngroupedAggregateEmitsSingleRow(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*), sum(bid.bid_price), avg(bid.bid_price) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1",
		tup(1, sec(1), event.Float(1.0)),
		tup(2, sec(2), event.Float(3.0)),
	))
	e.Tick(sec(30))
	wins := c.all()
	if len(wins) != 1 || len(wins[0].Rows) != 1 {
		t.Fatalf("wins = %+v", wins)
	}
	row := wins[0].Rows[0]
	if row[0].String() != "2" || row[1].String() != "4" || row[2].String() != "2" {
		t.Errorf("row = %v", row)
	}
}

func TestEmptyWindowEmitsZeroCountRow(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1))))
	// Skip a window entirely, then tick far ahead: [0,10) has the tuple;
	// nothing was opened for [10,20) so only one window exists to emit.
	e.Tick(sec(60))
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	if wins[0].Rows[0][0].String() != "1" {
		t.Errorf("row = %v", wins[0].Rows[0])
	}
	// Stop with an open empty window → still emits a zero row.
	e.HandleBatch(bidBatch(1, "h1")) // counters only
	_, ok := e.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
}

func TestScaleUpUnderSampling(t *testing.T) {
	// 2 of 4 hosts, 50% events: factor = (4/2)·(1/0.5) = 4.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*), sum(bid.bid_price) from bid window 10s sample hosts 50% events 50%`, 1, 4, 2)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1), event.Float(2)), tup(2, sec(2), event.Float(2))))
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h2", TypeIdx: 0,
		Tuples: []transport.Tuple{tup(3, sec(3), event.Float(2)), tup(4, sec(4), event.Float(2))}})
	e.Tick(sec(30))
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	w := wins[0]
	if !w.Approx {
		t.Error("sampled query should be approximate")
	}
	row := w.Rows[0]
	if row[0].String() != "16" { // 4 tuples × factor 4
		t.Errorf("scaled count = %v", row[0])
	}
	if row[1].String() != "32" { // sum 8 × factor 4
		t.Errorf("scaled sum = %v", row[1])
	}
	if len(w.ErrBounds) != 2 {
		t.Fatalf("bounds = %v", w.ErrBounds)
	}
	for i, b := range w.ErrBounds {
		if math.IsNaN(b) {
			t.Errorf("bound[%d] is NaN, want finite", i)
		}
	}
}

func TestAvgNotScaled(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select avg(bid.bid_price) from bid window 10s sample events 10%`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1), event.Float(3)), tup(2, sec(2), event.Float(5))))
	e.Tick(sec(30))
	row := c.all()[0].Rows[0]
	if row[0].String() != "4" {
		t.Errorf("AVG under sampling = %v, want unscaled 4", row[0])
	}
}

func TestArithmeticOverAggregate(t *testing.T) {
	// The paper's CPM query shape: 1000*AVG(cost).
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select 1000*avg(bid.bid_price) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1), event.Float(0.002)), tup(2, sec(2), event.Float(0.004))))
	e.Tick(sec(30))
	row := c.all()[0].Rows[0]
	if got, _ := row[0].AsFloat(); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("1000*AVG = %v", row[0])
	}
}

func TestRawRowsQuery(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select bid.user_id, bid.bid_price from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1",
		tup(1, sec(1), event.Int(7), event.Float(1.5)),
		tup(2, sec(2), event.Int(8), event.Float(2.5)),
	))
	e.Tick(sec(30))
	wins := c.all()
	if len(wins) != 1 || len(wins[0].Rows) != 2 {
		t.Fatalf("wins = %+v", wins)
	}
	if wins[0].Rows[0][0].String() != "7" || wins[0].Rows[1][1].String() != "2.5" {
		t.Errorf("rows = %v", wins[0].Rows)
	}
}

func TestJoinOnRequestID(t *testing.T) {
	// The paper's exclusion investigation: bid ⋈ exclusion per request.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select exclusion.reason, count(*) from bid, exclusion
		where bid.exchange_id = 5
		group by exclusion.reason window 10s`, 1, 1, 1)
	// bid columns: exchange_id consumed by host pred... verify plan: the
	// host pred runs on hosts, so bid ships no columns; exclusion ships
	// reason.
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	// Request 1: bid + 2 exclusions → 2 joined rows.
	// Request 2: exclusion only → no join.
	// Request 3: bid then exclusion (order reversed) → 1 joined row.
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "bid-h", TypeIdx: 0,
		Tuples: []transport.Tuple{tup(1, sec(1))}})
	// Exclusion hosts ship exactly the plan's projected columns: [reason].
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "ad-h", TypeIdx: 1,
		Tuples: []transport.Tuple{
			tup(1, sec(1), event.Str("budget")),
			tup(1, sec(2), event.Str("frequency_cap")),
			tup(2, sec(2), event.Str("budget")),
			tup(3, sec(3), event.Str("budget")),
		}})
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "bid-h", TypeIdx: 0,
		Tuples: []transport.Tuple{tup(3, sec(4))}})
	e.Tick(sec(30))

	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	counts := map[string]string{}
	for _, row := range wins[0].Rows {
		counts[row[0].String()] = row[1].String()
	}
	if counts["budget"] != "2" || counts["frequency_cap"] != "1" {
		t.Errorf("join counts = %v", counts)
	}
	if w := wins[0]; w.Stats.HostsReporting != 2 {
		t.Errorf("hosts reporting = %d", w.Stats.HostsReporting)
	}
}

func TestJoinCentralPredicate(t *testing.T) {
	// Cross-side conjunct evaluated at central after the join.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid, exclusion
		where bid.exchange_id = exclusion.line_item_id window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	// Columns shipped: bid [exchange_id], exclusion [line_item_id].
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "b", TypeIdx: 0,
		Tuples: []transport.Tuple{tup(1, sec(1), event.Int(5)), tup(2, sec(1), event.Int(6))}})
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "x", TypeIdx: 1,
		Tuples: []transport.Tuple{tup(1, sec(2), event.Int(5)), tup(2, sec(2), event.Int(99))}})
	e.Tick(sec(30))
	row := c.all()[0].Rows[0]
	if row[0].String() != "1" {
		t.Errorf("central-pred join count = %v, want 1", row[0])
	}
}

func TestLateTuplesCounted(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1))))
	e.Tick(sec(60)) // closes [0,10)
	// This tuple's window has already been emitted → late drop.
	e.HandleBatch(bidBatch(1, "h1", tup(2, sec(2))))
	stats, ok := e.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	if stats.LateDrops != 1 {
		t.Errorf("late drops = %d, want 1", stats.LateDrops)
	}
}

func TestSpanGatingAtCentral(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	p.StartNanos = sec(10)
	p.EndNanos = sec(20)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1",
		tup(1, sec(5)),  // before span
		tup(2, sec(15)), // inside
		tup(3, sec(25)), // after span
	))
	e.Tick(sec(60))
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	if wins[0].Rows[0][0].String() != "1" {
		t.Errorf("span-gated count = %v", wins[0].Rows[0][0])
	}
}

func TestStopQueryFlushes(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(1)), tup(2, sec(2))))
	stats, ok := e.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	wins := c.all()
	if len(wins) != 1 || wins[0].Rows[0][0].String() != "2" {
		t.Fatalf("flush wins = %+v", wins)
	}
	if stats.Windows != 1 || stats.Rows != 1 || stats.TuplesIn != 2 {
		t.Errorf("final stats = %+v", stats)
	}
	if _, ok := e.StopQuery(1); ok {
		t.Error("second stop should miss")
	}
	// Batches after stop are dropped silently.
	e.HandleBatch(bidBatch(1, "h1", tup(3, sec(3))))
}

func TestHostDropsSurfaceInStats(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h1", TypeIdx: 0,
		Tuples: []transport.Tuple{tup(1, sec(1))}, QueueDrops: 7})
	e.Tick(sec(30))
	if got := c.all()[0].Stats.HostDrops; got != 7 {
		t.Errorf("host drops = %d, want 7", got)
	}
}

func TestRawRowOverflowBounded(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select bid.user_id from bid window 10s`, 1, 1, 1)
	p.MaxRawRows = 5
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	tuples := make([]transport.Tuple, 20)
	for i := range tuples {
		tuples[i] = tup(uint64(i), sec(1), event.Int(int64(i)))
	}
	e.HandleBatch(bidBatch(1, "h1", tuples...))
	e.Tick(sec(30))
	wins := c.all()
	if len(wins[0].Rows) != 5 {
		t.Errorf("raw rows = %d, want capped 5", len(wins[0].Rows))
	}
	if wins[0].Stats.LateDrops != 15 { // overflow counted in drops
		t.Errorf("overflow drops = %d", wins[0].Stats.LateDrops)
	}
}

func TestUnknownQueryBatchIgnored(t *testing.T) {
	e := NewEngine()
	e.HandleBatch(bidBatch(999, "h1", tup(1, sec(1)))) // must not panic
	// Bad type index also ignored.
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h", TypeIdx: 9,
		Tuples: []transport.Tuple{tup(1, sec(1))}})
	if st, _ := e.Stats(1); st.TuplesIn != 0 {
		t.Error("bad type index tuple counted")
	}
	if _, ok := e.Stats(999); ok {
		t.Error("stats for unknown query")
	}
}

func BenchmarkHandleBatchGrouped(b *testing.B) {
	e := NewEngine()
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt}))
	q, _ := ql.Parse(`select bid.user_id, count(*) from bid group by bid.user_id window 10s`)
	ap, err := ql.Analyze(q, cat)
	if err != nil {
		b.Fatal(err)
	}
	p := FromPlan(ap, 1, 0, 0, 1, 1)
	if err := e.StartQuery(p, func(transport.ResultWindow) {}); err != nil {
		b.Fatal(err)
	}
	const batchSize = 256
	tuples := make([]transport.Tuple, batchSize)
	b.ReportAllocs()
	b.ResetTimer()
	ts := int64(0)
	for i := 0; i < b.N; i++ {
		for j := range tuples {
			ts += int64(time.Millisecond)
			tuples[j] = tup(uint64(j), ts, event.Int(int64(j%100)))
		}
		e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h", Tuples: tuples})
	}
	b.SetBytes(batchSize)
}

func TestSlidingWindowsAtCentral(t *testing.T) {
	// The paper's named extension: window 10s slide 5s — each tuple
	// counts in two overlapping windows.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s slide 5s`, 1, 1, 1)
	if p.Slide != 5*time.Second {
		t.Fatalf("plan slide = %v", p.Slide)
	}
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	// Tuples at 7s and 12s: [0,10) sees one, [5,15) sees both, [10,20)
	// sees one.
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(7)), tup(2, sec(12))))
	e.Tick(sec(60))
	wins := c.all()
	if len(wins) != 3 {
		t.Fatalf("windows = %d, want 3", len(wins))
	}
	counts := map[int64]string{}
	for _, w := range wins {
		counts[w.WindowStart/int64(time.Second)] = w.Rows[0][0].String()
	}
	if counts[0] != "1" || counts[5] != "2" || counts[10] != "1" {
		t.Errorf("sliding counts = %v", counts)
	}
}

func TestHavingOrderLimitAtCentral(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select bid.user_id, count(*) as n from bid
		group by bid.user_id having count(*) > 1
		order by n desc, 1 limit 2 window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	// Counts: user 1 ×4, user 2 ×3, user 3 ×2, user 4 ×1.
	var tuples []transport.Tuple
	req := uint64(0)
	addN := func(user int64, n int) {
		for i := 0; i < n; i++ {
			req++
			tuples = append(tuples, tup(req, sec(1), event.Int(user)))
		}
	}
	addN(1, 4)
	addN(2, 3)
	addN(3, 2)
	addN(4, 1)
	e.HandleBatch(bidBatch(1, "h1", tuples...))
	e.Tick(sec(60))
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	rows := wins[0].Rows
	// HAVING drops user 4; LIMIT 2 keeps the top two by count desc.
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].String() != "1" || rows[0][1].String() != "4" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if rows[1][0].String() != "2" || rows[1][1].String() != "3" {
		t.Errorf("row 1 = %v", rows[1])
	}
}

func TestOrderLimitOnRawRows(t *testing.T) {
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select bid.user_id, bid.bid_price from bid order by 2 desc limit 3 window 10s`, 1, 1, 1)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	var tuples []transport.Tuple
	for i := 0; i < 10; i++ {
		tuples = append(tuples, tup(uint64(i+1), sec(1), event.Int(int64(i)), event.Float(float64(i))))
	}
	e.HandleBatch(bidBatch(1, "h1", tuples...))
	e.Tick(sec(60))
	rows := c.all()[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][1].String() != "9" || rows[2][1].String() != "7" {
		t.Errorf("top rows = %v", rows)
	}
}

func TestEngineConcurrentStress(t *testing.T) {
	// Batches from many hosts, ticks, stats reads, and a late StopQuery —
	// all concurrent. Run under -race in CI; the assertion here is just
	// conservation: every emitted count sums to the tuples accepted.
	e := NewEngine()
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 1s`, 1, 1, 1)
	p.Lateness = time.Hour // nothing closes until the final flush
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	const hosts = 8
	const batches = 50
	const perBatch = 20
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				tuples := make([]transport.Tuple, perBatch)
				for i := range tuples {
					tuples[i] = tup(uint64(h*1_000_000+b*1000+i), sec(int64(b%10))+1)
				}
				e.HandleBatch(transport.TupleBatch{
					QueryID: 1, HostID: fmt.Sprintf("h%d", h), TypeIdx: 0, Tuples: tuples,
				})
			}
		}(h)
	}
	stop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-stop:
				return
			default:
				e.Tick(0) // bound far in the past: must never close anything
				e.Stats(1)
				e.ActiveQueries()
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-tickDone
	stats, ok := e.StopQuery(1)
	if !ok {
		t.Fatal("query vanished")
	}
	const want = hosts * batches * perBatch
	if stats.TuplesIn != want {
		t.Errorf("tuples in = %d, want %d", stats.TuplesIn, want)
	}
	var emitted int64
	for _, w := range c.all() {
		for _, row := range w.Rows {
			n, _ := row[0].AsInt()
			emitted += n
		}
	}
	if emitted != want {
		t.Errorf("emitted counts sum to %d, want %d", emitted, want)
	}
	if stats.LateDrops != 0 {
		t.Errorf("late drops = %d under infinite lateness", stats.LateDrops)
	}
}
