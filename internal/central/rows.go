package central

import (
	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/transport"
)

// sideRow adapts a single shipped tuple as an expr.Row. Field lookups use
// the per-type column index built at plan compile time.
type sideRow struct {
	c       *compiled
	types   []string
	typeIdx int
	tuple   *transport.Tuple
}

// Field implements expr.Row.
func (r sideRow) Field(typ, name string) event.Value {
	if typ != "" && typ != r.types[r.typeIdx] {
		return event.Invalid
	}
	switch name {
	case event.FieldRequestID:
		return event.Int(int64(r.tuple.RequestID))
	case event.FieldTimestamp:
		return event.TimeNanos(r.tuple.TsNanos)
	}
	idx, ok := r.c.colIdx[r.typeIdx][name]
	if !ok || idx >= len(r.tuple.Values) {
		return event.Invalid
	}
	return r.tuple.Values[idx]
}

// Agg implements expr.Row; tuples carry no aggregates.
func (sideRow) Agg(int) event.Value { return event.Invalid }

// joinRow adapts a joined tuple pair. Qualified lookups pick the side by
// type; unqualified lookups resolve against side 0 first (matching the
// resolver's determinism for system fields — user fields were qualified
// during validation).
type joinRow struct {
	c     *compiled
	types []string
	left  *transport.Tuple // side 0
	right *transport.Tuple // side 1
}

// Field implements expr.Row.
func (r joinRow) Field(typ, name string) event.Value {
	switch typ {
	case r.types[0]:
		return sideRow{c: r.c, types: r.types, typeIdx: 0, tuple: r.left}.Field(typ, name)
	case r.types[1]:
		return sideRow{c: r.c, types: r.types, typeIdx: 1, tuple: r.right}.Field(typ, name)
	case "":
		if v := (sideRow{c: r.c, types: r.types, typeIdx: 0, tuple: r.left}).Field("", name); v.IsValid() {
			return v
		}
		return sideRow{c: r.c, types: r.types, typeIdx: 1, tuple: r.right}.Field("", name)
	default:
		return event.Invalid
	}
}

// Agg implements expr.Row.
func (joinRow) Agg(int) event.Value { return event.Invalid }

// resultRow is the evaluation context when a window closes: group-by key
// values for field references, scaled aggregate results for AggRefs.
type resultRow struct {
	groupBy []expr.FieldRef
	keyVals []event.Value
	aggVals []event.Value
}

// Field implements expr.Row: only group-by keys are addressable in result
// expressions (enforced at validation).
func (r resultRow) Field(typ, name string) event.Value {
	for i, g := range r.groupBy {
		if g.Name == name && (typ == "" || typ == g.Type) {
			return r.keyVals[i]
		}
	}
	return event.Invalid
}

// Agg implements expr.Row.
func (r resultRow) Agg(i int) event.Value {
	if i < 0 || i >= len(r.aggVals) {
		return event.Invalid
	}
	return r.aggVals[i]
}

// compareValues totally orders two result values: Value.Compare when the
// kinds allow it, else the string forms. Used for deterministic result
// ordering — a total order is required so ORDER BY ties and raw-row
// output are reproducible across runs and across the single-node and
// sharded engines.
func compareValues(a, b event.Value) int {
	if c, ok := a.Compare(b); ok {
		return c
	}
	return compareStrings(a.String(), b.String())
}

// compareRows totally orders two result rows column by column. Shorter
// rows (never produced by one plan, but kept total for safety) sort
// first.
func compareRows(a, b []event.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := compareValues(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
