package central

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/transport"
)

// TestPartialCodecMatchesShardedEngine drives identical batches through a
// ShardedEngine and through the exported driven surface (N driven engines
// + serialized partials + QueryRuntime merge — the distributed
// coordinator's data path) and requires the rendered windows to match
// bit for bit.
func TestPartialCodecMatchesShardedEngine(t *testing.T) {
	queries := []string{
		`select count(*) from bid`,
		`select exchange_id, count(*), sum(bid_price) from bid group by exchange_id`,
		`select avg(bid_price), min(bid_price), max(user_id) from bid`,
		`select top_k(exchange_id, 3), count_distinct(user_id) from bid`,
		`select user_id, bid_price from bid order by bid_price desc limit 7`,
		`select count(*) from bid sample events 50%`,
	}
	for qi, src := range queries {
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("q%d-s%d", qi, shards), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(qi*10 + shards)))
				var batches []transport.TupleBatch
				for h := 0; h < 3; h++ {
					host := fmt.Sprintf("h%d", h)
					for bi := 0; bi < 6; bi++ {
						var tuples []transport.Tuple
						for k := 0; k < 10; k++ {
							tuples = append(tuples, tup(
								uint64(rng.Intn(500)),
								sec(int64(rng.Intn(10))),
								event.Int(int64(rng.Intn(50))),
								event.Int(int64(rng.Intn(5))),
								event.Float(rng.NormFloat64()*10),
							))
						}
						batches = append(batches, bidBatch(1, host, tuples...))
					}
				}
				bound := sec(8)

				// Arm 1: in-process ShardedEngine, collect+flush via a
				// fake wall clock tick at bound+lateness.
				se, err := NewShardedEngine(shards)
				if err != nil {
					t.Fatal(err)
				}
				c := &collector{}
				p := buildPlan(t, src, 1, 4, 2)
				p.Lateness = time.Hour
				if err := se.StartQuery(p, c.emit); err != nil {
					t.Fatal(err)
				}
				for _, b := range batches {
					se.HandleBatch(transport.CloneBatch(b))
				}
				se.Tick(bound + int64(p.Lateness))
				want := c.all()

				// Arm 2: driven engines + partial codec + QueryRuntime.
				qr, err := CompileQuery(p)
				if err != nil {
					t.Fatal(err)
				}
				drv := make([]*Engine, shards)
				for i := range drv {
					drv[i] = NewEngine()
					if err := drv[i].StartDriven(p); err != nil {
						t.Fatal(err)
					}
				}
				for _, b := range batches {
					sub := make([][]transport.Tuple, shards)
					for _, tp := range b.Tuples {
						i := int(tp.RequestID % uint64(shards))
						sub[i] = append(sub[i], tp)
					}
					for i, tuples := range sub {
						if len(tuples) == 0 {
							continue
						}
						if _, ok := drv[i].ApplyDriven(transport.CloneBatch(transport.TupleBatch{
							QueryID: 1, HostID: b.HostID, TypeIdx: b.TypeIdx, Tuples: tuples,
						})); !ok {
							t.Fatal("ApplyDriven: unknown query")
						}
					}
				}
				merged := make(map[int64]*PartialWindow)
				for _, e := range drv {
					partials, _, _, ok := e.CollectDriven(1, bound)
					if !ok {
						t.Fatal("CollectDriven: unknown query")
					}
					for _, ep := range partials {
						pw, err := qr.DecodePartial(ep.Data)
						if err != nil {
							t.Fatalf("DecodePartial: %v", err)
						}
						if dst, ok := merged[ep.Start]; ok {
							qr.Merge(dst, pw)
						} else {
							merged[ep.Start] = pw
						}
					}
				}
				var got []transport.ResultWindow
				var starts []int64
				for start := range merged {
					starts = append(starts, start)
				}
				for i := range starts {
					for j := i + 1; j < len(starts); j++ {
						if starts[j] < starts[i] {
							starts[i], starts[j] = starts[j], starts[i]
						}
					}
				}
				for _, start := range starts {
					got = append(got, qr.Render(start, merged[start], nil))
				}

				if len(got) != len(want) {
					t.Fatalf("window counts: driven %d vs sharded %d", len(got), len(want))
				}
				for i := range want {
					w, g := want[i], got[i]
					// The mini-merger fills only what renderWindow fills;
					// blank the deployment-level fields on the reference.
					w.Stats.HostDrops, w.Stats.LateDrops = 0, 0
					w.Degraded, w.BudgetShed, w.Streams = false, false, nil
					if w.WindowStart != g.WindowStart || w.WindowEnd != g.WindowEnd {
						t.Fatalf("window %d span: [%d,%d) vs [%d,%d)", i, g.WindowStart, g.WindowEnd, w.WindowStart, w.WindowEnd)
					}
					if w.Stats != g.Stats {
						t.Fatalf("window %d stats: %+v vs %+v", i, g.Stats, w.Stats)
					}
					if w.Approx != g.Approx {
						t.Fatalf("window %d approx: %v vs %v", i, g.Approx, w.Approx)
					}
					if !reflect.DeepEqual(w.Rows, g.Rows) {
						t.Fatalf("window %d rows:\n got %v\nwant %v", i, g.Rows, w.Rows)
					}
					if len(w.ErrBounds) != len(g.ErrBounds) {
						t.Fatalf("window %d bounds len: %d vs %d", i, len(g.ErrBounds), len(w.ErrBounds))
					}
					for j := range w.ErrBounds {
						wb, gb := w.ErrBounds[j], g.ErrBounds[j]
						if math.IsNaN(wb) != math.IsNaN(gb) || (!math.IsNaN(wb) && math.Float64bits(wb) != math.Float64bits(gb)) {
							t.Fatalf("window %d bound %d: %v vs %v", i, j, gb, wb)
						}
					}
				}
			})
		}
	}
}
