package central

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/liveness"
	"scrub/internal/obs"
	"scrub/internal/sampling"
	"scrub/internal/stats"
	"scrub/internal/transport"
	"scrub/internal/window"
)

// EmitFunc receives each closed window's results. It is called with the
// engine lock held; implementations must be fast (enqueue and return).
type EmitFunc func(transport.ResultWindow)

// Options tunes an engine's failure-domain behavior. The zero value is
// production-ready.
type Options struct {
	// LeaseTTL is the per-stream liveness lease timeout: a (host, type)
	// stream that neither ships a batch nor heartbeats for this long is
	// evicted from the query watermark so windows keep closing without
	// it. <= 0 selects liveness.DefaultTTL.
	LeaseTTL time.Duration
	// Clock substitutes time.Now for lease bookkeeping (tests). Lease
	// time is deliberately wall-clock, independent of event time, so
	// virtual-time simulations cannot spuriously evict healthy streams.
	Clock func() time.Time
	// Metrics, when non-nil, registers the engine's scrub_central_*
	// series, including a per-query tuple counter added at StartQuery and
	// removed at StopQuery.
	Metrics *obs.Registry
}

// centralMetrics bundles the engine's registered series; a nil
// *centralMetrics (no registry configured) costs one pointer check per
// batch.
type centralMetrics struct {
	reg         *obs.Registry
	batches     *obs.Counter
	tuples      *obs.Counter
	windows     *obs.Counter
	degraded    *obs.Counter
	shed        *obs.Counter
	closeNs     *obs.Histogram
	wmLag       *obs.Gauge
	joinPending *obs.Gauge
}

func newCentralMetrics(reg *obs.Registry) *centralMetrics {
	if reg == nil {
		return nil
	}
	return &centralMetrics{
		reg:         reg,
		batches:     reg.Counter("scrub_central_batches_total", "tuple batches ingested"),
		tuples:      reg.Counter("scrub_central_tuples_total", "tuples ingested"),
		windows:     reg.Counter("scrub_central_windows_total", "result windows emitted"),
		degraded:    reg.Counter("scrub_central_degraded_windows_total", "windows emitted with at least one evicted stream"),
		shed:        reg.Counter("scrub_central_shed_windows_total", "windows emitted with at least one budget-shed stream"),
		closeNs:     reg.Histogram("scrub_central_window_close_ns", "window render-and-emit latency in nanoseconds", obs.ExpBuckets(1024, 4, 12)),
		wmLag:       reg.Gauge("scrub_central_watermark_lag_ns", "wall clock minus the query watermark at last ingest"),
		joinPending: reg.Gauge("scrub_central_join_pending", "tuples buffered awaiting their join partner"),
	}
}

const queryLabel = "query"

func (m *centralMetrics) queryTuples(id uint64) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("scrub_central_query_tuples_total",
		"tuples ingested per query", obs.L(queryLabel, strconv.FormatUint(id, 10)))
}

func (m *centralMetrics) dropQuery(id uint64) {
	if m == nil {
		return
	}
	m.reg.Unregister("scrub_central_query_tuples_total", obs.L(queryLabel, strconv.FormatUint(id, 10)))
}

func (o *Options) fillDefaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = liveness.DefaultTTL
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// Engine executes the central half of Scrub queries: windowing, the
// request-id equi-join, grouping, aggregation, sampling scale-up, and
// error bounds.
type Engine struct {
	opt     Options
	met     *centralMetrics // nil when no registry configured
	mu      sync.Mutex
	queries map[uint64]*queryState
}

// NewEngine returns an empty engine with default Options.
func NewEngine() *Engine { return NewEngineWith(Options{}) }

// NewEngineWith returns an empty engine with the given Options.
func NewEngineWith(opt Options) *Engine {
	opt.fillDefaults()
	return &Engine{opt: opt, met: newCentralMetrics(opt.Metrics), queries: make(map[uint64]*queryState)}
}

type queryState struct {
	plan Plan
	comp *compiled
	win  *window.SlidingManager[*winState]
	emit EmitFunc

	// streams holds per-(host, type) stream leases, last-known counters,
	// and max event times. The query watermark is the minimum across
	// *live* streams: hosts whose shipping (or simulated clock) lags
	// never see their tuples declared late by a faster peer, while a
	// crashed or partitioned host is evicted on lease expiry instead of
	// freezing window emission forever.
	streams  *liveness.Table
	stats    transport.QueryStats
	tuplesC  *obs.Counter // per-query ingest counter; nil without a registry
	overflow uint64       // raw-row + join-pending drops
	// Replay hold (Plan.Replay > 0): while open, no window closes at all —
	// neither watermark-driven nor wall-clock-forced — because replayed
	// history with old event times may still be in flight, and a window
	// that closes early would count that history as late instead of
	// folding it in. The hold releases when every stream that announced
	// replay has sent its ReplayDone marker (liveness.ReplaySettled) or at
	// replayDeadline — lease-clock, 2× the lease TTL past query start —
	// whichever comes first; the deadline bounds the damage of a dropped
	// done marker or of a query no recording host serves.
	replayHold     bool
	replayDeadline int64
	// scratchKey is the reused group-key buffer for accumulate (engine
	// lock held throughout a batch, so one buffer per query suffices);
	// only a tuple that opens a new group copies it.
	scratchKey []event.Value
}

type group struct {
	keyVals []event.Value
	aggs    []agg.Aggregator
}

type joinCell struct {
	sides [2][]transport.Tuple
}

type winState struct {
	tuples       uint64
	hosts        map[string]struct{}
	groups       map[string]*group
	rawRows      [][]event.Value
	pending      map[uint64]*joinCell
	pendingCount int
	// perHost tracks per-host reading moments per aggregate for the
	// Eq. 1–3 error bounds; only maintained for ungrouped scalable
	// aggregates under sampling.
	perHost map[string][]stats.Running
}

// StartQuery installs a central query object.
func (e *Engine) StartQuery(p Plan, emit EmitFunc) error {
	if emit == nil {
		return fmt.Errorf("central: nil emit")
	}
	if err := p.fillDefaults(); err != nil {
		return err
	}
	comp, err := compile(&p)
	if err != nil {
		return fmt.Errorf("central: compile plan: %w", err)
	}
	// Validate aggregator specs up front so a bad plan fails at start,
	// not at the first tuple.
	if _, err := p.newAggSet(); err != nil {
		return err
	}
	win, err := window.NewSlidingManager(p.Window, p.Slide, p.Lateness, func(start, end int64) *winState {
		return &winState{
			hosts:   make(map[string]struct{}),
			groups:  make(map[string]*group),
			pending: make(map[uint64]*joinCell),
			perHost: make(map[string][]stats.Running),
		}
	})
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.queries[p.QueryID]; dup {
		return fmt.Errorf("central: query %d already active", p.QueryID)
	}
	qs := &queryState{
		plan:    p,
		comp:    comp,
		win:     win,
		emit:    emit,
		streams: liveness.NewTable(e.opt.LeaseTTL),
		tuplesC: e.met.queryTuples(p.QueryID),
	}
	if p.Replay > 0 {
		qs.replayHold = true
		qs.replayDeadline = e.opt.Clock().UnixNano() + 2*int64(e.opt.LeaseTTL)
	}
	e.queries[p.QueryID] = qs
	return nil
}

// replayHolding reports whether a query's replay hold is still open at
// leaseNow, releasing it when replay has settled or the deadline passed.
// One function shared by both executors so their close decisions stay
// bit-identical.
func replayHolding(hold *bool, deadline int64, streams *liveness.Table, leaseNow int64) bool {
	if *hold && (streams.ReplaySettled() || leaseNow >= deadline) {
		*hold = false
	}
	return *hold
}

// ActiveQueries returns the installed query ids.
func (e *Engine) ActiveQueries() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint64, 0, len(e.queries))
	for id := range e.queries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HandleBatch folds a host's tuple batch into the query's window state.
// Batches for unknown queries are dropped silently (they race with query
// teardown by design). Every batch — counter-only heartbeats included —
// renews the stream's liveness lease; a batch from an evicted stream
// re-admits it, and any of its tuples whose windows closed in the
// meantime are counted as late against that stream, never applied to
// closed results.
func (e *Engine) HandleBatch(b transport.TupleBatch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, ok := e.queries[b.QueryID]
	if !ok {
		return
	}
	if int(b.TypeIdx) >= len(qs.plan.Types) {
		return
	}
	key := liveness.Key{Host: b.HostID, TypeIdx: b.TypeIdx}
	nowN := e.opt.Clock().UnixNano()
	st, _ := qs.streams.Touch(key, nowN)
	// Counters are cumulative; max() keeps a delayed or duplicated batch
	// (chaos, retransmits) from regressing them.
	st.Matched = max(st.Matched, b.MatchedTotal)
	st.Sampled = max(st.Sampled, b.SampledTotal)
	st.Drops = max(st.Drops, b.QueueDrops)
	st.FoldGovernor(b.EffRate, b.BudgetShed, b.CPUNs, b.ShipBytes)
	qs.streams.FoldReplay(st, b.ReplayEpoch, b.ReplayDone)
	if e.met != nil {
		e.met.batches.Inc()
		e.met.tuples.Add(uint64(len(b.Tuples)))
	}
	if qs.tuplesC != nil {
		qs.tuplesC.Add(uint64(len(b.Tuples)))
	}

	lateBefore := qs.win.LateDrops()
	dataStart := qs.plan.DataStartNanos()
	var maxTs int64
	hasTs := false
	for i := range b.Tuples {
		t := &b.Tuples[i]
		if dataStart != 0 && t.TsNanos < dataStart {
			continue
		}
		if qs.plan.EndNanos != 0 && t.TsNanos >= qs.plan.EndNanos {
			continue
		}
		for _, ws := range qs.win.GetAll(t.TsNanos) {
			e.processTuple(qs, ws, b.HostID, b.TypeIdx, t)
		}
		if !hasTs || t.TsNanos > maxTs {
			maxTs = t.TsNanos
			hasTs = true
		}
	}
	st.LateDrops += qs.win.LateDrops() - lateBefore
	if hasTs {
		st.ObserveTs(maxTs)
	}
	// A batch that releases the replay hold (its ReplayDone marker
	// settled the last replaying stream) closes windows even when it
	// carried no tuples of its own.
	wasHolding := qs.replayHold
	holding := replayHolding(&qs.replayHold, qs.replayDeadline, qs.streams, nowN)
	released := wasHolding && !holding
	if !holding && (hasTs || released) {
		if wm, ok := qs.streams.Watermark(); ok {
			if e.met != nil {
				e.met.wmLag.Set(nowN - wm)
			}
			for _, closed := range qs.win.Observe(wm) {
				e.emitWindow(qs, closed)
			}
		}
	}
}

// processTuple routes one in-window tuple through join (if any), the
// residual predicate, and accumulation.
func (e *Engine) processTuple(qs *queryState, ws *winState, host string, typeIdx uint8, t *transport.Tuple) {
	ws.tuples++
	qs.stats.TuplesIn++
	ws.hosts[host] = struct{}{}

	if !qs.plan.IsJoin() {
		row := sideRow{c: qs.comp, types: qs.plan.Types, typeIdx: int(typeIdx), tuple: t}
		if qs.comp.centralPred != nil && !qs.comp.centralPred(row) {
			return
		}
		e.accumulate(qs, ws, row, host)
		return
	}

	// Equi-join on the request identifier, within the window.
	cell := ws.pending[t.RequestID]
	if cell == nil {
		cell = &joinCell{}
		ws.pending[t.RequestID] = cell
	}
	other := 1 - int(typeIdx)
	for i := range cell.sides[other] {
		var row joinRow
		if typeIdx == 0 {
			row = joinRow{c: qs.comp, types: qs.plan.Types, left: t, right: &cell.sides[other][i]}
		} else {
			row = joinRow{c: qs.comp, types: qs.plan.Types, left: &cell.sides[other][i], right: t}
		}
		if qs.comp.centralPred != nil && !qs.comp.centralPred(row) {
			continue
		}
		e.accumulate(qs, ws, row, host)
	}
	if ws.pendingCount >= qs.plan.MaxJoinPending {
		qs.overflow++
		return
	}
	// The batch's Values arrays live in host-agent chunk memory that is
	// recycled once SendBatch returns (see host.Sink); a tuple retained
	// past this call must own its values.
	kept := *t
	if len(t.Values) > 0 {
		kept.Values = append([]event.Value(nil), t.Values...)
	}
	cell.sides[typeIdx] = append(cell.sides[typeIdx], kept)
	ws.pendingCount++
	if e.met != nil {
		e.met.joinPending.Add(1)
	}
}

// accumulate folds a (possibly joined) row into the window's groups, or
// collects it as a raw result row for non-aggregate queries.
func (e *Engine) accumulate(qs *queryState, ws *winState, row expr.Row, host string) {
	p := &qs.plan
	if !p.HasAgg() && !p.Grouped() {
		if len(ws.rawRows) >= p.MaxRawRows {
			qs.overflow++
			return
		}
		out := make([]event.Value, len(qs.comp.selectEvals))
		for i, ev := range qs.comp.selectEvals {
			out[i] = ev(row)
		}
		ws.rawRows = append(ws.rawRows, out)
		return
	}

	if cap(qs.scratchKey) < len(qs.comp.groupEvals) {
		qs.scratchKey = make([]event.Value, len(qs.comp.groupEvals))
	}
	keyVals := qs.scratchKey[:len(qs.comp.groupEvals)]
	for i, ev := range qs.comp.groupEvals {
		keyVals[i] = ev(row)
	}
	key := encodeKey(keyVals)
	g := ws.groups[key]
	if g == nil {
		aggs, err := p.newAggSet()
		if err != nil {
			return // validated at StartQuery; unreachable
		}
		g = &group{keyVals: append([]event.Value(nil), keyVals...), aggs: aggs}
		ws.groups[key] = g
	}
	for i, ag := range g.aggs {
		if qs.comp.aggArgEvals[i] == nil {
			ag.Add(event.Bool(true)) // COUNT(*): any valid value
		} else {
			ag.Add(qs.comp.aggArgEvals[i](row))
		}
	}

	// Error-bound moments: ungrouped scalable aggregates. Collected even
	// at plan rate 1, because the host-side budget governor can lower a
	// host's effective sampling rate mid-query — and by the time the
	// first deviating batch announces that, the window's earlier tuples
	// are gone. Grouped queries have no moment tracking (bounds are
	// per-column, not per-group); their degradation is surfaced via
	// per-stream EffRate instead.
	if !p.Grouped() && len(p.Aggs) > 0 {
		moments := ws.perHost[host]
		if moments == nil {
			moments = make([]stats.Running, len(p.Aggs))
			ws.perHost[host] = moments
		}
		for i, a := range p.Aggs {
			if !a.Spec.Scalable() {
				continue
			}
			if qs.comp.aggArgEvals[i] == nil {
				moments[i].Add(1) // COUNT(*): reading of 1
			} else if f, ok := qs.comp.aggArgEvals[i](row).AsFloat(); ok {
				moments[i].Add(f)
			}
		}
		ws.perHost[host] = moments
	}
}

// renderWindow turns a closed window's accumulated state into result
// rows: group ordering, aggregate rendering with Horvitz-Thompson
// scale-up, HAVING, error bounds, ORDER BY and LIMIT. Shared by the
// single-node engine and the sharded merger.
//
// rates, when non-nil, maps hosts to governor-degraded effective
// event-sampling rates (liveness.Table.RatesByHost): the window is then
// approximate even at plan rate 1, and ungrouped scalable aggregates are
// re-estimated from the per-host moments with each host's own rate
// (Eq. 1–3) instead of the uniform plan-rate scale-up, so budget
// downsampling widens the bounds rather than silently skewing values.
func renderWindow(p *Plan, comp *compiled, start, end int64, ws *winState, rates map[string]float64) transport.ResultWindow {
	rw := transport.ResultWindow{
		QueryID:     p.QueryID,
		WindowStart: start,
		WindowEnd:   end,
		Columns:     p.ColumnLabels(),
	}

	factor := p.scaleFactor()
	rw.Approx = factor != 1 || len(rates) > 0

	switch {
	case !p.HasAgg() && !p.Grouped():
		rw.Rows = ws.rawRows

	default:
		// Deterministic group order: sort by encoded key.
		keys := make([]string, 0, len(ws.groups))
		for k := range ws.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		// An ungrouped aggregate query emits one row even for an empty
		// window (COUNT(*) = 0), matching SQL semantics.
		if len(keys) == 0 && p.HasAgg() && !p.Grouped() {
			if aggs, err := p.newAggSet(); err == nil {
				ws.groups[""] = &group{aggs: aggs}
				keys = append(keys, "")
			}
		}
		var bounds []float64
		var sums map[int]float64
		if rw.Approx && !p.Grouped() {
			bounds, sums = computeBounds(p, comp, ws, rates)
		}
		for _, k := range keys {
			g := ws.groups[k]
			aggVals := make([]event.Value, len(g.aggs))
			for i, ag := range g.aggs {
				v := ag.Result()
				if p.Aggs[i].Spec.Scalable() {
					if est, ok := sums[i]; ok {
						v = substituteEstimate(v, est)
					} else {
						v = agg.ScaleResult(v, factor)
					}
				}
				aggVals[i] = v
			}
			row := resultRow{groupBy: p.GroupBy, keyVals: g.keyVals, aggVals: aggVals}
			if comp.havingPred != nil && !comp.havingPred(row) {
				continue
			}
			out := make([]event.Value, len(comp.selectEvals))
			for i, ev := range comp.selectEvals {
				out[i] = ev(row)
			}
			rw.Rows = append(rw.Rows, out)
		}
		rw.ErrBounds = bounds
	}
	orderAndLimit(p, &rw)
	rw.Stats.TuplesIn = ws.tuples
	rw.Stats.HostsReporting = uint32(len(ws.hosts))
	return rw
}

// emitWindow renders a closed window into a ResultWindow and hands it to
// the query's emit callback. A window emitted while any stream's lease
// is expired carries the degraded marker and the full per-stream
// accounting, so the consumer knows exactly whose data is missing.
func (e *Engine) emitWindow(qs *queryState, closed window.Closed[*winState]) {
	var t0 time.Time
	if e.met != nil {
		t0 = time.Now()
	}
	rw := renderWindow(&qs.plan, qs.comp, closed.Start, closed.End, closed.State,
		qs.streams.RatesByHost(qs.plan.SampleEvents))

	hostDrops := qs.streams.HostDrops()
	rw.Stats.HostDrops = hostDrops
	rw.Stats.LateDrops = qs.win.LateDrops() + qs.overflow
	rw.Degraded = qs.streams.AnyEvicted()
	rw.BudgetShed = qs.streams.AnyShed()
	rw.Streams = qs.streams.Snapshot()
	qs.stats.Windows++
	qs.stats.Rows += uint64(len(rw.Rows))
	qs.stats.HostDrops = hostDrops
	qs.stats.LateDrops = qs.win.LateDrops() + qs.overflow
	if rw.Degraded {
		qs.stats.DegradedWindows++
	}
	if rw.BudgetShed {
		qs.stats.ShedWindows++
	}
	qs.emit(rw)
	if e.met != nil {
		e.met.windows.Inc()
		if rw.Degraded {
			e.met.degraded.Inc()
		}
		if rw.BudgetShed {
			e.met.shed.Inc()
		}
		e.met.joinPending.Add(-int64(closed.State.pendingCount))
		e.met.closeNs.Observe(float64(time.Since(t0)))
	}
}

// computeBounds applies the paper's Eq. 1–3 per select column. Only
// columns that are directly a scalable aggregate get a bound; others are
// NaN. Per-host cluster sizes Mᵢ are estimated as mᵢ/qᵢ when event
// sampling is in effect (the host's exact matched totals are cumulative
// across windows, so the per-window Mᵢ is recovered from the sampling
// rate); qᵢ is the host's governor-degraded effective rate when rates
// carries one, else the uniform plan rate.
//
// When rates is non-nil (at least one host deviates from the plan rate),
// the returned sums map also carries the Eq. 1 point estimate τ̂ per
// aggregate index: the caller substitutes it for the uniform scale-up,
// which would be biased by the unequal per-host rates.
func computeBounds(p *Plan, comp *compiled, ws *winState, rates map[string]float64) ([]float64, map[int]float64) {
	bounds := make([]float64, len(p.Select))
	for i := range bounds {
		bounds[i] = math.NaN()
	}
	var sums map[int]float64
	// Host order must be fixed before the float sums inside the estimator:
	// map iteration order would otherwise make ε differ between runs (and
	// between Engine and ShardedEngine) by float-addition rounding.
	hostIDs := make([]string, 0, len(ws.perHost))
	for host := range ws.perHost {
		hostIDs = append(hostIDs, host)
	}
	sort.Strings(hostIDs)
	for col, aggIdx := range comp.directAgg {
		if aggIdx < 0 || !p.Aggs[aggIdx].Spec.Scalable() {
			continue
		}
		hosts := make([]sampling.HostMoments, 0, len(hostIDs))
		for _, host := range hostIDs {
			r := ws.perHost[host][aggIdx]
			if r.N() == 0 {
				continue
			}
			rate := p.SampleEvents
			if hr, ok := rates[host]; ok && hr > 0 && hr < rate {
				rate = hr
			}
			m := uint64(math.Round(float64(r.N()) / rate))
			if m < uint64(r.N()) {
				m = uint64(r.N())
			}
			hosts = append(hosts, sampling.HostMoments{
				HostID: host, M: m, N: r.N(), Sum: r.Sum(), Var: r.Var(),
				// Mᵢ above is mᵢ/q, not an exact per-window count: the
				// hosts' matched totals are cumulative across windows. The
				// estimator must widen the within-host term accordingly.
				EstimatedM: rate < 1,
			})
		}
		if len(hosts) == 0 {
			continue
		}
		total := p.TotalHosts
		if total < len(hosts) {
			total = len(hosts)
		}
		est, err := sampling.EstimateSumMoments(total, hosts, p.Confidence)
		if err != nil {
			continue
		}
		bounds[col] = est.Err
		if rates != nil {
			if sums == nil {
				sums = make(map[int]float64, len(p.Aggs))
			}
			sums[aggIdx] = est.Value
		}
	}
	return bounds, sums
}

// substituteEstimate replaces a scalable aggregate's direct result with
// the moments-based estimate, preserving the result's numeric kind the
// way agg.ScaleResult does.
func substituteEstimate(orig event.Value, est float64) event.Value {
	if _, ok := orig.AsInt(); ok {
		return event.Int(int64(math.Round(est)))
	}
	return event.Float(est)
}

// Tick closes windows by wall clock so idle streams still emit: every
// window ending at or before now−lateness is emitted. It also expires
// stream liveness leases (on the engine's own clock, which may differ
// from nowNanos in virtual-time setups): when a stream is evicted, the
// watermark recomputed over the surviving streams is observed
// immediately, so windows a dead host was holding open close now instead
// of waiting out the force bound. Call it periodically (the query server
// runs a ticker).
func (e *Engine) Tick(nowNanos int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	leaseNow := e.opt.Clock().UnixNano()
	for _, qs := range e.queries {
		// Expire before the hold check: evicting a replaying stream can
		// settle the replay (a dead host will never send its done marker).
		evicted := qs.streams.Expire(leaseNow)
		wasHolding := qs.replayHold
		if replayHolding(&qs.replayHold, qs.replayDeadline, qs.streams, leaseNow) {
			// Replayed history may still be in flight: closing a window
			// now — by watermark or by wall clock — would count it late.
			continue
		}
		released := wasHolding && !qs.replayHold
		if len(evicted) > 0 || released {
			if wm, ok := qs.streams.Watermark(); ok {
				for _, closed := range qs.win.Observe(wm) {
					e.emitWindow(qs, closed)
				}
			}
		}
		for _, closed := range qs.win.ForceBefore(nowNanos - int64(qs.plan.Lateness)) {
			e.emitWindow(qs, closed)
		}
	}
}

// StopQuery flushes and removes a query, returning its final stats.
func (e *Engine) StopQuery(id uint64) (transport.QueryStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, ok := e.queries[id]
	if !ok {
		return transport.QueryStats{}, false
	}
	for _, closed := range qs.win.Flush() {
		e.emitWindow(qs, closed)
	}
	qs.stats.HostDrops = qs.streams.HostDrops()
	qs.stats.LateDrops = qs.win.LateDrops() + qs.overflow
	delete(e.queries, id)
	e.met.dropQuery(id)
	return qs.stats, true
}

// Stats returns a query's running stats.
func (e *Engine) Stats(id uint64) (transport.QueryStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, ok := e.queries[id]
	if !ok {
		return transport.QueryStats{}, false
	}
	return qs.stats, true
}

// orderAndLimit applies the plan's ORDER BY keys and LIMIT to an emitted
// window's rows. The order is total and deterministic: incomparable
// values fall back to their string forms, equal ORDER BY keys tie-break
// on the full row, and raw rows without ORDER BY sort canonically —
// arrival order differs between the single-node engine and a sharded
// merge, so a LIMIT cut must never depend on it.
func orderAndLimit(p *Plan, rw *transport.ResultWindow) {
	if len(p.OrderBy) > 0 {
		sort.Slice(rw.Rows, func(i, j int) bool {
			return compareOrdered(p, rw.Rows[i], rw.Rows[j]) < 0
		})
	} else if !p.HasAgg() && !p.Grouped() {
		sort.Slice(rw.Rows, func(i, j int) bool {
			return compareRows(rw.Rows[i], rw.Rows[j]) < 0
		})
	}
	if p.Limit > 0 && len(rw.Rows) > p.Limit {
		rw.Rows = rw.Rows[:p.Limit]
	}
}

// compareOrdered orders two result rows by the plan's ORDER BY keys,
// falling back to the full row on ties so equal sort keys cannot order
// differently between runs (or between Engine and ShardedEngine).
func compareOrdered(p *Plan, a, b []event.Value) int {
	for _, key := range p.OrderBy {
		if key.Col >= len(a) || key.Col >= len(b) {
			continue
		}
		c := compareValues(a[key.Col], b[key.Col])
		if c == 0 {
			continue
		}
		if key.Desc {
			return -c
		}
		return c
	}
	return compareRows(a, b)
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// --- internal surface for the sharded engine (same package) ---

// startQueryDriven installs a query whose window lifecycle is driven
// externally: the caller pulls closed windows with forceCloseQuery and
// stopQueryDriven instead of receiving rendered emissions. Shards of a
// ShardedEngine run in this mode with effectively unbounded lateness, so
// no internal path ever closes a window on its own.
func (e *Engine) startQueryDriven(p Plan) error {
	return e.StartQuery(p, func(transport.ResultWindow) {
		// Unreachable by construction (driven queries close only via the
		// pull methods); tolerate rather than panic if it ever fires.
	})
}

// forceCloseQuery closes and returns the query's windows ending at or
// before bound, without rendering them.
func (e *Engine) forceCloseQuery(id uint64, bound int64) []window.Closed[*winState] {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, ok := e.queries[id]
	if !ok {
		return nil
	}
	return qs.win.ForceBefore(bound)
}

// stopQueryDriven removes a driven query, returning its still-open
// windows and drop counters.
func (e *Engine) stopQueryDriven(id uint64) (partials []window.Closed[*winState], lateDrops uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, exists := e.queries[id]
	if !exists {
		return nil, 0, false
	}
	partials = qs.win.Flush()
	lateDrops = qs.win.LateDrops() + qs.overflow
	delete(e.queries, id)
	return partials, lateDrops, true
}

// dropsOf reports a query's current window-late and overflow drop
// counts separately: the sharded merger attributes window-late deltas to
// the stream that shipped the late tuples (mirroring Engine.HandleBatch)
// but folds overflow only into the query-level totals.
func (e *Engine) dropsOf(id uint64) (late, overflow uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, exists := e.queries[id]
	if !exists {
		return 0, 0, false
	}
	return qs.win.LateDrops(), qs.overflow, true
}

// mergeWinStates folds src into dst: groups merge through the mergeable
// aggregators, raw rows concatenate (bounded), per-host moments combine,
// and counters add. Join pending state is irrelevant post-close — shards
// route by request id, so both sides of a request land on one shard and
// were joined there. The return value counts raw rows dropped because
// the merged window hit MaxRawRows; callers fold it into their overflow
// accounting so bounded-memory truncation is never silent.
func mergeWinStates(p *Plan, dst, src *winState) (dropped uint64) {
	dst.tuples += src.tuples
	for h := range src.hosts {
		dst.hosts[h] = struct{}{}
	}
	for key, sg := range src.groups {
		dg, ok := dst.groups[key]
		if !ok {
			dst.groups[key] = sg
			continue
		}
		for i := range dg.aggs {
			// Same plan, same spec order; Merge errors only on kind
			// mismatch, impossible here.
			_ = dg.aggs[i].Merge(sg.aggs[i])
		}
	}
	room := p.MaxRawRows - len(dst.rawRows)
	if room < 0 {
		room = 0
	}
	if len(src.rawRows) > room {
		dropped = uint64(len(src.rawRows) - room)
		src.rawRows = src.rawRows[:room]
	}
	dst.rawRows = append(dst.rawRows, src.rawRows...)
	for host, sm := range src.perHost {
		dm, ok := dst.perHost[host]
		if !ok {
			dst.perHost[host] = sm
			continue
		}
		for i := range dm {
			dm[i].Merge(sm[i])
		}
		dst.perHost[host] = dm
	}
	return dropped
}
