package central

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

// Satellite: ORDER BY with equal sort keys must be reproducible — the
// render path used an unstable sort with no tie-break, so rows under a
// LIMIT could differ between runs and between Engine and ShardedEngine.

func TestCompareOrderedTieBreak(t *testing.T) {
	p := &Plan{OrderBy: []ql.OrderKey{{Col: 0, Desc: false}}}
	a := []event.Value{event.Int(1), event.Str("a")}
	b := []event.Value{event.Int(1), event.Str("b")}
	if got := compareOrdered(p, a, b); got >= 0 {
		t.Errorf("equal keys must tie-break on the full row: compare = %d, want < 0", got)
	}
	if got := compareOrdered(p, b, a); got <= 0 {
		t.Errorf("tie-break must be antisymmetric: compare = %d, want > 0", got)
	}
	if got := compareOrdered(p, a, a); got != 0 {
		t.Errorf("identical rows must compare equal, got %d", got)
	}
	// Desc applies to the key but the tie-break stays canonical.
	pd := &Plan{OrderBy: []ql.OrderKey{{Col: 0, Desc: true}}}
	c := []event.Value{event.Int(2), event.Str("z")}
	if got := compareOrdered(pd, c, a); got >= 0 {
		t.Errorf("desc key: larger key must sort first, got %d", got)
	}
	if got := compareOrdered(pd, a, b); got >= 0 {
		t.Errorf("desc key ties still tie-break ascending on the row, got %d", got)
	}
}

func TestCompareRowsTotalOrder(t *testing.T) {
	rows := [][]event.Value{
		{event.Int(1), event.Str("b")},
		{event.Int(1), event.Str("a")},
		{event.Int(0), event.Str("z")},
		{event.Str("x"), event.Int(3)}, // incomparable kinds fall back to strings
	}
	for _, a := range rows {
		for _, b := range rows {
			ab, ba := compareRows(a, b), compareRows(b, a)
			if ab != -ba {
				t.Errorf("compareRows not antisymmetric: %v vs %v: %d, %d", a, b, ab, ba)
			}
		}
	}
}

// TestOrderByLimitTiesDeterministic feeds rows whose ORDER BY key is
// constant in shuffled arrival orders through the single-node and a
// 4-shard engine; the rows surviving LIMIT must be identical everywhere.
func TestOrderByLimitTiesDeterministic(t *testing.T) {
	mkBatches := func(rng *rand.Rand) []transport.TupleBatch {
		var tuples []transport.Tuple
		for u := 0; u < 20; u++ {
			tuples = append(tuples, transport.Tuple{
				RequestID: uint64(u),
				TsNanos:   sec(1) + int64(u),
				// exchange_id constant: every row ties on the sort key.
				Values: []event.Value{event.Int(int64(u)), event.Int(7), event.Float(1.5)},
			})
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		return []transport.TupleBatch{{QueryID: 1, HostID: "h", TypeIdx: 0, Tuples: tuples}}
	}

	src := `select user_id, exchange_id from bid order by exchange_id limit 5 window 10s`
	var want [][]event.Value
	for seed := int64(0); seed < 6; seed++ {
		for _, shards := range []int{0, 1, 4} { // 0 = single-node Engine
			var ex Executor
			if shards == 0 {
				ex = NewEngine()
			} else {
				se, err := NewShardedEngine(shards)
				if err != nil {
					t.Fatal(err)
				}
				ex = se
			}
			c := &collector{}
			p := buildPlan(t, src, 1, 1, 1)
			p.Lateness = time.Hour
			if err := ex.StartQuery(p, c.emit); err != nil {
				t.Fatal(err)
			}
			for _, b := range mkBatches(rand.New(rand.NewSource(seed))) {
				ex.HandleBatch(transport.CloneBatch(b))
			}
			ex.StopQuery(1)
			wins := c.all()
			if len(wins) != 1 {
				t.Fatalf("seed %d shards %d: %d windows, want 1", seed, shards, len(wins))
			}
			got := wins[0].Rows
			if len(got) != 5 {
				t.Fatalf("seed %d shards %d: %d rows, want 5", seed, shards, len(got))
			}
			if want == nil {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d shards %d: LIMIT under ties not reproducible:\ngot  %v\nwant %v",
					seed, shards, got, want)
			}
		}
	}
}

// TestRawRowsCanonicalOrder pins the canonical ordering of raw result
// rows without ORDER BY: arrival order differs between engines, so the
// render path sorts rows by full-row comparison.
func TestRawRowsCanonicalOrder(t *testing.T) {
	c := &collector{}
	e := NewEngine()
	p := buildPlan(t, `select user_id from bid window 10s`, 1, 1, 1)
	p.Lateness = time.Hour
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h", TypeIdx: 0, Tuples: []transport.Tuple{
		{RequestID: 1, TsNanos: sec(1), Values: []event.Value{event.Int(9), event.Int(1), event.Float(0)}},
		{RequestID: 2, TsNanos: sec(2), Values: []event.Value{event.Int(3), event.Int(1), event.Float(0)}},
		{RequestID: 3, TsNanos: sec(3), Values: []event.Value{event.Int(6), event.Int(1), event.Float(0)}},
	}})
	e.StopQuery(1)
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("%d windows, want 1", len(wins))
	}
	var got []int64
	for _, row := range wins[0].Rows {
		n, _ := row[0].AsInt()
		got = append(got, n)
	}
	if !reflect.DeepEqual(got, []int64{3, 6, 9}) {
		t.Errorf("raw rows = %v, want canonical order [3 6 9]", got)
	}
}
