package central

import (
	"encoding/binary"
	"fmt"
	"sort"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/liveness"
	"scrub/internal/stats"
	"scrub/internal/transport"
)

// This file is the exported surface a distributed ScrubCentral builds on
// (internal/coord): shard processes run an Engine in driven mode — windows
// close only when the coordinator says so — and ship their accumulated
// window state as serialized partials; the coordinator decodes, merges and
// renders them with the exact logic ShardedEngine uses in-process, so the
// three executors stay bit-identical under the differential oracle.

// EncodedPartial is one driven window's serialized accumulated state.
type EncodedPartial struct {
	Start int64
	End   int64
	Data  []byte
}

// DrivenAck reports how a driven engine absorbed one sub-batch. The
// router folds the per-shard acks (OR HasTs, max MaxTs, sum LateDelta)
// to recover exactly what ShardedEngine.HandleBatch would have observed
// around its synchronous fan-out.
type DrivenAck struct {
	HasTs     bool
	MaxTs     int64  // max in-span event time in the sub-batch
	LateDelta uint64 // window-late drops this sub-batch caused
	Late      uint64 // cumulative window-late drops for the query
	Overflow  uint64 // cumulative raw-row/join-pending overflow drops
}

// StartDriven installs a query in driven mode: effectively unbounded
// lateness, so the engine never closes a window on its own. The shard
// node of a distributed ScrubCentral runs every query this way.
func (e *Engine) StartDriven(p Plan) error {
	p.Lateness = shardLateness
	return e.startQueryDriven(p)
}

// ApplyDriven folds a sub-batch into a driven query: the same span
// filter, window routing and late accounting as HandleBatch, but with the
// stream-lease and watermark bookkeeping left out — those live at the
// coordinator, which is the only component that sees whole batches.
func (e *Engine) ApplyDriven(b transport.TupleBatch) (DrivenAck, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, ok := e.queries[b.QueryID]
	if !ok {
		return DrivenAck{}, false
	}
	if int(b.TypeIdx) >= len(qs.plan.Types) {
		return DrivenAck{}, false
	}
	if e.met != nil {
		e.met.batches.Inc()
		e.met.tuples.Add(uint64(len(b.Tuples)))
	}
	if qs.tuplesC != nil {
		qs.tuplesC.Add(uint64(len(b.Tuples)))
	}
	lateBefore := qs.win.LateDrops()
	dataStart := qs.plan.DataStartNanos()
	var ack DrivenAck
	for i := range b.Tuples {
		t := &b.Tuples[i]
		if dataStart != 0 && t.TsNanos < dataStart {
			continue
		}
		if qs.plan.EndNanos != 0 && t.TsNanos >= qs.plan.EndNanos {
			continue
		}
		for _, ws := range qs.win.GetAll(t.TsNanos) {
			e.processTuple(qs, ws, b.HostID, b.TypeIdx, t)
		}
		if !ack.HasTs || t.TsNanos > ack.MaxTs {
			//scrub:allowretain(scalar int64 copy; no pooled memory escapes)
			ack.MaxTs = t.TsNanos
			ack.HasTs = true
		}
	}
	ack.LateDelta = qs.win.LateDrops() - lateBefore
	ack.Late = qs.win.LateDrops()
	ack.Overflow = qs.overflow
	return ack, true
}

// CollectDriven closes every driven window ending at or before bound and
// returns the serialized partials, plus the query's cumulative drop
// counters as of the collect.
func (e *Engine) CollectDriven(id uint64, bound int64) (partials []EncodedPartial, late, overflow uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, exists := e.queries[id]
	if !exists {
		return nil, 0, 0, false
	}
	for _, closed := range qs.win.ForceBefore(bound) {
		partials = append(partials, EncodedPartial{
			Start: closed.Start, End: closed.End,
			Data: encodePartial(&qs.plan, closed.State),
		})
	}
	return partials, qs.win.LateDrops(), qs.overflow, true
}

// DrainDriven removes a driven query, returning its remaining windows as
// serialized partials and its final late+overflow drop total.
func (e *Engine) DrainDriven(id uint64) (partials []EncodedPartial, lateDrops uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qs, exists := e.queries[id]
	if !exists {
		return nil, 0, false
	}
	for _, closed := range qs.win.Flush() {
		partials = append(partials, EncodedPartial{
			Start: closed.Start, End: closed.End,
			Data: encodePartial(&qs.plan, closed.State),
		})
	}
	lateDrops = qs.win.LateDrops() + qs.overflow
	delete(e.queries, id)
	e.met.dropQuery(id)
	return partials, lateDrops, true
}

// ReplayHolding exposes the engines' shared replay-hold release decision
// to the distributed coordinator (internal/coord), which mirrors the
// in-process mergers' close logic and must release holds bit-identically.
func ReplayHolding(hold *bool, deadline int64, streams *liveness.Table, leaseNow int64) bool {
	return replayHolding(hold, deadline, streams, leaseNow)
}

// QueryRuntime is the coordinator-side merge/render handle for one query:
// the compiled plan without any engine state. It decodes shard partials,
// merges them (mergeable aggregators, bounded raw rows, moment folding),
// and renders result windows exactly like the in-process executors.
type QueryRuntime struct {
	plan Plan
	comp *compiled
}

// CompileQuery validates and compiles a plan into a runtime handle.
func CompileQuery(p Plan) (*QueryRuntime, error) {
	if err := p.fillDefaults(); err != nil {
		return nil, err
	}
	comp, err := compile(&p)
	if err != nil {
		return nil, fmt.Errorf("central: compile plan: %w", err)
	}
	if _, err := p.newAggSet(); err != nil {
		return nil, err
	}
	return &QueryRuntime{plan: p, comp: comp}, nil
}

// Plan returns the runtime's post-defaults plan.
func (qr *QueryRuntime) Plan() *Plan { return &qr.plan }

// PartialWindow is one decoded (or merged) window's accumulated state.
type PartialWindow struct{ ws *winState }

// Tuples returns how many tuples the partial has absorbed.
func (pw *PartialWindow) Tuples() uint64 { return pw.ws.tuples }

// Merge folds src into dst, returning the raw rows dropped because the
// merged window hit MaxRawRows. Merge order must be deterministic
// (ascending shard index) for bit-identical results.
func (qr *QueryRuntime) Merge(dst, src *PartialWindow) (dropped uint64) {
	return mergeWinStates(&qr.plan, dst.ws, src.ws)
}

// Render turns a merged window into a ResultWindow. The caller fills the
// deployment-level fields afterwards (drop totals, Degraded, Streams).
func (qr *QueryRuntime) Render(start int64, pw *PartialWindow, rates map[string]float64) transport.ResultWindow {
	return renderWindow(&qr.plan, qr.comp, start, start+int64(qr.plan.Window), pw.ws, rates)
}

// --- partial window state codec ---
//
// Deterministic layout (sorted hosts, sorted group keys) with float state
// as raw IEEE-754 bits, so decode(encode(ws)) merges and renders
// bit-identically to ws. Join-pending state is never encoded: shards
// route by request id, so both sides of a request joined on one shard,
// and pending tuples are irrelevant once the window closed.

func encodePartial(p *Plan, ws *winState) []byte {
	dst := binary.AppendUvarint(nil, ws.tuples)

	hosts := make([]string, 0, len(ws.hosts))
	for h := range ws.hosts {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	dst = binary.AppendUvarint(dst, uint64(len(hosts)))
	for _, h := range hosts {
		dst = appendString(dst, h)
	}

	keys := make([]string, 0, len(ws.groups))
	for k := range ws.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		g := ws.groups[k]
		dst = binary.AppendUvarint(dst, uint64(len(g.keyVals)))
		for _, v := range g.keyVals {
			dst = event.AppendValue(dst, v)
		}
		for _, ag := range g.aggs {
			enc, err := agg.AppendState(dst, ag)
			if err != nil {
				// Unreachable: every aggregator newAggSet builds is
				// encodable. A placeholder count keeps the failure loud at
				// decode rather than silently truncating the partial.
				dst = binary.AppendUvarint(dst, 0)
				continue
			}
			dst = enc
		}
	}

	dst = binary.AppendUvarint(dst, uint64(len(ws.rawRows)))
	for _, row := range ws.rawRows {
		dst = binary.AppendUvarint(dst, uint64(len(row)))
		for _, v := range row {
			dst = event.AppendValue(dst, v)
		}
	}

	mhosts := make([]string, 0, len(ws.perHost))
	for h := range ws.perHost {
		mhosts = append(mhosts, h)
	}
	sort.Strings(mhosts)
	dst = binary.AppendUvarint(dst, uint64(len(mhosts)))
	for _, h := range mhosts {
		dst = appendString(dst, h)
		moments := ws.perHost[h]
		dst = binary.AppendUvarint(dst, uint64(len(moments)))
		for i := range moments {
			dst = moments[i].AppendBinary(dst)
		}
	}
	return dst
}

// DecodePartial parses a partial serialized by a shard's CollectDriven /
// DrainDriven under the same plan.
func (qr *QueryRuntime) DecodePartial(b []byte) (*PartialWindow, error) {
	p := &qr.plan
	ws := &winState{
		hosts:   make(map[string]struct{}),
		groups:  make(map[string]*group),
		pending: make(map[uint64]*joinCell),
		perHost: make(map[string][]stats.Running),
	}
	tuples, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("central: decode partial: bad tuple count")
	}
	ws.tuples = tuples

	hostCnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 || hostCnt > uint64(len(b)) {
		return nil, fmt.Errorf("central: decode partial: bad host count")
	}
	n += sz
	for i := uint64(0); i < hostCnt; i++ {
		s, used, err := decodeString(b[n:])
		if err != nil {
			return nil, fmt.Errorf("central: decode partial: host: %w", err)
		}
		ws.hosts[s] = struct{}{}
		n += used
	}

	groupCnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 || groupCnt > uint64(len(b)) {
		return nil, fmt.Errorf("central: decode partial: bad group count")
	}
	n += sz
	for i := uint64(0); i < groupCnt; i++ {
		kvCnt, sz := binary.Uvarint(b[n:])
		if sz <= 0 || kvCnt > uint64(len(b)) {
			return nil, fmt.Errorf("central: decode partial: bad key count")
		}
		n += sz
		var keyVals []event.Value
		for j := uint64(0); j < kvCnt; j++ {
			v, used, err := event.DecodeValue(b[n:])
			if err != nil {
				return nil, fmt.Errorf("central: decode partial: key value: %w", err)
			}
			keyVals = append(keyVals, v)
			n += used
		}
		aggs := make([]agg.Aggregator, len(p.Aggs))
		for j := range p.Aggs {
			a, used, err := agg.DecodeState(p.Aggs[j].Spec, b[n:])
			if err != nil {
				return nil, fmt.Errorf("central: decode partial: agg %d: %w", j, err)
			}
			aggs[j] = a
			n += used
		}
		ws.groups[encodeKey(keyVals)] = &group{keyVals: keyVals, aggs: aggs}
	}

	rowCnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 || rowCnt > uint64(len(b)) {
		return nil, fmt.Errorf("central: decode partial: bad row count")
	}
	n += sz
	for i := uint64(0); i < rowCnt; i++ {
		valCnt, sz := binary.Uvarint(b[n:])
		if sz <= 0 || valCnt > uint64(len(b)) {
			return nil, fmt.Errorf("central: decode partial: bad row width")
		}
		n += sz
		row := make([]event.Value, valCnt)
		for j := range row {
			v, used, err := event.DecodeValue(b[n:])
			if err != nil {
				return nil, fmt.Errorf("central: decode partial: row value: %w", err)
			}
			row[j] = v
			n += used
		}
		ws.rawRows = append(ws.rawRows, row)
	}

	mhostCnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 || mhostCnt > uint64(len(b)) {
		return nil, fmt.Errorf("central: decode partial: bad moment host count")
	}
	n += sz
	for i := uint64(0); i < mhostCnt; i++ {
		host, used, err := decodeString(b[n:])
		if err != nil {
			return nil, fmt.Errorf("central: decode partial: moment host: %w", err)
		}
		n += used
		mCnt, sz := binary.Uvarint(b[n:])
		if sz <= 0 || mCnt > uint64(len(b)) {
			return nil, fmt.Errorf("central: decode partial: bad moment count")
		}
		n += sz
		moments := make([]stats.Running, mCnt)
		for j := range moments {
			r, used, err := stats.DecodeRunning(b[n:])
			if err != nil {
				return nil, fmt.Errorf("central: decode partial: moment: %w", err)
			}
			moments[j] = r
			n += used
		}
		ws.perHost[host] = moments
	}
	if n != len(b) {
		return nil, fmt.Errorf("central: decode partial: %d trailing bytes", len(b)-n)
	}
	return &PartialWindow{ws: ws}, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, int, error) {
	ln, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", 0, fmt.Errorf("bad string length")
	}
	if uint64(len(b)-sz) < ln {
		return "", 0, fmt.Errorf("short string")
	}
	return string(b[sz : sz+int(ln)]), sz + int(ln), nil
}
