// Package central implements ScrubCentral, the dedicated facility where
// all joins, group-bys and aggregations run (paper §4). Hosts ship only
// selected, projected, sampled tuples; everything expensive happens here,
// off the application machines — the inversion of classical "move the
// query to the data" optimization that defines Scrub.
package central

import (
	"fmt"
	"time"

	"scrub/internal/agg"
	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/ql"
)

// Plan is the central-side query object the query server installs. It is
// derived from a validated ql.Plan plus the resolved deployment facts
// (absolute span, host counts for estimator scaling).
type Plan struct {
	QueryID uint64
	// Text is the original query source, carried so a coordinator can
	// re-distribute the query to shard processes (which re-analyze it
	// against their own catalog). Empty for in-process executors; never
	// consulted by the engines themselves.
	Text    string
	Types   []string   // event types in FROM order (1 or 2)
	Columns [][]string // per type: projected column names, HostQuery order

	GroupBy     []expr.FieldRef
	Aggs        []ql.AggPlan
	Select      []ql.PlannedItem
	CentralPred expr.Node
	Having      expr.Node
	OrderBy     []ql.OrderKey
	Limit       int

	Window   time.Duration
	Slide    time.Duration // sliding interval; == Window for tumbling
	Lateness time.Duration // extra event-time slack before closing a window

	StartNanos int64
	EndNanos   int64

	// Replay is the REPLAY clause: hosts with a record stream ship
	// history from [StartNanos-Replay, StartNanos) before going live, so
	// the span filter must accept event times that far before the start
	// and window closing must wait for the history (the replay hold).
	// 0 disables replay.
	Replay time.Duration

	// Estimator inputs (paper Eq. 1–3): how many hosts matched the target
	// spec (N), how many were activated after host sampling (n), and the
	// per-host event sampling rate (q).
	TotalHosts   int
	SampledHosts int
	SampleEvents float64
	Confidence   float64 // default 0.95

	// MaxRawRows bounds collected rows per window for non-aggregate
	// queries; MaxJoinPending bounds buffered join tuples per window.
	// Overflow is counted and dropped — bounded state, always.
	MaxRawRows     int
	MaxJoinPending int

	// Host-impact budget (BUDGET clause), forwarded to hosts via
	// HostQuery. Central keeps a copy so it knows to expect per-host
	// effective-rate deviations and collects estimator moments for them.
	BudgetCPUPct      float64
	BudgetBytesPerSec float64
}

// Budgeted reports whether the query carries a host-impact budget.
func (p *Plan) Budgeted() bool { return p.BudgetCPUPct > 0 || p.BudgetBytesPerSec > 0 }

// FromPlan assembles a central Plan from an analyzed query.
func FromPlan(p *ql.Plan, queryID uint64, startNanos, endNanos int64, totalHosts, sampledHosts int) Plan {
	types := p.TypeNames()
	cols := make([][]string, len(types))
	for i, t := range types {
		cols[i] = p.Columns[t]
	}
	return Plan{
		QueryID:           queryID,
		Types:             types,
		Columns:           cols,
		GroupBy:           p.GroupBy,
		Aggs:              p.Aggs,
		Select:            p.Select,
		CentralPred:       p.CentralPred,
		Having:            p.Having,
		OrderBy:           p.OrderBy,
		Limit:             p.Limit,
		Window:            p.Window,
		Slide:             p.Slide,
		StartNanos:        startNanos,
		EndNanos:          endNanos,
		Replay:            p.Replay,
		TotalHosts:        totalHosts,
		SampledHosts:      sampledHosts,
		SampleEvents:      p.SampleEvents,
		BudgetCPUPct:      p.BudgetCPUPct,
		BudgetBytesPerSec: p.BudgetBytesPerSec,
	}
}

func (p *Plan) fillDefaults() error {
	if p.QueryID == 0 {
		return fmt.Errorf("central: zero query id")
	}
	if len(p.Types) == 0 || len(p.Types) > 2 {
		return fmt.Errorf("central: plan must cover 1 or 2 event types, got %d", len(p.Types))
	}
	if len(p.Columns) != len(p.Types) {
		return fmt.Errorf("central: %d column sets for %d types", len(p.Columns), len(p.Types))
	}
	if len(p.Select) == 0 {
		return fmt.Errorf("central: empty select list")
	}
	if p.Window <= 0 {
		return fmt.Errorf("central: window must be positive")
	}
	if p.Slide == 0 {
		p.Slide = p.Window
	}
	if p.Slide < 0 || p.Slide > p.Window || p.Window%p.Slide != 0 {
		return fmt.Errorf("central: slide %v must divide the window %v", p.Slide, p.Window)
	}
	if p.Lateness < 0 {
		return fmt.Errorf("central: negative lateness")
	}
	if p.Replay < 0 {
		return fmt.Errorf("central: negative replay")
	}
	if p.Lateness == 0 {
		p.Lateness = 2 * time.Second
	}
	if p.SampleEvents <= 0 || p.SampleEvents > 1 {
		p.SampleEvents = 1
	}
	if p.TotalHosts < p.SampledHosts {
		return fmt.Errorf("central: total hosts %d < sampled %d", p.TotalHosts, p.SampledHosts)
	}
	if p.Confidence == 0 {
		p.Confidence = 0.95
	}
	if p.Confidence <= 0 || p.Confidence >= 1 {
		return fmt.Errorf("central: confidence must be in (0,1)")
	}
	if p.MaxRawRows <= 0 {
		p.MaxRawRows = 100000
	}
	if p.MaxJoinPending <= 0 {
		p.MaxJoinPending = 1 << 20
	}
	return nil
}

// DataStartNanos returns the earliest event time the query accepts:
// the span start, extended back by the replay span when the query
// replays history. A zero span start accepts any event time either way.
func (p *Plan) DataStartNanos() int64 {
	if p.StartNanos == 0 || p.Replay <= 0 {
		return p.StartNanos
	}
	return p.StartNanos - int64(p.Replay)
}

// IsJoin reports whether the plan joins two event types.
func (p *Plan) IsJoin() bool { return len(p.Types) == 2 }

// HasAgg reports whether the plan aggregates.
func (p *Plan) HasAgg() bool { return len(p.Aggs) > 0 }

// Grouped reports whether results are grouped (explicitly or because an
// ungrouped aggregate forms one global group).
func (p *Plan) Grouped() bool { return len(p.GroupBy) > 0 }

// ColumnLabels returns the result column headers.
func (p *Plan) ColumnLabels() []string {
	out := make([]string, len(p.Select))
	for i, s := range p.Select {
		out[i] = s.Label
	}
	return out
}

// scaleFactor is the Horvitz-Thompson factor applied to scalable
// aggregates: (N/n) for host sampling times (1/q) for event sampling.
func (p *Plan) scaleFactor() float64 {
	f := 1.0
	if p.SampledHosts > 0 && p.TotalHosts > p.SampledHosts {
		f *= float64(p.TotalHosts) / float64(p.SampledHosts)
	}
	if p.SampleEvents > 0 && p.SampleEvents < 1 {
		f /= p.SampleEvents
	}
	return f
}

// compiled holds the evaluators derived from a Plan once at StartQuery.
type compiled struct {
	colIdx      []map[string]int // per type: column name → tuple value index
	groupEvals  []expr.Evaluator
	aggArgEvals []expr.Evaluator // nil entry for COUNT(*)
	selectEvals []expr.Evaluator
	centralPred func(expr.Row) bool // nil when no residual predicate
	havingPred  func(expr.Row) bool // nil when no HAVING
	// directAgg[i] >= 0 when select column i is exactly AggRef #n —
	// those columns carry estimator error bounds.
	directAgg []int
}

func compile(p *Plan) (*compiled, error) {
	c := &compiled{}
	c.colIdx = make([]map[string]int, len(p.Types))
	for i, cols := range p.Columns {
		m := make(map[string]int, len(cols))
		for j, name := range cols {
			m[name] = j
		}
		c.colIdx[i] = m
	}
	for _, g := range p.GroupBy {
		ev, err := expr.Compile(g)
		if err != nil {
			return nil, err
		}
		c.groupEvals = append(c.groupEvals, ev)
	}
	for _, a := range p.Aggs {
		if a.Arg == nil {
			c.aggArgEvals = append(c.aggArgEvals, nil)
			continue
		}
		ev, err := expr.Compile(a.Arg)
		if err != nil {
			return nil, err
		}
		c.aggArgEvals = append(c.aggArgEvals, ev)
	}
	for _, s := range p.Select {
		ev, err := expr.Compile(s.Expr)
		if err != nil {
			return nil, err
		}
		c.selectEvals = append(c.selectEvals, ev)
		if ar, ok := s.Expr.(expr.AggRef); ok {
			c.directAgg = append(c.directAgg, ar.Index)
		} else {
			c.directAgg = append(c.directAgg, -1)
		}
	}
	if p.CentralPred != nil {
		ev, err := expr.Compile(p.CentralPred)
		if err != nil {
			return nil, err
		}
		c.centralPred = expr.Predicate(ev)
	}
	if p.Having != nil {
		ev, err := expr.Compile(p.Having)
		if err != nil {
			return nil, err
		}
		c.havingPred = expr.Predicate(ev)
	}
	return c, nil
}

// newAggSet instantiates the plan's aggregators for one group.
func (p *Plan) newAggSet() ([]agg.Aggregator, error) {
	out := make([]agg.Aggregator, len(p.Aggs))
	for i, a := range p.Aggs {
		ag, err := agg.New(a.Spec)
		if err != nil {
			return nil, err
		}
		out[i] = ag
	}
	return out, nil
}

// encodeKey builds a map key from group-by values.
func encodeKey(vals []event.Value) string {
	buf := make([]byte, 0, 32)
	for _, v := range vals {
		buf = event.AppendValue(buf, v)
	}
	return string(buf)
}
