package central

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/transport"
)

func TestNewShardedEngineValidation(t *testing.T) {
	if _, err := NewShardedEngine(0); err == nil {
		t.Error("0 shards should fail")
	}
	se, err := NewShardedEngine(4)
	if err != nil || se.NumShards() != 4 {
		t.Fatalf("NewShardedEngine: %v", err)
	}
	p := buildPlan(t, `select count(*) from bid`, 1, 1, 1)
	if err := se.StartQuery(p, nil); err == nil {
		t.Error("nil emit should fail")
	}
	if err := se.StartQuery(p, func(transport.ResultWindow) {}); err != nil {
		t.Fatal(err)
	}
	if err := se.StartQuery(p, func(transport.ResultWindow) {}); err == nil {
		t.Error("duplicate id should fail")
	}
	if got := se.ActiveQueries(); len(got) != 1 || got[0] != 1 {
		t.Errorf("active = %v", got)
	}
}

// runBoth feeds identical batches into a single-node Engine and a
// ShardedEngine and returns both result sets, flushed the same way.
func runBoth(t *testing.T, src string, shards int, batches []transport.TupleBatch, tickAt int64) (single, sharded []transport.ResultWindow) {
	t.Helper()

	run := func(ex Executor) []transport.ResultWindow {
		c := &collector{}
		p := buildPlan(t, src, 1, 1, 1)
		// Ample lateness: the equivalence subject is the cross-shard merge,
		// not watermark behavior, and the synthetic feeding order (hosts
		// appearing one after another with full time ranges) would trip
		// event-driven closing on the single node — real agents heartbeat
		// from the start, so their streams anchor the min-watermark early.
		p.Lateness = time.Hour
		if err := ex.StartQuery(p, c.emit); err != nil {
			t.Fatal(err)
		}
		for _, b := range batches {
			// Deep-copy: engines share nothing. (The old hand-rolled copy
			// here only duplicated the Tuples slice — every tuple's Values
			// array stayed shared between the two engines under test.)
			ex.HandleBatch(transport.CloneBatch(b))
		}
		if tickAt != 0 {
			ex.Tick(tickAt)
		}
		ex.StopQuery(1)
		return c.all()
	}

	se, err := NewShardedEngine(shards)
	if err != nil {
		t.Fatal(err)
	}
	return run(NewEngine()), run(se)
}

// windowsEqual compares result sets window by window.
func windowsEqual(t *testing.T, single, sharded []transport.ResultWindow) {
	t.Helper()
	if len(single) != len(sharded) {
		t.Fatalf("window counts differ: single %d, sharded %d", len(single), len(sharded))
	}
	for i := range single {
		a, b := single[i], sharded[i]
		if a.WindowStart != b.WindowStart || a.WindowEnd != b.WindowEnd {
			t.Errorf("window %d bounds differ: [%d,%d) vs [%d,%d)", i, a.WindowStart, a.WindowEnd, b.WindowStart, b.WindowEnd)
		}
		if !rowsAlmostEqual(a.Rows, b.Rows) {
			t.Errorf("window %d rows differ:\n single:  %v\n sharded: %v", i, a.Rows, b.Rows)
		}
		if a.Stats.TuplesIn != b.Stats.TuplesIn {
			t.Errorf("window %d tuples differ: %d vs %d", i, a.Stats.TuplesIn, b.Stats.TuplesIn)
		}
	}
}

// rowsAlmostEqual compares result rows, allowing last-ulp float drift:
// merging partial sums across shards reassociates floating-point
// addition, which legitimately perturbs SUM/AVG in the ~1e-15 relative
// range.
func rowsAlmostEqual(a, b [][]event.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			fx, okx := x.AsFloat()
			fy, oky := y.AsFloat()
			if okx && oky {
				diff := fx - fy
				if diff < 0 {
					diff = -diff
				}
				scale := 1.0
				if fx > scale {
					scale = fx
				} else if -fx > scale {
					scale = -fx
				}
				if diff > 1e-9*scale {
					return false
				}
				continue
			}
			if !reflect.DeepEqual(x, y) {
				return false
			}
		}
	}
	return true
}

func TestShardedEquivalenceGrouped(t *testing.T) {
	// Random grouped workload: single-node and sharded must render
	// identical windows (mergeable aggregates make this exact).
	rng := rand.New(rand.NewSource(42))
	var batches []transport.TupleBatch
	req := uint64(0)
	for b := 0; b < 20; b++ {
		tuples := make([]transport.Tuple, 64)
		for i := range tuples {
			req++
			tuples[i] = transport.Tuple{
				RequestID: req,
				TsNanos:   sec(int64(rng.Intn(50))) + 1,
				Values: []event.Value{
					event.Int(int64(rng.Intn(20))),
					event.Float(rng.Float64() * 10),
				},
			}
		}
		batches = append(batches, transport.TupleBatch{
			QueryID: 1, HostID: fmt.Sprintf("h%d", b%4), TypeIdx: 0, Tuples: tuples,
		})
	}
	src := `select bid.user_id, count(*), sum(bid.bid_price), avg(bid.bid_price), min(bid.bid_price), max(bid.bid_price)
		from bid group by bid.user_id window 10s`
	single, sharded := runBoth(t, src, 4, batches, sec(200))
	windowsEqual(t, single, sharded)
	if len(single) == 0 {
		t.Fatal("no windows emitted")
	}
}

func TestShardedEquivalenceJoin(t *testing.T) {
	// Join routing: both sides of a request land on one shard, so join
	// results match the single node exactly.
	rng := rand.New(rand.NewSource(7))
	var batches []transport.TupleBatch
	for b := 0; b < 10; b++ {
		var bids, excls []transport.Tuple
		for i := 0; i < 40; i++ {
			req := uint64(b*100 + i)
			ts := sec(int64(rng.Intn(30))) + 1
			bids = append(bids, transport.Tuple{RequestID: req, TsNanos: ts})
			if rng.Intn(2) == 0 {
				excls = append(excls, transport.Tuple{RequestID: req, TsNanos: ts,
					Values: []event.Value{event.Str([]string{"budget", "geo", "freq"}[rng.Intn(3)])}})
			}
		}
		batches = append(batches,
			transport.TupleBatch{QueryID: 1, HostID: "bid-h", TypeIdx: 0, Tuples: bids},
			transport.TupleBatch{QueryID: 1, HostID: "ad-h", TypeIdx: 1, Tuples: excls},
		)
	}
	src := `select exclusion.reason, count(*) from bid, exclusion group by exclusion.reason window 10s`
	single, sharded := runBoth(t, src, 3, batches, sec(100))
	windowsEqual(t, single, sharded)
}

func TestShardedEquivalenceRawOrderLimit(t *testing.T) {
	var tuples []transport.Tuple
	for i := 0; i < 50; i++ {
		tuples = append(tuples, transport.Tuple{
			RequestID: uint64(i + 1), TsNanos: sec(1),
			Values: []event.Value{event.Int(int64(i)), event.Float(float64(i % 13))},
		})
	}
	batches := []transport.TupleBatch{{QueryID: 1, HostID: "h", TypeIdx: 0, Tuples: tuples}}
	src := `select bid.user_id, bid.bid_price from bid order by 2 desc, 1 limit 5 window 10s`
	single, sharded := runBoth(t, src, 4, batches, sec(100))
	windowsEqual(t, single, sharded)
	if len(single) != 1 || len(single[0].Rows) != 5 {
		t.Fatalf("rows = %+v", single)
	}
}

func TestShardedScaleUpAndBounds(t *testing.T) {
	se, err := NewShardedEngine(3)
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s sample hosts 50% events 50%`, 1, 4, 2)
	if err := se.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 2; h++ {
		tuples := make([]transport.Tuple, 10)
		for i := range tuples {
			tuples[i] = transport.Tuple{RequestID: uint64(h*100 + i), TsNanos: sec(1)}
		}
		se.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: fmt.Sprintf("h%d", h), TypeIdx: 0, Tuples: tuples})
	}
	se.Tick(sec(100))
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("wins = %d", len(wins))
	}
	// 20 tuples × factor 4 = 80.
	if wins[0].Rows[0][0].String() != "80" {
		t.Errorf("scaled count = %v", wins[0].Rows[0][0])
	}
	if !wins[0].Approx || len(wins[0].ErrBounds) != 1 {
		t.Errorf("approx metadata missing: %+v", wins[0])
	}
	se.StopQuery(1)
}

func TestShardedHostDropCounters(t *testing.T) {
	se, _ := NewShardedEngine(2)
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	if err := se.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	se.HandleBatch(transport.TupleBatch{
		QueryID: 1, HostID: "h1", TypeIdx: 0,
		Tuples:     []transport.Tuple{{RequestID: 1, TsNanos: sec(1)}},
		QueueDrops: 9,
	})
	se.Tick(sec(100))
	wins := c.all()
	if len(wins) != 1 || wins[0].Stats.HostDrops != 9 {
		t.Fatalf("host drops = %+v", wins)
	}
	stats, ok := se.StopQuery(1)
	if !ok || stats.HostDrops != 9 || stats.TuplesIn != 1 {
		t.Errorf("final stats = %+v", stats)
	}
	if _, ok := se.StopQuery(1); ok {
		t.Error("double stop should miss")
	}
	// Batches after stop are ignored.
	se.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h1"})
}

func TestShardedConcurrentStress(t *testing.T) {
	se, _ := NewShardedEngine(4)
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 1s`, 1, 1, 1)
	// The goroutines below replay a small set of event times out of order
	// indefinitely; generous lateness keeps the stress test about
	// concurrency, not late-drop accounting.
	p.Lateness = time.Hour
	if err := se.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	const hosts = 6
	const batches = 40
	const perBatch = 25
	var wg sync.WaitGroup
	for h := 0; h < hosts; h++ {
		wg.Add(1)
		go func(h int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				tuples := make([]transport.Tuple, perBatch)
				for i := range tuples {
					tuples[i] = transport.Tuple{
						RequestID: uint64(h*1_000_000 + b*1000 + i),
						TsNanos:   sec(int64(b%8)) + 1,
					}
				}
				se.HandleBatch(transport.TupleBatch{
					QueryID: 1, HostID: fmt.Sprintf("h%d", h), TypeIdx: 0, Tuples: tuples,
				})
			}
		}(h)
	}
	stop := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		for {
			select {
			case <-stop:
				return
			default:
				se.Tick(0) // far past: closes nothing
				se.Stats(1)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-tickDone
	stats, ok := se.StopQuery(1)
	if !ok {
		t.Fatal("query vanished")
	}
	const want = hosts * batches * perBatch
	if stats.TuplesIn != want {
		t.Errorf("tuples = %d, want %d", stats.TuplesIn, want)
	}
	var emitted int64
	for _, w := range c.all() {
		for _, row := range w.Rows {
			n, _ := row[0].AsInt()
			emitted += n
		}
	}
	if emitted != want {
		t.Errorf("emitted sum = %d, want %d", emitted, want)
	}
}

func TestShardedThroughWholeCluster(t *testing.T) {
	// Integration smoke via the central plan only (core wiring is tested
	// in internal/core): sliding windows through shards.
	se, _ := NewShardedEngine(2)
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s slide 5s`, 1, 1, 1)
	if err := se.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	se.HandleBatch(transport.TupleBatch{QueryID: 1, HostID: "h", TypeIdx: 0,
		Tuples: []transport.Tuple{
			{RequestID: 1, TsNanos: sec(7)},
			{RequestID: 2, TsNanos: sec(12)},
		}})
	se.Tick(sec(100))
	counts := map[int64]string{}
	for _, w := range c.all() {
		counts[w.WindowStart/int64(time.Second)] = w.Rows[0][0].String()
	}
	if counts[0] != "1" || counts[5] != "2" || counts[10] != "1" {
		t.Errorf("sliding sharded counts = %v", counts)
	}
	se.StopQuery(1)
}
