package central

import (
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/transport"
)

// virtualClock is a hand-advanced wall clock for lease tests. Engine
// calls it only with its own lock held, so a plain field suffices.
type virtualClock struct{ nanos int64 }

func (vc *virtualClock) now() time.Time      { return time.Unix(0, vc.nanos) }
func (vc *virtualClock) set(d time.Duration) { vc.nanos = int64(d) }

// heartbeat is a counter-only batch: it renews the stream lease without
// contributing tuples, the wire form a quiet-but-healthy host ships.
func heartbeat(queryID uint64, host string) transport.TupleBatch {
	return transport.TupleBatch{QueryID: queryID, HostID: host, TypeIdx: 0}
}

func streamFor(t *testing.T, rw transport.ResultWindow, host string) transport.StreamStat {
	t.Helper()
	for _, s := range rw.Streams {
		if s.HostID == host {
			return s
		}
	}
	t.Fatalf("window [%d,%d) has no stream for %s: %+v", rw.WindowStart, rw.WindowEnd, host, rw.Streams)
	return transport.StreamStat{}
}

// TestEvictionClosesDegradedWindow walks the full failure arc on the
// single-node engine: a host dies mid-window and stalls the watermark;
// its lease expires and the window closes degraded, naming the evicted
// host; the host reconnects, its late tuples are counted (not applied),
// and subsequent windows come out clean.
func TestEvictionClosesDegradedWindow(t *testing.T) {
	vc := &virtualClock{}
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 2, 2)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}

	// Both hosts report into window [0,10); h1 then runs ahead to 25s,
	// but the watermark stays pinned at h2's 3s, so nothing closes.
	vc.set(1 * time.Second)
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(5), event.Int(1))))
	e.HandleBatch(bidBatch(1, "h2", tup(2, sec(3), event.Int(2))))
	e.HandleBatch(bidBatch(1, "h1", tup(3, sec(25), event.Int(3))))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("windows closed while a live host lags: %d", len(got))
	}

	// h2 goes silent. h1 heartbeats (no tuples) to keep its own lease —
	// a healthy stream with nothing to report must not be evicted.
	vc.set(3 * time.Second)
	e.HandleBatch(heartbeat(1, "h1"))

	// Lease expiry: at 4s, h2 is 3s stale (> 2s TTL), h1 only 1s. Tick's
	// event-time bound is kept out of the way so only eviction can close.
	vc.set(4 * time.Second)
	e.Tick(0)
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("eviction closed %d windows, want 1", len(wins))
	}
	w := wins[0]
	if w.WindowStart != 0 || w.WindowEnd != sec(10) {
		t.Fatalf("window = [%d,%d)", w.WindowStart, w.WindowEnd)
	}
	if !w.Degraded {
		t.Error("window emitted under eviction must be degraded")
	}
	// Partial data: both hosts' pre-failure tuples are in.
	if len(w.Rows) != 1 || w.Rows[0][0].String() != "2" {
		t.Errorf("rows = %v, want one count(*) row of 2", w.Rows)
	}
	if s := streamFor(t, w, "h2"); !s.Evicted {
		t.Error("h2 must be marked evicted in the window's stream stats")
	}
	if s := streamFor(t, w, "h1"); s.Evicted {
		t.Error("h1 is alive and must not be marked evicted")
	}

	// h2 reconnects with one tuple for the already-closed window and one
	// fresh tuple. The late tuple is counted against h2, never applied.
	vc.set(5 * time.Second)
	e.HandleBatch(bidBatch(1, "h2",
		tup(4, sec(8), event.Int(4)),  // late: [0,10) closed above
		tup(5, sec(26), event.Int(5)), // lands in [20,30)
	))
	// Both hosts advance; watermark 40s closes [20,30) cleanly.
	e.HandleBatch(bidBatch(1, "h1", tup(6, sec(40), event.Int(6))))
	e.HandleBatch(bidBatch(1, "h2", tup(7, sec(41), event.Int(7))))

	wins = c.all()
	if len(wins) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(wins))
	}
	clean := wins[1]
	if clean.WindowStart != sec(20) || clean.WindowEnd != sec(30) {
		t.Fatalf("window = [%d,%d)", clean.WindowStart, clean.WindowEnd)
	}
	if clean.Degraded {
		t.Error("window after re-admission must not be degraded")
	}
	// h1's 25s tuple + h2's 26s tuple.
	if len(clean.Rows) != 1 || clean.Rows[0][0].String() != "2" {
		t.Errorf("rows = %v, want one count(*) row of 2", clean.Rows)
	}
	s2 := streamFor(t, clean, "h2")
	if s2.Evicted {
		t.Error("re-admitted h2 still marked evicted")
	}
	if s2.LateDrops != 1 {
		t.Errorf("h2 LateDrops = %d, want 1 (the 8s tuple)", s2.LateDrops)
	}
	if s1 := streamFor(t, clean, "h1"); s1.LateDrops != 0 {
		t.Errorf("h1 LateDrops = %d, want 0", s1.LateDrops)
	}

	stats, ok := e.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery")
	}
	if stats.DegradedWindows != 1 {
		t.Errorf("DegradedWindows = %d, want 1", stats.DegradedWindows)
	}
	if stats.LateDrops != 1 {
		t.Errorf("LateDrops = %d, want 1", stats.LateDrops)
	}
}

// TestHeartbeatKeepsQuietStreamAlive pins the fix for the false-eviction
// hazard: a stream that only ever heartbeats (no matching events) must
// survive lease expiry and must not drag the watermark to zero.
func TestHeartbeatKeepsQuietStreamAlive(t *testing.T) {
	vc := &virtualClock{}
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 2, 2)
	if err := e.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}
	for s := int64(1); s <= 6; s++ {
		vc.set(time.Duration(s) * time.Second)
		e.HandleBatch(heartbeat(1, "h2"))
		e.HandleBatch(bidBatch(1, "h1", tup(uint64(s), sec(s*10), event.Int(1))))
		e.Tick(0)
	}
	for _, w := range c.all() {
		if w.Degraded {
			t.Fatalf("window [%d,%d) degraded despite steady heartbeats", w.WindowStart, w.WindowEnd)
		}
		if s := streamFor(t, w, "h2"); s.Evicted {
			t.Fatal("heartbeat-only h2 was evicted")
		}
	}
	if len(c.all()) == 0 {
		t.Fatal("no windows closed; quiet h2 is pinning the watermark")
	}
}

// TestShardedEvictionDegraded exercises the same arc on the sharded
// merger: the degraded flag and per-stream accounting ride on windows it
// emits, and clear after the host returns.
func TestShardedEvictionDegraded(t *testing.T) {
	vc := &virtualClock{}
	se, err := NewShardedEngineWith(2, Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 2, 2)
	if err := se.StartQuery(p, c.emit); err != nil {
		t.Fatal(err)
	}

	vc.set(1 * time.Second)
	se.HandleBatch(bidBatch(1, "h1", tup(1, sec(2), event.Int(1)), tup(2, sec(4), event.Int(2))))
	se.HandleBatch(bidBatch(1, "h2", tup(3, sec(5), event.Int(3))))

	// h2 dies; its lease expires before the merger's barrier closes the
	// window, so the emission is degraded and names it.
	vc.set(2 * time.Second)
	se.HandleBatch(heartbeat(1, "h1"))
	vc.set(4 * time.Second)
	se.Tick(sec(15)) // bound 15−2 = 13s closes [0,10)
	wins := c.all()
	if len(wins) != 1 {
		t.Fatalf("emitted %d windows, want 1", len(wins))
	}
	if !wins[0].Degraded {
		t.Error("merger window under eviction must be degraded")
	}
	if len(wins[0].Rows) != 1 || wins[0].Rows[0][0].String() != "3" {
		t.Errorf("rows = %v, want one count(*) row of 3", wins[0].Rows)
	}
	if s := streamFor(t, wins[0], "h2"); !s.Evicted {
		t.Error("h2 must be evicted in merger stream stats")
	}

	// h2 returns; the next window is clean.
	vc.set(5 * time.Second)
	se.HandleBatch(bidBatch(1, "h1", tup(4, sec(12), event.Int(4))))
	se.HandleBatch(bidBatch(1, "h2", tup(5, sec(14), event.Int(5))))
	se.Tick(sec(25))
	wins = c.all()
	if len(wins) != 2 {
		t.Fatalf("emitted %d windows, want 2", len(wins))
	}
	if wins[1].Degraded {
		t.Error("merger window after re-admission must not be degraded")
	}
	if s := streamFor(t, wins[1], "h2"); s.Evicted {
		t.Error("re-admitted h2 still marked evicted")
	}

	stats, ok := se.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery")
	}
	if stats.DegradedWindows != 1 {
		t.Errorf("DegradedWindows = %d, want 1", stats.DegradedWindows)
	}
}
