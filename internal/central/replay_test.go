package central

import (
	"testing"
	"time"

	"scrub/internal/transport"
)

// replayPlan builds a single-type count plan with an absolute span and a
// REPLAY clause, the shape every hold test needs: start at 100s event
// time, replay the preceding 30s.
func replayPlan(t *testing.T) Plan {
	t.Helper()
	p := buildPlan(t, `select count(*) from bid window 10s`, 1, 1, 1)
	p.StartNanos = sec(100)
	p.EndNanos = sec(200)
	p.Replay = 30 * time.Second
	return p
}

// epochBatch tags a bid batch as replayed history.
func epochBatch(host string, done bool, tuples ...transport.Tuple) transport.TupleBatch {
	b := bidBatch(1, host, tuples...)
	b.ReplayEpoch = 1
	b.ReplayDone = done
	return b
}

// winStarts indexes emitted windows by start nanos.
func winStarts(wins []transport.ResultWindow) map[int64]transport.ResultWindow {
	out := make(map[int64]transport.ResultWindow, len(wins))
	for _, w := range wins {
		out[w.WindowStart] = w
	}
	return out
}

func TestReplayHoldUntilDoneMarker(t *testing.T) {
	// While history is in flight, live tuples racing ahead must not close
	// replay-era windows; the ReplayDone marker releases everything.
	vc := &virtualClock{}
	vc.set(1000 * time.Second)
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	if err := e.StartQuery(replayPlan(t), c.emit); err != nil {
		t.Fatal(err)
	}

	// Live tuples far past the start: watermark 125s would normally close
	// every window ending ≤ 123s.
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(105)), tup(2, sec(125))))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("hold violated: %d windows closed before replay finished", len(got))
	}
	// Wall-clock ticks must hold too.
	e.Tick(sec(1001))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("Tick closed %d windows during the hold", len(got))
	}

	// History arrives: two tuples inside [70s, 100s). Still held — the
	// stream is replaying until its done marker.
	e.HandleBatch(epochBatch("h1", false, tup(3, sec(80)), tup(4, sec(95))))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("epoch batch closed %d windows before the done marker", len(got))
	}

	// The empty done marker settles the replay and must itself trigger the
	// deferred close, tuples or not.
	e.HandleBatch(epochBatch("h1", true))
	byStart := winStarts(c.all())
	if len(byStart) == 0 {
		t.Fatal("done marker released the hold but closed nothing")
	}
	for _, start := range []int64{sec(80), sec(90), sec(100)} {
		w, ok := byStart[start]
		if !ok {
			t.Fatalf("window starting at %ds not emitted; got %v", start/sec(1), byStart)
		}
		if w.Rows[0][0].String() != "1" {
			t.Errorf("window @%ds count = %v, want 1", start/sec(1), w.Rows[0])
		}
	}
}

func TestReplaySpanFilterExtendsBack(t *testing.T) {
	// The span filter accepts [start−replay, start); older tuples drop.
	vc := &virtualClock{}
	vc.set(1000 * time.Second)
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	if err := e.StartQuery(replayPlan(t), c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(epochBatch("h1", false,
		tup(1, sec(60)), // before 70s: out of the replayed span
		tup(2, sec(75)), // in [70s, 100s): accepted
	))
	e.HandleBatch(bidBatch(1, "h1", tup(3, sec(130))))
	e.HandleBatch(epochBatch("h1", true))
	stats, ok := e.Stats(1)
	if !ok {
		t.Fatal("Stats missed")
	}
	if stats.TuplesIn != 2 {
		t.Errorf("TuplesIn = %d, want 2 (60s tuple must be span-filtered)", stats.TuplesIn)
	}
}

func TestReplayHoldDeadlineReleases(t *testing.T) {
	// No host ever announces replay (nothing was recording): the hold must
	// release at the deadline, not wedge the query forever.
	vc := &virtualClock{}
	vc.set(1000 * time.Second)
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	if err := e.StartQuery(replayPlan(t), c.emit); err != nil {
		t.Fatal(err)
	}
	e.HandleBatch(bidBatch(1, "h1", tup(1, sec(105)), tup(2, sec(125))))
	e.Tick(sec(1001))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("closed %d windows before the deadline", len(got))
	}
	// Deadline is start + 2×TTL = 1004s on the lease clock.
	vc.set(1005 * time.Second)
	e.Tick(sec(1005))
	if got := c.all(); len(got) == 0 {
		t.Fatal("deadline passed but the hold never released")
	}
}

func TestReplayEvictionSettlesHold(t *testing.T) {
	// A host dies mid-replay: its eviction must settle the hold so the
	// surviving streams' windows close without waiting out the deadline.
	vc := &virtualClock{}
	vc.set(1000 * time.Second)
	e := NewEngineWith(Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	c := &collector{}
	if err := e.StartQuery(replayPlan(t), c.emit); err != nil {
		t.Fatal(err)
	}
	// h1 announces replay and goes silent; h2 stays live.
	e.HandleBatch(epochBatch("h1", false, tup(1, sec(80))))
	vc.set(1002500 * time.Millisecond)
	e.HandleBatch(bidBatch(1, "h2", tup(2, sec(105)), tup(3, sec(125))))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("closed %d windows while h1 was still replaying", len(got))
	}
	// h1's lease (renewed at 1000s, TTL 2s) is expired; the deadline
	// (1004s) is not yet reached — the release must come from eviction.
	e.Tick(sec(1003))
	byStart := winStarts(c.all())
	if len(byStart) == 0 {
		t.Fatal("eviction settled the replay but closed nothing")
	}
	if _, ok := byStart[sec(100)]; !ok {
		t.Errorf("window @100s not closed after eviction; got %v", byStart)
	}
}

func TestReplayHoldSharded(t *testing.T) {
	// The sharded engine must hold and release identically.
	vc := &virtualClock{}
	vc.set(1000 * time.Second)
	se, err := NewShardedEngineWith(2, Options{LeaseTTL: 2 * time.Second, Clock: vc.now})
	if err != nil {
		t.Fatal(err)
	}
	c := &collector{}
	if err := se.StartQuery(replayPlan(t), c.emit); err != nil {
		t.Fatal(err)
	}
	se.HandleBatch(bidBatch(1, "h1", tup(1, sec(105)), tup(2, sec(125))))
	se.Tick(sec(1001))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("sharded hold violated: %d windows closed early", len(got))
	}
	se.HandleBatch(epochBatch("h1", false, tup(3, sec(80)), tup(4, sec(95))))
	if got := c.all(); len(got) != 0 {
		t.Fatalf("epoch batch closed %d windows before the done marker", len(got))
	}
	se.HandleBatch(epochBatch("h1", true))
	byStart := winStarts(c.all())
	for _, start := range []int64{sec(80), sec(90), sec(100)} {
		w, ok := byStart[start]
		if !ok {
			t.Fatalf("window starting at %ds not emitted; got %v", start/sec(1), byStart)
		}
		if w.Rows[0][0].String() != "1" {
			t.Errorf("window @%ds count = %v, want 1", start/sec(1), w.Rows[0])
		}
	}
}
