package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/obs"
)

// MaxFrame bounds a single protocol frame. Batches larger than this are an
// agent bug (the shipper bounds batch sizes well below it).
const MaxFrame = 16 << 20

// ConnMetrics aggregates a connection's (or a set of connections')
// transport-level accounting: frames and wire bytes in each direction and
// the time spent in the codec. Fields may be nil to skip a dimension; the
// whole struct is typically built once per daemon with
// NewConnMetrics and attached to every Conn of one role.
type ConnMetrics struct {
	FramesSent *obs.Counter
	BytesSent  *obs.Counter // payload + 4-byte frame header
	EncodeNs   *obs.Counter
	FramesRecv *obs.Counter
	BytesRecv  *obs.Counter
	DecodeNs   *obs.Counter
}

// NewConnMetrics registers the six transport series in reg under
// scrub_transport_* with the given labels (typically conn="data") and
// returns the bundle to attach with Conn.SetMetrics.
func NewConnMetrics(reg *obs.Registry, labels ...obs.Label) *ConnMetrics {
	return &ConnMetrics{
		FramesSent: reg.Counter("scrub_transport_frames_sent_total", "frames written", labels...),
		BytesSent:  reg.Counter("scrub_transport_bytes_sent_total", "wire bytes written (payload + frame header)", labels...),
		EncodeNs:   reg.Counter("scrub_transport_encode_ns_total", "nanoseconds spent encoding outbound frames", labels...),
		FramesRecv: reg.Counter("scrub_transport_frames_recv_total", "frames read", labels...),
		BytesRecv:  reg.Counter("scrub_transport_bytes_recv_total", "wire bytes read (payload + frame header)", labels...),
		DecodeNs:   reg.Counter("scrub_transport_decode_ns_total", "nanoseconds spent decoding inbound frames", labels...),
	}
}

// Conn is a framed, message-oriented connection. Send is safe for
// concurrent use; Recv must be driven from one goroutine.
type Conn struct {
	nc   net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	bw   *bufio.Writer
	enc  []byte // reusable encode buffer, guarded by wmu
	met  atomic.Pointer[ConnMetrics]
	once sync.Once
}

// SetMetrics attaches transport accounting; safe to call at any time,
// including while the connection is in use (the pointer swap is atomic).
func (c *Conn) SetMetrics(m *ConnMetrics) { c.met.Store(m) }

// NewConn wraps a net.Conn (TCP in production, net.Pipe in tests).
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
}

// Dial connects to a Scrub endpoint.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return DialWith(addr, timeout, nil)
}

// DialWith connects like Dial but passes the raw connection through wrap
// (when non-nil) before framing. This is the seam fault-injection layers
// (internal/chaos) use to interpose on live connections without the
// protocol code knowing.
func DialWith(addr string, timeout time.Duration, wrap func(net.Conn) net.Conn) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if wrap != nil {
		nc = wrap(nc)
	}
	return NewConn(nc), nil
}

// Send encodes, frames, and flushes one message. The encode buffer is
// owned by the connection and reused across calls, so a busy sender
// (e.g. the host shipper) allocates nothing per message in steady state.
func (c *Conn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	met := c.met.Load()
	var t0 time.Time
	if met != nil {
		t0 = time.Now()
	}
	payload, err := AppendEncode(c.enc[:0], m)
	if err != nil {
		return err
	}
	c.enc = payload[:0]
	if met != nil {
		if met.EncodeNs != nil {
			met.EncodeNs.Add(uint64(time.Since(t0)))
		}
		if met.FramesSent != nil {
			met.FramesSent.Inc()
		}
		if met.BytesSent != nil {
			met.BytesSent.Add(uint64(len(payload) + 4))
		}
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("transport: frame too large: %d bytes (%s)", len(payload), Name(m))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv blocks for the next message.
func (c *Conn) Recv() (Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, fmt.Errorf("transport: bad frame length %d", n)
	}
	// Read incrementally rather than trusting the length prefix with one
	// up-front allocation: a corrupt or hostile header claiming MaxFrame
	// costs at most 64KiB before the short read surfaces.
	payload := make([]byte, min(int(n), 64<<10))
	if _, err := io.ReadFull(c.br, payload); err != nil {
		return nil, err
	}
	for len(payload) < int(n) {
		step := min(int(n)-len(payload), 1<<20)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(c.br, payload[len(payload)-step:]); err != nil {
			return nil, err
		}
	}
	met := c.met.Load()
	if met == nil {
		return Decode(payload)
	}
	t0 := time.Now()
	m, err := Decode(payload)
	if met.DecodeNs != nil {
		met.DecodeNs.Add(uint64(time.Since(t0)))
	}
	if err == nil {
		if met.FramesRecv != nil {
			met.FramesRecv.Inc()
		}
		if met.BytesRecv != nil {
			met.BytesRecv.Add(uint64(len(payload) + 4))
		}
	}
	return m, err
}

// SetReadDeadline forwards to the underlying connection.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Close shuts the connection down; safe to call multiple times.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() { err = c.nc.Close() })
	return err
}

// Listener accepts framed connections.
type Listener struct {
	nl net.Listener
}

// Listen opens a TCP listener. Pass "127.0.0.1:0" for an ephemeral test
// port; Addr reports the bound address.
func Listen(addr string) (*Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{nl: nl}, nil
}

// Accept blocks for the next connection.
func (l *Listener) Accept() (*Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.nl.Addr().String() }

// Close stops accepting.
func (l *Listener) Close() error { return l.nl.Close() }

// Pipe returns an in-process connection pair for tests: messages written
// to one end are received on the other.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
