package transport

import "scrub/internal/event"

// CloneBatch deep-copies a batch. The Sink contract says a batch's Tuples
// slice and every tuple's Values array live in the sending agent's pooled
// chunk memory (//scrub:pooled) and are recycled the moment SendBatch
// returns, so anything that retains a batch must own its bytes. All the
// Values arrays are packed into one flat backing allocation, mirroring
// the chunk layout they came from: two allocations per clone, not
// two-per-tuple.
func CloneBatch(b TupleBatch) TupleBatch {
	out := b
	out.Tuples = make([]Tuple, len(b.Tuples))
	var vals []event.Value
	need := 0
	for i := range b.Tuples {
		need += len(b.Tuples[i].Values)
	}
	if need > 0 {
		vals = make([]event.Value, 0, need)
	}
	for i := range b.Tuples {
		out.Tuples[i] = b.Tuples[i]
		if n := len(b.Tuples[i].Values); n > 0 {
			vals = append(vals, b.Tuples[i].Values...)
			out.Tuples[i].Values = vals[len(vals)-n:]
		}
	}
	return out
}
