package transport

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
)

func sampleMessages() []Message {
	pred := expr.Binary{Op: expr.OpGt,
		L: expr.FieldRef{Type: "bid", Name: "bid_price"},
		R: expr.Lit{Val: event.Float(1.0)},
	}
	return []Message{
		SubmitQuery{Text: "select count(*) from bid"},
		QueryAccepted{QueryID: 7, Columns: []string{"user_id", "COUNT(*)"}, NumHosts: 100, SampledHosts: 10, EndNanos: 12345},
		QueryError{QueryID: 7, Msg: "boom"},
		QueryError{Msg: "rejected"},
		ResultWindow{
			QueryID: 7, WindowStart: 10, WindowEnd: 20,
			Columns: []string{"user_id", "n"},
			Rows: [][]event.Value{
				{event.Int(42), event.Int(3)},
				{event.Int(43), event.Int(1)},
			},
			Approx:    true,
			ErrBounds: []float64{math.NaN(), 2.5},
			Stats:     WindowStats{TuplesIn: 4, HostDrops: 1, LateDrops: 2, HostsReporting: 3},
		},
		ResultWindow{QueryID: 9, Columns: []string{"x"}}, // empty window
		ResultWindow{ // degraded window: one stream evicted
			QueryID: 11, WindowStart: 30, WindowEnd: 40,
			Columns:  []string{"n"},
			Rows:     [][]event.Value{{event.Int(5)}},
			Degraded: true,
			Streams: []StreamStat{
				{HostID: "h1", TypeIdx: 0, Matched: 10, Sampled: 10, Drops: 0},
				{HostID: "h2", TypeIdx: 0, Matched: 7, Sampled: 7, Drops: 2, LateDrops: 1, Evicted: true},
			},
			Stats: WindowStats{TuplesIn: 10, HostsReporting: 1},
		},
		QueryDone{QueryID: 7, Stats: QueryStats{Windows: 2, Rows: 3, TuplesIn: 4, HostDrops: 1, LateDrops: 0}},
		CancelQuery{QueryID: 7},
		RegisterHost{HostID: "bid-sj-1", Service: "BidServers", DC: "DC1"},
		HostQuery{
			QueryID: 7, EventType: "bid", TypeIdx: 1, Pred: pred,
			Columns: []string{"user_id", "bid_price"}, SampleEvents: 0.1,
			StartNanos: 100, EndNanos: 200, ReplayNanos: 30_000_000_000,
		},
		HostQuery{QueryID: 8, EventType: "click"}, // nil pred, no columns
		StopQuery{QueryID: 7},
		DataHello{HostID: "bid-sj-1"},
		TupleBatch{
			QueryID: 7, HostID: "bid-sj-1", TypeIdx: 0,
			Tuples: []Tuple{
				{RequestID: 1, TsNanos: 11, Values: []event.Value{event.Int(42), event.Float(1.5)}},
				{RequestID: 2, TsNanos: 12, Values: []event.Value{event.Int(43), event.Invalid}},
			},
			MatchedTotal: 100, SampledTotal: 10, QueueDrops: 3,
			ReplayEpoch: 1,
		},
		TupleBatch{QueryID: 8, HostID: "h"}, // empty batch (counters only)
		TupleBatch{QueryID: 9, HostID: "h", ReplayEpoch: 1, ReplayDone: true},
		ListQueries{},
		QueryList{Queries: []QuerySummary{
			{QueryID: 7, Text: "select count(*) from bid", Columns: []string{"count(*)"},
				Hosts: 3, EndNanos: 99, Stats: QueryStats{Windows: 1, Rows: 2, TuplesIn: 3}},
			{QueryID: 8},
		}},
		QueryList{},
		Ping{Nonce: 99},
		Pong{Nonce: 99},
		ShardStart{
			Seq: 1, Fence: 2, QueryID: 7, Text: "select count(*) from bid",
			StartNanos: 100, EndNanos: 200, ReplayNanos: 30,
			TotalHosts: 100, SampledHosts: 10, SampleEvents: 0.5,
			Confidence: 0.99, MaxRawRows: 1000, MaxJoinPending: 4096,
			BudgetCPUPct: 1.5, BudgetBytesPerSec: 1 << 20,
		},
		ShardAck{Seq: 1},
		ShardAck{Seq: 2, Err: "no such query"},
		ShardSubBatch{
			Seq: 3, QueryID: 7, HostID: "bid-sj-1", TypeIdx: 1,
			Tuples: []Tuple{
				{RequestID: 4, TsNanos: 44, Values: []event.Value{event.Str("x")}},
			},
		},
		ShardSubBatch{Seq: 4, QueryID: 7, HostID: "h"}, // empty split
		ShardBatchAck{Seq: 3, Known: true, HasTs: true, MaxTs: 44, LateDelta: 1, Late: 2, Overflow: 3},
		ShardBatchAck{Seq: 4},
		ShardCollectReq{Seq: 5, Fence: 2, QueryID: 7, Bound: 1000},
		ShardPartials{
			Seq: 5, Found: true,
			Partials: []WindowPartial{
				{Start: 0, End: 10, Data: []byte{1, 2, 3}},
				{Start: 10, End: 20, Data: nil},
			},
			Late: 2, Overflow: 3,
		},
		ShardPartials{Seq: 6},
		ShardPartials{Seq: 7, Stale: true},
		ShardStopReq{Seq: 7, Fence: 2, QueryID: 7},
		ShardStatsReq{Seq: 8, QueryID: 7},
		ShardStatsResp{Seq: 8, Found: true, TuplesIn: 99, ActiveQueries: 2},
		BatchManifest{
			Seq: 9, QueryID: 7, HostID: "bid-sj-1", TypeIdx: 1,
			RawTuples: 10, HasTs: true, MaxTs: 44, LateDelta: 1,
			ShardLate: []uint64{0, 1}, ShardOverflow: []uint64{2, 0},
			MatchedTotal: 100, SampledTotal: 10, QueueDrops: 3,
			EffRate: 0.25, BudgetShed: true, CPUNs: 5, ShipBytes: 6,
			ReplayEpoch: 1, ReplayDone: true,
		},
		BatchManifest{Seq: 10, QueryID: 8, HostID: "h"},
		ManifestAck{Seq: 9},
		ShardHello{ShardID: "shard-0", DataAddr: "127.0.0.1:7101"},
		ShardMap{Epoch: 3, Fence: 2, Addrs: []string{"127.0.0.1:7101", "127.0.0.1:7102"}},
		ShardMap{},
		ShardStatusReq{},
		ShardStatusList{
			Epoch: 3, Merges: 12, Rebalances: 2, EvictedStreams: 1,
			Shards: []ShardStatus{
				{Index: 0, Addr: "127.0.0.1:7101", ActiveQueries: 1, TuplesIn: 50},
				{Index: 1, Addr: "127.0.0.1:7102", Down: true, LagNanos: 5e9},
			},
		},
		ShardStatusList{},
		ShardFence{Seq: 11, Fence: 3},
		ShardFenceAck{Seq: 11, Fence: 3, Ok: true, Queries: []uint64{7, 9}},
		ShardFenceAck{Seq: 12, Fence: 4},
		RepAppend{
			Seq: 13, Term: 2, Index: 1,
			Entries: []RepEntry{
				{
					Kind: RepQueryStart,
					Start: ShardStart{
						QueryID: 7, Text: "select count(*) from bid",
						StartNanos: 100, EndNanos: 200, TotalHosts: 3, SampledHosts: 3,
					},
					PinEpoch: 2, ReplayDeadline: 500,
				},
				{Kind: RepQueryStop, QueryID: 9},
				{Kind: RepMembership, MapEpoch: 2, Addrs: []string{"127.0.0.1:7101", "127.0.0.1:7102"}},
			},
		},
		RepAppend{Seq: 14, Term: 2, Index: 4}, // heartbeat
		RepAck{Seq: 13, Term: 2, Index: 4, Ok: true},
		RepAck{Seq: 15, Term: 3, Index: 1},
	}
}

// msgEqual compares messages, treating NaN float slices as equal.
func msgEqual(a, b Message) bool {
	ra, ok1 := a.(ResultWindow)
	rb, ok2 := b.(ResultWindow)
	if ok1 && ok2 {
		if len(ra.ErrBounds) != len(rb.ErrBounds) {
			return false
		}
		for i := range ra.ErrBounds {
			x, y := ra.ErrBounds[i], rb.ErrBounds[i]
			if math.IsNaN(x) != math.IsNaN(y) {
				return false
			}
			if !math.IsNaN(x) && x != y {
				return false
			}
		}
		ra.ErrBounds, rb.ErrBounds = nil, nil
		return reflect.DeepEqual(ra, rb)
	}
	return reflect.DeepEqual(a, b)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%s): %v", Name(m), err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%s): %v", Name(m), err)
		}
		if !msgEqual(normalize(got), normalize(m)) {
			t.Errorf("round trip %s:\n  in:  %#v\n  out: %#v", Name(m), m, got)
		}
	}
}

// normalize maps empty slices to nil so DeepEqual compares cleanly.
func normalize(m Message) Message {
	switch t := m.(type) {
	case ResultWindow:
		if len(t.Rows) == 0 {
			t.Rows = nil
		}
		if len(t.Columns) == 0 {
			t.Columns = nil
		}
		if len(t.ErrBounds) == 0 {
			t.ErrBounds = nil
		}
		return t
	case TupleBatch:
		if len(t.Tuples) == 0 {
			t.Tuples = nil
		}
		return t
	case QueryAccepted:
		if len(t.Columns) == 0 {
			t.Columns = nil
		}
		return t
	case HostQuery:
		if len(t.Columns) == 0 {
			t.Columns = nil
		}
		return t
	case QueryList:
		if len(t.Queries) == 0 {
			t.Queries = nil
		}
		for i := range t.Queries {
			if len(t.Queries[i].Columns) == 0 {
				t.Queries[i].Columns = nil
			}
		}
		return t
	case ShardSubBatch:
		if len(t.Tuples) == 0 {
			t.Tuples = nil
		}
		return t
	case ShardPartials:
		for i := range t.Partials {
			if len(t.Partials[i].Data) == 0 {
				t.Partials[i].Data = nil
			}
		}
		return t
	case ShardMap:
		if len(t.Addrs) == 0 {
			t.Addrs = nil
		}
		return t
	case RepAppend:
		for i := range t.Entries {
			if len(t.Entries[i].Addrs) == 0 {
				t.Entries[i].Addrs = nil
			}
		}
		return t
	default:
		return m
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("empty payload should fail")
	}
	if _, err := Decode([]byte{200}); err == nil {
		t.Error("unknown tag should fail")
	}
	// Truncations of every sample message must error, never panic.
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(buf); i++ {
			if _, err := Decode(buf[:i]); err == nil {
				t.Errorf("%s truncated at %d should fail", Name(m), i)
			}
		}
		// Trailing garbage must be rejected too.
		if _, err := Decode(append(append([]byte{}, buf...), 0xFF)); err == nil {
			t.Errorf("%s with trailing byte should fail", Name(m))
		}
	}
}

func TestNames(t *testing.T) {
	for _, m := range sampleMessages() {
		if Name(m) == "" || Name(m)[0] == 'u' {
			t.Errorf("Name(%T) = %q", m, Name(m))
		}
	}
}

func TestPipeSendRecv(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	var wg sync.WaitGroup
	msgs := sampleMessages()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, m := range msgs {
			if err := a.Send(m); err != nil {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !msgEqual(normalize(got), normalize(want)) {
			t.Errorf("pipe mismatch: got %s want %s", Name(got), Name(want))
		}
	}
	wg.Wait()
}

func TestTCPSendRecv(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		// Echo everything back.
		for {
			m, err := c.Recv()
			if err != nil {
				done <- nil // client closed
				return
			}
			if err := c.Send(m); err != nil {
				done <- err
				return
			}
		}
	}()

	c, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sampleMessages() {
		if err := c.Send(m); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		if !msgEqual(normalize(got), normalize(m)) {
			t.Errorf("tcp echo mismatch for %s", Name(m))
		}
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentSend(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const per = 50
	const senders = 4
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(Ping{Nonce: uint64(s*1000 + i)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < per*senders; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		p, ok := m.(Ping)
		if !ok {
			t.Fatalf("got %s", Name(m))
		}
		if seen[p.Nonce] {
			t.Fatalf("duplicate nonce %d (frame interleaving?)", p.Nonce)
		}
		seen[p.Nonce] = true
	}
	wg.Wait()
}

func TestOversizeFrameRejected(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	big := TupleBatch{QueryID: 1, HostID: string(make([]byte, MaxFrame+1))}
	if err := a.Send(big); err == nil {
		t.Error("oversize frame should be rejected at send")
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, b := Pipe()
	b.Close()
	if err := a.Close(); err != nil {
		t.Errorf("first close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func BenchmarkTupleBatchEncode(b *testing.B) {
	tuples := make([]Tuple, 100)
	for i := range tuples {
		tuples[i] = Tuple{RequestID: uint64(i), TsNanos: int64(i),
			Values: []event.Value{event.Int(int64(i)), event.Str("san jose"), event.Float(1.5)}}
	}
	batch := TupleBatch{QueryID: 1, HostID: "h1", Tuples: tuples, MatchedTotal: 100, SampledTotal: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTupleBatchDecode(b *testing.B) {
	tuples := make([]Tuple, 100)
	for i := range tuples {
		tuples[i] = Tuple{RequestID: uint64(i), TsNanos: int64(i),
			Values: []event.Value{event.Int(int64(i)), event.Str("san jose"), event.Float(1.5)}}
	}
	buf, err := Encode(TupleBatch{QueryID: 1, HostID: "h1", Tuples: tuples})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAppendEncodeMatchesEncode(t *testing.T) {
	// AppendEncode into a reused buffer must produce byte-identical
	// payloads to Encode, message after message.
	var buf []byte
	for _, m := range sampleMessages() {
		want, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%s): %v", Name(m), err)
		}
		got, err := AppendEncode(buf[:0], m)
		if err != nil {
			t.Fatalf("AppendEncode(%s): %v", Name(m), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("AppendEncode(%s) differs from Encode", Name(m))
		}
		buf = got // reuse across iterations, like a connection does
	}
}

func TestAppendEncodePreservesPrefix(t *testing.T) {
	prefix := []byte("hdr:")
	out, err := AppendEncode(append([]byte(nil), prefix...), Ping{Nonce: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("existing bytes must be preserved")
	}
	m, err := Decode(out[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := m.(Ping); !ok || p.Nonce != 7 {
		t.Errorf("decoded %#v", m)
	}
}
