package transport

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestFuzzSeedsCoverAllTags pins the fuzz corpus to the wire protocol:
// every registered tag — the 15 base messages and the 19 coordination
// messages — must appear among the FuzzDecode seeds, so a message type
// added without a sampleMessages entry fails here before the fuzzer
// ever runs blind on it.
func TestFuzzSeedsCoverAllTags(t *testing.T) {
	seeded := make(map[byte]bool)
	for _, m := range sampleMessages() {
		seeded[m.msgTag()] = true
	}
	for tag := tagSubmitQuery; tag <= tagRepAck; tag++ {
		if !seeded[tag] {
			t.Errorf("no fuzz seed encodes %s (tag %d); add a sample to sampleMessages", Name(newMessageForTag(t, tag)), tag)
		}
	}
	if got, want := len(seeded), int(tagRepAck); got != want {
		t.Errorf("sampleMessages covers %d distinct tags, registry has %d", got, want)
	}
}

// newMessageForTag decodes a minimal payload for the tag purely to
// recover the type's Name for the error message; an undecodable tag
// reports as its number.
func newMessageForTag(t *testing.T, tag byte) Message {
	t.Helper()
	m, err := Decode(append([]byte{tag}, make([]byte, 64)...))
	if err != nil {
		return nil
	}
	return m
}

// FuzzDecode hammers the payload decoder with arbitrary bytes. The
// contract under fuzz: Decode must return a message or an error — never
// panic, never hang, never allocate proportionally to a lying length
// field — and anything it accepts must survive a re-encode/re-decode
// round trip (no "valid" message the encoder cannot represent).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		buf, err := Encode(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		// Truncations of valid payloads probe every short-read path.
		if len(buf) > 1 {
			f.Add(buf[:len(buf)/2])
			f.Add(buf[:len(buf)-1])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0})                                                             // tag 0 is unused
	f.Add([]byte{255, 1, 2, 3})                                                  // garbage tag
	f.Add([]byte{tagTupleBatch, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // implausible counts
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		buf, err := Encode(m)
		if err != nil {
			t.Fatalf("decoded %s does not re-encode: %v", Name(m), err)
		}
		m2, err := Decode(buf)
		if err != nil {
			t.Fatalf("re-encoded %s does not decode: %v", Name(m), err)
		}
		if reflect.TypeOf(m) != reflect.TypeOf(m2) {
			t.Fatalf("round trip changed type: %T -> %T", m, m2)
		}
	})
}

// byteConn adapts a byte buffer to net.Conn so Conn.Recv can be driven
// over arbitrary frame bytes without goroutines.
type byteConn struct {
	r *bytes.Reader
}

func (c byteConn) Read(p []byte) (int, error)         { return c.r.Read(p) }
func (c byteConn) Write(p []byte) (int, error)        { return len(p), nil }
func (c byteConn) Close() error                       { return nil }
func (c byteConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (c byteConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (c byteConn) SetDeadline(t time.Time) error      { return nil }
func (c byteConn) SetReadDeadline(t time.Time) error  { return nil }
func (c byteConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzRecvFrame feeds raw bytes — corrupt length prefixes included —
// through the framing layer. Recv must error on zero or oversized
// lengths and on truncated payloads, never panic.
func FuzzRecvFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var hdr [4]byte
		hdr[0] = byte(len(payload))
		hdr[1] = byte(len(payload) >> 8)
		hdr[2] = byte(len(payload) >> 16)
		hdr[3] = byte(len(payload) >> 24)
		return append(hdr[:], payload...)
	}
	valid, _ := Encode(Ping{Nonce: 1})
	f.Add(frame(valid))
	f.Add(frame(nil))                              // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}) // length > MaxFrame
	f.Add(frame(valid)[:3])                        // truncated header
	f.Add(append(frame(valid), frame(valid)...))   // two frames back to back
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(byteConn{r: bytes.NewReader(data)})
		for i := 0; i < 4; i++ { // drain a few frames, then EOF or error
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	})
}
