package transport

import "scrub/internal/event"

// Codec for the coordination messages (msg_coord.go). AppendEncode and
// Decode dispatch here from their default branches so the base-protocol
// hot path stays untouched.

func (w *writer) u64s(xs []uint64) {
	w.uvarint(uint64(len(xs)))
	for _, x := range xs {
		w.u64(x)
	}
}

func (r *reader) u64s() []uint64 {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("implausible u64 count")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.u64())
	}
	return out
}

func (w *writer) bytes(b []byte) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (r *reader) bytes() []byte {
	ln := r.uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.buf)-r.pos) < ln {
		r.fail("short bytes")
		return nil
	}
	out := make([]byte, ln)
	copy(out, r.buf[r.pos:r.pos+int(ln)])
	r.pos += int(ln)
	return out
}

func (w *writer) windowPartials(ps []WindowPartial) {
	w.uvarint(uint64(len(ps)))
	for _, p := range ps {
		w.i64(p.Start)
		w.i64(p.End)
		w.bytes(p.Data)
	}
}

func (r *reader) windowPartials() []WindowPartial {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("implausible partial count")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]WindowPartial, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, WindowPartial{Start: r.i64(), End: r.i64(), Data: r.bytes()})
	}
	return out
}

// shardStartBody encodes a ShardStart's fields; shared between the
// ShardStart arm and the replication log codec (RepEntry nests the wire
// registration verbatim, so both stay symmetric by construction).
func (w *writer) shardStartBody(t ShardStart) {
	w.u64(t.Seq)
	w.u64(t.Fence)
	w.u64(t.QueryID)
	w.str(t.Text)
	w.i64(t.StartNanos)
	w.i64(t.EndNanos)
	w.i64(t.ReplayNanos)
	w.u32(t.TotalHosts)
	w.u32(t.SampledHosts)
	w.f64(t.SampleEvents)
	w.f64(t.Confidence)
	w.u32(t.MaxRawRows)
	w.u32(t.MaxJoinPending)
	w.f64(t.BudgetCPUPct)
	w.f64(t.BudgetBytesPerSec)
}

func (r *reader) shardStartBody() ShardStart {
	return ShardStart{
		Seq: r.u64(), Fence: r.u64(), QueryID: r.u64(), Text: r.str(),
		StartNanos: r.i64(), EndNanos: r.i64(), ReplayNanos: r.i64(),
		TotalHosts: r.u32(), SampledHosts: r.u32(),
		SampleEvents: r.f64(), Confidence: r.f64(),
		MaxRawRows: r.u32(), MaxJoinPending: r.u32(),
		BudgetCPUPct: r.f64(), BudgetBytesPerSec: r.f64(),
	}
}

func (w *writer) repEntry(e RepEntry) {
	w.u8(e.Kind)
	w.shardStartBody(e.Start)
	w.u32(e.PinEpoch)
	w.i64(e.ReplayDeadline)
	w.u64(e.QueryID)
	w.u32(e.MapEpoch)
	w.strs(e.Addrs)
}

func (r *reader) repEntry() RepEntry {
	return RepEntry{
		Kind: r.u8(), Start: r.shardStartBody(),
		PinEpoch: r.u32(), ReplayDeadline: r.i64(),
		QueryID: r.u64(), MapEpoch: r.u32(), Addrs: r.strs(),
	}
}

func (w *writer) repEntries(es []RepEntry) {
	w.uvarint(uint64(len(es)))
	for _, e := range es {
		w.repEntry(e)
	}
}

func (r *reader) repEntries() []RepEntry {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("implausible entry count")
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]RepEntry, 0, n)
	for i := uint64(0); i < n && r.err == nil; i++ {
		out = append(out, r.repEntry())
	}
	return out
}

// appendEncodeCoord encodes the coordination messages; it reports false
// for messages it does not know (the caller errors).
func appendEncodeCoord(w *writer, m Message) bool {
	switch t := m.(type) {
	case ShardStart:
		w.shardStartBody(t)
	case ShardAck:
		w.u64(t.Seq)
		w.str(t.Err)
	case ShardSubBatch:
		w.u64(t.Seq)
		w.u64(t.QueryID)
		w.str(t.HostID)
		w.u8(t.TypeIdx)
		w.uvarint(uint64(len(t.Tuples)))
		for _, tp := range t.Tuples {
			w.u64(tp.RequestID)
			w.i64(tp.TsNanos)
			w.uvarint(uint64(len(tp.Values)))
			for _, v := range tp.Values {
				w.value(v)
			}
		}
	case ShardBatchAck:
		w.u64(t.Seq)
		w.bool(t.Known)
		w.bool(t.HasTs)
		w.i64(t.MaxTs)
		w.u64(t.LateDelta)
		w.u64(t.Late)
		w.u64(t.Overflow)
	case ShardCollectReq:
		w.u64(t.Seq)
		w.u64(t.Fence)
		w.u64(t.QueryID)
		w.i64(t.Bound)
	case ShardPartials:
		w.u64(t.Seq)
		w.bool(t.Stale)
		w.bool(t.Found)
		w.windowPartials(t.Partials)
		w.u64(t.Late)
		w.u64(t.Overflow)
	case ShardStopReq:
		w.u64(t.Seq)
		w.u64(t.Fence)
		w.u64(t.QueryID)
	case ShardStatsReq:
		w.u64(t.Seq)
		w.u64(t.QueryID)
	case ShardStatsResp:
		w.u64(t.Seq)
		w.bool(t.Found)
		w.u64(t.TuplesIn)
		w.u32(t.ActiveQueries)
	case BatchManifest:
		w.u64(t.Seq)
		w.u64(t.QueryID)
		w.str(t.HostID)
		w.u8(t.TypeIdx)
		w.u64(t.RawTuples)
		w.bool(t.HasTs)
		w.i64(t.MaxTs)
		w.u64(t.LateDelta)
		w.u64s(t.ShardLate)
		w.u64s(t.ShardOverflow)
		w.u64(t.MatchedTotal)
		w.u64(t.SampledTotal)
		w.u64(t.QueueDrops)
		w.f64(t.EffRate)
		w.bool(t.BudgetShed)
		w.u64(t.CPUNs)
		w.u64(t.ShipBytes)
		w.u32(t.ReplayEpoch)
		w.bool(t.ReplayDone)
	case ManifestAck:
		w.u64(t.Seq)
	case ShardHello:
		w.str(t.ShardID)
		w.str(t.DataAddr)
	case ShardMap:
		w.u32(t.Epoch)
		w.u64(t.Fence)
		w.strs(t.Addrs)
	case ShardStatusReq:
		// no payload
	case ShardStatusList:
		w.u32(t.Epoch)
		w.u64(t.Merges)
		w.u64(t.Rebalances)
		w.u32(t.EvictedStreams)
		w.uvarint(uint64(len(t.Shards)))
		for _, s := range t.Shards {
			w.u32(s.Index)
			w.str(s.Addr)
			w.bool(s.Down)
			w.i64(s.LagNanos)
			w.u32(s.ActiveQueries)
			w.u64(s.TuplesIn)
		}
	case ShardFence:
		w.u64(t.Seq)
		w.u64(t.Fence)
	case ShardFenceAck:
		w.u64(t.Seq)
		w.u64(t.Fence)
		w.bool(t.Ok)
		w.u64s(t.Queries)
	case RepAppend:
		w.u64(t.Seq)
		w.u64(t.Term)
		w.u64(t.Index)
		w.repEntries(t.Entries)
	case RepAck:
		w.u64(t.Seq)
		w.u64(t.Term)
		w.u64(t.Index)
		w.bool(t.Ok)
	default:
		return false
	}
	return true
}

// decodeCoord decodes the coordination messages by tag; it reports false
// for tags it does not know (the caller errors).
func decodeCoord(tag byte, r *reader) (Message, bool) {
	switch tag {
	case tagShardStart:
		return r.shardStartBody(), true
	case tagShardAck:
		return ShardAck{Seq: r.u64(), Err: r.str()}, true
	case tagShardSubBatch:
		sb := ShardSubBatch{
			Seq: r.u64(), QueryID: r.u64(), HostID: r.str(), TypeIdx: r.u8(),
		}
		n := r.uvarint()
		if n > uint64(len(r.buf)) {
			r.fail("implausible tuple count")
		}
		if r.err == nil && n > 0 {
			sb.Tuples = make([]Tuple, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				tp := Tuple{RequestID: r.u64(), TsNanos: r.i64()}
				nv := r.uvarint()
				if nv > uint64(len(r.buf)) {
					r.fail("implausible value count")
					break
				}
				if nv > 0 {
					tp.Values = make([]event.Value, 0, nv)
					for j := uint64(0); j < nv; j++ {
						tp.Values = append(tp.Values, r.value())
					}
				}
				sb.Tuples = append(sb.Tuples, tp)
			}
		}
		return sb, true
	case tagShardBatchAck:
		return ShardBatchAck{
			Seq: r.u64(), Known: r.boolv(), HasTs: r.boolv(), MaxTs: r.i64(),
			LateDelta: r.u64(), Late: r.u64(), Overflow: r.u64(),
		}, true
	case tagShardCollectReq:
		return ShardCollectReq{Seq: r.u64(), Fence: r.u64(), QueryID: r.u64(), Bound: r.i64()}, true
	case tagShardPartials:
		return ShardPartials{
			Seq: r.u64(), Stale: r.boolv(), Found: r.boolv(), Partials: r.windowPartials(),
			Late: r.u64(), Overflow: r.u64(),
		}, true
	case tagShardStopReq:
		return ShardStopReq{Seq: r.u64(), Fence: r.u64(), QueryID: r.u64()}, true
	case tagShardStatsReq:
		return ShardStatsReq{Seq: r.u64(), QueryID: r.u64()}, true
	case tagShardStatsResp:
		return ShardStatsResp{
			Seq: r.u64(), Found: r.boolv(),
			TuplesIn: r.u64(), ActiveQueries: r.u32(),
		}, true
	case tagBatchManifest:
		return BatchManifest{
			Seq: r.u64(), QueryID: r.u64(), HostID: r.str(), TypeIdx: r.u8(),
			RawTuples: r.u64(), HasTs: r.boolv(), MaxTs: r.i64(),
			LateDelta: r.u64(), ShardLate: r.u64s(), ShardOverflow: r.u64s(),
			MatchedTotal: r.u64(), SampledTotal: r.u64(), QueueDrops: r.u64(),
			EffRate: r.f64(), BudgetShed: r.boolv(),
			CPUNs: r.u64(), ShipBytes: r.u64(),
			ReplayEpoch: r.u32(), ReplayDone: r.boolv(),
		}, true
	case tagManifestAck:
		return ManifestAck{Seq: r.u64()}, true
	case tagShardHello:
		return ShardHello{ShardID: r.str(), DataAddr: r.str()}, true
	case tagShardMap:
		return ShardMap{Epoch: r.u32(), Fence: r.u64(), Addrs: r.strs()}, true
	case tagShardStatusReq:
		return ShardStatusReq{}, true
	case tagShardStatusList:
		sl := ShardStatusList{
			Epoch: r.u32(), Merges: r.u64(), Rebalances: r.u64(),
			EvictedStreams: r.u32(),
		}
		n := r.uvarint()
		if n > uint64(len(r.buf)) {
			r.fail("implausible shard count")
		}
		if r.err == nil && n > 0 {
			sl.Shards = make([]ShardStatus, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				sl.Shards = append(sl.Shards, ShardStatus{
					Index: r.u32(), Addr: r.str(), Down: r.boolv(),
					LagNanos: r.i64(), ActiveQueries: r.u32(), TuplesIn: r.u64(),
				})
			}
		}
		return sl, true
	case tagShardFence:
		return ShardFence{Seq: r.u64(), Fence: r.u64()}, true
	case tagShardFenceAck:
		return ShardFenceAck{
			Seq: r.u64(), Fence: r.u64(), Ok: r.boolv(), Queries: r.u64s(),
		}, true
	case tagRepAppend:
		return RepAppend{
			Seq: r.u64(), Term: r.u64(), Index: r.u64(), Entries: r.repEntries(),
		}, true
	case tagRepAck:
		return RepAck{Seq: r.u64(), Term: r.u64(), Index: r.u64(), Ok: r.boolv()}, true
	default:
		return nil, false
	}
}
