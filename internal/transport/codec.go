package transport

import (
	"encoding/binary"
	"fmt"
	"math"

	"scrub/internal/event"
	"scrub/internal/expr"
)

// writer accumulates a payload.
type writer struct {
	buf []byte
	err error
}

func (w *writer) u8(x uint8)   { w.buf = append(w.buf, x) }
func (w *writer) u32(x uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, x) }
func (w *writer) u64(x uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, x) }
func (w *writer) i64(x int64)  { w.u64(uint64(x)) }
func (w *writer) f64(x float64) {
	w.u64(math.Float64bits(x))
}
func (w *writer) uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }
func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) strs(ss []string) {
	w.uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}
func (w *writer) value(v event.Value) { w.buf = event.AppendValue(w.buf, v) }
func (w *writer) node(n expr.Node) {
	if w.err != nil {
		return
	}
	if n == nil {
		w.u8(0)
		return
	}
	w.u8(1)
	b, err := expr.AppendNode(w.buf, n)
	if err != nil {
		w.err = err
		return
	}
	w.buf = b
}
func (w *writer) bool(b bool) {
	if b {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) streamStat(s StreamStat) {
	w.str(s.HostID)
	w.u8(s.TypeIdx)
	w.u64(s.Matched)
	w.u64(s.Sampled)
	w.u64(s.Drops)
	w.u64(s.LateDrops)
	w.bool(s.Evicted)
	w.f64(s.EffRate)
	w.bool(s.BudgetShed)
	w.u64(s.CPUNs)
	w.u64(s.Bytes)
}

func (w *writer) queryStats(s QueryStats) {
	w.u64(s.Windows)
	w.u64(s.Rows)
	w.u64(s.TuplesIn)
	w.u64(s.HostDrops)
	w.u64(s.LateDrops)
	w.u64(s.DegradedWindows)
	w.u64(s.ShedWindows)
}

// reader consumes a payload, accumulating the first error.
type reader struct {
	buf []byte
	pos int
	err error
}

func (r *reader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("transport: decode: %s", msg)
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail("short u8")
		return 0
	}
	x := r.buf[r.pos]
	r.pos++
	return x
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.pos+4 > len(r.buf) {
		r.fail("short u32")
		return 0
	}
	x := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return x
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.pos+8 > len(r.buf) {
		r.fail("short u64")
		return 0
	}
	x := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return x
}

func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) boolv() bool  { return r.u8() == 1 }

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.pos += n
	return x
}

func (r *reader) str() string {
	ln := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.buf)-r.pos) < ln {
		r.fail("short string")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+int(ln)])
	r.pos += int(ln)
	return s
}

func (r *reader) strs() []string {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.buf)) {
		r.fail("implausible string count")
		return nil
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.str())
	}
	return out
}

func (r *reader) value() event.Value {
	if r.err != nil {
		return event.Invalid
	}
	v, n, err := event.DecodeValue(r.buf[r.pos:])
	if err != nil {
		r.err = err
		return event.Invalid
	}
	r.pos += n
	return v
}

func (r *reader) node() expr.Node {
	if r.err != nil {
		return nil
	}
	present := r.u8()
	if r.err != nil || present == 0 {
		return nil
	}
	n, used, err := expr.DecodeNode(r.buf[r.pos:])
	if err != nil {
		r.err = err
		return nil
	}
	r.pos += used
	return n
}

func (r *reader) streamStat() StreamStat {
	return StreamStat{
		HostID: r.str(), TypeIdx: r.u8(),
		Matched: r.u64(), Sampled: r.u64(), Drops: r.u64(),
		LateDrops: r.u64(), Evicted: r.boolv(),
		EffRate: r.f64(), BudgetShed: r.boolv(),
		CPUNs: r.u64(), Bytes: r.u64(),
	}
}

func (r *reader) queryStats() QueryStats {
	return QueryStats{
		Windows: r.u64(), Rows: r.u64(), TuplesIn: r.u64(),
		HostDrops: r.u64(), LateDrops: r.u64(), DegradedWindows: r.u64(),
		ShedWindows: r.u64(),
	}
}

func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("transport: decode: %d trailing bytes", len(r.buf)-r.pos)
	}
	return nil
}

// Encode serializes a message payload (without framing) prefixed by its
// type tag.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, 128), m)
}

// AppendEncode serializes like Encode but appends to dst, so steady-state
// senders (connections, benchmark sinks) can reuse one buffer across
// messages instead of allocating per encode. dst may be nil; the appended
// buffer is returned.
//
//scrub:hotpath
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	//scrub:allowalloc(non-escaping scratch; the compiler keeps w on the stack)
	w := &writer{buf: dst}
	w.u8(m.msgTag())
	switch t := m.(type) {
	case SubmitQuery:
		w.str(t.Text)
	case QueryAccepted:
		w.u64(t.QueryID)
		w.strs(t.Columns)
		w.u32(t.NumHosts)
		w.u32(t.SampledHosts)
		w.i64(t.EndNanos)
	case QueryError:
		w.u64(t.QueryID)
		w.str(t.Msg)
	case ResultWindow:
		w.u64(t.QueryID)
		w.i64(t.WindowStart)
		w.i64(t.WindowEnd)
		w.strs(t.Columns)
		w.uvarint(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			w.uvarint(uint64(len(row)))
			for _, v := range row {
				w.value(v)
			}
		}
		w.bool(t.Approx)
		w.uvarint(uint64(len(t.ErrBounds)))
		for _, e := range t.ErrBounds {
			w.f64(e)
		}
		w.u64(t.Stats.TuplesIn)
		w.u64(t.Stats.HostDrops)
		w.u64(t.Stats.LateDrops)
		w.u32(t.Stats.HostsReporting)
		w.bool(t.Degraded)
		w.bool(t.BudgetShed)
		w.uvarint(uint64(len(t.Streams)))
		for _, s := range t.Streams {
			w.streamStat(s)
		}
	case QueryDone:
		w.u64(t.QueryID)
		w.queryStats(t.Stats)
	case CancelQuery:
		w.u64(t.QueryID)
	case RegisterHost:
		w.str(t.HostID)
		w.str(t.Service)
		w.str(t.DC)
	case HostQuery:
		w.u64(t.QueryID)
		w.str(t.EventType)
		w.u8(t.TypeIdx)
		w.node(t.Pred)
		w.strs(t.Columns)
		w.f64(t.SampleEvents)
		w.i64(t.StartNanos)
		w.i64(t.EndNanos)
		w.f64(t.BudgetCPUPct)
		w.f64(t.BudgetBytesPerSec)
		w.i64(t.ReplayNanos)
		w.u32(t.ShardEpoch)
	case StopQuery:
		w.u64(t.QueryID)
	case DataHello:
		w.str(t.HostID)
	case TupleBatch:
		w.u64(t.QueryID)
		w.str(t.HostID)
		w.u8(t.TypeIdx)
		w.uvarint(uint64(len(t.Tuples)))
		for _, tp := range t.Tuples {
			w.u64(tp.RequestID)
			w.i64(tp.TsNanos)
			w.uvarint(uint64(len(tp.Values)))
			for _, v := range tp.Values {
				w.value(v)
			}
		}
		w.u64(t.MatchedTotal)
		w.u64(t.SampledTotal)
		w.u64(t.QueueDrops)
		w.f64(t.EffRate)
		w.bool(t.BudgetShed)
		w.u64(t.CPUNs)
		w.u64(t.ShipBytes)
		w.u32(t.ReplayEpoch)
		w.bool(t.ReplayDone)
	case ListQueries:
		// no payload
	case QueryList:
		w.uvarint(uint64(len(t.Queries)))
		for _, q := range t.Queries {
			w.u64(q.QueryID)
			w.str(q.Text)
			w.strs(q.Columns)
			w.u32(q.Hosts)
			w.i64(q.EndNanos)
			w.queryStats(q.Stats)
		}
	case Ping:
		w.u64(t.Nonce)
	case Pong:
		w.u64(t.Nonce)
	default:
		if !appendEncodeCoord(w, m) {
			//scrub:allowalloc(cold error path for unknown message types)
			return nil, fmt.Errorf("transport: encode: unknown message %T", m)
		}
	}
	if w.err != nil {
		return nil, w.err
	}
	return w.buf, nil
}

// Decode parses a tagged payload produced by Encode.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("transport: decode: empty payload")
	}
	r := &reader{buf: b, pos: 1}
	var m Message
	switch b[0] {
	case tagSubmitQuery:
		m = SubmitQuery{Text: r.str()}
	case tagQueryAccepted:
		m = QueryAccepted{
			QueryID: r.u64(), Columns: r.strs(),
			NumHosts: r.u32(), SampledHosts: r.u32(), EndNanos: r.i64(),
		}
	case tagQueryError:
		m = QueryError{QueryID: r.u64(), Msg: r.str()}
	case tagResultWindow:
		rw := ResultWindow{
			QueryID: r.u64(), WindowStart: r.i64(), WindowEnd: r.i64(),
			Columns: r.strs(),
		}
		nRows := r.uvarint()
		if nRows > uint64(len(b)) {
			r.fail("implausible row count")
		}
		if r.err == nil {
			rw.Rows = make([][]event.Value, 0, nRows)
			for i := uint64(0); i < nRows && r.err == nil; i++ {
				nv := r.uvarint()
				if nv > uint64(len(b)) {
					r.fail("implausible value count")
					break
				}
				row := make([]event.Value, 0, nv)
				for j := uint64(0); j < nv; j++ {
					row = append(row, r.value())
				}
				rw.Rows = append(rw.Rows, row)
			}
		}
		rw.Approx = r.boolv()
		nb := r.uvarint()
		if nb > uint64(len(b)) {
			r.fail("implausible bound count")
		}
		if r.err == nil {
			rw.ErrBounds = make([]float64, 0, nb)
			for i := uint64(0); i < nb; i++ {
				rw.ErrBounds = append(rw.ErrBounds, r.f64())
			}
		}
		rw.Stats = WindowStats{
			TuplesIn: r.u64(), HostDrops: r.u64(), LateDrops: r.u64(),
			HostsReporting: r.u32(),
		}
		rw.Degraded = r.boolv()
		rw.BudgetShed = r.boolv()
		ns := r.uvarint()
		if ns > uint64(len(b)) {
			r.fail("implausible stream count")
		}
		if r.err == nil && ns > 0 {
			rw.Streams = make([]StreamStat, 0, ns)
			for i := uint64(0); i < ns && r.err == nil; i++ {
				rw.Streams = append(rw.Streams, r.streamStat())
			}
		}
		m = rw
	case tagQueryDone:
		m = QueryDone{QueryID: r.u64(), Stats: r.queryStats()}
	case tagCancelQuery:
		m = CancelQuery{QueryID: r.u64()}
	case tagRegisterHost:
		m = RegisterHost{HostID: r.str(), Service: r.str(), DC: r.str()}
	case tagHostQuery:
		m = HostQuery{
			QueryID: r.u64(), EventType: r.str(), TypeIdx: r.u8(),
			Pred: r.node(), Columns: r.strs(), SampleEvents: r.f64(),
			StartNanos: r.i64(), EndNanos: r.i64(),
			BudgetCPUPct: r.f64(), BudgetBytesPerSec: r.f64(),
			ReplayNanos: r.i64(), ShardEpoch: r.u32(),
		}
	case tagStopQuery:
		m = StopQuery{QueryID: r.u64()}
	case tagDataHello:
		m = DataHello{HostID: r.str()}
	case tagTupleBatch:
		tb := TupleBatch{QueryID: r.u64(), HostID: r.str(), TypeIdx: r.u8()}
		n := r.uvarint()
		if n > uint64(len(b)) {
			r.fail("implausible tuple count")
		}
		if r.err == nil {
			tb.Tuples = make([]Tuple, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				tp := Tuple{RequestID: r.u64(), TsNanos: r.i64()}
				nv := r.uvarint()
				if nv > uint64(len(b)) {
					r.fail("implausible value count")
					break
				}
				tp.Values = make([]event.Value, 0, nv)
				for j := uint64(0); j < nv; j++ {
					tp.Values = append(tp.Values, r.value())
				}
				tb.Tuples = append(tb.Tuples, tp)
			}
		}
		tb.MatchedTotal = r.u64()
		tb.SampledTotal = r.u64()
		tb.QueueDrops = r.u64()
		tb.EffRate = r.f64()
		tb.BudgetShed = r.boolv()
		tb.CPUNs = r.u64()
		tb.ShipBytes = r.u64()
		tb.ReplayEpoch = r.u32()
		tb.ReplayDone = r.boolv()
		m = tb
	case tagListQueries:
		m = ListQueries{}
	case tagQueryList:
		ql := QueryList{}
		n := r.uvarint()
		if n > uint64(len(b)) {
			r.fail("implausible query count")
		}
		if r.err == nil {
			ql.Queries = make([]QuerySummary, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				ql.Queries = append(ql.Queries, QuerySummary{
					QueryID: r.u64(), Text: r.str(), Columns: r.strs(),
					Hosts: r.u32(), EndNanos: r.i64(),
					Stats: r.queryStats(),
				})
			}
		}
		m = ql
	case tagPing:
		m = Ping{Nonce: r.u64()}
	case tagPong:
		m = Pong{Nonce: r.u64()}
	default:
		cm, ok := decodeCoord(b[0], r)
		if !ok {
			return nil, fmt.Errorf("transport: decode: unknown tag %d", b[0])
		}
		m = cm
	}
	if err := r.finish(); err != nil {
		return nil, err
	}
	return m, nil
}
