package transport

// Coordination protocol for a distributed ScrubCentral (internal/coord):
// a coordinator process owns query registration, shard membership and the
// merge layer; shard processes run driven central engines; hosts (or the
// coordinator's own data plane, for legacy hosts) route each batch's
// tuples to shards by hash(request-id) mod shards and report the batch's
// counters to the coordinator in a manifest.
//
// Three sub-conversations:
//
//   - coordinator → shard (control): ShardStart / ShardCollectReq /
//     ShardStopReq / ShardStatsReq with their replies, plus Ping liveness
//   - router → shard (data): ShardSubBatch → ShardBatchAck (synchronous,
//     so shard application happens-before the manifest that reports it)
//   - router → coordinator (data): BatchManifest → ManifestAck
//   - shard → coordinator (membership): ShardHello; coordinator → host
//     agents: ShardMap pushes with epoch-numbered membership
//
// A fourth sub-conversation serves coordinator high availability:
//
//   - leader → standby (replication): RepAppend → RepAck carries the
//     control-plane log (query registrations, membership transitions);
//     an empty RepAppend doubles as the leader heartbeat
//   - coordinator → shard (fencing): ShardFence → ShardFenceAck installs
//     a fencing epoch; ShardStart/ShardCollectReq/ShardStopReq carry the
//     caller's epoch so a deposed leader's RPCs are rejected
//
// New tags append after the base protocol's so old and new binaries never
// reinterpret each other's messages.
const (
	tagShardStart byte = iota + tagQueryList + 1
	tagShardAck
	tagShardSubBatch
	tagShardBatchAck
	tagShardCollectReq
	tagShardPartials
	tagShardStopReq
	tagShardStatsReq
	tagShardStatsResp
	tagBatchManifest
	tagManifestAck
	tagShardHello
	tagShardMap
	tagShardStatusReq
	tagShardStatusList
	tagShardFence
	tagShardFenceAck
	tagRepAppend
	tagRepAck
)

// ShardStart installs a query on a shard process in driven mode. The
// shard re-analyzes Text against its own catalog and applies the resolved
// deployment facts, so plan distribution never serializes compiled
// expression trees.
type ShardStart struct {
	Seq uint64
	// Fence is the sending coordinator's fencing epoch; a shard rejects
	// starts from an epoch below the highest it has seen. 0 (standalone
	// deployments) is never below anything.
	Fence       uint64
	QueryID     uint64
	Text        string
	StartNanos  int64
	EndNanos    int64
	ReplayNanos int64 // REPLAY span; extends the span filter back
	// Estimator facts resolved at submission (central.Plan fields).
	TotalHosts   uint32
	SampledHosts uint32
	SampleEvents float64 // post-override event-sampling rate; <= 0 keeps the parsed rate
	Confidence   float64 // 0 keeps the default
	// State bounds; 0 keeps the defaults.
	MaxRawRows     uint32
	MaxJoinPending uint32
	// Host-impact budget, forwarded for plan parity.
	BudgetCPUPct      float64
	BudgetBytesPerSec float64
}

// ShardAck answers ShardStart (and ShardStopReq teardown races): an empty
// Err means success.
type ShardAck struct {
	Seq uint64
	Err string
}

// ShardSubBatch carries the slice of one host batch whose request ids
// hash to this shard. Counters stay out: they belong to the manifest the
// router sends the coordinator.
type ShardSubBatch struct {
	Seq     uint64
	QueryID uint64
	HostID  string
	TypeIdx uint8
	// Tuples may alias the sending router's caller-owned batch memory;
	// the send serializes them before returning (see Sink contract).
	//scrub:pooled
	Tuples []Tuple
}

// ShardBatchAck answers ShardSubBatch with what the driven engine
// observed while absorbing it. The router folds per-shard acks (OR HasTs,
// max MaxTs, sum LateDelta) to recover exactly what an in-process
// ShardedEngine would have seen around its synchronous fan-out.
type ShardBatchAck struct {
	Seq       uint64
	Known     bool // false: the shard does not know the query (teardown race)
	HasTs     bool
	MaxTs     int64
	LateDelta uint64 // window-late drops this sub-batch caused
	Late      uint64 // cumulative window-late drops on this shard
	Overflow  uint64 // cumulative overflow drops on this shard
}

// ShardCollectReq asks a shard to close every window of a query ending at
// or before Bound and return the serialized partials.
type ShardCollectReq struct {
	Seq     uint64
	Fence   uint64 // sender's fencing epoch (see ShardStart.Fence)
	QueryID uint64
	Bound   int64
}

// WindowPartial is one closed window's serialized accumulated state
// (central.EncodedPartial on the wire).
type WindowPartial struct {
	Start int64
	End   int64
	Data  []byte
}

// ShardPartials answers ShardCollectReq and ShardStopReq.
type ShardPartials struct {
	Seq uint64
	// Stale reports the request carried a fencing epoch below the shard's:
	// the caller was deposed and got no state (Found false, no partials).
	Stale    bool
	Found    bool
	Partials []WindowPartial
	Late     uint64 // cumulative window-late drops (stop: late+overflow total)
	Overflow uint64 // cumulative overflow drops (stop: 0)
}

// ShardStopReq drains and removes a query from a shard.
type ShardStopReq struct {
	Seq     uint64
	Fence   uint64 // sender's fencing epoch (see ShardStart.Fence)
	QueryID uint64
}

// ShardStatsReq polls a shard: QueryID > 0 asks for that query's absorbed
// tuple count; QueryID == 0 asks for node-level status.
type ShardStatsReq struct {
	Seq     uint64
	QueryID uint64
}

// ShardStatsResp answers ShardStatsReq.
type ShardStatsResp struct {
	Seq           uint64
	Found         bool
	TuplesIn      uint64
	ActiveQueries uint32
}

// BatchManifest reports one whole host batch's counters to the
// coordinator after its tuples were routed to shards. The coordinator
// folds it into stream liveness and watermark state exactly like
// ShardedEngine.HandleBatch folds a batch — minus the fan-out, which the
// router already performed.
type BatchManifest struct {
	Seq       uint64
	QueryID   uint64
	HostID    string
	TypeIdx   uint8
	RawTuples uint64 // tuple count before the span filter (ingest accounting)
	HasTs     bool   // any in-span tuple (folded from the shard acks)
	MaxTs     int64  // max in-span event time
	LateDelta uint64 // window-late drops this batch caused, attributed to this stream
	// Per-shard cumulative drop counters as of this batch, indexed by the
	// query's shard order. The coordinator caches them so emitted windows
	// report the same totals ShardedEngine reads via dropsOf at emit.
	ShardLate     []uint64
	ShardOverflow []uint64
	// The host batch's own cumulative counters (TupleBatch fields).
	MatchedTotal uint64
	SampledTotal uint64
	QueueDrops   uint64 // host queue drops plus router send failures
	EffRate      float64
	BudgetShed   bool
	CPUNs        uint64
	ShipBytes    uint64
	ReplayEpoch  uint32
	ReplayDone   bool
}

// ManifestAck answers BatchManifest; the synchronous round-trip keeps
// manifest processing ordered after the shard applications it reports.
type ManifestAck struct {
	Seq uint64
}

// ShardHello announces a shard process to the coordinator's membership
// plane: the coordinator dials DataAddr back for control and data RPC.
type ShardHello struct {
	ShardID  string
	DataAddr string
}

// ShardMap pushes epoch-numbered shard membership to host agents. A
// query's routing is pinned to the epoch current at its start (carried on
// HostQuery), so membership changes never split a running query's
// request-id space across disagreeing hosts.
type ShardMap struct {
	Epoch uint32
	// Fence is the fencing epoch of the coordinator that pushed the map;
	// routers ignore maps from an epoch below the highest they have seen,
	// so a deposed leader cannot redirect routing.
	Fence uint64
	Addrs []string // shard data addresses, index = shard position in rid % n
}

// ShardStatusReq asks the query server for its shard fabric status; a
// single-process deployment answers with an empty list.
type ShardStatusReq struct{}

// ShardStatus is one shard's row in the operational view.
type ShardStatus struct {
	Index         uint32
	Addr          string
	Down          bool
	LagNanos      int64 // time since the shard's last successful RPC
	ActiveQueries uint32
	TuplesIn      uint64
}

// ShardStatusList answers ShardStatusReq.
type ShardStatusList struct {
	Epoch          uint32
	Merges         uint64 // partial-window merges performed
	Rebalances     uint64 // membership epoch bumps
	EvictedStreams uint32 // evicted streams across active queries
	Shards         []ShardStatus
}

// ShardFence installs a coordinator's fencing epoch on a shard at
// takeover. The shard latches the highest epoch it has seen and from then
// on rejects collect/stop/start RPCs from any lower epoch, so a deposed
// leader can never drain state or emit a conflicting window.
type ShardFence struct {
	Seq   uint64
	Fence uint64
}

// ShardFenceAck answers ShardFence. Queries lists the shard's active
// query ids so the new leader can reconcile: re-install what it knows
// (idempotent) and stop orphans a dead leader installed but never
// committed to the replication log.
type ShardFenceAck struct {
	Seq     uint64
	Fence   uint64 // the shard's fencing epoch after the call
	Ok      bool   // false: the caller's epoch was below the shard's
	Queries []uint64
}

// RepEntry is one replicated coordinator state transition. Only the
// control plane is logged — query registrations and membership — never
// the manifest/partial flow: window state lives on shards and any merger
// can re-collect it.
//
// Kind selects which fields are meaningful.
type RepEntry struct {
	Kind uint8 // 1 = query start, 2 = query stop, 3 = membership
	// Kind 1: the query's wire-form registration (Seq/Fence unused) plus
	// the shard-map epoch it pinned and its replay-hold deadline.
	Start          ShardStart
	PinEpoch       uint32
	ReplayDeadline int64
	// Kind 2: the stopped query.
	QueryID uint64
	// Kind 3: the full membership after the transition (a snapshot, not a
	// delta, so applying the latest entry alone is sufficient).
	MapEpoch uint32
	Addrs    []string
}

// RepEntry kinds.
const (
	RepQueryStart uint8 = 1
	RepQueryStop  uint8 = 2
	RepMembership uint8 = 3
)

// RepAppend replicates log entries from the leader to a standby. Index is
// the log position of the first entry; an entry-free append is the leader
// heartbeat. Term is the leader's fencing epoch: a standby ignores
// appends from a term below the highest it has acknowledged.
type RepAppend struct {
	Seq     uint64
	Term    uint64
	Index   uint64
	Entries []RepEntry
}

// RepAck answers RepAppend. Ok false with the receiver's Term above the
// sender's means the sender was deposed; Ok false with Index below the
// sender's asks for retransmission from Index (the receiver is behind).
type RepAck struct {
	Seq   uint64
	Term  uint64 // receiver's highest term
	Index uint64 // receiver's applied log length
	Ok    bool
}

func (ShardStart) msgTag() byte      { return tagShardStart }
func (ShardAck) msgTag() byte        { return tagShardAck }
func (ShardSubBatch) msgTag() byte   { return tagShardSubBatch }
func (ShardBatchAck) msgTag() byte   { return tagShardBatchAck }
func (ShardCollectReq) msgTag() byte { return tagShardCollectReq }
func (ShardPartials) msgTag() byte   { return tagShardPartials }
func (ShardStopReq) msgTag() byte    { return tagShardStopReq }
func (ShardStatsReq) msgTag() byte   { return tagShardStatsReq }
func (ShardStatsResp) msgTag() byte  { return tagShardStatsResp }
func (BatchManifest) msgTag() byte   { return tagBatchManifest }
func (ManifestAck) msgTag() byte     { return tagManifestAck }
func (ShardHello) msgTag() byte      { return tagShardHello }
func (ShardMap) msgTag() byte        { return tagShardMap }
func (ShardStatusReq) msgTag() byte  { return tagShardStatusReq }
func (ShardStatusList) msgTag() byte { return tagShardStatusList }
func (ShardFence) msgTag() byte      { return tagShardFence }
func (ShardFenceAck) msgTag() byte   { return tagShardFenceAck }
func (RepAppend) msgTag() byte       { return tagRepAppend }
func (RepAck) msgTag() byte          { return tagRepAck }

// nameCoord resolves the coordination messages for Name.
func nameCoord(m Message) (string, bool) {
	switch m.(type) {
	case ShardStart:
		return "ShardStart", true
	case ShardAck:
		return "ShardAck", true
	case ShardSubBatch:
		return "ShardSubBatch", true
	case ShardBatchAck:
		return "ShardBatchAck", true
	case ShardCollectReq:
		return "ShardCollectReq", true
	case ShardPartials:
		return "ShardPartials", true
	case ShardStopReq:
		return "ShardStopReq", true
	case ShardStatsReq:
		return "ShardStatsReq", true
	case ShardStatsResp:
		return "ShardStatsResp", true
	case BatchManifest:
		return "BatchManifest", true
	case ManifestAck:
		return "ManifestAck", true
	case ShardHello:
		return "ShardHello", true
	case ShardMap:
		return "ShardMap", true
	case ShardStatusReq:
		return "ShardStatusReq", true
	case ShardStatusList:
		return "ShardStatusList", true
	case ShardFence:
		return "ShardFence", true
	case ShardFenceAck:
		return "ShardFenceAck", true
	case RepAppend:
		return "RepAppend", true
	case RepAck:
		return "RepAck", true
	default:
		return "", false
	}
}
