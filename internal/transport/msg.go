// Package transport defines Scrub's wire protocol: the messages exchanged
// between troubleshooter clients, the query server, host agents, and
// ScrubCentral, a compact binary codec for them, and length-prefixed
// framing over net.Conn.
//
// Three conversations use this protocol:
//
//   - client ↔ query server: SubmitQuery / QueryAccepted / ResultWindow /
//     QueryDone / QueryError / CancelQuery
//   - host agent ↔ query server (control): RegisterHost, then the server
//     pushes HostQuery / StopQuery
//   - host agent → ScrubCentral (data): DataHello, then TupleBatch stream
//
// The query server and ScrubCentral share a process (the paper's dedicated
// central facility), so no wire protocol exists between them.
package transport

import (
	"fmt"

	"scrub/internal/event"
	"scrub/internal/expr"
)

// Message type tags.
const (
	tagSubmitQuery byte = iota + 1
	tagQueryAccepted
	tagQueryError
	tagResultWindow
	tagQueryDone
	tagCancelQuery
	tagRegisterHost
	tagHostQuery
	tagStopQuery
	tagDataHello
	tagTupleBatch
	tagPing
	tagPong
	tagListQueries
	tagQueryList
)

// Message is any protocol message.
type Message interface{ msgTag() byte }

// SubmitQuery carries query text from a client to the query server.
type SubmitQuery struct {
	Text string
}

// QueryAccepted acknowledges a submitted query.
type QueryAccepted struct {
	QueryID      uint64
	Columns      []string // result column labels
	NumHosts     uint32   // hosts matching the target spec
	SampledHosts uint32   // hosts actually activated (after host sampling)
	EndNanos     int64    // absolute end of the query span
}

// QueryError reports a rejected query or a mid-flight failure.
type QueryError struct {
	QueryID uint64 // 0 when the query was rejected before assignment
	Msg     string
}

// WindowStats summarizes one emitted window's accounting, including the
// accuracy losses the paper accepts by design (queue drops, late drops).
type WindowStats struct {
	TuplesIn       uint64 // tuples folded into this window
	HostDrops      uint64 // host-side queue drops observed so far (cumulative)
	LateDrops      uint64 // tuples rejected as late (cumulative)
	HostsReporting uint32 // distinct hosts that contributed
}

// StreamStat reports one (host, event-type) tuple stream's last-known
// cumulative accounting as of a window's emission, plus its liveness
// state. A troubleshooter reads these to see exactly how much data a
// result is missing and from whom.
type StreamStat struct {
	HostID    string
	TypeIdx   uint8
	Matched   uint64 // events matching selection (pre event-sampling)
	Sampled   uint64 // events shipped (post sampling, pre queue drops)
	Drops     uint64 // host-side queue + spill drops
	LateDrops uint64 // this stream's tuples that missed their windows
	Evicted   bool   // liveness lease expired; excluded from the watermark
	// Governor accounting (PR 3): the host's last-reported effective
	// event-sampling rate (0 = never reported; the plan rate applies),
	// whether the budget governor shed the query on this host, and the
	// cumulative measured cost there.
	EffRate    float64
	BudgetShed bool
	CPUNs      uint64 // cumulative hot-path CPU nanoseconds (sampled ×64)
	Bytes      uint64 // cumulative encoded batch bytes shipped
}

// ResultWindow streams one closed window's result rows to the client.
type ResultWindow struct {
	QueryID     uint64
	WindowStart int64
	WindowEnd   int64
	Columns     []string
	Rows        [][]event.Value
	// Approx is set when sampling scaled the results; ErrBounds then
	// holds the ± bound per column (NaN for non-scalable columns).
	Approx    bool
	ErrBounds []float64
	Stats     WindowStats
	// Degraded marks a window emitted while at least one reporting
	// stream's liveness lease had expired: results are complete with
	// respect to the live hosts, but the evicted hosts' data is missing.
	// Streams lists every reporting stream (sorted by host, then type)
	// with its last-known counters; the evicted ones are flagged.
	Degraded bool
	// BudgetShed marks a window emitted while at least one reporting
	// stream had been shed by the host-impact governor: the shed hosts
	// stopped contributing events when their budget floor was breached.
	BudgetShed bool
	Streams    []StreamStat
}

// QueryStats summarizes a finished query.
type QueryStats struct {
	Windows   uint64
	Rows      uint64
	TuplesIn  uint64
	HostDrops uint64
	LateDrops uint64
	// DegradedWindows counts windows emitted with >= 1 evicted stream.
	DegradedWindows uint64
	// ShedWindows counts windows emitted with >= 1 budget-shed stream.
	ShedWindows uint64
}

// QueryDone tells the client the query span ended.
type QueryDone struct {
	QueryID uint64
	Stats   QueryStats
}

// CancelQuery asks the server to tear a query down before its span ends.
type CancelQuery struct {
	QueryID uint64
}

// RegisterHost announces an agent on its control connection.
type RegisterHost struct {
	HostID  string
	Service string
	DC      string
}

// HostQuery is the query object shipped to a host: only selection,
// projection, and sampling — the operations the paper allows on hosts.
type HostQuery struct {
	QueryID      uint64
	EventType    string
	TypeIdx      uint8     // position of EventType in the query's FROM list
	Pred         expr.Node // selection; nil ships every event
	Columns      []string  // projection: user fields to ship
	SampleEvents float64   // (0,1]
	StartNanos   int64     // activate at
	EndNanos     int64     // deactivate at (span expiry)
	// Host-impact budget (BUDGET clause); 0 means unlimited. The agent's
	// governor downsamples then sheds when the measured cost exceeds it.
	BudgetCPUPct      float64
	BudgetBytesPerSec float64
	// ReplayNanos asks the host to replay recorded events from
	// [StartNanos-ReplayNanos, StartNanos) through its record stream
	// before the query goes live (REPLAY clause); 0 disables replay.
	ReplayNanos int64
	// ShardEpoch pins the query to a shard-map epoch when the central
	// facility runs as a distributed fabric (internal/coord): agents route
	// the query's batches by request id over exactly that epoch's shard
	// set, so every host splits a request's tuples identically. 0 means
	// single-process central — ship whole batches to the data address.
	ShardEpoch uint32
}

// StopQuery deactivates a query on a host (cancel or span end).
type StopQuery struct {
	QueryID uint64
}

// DataHello opens an agent's data connection to ScrubCentral.
type DataHello struct {
	HostID string
}

// Tuple is one projected event: system fields plus the projected column
// values in HostQuery.Columns order.
type Tuple struct {
	RequestID uint64
	TsNanos   int64
	// Values is carved from the sending agent's pooled chunk arena and is
	// recycled after SendBatch returns; retain only via a deep copy.
	//scrub:pooled
	Values []event.Value
}

// TupleBatch carries sampled, selected, projected tuples from a host to
// ScrubCentral. The counters are cumulative per (query, host, type): they
// let the estimator recover Mᵢ and mᵢ, and let results report drops.
type TupleBatch struct {
	QueryID uint64
	HostID  string
	TypeIdx uint8
	// Tuples (and each tuple's Values) alias the sender's pooled chunk
	// memory, reused after SendBatch returns. Sinks that buffer batches
	// must deep-copy (CloneBatch); see the Sink contract.
	//scrub:pooled
	Tuples       []Tuple
	MatchedTotal uint64 // events matching selection (pre event-sampling)
	SampledTotal uint64 // events shipped (post sampling, pre queue drops)
	QueueDrops   uint64 // events lost to the bounded host queue
	// Governor accounting: the effective event-sampling rate in force
	// when the batch was sent (base rate × governor multiplier; 0 only
	// from pre-governor peers), whether the governor shed the query on
	// this host, and cumulative measured cost (CPU-ns sampled ×64;
	// encoded bytes shipped).
	EffRate    float64
	BudgetShed bool
	CPUNs      uint64
	ShipBytes  uint64
	// Replay-epoch framing. ReplayEpoch is nonzero on batches carrying
	// historical tuples replayed from the host's record stream; central
	// folds them into windows under the query's replay hold so windows
	// the history belongs to cannot force-close first. ReplayDone marks
	// the stream's final replay batch: everything after it is live.
	ReplayEpoch uint32
	ReplayDone  bool
}

// ListQueries asks the server for its active queries (operational
// visibility: the paper notes query load "can at times be considerable").
type ListQueries struct{}

// QuerySummary describes one active query.
type QuerySummary struct {
	QueryID  uint64
	Text     string
	Columns  []string
	Hosts    uint32 // activated hosts
	EndNanos int64
	Stats    QueryStats
}

// QueryList answers ListQueries.
type QueryList struct {
	Queries []QuerySummary
}

// Ping/Pong keep long-lived control connections verified.
type Ping struct{ Nonce uint64 }

// Pong answers a Ping.
type Pong struct{ Nonce uint64 }

func (SubmitQuery) msgTag() byte   { return tagSubmitQuery }
func (QueryAccepted) msgTag() byte { return tagQueryAccepted }
func (QueryError) msgTag() byte    { return tagQueryError }
func (ResultWindow) msgTag() byte  { return tagResultWindow }
func (QueryDone) msgTag() byte     { return tagQueryDone }
func (CancelQuery) msgTag() byte   { return tagCancelQuery }
func (RegisterHost) msgTag() byte  { return tagRegisterHost }
func (HostQuery) msgTag() byte     { return tagHostQuery }
func (StopQuery) msgTag() byte     { return tagStopQuery }
func (DataHello) msgTag() byte     { return tagDataHello }
func (TupleBatch) msgTag() byte    { return tagTupleBatch }
func (ListQueries) msgTag() byte   { return tagListQueries }
func (QueryList) msgTag() byte     { return tagQueryList }
func (Ping) msgTag() byte          { return tagPing }
func (Pong) msgTag() byte          { return tagPong }

// Name returns a human-readable message name for logs.
func Name(m Message) string {
	switch m.(type) {
	case SubmitQuery:
		return "SubmitQuery"
	case QueryAccepted:
		return "QueryAccepted"
	case QueryError:
		return "QueryError"
	case ResultWindow:
		return "ResultWindow"
	case QueryDone:
		return "QueryDone"
	case CancelQuery:
		return "CancelQuery"
	case RegisterHost:
		return "RegisterHost"
	case HostQuery:
		return "HostQuery"
	case StopQuery:
		return "StopQuery"
	case DataHello:
		return "DataHello"
	case TupleBatch:
		return "TupleBatch"
	case ListQueries:
		return "ListQueries"
	case QueryList:
		return "QueryList"
	case Ping:
		return "Ping"
	case Pong:
		return "Pong"
	default:
		if name, ok := nameCoord(m); ok {
			return name
		}
		return fmt.Sprintf("unknown(%T)", m)
	}
}
