package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRegIncBetaBoundaries(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundaries wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if !close(RegIncBeta(1, 1, x), x, 1e-10) {
			t.Errorf("I_%g(1,1) = %g", x, RegIncBeta(1, 1, x))
		}
	}
	// I_x(a,b) + I_{1-x}(b,a) = 1.
	for _, x := range []float64{0.2, 0.7} {
		if !close(RegIncBeta(2.5, 4, x)+RegIncBeta(4, 2.5, 1-x), 1, 1e-10) {
			t.Errorf("symmetry broken at %g", x)
		}
	}
}

func TestTCDFKnownValues(t *testing.T) {
	// t CDF with df=1 is Cauchy: F(t) = 1/2 + atan(t)/pi.
	for _, tt := range []float64{-3, -1, 0, 0.5, 2, 10} {
		want := 0.5 + math.Atan(tt)/math.Pi
		if got := TCDF(tt, 1); !close(got, want, 1e-9) {
			t.Errorf("TCDF(%g, 1) = %g, want %g", tt, got, want)
		}
	}
	// df=2 has closed form F(t) = 1/2 + t / (2*sqrt(2+t^2)).
	for _, tt := range []float64{-2, 0, 1, 5} {
		want := 0.5 + tt/(2*math.Sqrt(2+tt*tt))
		if got := TCDF(tt, 2); !close(got, want, 1e-9) {
			t.Errorf("TCDF(%g, 2) = %g, want %g", tt, got, want)
		}
	}
	if !math.IsNaN(TCDF(1, 0)) {
		t.Error("TCDF with df=0 should be NaN")
	}
}

func TestTQuantileTableValues(t *testing.T) {
	// Classic t-table critical values, two-sided alpha=0.05 → p=0.975.
	table := []struct {
		df   float64
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {5, 2.571}, {10, 2.228},
		{30, 2.042}, {100, 1.984}, {1000, 1.962},
	}
	for _, tc := range table {
		got, err := TQuantile(0.975, tc.df)
		if err != nil {
			t.Fatalf("TQuantile(0.975, %g): %v", tc.df, err)
		}
		if !close(got, tc.want, 0.002) {
			t.Errorf("t_{%g, 0.975} = %g, want %g", tc.df, got, tc.want)
		}
	}
}

func TestTQuantileRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 0.01 + 0.98*rng.Float64()
		df := float64(1 + rng.Intn(50))
		q, err := TQuantile(p, df)
		if err != nil {
			return false
		}
		return close(TCDF(q, df), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTQuantileEdges(t *testing.T) {
	if q, err := TQuantile(0.5, 7); err != nil || q != 0 {
		t.Errorf("median should be 0: %g, %v", q, err)
	}
	if _, err := TQuantile(0, 5); err == nil {
		t.Error("p=0 should fail")
	}
	if _, err := TQuantile(1, 5); err == nil {
		t.Error("p=1 should fail")
	}
	if _, err := TQuantile(0.9, 0); err == nil {
		t.Error("df=0 should fail")
	}
	// Symmetry.
	hi, _ := TQuantile(0.9, 6)
	lo, _ := TQuantile(0.1, 6)
	if !close(hi, -lo, 1e-9) {
		t.Errorf("asymmetric quantiles: %g vs %g", hi, lo)
	}
}

func TestNormQuantile(t *testing.T) {
	table := map[float64]float64{
		0.5: 0, 0.975: 1.959964, 0.995: 2.575829, 0.841344746: 1.0, 0.025: -1.959964,
	}
	for p, want := range table {
		got, err := NormQuantile(p)
		if err != nil || !close(got, want, 1e-5) {
			t.Errorf("NormQuantile(%g) = %g, %v; want %g", p, got, err, want)
		}
	}
	if _, err := NormQuantile(0); err == nil {
		t.Error("p=0 should fail")
	}
	// Large-df t converges to normal.
	tq, _ := TQuantile(0.975, 1e6)
	nq, _ := NormQuantile(0.975)
	if !close(tq, nq, 1e-3) {
		t.Errorf("t(df=1e6) %g != normal %g", tq, nq)
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Error("zero value not empty")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != 8 || !close(r.Mean(), 5, 1e-12) {
		t.Errorf("mean = %g", r.Mean())
	}
	// Sample variance of this classic set: population var 4, sample var 32/7.
	if !close(r.Var(), 32.0/7, 1e-12) {
		t.Errorf("var = %g", r.Var())
	}
	if !close(r.Std(), math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("std = %g", r.Std())
	}
	if !close(r.Sum(), 40, 1e-12) {
		t.Errorf("sum = %g", r.Sum())
	}
	m, v := MeanVar(xs)
	if !close(m, 5, 1e-12) || !close(v, 32.0/7, 1e-12) {
		t.Error("MeanVar disagrees with Running")
	}
}

func TestRunningMergeQuick(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		var whole, a, b Running
		cut := 0
		if len(xs) > 0 {
			cut = int(split) % (len(xs) + 1)
		}
		for i, x := range xs {
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		scale := 1 + math.Abs(whole.Mean()) + whole.Var()
		return a.N() == whole.N() &&
			close(a.Mean(), whole.Mean(), 1e-9*scale) &&
			close(a.Var(), whole.Var(), 1e-9*scale)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := map[float64]float64{
		0: 15, 100: 50, 50: 35,
		25: 20, // exact rank
		5:  16, // interpolated: rank 0.2 between 15 and 20
	}
	for p, want := range cases {
		if got := Percentile(xs, p); !close(got, want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input not mutated.
	if xs[0] != 15 || xs[4] != 50 {
		t.Error("Percentile mutated input")
	}
}

func TestRunningMergeEdges(t *testing.T) {
	// Merge of/into empty accumulators.
	var a, b Running
	b.Add(3)
	b.Add(5)
	a.Merge(b) // into empty
	if a.N() != 2 || !close(a.Mean(), 4, 1e-12) {
		t.Errorf("merge into empty: n=%d mean=%g", a.N(), a.Mean())
	}
	var empty Running
	a.Merge(empty) // merge of empty: no-op
	if a.N() != 2 || !close(a.Mean(), 4, 1e-12) {
		t.Errorf("merge of empty disturbed: n=%d mean=%g", a.N(), a.Mean())
	}
	// Non-trivial merge matches whole-stream accumulation.
	var c, d, whole Running
	for i := 0; i < 10; i++ {
		x := float64(i * i)
		whole.Add(x)
		if i < 4 {
			c.Add(x)
		} else {
			d.Add(x)
		}
	}
	c.Merge(d)
	if !close(c.Mean(), whole.Mean(), 1e-9) || !close(c.Var(), whole.Var(), 1e-9) {
		t.Errorf("merge: mean %g/%g var %g/%g", c.Mean(), whole.Mean(), c.Var(), whole.Var())
	}
}
