package stats

import (
	"math"
	"math/rand"
	"testing"
)

// TestRunningCodecRoundTrip checks bit-exact round-trips: a decoded
// accumulator must report and merge identically to the original.
func TestRunningCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var r Running
		for i := rng.Intn(100); i > 0; i-- {
			r.Add(rng.NormFloat64() * 1e3)
		}
		enc := r.AppendBinary(nil)
		d, n, err := DecodeRunning(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(enc) {
			t.Fatalf("trial %d: consumed %d of %d", trial, n, len(enc))
		}
		if d.N() != r.N() ||
			math.Float64bits(d.Mean()) != math.Float64bits(r.Mean()) ||
			math.Float64bits(d.m2) != math.Float64bits(r.m2) {
			t.Fatalf("trial %d: round-trip mismatch: %+v vs %+v", trial, d, r)
		}
		var o Running
		for i := 0; i < 10; i++ {
			o.Add(rng.NormFloat64())
		}
		r.Merge(o)
		d.Merge(o)
		if math.Float64bits(d.Var()) != math.Float64bits(r.Var()) {
			t.Fatalf("trial %d: post-merge variance diverged", trial)
		}
	}
}

func TestRunningDecodeErrors(t *testing.T) {
	var r Running
	r.Add(1.5)
	enc := r.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeRunning(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
