package stats

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Running accumulates streaming mean and variance via Welford's algorithm.
// The zero value is an empty accumulator ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation in.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the unbiased sample variance s² (0 when n < 2).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the sample standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Sum returns n * mean.
func (r *Running) Sum() float64 { return r.mean * float64(r.n) }

// Merge folds another accumulator in (Chan et al. parallel variant).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n1, n2 := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	tot := n1 + n2
	r.m2 += o.m2 + delta*delta*n1*n2/tot
	r.mean += delta * n2 / tot
	r.n += o.n
}

// AppendBinary serializes the accumulator exactly: the observation count
// plus the raw IEEE-754 bits of mean and m2, so a decoded copy merges and
// reports bit-identically to the original.
func (r Running) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(r.n))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.mean))
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.m2))
	return append(dst, buf[:]...)
}

// DecodeRunning parses an accumulator serialized by AppendBinary,
// returning bytes consumed.
func DecodeRunning(b []byte) (Running, int, error) {
	n64, sz := binary.Uvarint(b)
	if sz <= 0 {
		return Running{}, 0, fmt.Errorf("stats: decode Running: bad count")
	}
	if len(b) < sz+16 {
		return Running{}, 0, fmt.Errorf("stats: decode Running: short moments")
	}
	r := Running{
		n:    int(n64),
		mean: math.Float64frombits(binary.LittleEndian.Uint64(b[sz : sz+8])),
		m2:   math.Float64frombits(binary.LittleEndian.Uint64(b[sz+8 : sz+16])),
	}
	return r, sz + 16, nil
}

// MeanVar returns the sample mean and unbiased variance of xs.
func MeanVar(xs []float64) (mean, variance float64) {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Mean(), r.Var()
}

// Percentile returns the p'th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs is not modified. Returns 0 for an
// empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
