// Package stats provides the small statistical toolkit Scrub's sampling
// machinery needs: Student-t quantiles for the multistage-sampling error
// bounds (paper Eq. 2), plus streaming mean/variance and simple percentile
// helpers used by the benchmark harness.
//
// Everything is implemented from first principles on the stdlib: the t
// CDF goes through the regularized incomplete beta function (continued
// fraction, modified Lentz), and quantiles invert the CDF by bisection.
package stats

import (
	"fmt"
	"math"
)

// logBeta returns log(B(a, b)).
func logBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betacf evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method (Numerical Recipes §6.4).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	return h // converged enough for our quantile bisection purposes
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	bt := math.Exp(a*math.Log(x) + b*math.Log(1-x) - logBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return bt * betacf(a, b, x) / a
	}
	return 1 - bt*betacf(b, a, 1-x)/b
}

// TCDF returns P(T <= t) for a Student-t variable with df degrees of
// freedom.
func TCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile of the Student-t distribution with df
// degrees of freedom (the t_{df,p} in the paper's Eq. 2). p must lie in
// (0, 1).
func TQuantile(p float64, df float64) (float64, error) {
	if df <= 0 {
		return 0, fmt.Errorf("stats: t quantile requires df > 0, got %g", df)
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: t quantile requires p in (0,1), got %g", p)
	}
	if p == 0.5 {
		return 0, nil
	}
	// Symmetric: solve for the upper half and mirror.
	if p < 0.5 {
		q, err := TQuantile(1-p, df)
		return -q, err
	}
	// Bracket the root: expand hi until CDF(hi) > p.
	lo, hi := 0.0, 1.0
	for TCDF(hi, df) < p {
		hi *= 2
		if hi > 1e9 {
			return 0, fmt.Errorf("stats: t quantile p=%g df=%g out of range", p, df)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// NormQuantile returns the p-quantile of the standard normal distribution
// (Acklam's rational approximation, |ε| < 1.15e-9). Used as the t limit for
// very large df and by the benchmark harness.
func NormQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: normal quantile requires p in (0,1), got %g", p)
	}
	a := [6]float64{-39.69683028665376, 220.9460984245205, -275.9285104469687, 138.3577518672690, -30.66479806614716, 2.506628277459239}
	b := [5]float64{-54.47609879822406, 161.5858368580409, -155.6989798598866, 66.80131188771972, -13.28068155288572}
	c := [6]float64{-0.007784894002430293, -0.3223964580411365, -2.400758277161838, -2.549732539343734, 4.374664141464968, 2.938163982698783}
	d := [4]float64{0.007784695709041462, 0.3224671290700398, 2.445134137142996, 3.754408661907416}
	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1), nil
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1), nil
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1), nil
	}
}
