package coord

import (
	"fmt"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/obs"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

var testSchema = event.MustSchema("ev",
	event.FieldDef{Name: "v", Kind: event.KindFloat},
)

func testCatalog() *event.Catalog {
	c := event.NewCatalog()
	c.MustRegister(testSchema)
	return c
}

// vclock is a harness-controlled clock (single harness goroutine; reads
// from serve goroutines are ordered by the pipes' synchronous RPCs).
type vclock struct{ nanos int64 }

func (v *vclock) now() time.Time { return time.Unix(0, v.nanos) }

type collector struct{ wins []transport.ResultWindow }

func (c *collector) emit(rw transport.ResultWindow) { c.wins = append(c.wins, rw) }

// testShard is one fake shard process: a node plus the server ends of its
// connections, so tests can kill it.
type testShard struct {
	node  *ShardNode
	conns []*transport.Conn // server ends: coordinator's and router's
}

// kill closes the shard's connections: the next RPC to it fails, exactly
// like a died process.
func (s *testShard) kill() {
	for _, c := range s.conns {
		c.Close()
	}
}

type testTopo struct {
	coord  *Coordinator
	router *Router
	shards []*testShard
}

func newTestTopo(t *testing.T, n int, opts Options) *testTopo {
	t.Helper()
	tt := &testTopo{coord: NewCoordinator(opts)}
	tt.router = NewRouter(func(m transport.BatchManifest) error {
		tt.coord.HandleManifest(m)
		return nil
	}, nil)
	for i := 0; i < n; i++ {
		tt.addShard(t)
	}
	return tt
}

// addShard grows the fabric by one shard process (join).
func (tt *testTopo) addShard(t *testing.T) *testShard {
	t.Helper()
	s := &testShard{node: NewShardNode(testCatalog())}
	addr := fmt.Sprintf("shard-%d", len(tt.shards))
	cc, cs := transport.Pipe()
	go s.node.ServeConn(cs)
	tt.coord.AddShardConn(cc, addr)
	rc, rs := transport.Pipe()
	go s.node.ServeConn(rs)
	tt.router.AddShardConn(addr, rc)
	s.conns = []*transport.Conn{cs, rs}
	tt.shards = append(tt.shards, s)
	tt.router.HandleShardMap(tt.coord.ShardMap())
	return s
}

func (tt *testTopo) close() {
	tt.router.Close()
	tt.coord.Close()
	for _, s := range tt.shards {
		s.kill()
	}
}

func (tt *testTopo) startQuery(t *testing.T, id uint64, src string, lateness time.Duration, col *collector) {
	t.Helper()
	q, err := ql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := ql.Analyze(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	plan := central.FromPlan(qp, id, 0, 0, 1, 1)
	plan.Text = src
	plan.Lateness = lateness
	if err := tt.coord.StartQuery(plan, col.emit); err != nil {
		t.Fatal(err)
	}
	epoch, ok := tt.coord.QueryEpoch(id)
	if !ok {
		t.Fatalf("query %d has no pinned epoch", id)
	}
	tt.router.PinQuery(id, epoch)
}

// send ships one single-tuple batch through the router.
func (tt *testTopo) send(t *testing.T, id, rid uint64, ts int64) {
	t.Helper()
	err := tt.router.SendBatch(transport.TupleBatch{
		QueryID: id, HostID: "h1", TypeIdx: 0,
		Tuples: []transport.Tuple{{RequestID: rid, TsNanos: ts, Values: []event.Value{event.Float(1)}}},
	})
	if err != nil {
		t.Fatalf("send rid=%d ts=%d: %v", rid, ts, err)
	}
}

const sec = int64(time.Second)

func countOf(t *testing.T, rw transport.ResultWindow) int64 {
	t.Helper()
	if len(rw.Rows) != 1 || len(rw.Rows[0]) < 1 {
		t.Fatalf("window [%d,%d): want one count row, got %v", rw.WindowStart, rw.WindowEnd, rw.Rows)
	}
	n, ok := rw.Rows[0][0].AsInt()
	if !ok {
		t.Fatalf("count column not an int: %v", rw.Rows[0][0])
	}
	return n
}

// TestShardKillMidQuery kills one of two shards mid-query and asserts
// windows keep closing — degraded, with the lost tuples accounted as
// drops — instead of the watermark wedging.
func TestShardKillMidQuery(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	// Window [0,10s): rids 0..5 land 3 per shard (rid % 2).
	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	// ts=12s advances the watermark past 10s+lateness: [0,10s) closes.
	vc.nanos = 12 * sec
	tt.send(t, 1, 6, 12*sec)
	if len(col.wins) != 1 {
		t.Fatalf("want 1 window before the kill, got %d", len(col.wins))
	}
	if col.wins[0].Degraded {
		t.Fatal("window closed before the kill must not be degraded")
	}
	if n := countOf(t, col.wins[0]); n != 6 {
		t.Fatalf("window [0,10s) count = %d, want 6", n)
	}

	// Shard 1 dies. Tuples keep flowing: odd rids now drop at the router,
	// even rids land on the survivor, and the manifests keep the
	// watermark moving.
	tt.shards[1].kill()
	for i := 12; i < 22; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	vc.nanos = 32 * sec
	tt.send(t, 1, 32, 32*sec)
	if len(col.wins) < 2 {
		t.Fatalf("windows stopped closing after shard death: %d total", len(col.wins))
	}
	for _, rw := range col.wins[1:] {
		if !rw.Degraded {
			t.Errorf("window [%d,%d) after shard death not flagged Degraded", rw.WindowStart, rw.WindowEnd)
		}
	}
	// Window [10s,20s): rids 6 (ts 12s, even) and 12..18 even (13s..19s)
	// reached the survivor; odd rids died with shard 1.
	if n := countOf(t, col.wins[1]); n != 5 {
		t.Fatalf("degraded window [10s,20s) count = %d, want 5 (survivor-shard tuples only)", n)
	}

	// A tick sweeps the dead shard out of the membership: epoch bumps and
	// the map shrinks, but the running query keeps its pinned topology.
	epochBefore, _ := tt.coord.QueryEpoch(1)
	tt.coord.Tick(vc.nanos)
	if m := tt.coord.ShardMap(); len(m.Addrs) != 1 || m.Epoch <= epochBefore {
		t.Fatalf("membership after death sweep: %+v (want 1 addr, epoch > %d)", m, epochBefore)
	}
	if e, ok := tt.coord.QueryEpoch(1); !ok || e != epochBefore {
		t.Fatalf("running query's pinned epoch changed: %d -> %d", epochBefore, e)
	}

	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	if stats.DegradedWindows == 0 {
		t.Error("final stats did not count degraded windows")
	}
	if stats.Windows != uint64(len(col.wins)) {
		t.Errorf("stats.Windows = %d, emitted %d", stats.Windows, len(col.wins))
	}
}

// TestShardJoinMidQuery joins a third shard mid-query: the running query
// keeps its 2-shard pin and its results stay exact; a query started after
// the join routes over all three shards.
func TestShardJoinMidQuery(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	for i := 0; i < 4; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}

	tt.addShard(t) // join: epoch bumps, map now 3 shards

	if m := tt.coord.ShardMap(); len(m.Addrs) != 3 {
		t.Fatalf("membership after join: %+v", m)
	}
	// The running query still routes rid%2 and merges from its pinned two
	// shards: deliveries after the join must not disturb it.
	for i := 4; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	vc.nanos = 12 * sec
	tt.send(t, 1, 6, 12*sec)
	if len(col.wins) != 1 {
		t.Fatalf("want 1 closed window, got %d", len(col.wins))
	}
	if rw := col.wins[0]; rw.Degraded || countOf(t, rw) != 6 {
		t.Fatalf("window after join: degraded=%v count=%d, want exact 6", rw.Degraded, countOf(t, rw))
	}

	// A new query pins the post-join epoch and lands on all three shards.
	col2 := &collector{}
	tt.startQuery(t, 2, `select count(*) from ev window 10s`, time.Second, col2)
	for i := 0; i < 6; i++ {
		vc.nanos += sec
		tt.send(t, 2, uint64(i), int64(i+1)*sec)
	}
	st := tt.coord.Status()
	if len(st.Shards) != 3 {
		t.Fatalf("status shards: %d, want 3", len(st.Shards))
	}
	for _, row := range st.Shards {
		if row.Down {
			t.Errorf("shard %d (%s) reported down", row.Index, row.Addr)
		}
		if row.ActiveQueries == 0 {
			t.Errorf("shard %d (%s) has no active queries; join did not distribute", row.Index, row.Addr)
		}
	}
	if _, ok := tt.coord.StopQuery(1); !ok {
		t.Fatal("StopQuery(1) missed")
	}
	if _, ok := tt.coord.StopQuery(2); !ok {
		t.Fatal("StopQuery(2) missed")
	}
}

// TestShardLeaveReMerge stops a query cleanly after a shard has died and
// checks the re-merge at StopQuery: the surviving shard's windows drain
// without divergence — every remaining tuple lands in exactly one final
// window and the drop accounting balances.
func TestShardLeaveReMerge(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	tt.shards[1].kill()
	// Open window [0,10s) holds 3 tuples on each shard; shard 1's three
	// are unrecoverable. Stop must still drain shard 0's partials.
	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	if len(col.wins) != 1 {
		t.Fatalf("drain emitted %d windows, want 1", len(col.wins))
	}
	rw := col.wins[0]
	if !rw.Degraded {
		t.Error("drained window after shard death not flagged Degraded")
	}
	if n := countOf(t, rw); n != 3 {
		t.Errorf("drained window count = %d, want 3 (surviving shard)", n)
	}
	if stats.TuplesIn != 3 {
		t.Errorf("stats.TuplesIn = %d, want 3", stats.TuplesIn)
	}
}

// TestRouterFallback: a query with no epoch pin goes to the fallback sink
// whole — the single-process central path.
func TestRouterFallback(t *testing.T) {
	var got []transport.TupleBatch
	r := NewRouter(func(transport.BatchManifest) error { return nil },
		func(b transport.TupleBatch) error { got = append(got, b); return nil })
	b := transport.TupleBatch{QueryID: 9, HostID: "h", Tuples: []transport.Tuple{{RequestID: 1}}}
	if err := r.SendBatch(b); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Tuples) != 1 {
		t.Fatalf("fallback did not receive the whole batch: %+v", got)
	}

	// Without a fallback, an unpinned query is an error, not silence.
	r2 := NewRouter(func(transport.BatchManifest) error { return nil }, nil)
	if err := r2.SendBatch(b); err == nil {
		t.Fatal("unpinned query with no fallback must error")
	}
}

// TestCoordMetricsZeroAlloc pins the scrub_coord_* update paths to zero
// allocations, like the other components' hot counters.
func TestCoordMetricsZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	m := newCoordMetrics(reg)
	lag := m.shardLag("shard-0")
	if allocs := testing.AllocsPerRun(200, func() {
		m.manifests.Inc()
		m.tuples.Add(17)
		m.merges.Inc()
		m.rebalances.Inc()
		m.setMembership(4, 9)
		lag.Set(123456)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate: %v allocs/op", allocs)
	}
}

// TestMetricsMembershipSeries: shard lag gauges appear on join and vanish
// on leave.
func TestMetricsMembershipSeries(t *testing.T) {
	reg := obs.NewRegistry()
	vc := &vclock{}
	c := NewCoordinator(Options{Clock: vc.now, Metrics: reg})
	a1, b1 := transport.Pipe()
	defer b1.Close()
	node := NewShardNode(testCatalog())
	go node.ServeConn(b1)
	c.AddShardConn(a1, "s0")

	found := func(name string) bool {
		for _, s := range reg.Snapshot() {
			if s.Name == name {
				return true
			}
		}
		return false
	}
	if !found("scrub_coord_shard_lag_ns") {
		t.Fatal("per-shard lag gauge not registered on join")
	}
	if !found("scrub_coord_shards") || !found("scrub_coord_epoch") {
		t.Fatal("membership gauges not registered")
	}
	a1.Close()
	// Force the down flag, then sweep.
	if err := c.members[0].ping(1); err == nil {
		t.Fatal("ping over closed conn should fail")
	}
	c.Tick(0)
	if found("scrub_coord_shard_lag_ns") {
		t.Fatal("per-shard lag gauge not unregistered on leave")
	}
}

// TestStartQueryTwoPhase drives the install interleaving by hand: the
// test plays shard 1 and, while the coordinator's StartQuery is blocked
// on its ShardStart RPC, probes the half-installed query. The entry must
// be invisible — manifests dropped, StopQuery/Stats unknown — so the
// rollback after shard 1's refusal never races state someone else folded
// in. (PR 10 bugfix: the query used to be published before install.)
func TestStartQueryTwoPhase(t *testing.T) {
	vc := &vclock{}
	c := NewCoordinator(Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer c.Close()

	// Shard 0: a real node. Shard 1: the test goroutine, speaking the
	// shard protocol by hand.
	node := NewShardNode(testCatalog())
	cc0, cs0 := transport.Pipe()
	go node.ServeConn(cs0)
	c.AddShardConn(cc0, "shard-0")
	cc1, cs1 := transport.Pipe()
	c.AddShardConn(cc1, "shard-1")

	q, err := ql.Parse(`select count(*) from ev window 10s`)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := ql.Analyze(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	plan := central.FromPlan(qp, 1, 0, 0, 1, 1)
	plan.Text = `select count(*) from ev window 10s`

	col := &collector{}
	startErr := make(chan error, 1)
	go func() { startErr <- c.StartQuery(plan, col.emit) }()

	// Act as shard 1: the coordinator is now mid-install (shard 0
	// accepted; we have not answered).
	m, err := cs1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	start, ok := m.(transport.ShardStart)
	if !ok {
		t.Fatalf("shard 1 received %s, want ShardStart", transport.Name(m))
	}

	// Probe the pending entry: it must be invisible to every Executor
	// surface, and a manifest racing the install must be dropped.
	c.HandleManifest(transport.BatchManifest{
		QueryID: 1, HostID: "h1", RawTuples: 1, HasTs: true, MaxTs: 50 * sec,
	})
	if _, ok := c.Stats(1); ok {
		t.Error("Stats sees a query whose install has not finished")
	}
	if _, ok := c.StopQuery(1); ok {
		t.Error("StopQuery stopped a query whose install has not finished")
	}
	if ids := c.ActiveQueries(); len(ids) != 0 {
		t.Errorf("ActiveQueries during install = %v, want none", ids)
	}

	// Refuse the start: the rollback must leave no trace.
	if err := cs1.Send(transport.ShardAck{Seq: start.Seq, Err: "no capacity"}); err != nil {
		t.Fatal(err)
	}
	if err := <-startErr; err == nil {
		t.Fatal("StartQuery succeeded despite shard refusal")
	}
	if ids := c.ActiveQueries(); len(ids) != 0 {
		t.Errorf("ActiveQueries after rollback = %v, want none", ids)
	}
	if len(col.wins) != 0 {
		t.Errorf("rolled-back query emitted %d windows", len(col.wins))
	}
	// The dropped manifest must not have left stream state behind: shard
	// 0 no longer runs the query either (rollback stopped it).
	if qs := node.Engine().ActiveQueries(); len(qs) != 0 {
		t.Errorf("shard 0 still runs %v after rollback", qs)
	}

	// The same id must be startable again once the bad shard is gone.
	cs1.Close()
	if err := c.members[1].ping(1); err == nil {
		t.Fatal("ping over closed conn should succeed... failing")
	}
	c.Tick(0) // sweep shard 1 out
	if err := c.StartQuery(plan, col.emit); err != nil {
		t.Fatalf("restart after rollback: %v", err)
	}
	if _, ok := c.StopQuery(1); !ok {
		t.Fatal("restarted query not stoppable")
	}
}

// TestStartQueryRollbackManifestRace is the -race companion of the
// two-phase test: manifests and stops hammer the coordinator from other
// goroutines while StartQuery installs against a shard that refuses
// (empty catalog). Correctness here is "the detector stays quiet and
// nothing leaks" — the deterministic interleaving is pinned above.
func TestStartQueryRollbackManifestRace(t *testing.T) {
	vc := &vclock{}
	c := NewCoordinator(Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer c.Close()
	good := NewShardNode(testCatalog())
	cc0, cs0 := transport.Pipe()
	go good.ServeConn(cs0)
	c.AddShardConn(cc0, "shard-0")
	// This shard's catalog cannot resolve "ev": every ShardStart fails.
	bad := NewShardNode(event.NewCatalog())
	cc1, cs1 := transport.Pipe()
	go bad.ServeConn(cs1)
	c.AddShardConn(cc1, "shard-1")

	q, _ := ql.Parse(`select count(*) from ev window 10s`)
	qp, err := ql.Analyze(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.HandleManifest(transport.BatchManifest{
				QueryID: 1, HostID: "h1", RawTuples: 1, HasTs: true, MaxTs: i * sec,
			})
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.StopQuery(1)
		}
	}()
	for i := 0; i < 50; i++ {
		plan := central.FromPlan(qp, 1, 0, 0, 1, 1)
		plan.Text = `select count(*) from ev window 10s`
		if err := c.StartQuery(plan, func(transport.ResultWindow) {}); err == nil {
			t.Fatal("StartQuery succeeded against a shard that cannot resolve the schema")
		}
	}
	close(stop)
	<-done
	<-done
	if ids := c.ActiveQueries(); len(ids) != 0 {
		t.Errorf("queries leaked through rollback: %v", ids)
	}
	if qs := good.Engine().ActiveQueries(); len(qs) != 0 {
		t.Errorf("good shard still runs %v after rollbacks", qs)
	}
}

// TestManifestTupleFreeHasTs: a manifest whose tuples were all shard-side
// filtered or late-dropped (RawTuples 0 with HasTs or LateDelta) must
// still advance the stream's clock and fold its late drops — otherwise a
// host in that state stalls the watermark for every host until its lease
// expires. (PR 10 bugfix: the tuple-free early return skipped both.)
func TestManifestTupleFreeHasTs(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 1, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	// One real tuple in [0,10s).
	vc.nanos = sec
	tt.send(t, 1, 0, sec)
	if len(col.wins) != 0 {
		t.Fatalf("window closed early: %d", len(col.wins))
	}

	// A tuple-free manifest from the same stream carries the clock past
	// the close bound — as when every tuple in the batch was late-dropped
	// shard-side — plus a late-drop delta to fold.
	vc.nanos = 12 * sec
	tt.coord.HandleManifest(transport.BatchManifest{
		QueryID: 1, HostID: "h1", TypeIdx: 0,
		RawTuples: 0, HasTs: true, MaxTs: 12 * sec, LateDelta: 3,
	})
	if len(col.wins) != 1 {
		t.Fatalf("tuple-free HasTs manifest did not close the window: %d windows", len(col.wins))
	}
	rw := col.wins[0]
	if n := countOf(t, rw); n != 1 {
		t.Errorf("window count = %d, want 1", n)
	}
	var lateDrops uint64
	for _, s := range rw.Streams {
		if s.HostID == "h1" {
			lateDrops = s.LateDrops
		}
	}
	if lateDrops != 3 {
		t.Errorf("stream late drops = %d, want 3 (LateDelta folded before the tuple-free return)", lateDrops)
	}
}

// TestStopAfterMemberRemoval stops a query after its pinned shard died
// AND was swept out of the membership. The sweep must not tear down the
// client object the query still holds: StopQuery takes the degrade path
// against the latched-down client and drains the survivor cleanly.
// (PR 10 bugfix: removeDownLocked used to close() the client it was
// promising to keep.)
func TestStopAfterMemberRemoval(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	tt.shards[1].kill()
	// Latch the death into the coordinator's client (first failed RPC),
	// then sweep the membership.
	if _, ok := tt.coord.Stats(1); !ok {
		t.Fatal("Stats missed")
	}
	epochBefore := tt.coord.ShardMap().Epoch
	tt.coord.Tick(vc.nanos)
	if m := tt.coord.ShardMap(); len(m.Addrs) != 1 || m.Epoch <= epochBefore {
		t.Fatalf("sweep did not remove the dead shard: %+v", m)
	}

	// The stop after the sweep: survivor drained, dead shard degraded.
	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed after member removal")
	}
	if len(col.wins) != 1 {
		t.Fatalf("drain emitted %d windows, want 1", len(col.wins))
	}
	if rw := col.wins[0]; !rw.Degraded {
		t.Error("drained window not flagged Degraded")
	} else if n := countOf(t, rw); n != 3 {
		t.Errorf("drained count = %d, want 3 (surviving shard)", n)
	}
	if stats.TuplesIn != 3 {
		t.Errorf("stats.TuplesIn = %d, want 3", stats.TuplesIn)
	}
}

// TestLeaderFailover is the tentpole scenario end to end, in-process: a
// replicating leader with a standby loses a query mid-flight, the
// standby promotes under a higher fencing term, re-pins the shards,
// stops the leader's orphan registration, resumes the replicated query,
// and finishes it with exact counts (honestly flagged Degraded) — while
// the deposed leader, still alive, is fenced out of emitting anything.
func TestLeaderFailover(t *testing.T) {
	vc := &vclock{}
	opts := Options{Clock: vc.now, LeaseTTL: time.Hour}
	tt := newTestTopo(t, 2, opts)
	defer tt.close()
	// Heartbeat an hour out: replication in this test rides the
	// synchronous appends only, keeping the interleaving deterministic.
	tt.coord.StartReplication(ReplicationConfig{Term: 1, Heartbeat: time.Hour})
	if tt.coord.Fence() != 1 {
		t.Fatalf("leader fence = %d, want 1", tt.coord.Fence())
	}

	sb := NewStandby(StandbyOptions{
		Central: opts,
		Catalog: testCatalog(),
		Dial: func(addr string) (*transport.Conn, error) {
			for i, s := range tt.shards {
				if addr == fmt.Sprintf("shard-%d", i) {
					cc, cs := transport.Pipe()
					go s.node.ServeConn(cs)
					return cc, nil
				}
			}
			return nil, fmt.Errorf("unknown shard %q", addr)
		},
	})
	sbc, sbs := transport.Pipe()
	go sb.ServeConn(sbs)
	tt.coord.AddStandbyConn(sbc, "standby-0")

	const src = `select count(*) from ev window 10s`
	col1 := &collector{}
	tt.startQuery(t, 1, src, time.Second, col1)

	// Pre-failover traffic: six tuples in [0,10s), then one at 12s that
	// closes the first window on the leader.
	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	vc.nanos = 12 * sec
	tt.send(t, 1, 6, 12*sec)
	if len(col1.wins) != 1 {
		t.Fatalf("leader emitted %d windows pre-failover, want 1", len(col1.wins))
	}
	if n := countOf(t, col1.wins[0]); n != 6 {
		t.Fatalf("pre-failover count = %d, want 6", n)
	}
	if col1.wins[0].Degraded {
		t.Error("pre-failover window flagged Degraded")
	}

	// The standby shadows the registration.
	if term, _, qs := sb.Snapshot(); term != 1 || len(qs) != 1 || qs[0] != 1 {
		t.Fatalf("standby snapshot term=%d queries=%v, want term 1 queries [1]", term, qs)
	}

	// An orphan: the leader died mid-StartQuery — installed on shard 0,
	// never replicated. Takeover must stop it.
	{
		q, err := ql.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		qp, err := ql.Analyze(q, testCatalog())
		if err != nil {
			t.Fatal(err)
		}
		plan7 := central.FromPlan(qp, 7, 0, 0, 1, 1)
		plan7.Text = src
		if err := tt.shards[0].node.Engine().StartDriven(plan7); err != nil {
			t.Fatal(err)
		}
	}

	// Promote while the old leader still runs: fencing, not leader
	// death, is what keeps this safe.
	old := tt.coord
	col2 := &collector{}
	promoted, resumed, err := sb.Promote(func(rq ResumedQuery, plan *central.Plan) central.EmitFunc {
		return col2.emit
	})
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	tt.coord = promoted // manifests and Stop/Tick now target the new leader

	if promoted.Fence() != 2 {
		t.Errorf("promoted fence = %d, want 2", promoted.Fence())
	}
	if len(resumed) != 1 || resumed[0].QueryID != 1 || resumed[0].Text != src {
		t.Fatalf("resumed = %+v, want query 1 with original text", resumed)
	}
	if resumed[0].PinEpoch != 2 {
		t.Errorf("resumed pin epoch = %d, want 2", resumed[0].PinEpoch)
	}
	for i, s := range tt.shards {
		if f := s.node.Fence(); f != 2 {
			t.Errorf("shard %d fence = %d, want 2", i, f)
		}
	}
	if qs := tt.shards[0].node.Engine().ActiveQueries(); len(qs) != 1 || qs[0] != 1 {
		t.Errorf("shard 0 active queries after takeover = %v, want [1] (orphan stopped)", qs)
	}
	if _, _, err := sb.Promote(nil); err == nil {
		t.Error("second Promote did not error")
	}

	// The new leader's map (fence 2) applies; the deposed leader's push
	// (fence 1) must be ignored.
	tt.router.HandleShardMap(promoted.ShardMap())
	tt.router.HandleShardMap(transport.ShardMap{Epoch: 99, Fence: 1, Addrs: []string{"bogus"}})
	tt.router.mu.Lock()
	_, leaked := tt.router.maps[99]
	tt.router.mu.Unlock()
	if leaked {
		t.Error("router applied a shard map from a deposed leader")
	}

	// Post-failover traffic: [10,20s) holds the 12s tuple absorbed under
	// the old leader plus six new ones — exact count across the takeover.
	for i := 0; i < 6; i++ {
		vc.nanos = int64(13+i) * sec
		tt.send(t, 1, uint64(12+i), int64(13+i)*sec)
	}
	vc.nanos = 30 * sec
	tt.send(t, 1, 30, 30*sec)
	if len(col2.wins) != 1 {
		t.Fatalf("promoted leader emitted %d windows, want 1", len(col2.wins))
	}
	if n := countOf(t, col2.wins[0]); n != 7 {
		t.Errorf("post-failover count = %d, want 7 (1 pre-kill + 6 post)", n)
	}
	if !col2.wins[0].Degraded {
		t.Error("post-failover window not flagged Degraded")
	}
	if s, e := col2.wins[0].WindowStart, col2.wins[0].WindowEnd; s != 10*sec || e != 20*sec {
		t.Errorf("post-failover window [%d,%d), want [10s,20s)", s, e)
	}

	// The zombie: its collect/stop RPCs are stale on every shard, so it
	// can emit nothing — not even on an explicit drain.
	pre := len(col1.wins)
	old.Tick(vc.nanos)
	if _, ok := old.StopQuery(1); !ok {
		t.Error("zombie StopQuery lost its own registration")
	}
	if len(col1.wins) != pre {
		t.Errorf("zombie emitted %d windows after being fenced", len(col1.wins)-pre)
	}

	// The survivor drains cleanly: the 30s tuple is still pending.
	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery on promoted leader missed")
	}
	if stats.DegradedWindows == 0 {
		t.Error("post-failover stats counted no degraded windows")
	}
	if len(col2.wins) != 2 {
		t.Fatalf("drain emitted %d total windows, want 2", len(col2.wins))
	}
	if n := countOf(t, col2.wins[1]); n != 1 {
		t.Errorf("drained count = %d, want 1", n)
	}
}

// TestStandbyAwaitFailover pins the failover trigger contract: never
// before the first leader contact, and only after the configured
// silence once contact was made.
func TestStandbyAwaitFailover(t *testing.T) {
	sb := NewStandby(StandbyOptions{FailoverTimeout: 50 * time.Millisecond})
	stop := make(chan struct{})
	defer close(stop)
	fired := make(chan bool, 1)
	go func() { fired <- sb.AwaitFailover(stop) }()
	select {
	case <-fired:
		t.Fatal("failover fired without ever hearing a leader")
	case <-time.After(200 * time.Millisecond):
	}
	if ack := sb.handleAppend(transport.RepAppend{Term: 1}); !ack.Ok {
		t.Fatalf("heartbeat append NAKed: %+v", ack)
	}
	select {
	case ok := <-fired:
		if !ok {
			t.Fatal("AwaitFailover returned false without stop")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("failover did not fire after leader silence")
	}
}
