package coord

import (
	"fmt"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/obs"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

var testSchema = event.MustSchema("ev",
	event.FieldDef{Name: "v", Kind: event.KindFloat},
)

func testCatalog() *event.Catalog {
	c := event.NewCatalog()
	c.MustRegister(testSchema)
	return c
}

// vclock is a harness-controlled clock (single harness goroutine; reads
// from serve goroutines are ordered by the pipes' synchronous RPCs).
type vclock struct{ nanos int64 }

func (v *vclock) now() time.Time { return time.Unix(0, v.nanos) }

type collector struct{ wins []transport.ResultWindow }

func (c *collector) emit(rw transport.ResultWindow) { c.wins = append(c.wins, rw) }

// testShard is one fake shard process: a node plus the server ends of its
// connections, so tests can kill it.
type testShard struct {
	node  *ShardNode
	conns []*transport.Conn // server ends: coordinator's and router's
}

// kill closes the shard's connections: the next RPC to it fails, exactly
// like a died process.
func (s *testShard) kill() {
	for _, c := range s.conns {
		c.Close()
	}
}

type testTopo struct {
	coord  *Coordinator
	router *Router
	shards []*testShard
}

func newTestTopo(t *testing.T, n int, opts Options) *testTopo {
	t.Helper()
	tt := &testTopo{coord: NewCoordinator(opts)}
	tt.router = NewRouter(func(m transport.BatchManifest) error {
		tt.coord.HandleManifest(m)
		return nil
	}, nil)
	for i := 0; i < n; i++ {
		tt.addShard(t)
	}
	return tt
}

// addShard grows the fabric by one shard process (join).
func (tt *testTopo) addShard(t *testing.T) *testShard {
	t.Helper()
	s := &testShard{node: NewShardNode(testCatalog())}
	addr := fmt.Sprintf("shard-%d", len(tt.shards))
	cc, cs := transport.Pipe()
	go s.node.ServeConn(cs)
	tt.coord.AddShardConn(cc, addr)
	rc, rs := transport.Pipe()
	go s.node.ServeConn(rs)
	tt.router.AddShardConn(addr, rc)
	s.conns = []*transport.Conn{cs, rs}
	tt.shards = append(tt.shards, s)
	tt.router.HandleShardMap(tt.coord.ShardMap())
	return s
}

func (tt *testTopo) close() {
	tt.router.Close()
	tt.coord.Close()
	for _, s := range tt.shards {
		s.kill()
	}
}

func (tt *testTopo) startQuery(t *testing.T, id uint64, src string, lateness time.Duration, col *collector) {
	t.Helper()
	q, err := ql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	qp, err := ql.Analyze(q, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	plan := central.FromPlan(qp, id, 0, 0, 1, 1)
	plan.Text = src
	plan.Lateness = lateness
	if err := tt.coord.StartQuery(plan, col.emit); err != nil {
		t.Fatal(err)
	}
	epoch, ok := tt.coord.QueryEpoch(id)
	if !ok {
		t.Fatalf("query %d has no pinned epoch", id)
	}
	tt.router.PinQuery(id, epoch)
}

// send ships one single-tuple batch through the router.
func (tt *testTopo) send(t *testing.T, id, rid uint64, ts int64) {
	t.Helper()
	err := tt.router.SendBatch(transport.TupleBatch{
		QueryID: id, HostID: "h1", TypeIdx: 0,
		Tuples: []transport.Tuple{{RequestID: rid, TsNanos: ts, Values: []event.Value{event.Float(1)}}},
	})
	if err != nil {
		t.Fatalf("send rid=%d ts=%d: %v", rid, ts, err)
	}
}

const sec = int64(time.Second)

func countOf(t *testing.T, rw transport.ResultWindow) int64 {
	t.Helper()
	if len(rw.Rows) != 1 || len(rw.Rows[0]) < 1 {
		t.Fatalf("window [%d,%d): want one count row, got %v", rw.WindowStart, rw.WindowEnd, rw.Rows)
	}
	n, ok := rw.Rows[0][0].AsInt()
	if !ok {
		t.Fatalf("count column not an int: %v", rw.Rows[0][0])
	}
	return n
}

// TestShardKillMidQuery kills one of two shards mid-query and asserts
// windows keep closing — degraded, with the lost tuples accounted as
// drops — instead of the watermark wedging.
func TestShardKillMidQuery(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	// Window [0,10s): rids 0..5 land 3 per shard (rid % 2).
	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	// ts=12s advances the watermark past 10s+lateness: [0,10s) closes.
	vc.nanos = 12 * sec
	tt.send(t, 1, 6, 12*sec)
	if len(col.wins) != 1 {
		t.Fatalf("want 1 window before the kill, got %d", len(col.wins))
	}
	if col.wins[0].Degraded {
		t.Fatal("window closed before the kill must not be degraded")
	}
	if n := countOf(t, col.wins[0]); n != 6 {
		t.Fatalf("window [0,10s) count = %d, want 6", n)
	}

	// Shard 1 dies. Tuples keep flowing: odd rids now drop at the router,
	// even rids land on the survivor, and the manifests keep the
	// watermark moving.
	tt.shards[1].kill()
	for i := 12; i < 22; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	vc.nanos = 32 * sec
	tt.send(t, 1, 32, 32*sec)
	if len(col.wins) < 2 {
		t.Fatalf("windows stopped closing after shard death: %d total", len(col.wins))
	}
	for _, rw := range col.wins[1:] {
		if !rw.Degraded {
			t.Errorf("window [%d,%d) after shard death not flagged Degraded", rw.WindowStart, rw.WindowEnd)
		}
	}
	// Window [10s,20s): rids 6 (ts 12s, even) and 12..18 even (13s..19s)
	// reached the survivor; odd rids died with shard 1.
	if n := countOf(t, col.wins[1]); n != 5 {
		t.Fatalf("degraded window [10s,20s) count = %d, want 5 (survivor-shard tuples only)", n)
	}

	// A tick sweeps the dead shard out of the membership: epoch bumps and
	// the map shrinks, but the running query keeps its pinned topology.
	epochBefore, _ := tt.coord.QueryEpoch(1)
	tt.coord.Tick(vc.nanos)
	if m := tt.coord.ShardMap(); len(m.Addrs) != 1 || m.Epoch <= epochBefore {
		t.Fatalf("membership after death sweep: %+v (want 1 addr, epoch > %d)", m, epochBefore)
	}
	if e, ok := tt.coord.QueryEpoch(1); !ok || e != epochBefore {
		t.Fatalf("running query's pinned epoch changed: %d -> %d", epochBefore, e)
	}

	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	if stats.DegradedWindows == 0 {
		t.Error("final stats did not count degraded windows")
	}
	if stats.Windows != uint64(len(col.wins)) {
		t.Errorf("stats.Windows = %d, emitted %d", stats.Windows, len(col.wins))
	}
}

// TestShardJoinMidQuery joins a third shard mid-query: the running query
// keeps its 2-shard pin and its results stay exact; a query started after
// the join routes over all three shards.
func TestShardJoinMidQuery(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	for i := 0; i < 4; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}

	tt.addShard(t) // join: epoch bumps, map now 3 shards

	if m := tt.coord.ShardMap(); len(m.Addrs) != 3 {
		t.Fatalf("membership after join: %+v", m)
	}
	// The running query still routes rid%2 and merges from its pinned two
	// shards: deliveries after the join must not disturb it.
	for i := 4; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	vc.nanos = 12 * sec
	tt.send(t, 1, 6, 12*sec)
	if len(col.wins) != 1 {
		t.Fatalf("want 1 closed window, got %d", len(col.wins))
	}
	if rw := col.wins[0]; rw.Degraded || countOf(t, rw) != 6 {
		t.Fatalf("window after join: degraded=%v count=%d, want exact 6", rw.Degraded, countOf(t, rw))
	}

	// A new query pins the post-join epoch and lands on all three shards.
	col2 := &collector{}
	tt.startQuery(t, 2, `select count(*) from ev window 10s`, time.Second, col2)
	for i := 0; i < 6; i++ {
		vc.nanos += sec
		tt.send(t, 2, uint64(i), int64(i+1)*sec)
	}
	st := tt.coord.Status()
	if len(st.Shards) != 3 {
		t.Fatalf("status shards: %d, want 3", len(st.Shards))
	}
	for _, row := range st.Shards {
		if row.Down {
			t.Errorf("shard %d (%s) reported down", row.Index, row.Addr)
		}
		if row.ActiveQueries == 0 {
			t.Errorf("shard %d (%s) has no active queries; join did not distribute", row.Index, row.Addr)
		}
	}
	if _, ok := tt.coord.StopQuery(1); !ok {
		t.Fatal("StopQuery(1) missed")
	}
	if _, ok := tt.coord.StopQuery(2); !ok {
		t.Fatal("StopQuery(2) missed")
	}
}

// TestShardLeaveReMerge stops a query cleanly after a shard has died and
// checks the re-merge at StopQuery: the surviving shard's windows drain
// without divergence — every remaining tuple lands in exactly one final
// window and the drop accounting balances.
func TestShardLeaveReMerge(t *testing.T) {
	vc := &vclock{}
	tt := newTestTopo(t, 2, Options{Clock: vc.now, LeaseTTL: time.Hour})
	defer tt.close()
	col := &collector{}
	tt.startQuery(t, 1, `select count(*) from ev window 10s`, time.Second, col)

	for i := 0; i < 6; i++ {
		vc.nanos = int64(i+1) * sec
		tt.send(t, 1, uint64(i), int64(i+1)*sec)
	}
	tt.shards[1].kill()
	// Open window [0,10s) holds 3 tuples on each shard; shard 1's three
	// are unrecoverable. Stop must still drain shard 0's partials.
	stats, ok := tt.coord.StopQuery(1)
	if !ok {
		t.Fatal("StopQuery missed")
	}
	if len(col.wins) != 1 {
		t.Fatalf("drain emitted %d windows, want 1", len(col.wins))
	}
	rw := col.wins[0]
	if !rw.Degraded {
		t.Error("drained window after shard death not flagged Degraded")
	}
	if n := countOf(t, rw); n != 3 {
		t.Errorf("drained window count = %d, want 3 (surviving shard)", n)
	}
	if stats.TuplesIn != 3 {
		t.Errorf("stats.TuplesIn = %d, want 3", stats.TuplesIn)
	}
}

// TestRouterFallback: a query with no epoch pin goes to the fallback sink
// whole — the single-process central path.
func TestRouterFallback(t *testing.T) {
	var got []transport.TupleBatch
	r := NewRouter(func(transport.BatchManifest) error { return nil },
		func(b transport.TupleBatch) error { got = append(got, b); return nil })
	b := transport.TupleBatch{QueryID: 9, HostID: "h", Tuples: []transport.Tuple{{RequestID: 1}}}
	if err := r.SendBatch(b); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Tuples) != 1 {
		t.Fatalf("fallback did not receive the whole batch: %+v", got)
	}

	// Without a fallback, an unpinned query is an error, not silence.
	r2 := NewRouter(func(transport.BatchManifest) error { return nil }, nil)
	if err := r2.SendBatch(b); err == nil {
		t.Fatal("unpinned query with no fallback must error")
	}
}

// TestCoordMetricsZeroAlloc pins the scrub_coord_* update paths to zero
// allocations, like the other components' hot counters.
func TestCoordMetricsZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	m := newCoordMetrics(reg)
	lag := m.shardLag("shard-0")
	if allocs := testing.AllocsPerRun(200, func() {
		m.manifests.Inc()
		m.tuples.Add(17)
		m.merges.Inc()
		m.rebalances.Inc()
		m.setMembership(4, 9)
		lag.Set(123456)
	}); allocs != 0 {
		t.Fatalf("metric updates allocate: %v allocs/op", allocs)
	}
}

// TestMetricsMembershipSeries: shard lag gauges appear on join and vanish
// on leave.
func TestMetricsMembershipSeries(t *testing.T) {
	reg := obs.NewRegistry()
	vc := &vclock{}
	c := NewCoordinator(Options{Clock: vc.now, Metrics: reg})
	a1, b1 := transport.Pipe()
	defer b1.Close()
	node := NewShardNode(testCatalog())
	go node.ServeConn(b1)
	c.AddShardConn(a1, "s0")

	found := func(name string) bool {
		for _, s := range reg.Snapshot() {
			if s.Name == name {
				return true
			}
		}
		return false
	}
	if !found("scrub_coord_shard_lag_ns") {
		t.Fatal("per-shard lag gauge not registered on join")
	}
	if !found("scrub_coord_shards") || !found("scrub_coord_epoch") {
		t.Fatal("membership gauges not registered")
	}
	a1.Close()
	// Force the down flag, then sweep.
	if err := c.members[0].ping(1); err == nil {
		t.Fatal("ping over closed conn should fail")
	}
	c.Tick(0)
	if found("scrub_coord_shard_lag_ns") {
		t.Fatal("per-shard lag gauge not unregistered on leave")
	}
}
