package coord

import (
	"sync"
	"time"

	"scrub/internal/central"
	"scrub/internal/transport"
)

// Leader-side control-plane replication.
//
// The replicated log carries exactly the state a takeover needs and
// nothing else: query registrations (wire-form plan text plus the pinned
// shard epoch and replay deadline), query stops, and membership
// transitions. The high-rate manifest/partial flow is deliberately not
// replicated — window state lives on the shards as collectible encoded
// partials, so any merger that knows the registrations can resume the
// merge by re-collecting. That keeps replication at control-plane rate:
// one synchronous append per StartQuery/StopQuery/epoch bump, plus
// heartbeats.
//
// This is Raft's configuration-replication shape without its election
// half: safety against split brain comes from shard-side fencing (a
// promoted standby installs a strictly higher fencing epoch, and shards
// reject collect/stop RPCs below it), not from quorum voting, so a
// single standby — or several, rank-staggered — is a valid deployment.

// defaultHeartbeat is the leader heartbeat interval when
// ReplicationConfig leaves it zero.
const defaultHeartbeat = 250 * time.Millisecond

// repPeer is one standby the leader replicates to. The underlying
// shardClient provides the serialized seq-matched RPC channel and the
// down latch; acked tracks how much of the log the standby has applied.
type repPeer struct {
	sc    *shardClient
	acked uint64
}

// replicator owns the leader's in-memory log and its standby peers. The
// log is never truncated: it holds control-plane transitions only, so
// its size is bounded by query/membership churn, and a late-joining
// standby can always be caught up from index 0.
//
// Lock order: Coordinator.mu may be held when replicator.mu is taken
// (appends fire under the coordinator lock); replicator.mu may be held
// when a peer shardClient.mu is taken. Never the reverse.
type replicator struct {
	term uint64
	hb   time.Duration

	mu    sync.Mutex
	log   []transport.RepEntry
	peers []*repPeer

	stopCh chan struct{}
	done   chan struct{}
}

func newReplicator(term uint64, hb time.Duration) *replicator {
	if hb <= 0 {
		hb = defaultHeartbeat
	}
	r := &replicator{
		term:   term,
		hb:     hb,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go r.heartbeatLoop()
	return r
}

// append extends the log and pushes it to every live standby
// synchronously. Replication is best effort: a standby that fails or
// NAKs from a higher term is latched down and skipped from then on —
// the leader never blocks the control plane on a dead peer, and a peer
// with a higher term has promoted, which the shards' fencing already
// protects against.
func (r *replicator) append(entries ...transport.RepEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log = append(r.log, entries...)
	r.syncPeersLocked()
}

// addPeer registers a standby and immediately catches it up from log
// index 0.
func (r *replicator) addPeer(sc *shardClient) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &repPeer{sc: sc}
	r.peers = append(r.peers, p)
	r.syncPeerLocked(p)
}

func (r *replicator) syncPeersLocked() {
	for _, p := range r.peers {
		r.syncPeerLocked(p)
	}
}

func (r *replicator) syncPeerLocked(p *repPeer) {
	if p.sc.isDown() {
		return
	}
	// Up to two rounds: one send, one retransmission if the standby's
	// applied index regressed below what we believed (restart).
	for attempt := 0; attempt < 2; attempt++ {
		ack, err := p.sc.repAppend(r.term, p.acked, r.log[p.acked:])
		if err != nil {
			return // client latched down
		}
		if ack.Ok {
			p.acked = ack.Index
			return
		}
		if ack.Term > r.term {
			// The standby promoted past us: this leader is deposed. Stop
			// replicating to it; the shards' fencing rejects our RPCs.
			p.sc.close()
			return
		}
		if ack.Index < p.acked {
			p.acked = ack.Index
			continue
		}
		return
	}
}

// heartbeatLoop keeps standbys' failover timers fed and doubles as the
// catch-up path for peers that missed an append.
func (r *replicator) heartbeatLoop() {
	defer close(r.done)
	t := time.NewTicker(r.hb)
	defer t.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-t.C:
			r.mu.Lock()
			r.syncPeersLocked()
			r.mu.Unlock()
		}
	}
}

func (r *replicator) stop() {
	close(r.stopCh)
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.peers {
		p.sc.close()
	}
}

// ReplicationConfig configures a leader's standby replication.
type ReplicationConfig struct {
	// Term is the leader's fencing term (and epoch stamped into shard
	// RPCs); 0 means 1. A promoted standby that adds new standbys keeps
	// its own, higher term.
	Term uint64
	// Heartbeat is the standby keepalive interval; 0 means 250ms. It
	// must be well below the standbys' failover timeout.
	Heartbeat time.Duration
}

// Fence reports the coordinator's fencing epoch (0 when standalone).
func (c *Coordinator) Fence() uint64 { return c.fence }

// StartReplication turns this coordinator into a replicating leader:
// its fencing epoch becomes cfg.Term and every subsequent registration,
// stop and membership change is appended to the replicated log. Call it
// at boot, before standbys are added with AddStandby; current state is
// snapshotted into the log so later joiners recover it.
func (c *Coordinator) StartReplication(cfg ReplicationConfig) {
	term := cfg.Term
	if term == 0 {
		term = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rep != nil {
		return
	}
	if c.fence < term {
		c.fence = term
	}
	c.rep = newReplicator(c.fence, cfg.Heartbeat)
	// Snapshot current state so replication can start at any point in
	// the coordinator's life, not only on an empty one.
	m := c.shardMapLocked()
	c.rep.append(transport.RepEntry{
		Kind: transport.RepMembership, MapEpoch: m.Epoch, Addrs: m.Addrs,
	})
	for _, cq := range c.queries {
		if !cq.installed {
			continue
		}
		c.rep.append(startEntry(cq.qr.Plan(), cq))
	}
}

// AddStandby dials a standby's replication address and catches it up.
func (c *Coordinator) AddStandby(addr string) error {
	conn, err := transport.Dial(addr, rpcTimeout)
	if err != nil {
		return err
	}
	c.AddStandbyConn(conn, addr)
	return nil
}

// AddStandbyConn registers a standby over an established connection
// (pipes, tests). StartReplication must have been called.
func (c *Coordinator) AddStandbyConn(conn *transport.Conn, addr string) {
	c.mu.Lock()
	rep := c.rep
	c.mu.Unlock()
	if rep == nil {
		conn.Close()
		return
	}
	rep.addPeer(newShardClient(conn, addr))
}

// startEntry builds the replicated registration for an installed query.
func startEntry(plan *central.Plan, cq *coordQuery) transport.RepEntry {
	return transport.RepEntry{
		Kind:           transport.RepQueryStart,
		Start:          ShardStartFromPlan(plan),
		PinEpoch:       cq.epoch,
		ReplayDeadline: cq.replayDeadline,
	}
}
