package coord

import (
	"sync"

	"scrub/internal/obs"
)

// coordMetrics bundles the coordinator's registered series; a nil
// *coordMetrics (no registry configured) costs one pointer check per
// operation, exactly like centralMetrics in internal/central.
type coordMetrics struct {
	reg *obs.Registry

	shards     *obs.Gauge   // current shard membership size
	epoch      *obs.Gauge   // current shard-map epoch
	manifests  *obs.Counter // batch manifests processed
	tuples     *obs.Counter // raw tuples the manifests accounted for
	merges     *obs.Counter // window-partial merge folds performed
	rebalances *obs.Counter // membership changes (joins, leaves, deaths)

	mu    sync.Mutex
	lagOf map[string]*obs.Gauge // per-shard last-contact lag, by address
}

func newCoordMetrics(reg *obs.Registry) *coordMetrics {
	if reg == nil {
		return nil
	}
	return &coordMetrics{
		reg:        reg,
		shards:     reg.Gauge("scrub_coord_shards", "current shard membership size"),
		epoch:      reg.Gauge("scrub_coord_epoch", "current shard-map epoch"),
		manifests:  reg.Counter("scrub_coord_manifests_total", "batch manifests processed"),
		tuples:     reg.Counter("scrub_coord_manifest_tuples_total", "raw tuples accounted for by manifests"),
		merges:     reg.Counter("scrub_coord_merges_total", "window partial merges folded"),
		rebalances: reg.Counter("scrub_coord_rebalances_total", "shard membership changes"),
		lagOf:      make(map[string]*obs.Gauge),
	}
}

// setMembership updates the shard-count and epoch gauges.
func (m *coordMetrics) setMembership(shards int, epoch uint32) {
	if m == nil {
		return
	}
	m.shards.Set(int64(shards))
	m.epoch.Set(int64(epoch))
}

// shardLag returns (creating on first use) the lag gauge for one shard.
func (m *coordMetrics) shardLag(addr string) *obs.Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.lagOf[addr]
	if !ok {
		g = m.reg.Gauge("scrub_coord_shard_lag_ns", "nanoseconds since the shard's last successful RPC", obs.L("shard", addr))
		m.lagOf[addr] = g
	}
	return g
}

// dropShard unregisters a departed shard's labeled series.
func (m *coordMetrics) dropShard(addr string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.lagOf[addr]; ok {
		delete(m.lagOf, addr)
		m.reg.Unregister("scrub_coord_shard_lag_ns", obs.L("shard", addr))
	}
}
