package coord

import (
	"fmt"
	"sync"

	"scrub/internal/transport"
)

// ManifestFunc delivers one routed batch's manifest to the coordinator.
// It must be synchronous: the router only calls it after every shard ack
// for the batch arrived, and the coordinator relies on that ordering
// (shard state for a batch is applied before its manifest is processed).
type ManifestFunc func(transport.BatchManifest) error

// NewManifestClient wraps a connection to the coordinator's data plane
// into a ManifestFunc doing synchronous BatchManifest → ManifestAck
// round-trips. Safe for concurrent use.
func NewManifestClient(conn *transport.Conn) ManifestFunc {
	mc := newShardClient(conn, "coordinator")
	return func(m transport.BatchManifest) error {
		resp, seq, err := mc.do(func(s uint64) transport.Message { m.Seq = s; return m })
		if err != nil {
			return err
		}
		ack, ok := resp.(transport.ManifestAck)
		if !ok || ack.Seq != seq {
			return mc.seqErr(resp)
		}
		return nil
	}
}

// routeKey identifies one (query, host, type) stream for cumulative
// route-failure accounting.
type routeKey struct {
	query   uint64
	host    string
	typeIdx uint8
}

// Router is the host-side half of the shard fabric: a host.Sink that
// splits every tuple batch across the shards of the query's pinned
// epoch by request-id modulo shard count, collects the synchronous
// shard acks, and reports the folded manifest to the coordinator.
//
// Tuples that cannot reach their shard (dead shard, send failure) fold
// into the stream's cumulative drop counter and ride the manifest's
// QueueDrops field — same wire contract as host-side queue drops, so
// the coordinator needs no extra failure channel.
type Router struct {
	manifest ManifestFunc
	// fallback receives whole batches for queries with no epoch pin
	// (ShardEpoch 0: a single-process central). Nil means such batches
	// error out — a shard-fabric-only deployment.
	fallback func(transport.TupleBatch) error

	mu      sync.Mutex
	maps    map[uint32][]string // epoch -> shard addresses
	pins    map[uint64]uint32   // query -> pinned epoch
	clients map[string]*shardClient
	drops   map[routeKey]uint64
	// fence is the highest coordinator fencing epoch seen on a ShardMap
	// push; pushes below it come from a deposed leader and are ignored.
	fence uint64
}

// NewRouter creates a router reporting manifests through manifest.
// fallback (optional) handles batches for unpinned queries.
func NewRouter(manifest ManifestFunc, fallback func(transport.TupleBatch) error) *Router {
	return &Router{
		manifest: manifest,
		fallback: fallback,
		maps:     make(map[uint32][]string),
		pins:     make(map[uint64]uint32),
		clients:  make(map[string]*shardClient),
		drops:    make(map[routeKey]uint64),
	}
}

// SetMap installs one epoch's shard membership (from a ShardMap push).
// Old epochs stay resolvable: queries pinned to them outlive the change.
func (r *Router) SetMap(epoch uint32, addrs []string) {
	if epoch == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.maps[epoch] = append([]string(nil), addrs...)
}

// HandleShardMap is SetMap for a received push message, with fencing: a
// push whose Fence is below the highest seen is a deposed leader trying
// to redirect routing and is dropped. Fences only ratchet up, so pushes
// from the current leader (same fence) keep applying.
func (r *Router) HandleShardMap(m transport.ShardMap) {
	r.mu.Lock()
	if m.Fence < r.fence {
		r.mu.Unlock()
		return
	}
	r.fence = m.Fence
	r.mu.Unlock()
	r.SetMap(m.Epoch, m.Addrs)
}

// PinQuery pins a query's routing to a shard-map epoch (from
// HostQuery.ShardEpoch). Epoch 0 means unpinned: the fallback sink
// handles the query's batches whole.
func (r *Router) PinQuery(id uint64, epoch uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch == 0 {
		delete(r.pins, id)
		return
	}
	r.pins[id] = epoch
}

// UnpinQuery forgets a stopped query's pin and drop counters.
func (r *Router) UnpinQuery(id uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.pins, id)
	for k := range r.drops {
		if k.query == id {
			delete(r.drops, k)
		}
	}
}

// AddShardConn installs an established connection (pipes, tests) as the
// client for addr, instead of dialing on first use.
func (r *Router) AddShardConn(addr string, conn *transport.Conn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clients[addr] = newShardClient(conn, addr)
}

// clientFor returns (dialing if needed) the client for a shard address.
// A down client stays down — re-dial policy belongs to membership
// changes (a recovered shard rejoins under a new epoch), not the data
// path.
func (r *Router) clientFor(addr string) *shardClient {
	r.mu.Lock()
	sc, ok := r.clients[addr]
	r.mu.Unlock()
	if ok {
		return sc
	}
	sc, err := dialShard(addr)
	if err != nil {
		sc = &shardClient{addr: addr}
		sc.down.Store(true)
	}
	r.mu.Lock()
	if cur, ok := r.clients[addr]; ok {
		r.mu.Unlock()
		sc.close()
		return cur
	}
	r.clients[addr] = sc
	r.mu.Unlock()
	return sc
}

// Close tears down every shard connection.
func (r *Router) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sc := range r.clients {
		sc.close()
	}
}

// SendBatch implements host.Sink: split by request id over the pinned
// epoch's shards, apply synchronously, fold the acks, report the
// manifest. The sub-batches alias the caller's pooled tuple memory, but
// every send completes (encoding copies the bytes) before return.
func (r *Router) SendBatch(b transport.TupleBatch) error {
	r.mu.Lock()
	epoch, pinned := r.pins[b.QueryID]
	addrs := r.maps[epoch]
	r.mu.Unlock()
	if !pinned {
		if r.fallback != nil {
			return r.fallback(b)
		}
		return fmt.Errorf("coord: query %d has no shard-epoch pin and no fallback sink", b.QueryID)
	}
	if len(addrs) == 0 {
		return fmt.Errorf("coord: no shard map for epoch %d", epoch)
	}
	clients := make([]*shardClient, len(addrs))
	for i, addr := range addrs {
		clients[i] = r.clientFor(addr)
	}
	key := routeKey{query: b.QueryID, host: b.HostID, typeIdx: b.TypeIdx}
	r.mu.Lock()
	cum := r.drops[key]
	r.mu.Unlock()
	m := routeToShards(b, clients, &cum)
	r.mu.Lock()
	r.drops[key] = cum
	r.mu.Unlock()
	return r.manifest(m)
}

// routeToShards fans one batch out across the shard clients by
// request-id modulo shard count and folds the acks into a manifest.
//
// Unlike ShardedEngine.HandleBatch, no span filter runs here: the shard
// applies the identical filter itself (Engine.ApplyDriven), and its acks
// report HasTs/MaxTs over in-span tuples only — so the folded manifest
// carries exactly what the in-process merger would have observed, while
// the router stays plan-free. cumDrops accumulates tuples that could not
// reach a live shard; the manifest's QueueDrops carries the sum of the
// host's own drops and the routing failures.
func routeToShards(b transport.TupleBatch, clients []*shardClient, cumDrops *uint64) transport.BatchManifest {
	m := transport.BatchManifest{
		QueryID:       b.QueryID,
		HostID:        b.HostID,
		TypeIdx:       b.TypeIdx,
		RawTuples:     uint64(len(b.Tuples)),
		ShardLate:     make([]uint64, len(clients)),
		ShardOverflow: make([]uint64, len(clients)),
		MatchedTotal:  b.MatchedTotal,
		SampledTotal:  b.SampledTotal,
		EffRate:       b.EffRate,
		BudgetShed:    b.BudgetShed,
		CPUNs:         b.CPUNs,
		ShipBytes:     b.ShipBytes,
		ReplayEpoch:   b.ReplayEpoch,
		ReplayDone:    b.ReplayDone,
	}
	n := uint64(len(clients))
	sub := make([][]transport.Tuple, len(clients))
	for _, t := range b.Tuples {
		i := int(t.RequestID % n)
		// Sub-batches alias the caller's pooled tuple memory only within
		// this call: each send below encodes synchronously before return.
		//scrub:allowretain(synchronous fan-out; sends encode before routeToShards returns)
		sub[i] = append(sub[i], t)
	}
	for i, tuples := range sub {
		if len(tuples) == 0 {
			continue
		}
		sc := clients[i]
		if sc == nil || sc.isDown() {
			*cumDrops += uint64(len(tuples))
			continue
		}
		ack, err := sc.apply(transport.ShardSubBatch{
			QueryID: b.QueryID, HostID: b.HostID, TypeIdx: b.TypeIdx,
			Tuples: tuples,
		})
		if err != nil {
			*cumDrops += uint64(len(tuples))
			continue
		}
		if !ack.Known {
			continue
		}
		if ack.HasTs && (!m.HasTs || ack.MaxTs > m.MaxTs) {
			m.MaxTs = ack.MaxTs
		}
		m.HasTs = m.HasTs || ack.HasTs
		m.LateDelta += ack.LateDelta
		m.ShardLate[i] = ack.Late
		m.ShardOverflow[i] = ack.Overflow
	}
	m.QueueDrops = b.QueueDrops + *cumDrops
	return m
}
