package coord

import (
	"fmt"
	"sync/atomic"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

// ShardNode is one shard process's serving side: a driven central.Engine
// behind a per-connection RPC loop. Windows never close here — the
// coordinator's collect barriers are the only close authority — so a
// shard holds state, absorbs sub-batches, and answers collect/stop/stats.
//
// The node also enforces coordinator fencing: it latches the highest
// fencing epoch any start/collect/stop/fence RPC has carried and rejects
// state-draining RPCs from lower epochs. A deposed leader therefore
// cannot collect or drain windows after a standby took over — the
// takeover's higher epoch fences it out on first contact.
type ShardNode struct {
	eng   *central.Engine
	cat   *event.Catalog
	fence atomic.Uint64
}

// NewShardNode creates a shard node over cat. The engine never registers
// metrics of its own: ingest accounting lives at the coordinator, which
// is the only component that sees whole batches.
func NewShardNode(cat *event.Catalog) *ShardNode {
	return &ShardNode{eng: central.NewEngine(), cat: cat}
}

// Engine exposes the underlying driven engine (tests).
func (n *ShardNode) Engine() *central.Engine { return n.eng }

// Fence reports the highest fencing epoch the node has latched.
func (n *ShardNode) Fence() uint64 { return n.fence.Load() }

// admitFence latches f if it is at least the current fencing epoch and
// reports whether the caller is current. Equal epochs are admitted: the
// same leader may speak over many connections.
func (n *ShardNode) admitFence(f uint64) bool {
	for {
		cur := n.fence.Load()
		if f < cur {
			return false
		}
		if f == cur || n.fence.CompareAndSwap(cur, f) {
			return true
		}
	}
}

// Serve accepts connections until the listener closes. Each connection
// gets its own RPC loop; the engine serializes internally.
func (n *ShardNode) Serve(l *transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go n.ServeConn(c)
	}
}

// ServeConn answers RPCs on one connection until it fails or closes.
func (n *ShardNode) ServeConn(c *transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		var resp transport.Message
		switch t := m.(type) {
		case transport.ShardStart:
			resp = n.handleStart(t)
		case transport.ShardSubBatch:
			ack, known := n.eng.ApplyDriven(transport.TupleBatch{
				QueryID: t.QueryID, HostID: t.HostID, TypeIdx: t.TypeIdx,
				Tuples: t.Tuples,
			})
			resp = transport.ShardBatchAck{
				Seq: t.Seq, Known: known,
				HasTs: ack.HasTs, MaxTs: ack.MaxTs,
				LateDelta: ack.LateDelta, Late: ack.Late, Overflow: ack.Overflow,
			}
		case transport.ShardCollectReq:
			if !n.admitFence(t.Fence) {
				resp = transport.ShardPartials{Seq: t.Seq, Stale: true}
				break
			}
			partials, late, overflow, found := n.eng.CollectDriven(t.QueryID, t.Bound)
			resp = transport.ShardPartials{
				Seq: t.Seq, Found: found, Partials: toWirePartials(partials),
				Late: late, Overflow: overflow,
			}
		case transport.ShardStopReq:
			if !n.admitFence(t.Fence) {
				resp = transport.ShardPartials{Seq: t.Seq, Stale: true}
				break
			}
			partials, drops, found := n.eng.DrainDriven(t.QueryID)
			resp = transport.ShardPartials{
				Seq: t.Seq, Found: found, Partials: toWirePartials(partials),
				Late: drops,
			}
		case transport.ShardFence:
			ack := transport.ShardFenceAck{Seq: t.Seq, Ok: n.admitFence(t.Fence)}
			ack.Fence = n.fence.Load()
			if ack.Ok {
				ack.Queries = n.eng.ActiveQueries()
			}
			resp = ack
		case transport.ShardStatsReq:
			resp = n.handleStats(t)
		case transport.Ping:
			resp = transport.Pong{Nonce: t.Nonce}
		default:
			// Unknown messages are ignored rather than answered: replying
			// out of band would desynchronize the caller's sequence.
			continue
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handleStart re-analyzes the query text against the shard's own catalog
// and overlays the deployment facts the coordinator resolved, then
// installs the query in driven mode. Re-analysis (rather than shipping a
// compiled plan) keeps the wire format free of expression trees; the
// differential oracle holds both analyses to identical semantics.
//
// Starts are idempotent per query id: a promoted standby re-installs
// every replicated registration, and a shard that already runs the query
// must keep its absorbed window state rather than error or reset.
func (n *ShardNode) handleStart(t transport.ShardStart) transport.ShardAck {
	if !n.admitFence(t.Fence) {
		return transport.ShardAck{Seq: t.Seq, Err: "stale fencing epoch"}
	}
	for _, id := range n.eng.ActiveQueries() {
		if id == t.QueryID {
			return transport.ShardAck{Seq: t.Seq}
		}
	}
	cp, err := PlanFromShardStart(t, n.cat)
	if err != nil {
		return transport.ShardAck{Seq: t.Seq, Err: err.Error()}
	}
	if err := n.eng.StartDriven(cp); err != nil {
		return transport.ShardAck{Seq: t.Seq, Err: err.Error()}
	}
	return transport.ShardAck{Seq: t.Seq}
}

func (n *ShardNode) handleStats(t transport.ShardStatsReq) transport.ShardStatsResp {
	resp := transport.ShardStatsResp{
		Seq:           t.Seq,
		ActiveQueries: uint32(len(n.eng.ActiveQueries())),
	}
	if t.QueryID != 0 {
		st, found := n.eng.Stats(t.QueryID)
		resp.Found = found
		resp.TuplesIn = st.TuplesIn
	} else {
		// QueryID 0 asks for the node view (coordinator Status rows):
		// tuples across every active query.
		resp.Found = true
		for _, id := range n.eng.ActiveQueries() {
			if st, ok := n.eng.Stats(id); ok {
				resp.TuplesIn += st.TuplesIn
			}
		}
	}
	return resp
}

// PlanFromShardStart rebuilds the central plan a ShardStart describes:
// parse and analyze the text, then apply the coordinator's resolved
// values verbatim — they are post-defaults, so every override is
// unconditional and the shard plan matches the coordinator's bit for bit.
func PlanFromShardStart(t transport.ShardStart, cat *event.Catalog) (central.Plan, error) {
	q, err := ql.Parse(t.Text)
	if err != nil {
		return central.Plan{}, fmt.Errorf("coord: shard parse: %w", err)
	}
	plan, err := ql.Analyze(q, cat)
	if err != nil {
		return central.Plan{}, fmt.Errorf("coord: shard analyze: %w", err)
	}
	cp := central.FromPlan(plan, t.QueryID, t.StartNanos, t.EndNanos,
		int(t.TotalHosts), int(t.SampledHosts))
	cp.Text = t.Text
	cp.Replay = time.Duration(t.ReplayNanos)
	cp.SampleEvents = t.SampleEvents
	cp.Confidence = t.Confidence
	cp.MaxRawRows = int(t.MaxRawRows)
	cp.MaxJoinPending = int(t.MaxJoinPending)
	cp.BudgetCPUPct = t.BudgetCPUPct
	cp.BudgetBytesPerSec = t.BudgetBytesPerSec
	return cp, nil
}

// ShardStartFromPlan is the inverse mapping, built from a post-defaults
// plan at the coordinator.
func ShardStartFromPlan(p *central.Plan) transport.ShardStart {
	return transport.ShardStart{
		QueryID:           p.QueryID,
		Text:              p.Text,
		StartNanos:        p.StartNanos,
		EndNanos:          p.EndNanos,
		ReplayNanos:       int64(p.Replay),
		TotalHosts:        uint32(p.TotalHosts),
		SampledHosts:      uint32(p.SampledHosts),
		SampleEvents:      p.SampleEvents,
		Confidence:        p.Confidence,
		MaxRawRows:        uint32(p.MaxRawRows),
		MaxJoinPending:    uint32(p.MaxJoinPending),
		BudgetCPUPct:      p.BudgetCPUPct,
		BudgetBytesPerSec: p.BudgetBytesPerSec,
	}
}

func toWirePartials(ps []central.EncodedPartial) []transport.WindowPartial {
	if len(ps) == 0 {
		return nil
	}
	out := make([]transport.WindowPartial, len(ps))
	for i, p := range ps {
		out[i] = transport.WindowPartial{Start: p.Start, End: p.End, Data: p.Data}
	}
	return out
}
