package coord

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scrub/internal/central"
	"scrub/internal/liveness"
	"scrub/internal/obs"
	"scrub/internal/transport"
)

// Options configures a Coordinator. The zero value matches the central
// engines' defaults, which matters: the differential oracle only holds if
// lease TTLs and clocks agree across executors.
type Options = central.Options

// Coordinator is the control plane and merge layer of a distributed
// ScrubCentral. It owns query registration and shard membership, folds
// batch manifests into per-stream liveness and watermark state exactly
// like ShardedEngine.HandleBatch, and pulls serialized window partials
// from the shards at close barriers to merge, render and emit them.
//
// It implements central.Executor, so the query server can drive a
// coordinator wherever it would drive an in-process engine.
type Coordinator struct {
	opt central.Options
	met *coordMetrics

	// fence is this coordinator's fencing epoch, stamped into every
	// start/collect/stop RPC and shard-map push. Standalone deployments
	// run at 0; a leader with standbys runs at its replication term, and
	// a promoted standby takes over at a strictly higher term, so shards
	// reject the deposed leader's RPCs. Immutable after construction.
	fence uint64

	mu         sync.Mutex
	members    []*shardClient
	epoch      uint32
	merges     uint64
	rebalances uint64
	queries    map[uint64]*coordQuery
	onMap      func(transport.ShardMap)
	rep        *replicator // nil unless StartReplication was called
}

var _ central.Executor = (*Coordinator)(nil)

// coordQuery mirrors shardedQuery (internal/central/sharded.go) across
// process boundaries. The one structural difference: emitted drop totals
// come from cached cumulative per-shard counters — max-folded from
// manifests and refreshed by every collect response — instead of polling
// the shards in-process at emit time. Collect barriers refresh the cache
// on every live shard before any flush, so at emit the cache equals what
// dropsOf would have returned.
type coordQuery struct {
	qr   *central.QueryRuntime
	emit central.EmitFunc

	// installed flips true once every pinned shard accepted the start.
	// Until then the entry only reserves the query id: manifests and
	// batches are dropped (their tuples never reached a registered shard
	// query) and StopQuery reports the query unknown, so a rolled-back
	// start never races concurrent traffic folding state into it.
	installed bool

	// Topology pinned at StartQuery: the shard list of the then-current
	// epoch. Membership changes never touch a running query.
	epoch         uint32
	shards        []*shardClient
	shardLate     []uint64 // cumulative window-late drops, by shard index
	shardOverflow []uint64 // cumulative overflow drops, by shard index
	// topoDegraded latches when a pinned shard dies or a partial fails to
	// decode: part of the query's state is unreachable, so every window
	// from then on is flagged Degraded rather than silently incomplete.
	topoDegraded bool

	streams    *liveness.Table
	pending    map[int64]*central.PartialWindow
	stats      transport.QueryStats
	mergeDrops uint64
	// stoppedShardDrops carries the shards' final drop totals once
	// StopQuery has torn the shard queries down (see shardedQuery).
	stoppedShardDrops uint64
	// routeDrops tracks cumulative router send failures per stream for the
	// legacy whole-batch path (HandleBatch), where the coordinator routes
	// on behalf of hosts that predate shard maps.
	routeDrops map[liveness.Key]uint64

	replayHold     bool
	replayDeadline int64
}

// NewCoordinator creates a coordinator with no shards. Register shards
// with AddShard/AddShardConn/HandleHello before starting queries.
func NewCoordinator(opt Options) *Coordinator {
	if opt.LeaseTTL <= 0 {
		opt.LeaseTTL = liveness.DefaultTTL
	}
	if opt.Clock == nil {
		opt.Clock = time.Now
	}
	return &Coordinator{
		opt:     opt,
		met:     newCoordMetrics(opt.Metrics),
		queries: make(map[uint64]*coordQuery),
	}
}

// MetricsRegistry returns the registry the coordinator was configured
// with (nil if none).
func (c *Coordinator) MetricsRegistry() *obs.Registry { return c.opt.Metrics }

// AddShard dials a shard's data address and adds it to the membership,
// bumping the shard-map epoch.
func (c *Coordinator) AddShard(addr string) error {
	sc, err := dialShard(addr)
	if err != nil {
		return err
	}
	c.addClient(sc)
	return nil
}

// AddShardConn adds a shard over an established connection (pipes,
// tests), bumping the shard-map epoch.
func (c *Coordinator) AddShardConn(conn *transport.Conn, addr string) {
	c.addClient(newShardClient(conn, addr))
}

// HandleHello admits a shard that announced itself on the data plane.
func (c *Coordinator) HandleHello(h transport.ShardHello) error {
	return c.AddShard(h.DataAddr)
}

func (c *Coordinator) addClient(sc *shardClient) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.members = append(c.members, sc)
	c.bumpEpochLocked()
	if g := c.met.shardLag(sc.addr); g != nil {
		g.Set(sc.lagNanos())
	}
}

// bumpEpochLocked advances the shard-map epoch after a membership change
// and pushes the new map to whoever subscribed with OnShardMap.
func (c *Coordinator) bumpEpochLocked() {
	c.epoch++
	c.rebalances++
	if c.met != nil {
		c.met.rebalances.Inc()
	}
	c.met.setMembership(len(c.members), c.epoch)
	if c.onMap != nil {
		c.onMap(c.shardMapLocked())
	}
	if c.rep != nil {
		m := c.shardMapLocked()
		c.rep.append(transport.RepEntry{
			Kind: transport.RepMembership, MapEpoch: m.Epoch, Addrs: m.Addrs,
		})
	}
}

func (c *Coordinator) shardMapLocked() transport.ShardMap {
	m := transport.ShardMap{Epoch: c.epoch, Fence: c.fence}
	for _, sc := range c.members {
		m.Addrs = append(m.Addrs, sc.addr)
	}
	return m
}

// ShardMap returns the current epoch-numbered membership.
func (c *Coordinator) ShardMap() transport.ShardMap {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shardMapLocked()
}

// OnShardMap registers the push hook for membership changes and fires it
// once with the current map. The hook runs with the coordinator locked:
// it must hand the map off (enqueue, send) without calling back in.
func (c *Coordinator) OnShardMap(fn func(transport.ShardMap)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onMap = fn
	if fn != nil {
		fn(c.shardMapLocked())
	}
}

// QueryEpoch reports the shard-map epoch a running query is pinned to,
// for stamping HostQuery.ShardEpoch at registration fan-out.
func (c *Coordinator) QueryEpoch(id uint64) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq, ok := c.queries[id]
	if !ok {
		return 0, false
	}
	return cq.epoch, true
}

// removeDownLocked drops dead shards from the membership (their pinned
// queries keep their clients and degrade; only new queries see the
// shrunken map) and bumps the epoch if anything changed.
//
// The dead client is NOT closed here: it is already latched down (down
// latches exactly when failLocked closed the connection, and the latch is
// never cleared), and queries pinned to it still hold it in cq.shards.
// Their collect/stop calls keep failing fast on the latch and take the
// degrade path — drop caches folded, Degraded flagged — rather than
// dereferencing a client whose contract was torn up underneath them.
func (c *Coordinator) removeDownLocked() {
	kept := c.members[:0]
	changed := false
	for _, sc := range c.members {
		if sc.isDown() {
			changed = true
			c.met.dropShard(sc.addr)
			continue
		}
		kept = append(kept, sc)
	}
	c.members = kept
	if changed {
		c.bumpEpochLocked()
	}
}

// StartQuery implements central.Executor: compile, pin the current shard
// list and epoch, then install the query on every pinned shard (rolling
// back on failure). The plan must carry its source text — shards
// re-analyze it against their own catalogs.
func (c *Coordinator) StartQuery(p central.Plan, emit central.EmitFunc) error {
	if emit == nil {
		return fmt.Errorf("coord: nil emit")
	}
	qr, err := central.CompileQuery(p)
	if err != nil {
		return err
	}
	plan := qr.Plan()
	if plan.Text == "" {
		return fmt.Errorf("coord: plan for query %d has no source text (required to distribute to shards)", plan.QueryID)
	}

	c.mu.Lock()
	if len(c.members) == 0 {
		c.mu.Unlock()
		return fmt.Errorf("coord: no shards joined")
	}
	if _, dup := c.queries[plan.QueryID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("central: query %d already active", plan.QueryID)
	}
	cq := &coordQuery{
		qr: qr, emit: emit,
		epoch:      c.epoch,
		shards:     append([]*shardClient(nil), c.members...),
		streams:    liveness.NewTable(c.opt.LeaseTTL),
		pending:    make(map[int64]*central.PartialWindow),
		routeDrops: make(map[liveness.Key]uint64),
	}
	cq.shardLate = make([]uint64, len(cq.shards))
	cq.shardOverflow = make([]uint64, len(cq.shards))
	if plan.Replay > 0 {
		cq.replayHold = true
		cq.replayDeadline = c.opt.Clock().UnixNano() + 2*int64(c.opt.LeaseTTL)
	}
	// Two-phase install: the entry is published pending (reserving the id
	// against duplicate submissions) but absorbs no traffic until every
	// shard accepted the start — a manifest racing the install would
	// otherwise fold stream state into a query the rollback then deletes.
	c.queries[plan.QueryID] = cq
	c.mu.Unlock()

	msg := ShardStartFromPlan(plan)
	msg.Fence = c.fence
	for i, sc := range cq.shards {
		if err := sc.start(msg); err != nil {
			for j := 0; j < i; j++ {
				cq.shards[j].stop(plan.QueryID, c.fence)
			}
			c.mu.Lock()
			delete(c.queries, plan.QueryID)
			c.mu.Unlock()
			return err
		}
	}
	c.mu.Lock()
	cq.installed = true
	if c.rep != nil {
		c.rep.append(startEntry(plan, cq))
	}
	c.mu.Unlock()
	return nil
}

// resumeQuery installs a replicated registration on a promoted
// coordinator. Unlike StartQuery it never rolls back: a shard that
// refuses or died contributes degraded windows, exactly as if it had
// died mid-query — at takeover, availability wins over atomicity. The
// query resumes with topoDegraded latched: the manifest-gap during
// failover lost stream/watermark accounting the new leader cannot
// recover, so every window it emits is honestly flagged.
func (c *Coordinator) resumeQuery(plan *central.Plan, pinEpoch uint32, replayDeadline int64, emit central.EmitFunc) error {
	if emit == nil {
		return fmt.Errorf("coord: nil emit")
	}
	qr, err := central.CompileQuery(*plan)
	if err != nil {
		return err
	}
	plan = qr.Plan()

	c.mu.Lock()
	if _, dup := c.queries[plan.QueryID]; dup {
		c.mu.Unlock()
		return fmt.Errorf("central: query %d already active", plan.QueryID)
	}
	cq := &coordQuery{
		qr: qr, emit: emit,
		epoch:        pinEpoch,
		shards:       append([]*shardClient(nil), c.members...),
		streams:      liveness.NewTable(c.opt.LeaseTTL),
		pending:      make(map[int64]*central.PartialWindow),
		routeDrops:   make(map[liveness.Key]uint64),
		topoDegraded: true,
	}
	cq.shardLate = make([]uint64, len(cq.shards))
	cq.shardOverflow = make([]uint64, len(cq.shards))
	if plan.Replay > 0 && replayDeadline > c.opt.Clock().UnixNano() {
		cq.replayHold = true
		cq.replayDeadline = replayDeadline
	}
	c.queries[plan.QueryID] = cq
	c.mu.Unlock()

	msg := ShardStartFromPlan(plan)
	msg.Fence = c.fence
	for _, sc := range cq.shards {
		if sc.isDown() {
			continue
		}
		sc.start(msg) // idempotent; failure latches the client down
	}
	c.mu.Lock()
	cq.installed = true
	if c.rep != nil {
		c.rep.append(startEntry(plan, cq))
	}
	c.mu.Unlock()
	return nil
}

// HandleManifest folds one routed batch's manifest into the query's
// stream, watermark and window state — the distributed twin of
// ShardedEngine.HandleBatch, minus the fan-out the router already did.
func (c *Coordinator) HandleManifest(m transport.BatchManifest) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq, ok := c.queries[m.QueryID]
	if !ok || !cq.installed {
		return
	}
	if int(m.TypeIdx) >= len(cq.qr.Plan().Types) {
		return
	}
	c.manifestLocked(cq, m)
}

func (c *Coordinator) manifestLocked(cq *coordQuery, m transport.BatchManifest) {
	nowN := c.opt.Clock().UnixNano()
	st, _ := cq.streams.Touch(
		liveness.Key{Host: m.HostID, TypeIdx: m.TypeIdx},
		nowN,
	)
	st.Matched = max(st.Matched, m.MatchedTotal)
	st.Sampled = max(st.Sampled, m.SampledTotal)
	st.Drops = max(st.Drops, m.QueueDrops)
	st.FoldGovernor(m.EffRate, m.BudgetShed, m.CPUNs, m.ShipBytes)
	cq.streams.FoldReplay(st, m.ReplayEpoch, m.ReplayDone)
	if c.met != nil {
		c.met.manifests.Inc()
		c.met.tuples.Add(m.RawTuples)
	}
	wasHolding := cq.replayHold
	holding := central.ReplayHolding(&cq.replayHold, cq.replayDeadline, cq.streams, nowN)
	released := wasHolding && !holding
	// The manifest's drop counters are cumulative, so the max-fold is
	// order-insensitive — late or duplicated manifests cannot regress them.
	for i := 0; i < len(cq.shards) && i < len(m.ShardLate); i++ {
		cq.shardLate[i] = max(cq.shardLate[i], m.ShardLate[i])
	}
	for i := 0; i < len(cq.shards) && i < len(m.ShardOverflow); i++ {
		cq.shardOverflow[i] = max(cq.shardOverflow[i], m.ShardOverflow[i])
	}
	// Fold timestamp and late-drop state unconditionally, mirroring
	// Engine.HandleBatch: a manifest whose tuples were all shard-side
	// filtered or late-dropped still advances this stream's clock — an
	// early return here would stall the watermark (and so window closure
	// for every stream) until the host's lease expired.
	st.LateDrops += m.LateDelta
	if m.HasTs {
		st.ObserveTs(m.MaxTs)
	}
	// Mirror the engines: with nothing observed and no replay release,
	// there is no close decision to make.
	if m.RawTuples == 0 && !m.HasTs && m.LateDelta == 0 && !released {
		return
	}
	if !holding && (m.HasTs || released) {
		if wm, wok := cq.streams.Watermark(); wok {
			bound := wm - int64(cq.qr.Plan().Lateness)
			c.collectLocked(m.QueryID, cq, bound)
			c.flushLocked(cq, bound)
		}
	}
}

// HandleBatch implements central.Executor for hosts that predate shard
// maps: the coordinator routes the whole batch itself, then processes the
// resulting manifest as if a host-side router had sent it.
func (c *Coordinator) HandleBatch(b transport.TupleBatch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq, ok := c.queries[b.QueryID]
	if !ok {
		return
	}
	if int(b.TypeIdx) >= len(cq.qr.Plan().Types) {
		return
	}
	key := liveness.Key{Host: b.HostID, TypeIdx: b.TypeIdx}
	cum := cq.routeDrops[key]
	m := routeToShards(b, cq.shards, &cum)
	cq.routeDrops[key] = cum
	c.manifestLocked(cq, m)
}

// Tick implements central.Executor: sweep dead shards out of the
// membership, then run the same per-query expiry/hold/close sequence as
// ShardedEngine.Tick, with collect barriers over the pinned shards.
func (c *Coordinator) Tick(nowNanos int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeDownLocked()
	leaseNow := c.opt.Clock().UnixNano()
	for id, cq := range c.queries {
		if !cq.installed {
			continue
		}
		evicted := cq.streams.Expire(leaseNow)
		wasHolding := cq.replayHold
		if central.ReplayHolding(&cq.replayHold, cq.replayDeadline, cq.streams, leaseNow) {
			continue
		}
		released := wasHolding && !cq.replayHold
		if len(evicted) > 0 || released {
			if wm, ok := cq.streams.Watermark(); ok {
				b := wm - int64(cq.qr.Plan().Lateness)
				c.collectLocked(id, cq, b)
				c.flushLocked(cq, b)
			}
		}
		bound := nowNanos - int64(cq.qr.Plan().Lateness)
		c.collectLocked(id, cq, bound)
		c.flushLocked(cq, bound)
	}
	if c.met != nil {
		for _, sc := range c.members {
			if g := c.met.shardLag(sc.addr); g != nil {
				g.Set(sc.lagNanos())
			}
		}
	}
}

// collectLocked is the close barrier: every live pinned shard is asked
// for windows ending at or before bound, in ascending shard order, and
// the partials are merged into the pending set. The responses also carry
// the shards' cumulative drop counters, refreshing the cache emits read.
func (c *Coordinator) collectLocked(id uint64, cq *coordQuery, bound int64) {
	for i, sc := range cq.shards {
		if sc.isDown() {
			cq.topoDegraded = true
			continue
		}
		sp, err := sc.collect(id, bound, c.fence)
		if err != nil {
			cq.topoDegraded = true
			continue
		}
		if !sp.Found {
			continue
		}
		cq.shardLate[i] = max(cq.shardLate[i], sp.Late)
		cq.shardOverflow[i] = max(cq.shardOverflow[i], sp.Overflow)
		c.mergePartialsLocked(cq, sp.Partials)
	}
}

func (c *Coordinator) mergePartialsLocked(cq *coordQuery, partials []transport.WindowPartial) {
	for _, wp := range partials {
		pw, err := cq.qr.DecodePartial(wp.Data)
		if err != nil {
			// Undecodable state is lost state: flag the query rather than
			// emit a silently incomplete window.
			cq.topoDegraded = true
			continue
		}
		if dst, ok := cq.pending[wp.Start]; ok {
			cq.mergeDrops += cq.qr.Merge(dst, pw)
			c.merges++
			if c.met != nil {
				c.met.merges.Inc()
			}
		} else {
			cq.pending[wp.Start] = pw
		}
	}
}

// flushLocked renders and emits pending windows ending at or before
// bound, in start order (same as ShardedEngine.flushLocked).
func (c *Coordinator) flushLocked(cq *coordQuery, bound int64) {
	var starts []int64
	winSize := int64(cq.qr.Plan().Window)
	for start := range cq.pending {
		if start+winSize <= bound {
			starts = append(starts, start)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, start := range starts {
		c.emitLocked(cq, start, cq.pending[start])
		delete(cq.pending, start)
	}
}

func (c *Coordinator) emitLocked(cq *coordQuery, start int64, pw *central.PartialWindow) {
	plan := cq.qr.Plan()
	rw := cq.qr.Render(start, pw, cq.streams.RatesByHost(plan.SampleEvents))
	hostDrops := cq.streams.HostDrops()
	lateDrops := cq.mergeDrops + cq.stoppedShardDrops
	for i := range cq.shards {
		lateDrops += cq.shardLate[i] + cq.shardOverflow[i]
	}
	rw.Stats.HostDrops = hostDrops
	rw.Stats.LateDrops = lateDrops
	rw.Degraded = cq.streams.AnyEvicted() || cq.topoDegraded
	rw.BudgetShed = cq.streams.AnyShed()
	rw.Streams = cq.streams.Snapshot()
	if rw.Degraded {
		cq.stats.DegradedWindows++
	}
	if rw.BudgetShed {
		cq.stats.ShedWindows++
	}
	cq.stats.Windows++
	cq.stats.Rows += uint64(len(rw.Rows))
	cq.stats.TuplesIn += pw.Tuples()
	cq.stats.HostDrops = hostDrops
	cq.stats.LateDrops = lateDrops
	cq.emit(rw)
}

// StopQuery implements central.Executor: drain every pinned shard, merge
// and emit the remainder, return the final stats. Dead shards contribute
// their last-known drop totals — their window state is gone, which the
// Degraded flag on earlier windows already reported.
func (c *Coordinator) StopQuery(id uint64) (transport.QueryStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq, ok := c.queries[id]
	if !ok || !cq.installed {
		return transport.QueryStats{}, false
	}
	var lateDrops uint64
	for i, sc := range cq.shards {
		if sc.isDown() {
			cq.topoDegraded = true
			lateDrops += cq.shardLate[i] + cq.shardOverflow[i]
			continue
		}
		sp, err := sc.stop(id, c.fence)
		if err != nil {
			cq.topoDegraded = true
			lateDrops += cq.shardLate[i] + cq.shardOverflow[i]
			continue
		}
		if !sp.Found {
			continue
		}
		lateDrops += sp.Late + sp.Overflow
		c.mergePartialsLocked(cq, sp.Partials)
	}
	cq.stoppedShardDrops = lateDrops
	// Cached counters must not double-count on top of the drained totals.
	for i := range cq.shards {
		cq.shardLate[i], cq.shardOverflow[i] = 0, 0
	}
	c.flushLocked(cq, int64(1)<<62-1)
	cq.stats.LateDrops = lateDrops + cq.mergeDrops
	cq.stats.HostDrops = cq.streams.HostDrops()
	delete(c.queries, id)
	if c.rep != nil {
		c.rep.append(transport.RepEntry{Kind: transport.RepQueryStop, QueryID: id})
	}
	return cq.stats, true
}

// Stats implements central.Executor: like ShardedEngine.Stats, TuplesIn
// so far is what the shards have absorbed, polled over RPC.
func (c *Coordinator) Stats(id uint64) (transport.QueryStats, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cq, ok := c.queries[id]
	if !ok || !cq.installed {
		return transport.QueryStats{}, false
	}
	st := cq.stats
	var tuples uint64
	for _, sc := range cq.shards {
		if sc.isDown() {
			continue
		}
		if sr, err := sc.stats(id); err == nil && sr.Found {
			tuples += sr.TuplesIn
		}
	}
	if tuples > st.TuplesIn {
		st.TuplesIn = tuples
	}
	return st, true
}

// ActiveQueries implements central.Executor.
func (c *Coordinator) ActiveQueries() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]uint64, 0, len(c.queries))
	for id, cq := range c.queries {
		if !cq.installed {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Status reports the fabric's operational view for scrubql -stats: the
// epoch, merge and rebalance totals, and one row per member shard.
func (c *Coordinator) Status() transport.ShardStatusList {
	c.mu.Lock()
	defer c.mu.Unlock()
	sl := transport.ShardStatusList{
		Epoch:      c.epoch,
		Merges:     c.merges,
		Rebalances: c.rebalances,
	}
	for _, cq := range c.queries {
		for _, s := range cq.streams.Snapshot() {
			if s.Evicted {
				sl.EvictedStreams++
			}
		}
	}
	for i, sc := range c.members {
		row := transport.ShardStatus{
			Index:    uint32(i),
			Addr:     sc.addr,
			Down:     sc.isDown(),
			LagNanos: sc.lagNanos(),
		}
		if !row.Down {
			if sr, err := sc.stats(0); err == nil {
				row.ActiveQueries = sr.ActiveQueries
				row.TuplesIn = sr.TuplesIn
				row.LagNanos = sc.lagNanos()
			} else {
				row.Down = true
			}
		}
		if g := c.met.shardLag(sc.addr); g != nil {
			g.Set(row.LagNanos)
		}
		sl.Shards = append(sl.Shards, row)
	}
	return sl
}

// ServeConn answers a data-plane connection carrying manifests and
// control asks from a host-side router or the query server's hub.
func (c *Coordinator) ServeConn(conn *transport.Conn) {
	defer conn.Close()
	for {
		m, err := conn.Recv()
		if err != nil {
			return
		}
		var resp transport.Message
		switch t := m.(type) {
		case transport.BatchManifest:
			c.HandleManifest(t)
			resp = transport.ManifestAck{Seq: t.Seq}
		case transport.ShardStatusReq:
			resp = c.Status()
		case transport.ShardHello:
			// Best effort: a failed dial leaves the shard out of the map.
			c.HandleHello(t)
			continue
		case transport.Ping:
			resp = transport.Pong{Nonce: t.Nonce}
		default:
			continue
		}
		if err := conn.Send(resp); err != nil {
			return
		}
	}
}

// Close tears down every shard connection and stops replication to
// standbys. Queries are not drained.
func (c *Coordinator) Close() {
	c.mu.Lock()
	rep := c.rep
	c.rep = nil
	for _, sc := range c.members {
		sc.close()
	}
	for _, cq := range c.queries {
		for _, sc := range cq.shards {
			sc.close()
		}
	}
	c.mu.Unlock()
	if rep != nil {
		rep.stop()
	}
}
