// Package coord runs ScrubCentral as a multi-process shard fabric: a
// coordinator process owns query registration, shard membership and the
// merge layer; shard processes run central engines in driven mode (no
// self-closing windows); and routers — on the host agents, or inside the
// coordinator for legacy hosts — split every tuple batch across shards by
// hash(request-id) mod shards, so the request-identifier equi-join stays
// shard-local exactly as in the in-process ShardedEngine.
//
// The design transplants ShardedEngine's merge semantics across process
// boundaries without changing them: shards absorb sub-batches and report
// what they observed (max in-span event time, late-drop deltas) in
// synchronous acks; the router folds the acks into a BatchManifest that
// reaches the coordinator only after every shard has applied its slice;
// and the coordinator processes manifests with the same stream-lease,
// watermark, replay-hold and window-close decisions the in-process merger
// makes per batch. Window state crosses the wire as serialized partials
// (central.EncodedPartial) merged in ascending shard order, so the
// differential oracle can hold a 1-process Engine and an N-process
// topology to bit-identical windows, rows, bounds and stats.
//
// Membership is epoch-numbered: every join or leave bumps the epoch and
// pushes a fresh ShardMap to the host agents. A query pins the epoch
// current at its start (carried on HostQuery), so all hosts split its
// request-id space over the same shard list for the query's whole life;
// later joins serve new queries only, and a shard death degrades the
// queries pinned to it (results keep flowing, flagged Degraded) instead
// of wedging their watermarks.
//
//scrub:longlived
package coord

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/transport"
)

// rpcTimeout bounds every synchronous shard RPC so a hung (but not yet
// closed) shard process cannot wedge the coordinator or a router; lease
// expiry needs failures to surface in bounded time.
const rpcTimeout = 5 * time.Second

// shardClient is one synchronous RPC channel to a shard process. Requests
// are serialized per client and matched to responses by sequence number;
// any transport error or sequence mismatch marks the client down and
// closes the connection — callers degrade, they never block forever.
type shardClient struct {
	addr string

	mu   sync.Mutex
	conn *transport.Conn
	seq  uint64

	down   atomic.Bool
	lastOK atomic.Int64 // wall nanos of the last successful round-trip
}

// newShardClient wraps an established connection (tests, pipes).
func newShardClient(conn *transport.Conn, addr string) *shardClient {
	c := &shardClient{addr: addr, conn: conn}
	c.lastOK.Store(time.Now().UnixNano())
	return c
}

// dialShard connects to a shard's data address.
func dialShard(addr string) (*shardClient, error) {
	conn, err := transport.Dial(addr, rpcTimeout)
	if err != nil {
		return nil, err
	}
	return newShardClient(conn, addr), nil
}

func (c *shardClient) isDown() bool { return c.down.Load() }

// lagNanos reports how long ago the last successful RPC completed.
func (c *shardClient) lagNanos() int64 { return time.Now().UnixNano() - c.lastOK.Load() }

func (c *shardClient) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked()
}

func (c *shardClient) failLocked() {
	c.down.Store(true)
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// do sends one request built with the next sequence number and returns
// the response. The read deadline keeps a silent peer from blocking the
// caller past rpcTimeout.
func (c *shardClient) do(build func(seq uint64) transport.Message) (transport.Message, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, 0, fmt.Errorf("coord: shard %s is down", c.addr)
	}
	c.seq++
	seq := c.seq
	c.conn.SetReadDeadline(time.Now().Add(rpcTimeout))
	if err := c.conn.Send(build(seq)); err != nil {
		c.failLocked()
		return nil, 0, err
	}
	resp, err := c.conn.Recv()
	if err != nil {
		c.failLocked()
		return nil, 0, err
	}
	c.lastOK.Store(time.Now().UnixNano())
	return resp, seq, nil
}

func (c *shardClient) seqErr(got transport.Message) error {
	c.mu.Lock()
	c.failLocked()
	c.mu.Unlock()
	return fmt.Errorf("coord: shard %s: unexpected response %s", c.addr, transport.Name(got))
}

func (c *shardClient) start(msg transport.ShardStart) error {
	resp, seq, err := c.do(func(s uint64) transport.Message { msg.Seq = s; return msg })
	if err != nil {
		return err
	}
	ack, ok := resp.(transport.ShardAck)
	if !ok || ack.Seq != seq {
		return c.seqErr(resp)
	}
	if ack.Err != "" {
		return fmt.Errorf("coord: shard %s: %s", c.addr, ack.Err)
	}
	return nil
}

func (c *shardClient) apply(msg transport.ShardSubBatch) (transport.ShardBatchAck, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message { msg.Seq = s; return msg })
	if err != nil {
		return transport.ShardBatchAck{}, err
	}
	ack, ok := resp.(transport.ShardBatchAck)
	if !ok || ack.Seq != seq {
		return transport.ShardBatchAck{}, c.seqErr(resp)
	}
	return ack, nil
}

// staleErr latches the client down after a shard rejected the caller's
// fencing epoch: the coordinator holding this client was deposed, and
// every further RPC from it would be rejected the same way. Latching
// down sends its queries into the ordinary degrade path — a deposed
// leader stops emitting instead of emitting windows that conflict with
// its successor's.
func (c *shardClient) staleErr() error {
	c.close()
	return fmt.Errorf("coord: shard %s: stale fencing epoch (deposed)", c.addr)
}

func (c *shardClient) collect(queryID uint64, bound int64, fence uint64) (transport.ShardPartials, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message {
		return transport.ShardCollectReq{Seq: s, Fence: fence, QueryID: queryID, Bound: bound}
	})
	if err != nil {
		return transport.ShardPartials{}, err
	}
	sp, ok := resp.(transport.ShardPartials)
	if !ok || sp.Seq != seq {
		return transport.ShardPartials{}, c.seqErr(resp)
	}
	if sp.Stale {
		return transport.ShardPartials{}, c.staleErr()
	}
	return sp, nil
}

func (c *shardClient) stop(queryID uint64, fence uint64) (transport.ShardPartials, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message {
		return transport.ShardStopReq{Seq: s, Fence: fence, QueryID: queryID}
	})
	if err != nil {
		return transport.ShardPartials{}, err
	}
	sp, ok := resp.(transport.ShardPartials)
	if !ok || sp.Seq != seq {
		return transport.ShardPartials{}, c.seqErr(resp)
	}
	if sp.Stale {
		return transport.ShardPartials{}, c.staleErr()
	}
	return sp, nil
}

// fence installs the caller's fencing epoch on the shard and returns the
// shard's active query ids for takeover reconciliation.
func (c *shardClient) fence(f uint64) (transport.ShardFenceAck, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message {
		return transport.ShardFence{Seq: s, Fence: f}
	})
	if err != nil {
		return transport.ShardFenceAck{}, err
	}
	ack, ok := resp.(transport.ShardFenceAck)
	if !ok || ack.Seq != seq {
		return transport.ShardFenceAck{}, c.seqErr(resp)
	}
	if !ack.Ok {
		return ack, c.staleErr()
	}
	return ack, nil
}

func (c *shardClient) stats(queryID uint64) (transport.ShardStatsResp, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message {
		return transport.ShardStatsReq{Seq: s, QueryID: queryID}
	})
	if err != nil {
		return transport.ShardStatsResp{}, err
	}
	sr, ok := resp.(transport.ShardStatsResp)
	if !ok || sr.Seq != seq {
		return transport.ShardStatsResp{}, c.seqErr(resp)
	}
	return sr, nil
}

// repAppend ships replication log entries (or a heartbeat, when entries
// is empty) to a standby over the same serialized RPC channel shards
// use.
func (c *shardClient) repAppend(term, index uint64, entries []transport.RepEntry) (transport.RepAck, error) {
	resp, seq, err := c.do(func(s uint64) transport.Message {
		return transport.RepAppend{Seq: s, Term: term, Index: index, Entries: entries}
	})
	if err != nil {
		return transport.RepAck{}, err
	}
	ack, ok := resp.(transport.RepAck)
	if !ok || ack.Seq != seq {
		return transport.RepAck{}, c.seqErr(resp)
	}
	return ack, nil
}

func (c *shardClient) ping(nonce uint64) error {
	resp, _, err := c.do(func(s uint64) transport.Message { return transport.Ping{Nonce: nonce} })
	if err != nil {
		return err
	}
	if p, ok := resp.(transport.Pong); !ok || p.Nonce != nonce {
		return c.seqErr(resp)
	}
	return nil
}
