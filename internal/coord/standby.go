package coord

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/transport"
)

// Standby is the passive half of coordinator high availability: it
// applies the leader's replicated control-plane log into a shadow state
// machine (query registrations and shard membership — never window
// state) and, on leader silence, promotes itself into a live Coordinator
// under a strictly higher fencing term.
//
// Election is deliberately not quorum-based: the shards are the ground
// truth and the fence. A promoted standby's first act is installing its
// higher fencing epoch on every shard, after which the old leader's
// collect/stop RPCs are rejected — so even if both believe they lead,
// only one can drain window state and emit. Multiple standbys stagger
// their failover timeouts by Rank so the lowest rank wins the race in
// the common case, and fencing arbitrates the rest.
type Standby struct {
	opt StandbyOptions

	mu         sync.Mutex
	term       uint64
	applied    uint64
	queries    map[uint64]transport.RepEntry // live registrations by query id
	membership transport.ShardMap
	promoted   bool

	// lastContact is the wall time of the last append from a live
	// leader; 0 until the first one, so a standby that never saw a
	// leader does not promote an empty state machine over a booting one.
	lastContact atomic.Int64
}

// StandbyOptions configures a Standby.
type StandbyOptions struct {
	// Central configures the Coordinator built at promotion. Clock and
	// LeaseTTL must match the dead leader's for the differential
	// contracts to keep holding.
	Central Options
	// Catalog re-analyzes replicated query text at promotion.
	Catalog *event.Catalog
	// Dial opens shard connections at promotion; nil uses transport.Dial
	// with the standard RPC timeout.
	Dial func(addr string) (*transport.Conn, error)
	// FailoverTimeout is how long the leader must be silent before
	// AwaitFailover fires; 0 means 2s. The leader heartbeats every 250ms
	// by default, so the default tolerates several missed beats.
	FailoverTimeout time.Duration
	// Rank staggers multiple standbys: the effective timeout is
	// FailoverTimeout * (Rank + 1), so rank 0 promotes first.
	Rank int
}

// NewStandby creates a standby with an empty state machine. Serve (or
// ServeConn) feeds it the leader's replication stream.
func NewStandby(opt StandbyOptions) *Standby {
	if opt.FailoverTimeout <= 0 {
		opt.FailoverTimeout = 2 * time.Second
	}
	return &Standby{
		opt:     opt,
		queries: make(map[uint64]transport.RepEntry),
	}
}

// Serve accepts replication connections until the listener closes.
func (s *Standby) Serve(l *transport.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go s.ServeConn(c)
	}
}

// ServeConn answers replication RPCs on one connection until it fails
// or closes.
func (s *Standby) ServeConn(c *transport.Conn) {
	defer c.Close()
	for {
		m, err := c.Recv()
		if err != nil {
			return
		}
		var resp transport.Message
		switch t := m.(type) {
		case transport.RepAppend:
			resp = s.handleAppend(t)
		case transport.Ping:
			resp = transport.Pong{Nonce: t.Nonce}
		default:
			continue
		}
		if err := c.Send(resp); err != nil {
			return
		}
	}
}

// handleAppend applies one append. A promoted standby — or one that has
// seen a higher term — NAKs with its term so a deposed leader learns it
// is stale; an append ahead of the applied index NAKs with the applied
// index to request retransmission from there.
func (s *Standby) handleAppend(t transport.RepAppend) transport.RepAck {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.promoted || t.Term < s.term {
		return transport.RepAck{Seq: t.Seq, Term: s.term, Index: s.applied}
	}
	s.term = t.Term
	if t.Index > s.applied {
		return transport.RepAck{Seq: t.Seq, Term: s.term, Index: s.applied}
	}
	for i, e := range t.Entries {
		if t.Index+uint64(i) < s.applied {
			continue // duplicate of an already-applied entry
		}
		s.applyLocked(e)
		s.applied++
	}
	s.lastContact.Store(time.Now().UnixNano())
	return transport.RepAck{Seq: t.Seq, Term: s.term, Index: s.applied, Ok: true}
}

func (s *Standby) applyLocked(e transport.RepEntry) {
	switch e.Kind {
	case transport.RepQueryStart:
		s.queries[e.Start.QueryID] = e
	case transport.RepQueryStop:
		delete(s.queries, e.QueryID)
	case transport.RepMembership:
		s.membership = transport.ShardMap{Epoch: e.MapEpoch, Addrs: e.Addrs}
	}
}

// Snapshot reports the standby's replication state (observability,
// tests): the highest term seen, applied log length, and live query ids.
func (s *Standby) Snapshot() (term, applied uint64, queries []uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.queries {
		queries = append(queries, id)
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	return s.term, s.applied, queries
}

// AwaitFailover blocks until the leader has been silent for the
// configured (rank-staggered) timeout and reports true, or until stop
// closes and reports false. A standby that never heard a leader waits
// indefinitely: it has nothing to take over.
func (s *Standby) AwaitFailover(stop <-chan struct{}) bool {
	timeout := s.opt.FailoverTimeout * time.Duration(s.opt.Rank+1)
	t := time.NewTicker(timeout / 4)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return false
		case <-t.C:
			lc := s.lastContact.Load()
			if lc == 0 {
				continue
			}
			if time.Now().UnixNano()-lc > int64(timeout) {
				return true
			}
		}
	}
}

// ResumedQuery describes one registration a promotion carried over,
// with what a serving layer needs to re-adopt it (text for host
// re-registration fan-out, the span for expiry timers).
type ResumedQuery struct {
	QueryID    uint64
	Text       string
	StartNanos int64
	EndNanos   int64
	PinEpoch   uint32
}

// Promote assumes leadership: it builds a live Coordinator under term+1
// (strictly above anything the dead leader stamped), reconstructs the
// replicated membership at its replicated epoch and order — order
// matters, it is the rid%n routing order every host pins — fences every
// live shard, stops orphan queries a dead leader installed but never
// committed, and re-installs every replicated registration (idempotent
// shard-side, so absorbed window state survives).
//
// emitFor supplies the emit hook per resumed query. Every resumed query
// starts with its Degraded latch set: the manifest-gap during failover
// lost stream/watermark accounting this coordinator cannot recover, so
// its windows are honestly flagged rather than silently incomplete.
//
// Promotion is one-shot; a second call errors. Shard or query failures
// do not abort it — at takeover, availability wins — they latch clients
// down and degrade, exactly like a mid-query shard death.
func (s *Standby) Promote(emitFor func(q ResumedQuery, plan *central.Plan) central.EmitFunc) (*Coordinator, []ResumedQuery, error) {
	s.mu.Lock()
	if s.promoted {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("coord: standby already promoted")
	}
	s.promoted = true
	s.term++
	term := s.term
	membership := s.membership
	entries := make([]transport.RepEntry, 0, len(s.queries))
	for _, e := range s.queries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].Start.QueryID < entries[j].Start.QueryID
	})

	dial := s.opt.Dial
	if dial == nil {
		dial = func(addr string) (*transport.Conn, error) {
			return transport.Dial(addr, rpcTimeout)
		}
	}

	c := NewCoordinator(s.opt.Central)
	c.fence = term
	c.mu.Lock()
	c.epoch = membership.Epoch
	for _, addr := range membership.Addrs {
		conn, err := dial(addr)
		if err != nil {
			// The shard is unreachable right now: keep its slot (routing
			// order must not shift) but latched down, like a dead shard.
			sc := newShardClient(nil, addr)
			sc.down.Store(true)
			c.members = append(c.members, sc)
			continue
		}
		c.members = append(c.members, newShardClient(conn, addr))
	}
	c.met.setMembership(len(c.members), c.epoch)
	members := append([]*shardClient(nil), c.members...)
	c.mu.Unlock()

	// Fence first: from here the old leader's collect/stop RPCs are
	// rejected on every shard that answered. The acks also reveal orphan
	// queries — installed by the dead leader but never replicated (it
	// died mid-StartQuery, so the submitter saw an error or will retry);
	// stop them so they do not leak shard memory.
	replicated := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		replicated[e.Start.QueryID] = true
	}
	for _, sc := range members {
		if sc.isDown() {
			continue
		}
		ack, err := sc.fence(term)
		if err != nil {
			continue // latched down; queries pinned to it degrade
		}
		for _, id := range ack.Queries {
			if !replicated[id] {
				sc.stop(id, term)
			}
		}
	}

	// Resume the registrations in ascending query-id order.
	var resumed []ResumedQuery
	for _, e := range entries {
		plan, err := PlanFromShardStart(e.Start, s.opt.Catalog)
		if err != nil {
			continue // unresolvable text (catalog drift); nothing to resume
		}
		rq := ResumedQuery{
			QueryID:    e.Start.QueryID,
			Text:       e.Start.Text,
			StartNanos: e.Start.StartNanos,
			EndNanos:   e.Start.EndNanos,
			PinEpoch:   e.PinEpoch,
		}
		emit := emitFor(rq, &plan)
		if emit == nil {
			continue
		}
		if err := c.resumeQuery(&plan, e.PinEpoch, e.ReplayDeadline, emit); err != nil {
			continue
		}
		resumed = append(resumed, rq)
	}
	return c, resumed, nil
}
