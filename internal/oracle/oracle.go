// Package oracle is the exact, deliberately naive reference evaluator
// for Scrub's central query semantics. It materializes every event,
// evaluates selection, projection, the request-id equi-join, group-by,
// HAVING, ORDER BY and LIMIT with exact counts — no sketches, no
// incremental windowing, no sampling shortcuts, no bounded-state drops —
// and renders each window the way ScrubCentral would if it had infinite
// memory and the full event stream.
//
// The differential harness (internal/difftest) drives the production
// Engine and ShardedEngine over the same inputs and checks them against
// this package's output per contract class: exact paths row-for-row,
// sampled paths via confidence-interval coverage, sketch aggregates via
// their published guarantees. Clarity beats speed everywhere here: any
// cleverness shared with the engine under test would hide its bugs.
package oracle

import (
	"fmt"
	"math"
	"sort"

	"scrub/internal/agg"
	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/expr"
)

// Event is one matched event as shipped to ScrubCentral, before any
// sampling: Values carries the projected user columns in the plan's
// Columns[TypeIdx] order (the transport.Tuple layout).
type Event struct {
	Host      string
	TypeIdx   int
	RequestID uint64
	TsNanos   int64
	Values    []event.Value
}

// AggTruth is the exact state of one ungrouped aggregate in a window,
// exposed for the bounded-approximate and sketch-guarantee contracts.
type AggTruth struct {
	Kind  agg.Kind
	Value event.Value // exact unscaled result as the oracle renders it
	// Float is the exact numeric value (NaN when the result is not
	// numeric or the aggregate saw no input).
	Float float64
	// Items holds exact per-item counts for TOP_K.
	Items map[string]uint64
	// Distinct holds the exact distinct-value count for COUNT_DISTINCT.
	Distinct uint64
}

// Result is one window's exact answer.
type Result struct {
	Start, End int64
	Rows       [][]event.Value
	// AggExact holds per-aggregate exact truth for ungrouped aggregate
	// queries (nil otherwise): index matches plan.Aggs.
	AggExact []AggTruth
}

// evaluator is the compiled form of a plan, mirroring central's compile
// but rebuilt here so the oracle shares no evaluation shortcuts with the
// engine under test beyond the expression compiler itself.
type evaluator struct {
	plan        *central.Plan
	colIdx      []map[string]int
	groupEvals  []expr.Evaluator
	aggArgEvals []expr.Evaluator
	selectEvals []expr.Evaluator
	centralPred func(expr.Row) bool
	havingPred  func(expr.Row) bool
}

func compile(p *central.Plan) (*evaluator, error) {
	ev := &evaluator{plan: p}
	ev.colIdx = make([]map[string]int, len(p.Types))
	for i, cols := range p.Columns {
		m := make(map[string]int, len(cols))
		for j, name := range cols {
			m[name] = j
		}
		ev.colIdx[i] = m
	}
	for _, g := range p.GroupBy {
		e, err := expr.Compile(g)
		if err != nil {
			return nil, err
		}
		ev.groupEvals = append(ev.groupEvals, e)
	}
	for _, a := range p.Aggs {
		if a.Arg == nil {
			ev.aggArgEvals = append(ev.aggArgEvals, nil)
			continue
		}
		e, err := expr.Compile(a.Arg)
		if err != nil {
			return nil, err
		}
		ev.aggArgEvals = append(ev.aggArgEvals, e)
	}
	for _, s := range p.Select {
		e, err := expr.Compile(s.Expr)
		if err != nil {
			return nil, err
		}
		ev.selectEvals = append(ev.selectEvals, e)
	}
	if p.CentralPred != nil {
		e, err := expr.Compile(p.CentralPred)
		if err != nil {
			return nil, err
		}
		ev.centralPred = expr.Predicate(e)
	}
	if p.Having != nil {
		e, err := expr.Compile(p.Having)
		if err != nil {
			return nil, err
		}
		ev.havingPred = expr.Predicate(e)
	}
	return ev, nil
}

// --- row adapters (mirroring central's sideRow/joinRow/resultRow) ---

type eventRow struct {
	ev *evaluator
	e  *Event
}

func (r eventRow) Field(typ, name string) event.Value {
	if typ != "" && typ != r.ev.plan.Types[r.e.TypeIdx] {
		return event.Invalid
	}
	switch name {
	case event.FieldRequestID:
		return event.Int(int64(r.e.RequestID))
	case event.FieldTimestamp:
		return event.TimeNanos(r.e.TsNanos)
	}
	idx, ok := r.ev.colIdx[r.e.TypeIdx][name]
	if !ok || idx >= len(r.e.Values) {
		return event.Invalid
	}
	return r.e.Values[idx]
}

func (eventRow) Agg(int) event.Value { return event.Invalid }

type joinedRow struct {
	ev          *evaluator
	left, right *Event // sides 0 and 1
}

func (r joinedRow) Field(typ, name string) event.Value {
	switch typ {
	case r.ev.plan.Types[0]:
		return eventRow{ev: r.ev, e: r.left}.Field(typ, name)
	case r.ev.plan.Types[1]:
		return eventRow{ev: r.ev, e: r.right}.Field(typ, name)
	case "":
		if v := (eventRow{ev: r.ev, e: r.left}).Field("", name); v.IsValid() {
			return v
		}
		return eventRow{ev: r.ev, e: r.right}.Field("", name)
	default:
		return event.Invalid
	}
}

func (joinedRow) Agg(int) event.Value { return event.Invalid }

type groupRow struct {
	groupBy []expr.FieldRef
	keyVals []event.Value
	aggVals []event.Value
}

func (r groupRow) Field(typ, name string) event.Value {
	for i, g := range r.groupBy {
		if g.Name == name && (typ == "" || typ == g.Type) {
			return r.keyVals[i]
		}
	}
	return event.Invalid
}

func (r groupRow) Agg(i int) event.Value {
	if i < 0 || i >= len(r.aggVals) {
		return event.Invalid
	}
	return r.aggVals[i]
}

// --- exact aggregate state ---

// exactAgg accumulates one aggregate with exact counts. Standard SQL
// aggregates reuse the agg package (whose arithmetic is already exact up
// to float rounding); TOP_K and COUNT_DISTINCT replace their sketches
// with full maps.
type exactAgg struct {
	kind  agg.Kind
	k     int
	std   agg.Aggregator       // nil for sketch kinds
	items map[string]uint64    // TOP_K
	set   map[string]struct{}  // COUNT_DISTINCT, keyed by encoded value
}

func newExactAgg(spec agg.Spec) (*exactAgg, error) {
	switch spec.Kind {
	case agg.KindTopK:
		if spec.K <= 0 {
			return nil, fmt.Errorf("oracle: TOP_K requires k > 0")
		}
		return &exactAgg{kind: spec.Kind, k: spec.K, items: make(map[string]uint64)}, nil
	case agg.KindCountDistinct:
		return &exactAgg{kind: spec.Kind, set: make(map[string]struct{})}, nil
	default:
		a, err := agg.New(spec)
		if err != nil {
			return nil, err
		}
		return &exactAgg{kind: spec.Kind, std: a}, nil
	}
}

func (a *exactAgg) add(v event.Value) {
	switch a.kind {
	case agg.KindTopK:
		if v.IsValid() {
			a.items[v.String()]++
		}
	case agg.KindCountDistinct:
		if v.IsValid() {
			a.set[string(event.AppendValue(nil, v))] = struct{}{}
		}
	default:
		a.std.Add(v)
	}
}

// result renders the exact value the way the engine renders the same
// aggregate, so exact-path rows compare directly.
func (a *exactAgg) result() event.Value {
	switch a.kind {
	case agg.KindTopK:
		entries := a.topEntries()
		vs := make([]event.Value, len(entries))
		for i, e := range entries {
			vs[i] = event.Str(fmt.Sprintf("%s=%d", e.item, e.count))
		}
		return event.List(event.KindString, vs...)
	case agg.KindCountDistinct:
		return event.Int(int64(len(a.set)))
	default:
		return a.std.Result()
	}
}

type itemCount struct {
	item  string
	count uint64
}

func (a *exactAgg) topEntries() []itemCount {
	all := make([]itemCount, 0, len(a.items))
	for it, c := range a.items {
		all = append(all, itemCount{it, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].item < all[j].item
	})
	if a.k < len(all) {
		all = all[:a.k]
	}
	return all
}

func (a *exactAgg) truth() AggTruth {
	t := AggTruth{Kind: a.kind, Value: a.result(), Float: math.NaN()}
	switch a.kind {
	case agg.KindTopK:
		t.Items = make(map[string]uint64, len(a.items))
		for k, v := range a.items {
			t.Items[k] = v
		}
	case agg.KindCountDistinct:
		t.Distinct = uint64(len(a.set))
		t.Float = float64(t.Distinct)
	default:
		if f, ok := t.Value.AsFloat(); ok {
			t.Float = f
		}
	}
	return t
}

// --- window accumulation ---

type exactGroup struct {
	keyVals []event.Value
	aggs    []*exactAgg
}

type windowAcc struct {
	start, end int64
	groups     map[string]*exactGroup
	rawRows    [][]event.Value
	// join sides by request id, in arrival order.
	sides map[uint64]*[2][]*Event
}

func encodeKey(vals []event.Value) string {
	buf := make([]byte, 0, 32)
	for _, v := range vals {
		buf = event.AppendValue(buf, v)
	}
	return string(buf)
}

// Eval evaluates the plan exactly over the full matched event stream and
// returns one Result per window that received at least one in-span
// event, in start order. Events must be the *matched* stream — host-side
// selection already applied, no sampling — with projected values in plan
// column order.
func Eval(p central.Plan, events []Event) ([]Result, error) {
	if len(p.Types) == 0 || len(p.Types) > 2 {
		return nil, fmt.Errorf("oracle: plan must cover 1 or 2 types, got %d", len(p.Types))
	}
	if p.Window <= 0 {
		return nil, fmt.Errorf("oracle: window must be positive")
	}
	slide := p.Slide
	if slide == 0 {
		slide = p.Window
	}
	ev, err := compile(&p)
	if err != nil {
		return nil, err
	}

	size, sl := int64(p.Window), int64(slide)
	wins := make(map[int64]*windowAcc)
	getWin := func(start int64) *windowAcc {
		w := wins[start]
		if w == nil {
			w = &windowAcc{
				start: start, end: start + size,
				groups: make(map[string]*exactGroup),
				sides:  make(map[uint64]*[2][]*Event),
			}
			wins[start] = w
		}
		return w
	}

	accumulate := func(w *windowAcc, row expr.Row) error {
		if !p.HasAgg() && !p.Grouped() {
			out := make([]event.Value, len(ev.selectEvals))
			for i, se := range ev.selectEvals {
				out[i] = se(row)
			}
			w.rawRows = append(w.rawRows, out)
			return nil
		}
		keyVals := make([]event.Value, len(ev.groupEvals))
		for i, ge := range ev.groupEvals {
			keyVals[i] = ge(row)
		}
		key := encodeKey(keyVals)
		g := w.groups[key]
		if g == nil {
			g = &exactGroup{keyVals: keyVals}
			for _, a := range p.Aggs {
				ea, err := newExactAgg(a.Spec)
				if err != nil {
					return err
				}
				g.aggs = append(g.aggs, ea)
			}
			w.groups[key] = g
		}
		for i, a := range g.aggs {
			if ev.aggArgEvals[i] == nil {
				a.add(event.Bool(true)) // COUNT(*)
			} else {
				a.add(ev.aggArgEvals[i](row))
			}
		}
		return nil
	}

	for i := range events {
		e := &events[i]
		if p.StartNanos != 0 && e.TsNanos < p.StartNanos {
			continue
		}
		if p.EndNanos != 0 && e.TsNanos >= p.EndNanos {
			continue
		}
		// Covering window starts, ascending (mirrors window.SlidingAssigner).
		latest := e.TsNanos - (e.TsNanos % sl)
		if e.TsNanos%sl < 0 {
			latest -= sl
		}
		for start := latest - size + sl; start <= latest; start += sl {
			w := getWin(start)
			if !p.IsJoin() {
				if row := (eventRow{ev: ev, e: e}); ev.centralPred == nil || ev.centralPred(row) {
					if err := accumulate(w, row); err != nil {
						return nil, err
					}
				}
				continue
			}
			cell := w.sides[e.RequestID]
			if cell == nil {
				cell = &[2][]*Event{}
				w.sides[e.RequestID] = cell
			}
			cell[e.TypeIdx] = append(cell[e.TypeIdx], e)
		}
	}

	// Join windows: exact cross product per request id. Requests iterate
	// in sorted order and sides in arrival order — a deterministic
	// sequence (only float rounding could notice, and contracts compare
	// floats with tolerance).
	if p.IsJoin() {
		for _, w := range wins {
			reqs := make([]uint64, 0, len(w.sides))
			for req := range w.sides {
				reqs = append(reqs, req)
			}
			sort.Slice(reqs, func(i, j int) bool { return reqs[i] < reqs[j] })
			for _, req := range reqs {
				cell := w.sides[req]
				for _, l := range cell[0] {
					for _, r := range cell[1] {
						row := joinedRow{ev: ev, left: l, right: r}
						if ev.centralPred != nil && !ev.centralPred(row) {
							continue
						}
						if err := accumulate(w, row); err != nil {
							return nil, err
						}
					}
				}
			}
		}
	}

	starts := make([]int64, 0, len(wins))
	for s := range wins {
		starts = append(starts, s)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	out := make([]Result, 0, len(starts))
	for _, s := range starts {
		r, err := render(&p, ev, wins[s])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// render turns a window accumulator into the exact Result, mirroring the
// engine's render pipeline (group order, empty-window semantics, HAVING,
// ORDER BY with full-row tie-break, LIMIT) without any scale-up.
func render(p *central.Plan, ev *evaluator, w *windowAcc) (Result, error) {
	res := Result{Start: w.start, End: w.end}

	if !p.HasAgg() && !p.Grouped() {
		res.Rows = w.rawRows
	} else {
		keys := make([]string, 0, len(w.groups))
		for k := range w.groups {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if len(keys) == 0 && p.HasAgg() && !p.Grouped() {
			g := &exactGroup{}
			for _, a := range p.Aggs {
				ea, err := newExactAgg(a.Spec)
				if err != nil {
					return Result{}, err
				}
				g.aggs = append(g.aggs, ea)
			}
			w.groups[""] = g
			keys = append(keys, "")
		}
		for _, k := range keys {
			g := w.groups[k]
			aggVals := make([]event.Value, len(g.aggs))
			for i, a := range g.aggs {
				aggVals[i] = a.result()
			}
			if !p.Grouped() {
				res.AggExact = make([]AggTruth, len(g.aggs))
				for i, a := range g.aggs {
					res.AggExact[i] = a.truth()
				}
			}
			row := groupRow{groupBy: p.GroupBy, keyVals: g.keyVals, aggVals: aggVals}
			if ev.havingPred != nil && !ev.havingPred(row) {
				continue
			}
			out := make([]event.Value, len(ev.selectEvals))
			for i, se := range ev.selectEvals {
				out[i] = se(row)
			}
			res.Rows = append(res.Rows, out)
		}
	}

	// Deterministic ordering, identical to the engine's orderAndLimit.
	if len(p.OrderBy) > 0 {
		sort.Slice(res.Rows, func(i, j int) bool {
			return compareOrdered(p, res.Rows[i], res.Rows[j]) < 0
		})
	} else if !p.HasAgg() && !p.Grouped() {
		sort.Slice(res.Rows, func(i, j int) bool {
			return compareRows(res.Rows[i], res.Rows[j]) < 0
		})
	}
	if p.Limit > 0 && len(res.Rows) > p.Limit {
		res.Rows = res.Rows[:p.Limit]
	}
	return res, nil
}

// --- deterministic row comparison (the engine's contract, restated) ---

func compareValues(a, b event.Value) int {
	if c, ok := a.Compare(b); ok {
		return c
	}
	as, bs := a.String(), b.String()
	switch {
	case as < bs:
		return -1
	case as > bs:
		return 1
	}
	return 0
}

func compareRows(a, b []event.Value) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := compareValues(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func compareOrdered(p *central.Plan, a, b []event.Value) int {
	for _, key := range p.OrderBy {
		if key.Col >= len(a) || key.Col >= len(b) {
			continue
		}
		c := compareValues(a[key.Col], b[key.Col])
		if c == 0 {
			continue
		}
		if key.Desc {
			return -c
		}
		return c
	}
	return compareRows(a, b)
}
