package oracle

import (
	"reflect"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/transport"
)

func buildPlan(t *testing.T, src string) central.Plan {
	t.Helper()
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "exchange_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	cat.MustRegister(event.MustSchema("exclusion",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
		event.FieldDef{Name: "reason", Kind: event.KindString},
	))
	q, err := ql.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, err := ql.Analyze(q, cat)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	cp := central.FromPlan(p, 1, 0, 0, 1, 1)
	cp.Lateness = time.Hour
	return cp
}

func sec(n int64) int64 { return n * int64(time.Second) }

// runEngine feeds the oracle events through a real single-node Engine and
// returns its windows, flushed via StopQuery.
func runEngine(t *testing.T, p central.Plan, events []Event) []transport.ResultWindow {
	t.Helper()
	e := central.NewEngine()
	var wins []transport.ResultWindow
	if err := e.StartQuery(p, func(rw transport.ResultWindow) { wins = append(wins, rw) }); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		e.HandleBatch(transport.TupleBatch{
			QueryID: p.QueryID,
			HostID:  ev.Host,
			TypeIdx: uint8(ev.TypeIdx),
			Tuples: []transport.Tuple{{
				RequestID: ev.RequestID,
				TsNanos:   ev.TsNanos,
				Values:    append([]event.Value(nil), ev.Values...),
			}},
		})
	}
	e.StopQuery(p.QueryID)
	return wins
}

func bid(host string, req uint64, ts int64, user, exch int64, price float64) Event {
	return Event{Host: host, TypeIdx: 0, RequestID: req, TsNanos: ts,
		Values: []event.Value{event.Int(user), event.Int(exch), event.Float(price)}}
}

func TestOracleGroupedCount(t *testing.T) {
	p := buildPlan(t, `select user_id, count(*) from bid group by user_id window 10s`)
	events := []Event{
		bid("h1", 1, sec(1), 42, 1, 0.5),
		bid("h1", 2, sec(2), 42, 1, 0.5),
		bid("h2", 3, sec(3), 7, 1, 0.5),
		bid("h1", 4, sec(15), 42, 1, 0.5),
	}
	got, err := Eval(p, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d windows, want 2", len(got))
	}
	want0 := [][]event.Value{
		{event.Int(7), event.Int(1)},
		{event.Int(42), event.Int(2)},
	}
	if !reflect.DeepEqual(got[0].Rows, want0) {
		t.Errorf("window[0] rows = %v, want %v", got[0].Rows, want0)
	}
	if got[0].Start != 0 || got[0].End != sec(10) {
		t.Errorf("window[0] span = [%d,%d)", got[0].Start, got[0].End)
	}
	if got[1].Start != sec(10) {
		t.Errorf("window[1] start = %d", got[1].Start)
	}
}

func TestOracleMatchesEngineExact(t *testing.T) {
	queries := []string{
		`select user_id, count(*) from bid group by user_id window 10s`,
		`select exchange_id, sum(bid_price), avg(bid_price) from bid group by exchange_id window 10s`,
		`select count(*), min(user_id), max(user_id) from bid window 5s`,
		`select user_id, bid_price from bid where exchange_id = 1 window 10s`,
		`select user_id, exchange_id from bid order by exchange_id desc, user_id limit 3 window 10s`,
		`select count(*) from bid where user_id > 10 group by exchange_id having count(*) > 1 window 10s`,
	}
	events := []Event{
		bid("h1", 1, sec(1), 42, 1, 2.0),
		bid("h1", 2, sec(2), 42, 2, 3.5),
		bid("h2", 3, sec(3), 7, 1, 1.0),
		bid("h2", 4, sec(4), 99, 1, 4.25),
		bid("h1", 5, sec(8), 42, 2, 0.75),
		bid("h2", 6, sec(12), 7, 1, 9.0),
		bid("h1", 7, sec(13), 42, 1, 6.5),
	}
	for _, src := range queries {
		t.Run(src, func(t *testing.T) {
			p := buildPlan(t, src)
			// Project values down to the plan's column set for this query.
			evs := make([]Event, len(events))
			full := []string{"user_id", "exchange_id", "bid_price"}
			for i, ev := range events {
				proj := make([]event.Value, len(p.Columns[0]))
				for j, col := range p.Columns[0] {
					for fi, name := range full {
						if name == col {
							proj[j] = ev.Values[fi]
						}
					}
				}
				evs[i] = ev
				evs[i].Values = proj
			}
			want := runEngine(t, p, evs)
			got, err := Eval(p, evs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("oracle %d windows, engine %d", len(got), len(want))
			}
			for i := range got {
				if got[i].Start != want[i].WindowStart || got[i].End != want[i].WindowEnd {
					t.Errorf("window %d span: oracle [%d,%d) engine [%d,%d)",
						i, got[i].Start, got[i].End, want[i].WindowStart, want[i].WindowEnd)
				}
				if !reflect.DeepEqual(got[i].Rows, want[i].Rows) {
					t.Errorf("window %d rows:\noracle %v\nengine %v", i, got[i].Rows, want[i].Rows)
				}
			}
		})
	}
}

func TestOracleMatchesEngineJoin(t *testing.T) {
	src := `select bid.user_id, exclusion.reason from bid, exclusion where bid.exchange_id = 1 window 10s`
	p := buildPlan(t, src)
	excl := func(host string, req uint64, ts int64, li int64, reason string) Event {
		proj := make([]event.Value, len(p.Columns[1]))
		for j, col := range p.Columns[1] {
			switch col {
			case "line_item_id":
				proj[j] = event.Int(li)
			case "reason":
				proj[j] = event.Str(reason)
			}
		}
		return Event{Host: host, TypeIdx: 1, RequestID: req, TsNanos: ts, Values: proj}
	}
	bidp := func(host string, req uint64, ts int64, user, exch int64) Event {
		proj := make([]event.Value, len(p.Columns[0]))
		for j, col := range p.Columns[0] {
			switch col {
			case "user_id":
				proj[j] = event.Int(user)
			case "exchange_id":
				proj[j] = event.Int(exch)
			}
		}
		return Event{Host: host, TypeIdx: 0, RequestID: req, TsNanos: ts, Values: proj}
	}
	events := []Event{
		bidp("h1", 1, sec(1), 42, 1),
		excl("h2", 1, sec(2), 100, "blocked"),
		// Note: `bid.exchange_id = 1` is pushed down to HostPred by the
		// analyzer; this test feeds the oracle and engine the same
		// *unfiltered* stream on purpose, so req 2 joins like any other.
		bidp("h1", 2, sec(3), 7, 2),
		excl("h2", 2, sec(4), 101, "viewability"),
		bidp("h1", 3, sec(5), 9, 1), // no exclusion partner in window
		excl("h2", 4, sec(6), 102, "orphan"),
		bidp("h1", 1, sec(7), 43, 1), // second bid for req 1: two join rows
	}
	want := runEngine(t, p, events)
	got, err := Eval(p, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("oracle %d windows, engine %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Rows, want[i].Rows) {
			t.Errorf("window %d rows:\noracle %v\nengine %v", i, got[i].Rows, want[i].Rows)
		}
	}
	// Sanity: req 1 contributes two joined rows (both bids × one
	// exclusion), req 2 one, req 3 and the orphan exclusion none.
	if len(got[0].Rows) != 3 {
		t.Errorf("join window rows = %d, want 3: %v", len(got[0].Rows), got[0].Rows)
	}
}

func TestOracleSlidingWindows(t *testing.T) {
	src := `select count(*) from bid window 10s slide 5s`
	p := buildPlan(t, src)
	events := []Event{
		bid("h1", 1, sec(3), 1, 1, 0),
		bid("h1", 2, sec(7), 2, 1, 0),
	}
	// Project to plan columns (count(*) needs no user columns, but plan
	// may still carry some).
	for i := range events {
		proj := make([]event.Value, len(p.Columns[0]))
		full := []string{"user_id", "exchange_id", "bid_price"}
		for j, col := range p.Columns[0] {
			for fi, name := range full {
				if name == col {
					proj[j] = events[i].Values[fi]
				}
			}
		}
		events[i].Values = proj
	}
	want := runEngine(t, p, events)
	got, err := Eval(p, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("oracle %d windows, engine %d: oracle %+v", len(got), len(want), got)
	}
	for i := range got {
		if got[i].Start != want[i].WindowStart {
			t.Errorf("window %d start: oracle %d engine %d", i, got[i].Start, want[i].WindowStart)
		}
		if !reflect.DeepEqual(got[i].Rows, want[i].Rows) {
			t.Errorf("window %d rows:\noracle %v\nengine %v", i, got[i].Rows, want[i].Rows)
		}
	}
}

func TestOracleTopKAndDistinctExact(t *testing.T) {
	src := `select top_k(user_id, 2), count_distinct(exchange_id) from bid window 10s`
	p := buildPlan(t, src)
	var events []Event
	mk := func(req uint64, ts int64, user, exch int64) {
		proj := make([]event.Value, len(p.Columns[0]))
		for j, col := range p.Columns[0] {
			switch col {
			case "user_id":
				proj[j] = event.Int(user)
			case "exchange_id":
				proj[j] = event.Int(exch)
			}
		}
		events = append(events, Event{Host: "h", TypeIdx: 0, RequestID: req, TsNanos: ts, Values: proj})
	}
	mk(1, sec(1), 5, 1)
	mk(2, sec(2), 5, 2)
	mk(3, sec(3), 5, 1)
	mk(4, sec(4), 8, 3)
	mk(5, sec(5), 8, 1)
	mk(6, sec(6), 2, 2)
	got, err := Eval(p, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("%d windows, want 1", len(got))
	}
	truth := got[0].AggExact
	if len(truth) != 2 {
		t.Fatalf("AggExact len = %d, want 2", len(truth))
	}
	if truth[0].Items["5"] != 3 || truth[0].Items["8"] != 2 || truth[0].Items["2"] != 1 {
		t.Errorf("TOP_K exact items = %v", truth[0].Items)
	}
	if truth[1].Distinct != 3 {
		t.Errorf("COUNT_DISTINCT exact = %d, want 3", truth[1].Distinct)
	}
	// Small universe: engine's SpaceSaving capacity far exceeds 3 items,
	// so the rendered TOP_K list must match the oracle's exactly.
	want := runEngine(t, p, events)
	if len(want) != 1 {
		t.Fatalf("engine %d windows, want 1", len(want))
	}
	if !reflect.DeepEqual(got[0].Rows[0][0], want[0].Rows[0][0]) {
		t.Errorf("TOP_K render: oracle %v engine %v", got[0].Rows[0][0], want[0].Rows[0][0])
	}
}
