package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

// exactCounts tallies a stream exactly.
func exactCounts(stream []string) map[string]uint64 {
	m := make(map[string]uint64)
	for _, it := range stream {
		m[it]++
	}
	return m
}

// checkSound asserts the SpaceSaving guarantee for every tracked item:
// trueCount <= Count and Count − Err <= trueCount.
func checkSound(t *testing.T, s *SpaceSaving, exact map[string]uint64, ctx string) {
	t.Helper()
	for _, e := range s.Top(s.Len()) {
		truth := exact[e.Item]
		if e.Count < truth {
			t.Errorf("%s: item %q count %d underestimates true %d", ctx, e.Item, e.Count, truth)
		}
		if e.Count-e.Err > truth {
			t.Errorf("%s: item %q count−err %d exceeds true %d (count %d err %d)",
				ctx, e.Item, e.Count-e.Err, truth, e.Count, e.Err)
		}
	}
}

// zipfStream draws n items from a skewed distribution over universe
// items so merges see both heavy hitters and eviction churn.
func zipfStream(rng *rand.Rand, n, universe int) []string {
	z := rand.NewZipf(rng, 1.3, 1.0, uint64(universe-1))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("item-%03d", z.Uint64())
	}
	return out
}

// TestSpaceSavingMergeSound is the satellite property test: merged
// summaries must keep the paper's overestimate guarantee against exact
// counts — an item present in only one full summary inherits the other
// summary's minimum count as error, and count−err stays a lower bound.
func TestSpaceSavingMergeSound(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := 8 + rng.Intn(24)
		parts := 2 + rng.Intn(6)
		var all []string
		summaries := make([]*SpaceSaving, parts)
		for p := 0; p < parts; p++ {
			stream := zipfStream(rng, 200+rng.Intn(800), 100)
			all = append(all, stream...)
			summaries[p] = MustSpaceSaving(capacity)
			for _, it := range stream {
				summaries[p].Add(it)
			}
		}
		exact := exactCounts(all)
		merged := summaries[0]
		for _, o := range summaries[1:] {
			merged.Merge(o)
		}
		checkSound(t, merged, exact, fmt.Sprintf("seed %d", seed))
		if merged.Len() > capacity {
			t.Errorf("seed %d: merged len %d exceeds capacity %d", seed, merged.Len(), capacity)
		}
	}
}

// TestSpaceSavingMergeUniqueInheritsMin pins the exact bug the audit
// found: an item tracked only by one full summary must inherit the other
// full summary's minimum count, otherwise its merged count can
// underestimate its true total.
func TestSpaceSavingMergeUniqueInheritsMin(t *testing.T) {
	// s tracks a,b and is at capacity with min count 5. The true stream
	// behind s could have contained up to 5 occurrences of c (evicted).
	s := MustSpaceSaving(2)
	for i := 0; i < 7; i++ {
		s.Add("a")
	}
	for i := 0; i < 5; i++ {
		s.Add("b")
	}
	// o tracks c only (not at capacity: absence from o means true zero).
	o := MustSpaceSaving(2)
	for i := 0; i < 6; i++ {
		o.Add("c")
	}
	s.Merge(o)
	c, ok := s.Count("c")
	if !ok {
		t.Fatal("item c lost in merge")
	}
	// c's true count across both streams can be as high as 6 + 5 = 11
	// (the 5 from s's evictions); the merged estimate must cover that.
	if c < 11 {
		t.Errorf("merged count for c = %d; must be >= 11 (6 seen in o + s's min 5)", c)
	}
	// And a, b gain nothing from o, which is below capacity.
	if a, _ := s.Count("a"); a != 7 {
		t.Errorf("merged count for a = %d, want 7 (o below capacity inherits nothing)", a)
	}
}

// TestSpaceSavingMergeSymmetric checks merge(a,b) and merge(b,a) report
// the same Top list — required for deterministic cross-shard merges.
func TestSpaceSavingMergeSymmetric(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		capacity := 4 + rng.Intn(12)
		mk := func(stream []string) *SpaceSaving {
			s := MustSpaceSaving(capacity)
			for _, it := range stream {
				s.Add(it)
			}
			return s
		}
		s1 := zipfStream(rng, 500, 60)
		s2 := zipfStream(rng, 500, 60)
		ab, ba := mk(s1), mk(s2)
		ab.Merge(mk(s2))
		ba.Merge(mk(s1))
		ta, tb := ab.Top(ab.Len()), ba.Top(ba.Len())
		if len(ta) != len(tb) {
			t.Fatalf("seed %d: asymmetric merge: %d vs %d items", seed, len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				t.Errorf("seed %d: entry %d differs: %+v vs %+v", seed, i, ta[i], tb[i])
			}
		}
	}
}

// TestSpaceSavingMergeThenAdd checks the rebuilt bucket structure stays
// usable: adds after a merge must keep O(1) bookkeeping intact and the
// guarantee sound.
func TestSpaceSavingMergeThenAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := MustSpaceSaving(10)
	o := MustSpaceSaving(10)
	pre := zipfStream(rng, 400, 40)
	for _, it := range pre {
		s.Add(it)
	}
	mid := zipfStream(rng, 400, 40)
	for _, it := range mid {
		o.Add(it)
	}
	s.Merge(o)
	post := zipfStream(rng, 400, 40)
	for _, it := range post {
		s.Add(it)
	}
	exact := exactCounts(append(append(append([]string(nil), pre...), mid...), post...))
	checkSound(t, s, exact, "merge-then-add")
}
