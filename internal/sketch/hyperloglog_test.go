package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestNewHLLValidation(t *testing.T) {
	if _, err := NewHLL(3); err == nil {
		t.Error("precision 3 should fail")
	}
	if _, err := NewHLL(19); err == nil {
		t.Error("precision 19 should fail")
	}
	h, err := NewHLL(DefaultHLLPrecision)
	if err != nil || h.Precision() != DefaultHLLPrecision {
		t.Fatalf("NewHLL default: %v", err)
	}
}

func TestMustHLLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustHLL(0) should panic")
		}
	}()
	MustHLL(0)
}

func TestHLLEmpty(t *testing.T) {
	h := MustHLL(10)
	if est := h.Estimate(); est != 0 {
		t.Errorf("empty estimate = %d, want 0", est)
	}
}

func TestHLLAccuracySweep(t *testing.T) {
	// For each cardinality, the estimate must fall within 5 standard
	// errors (generous: avoids flakiness while still catching real bugs).
	h := MustHLL(14)
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{10, 100, 1000, 10000, 100000, 1000000} {
		h.Reset()
		seen := make(map[uint64]bool, n)
		for len(seen) < n {
			x := rng.Uint64()
			if !seen[x] {
				seen[x] = true
				h.AddUint64(x)
			}
		}
		est := float64(h.Estimate())
		rel := math.Abs(est-float64(n)) / float64(n)
		if rel > 5*h.StdError() {
			t.Errorf("n=%d: estimate %v, relative error %.4f > %.4f", n, est, rel, 5*h.StdError())
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := MustHLL(12)
	for i := 0; i < 100; i++ {
		for j := 0; j < 1000; j++ {
			h.AddUint64(uint64(i))
		}
	}
	est := h.Estimate()
	if est < 80 || est > 120 {
		t.Errorf("100 distinct items added 1000x each: estimate %d", est)
	}
}

func TestHLLAddBytes(t *testing.T) {
	h := MustHLL(12)
	for i := 0; i < 5000; i++ {
		h.Add([]byte(fmt.Sprintf("user-%d", i)))
	}
	est := float64(h.Estimate())
	if math.Abs(est-5000)/5000 > 5*h.StdError() {
		t.Errorf("byte-string estimate %v for 5000 distinct", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := MustHLL(12), MustHLL(12)
	for i := 0; i < 10000; i++ {
		a.AddUint64(uint64(i))
	}
	for i := 5000; i < 15000; i++ {
		b.AddUint64(uint64(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	est := float64(a.Estimate())
	if math.Abs(est-15000)/15000 > 5*a.StdError() {
		t.Errorf("merged estimate %v, want ~15000", est)
	}
	// Merge is an upper bound union: merging b again changes nothing.
	before := a.Estimate()
	if err := a.Merge(b); err != nil || a.Estimate() != before {
		t.Error("idempotent re-merge changed the estimate")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil): %v", err)
	}
	c := MustHLL(10)
	if err := a.Merge(c); err == nil {
		t.Error("precision mismatch merge should fail")
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	// merge(A,B) must equal the sketch of the concatenated stream.
	a, b, u := MustHLL(12), MustHLL(12), MustHLL(12)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		x := rng.Uint64()
		if i%2 == 0 {
			a.AddUint64(x)
		} else {
			b.AddUint64(x)
		}
		u.AddUint64(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != u.Estimate() {
		t.Errorf("merge estimate %d != union estimate %d", a.Estimate(), u.Estimate())
	}
}

func TestHLLSerializeRoundTrip(t *testing.T) {
	h := MustHLL(11)
	for i := 0; i < 12345; i++ {
		h.AddUint64(uint64(i))
	}
	buf := h.AppendBinary(nil)
	got, n, err := DecodeHLL(buf)
	if err != nil {
		t.Fatalf("DecodeHLL: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if got.Estimate() != h.Estimate() {
		t.Errorf("round-trip estimate %d != %d", got.Estimate(), h.Estimate())
	}
}

func TestDecodeHLLErrors(t *testing.T) {
	if _, _, err := DecodeHLL(nil); err == nil {
		t.Error("empty decode should fail")
	}
	if _, _, err := DecodeHLL([]byte{99}); err == nil {
		t.Error("bad precision should fail")
	}
	if _, _, err := DecodeHLL([]byte{10, 1, 2}); err == nil {
		t.Error("short registers should fail")
	}
}

func TestHLLReset(t *testing.T) {
	h := MustHLL(10)
	for i := 0; i < 1000; i++ {
		h.AddUint64(uint64(i))
	}
	h.Reset()
	if h.Estimate() != 0 {
		t.Errorf("after Reset estimate = %d", h.Estimate())
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h := MustHLL(14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.AddUint64(uint64(i))
	}
}

func BenchmarkHLLEstimate(b *testing.B) {
	h := MustHLL(14)
	for i := 0; i < 100000; i++ {
		h.AddUint64(uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Estimate()
	}
}
