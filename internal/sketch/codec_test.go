package sketch

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestSpaceSavingCodecRoundTrip checks that a decoded summary reports the
// exact entries of the original and keeps behaving identically under
// further additions and merges (the coordinator's partial-shipping path).
func TestSpaceSavingCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		capacity := 1 + rng.Intn(40)
		s := MustSpaceSaving(capacity)
		adds := rng.Intn(500)
		for i := 0; i < adds; i++ {
			s.AddN(fmt.Sprintf("item-%d", rng.Intn(80)), uint64(1+rng.Intn(5)))
		}
		enc := s.AppendBinary(nil)
		d, n, err := DecodeSpaceSaving(enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(enc) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, n, len(enc))
		}
		if d.Capacity() != s.Capacity() || d.Len() != s.Len() {
			t.Fatalf("trial %d: capacity/len mismatch: %d/%d vs %d/%d",
				trial, d.Capacity(), d.Len(), s.Capacity(), s.Len())
		}
		wantTop, gotTop := s.Top(s.Len()), d.Top(d.Len())
		for i := range wantTop {
			if wantTop[i] != gotTop[i] {
				t.Fatalf("trial %d: entry %d: %+v vs %+v", trial, i, gotTop[i], wantTop[i])
			}
		}
		// Behavioral equivalence: the same subsequent workload must leave
		// both summaries with identical contents.
		other := MustSpaceSaving(capacity)
		for i := 0; i < 100; i++ {
			other.AddN(fmt.Sprintf("other-%d", rng.Intn(30)), uint64(1+rng.Intn(3)))
		}
		for i := 0; i < 200; i++ {
			item := fmt.Sprintf("item-%d", rng.Intn(100))
			s.Add(item)
			d.Add(item)
		}
		s.Merge(other)
		d.Merge(other)
		wantTop, gotTop = s.Top(s.Len()), d.Top(d.Len())
		if len(wantTop) != len(gotTop) {
			t.Fatalf("trial %d: post-workload len %d vs %d", trial, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if wantTop[i] != gotTop[i] {
				t.Fatalf("trial %d: post-workload entry %d: %+v vs %+v", trial, i, gotTop[i], wantTop[i])
			}
		}
	}
}

func TestSpaceSavingCodecEmpty(t *testing.T) {
	s := MustSpaceSaving(8)
	enc := s.AppendBinary(nil)
	d, n, err := DecodeSpaceSaving(enc)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if n != len(enc) || d.Len() != 0 || d.Capacity() != 8 {
		t.Fatalf("empty round-trip: n=%d len=%d cap=%d", n, d.Len(), d.Capacity())
	}
	d.Add("x")
	if c, ok := d.Count("x"); !ok || c != 1 {
		t.Fatalf("decoded empty summary unusable: count=%d ok=%v", c, ok)
	}
}

func TestSpaceSavingDecodeErrors(t *testing.T) {
	s := MustSpaceSaving(4)
	s.Add("a")
	enc := s.AppendBinary(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeSpaceSaving(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
}
