package sketch

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("capacity 0 should fail")
	}
	if _, err := NewSpaceSaving(-1); err == nil {
		t.Error("negative capacity should fail")
	}
	s, err := NewSpaceSaving(8)
	if err != nil || s.Capacity() != 8 {
		t.Fatalf("NewSpaceSaving: %v", err)
	}
}

func TestMustSpaceSavingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSpaceSaving(0) should panic")
		}
	}()
	MustSpaceSaving(0)
}

func TestSpaceSavingExactWhenUnderCapacity(t *testing.T) {
	s := MustSpaceSaving(10)
	truth := map[string]uint64{"a": 5, "b": 3, "c": 7, "d": 1}
	for item, n := range truth {
		for i := uint64(0); i < n; i++ {
			s.Add(item)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	for item, n := range truth {
		got, ok := s.Count(item)
		if !ok || got != n {
			t.Errorf("Count(%s) = %d, %v; want %d", item, got, ok, n)
		}
	}
	top := s.Top(2)
	if len(top) != 2 || top[0].Item != "c" || top[1].Item != "a" {
		t.Errorf("Top(2) = %v", top)
	}
	if top[0].Err != 0 {
		t.Errorf("under capacity, Err should be 0, got %d", top[0].Err)
	}
	if _, ok := s.Count("zzz"); ok {
		t.Error("untracked item should be not-ok")
	}
}

func TestSpaceSavingOverestimateInvariant(t *testing.T) {
	// count(x) is always >= trueCount(x) and <= trueCount(x) + err(x).
	const capacity = 20
	s := MustSpaceSaving(capacity)
	truth := make(map[string]uint64)
	rng := rand.New(rand.NewSource(3))
	// Zipf-ish: item i chosen proportional to 1/(i+1).
	zipf := rand.NewZipf(rng, 1.3, 1, 499)
	for i := 0; i < 50000; i++ {
		item := fmt.Sprintf("it-%d", zipf.Uint64())
		truth[item]++
		s.Add(item)
	}
	for _, e := range s.Top(s.Len()) {
		trueCount := truth[e.Item]
		if e.Count < trueCount {
			t.Errorf("%s: estimate %d below true %d", e.Item, e.Count, trueCount)
		}
		if e.Count > trueCount+e.Err {
			t.Errorf("%s: estimate %d exceeds true %d + err %d", e.Item, e.Count, trueCount, e.Err)
		}
	}
}

func TestSpaceSavingHeavyHittersSurvive(t *testing.T) {
	// Items with true count > N/capacity are guaranteed tracked.
	const capacity = 50
	s := MustSpaceSaving(capacity)
	n := 0
	add := func(item string, c int) {
		for i := 0; i < c; i++ {
			s.Add(item)
			n++
		}
	}
	// Heavy items interleaved with a long noise tail.
	for round := 0; round < 100; round++ {
		add("heavy-A", 30)
		add("heavy-B", 20)
		for i := 0; i < 40; i++ {
			add(fmt.Sprintf("noise-%d-%d", round, i), 1)
		}
	}
	threshold := uint64(n / capacity)
	for _, heavy := range []string{"heavy-A", "heavy-B"} {
		c, ok := s.Count(heavy)
		if !ok {
			t.Errorf("%s (true count > N/capacity=%d) evicted", heavy, threshold)
		} else if c < 2000 {
			t.Errorf("%s count %d below true count", heavy, c)
		}
	}
	top := s.Top(2)
	if top[0].Item != "heavy-A" || top[1].Item != "heavy-B" {
		t.Errorf("Top(2) = %v", top)
	}
}

func TestSpaceSavingAddN(t *testing.T) {
	s := MustSpaceSaving(4)
	s.AddN("x", 100)
	s.AddN("x", 0) // no-op
	if c, _ := s.Count("x"); c != 100 {
		t.Errorf("Count(x) = %d", c)
	}
	if s.TotalCount() != 100 {
		t.Errorf("TotalCount = %d", s.TotalCount())
	}
}

func TestSpaceSavingTopOrderDeterministic(t *testing.T) {
	s := MustSpaceSaving(10)
	s.AddN("b", 5)
	s.AddN("a", 5)
	s.AddN("c", 9)
	top := s.Top(10)
	if top[0].Item != "c" || top[1].Item != "a" || top[2].Item != "b" {
		t.Errorf("tie-break order wrong: %v", top)
	}
}

func TestSpaceSavingMerge(t *testing.T) {
	a, b := MustSpaceSaving(10), MustSpaceSaving(10)
	a.AddN("x", 50)
	a.AddN("y", 10)
	b.AddN("x", 25)
	b.AddN("z", 40)
	a.Merge(b)
	if c, _ := a.Count("x"); c != 75 {
		t.Errorf("merged x = %d, want 75", c)
	}
	if c, _ := a.Count("z"); c != 40 {
		t.Errorf("merged z = %d, want 40", c)
	}
	a.Merge(nil) // no-op
	if c, _ := a.Count("y"); c != 10 {
		t.Errorf("y disturbed by nil merge: %d", c)
	}
}

func TestSpaceSavingMergeOverCapacity(t *testing.T) {
	a, b := MustSpaceSaving(3), MustSpaceSaving(3)
	a.AddN("a1", 100)
	a.AddN("a2", 90)
	a.AddN("a3", 1)
	b.AddN("b1", 80)
	b.AddN("b2", 70)
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (capacity)", a.Len())
	}
	// The heavy incumbents survive the merge.
	for _, item := range []string{"a1", "a2"} {
		if _, ok := a.Count(item); !ok {
			t.Errorf("heavy item %s evicted by merge", item)
		}
	}
	// The third slot holds one of the merged-in items (whichever survived
	// the capacity fight) with a count at least covering its own weight.
	c1, ok1 := a.Count("b1")
	c2, ok2 := a.Count("b2")
	if !ok1 && !ok2 {
		t.Fatal("neither merged-in item tracked after merge")
	}
	if ok1 && c1 < 80 {
		t.Errorf("b1 count %d below its true 80", c1)
	}
	if ok2 && c2 < 70 {
		t.Errorf("b2 count %d below its true 70", c2)
	}
}

func TestSpaceSavingMergeInvariantQuick(t *testing.T) {
	// Property: after merging two independently built summaries, every
	// tracked count is >= the item's true combined count... only guaranteed
	// for items still tracked; check the overestimate bound instead.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		truth := make(map[string]uint64)
		a, b := MustSpaceSaving(8), MustSpaceSaving(8)
		for i := 0; i < 500; i++ {
			item := fmt.Sprintf("i%d", rng.Intn(30))
			truth[item]++
			if rng.Intn(2) == 0 {
				a.Add(item)
			} else {
				b.Add(item)
			}
		}
		a.Merge(b)
		for _, e := range a.Top(a.Len()) {
			if e.Count < truth[e.Item] && e.Count+e.Err < truth[e.Item] {
				return false
			}
			if e.Count > truth[e.Item]+e.Err {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSpaceSavingAdd(b *testing.B) {
	s := MustSpaceSaving(1000)
	items := make([]string, 4096)
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, 100000)
	for i := range items {
		items[i] = fmt.Sprintf("user-%d", zipf.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(items[i&4095])
	}
}
