// Package sketch implements the probabilistic summaries Scrub's query
// language exposes: HyperLogLog for COUNT_DISTINCT (Heule et al., "HLL in
// practice") and the SpaceSaving stream summary for TOP-K (Metwally et al.).
//
// Both sketches are mergeable, which is what lets ScrubCentral combine
// partial summaries across windows without ever holding raw values, and
// both trade bounded memory for bounded, well-characterized error — the
// paper's "accuracy traded for minimal impact" design rule.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality estimator with 2^precision registers.
// The zero value is not usable; construct with NewHLL.
type HLL struct {
	precision uint8
	registers []uint8
}

// Default and allowed precision range. Precision p gives a standard error
// of roughly 1.04/sqrt(2^p): p=14 → ~0.81%.
const (
	MinHLLPrecision     = 4
	MaxHLLPrecision     = 18
	DefaultHLLPrecision = 14
)

// NewHLL creates an estimator with 2^precision registers.
func NewHLL(precision uint8) (*HLL, error) {
	if precision < MinHLLPrecision || precision > MaxHLLPrecision {
		return nil, fmt.Errorf("sketch: HLL precision %d outside [%d, %d]", precision, MinHLLPrecision, MaxHLLPrecision)
	}
	return &HLL{precision: precision, registers: make([]uint8, 1<<precision)}, nil
}

// MustHLL is NewHLL that panics on error.
func MustHLL(precision uint8) *HLL {
	h, err := NewHLL(precision)
	if err != nil {
		panic(err)
	}
	return h
}

// Precision returns the register-count exponent.
func (h *HLL) Precision() uint8 { return h.precision }

// fmix64 is the MurmurHash3 finalizer. Upstream hashes (FNV-1a over short,
// near-sequential keys) are not uniform enough in their high bits, which
// HLL uses for register selection; the finalizer restores avalanche.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// AddHash folds an already-hashed 64-bit item into the sketch. Scrub feeds
// event.Value.Hash() outputs here, so equal values always land identically.
// The input is re-mixed internally, so weakly avalanched hashes are safe.
func (h *HLL) AddHash(x uint64) {
	x = fmix64(x)
	p := h.precision
	idx := x >> (64 - p)
	rest := x<<p | 1<<(p-1) // ensure a terminator bit so rho is bounded
	rho := uint8(bits.LeadingZeros64(rest)) + 1
	if rho > h.registers[idx] {
		h.registers[idx] = rho
	}
}

// Add hashes an arbitrary byte string into the sketch (FNV-1a 64).
func (h *HLL) Add(b []byte) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var x uint64 = offset64
	for _, c := range b {
		x ^= uint64(c)
		x *= prime64
	}
	h.AddHash(x)
}

func alpha(m int) float64 {
	switch m {
	case 16:
		return 0.673
	case 32:
		return 0.697
	case 64:
		return 0.709
	default:
		return 0.7213 / (1 + 1.079/float64(m))
	}
}

// Estimate returns the cardinality estimate, with linear-counting
// small-range correction as in the HLL++ paper.
func (h *HLL) Estimate() uint64 {
	m := len(h.registers)
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha(m) * float64(m) * float64(m) / sum
	// Small-range correction: linear counting when registers are sparse.
	if est <= 2.5*float64(m) && zeros > 0 {
		est = float64(m) * math.Log(float64(m)/float64(zeros))
	}
	return uint64(est + 0.5)
}

// StdError returns the theoretical relative standard error for this
// precision, used when reporting approximate results to the troubleshooter.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}

// Merge folds another sketch into h. Both must share a precision.
func (h *HLL) Merge(o *HLL) error {
	if o == nil {
		return nil
	}
	if h.precision != o.precision {
		return fmt.Errorf("sketch: cannot merge HLL precision %d into %d", o.precision, h.precision)
	}
	for i, r := range o.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Reset clears the sketch for reuse.
func (h *HLL) Reset() {
	for i := range h.registers {
		h.registers[i] = 0
	}
}

// AppendBinary serializes the sketch (precision byte + raw registers).
func (h *HLL) AppendBinary(dst []byte) []byte {
	dst = append(dst, h.precision)
	return append(dst, h.registers...)
}

// DecodeHLL parses a sketch serialized by AppendBinary, returning bytes
// consumed.
func DecodeHLL(b []byte) (*HLL, int, error) {
	if len(b) < 1 {
		return nil, 0, fmt.Errorf("sketch: decode HLL: empty")
	}
	p := b[0]
	if p < MinHLLPrecision || p > MaxHLLPrecision {
		return nil, 0, fmt.Errorf("sketch: decode HLL: bad precision %d", p)
	}
	m := 1 << p
	if len(b) < 1+m {
		return nil, 0, fmt.Errorf("sketch: decode HLL: short registers")
	}
	h := &HLL{precision: p, registers: make([]uint8, m)}
	copy(h.registers, b[1:1+m])
	return h, 1 + m, nil
}

// hashUint64 is exposed for tests that need the same item→hash mapping the
// sketches use for integer items.
func hashUint64(x uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range buf {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// AddUint64 adds an integer item.
func (h *HLL) AddUint64(x uint64) { h.AddHash(hashUint64(x)) }
