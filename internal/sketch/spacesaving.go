package sketch

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SpaceSaving is the stream-summary structure of Metwally, Agrawal and El
// Abbadi ("Efficient Computation of Frequent and Top-k Elements in Data
// Streams"), which Scrub uses for the TOP-K aggregate. It tracks at most
// `capacity` counters; when a new item arrives with all counters occupied,
// it evicts the minimum counter and inherits its count as overestimation
// error. Guarantees: count(x) <= trueCount(x) + min; every item with true
// count > N/capacity is present.
type SpaceSaving struct {
	capacity int
	counters map[string]*ssCounter
	// buckets is a doubly linked list of distinct counts in ascending
	// order; each bucket holds the set of counters at that count. This is
	// the "stream summary" layout that gives O(1) increments.
	minBucket *ssBucket
}

type ssCounter struct {
	item   string
	count  uint64
	errVal uint64 // overestimation inherited at takeover
	bucket *ssBucket
}

type ssBucket struct {
	count      uint64
	members    map[*ssCounter]struct{}
	prev, next *ssBucket
}

// NewSpaceSaving creates a summary with the given counter capacity.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sketch: SpaceSaving capacity must be positive, got %d", capacity)
	}
	return &SpaceSaving{capacity: capacity, counters: make(map[string]*ssCounter, capacity)}, nil
}

// MustSpaceSaving is NewSpaceSaving that panics on error.
func MustSpaceSaving(capacity int) *SpaceSaving {
	s, err := NewSpaceSaving(capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Capacity returns the maximum number of tracked items.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Len returns the number of currently tracked items.
func (s *SpaceSaving) Len() int { return len(s.counters) }

// Add increments item by one.
func (s *SpaceSaving) Add(item string) { s.AddN(item, 1) }

// AddN increments item by n.
func (s *SpaceSaving) AddN(item string, n uint64) {
	if n == 0 {
		return
	}
	if c, ok := s.counters[item]; ok {
		s.bump(c, n)
		return
	}
	if len(s.counters) < s.capacity {
		c := &ssCounter{item: item, count: 0}
		s.counters[item] = c
		s.attach(c) // attach at count 0 bucket semantics via bump
		s.bump(c, n)
		return
	}
	// Evict the minimum counter: the new item takes it over, inheriting
	// its count as error.
	victim := s.anyMinCounter()
	delete(s.counters, victim.item)
	victim.errVal = victim.count
	victim.item = item
	s.counters[item] = victim
	s.bump(victim, n)
}

// attach places a fresh counter into a zero-count staging bucket.
func (s *SpaceSaving) attach(c *ssCounter) {
	b := s.minBucket
	if b == nil || b.count != 0 {
		nb := &ssBucket{count: 0, members: make(map[*ssCounter]struct{})}
		nb.next = s.minBucket
		if s.minBucket != nil {
			s.minBucket.prev = nb
		}
		s.minBucket = nb
		b = nb
	}
	b.members[c] = struct{}{}
	c.bucket = b
}

// bump moves a counter up by n, maintaining the bucket list.
func (s *SpaceSaving) bump(c *ssCounter, n uint64) {
	old := c.bucket
	newCount := c.count + n
	c.count = newCount

	// Find or create the destination bucket after old.
	cur := old
	for cur.next != nil && cur.next.count < newCount {
		cur = cur.next
	}
	var dst *ssBucket
	if cur.next != nil && cur.next.count == newCount {
		dst = cur.next
	} else {
		dst = &ssBucket{count: newCount, members: make(map[*ssCounter]struct{})}
		dst.prev = cur
		dst.next = cur.next
		if cur.next != nil {
			cur.next.prev = dst
		}
		cur.next = dst
	}
	delete(old.members, c)
	dst.members[c] = struct{}{}
	c.bucket = dst
	if len(old.members) == 0 {
		s.unlink(old)
	}
}

func (s *SpaceSaving) unlink(b *ssBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.minBucket = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}

// anyMinCounter picks the eviction victim from the minimum bucket: the
// lexicographically smallest item, so identical streams always build
// identical summaries. Map-order victim choice would make replays (and
// Engine vs ShardedEngine comparisons) nondeterministic. The scan is
// bounded by the summary capacity and only runs on eviction.
func (s *SpaceSaving) anyMinCounter() *ssCounter {
	var victim *ssCounter
	for c := range s.minBucket.members {
		if victim == nil || c.item < victim.item {
			victim = c
		}
	}
	return victim // nil is unreachable when Len > 0
}

// Entry is one reported heavy hitter. Count overestimates the true count by
// at most Err.
type Entry struct {
	Item  string
	Count uint64
	Err   uint64
}

// Top returns the k highest-count entries, ties broken by item for
// determinism.
func (s *SpaceSaving) Top(k int) []Entry {
	all := make([]Entry, 0, len(s.counters))
	for _, c := range s.counters {
		all = append(all, Entry{Item: c.item, Count: c.count, Err: c.errVal})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Count returns the (over)estimate for an item and whether it is tracked.
func (s *SpaceSaving) Count(item string) (uint64, bool) {
	c, ok := s.counters[item]
	if !ok {
		return 0, false
	}
	return c.count, true
}

// Merge folds another summary into s using the mergeable-summaries
// algorithm for SpaceSaving: counts and errors for common items add; an
// item tracked by only one full summary may still have occurred up to
// the other summary's minimum count times there, so it inherits that
// minimum as both count and overestimation error (absence from a
// below-capacity summary means a true zero and inherits nothing). The
// merged items are ranked by count and the top `capacity` survive. This
// keeps both sides of the SpaceSaving guarantee sound after any merge
// tree: trueCount(x) <= Count(x) and Count(x) − Err(x) <= trueCount(x).
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || o.Len() == 0 {
		return
	}
	minS := s.minInheritance()
	minO := o.minInheritance()
	merged := make(map[string]Entry, len(s.counters)+len(o.counters))
	for _, c := range s.counters {
		merged[c.item] = Entry{Item: c.item, Count: c.count, Err: c.errVal}
	}
	for _, c := range o.counters {
		if e, ok := merged[c.item]; ok {
			e.Count += c.count
			e.Err += c.errVal
			merged[c.item] = e
		} else {
			merged[c.item] = Entry{Item: c.item, Count: c.count + minS, Err: c.errVal + minS}
		}
	}
	if minO > 0 {
		for item, e := range merged {
			if _, inO := o.counters[item]; !inO {
				e.Count += minO
				e.Err += minO
				merged[item] = e
			}
		}
	}
	all := make([]Entry, 0, len(merged))
	for _, e := range merged {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	if len(all) > s.capacity {
		all = all[:s.capacity]
	}
	s.rebuild(all)
}

// minInheritance returns the count an untracked item could have reached
// in this summary: the minimum tracked count when at capacity, else 0
// (a below-capacity summary tracks everything it has ever seen).
func (s *SpaceSaving) minInheritance() uint64 {
	if len(s.counters) < s.capacity || s.minBucket == nil {
		return 0
	}
	return s.minBucket.count
}

// rebuild replaces the summary's contents with entries sorted by
// descending count, reconstructing the ascending bucket list.
func (s *SpaceSaving) rebuild(entries []Entry) {
	s.counters = make(map[string]*ssCounter, s.capacity)
	s.minBucket = nil
	var prev *ssBucket
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		c := &ssCounter{item: e.Item, count: e.Count, errVal: e.Err}
		s.counters[e.Item] = c
		if prev == nil || prev.count != e.Count {
			b := &ssBucket{count: e.Count, members: make(map[*ssCounter]struct{}), prev: prev}
			if prev != nil {
				prev.next = b
			} else {
				s.minBucket = b
			}
			prev = b
		}
		prev.members[c] = struct{}{}
		c.bucket = prev
	}
}

// AppendBinary serializes the summary: capacity, entry count, then every
// tracked entry in descending-count order (ties by item). A SpaceSaving's
// observable behavior — counts, eviction victims, merge inheritance — is
// fully determined by its (item, count, err) multiset plus capacity, so
// this encoding is lossless even though the bucket list is not written.
func (s *SpaceSaving) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.capacity))
	entries := s.Top(len(s.counters))
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e.Item)))
		dst = append(dst, e.Item...)
		dst = binary.AppendUvarint(dst, e.Count)
		dst = binary.AppendUvarint(dst, e.Err)
	}
	return dst
}

// DecodeSpaceSaving parses a summary serialized by AppendBinary, returning
// bytes consumed. The decoded summary behaves identically to the encoded
// one: rebuild reconstructs the canonical bucket layout from the entries.
func DecodeSpaceSaving(b []byte) (*SpaceSaving, int, error) {
	capacity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: bad capacity")
	}
	cnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: bad entry count")
	}
	n += sz
	if cnt > capacity || cnt > uint64(len(b)) {
		return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: implausible entry count %d (capacity %d)", cnt, capacity)
	}
	s, err := NewSpaceSaving(int(capacity))
	if err != nil {
		return nil, 0, err
	}
	entries := make([]Entry, 0, cnt)
	for i := uint64(0); i < cnt; i++ {
		ln, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: bad item length")
		}
		n += sz
		if uint64(len(b)-n) < ln {
			return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: short item")
		}
		item := string(b[n : n+int(ln)])
		n += int(ln)
		count, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: bad count")
		}
		n += sz
		errVal, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("sketch: decode SpaceSaving: bad err")
		}
		n += sz
		entries = append(entries, Entry{Item: item, Count: count, Err: errVal})
	}
	if len(entries) > 0 {
		s.rebuild(entries)
	}
	return s, n, nil
}

// TotalCount returns the sum of all tracked counts (≥ the number of
// additions routed to tracked items).
func (s *SpaceSaving) TotalCount() uint64 {
	var t uint64
	for _, c := range s.counters {
		t += c.count
	}
	return t
}
