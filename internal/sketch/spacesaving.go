package sketch

import (
	"fmt"
	"sort"
)

// SpaceSaving is the stream-summary structure of Metwally, Agrawal and El
// Abbadi ("Efficient Computation of Frequent and Top-k Elements in Data
// Streams"), which Scrub uses for the TOP-K aggregate. It tracks at most
// `capacity` counters; when a new item arrives with all counters occupied,
// it evicts the minimum counter and inherits its count as overestimation
// error. Guarantees: count(x) <= trueCount(x) + min; every item with true
// count > N/capacity is present.
type SpaceSaving struct {
	capacity int
	counters map[string]*ssCounter
	// buckets is a doubly linked list of distinct counts in ascending
	// order; each bucket holds the set of counters at that count. This is
	// the "stream summary" layout that gives O(1) increments.
	minBucket *ssBucket
}

type ssCounter struct {
	item   string
	count  uint64
	errVal uint64 // overestimation inherited at takeover
	bucket *ssBucket
}

type ssBucket struct {
	count      uint64
	members    map[*ssCounter]struct{}
	prev, next *ssBucket
}

// NewSpaceSaving creates a summary with the given counter capacity.
func NewSpaceSaving(capacity int) (*SpaceSaving, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("sketch: SpaceSaving capacity must be positive, got %d", capacity)
	}
	return &SpaceSaving{capacity: capacity, counters: make(map[string]*ssCounter, capacity)}, nil
}

// MustSpaceSaving is NewSpaceSaving that panics on error.
func MustSpaceSaving(capacity int) *SpaceSaving {
	s, err := NewSpaceSaving(capacity)
	if err != nil {
		panic(err)
	}
	return s
}

// Capacity returns the maximum number of tracked items.
func (s *SpaceSaving) Capacity() int { return s.capacity }

// Len returns the number of currently tracked items.
func (s *SpaceSaving) Len() int { return len(s.counters) }

// Add increments item by one.
func (s *SpaceSaving) Add(item string) { s.AddN(item, 1) }

// AddN increments item by n.
func (s *SpaceSaving) AddN(item string, n uint64) {
	if n == 0 {
		return
	}
	if c, ok := s.counters[item]; ok {
		s.bump(c, n)
		return
	}
	if len(s.counters) < s.capacity {
		c := &ssCounter{item: item, count: 0}
		s.counters[item] = c
		s.attach(c) // attach at count 0 bucket semantics via bump
		s.bump(c, n)
		return
	}
	// Evict the minimum counter: the new item takes it over, inheriting
	// its count as error.
	victim := s.anyMinCounter()
	delete(s.counters, victim.item)
	victim.errVal = victim.count
	victim.item = item
	s.counters[item] = victim
	s.bump(victim, n)
}

// attach places a fresh counter into a zero-count staging bucket.
func (s *SpaceSaving) attach(c *ssCounter) {
	b := s.minBucket
	if b == nil || b.count != 0 {
		nb := &ssBucket{count: 0, members: make(map[*ssCounter]struct{})}
		nb.next = s.minBucket
		if s.minBucket != nil {
			s.minBucket.prev = nb
		}
		s.minBucket = nb
		b = nb
	}
	b.members[c] = struct{}{}
	c.bucket = b
}

// bump moves a counter up by n, maintaining the bucket list.
func (s *SpaceSaving) bump(c *ssCounter, n uint64) {
	old := c.bucket
	newCount := c.count + n
	c.count = newCount

	// Find or create the destination bucket after old.
	cur := old
	for cur.next != nil && cur.next.count < newCount {
		cur = cur.next
	}
	var dst *ssBucket
	if cur.next != nil && cur.next.count == newCount {
		dst = cur.next
	} else {
		dst = &ssBucket{count: newCount, members: make(map[*ssCounter]struct{})}
		dst.prev = cur
		dst.next = cur.next
		if cur.next != nil {
			cur.next.prev = dst
		}
		cur.next = dst
	}
	delete(old.members, c)
	dst.members[c] = struct{}{}
	c.bucket = dst
	if len(old.members) == 0 {
		s.unlink(old)
	}
}

func (s *SpaceSaving) unlink(b *ssBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.minBucket = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}

func (s *SpaceSaving) anyMinCounter() *ssCounter {
	for c := range s.minBucket.members {
		return c
	}
	return nil // unreachable when Len > 0
}

// Entry is one reported heavy hitter. Count overestimates the true count by
// at most Err.
type Entry struct {
	Item  string
	Count uint64
	Err   uint64
}

// Top returns the k highest-count entries, ties broken by item for
// determinism.
func (s *SpaceSaving) Top(k int) []Entry {
	all := make([]Entry, 0, len(s.counters))
	for _, c := range s.counters {
		all = append(all, Entry{Item: c.item, Count: c.count, Err: c.errVal})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Item < all[j].Item
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// Count returns the (over)estimate for an item and whether it is tracked.
func (s *SpaceSaving) Count(item string) (uint64, bool) {
	c, ok := s.counters[item]
	if !ok {
		return 0, false
	}
	return c.count, true
}

// Merge folds another summary into s using the standard pairwise-sum
// algorithm: counts for common items add; items unique to o enter as new
// arrivals carrying their counts. The result keeps s's capacity.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil {
		return
	}
	// Deterministic order: sorted by descending count so the strongest
	// items survive capacity pressure.
	for _, e := range o.Top(o.Len()) {
		if c, ok := s.counters[e.Item]; ok {
			c.errVal += e.Err
			s.bump(c, e.Count)
		} else if len(s.counters) < s.capacity {
			c := &ssCounter{item: e.Item, errVal: e.Err}
			s.counters[e.Item] = c
			s.attach(c)
			s.bump(c, e.Count)
		} else {
			// At capacity: treat the incoming entry as AddN of its count —
			// evict the minimum counter, which the incoming item takes
			// over, inheriting the evicted count as additional error.
			victim := s.anyMinCounter()
			delete(s.counters, victim.item)
			victim.errVal = victim.count + e.Err
			victim.item = e.Item
			s.counters[e.Item] = victim
			s.bump(victim, e.Count)
		}
	}
}

// TotalCount returns the sum of all tracked counts (≥ the number of
// additions routed to tracked items).
func (s *SpaceSaving) TotalCount() uint64 {
	var t uint64
	for _, c := range s.counters {
		t += c.count
	}
	return t
}
