package event

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// System field names. Every event carries these in addition to its
// user-defined fields; they are the only metadata Scrub attaches, kept to
// the minimum required for equi-joins (request_id) and windowing (ts).
const (
	FieldRequestID = "request_id"
	FieldTimestamp = "ts"
)

// IsSystemField reports whether name is one of Scrub's system fields.
func IsSystemField(name string) bool {
	return name == FieldRequestID || name == FieldTimestamp
}

// FieldDef declares one user-defined field of an event type.
type FieldDef struct {
	Name string
	Kind Kind
	Elem Kind // element kind when Kind == KindList
}

func (f FieldDef) String() string {
	if f.Kind == KindList {
		return fmt.Sprintf("%s list<%s>", f.Name, f.Elem)
	}
	return fmt.Sprintf("%s %s", f.Name, f.Kind)
}

// Schema is an immutable event-type definition: a type label plus an
// ordered list of field definitions. Construct with NewSchema; the zero
// value is unusable.
type Schema struct {
	name   string
	fields []FieldDef
	index  map[string]int
}

// NewSchema builds a schema. Field names must be non-empty, unique, and
// must not collide with the system fields.
func NewSchema(name string, fields ...FieldDef) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("event: empty schema name")
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("event: schema %q: field %d has empty name", name, i)
		}
		if IsSystemField(f.Name) {
			return nil, fmt.Errorf("event: schema %q: field %q collides with a system field", name, f.Name)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("event: schema %q: duplicate field %q", name, f.Name)
		}
		if f.Kind == KindInvalid || (f.Kind == KindList && (f.Elem == KindInvalid || f.Elem == KindList)) {
			return nil, fmt.Errorf("event: schema %q: field %q has invalid kind", name, f.Name)
		}
		idx[f.Name] = i
	}
	cp := make([]FieldDef, len(fields))
	copy(cp, fields)
	return &Schema{name: name, fields: cp, index: idx}, nil
}

// MustSchema is NewSchema that panics on error, for compile-time-constant
// schema declarations.
func MustSchema(name string, fields ...FieldDef) *Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the event-type label.
func (s *Schema) Name() string { return s.name }

// NumFields returns the number of user-defined fields.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns the i'th field definition.
func (s *Schema) Field(i int) FieldDef { return s.fields[i] }

// Fields returns a copy of the field definitions.
func (s *Schema) Fields() []FieldDef {
	cp := make([]FieldDef, len(s.fields))
	copy(cp, s.fields)
	return cp
}

// FieldIndex returns the position of the named user field, or -1.
func (s *Schema) FieldIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// FieldKind returns the kind of the named field. System fields resolve to
// their fixed kinds (request_id: int, ts: time). The second result is false
// for unknown fields.
func (s *Schema) FieldKind(name string) (Kind, bool) {
	switch name {
	case FieldRequestID:
		return KindInt, true
	case FieldTimestamp:
		return KindTime, true
	}
	i, ok := s.index[name]
	if !ok {
		return KindInvalid, false
	}
	return s.fields[i].Kind, true
}

// String renders the schema declaration.
func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = f.String()
	}
	return fmt.Sprintf("%s(%s)", s.name, strings.Join(parts, ", "))
}

// Catalog is a thread-safe registry of event schemas — the set of event
// types the application has defined. The query server validates queries
// against a catalog, and host agents use it to decode projections.
type Catalog struct {
	mu      sync.RWMutex
	schemas map[string]*Schema
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{schemas: make(map[string]*Schema)}
}

// Register adds a schema. Re-registering the same *Schema pointer is a
// no-op; registering a different schema under an existing name is an error
// (event types are append-only in a running system).
func (c *Catalog) Register(s *Schema) error {
	if s == nil {
		return fmt.Errorf("event: nil schema")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.schemas[s.name]; ok {
		if prev == s || prev.String() == s.String() {
			return nil
		}
		return fmt.Errorf("event: schema %q already registered with a different definition", s.name)
	}
	c.schemas[s.name] = s
	return nil
}

// MustRegister is Register that panics on error.
func (c *Catalog) MustRegister(s *Schema) {
	if err := c.Register(s); err != nil {
		panic(err)
	}
}

// Lookup returns the schema for an event-type name.
func (c *Catalog) Lookup(name string) (*Schema, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[name]
	return s, ok
}

// Names returns the registered event-type names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.schemas))
	for n := range c.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered schemas.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.schemas)
}
