package event

import (
	"fmt"
	"strings"
)

// Schema files declare event types for standalone deployments (the
// cmd/scrubcentral and cmd/scrubd daemons), one type per line:
//
//	# Turn bidding platform events
//	bid exchange_id:int user_id:int city:string bid_price:float
//	auction line_item_ids:list<int> winner_bid_price:float
//
// Field types use the query language's vocabulary (bool, int/long,
// float/double, string, time/date, list<elem>). Blank lines and lines
// starting with '#' are ignored.

// ParseSchemas parses schema-file text into schemas, in declaration
// order.
func ParseSchemas(text string) ([]*Schema, error) {
	var out []*Schema
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		name := fields[0]
		defs := make([]FieldDef, 0, len(fields)-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 || colon == len(f)-1 {
				return nil, fmt.Errorf("event: schema file line %d: field %q must be name:type", lineNo+1, f)
			}
			fname, ftype := f[:colon], f[colon+1:]
			def := FieldDef{Name: fname}
			if strings.HasPrefix(ftype, "list<") && strings.HasSuffix(ftype, ">") {
				elem, err := ParseKind(ftype[5 : len(ftype)-1])
				if err != nil {
					return nil, fmt.Errorf("event: schema file line %d: %w", lineNo+1, err)
				}
				def.Kind = KindList
				def.Elem = elem
			} else {
				kind, err := ParseKind(ftype)
				if err != nil {
					return nil, fmt.Errorf("event: schema file line %d: %w", lineNo+1, err)
				}
				if kind == KindList {
					return nil, fmt.Errorf("event: schema file line %d: list fields need an element type, e.g. list<int>", lineNo+1)
				}
				def.Kind = kind
			}
			defs = append(defs, def)
		}
		s, err := NewSchema(name, defs...)
		if err != nil {
			return nil, fmt.Errorf("event: schema file line %d: %w", lineNo+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// LoadCatalog parses schema-file text and registers every type into a
// fresh catalog.
func LoadCatalog(text string) (*Catalog, error) {
	schemas, err := ParseSchemas(text)
	if err != nil {
		return nil, err
	}
	cat := NewCatalog()
	for _, s := range schemas {
		if err := cat.Register(s); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// FormatSchemas renders schemas in schema-file syntax (the inverse of
// ParseSchemas), used by daemons to dump their catalogs.
func FormatSchemas(schemas []*Schema) string {
	var sb strings.Builder
	for _, s := range schemas {
		sb.WriteString(s.Name())
		for i := 0; i < s.NumFields(); i++ {
			f := s.Field(i)
			if f.Kind == KindList {
				fmt.Fprintf(&sb, " %s:list<%s>", f.Name, f.Elem)
			} else {
				fmt.Fprintf(&sb, " %s:%s", f.Name, f.Kind)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
