package event

import (
	"reflect"
	"strings"
	"testing"
)

func bidSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("bid",
		FieldDef{Name: "exchange_id", Kind: KindInt},
		FieldDef{Name: "city", Kind: KindString},
		FieldDef{Name: "country", Kind: KindString},
		FieldDef{Name: "bid_price", Kind: KindFloat},
		FieldDef{Name: "campaign_id", Kind: KindInt},
	)
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name   string
		fields []FieldDef
		errSub string
	}{
		{"", nil, "empty schema name"},
		{"e", []FieldDef{{Name: "", Kind: KindInt}}, "empty name"},
		{"e", []FieldDef{{Name: "request_id", Kind: KindInt}}, "system field"},
		{"e", []FieldDef{{Name: "ts", Kind: KindTime}}, "system field"},
		{"e", []FieldDef{{Name: "a", Kind: KindInt}, {Name: "a", Kind: KindInt}}, "duplicate"},
		{"e", []FieldDef{{Name: "a", Kind: KindInvalid}}, "invalid kind"},
		{"e", []FieldDef{{Name: "a", Kind: KindList, Elem: KindList}}, "invalid kind"},
		{"e", []FieldDef{{Name: "a", Kind: KindList}}, "invalid kind"},
	}
	for _, tc := range cases {
		_, err := NewSchema(tc.name, tc.fields...)
		if err == nil || !strings.Contains(err.Error(), tc.errSub) {
			t.Errorf("NewSchema(%q, %v) err = %v, want contains %q", tc.name, tc.fields, err, tc.errSub)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := bidSchema(t)
	if s.Name() != "bid" || s.NumFields() != 5 {
		t.Fatalf("unexpected schema identity: %s", s)
	}
	if i := s.FieldIndex("city"); i != 1 {
		t.Errorf("FieldIndex(city) = %d, want 1", i)
	}
	if i := s.FieldIndex("nope"); i != -1 {
		t.Errorf("FieldIndex(nope) = %d, want -1", i)
	}
	if k, ok := s.FieldKind("bid_price"); !ok || k != KindFloat {
		t.Errorf("FieldKind(bid_price) = %v, %v", k, ok)
	}
	if k, ok := s.FieldKind(FieldRequestID); !ok || k != KindInt {
		t.Errorf("FieldKind(request_id) = %v, %v; want int", k, ok)
	}
	if k, ok := s.FieldKind(FieldTimestamp); !ok || k != KindTime {
		t.Errorf("FieldKind(ts) = %v, %v; want time", k, ok)
	}
	if _, ok := s.FieldKind("nope"); ok {
		t.Error("FieldKind(nope) should be not-ok")
	}
	if got := s.Fields(); !reflect.DeepEqual(got[0], FieldDef{Name: "exchange_id", Kind: KindInt}) {
		t.Errorf("Fields()[0] = %+v", got[0])
	}
	if !strings.Contains(s.String(), "bid_price float") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := bidSchema(t)
	if err := c.Register(s); err != nil {
		t.Fatalf("Register: %v", err)
	}
	// Same pointer: no-op.
	if err := c.Register(s); err != nil {
		t.Fatalf("re-Register same: %v", err)
	}
	// Identical definition under same name: ok.
	s2 := bidSchema(t)
	if err := c.Register(s2); err != nil {
		t.Fatalf("re-Register identical: %v", err)
	}
	// Conflicting definition: error.
	conflict := MustSchema("bid", FieldDef{Name: "x", Kind: KindInt})
	if err := c.Register(conflict); err == nil {
		t.Error("conflicting Register should fail")
	}
	if err := c.Register(nil); err == nil {
		t.Error("nil Register should fail")
	}
	got, ok := c.Lookup("bid")
	if !ok || got != s {
		t.Error("Lookup(bid) failed")
	}
	if _, ok := c.Lookup("none"); ok {
		t.Error("Lookup(none) should miss")
	}
	c.MustRegister(MustSchema("click", FieldDef{Name: "line_item_id", Kind: KindInt}))
	if names := c.Names(); !reflect.DeepEqual(names, []string{"bid", "click"}) {
		t.Errorf("Names() = %v", names)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d", c.Len())
	}
}

func TestIsSystemField(t *testing.T) {
	if !IsSystemField("request_id") || !IsSystemField("ts") || IsSystemField("city") {
		t.Error("IsSystemField misclassifies")
	}
}
