package event

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBool: "bool", KindInt: "int", KindFloat: "float",
		KindString: "string", KindTime: "time", KindList: "list",
		KindInvalid: "invalid", Kind(99): "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKindAliases(t *testing.T) {
	aliases := map[string]Kind{
		"bool": KindBool, "boolean": KindBool,
		"int": KindInt, "long": KindInt, "INT64": KindInt,
		"float": KindFloat, "double": KindFloat,
		"string": KindString,
		"time":   KindTime, "date": KindTime, "timestamp": KindTime,
	}
	for s, want := range aliases {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) should fail")
	}
}

func TestValueAccessors(t *testing.T) {
	now := time.Unix(1234, 5678)
	tests := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
		{Int(-42), KindInt, "-42"},
		{Float(2.5), KindFloat, "2.5"},
		{Str("hi"), KindString, "hi"},
		{Time(now), KindTime, now.UTC().Format(time.RFC3339Nano)},
		{IntList(1, 2, 3), KindList, "[1, 2, 3]"},
		{Invalid, KindInvalid, "<invalid>"},
	}
	for _, tc := range tests {
		if tc.v.Kind() != tc.kind {
			t.Errorf("%v kind = %v, want %v", tc.v, tc.v.Kind(), tc.kind)
		}
		if tc.v.String() != tc.str {
			t.Errorf("String() = %q, want %q", tc.v.String(), tc.str)
		}
	}

	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool round-trip failed")
	}
	if _, ok := Int(1).AsBool(); ok {
		t.Error("AsBool on int should fail")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("AsInt round-trip failed")
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Error("AsFloat round-trip failed")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Error("AsFloat should widen int")
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Error("AsFloat on string should fail")
	}
	if s, ok := Str("abc").AsStr(); !ok || s != "abc" {
		t.Error("AsStr round-trip failed")
	}
	if tv, ok := Time(now).AsTime(); !ok || !tv.Equal(now) {
		t.Error("AsTime round-trip failed")
	}
	if l, ok := StrList("a", "b").AsList(); !ok || len(l) != 2 {
		t.Error("AsList round-trip failed")
	}
	if Invalid.IsValid() {
		t.Error("Invalid.IsValid() should be false")
	}
}

func TestListHomogeneityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("List with mixed kinds should panic")
		}
	}()
	List(KindInt, Int(1), Str("x"))
}

func TestValueEqual(t *testing.T) {
	if !Int(3).Equal(Float(3.0)) {
		t.Error("Int(3) should equal Float(3.0)")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("Int(3) should not equal Float(3.5)")
	}
	if Invalid.Equal(Invalid) {
		t.Error("Invalid never equals anything, including itself")
	}
	if !StrList("a").Equal(StrList("a")) {
		t.Error("equal lists should be Equal")
	}
	if StrList("a").Equal(StrList("a", "b")) {
		t.Error("different-length lists should differ")
	}
	if StrList("a").Equal(IntList(1)) {
		t.Error("lists of different element kinds should differ")
	}
	if Str("1").Equal(Int(1)) {
		t.Error("string should not equal int")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Error("bool equality broken")
	}
}

func TestValueCompare(t *testing.T) {
	lt := [][2]Value{
		{Int(1), Int(2)},
		{Int(1), Float(1.5)},
		{Float(-2), Int(0)},
		{Str("a"), Str("b")},
		{Bool(false), Bool(true)},
		{Time(time.Unix(1, 0)), Time(time.Unix(2, 0))},
	}
	for _, p := range lt {
		if c, ok := p[0].Compare(p[1]); !ok || c != -1 {
			t.Errorf("Compare(%v, %v) = %d, %v; want -1, true", p[0], p[1], c, ok)
		}
		if c, ok := p[1].Compare(p[0]); !ok || c != 1 {
			t.Errorf("reverse Compare(%v, %v) = %d, %v; want 1, true", p[1], p[0], c, ok)
		}
	}
	if _, ok := Str("a").Compare(Int(1)); ok {
		t.Error("cross-kind compare should be not-ok")
	}
	if _, ok := IntList(1).Compare(IntList(1)); ok {
		t.Error("list compare should be not-ok")
	}
	if _, ok := Invalid.Compare(Int(1)); ok {
		t.Error("invalid compare should be not-ok")
	}
	if c, ok := Int(5).Compare(Int(5)); !ok || c != 0 {
		t.Error("self-compare should be 0")
	}
}

func TestHashEqualConsistency(t *testing.T) {
	// Equal values must hash equal — in particular int/float numeric equality.
	pairs := [][2]Value{
		{Int(42), Float(42.0)},
		{Str("x"), Str("x")},
		{IntList(1, 2), IntList(1, 2)},
		{Time(time.Unix(9, 9)), Time(time.Unix(9, 9))},
	}
	for _, p := range pairs {
		if p[0].Hash() != p[1].Hash() {
			t.Errorf("Hash(%v) != Hash(%v) though Equal", p[0], p[1])
		}
	}
	if Str("a").Hash() == Str("b").Hash() {
		t.Error("distinct strings should (almost surely) hash differently")
	}
}

func TestHashEqualConsistencyQuick(t *testing.T) {
	f := func(i int64) bool {
		// Only int64 values exactly representable as float64 keep numeric
		// equality across the two kinds.
		if i != int64(float64(i)) {
			return true
		}
		a, b := Int(i), Float(float64(i))
		return !a.Equal(b) || a.Hash() == b.Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortValuesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := []Value{Str("b"), Int(3), Float(1.5), Str("a"), Int(-1), Bool(true), Bool(false)}
	want := make([]Value, len(vals))
	copy(want, vals)
	SortValues(want)
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]Value, len(vals))
		copy(shuffled, vals)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		SortValues(shuffled)
		for i := range want {
			if !reflect.DeepEqual(want[i], shuffled[i]) {
				t.Fatalf("trial %d: SortValues not deterministic at %d: %v vs %v", trial, i, want[i], shuffled[i])
			}
		}
	}
}

func TestFloatSpecials(t *testing.T) {
	nan := Float(math.NaN())
	if nan.Equal(nan) {
		t.Error("NaN should not equal NaN")
	}
	inf := Float(math.Inf(1))
	if c, ok := Float(1e300).Compare(inf); !ok || c != -1 {
		t.Error("1e300 < +Inf expected")
	}
}
