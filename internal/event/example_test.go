package event_test

import (
	"fmt"
	"time"

	"scrub/internal/event"
)

// ExampleSchemaOf mirrors the paper's Figure-1 annotation model: a tagged
// struct declares the event type, Marshal turns instances into events.
func ExampleSchemaOf() {
	type Bid struct {
		ExchangeID int64   `scrub:"exchange_id"`
		City       string  `scrub:"city"`
		BidPrice   float64 `scrub:"bid_price"`
		internal   int     // untagged: not part of the event
	}
	_ = Bid{internal: 0}

	schema, err := event.SchemaOf("bid", Bid{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(schema)

	ev, err := event.Marshal(schema, 42, time.Unix(100, 0), Bid{
		ExchangeID: 3, City: "porto", BidPrice: 1.25,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(ev.Get("city"), ev.Get("bid_price"), ev.RequestID)
	// Output:
	// bid(exchange_id int, city string, bid_price float)
	// porto 1.25 42
}

// ExampleParseSchemas loads a schema file — how the standalone daemons
// share an event catalog.
func ExampleParseSchemas() {
	schemas, err := event.ParseSchemas(`
# bidding platform events
bid user_id:long bid_price:double
auction line_item_ids:list<int> winner:int
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, s := range schemas {
		fmt.Println(s)
	}
	// Output:
	// bid(user_id int, bid_price float)
	// auction(line_item_ids list<int>, winner int)
}
