// Package event defines Scrub's event model: typed values, event schemas,
// the events themselves, a process-wide schema catalog, and a compact binary
// encoding used on the wire between host agents and ScrubCentral.
//
// An event is an n-tuple of user-defined fields plus two system fields that
// Scrub maintains itself: a unique request identifier (the only join key the
// query language permits) and an event timestamp. The metadata is bounded
// and kept to the minimum needed to support equi-joins and windowing.
package event

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the primitive field types Scrub supports. The paper's
// int/long collapse to KindInt (int64) and float/double to KindFloat
// (float64); date/time is KindTime. Homogeneous lists of primitives are
// KindList with an element kind.
type Kind uint8

// Field kinds.
const (
	KindInvalid Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTime
	KindList
)

// String returns the lower-case name used in query diagnostics and schema
// declarations.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTime:
		return "time"
	case KindList:
		return "list"
	default:
		return "invalid"
	}
}

// ParseKind converts a schema declaration name to a Kind. It accepts the
// paper's type vocabulary (int, long, float, double, boolean, string,
// date, time) as aliases.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "bool", "boolean":
		return KindBool, nil
	case "int", "long", "int64":
		return KindInt, nil
	case "float", "double", "float64":
		return KindFloat, nil
	case "string":
		return KindString, nil
	case "time", "date", "datetime", "timestamp":
		return KindTime, nil
	case "list":
		return KindList, nil
	default:
		return KindInvalid, fmt.Errorf("event: unknown field type %q", s)
	}
}

// Value is a dynamically typed field value. The zero Value is the invalid
// value; it compares unequal to everything, including itself, and evaluates
// as "missing" in predicates. Values are immutable once constructed.
type Value struct {
	kind Kind
	num  uint64 // bool (0/1), int64 bits, float64 bits, or unix-nano time
	str  string
	list []Value
	elem Kind // element kind when kind == KindList
}

// Invalid is the missing/invalid value.
var Invalid = Value{}

// Bool returns a boolean value.
func Bool(b bool) Value {
	var n uint64
	if b {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, num: uint64(i)} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, num: math.Float64bits(f)} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, str: s} }

// Time returns a date/time value with nanosecond resolution.
func Time(t time.Time) Value { return Value{kind: KindTime, num: uint64(t.UnixNano())} }

// TimeNanos returns a date/time value from unix nanoseconds.
func TimeNanos(ns int64) Value { return Value{kind: KindTime, num: uint64(ns)} }

// List returns a homogeneous list value. All elements must share the given
// element kind; List panics otherwise, since list construction happens at
// event-definition sites where a kind mismatch is a programming error.
func List(elem Kind, vs ...Value) Value {
	for _, v := range vs {
		if v.kind != elem {
			panic(fmt.Sprintf("event: list element kind %v does not match declared %v", v.kind, elem))
		}
	}
	cp := make([]Value, len(vs))
	copy(cp, vs)
	return Value{kind: KindList, list: cp, elem: elem}
}

// IntList is a convenience constructor for a list of integers.
func IntList(xs ...int64) Value {
	vs := make([]Value, len(xs))
	for i, x := range xs {
		vs[i] = Int(x)
	}
	return Value{kind: KindList, list: vs, elem: KindInt}
}

// StrList is a convenience constructor for a list of strings.
func StrList(xs ...string) Value {
	vs := make([]Value, len(xs))
	for i, x := range xs {
		vs[i] = Str(x)
	}
	return Value{kind: KindList, list: vs, elem: KindString}
}

// FloatList is a convenience constructor for a list of floats.
func FloatList(xs ...float64) Value {
	vs := make([]Value, len(xs))
	for i, x := range xs {
		vs[i] = Float(x)
	}
	return Value{kind: KindList, list: vs, elem: KindFloat}
}

// Kind reports the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Elem reports the element kind of a list value, KindInvalid otherwise.
func (v Value) Elem() Kind {
	if v.kind != KindList {
		return KindInvalid
	}
	return v.elem
}

// IsValid reports whether the value carries data.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsBool returns the boolean payload; ok is false on kind mismatch.
func (v Value) AsBool() (b bool, ok bool) {
	if v.kind != KindBool {
		return false, false
	}
	return v.num != 0, true
}

// AsInt returns the integer payload; ok is false on kind mismatch.
func (v Value) AsInt() (int64, bool) {
	if v.kind != KindInt {
		return 0, false
	}
	return int64(v.num), true
}

// AsFloat returns the float payload. Integers widen to float, so numeric
// expressions can mix the two kinds; ok is false for non-numeric kinds.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return math.Float64frombits(v.num), true
	case KindInt:
		return float64(int64(v.num)), true
	default:
		return 0, false
	}
}

// AsStr returns the string payload; ok is false on kind mismatch.
func (v Value) AsStr() (string, bool) {
	if v.kind != KindString {
		return "", false
	}
	return v.str, true
}

// AsTime returns the time payload; ok is false on kind mismatch.
func (v Value) AsTime() (time.Time, bool) {
	if v.kind != KindTime {
		return time.Time{}, false
	}
	return time.Unix(0, int64(v.num)), true
}

// TimeNanosValue returns the raw unix-nano payload of a time value.
func (v Value) TimeNanosValue() (int64, bool) {
	if v.kind != KindTime {
		return 0, false
	}
	return int64(v.num), true
}

// AsList returns the list payload; ok is false on kind mismatch. The
// returned slice must not be mutated.
func (v Value) AsList() ([]Value, bool) {
	if v.kind != KindList {
		return nil, false
	}
	return v.list, true
}

// IsNumeric reports whether the value is int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Equal reports deep equality. Invalid values are never equal (SQL NULL
// semantics). Int and float compare numerically, so Int(3) equals
// Float(3.0), matching the query language's comparison semantics.
func (v Value) Equal(o Value) bool {
	if v.kind == KindInvalid || o.kind == KindInvalid {
		return false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			return v.num == o.num
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		return a == b
	}
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindBool, KindTime:
		return v.num == o.num
	case KindString:
		return v.str == o.str
	case KindList:
		if v.elem != o.elem || len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if !v.list[i].Equal(o.list[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values: -1, 0, or +1. The second result is false when
// the values are not comparable (kind mismatch other than int/float, lists,
// or invalid operands).
func (v Value) Compare(o Value) (int, bool) {
	if v.kind == KindInvalid || o.kind == KindInvalid {
		return 0, false
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.kind == KindInt && o.kind == KindInt {
			a, b := int64(v.num), int64(o.num)
			switch {
			case a < b:
				return -1, true
			case a > b:
				return 1, true
			}
			return 0, true
		}
		a, _ := v.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	}
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindBool:
		a, b := v.num, o.num
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	case KindTime:
		a, b := int64(v.num), int64(o.num)
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		}
		return 0, true
	case KindString:
		return strings.Compare(v.str, o.str), true
	}
	return 0, false
}

// Hash folds the value into a 64-bit hash suitable for group-by keys and
// COUNT_DISTINCT. Numerically equal int/float values hash identically.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.hashInto(h)
	return h.Sum64()
}

type hash64 interface {
	Write(p []byte) (int, error)
	Sum64() uint64
}

func (v Value) hashInto(h hash64) {
	var tag [1]byte
	kind := v.kind
	num := v.num
	// Canonicalize int-valued floats to the int representation so that
	// Equal values hash equally.
	if kind == KindFloat {
		f := math.Float64frombits(num)
		if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
			kind = KindInt
			num = uint64(int64(f))
		}
	}
	tag[0] = byte(kind)
	h.Write(tag[:])
	switch kind {
	case KindBool, KindInt, KindFloat, KindTime:
		var buf [8]byte
		putUint64(buf[:], num)
		h.Write(buf[:])
	case KindString:
		h.Write([]byte(v.str))
	case KindList:
		for _, e := range v.list {
			e.hashInto(h)
		}
	}
}

func putUint64(b []byte, x uint64) {
	_ = b[7]
	b[0] = byte(x)
	b[1] = byte(x >> 8)
	b[2] = byte(x >> 16)
	b[3] = byte(x >> 24)
	b[4] = byte(x >> 32)
	b[5] = byte(x >> 40)
	b[6] = byte(x >> 48)
	b[7] = byte(x >> 56)
}

// String renders the value for result rows and diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(int64(v.num), 10)
	case KindFloat:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case KindString:
		return v.str
	case KindTime:
		return time.Unix(0, int64(v.num)).UTC().Format(time.RFC3339Nano)
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.list {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	default:
		return "<invalid>"
	}
}

// SortValues orders a slice of values using Compare, with an arbitrary but
// deterministic ordering across kinds. Used to stabilize result rows.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.kind != b.kind && !(a.IsNumeric() && b.IsNumeric()) {
			return a.kind < b.kind
		}
		c, ok := a.Compare(b)
		if !ok {
			return a.String() < b.String()
		}
		return c < 0
	})
}
