package event

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Event is one occurrence of an event type: the user-defined field values
// in schema order, plus the two system fields. Events are created by the
// application through a Builder (or directly for internal use) and are
// treated as immutable once logged.
type Event struct {
	Schema    *Schema
	RequestID uint64
	TimeNanos int64 // event time, unix nanoseconds
	Values    []Value
}

// Type returns the event-type label.
func (e *Event) Type() string { return e.Schema.Name() }

// Time returns the event time.
func (e *Event) Time() time.Time { return time.Unix(0, e.TimeNanos) }

// Get returns the value of a field by name. System fields resolve to
// synthesized values; unknown fields return Invalid.
func (e *Event) Get(name string) Value {
	switch name {
	case FieldRequestID:
		return Int(int64(e.RequestID))
	case FieldTimestamp:
		return TimeNanos(e.TimeNanos)
	}
	i := e.Schema.FieldIndex(name)
	if i < 0 || i >= len(e.Values) {
		return Invalid
	}
	return e.Values[i]
}

// At returns the i'th user field value, Invalid when out of range.
func (e *Event) At(i int) Value {
	if i < 0 || i >= len(e.Values) {
		return Invalid
	}
	return e.Values[i]
}

// String renders the event for diagnostics.
func (e *Event) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{req=%d ts=%s", e.Schema.Name(), e.RequestID,
		time.Unix(0, e.TimeNanos).UTC().Format(time.RFC3339Nano))
	for i := 0; i < e.Schema.NumFields(); i++ {
		fmt.Fprintf(&sb, " %s=%s", e.Schema.Field(i).Name, e.At(i))
	}
	sb.WriteByte('}')
	return sb.String()
}

// Builder assembles an event for a schema. It validates field names and
// kinds at Set time so that event-producing code fails fast during
// development rather than shipping malformed tuples.
type Builder struct {
	schema *Schema
	reqID  uint64
	tsNano int64
	values []Value
	err    error
}

// NewBuilder starts building an event of the given type. The event time
// defaults to the wall clock at Build time if SetTime is never called.
func NewBuilder(s *Schema) *Builder {
	return &Builder{schema: s, values: make([]Value, s.NumFields())}
}

// SetRequestID sets the request identifier system field.
func (b *Builder) SetRequestID(id uint64) *Builder {
	b.reqID = id
	return b
}

// SetTime sets the event time.
func (b *Builder) SetTime(t time.Time) *Builder {
	b.tsNano = t.UnixNano()
	return b
}

// SetTimeNanos sets the event time from unix nanoseconds.
func (b *Builder) SetTimeNanos(ns int64) *Builder {
	b.tsNano = ns
	return b
}

// Set assigns a field by name, recording an error on unknown names or kind
// mismatches. The first error wins and is reported by Build.
func (b *Builder) Set(name string, v Value) *Builder {
	if b.err != nil {
		return b
	}
	i := b.schema.FieldIndex(name)
	if i < 0 {
		b.err = fmt.Errorf("event: %s has no field %q", b.schema.Name(), name)
		return b
	}
	def := b.schema.Field(i)
	if v.Kind() != def.Kind || (def.Kind == KindList && v.Elem() != def.Elem) {
		b.err = fmt.Errorf("event: %s.%s expects %s, got %s", b.schema.Name(), name, def.Kind, v.Kind())
		return b
	}
	b.values[i] = v
	return b
}

// Bool, Int, Float, Str, Time are typed conveniences over Set.
func (b *Builder) Bool(name string, v bool) *Builder      { return b.Set(name, Bool(v)) }
func (b *Builder) Int(name string, v int64) *Builder      { return b.Set(name, Int(v)) }
func (b *Builder) Float(name string, v float64) *Builder  { return b.Set(name, Float(v)) }
func (b *Builder) Str(name string, v string) *Builder     { return b.Set(name, Str(v)) }
func (b *Builder) Time(name string, v time.Time) *Builder { return b.Set(name, Time(v)) }

// Build finalizes the event. Unset fields remain Invalid (missing), which
// predicates treat as NULL-like.
func (b *Builder) Build() (*Event, error) {
	if b.err != nil {
		return nil, b.err
	}
	ts := b.tsNano
	if ts == 0 {
		ts = time.Now().UnixNano()
	}
	return &Event{Schema: b.schema, RequestID: b.reqID, TimeNanos: ts, Values: b.values}, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Event {
	e, err := b.Build()
	if err != nil {
		panic(err)
	}
	return e
}

// RequestIDGenerator hands out process-unique request identifiers. The high
// bits carry a node id so identifiers are unique across a cluster without
// coordination — the property the equi-join relies on.
// next is the atomic.Uint64 wrapper rather than a bare uint64 +
// sync/atomic calls: the wrapper makes a mixed plain/atomic access —
// the race scrubvet's atomicfield analyzer exists to catch — a compile
// error instead of a latent bug.
type RequestIDGenerator struct {
	next atomic.Uint64
	node uint64
}

// NewRequestIDGenerator creates a generator for a node. Only the low 16
// bits of node are used.
func NewRequestIDGenerator(node uint16) *RequestIDGenerator {
	return &RequestIDGenerator{node: uint64(node) << 48}
}

// Next returns the next identifier. Safe for concurrent use.
func (g *RequestIDGenerator) Next() uint64 {
	return g.node | (g.next.Add(1) & ((1 << 48) - 1))
}
