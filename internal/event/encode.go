package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrUnknownType marks a decoded event whose type is not in the catalog.
// Consumers that read events written under an older catalog (the replay
// store across a restart) match it with errors.Is to skip the record
// rather than treat it as corruption.
var ErrUnknownType = errors.New("unknown event type")

// Binary encoding. The wire format between host agents and ScrubCentral is
// deliberately simple: a one-byte kind tag per value, varint lengths, and
// fixed 8-byte payloads for numerics. It is self-describing at the value
// level so projected tuples can be decoded without the originating schema.

// AppendValue appends the binary encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInvalid:
		// tag only
	case KindBool:
		if v.num != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindInt, KindTime:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v.num)
		dst = append(dst, buf[:]...)
	case KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v.num)
		dst = append(dst, buf[:]...)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.str)))
		dst = append(dst, v.str...)
	case KindList:
		dst = append(dst, byte(v.elem))
		dst = binary.AppendUvarint(dst, uint64(len(v.list)))
		for _, e := range v.list {
			dst = AppendValue(dst, e)
		}
	}
	return dst
}

// DecodeValue decodes one value from b, returning the value and the number
// of bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Invalid, 0, fmt.Errorf("event: decode: empty buffer")
	}
	kind := Kind(b[0])
	n := 1
	switch kind {
	case KindInvalid:
		return Invalid, n, nil
	case KindBool:
		if len(b) < n+1 {
			return Invalid, 0, fmt.Errorf("event: decode: short bool")
		}
		return Bool(b[n] != 0), n + 1, nil
	case KindInt, KindTime, KindFloat:
		if len(b) < n+8 {
			return Invalid, 0, fmt.Errorf("event: decode: short %v", kind)
		}
		num := binary.LittleEndian.Uint64(b[n : n+8])
		return Value{kind: kind, num: num}, n + 8, nil
	case KindString:
		ln, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return Invalid, 0, fmt.Errorf("event: decode: bad string length")
		}
		n += sz
		if uint64(len(b)-n) < ln {
			return Invalid, 0, fmt.Errorf("event: decode: short string")
		}
		return Str(string(b[n : n+int(ln)])), n + int(ln), nil
	case KindList:
		if len(b) < n+1 {
			return Invalid, 0, fmt.Errorf("event: decode: short list header")
		}
		elem := Kind(b[n])
		n++
		cnt, sz := binary.Uvarint(b[n:])
		if sz <= 0 {
			return Invalid, 0, fmt.Errorf("event: decode: bad list count")
		}
		n += sz
		if cnt > uint64(len(b)) {
			return Invalid, 0, fmt.Errorf("event: decode: implausible list count %d", cnt)
		}
		vs := make([]Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			v, used, err := DecodeValue(b[n:])
			if err != nil {
				return Invalid, 0, err
			}
			if v.kind != elem && v.kind != KindInvalid {
				return Invalid, 0, fmt.Errorf("event: decode: list element kind %v != %v", v.kind, elem)
			}
			vs = append(vs, v)
			n += used
		}
		return Value{kind: KindList, list: vs, elem: elem}, n, nil
	default:
		return Invalid, 0, fmt.Errorf("event: decode: unknown kind tag %d", b[0])
	}
}

// AppendEvent appends the full binary encoding of an event: type name,
// system fields, then each user field value in schema order.
func AppendEvent(dst []byte, e *Event) []byte {
	name := e.Schema.Name()
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], e.RequestID)
	dst = append(dst, buf[:]...)
	binary.LittleEndian.PutUint64(buf[:], uint64(e.TimeNanos))
	dst = append(dst, buf[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(e.Values)))
	for _, v := range e.Values {
		dst = AppendValue(dst, v)
	}
	return dst
}

// DecodeEvent decodes an event, resolving its schema through the catalog.
// It returns the event and bytes consumed.
func DecodeEvent(b []byte, cat *Catalog) (*Event, int, error) {
	ln, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("event: decode event: bad name length")
	}
	n := sz
	if uint64(len(b)-n) < ln {
		return nil, 0, fmt.Errorf("event: decode event: short name")
	}
	name := string(b[n : n+int(ln)])
	n += int(ln)
	schema, ok := cat.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("event: decode event: unknown type %q: %w", name, ErrUnknownType)
	}
	if len(b) < n+16 {
		return nil, 0, fmt.Errorf("event: decode event: short header")
	}
	reqID := binary.LittleEndian.Uint64(b[n : n+8])
	ts := int64(binary.LittleEndian.Uint64(b[n+8 : n+16]))
	n += 16
	cnt, sz := binary.Uvarint(b[n:])
	if sz <= 0 {
		return nil, 0, fmt.Errorf("event: decode event: bad field count")
	}
	n += sz
	if cnt != uint64(schema.NumFields()) {
		return nil, 0, fmt.Errorf("event: decode event: %q field count %d != schema %d", name, cnt, schema.NumFields())
	}
	vs := make([]Value, cnt)
	for i := range vs {
		v, used, err := DecodeValue(b[n:])
		if err != nil {
			return nil, 0, err
		}
		vs[i] = v
		n += used
	}
	return &Event{Schema: schema, RequestID: reqID, TimeNanos: ts, Values: vs}, n, nil
}

// EncodedSize returns the exact encoded size of a value, used by the
// logging-baseline comparison to account shipped bytes without allocating.
func EncodedSize(v Value) int {
	switch v.kind {
	case KindInvalid:
		return 1
	case KindBool:
		return 2
	case KindInt, KindTime, KindFloat:
		return 9
	case KindString:
		return 1 + uvarintLen(uint64(len(v.str))) + len(v.str)
	case KindList:
		n := 2 + uvarintLen(uint64(len(v.list)))
		for _, e := range v.list {
			n += EncodedSize(e)
		}
		return n
	default:
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Float64FromBits is a helper exposed for tests that need to construct
// specific float payloads.
func Float64FromBits(bits uint64) float64 { return math.Float64frombits(bits) }
