package event

import (
	"strings"
	"testing"
	"time"
)

// scrubBid mirrors the paper's Figure 1 event-type declaration.
type scrubBid struct {
	ExchangeID int64     `scrub:"exchange_id"`
	City       string    `scrub:"city"`
	Country    string    `scrub:"country"`
	BidPrice   float64   `scrub:"bid_price"`
	CampaignID int64     `scrub:"campaign_id"`
	Segments   []int64   `scrub:"segments"`
	When       time.Time `scrub:"when"`
	internal   int       // untagged+unexported: ignored
	Skipped    int       `scrub:"-"`
}

func TestSchemaOf(t *testing.T) {
	s, err := SchemaOf("bid", scrubBid{})
	if err != nil {
		t.Fatalf("SchemaOf: %v", err)
	}
	if s.Name() != "bid" || s.NumFields() != 7 {
		t.Fatalf("schema = %s", s)
	}
	checks := map[string]Kind{
		"exchange_id": KindInt, "city": KindString, "bid_price": KindFloat,
		"segments": KindList, "when": KindTime,
	}
	for name, kind := range checks {
		if k, ok := s.FieldKind(name); !ok || k != kind {
			t.Errorf("FieldKind(%s) = %v, %v; want %v", name, k, ok, kind)
		}
	}
	if s.FieldIndex("internal") != -1 || s.FieldIndex("Skipped") != -1 {
		t.Error("untagged/skipped fields leaked into schema")
	}
	// Pointer prototype also works.
	if _, err := SchemaOf("bid", &scrubBid{}); err != nil {
		t.Errorf("SchemaOf(pointer): %v", err)
	}
}

func TestSchemaOfErrors(t *testing.T) {
	if _, err := SchemaOf("x", 42); err == nil {
		t.Error("non-struct should fail")
	}
	type empty struct{ A int }
	if _, err := SchemaOf("x", empty{}); err == nil {
		t.Error("no tagged fields should fail")
	}
	type unexported struct {
		a int `scrub:"a"`
	}
	if _, err := SchemaOf("x", unexported{}); err == nil {
		t.Error("unexported tagged field should fail")
	}
	type nested struct {
		A [][]int64 `scrub:"a"`
	}
	if _, err := SchemaOf("x", nested{}); err == nil {
		t.Error("nested list should fail")
	}
	type badType struct {
		A map[string]int `scrub:"a"`
	}
	if _, err := SchemaOf("x", badType{}); err == nil {
		t.Error("map field should fail")
	}
}

func TestMarshal(t *testing.T) {
	s, err := SchemaOf("bid", scrubBid{})
	if err != nil {
		t.Fatal(err)
	}
	when := time.Unix(55, 0)
	bid := scrubBid{
		ExchangeID: 9, City: "porto", Country: "PT", BidPrice: 2.5,
		CampaignID: 4, Segments: []int64{10, 20}, When: when,
	}
	ts := time.Unix(100, 0)
	ev, err := Marshal(s, 123, ts, bid)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if ev.RequestID != 123 || ev.TimeNanos != ts.UnixNano() {
		t.Error("system fields wrong")
	}
	if v, _ := ev.Get("exchange_id").AsInt(); v != 9 {
		t.Error("exchange_id wrong")
	}
	if l, ok := ev.Get("segments").AsList(); !ok || len(l) != 2 || l[1].String() != "20" {
		t.Errorf("segments wrong: %v", ev.Get("segments"))
	}
	if w, ok := ev.Get("when").AsTime(); !ok || !w.Equal(when) {
		t.Error("when wrong")
	}
	// Pointer value also works.
	if _, err := Marshal(s, 1, ts, &bid); err != nil {
		t.Errorf("Marshal(pointer): %v", err)
	}
}

func TestMarshalErrors(t *testing.T) {
	s, _ := SchemaOf("bid", scrubBid{})
	if _, err := Marshal(s, 1, time.Now(), 42); err == nil {
		t.Error("non-struct should fail")
	}
	var nilBid *scrubBid
	if _, err := Marshal(s, 1, time.Now(), nilBid); err == nil {
		t.Error("nil pointer should fail")
	}
	// Struct whose tags don't exist in the schema.
	type stranger struct {
		A int64 `scrub:"no_such_field"`
	}
	if _, err := Marshal(s, 1, time.Now(), stranger{}); err == nil || !strings.Contains(err.Error(), "no field") {
		t.Errorf("unknown tag should fail, got %v", err)
	}
	// Kind mismatch: city declared string, provide int64 via a shadow struct.
	type shadow struct {
		City int64 `scrub:"city"`
	}
	if _, err := Marshal(s, 1, time.Now(), shadow{City: 3}); err == nil {
		t.Error("kind mismatch should fail")
	}
}
