package event

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBuilderBuild(t *testing.T) {
	s := bidSchema(t)
	ts := time.Unix(100, 0)
	ev, err := NewBuilder(s).
		SetRequestID(77).
		SetTime(ts).
		Int("exchange_id", 5).
		Str("city", "porto").
		Str("country", "PT").
		Float("bid_price", 1.25).
		Int("campaign_id", 9).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ev.Type() != "bid" || ev.RequestID != 77 || !ev.Time().Equal(ts) {
		t.Fatalf("event identity wrong: %s", ev)
	}
	if v := ev.Get("city"); v.String() != "porto" {
		t.Errorf("Get(city) = %v", v)
	}
	if v := ev.Get(FieldRequestID); v.String() != "77" {
		t.Errorf("Get(request_id) = %v", v)
	}
	if v, ok := ev.Get(FieldTimestamp).AsTime(); !ok || !v.Equal(ts) {
		t.Errorf("Get(ts) = %v", v)
	}
	if ev.Get("missing").IsValid() {
		t.Error("Get(missing) should be Invalid")
	}
	if ev.At(-1).IsValid() || ev.At(99).IsValid() {
		t.Error("At out of range should be Invalid")
	}
	if !strings.Contains(ev.String(), "city=porto") {
		t.Errorf("String() = %q", ev.String())
	}
}

func TestBuilderErrors(t *testing.T) {
	s := bidSchema(t)
	if _, err := NewBuilder(s).Set("nope", Int(1)).Build(); err == nil {
		t.Error("unknown field should error")
	}
	if _, err := NewBuilder(s).Set("city", Int(1)).Build(); err == nil {
		t.Error("kind mismatch should error")
	}
	// First error wins and short-circuits later Sets.
	b := NewBuilder(s).Set("nope", Int(1)).Str("city", "x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("first error should win, got %v", err)
	}
}

func TestBuilderDefaultTime(t *testing.T) {
	s := bidSchema(t)
	before := time.Now().UnixNano()
	ev := NewBuilder(s).Int("exchange_id", 1).MustBuild()
	after := time.Now().UnixNano()
	if ev.TimeNanos < before || ev.TimeNanos > after {
		t.Errorf("default time %d outside [%d, %d]", ev.TimeNanos, before, after)
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on error")
		}
	}()
	NewBuilder(bidSchema(t)).Set("nope", Int(1)).MustBuild()
}

func TestUnsetFieldsAreInvalid(t *testing.T) {
	s := bidSchema(t)
	ev := NewBuilder(s).Int("exchange_id", 1).MustBuild()
	if ev.Get("city").IsValid() {
		t.Error("unset field should be Invalid")
	}
}

func TestRequestIDGeneratorUniqueness(t *testing.T) {
	g := NewRequestIDGenerator(3)
	const n = 1000
	const workers = 8
	var mu sync.Mutex
	seen := make(map[uint64]bool, n*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate id %d", id)
				}
				seen[id] = true
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if len(seen) != n*workers {
		t.Errorf("got %d unique ids, want %d", len(seen), n*workers)
	}
}

func TestRequestIDGeneratorNodePrefix(t *testing.T) {
	a := NewRequestIDGenerator(1).Next()
	b := NewRequestIDGenerator(2).Next()
	if a>>48 != 1 || b>>48 != 2 {
		t.Errorf("node prefixes wrong: %x %x", a, b)
	}
}
