package event

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestValueEncodeRoundTrip(t *testing.T) {
	vals := []Value{
		Bool(true), Bool(false),
		Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-2.75), Float(math.Inf(-1)),
		Str(""), Str("hello"), Str(string([]byte{0, 255, 128})),
		Time(time.Unix(123, 456)),
		IntList(), IntList(1, 2, 3), StrList("a", ""), FloatList(0.5),
		Invalid,
	}
	for _, v := range vals {
		buf := AppendValue(nil, v)
		if len(buf) != EncodedSize(v) {
			t.Errorf("EncodedSize(%v) = %d, encoded %d bytes", v, EncodedSize(v), len(buf))
		}
		got, n, err := DecodeValue(buf)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if n != len(buf) {
			t.Errorf("DecodeValue(%v) consumed %d of %d", v, n, len(buf))
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

// genValue makes an arbitrary non-list Value from quick's random source.
func genValue(r *rand.Rand) Value {
	switch r.Intn(5) {
	case 0:
		return Bool(r.Intn(2) == 1)
	case 1:
		return Int(int64(r.Uint64()))
	case 2:
		return Float(r.NormFloat64() * 1e6)
	case 3:
		n := r.Intn(20)
		b := make([]byte, n)
		r.Read(b)
		return Str(string(b))
	default:
		return TimeNanos(int64(r.Uint64() >> 1))
	}
}

type anyValue struct{ V Value }

func (anyValue) Generate(r *rand.Rand, size int) reflect.Value {
	v := genValue(r)
	if r.Intn(4) == 0 { // sometimes a homogeneous list
		elem := genValue(r)
		vs := make([]Value, r.Intn(5))
		for i := range vs {
			for {
				c := genValue(r)
				if c.Kind() == elem.Kind() {
					vs[i] = c
					break
				}
			}
		}
		v = List(elem.Kind(), vs...)
	}
	return reflect.ValueOf(anyValue{v})
}

func TestValueEncodeRoundTripQuick(t *testing.T) {
	f := func(av anyValue) bool {
		buf := AppendValue(nil, av.V)
		got, n, err := DecodeValue(buf)
		return err == nil && n == len(buf) && reflect.DeepEqual(got, av.V) && len(buf) == EncodedSize(av.V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeValueErrors(t *testing.T) {
	bad := [][]byte{
		{},                                    // empty
		{byte(KindBool)},                      // short bool
		{byte(KindInt), 1, 2},                 // short int
		{byte(KindString)},                    // missing length
		{byte(KindString), 5},                 // short string
		{byte(KindList)},                      // short header
		{byte(KindList), byte(KindInt)},       // missing count
		{byte(KindList), byte(KindInt), 2, 0}, // short elements
		{200},                                 // unknown tag
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(% x) should fail", b)
		}
	}
	// List element kind mismatch: int list containing a string element.
	b := []byte{byte(KindList), byte(KindInt), 1}
	b = AppendValue(b, Str("x"))
	if _, _, err := DecodeValue(b); err == nil {
		t.Error("list element kind mismatch should fail")
	}
}

func TestEventEncodeRoundTrip(t *testing.T) {
	s := bidSchema(t)
	cat := NewCatalog()
	cat.MustRegister(s)
	ev := NewBuilder(s).
		SetRequestID(42).
		SetTimeNanos(999).
		Int("exchange_id", 5).
		Str("city", "lisbon").
		Float("bid_price", 0.75).
		MustBuild()
	buf := AppendEvent(nil, ev)
	got, n, err := DecodeEvent(buf, cat)
	if err != nil {
		t.Fatalf("DecodeEvent: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d", n, len(buf))
	}
	if got.RequestID != 42 || got.TimeNanos != 999 || got.Schema != s {
		t.Errorf("header mismatch: %+v", got)
	}
	for i := range ev.Values {
		if !reflect.DeepEqual(got.Values[i], ev.Values[i]) {
			t.Errorf("field %d mismatch: %v vs %v", i, got.Values[i], ev.Values[i])
		}
	}
	// Unset field (country) survives as Invalid.
	if got.Get("country").IsValid() {
		t.Error("unset field should decode Invalid")
	}
}

func TestDecodeEventErrors(t *testing.T) {
	s := bidSchema(t)
	cat := NewCatalog()
	cat.MustRegister(s)
	ev := NewBuilder(s).Int("exchange_id", 1).SetTimeNanos(1).MustBuild()
	good := AppendEvent(nil, ev)

	// Unknown type.
	if _, _, err := DecodeEvent(AppendEvent(nil, &Event{
		Schema: MustSchema("ghost", FieldDef{Name: "x", Kind: KindInt}),
		Values: []Value{Int(1)}, TimeNanos: 1,
	}), cat); err == nil {
		t.Error("unknown type should fail")
	}
	// Truncations at every prefix length must error, not panic.
	for i := 0; i < len(good)-1; i++ {
		if _, _, err := DecodeEvent(good[:i], cat); err == nil {
			t.Errorf("truncated decode at %d should fail", i)
		}
	}
	// Field-count mismatch.
	other := MustSchema("bid2", FieldDef{Name: "only", Kind: KindInt})
	cat.MustRegister(other)
	wrong := AppendEvent(nil, &Event{Schema: other, Values: []Value{Int(1), Int(2)}, TimeNanos: 1})
	if _, _, err := DecodeEvent(wrong, cat); err == nil {
		t.Error("field count mismatch should fail")
	}
}

func BenchmarkAppendEvent(b *testing.B) {
	s := MustSchema("bid",
		FieldDef{Name: "exchange_id", Kind: KindInt},
		FieldDef{Name: "city", Kind: KindString},
		FieldDef{Name: "bid_price", Kind: KindFloat},
	)
	ev := NewBuilder(s).SetRequestID(1).SetTimeNanos(1).
		Int("exchange_id", 3).Str("city", "san jose").Float("bid_price", 1.5).MustBuild()
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendEvent(buf[:0], ev)
	}
}

func BenchmarkDecodeEvent(b *testing.B) {
	s := MustSchema("bid",
		FieldDef{Name: "exchange_id", Kind: KindInt},
		FieldDef{Name: "city", Kind: KindString},
		FieldDef{Name: "bid_price", Kind: KindFloat},
	)
	cat := NewCatalog()
	cat.MustRegister(s)
	ev := NewBuilder(s).SetRequestID(1).SetTimeNanos(1).
		Int("exchange_id", 3).Str("city", "san jose").Float("bid_price", 1.5).MustBuild()
	buf := AppendEvent(nil, ev)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeEvent(buf, cat); err != nil {
			b.Fatal(err)
		}
	}
}
