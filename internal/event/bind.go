package event

import (
	"fmt"
	"reflect"
	"time"
)

// Reflection binding. The paper's Java integration declares event types with
// @ScrubType / @ScrubField annotations (Figure 1). The Go equivalent is a
// struct with `scrub:"field_name"` tags:
//
//	type Bid struct {
//		ExchangeID int64   `scrub:"exchange_id"`
//		City       string  `scrub:"city"`
//		BidPrice   float64 `scrub:"bid_price"`
//	}
//	schema, _ := event.SchemaOf("bid", Bid{})
//	ev, _ := event.Marshal(schema, reqID, time.Now(), Bid{...})
//
// Fields without a scrub tag are ignored, mirroring the opt-in annotation
// model. Binding uses reflection only at schema-definition and log sites the
// developer opted into; there is no dynamic instrumentation.

var timeType = reflect.TypeOf(time.Time{})

func kindOfGoType(t reflect.Type) (Kind, Kind, error) {
	if t == timeType {
		return KindTime, KindInvalid, nil
	}
	switch t.Kind() {
	case reflect.Bool:
		return KindBool, KindInvalid, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32:
		return KindInt, KindInvalid, nil
	case reflect.Float32, reflect.Float64:
		return KindFloat, KindInvalid, nil
	case reflect.String:
		return KindString, KindInvalid, nil
	case reflect.Slice:
		ek, _, err := kindOfGoType(t.Elem())
		if err != nil {
			return KindInvalid, KindInvalid, err
		}
		if ek == KindList {
			return KindInvalid, KindInvalid, fmt.Errorf("event: nested lists are not supported")
		}
		return KindList, ek, nil
	default:
		return KindInvalid, KindInvalid, fmt.Errorf("event: unsupported Go type %s", t)
	}
}

// SchemaOf derives a Schema named typeName from the `scrub` struct tags of
// prototype, which must be a struct or pointer to struct.
func SchemaOf(typeName string, prototype any) (*Schema, error) {
	t := reflect.TypeOf(prototype)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("event: SchemaOf requires a struct, got %T", prototype)
	}
	var defs []FieldDef
	for i := 0; i < t.NumField(); i++ {
		sf := t.Field(i)
		tag, ok := sf.Tag.Lookup("scrub")
		if !ok || tag == "" || tag == "-" {
			continue
		}
		if !sf.IsExported() {
			return nil, fmt.Errorf("event: SchemaOf: tagged field %s.%s must be exported", t.Name(), sf.Name)
		}
		k, ek, err := kindOfGoType(sf.Type)
		if err != nil {
			return nil, fmt.Errorf("event: SchemaOf: field %s: %w", sf.Name, err)
		}
		defs = append(defs, FieldDef{Name: tag, Kind: k, Elem: ek})
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("event: SchemaOf: %s has no scrub-tagged fields", t.Name())
	}
	return NewSchema(typeName, defs...)
}

func valueOfGo(rv reflect.Value) (Value, error) {
	if rv.Type() == timeType {
		return Time(rv.Interface().(time.Time)), nil
	}
	switch rv.Kind() {
	case reflect.Bool:
		return Bool(rv.Bool()), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return Int(rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32:
		return Int(int64(rv.Uint())), nil
	case reflect.Float32, reflect.Float64:
		return Float(rv.Float()), nil
	case reflect.String:
		return Str(rv.String()), nil
	case reflect.Slice:
		ek, _, err := kindOfGoType(rv.Type().Elem())
		if err != nil {
			return Invalid, err
		}
		vs := make([]Value, rv.Len())
		for i := range vs {
			ev, err := valueOfGo(rv.Index(i))
			if err != nil {
				return Invalid, err
			}
			vs[i] = ev
		}
		return Value{kind: KindList, list: vs, elem: ek}, nil
	default:
		return Invalid, fmt.Errorf("event: unsupported Go value kind %s", rv.Kind())
	}
}

// Marshal converts a tagged struct value into an Event for the given
// schema. The struct must be the same shape SchemaOf derived the schema
// from (matched by tag name; extra untagged fields are ignored).
func Marshal(s *Schema, reqID uint64, ts time.Time, v any) (*Event, error) {
	rv := reflect.ValueOf(v)
	for rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return nil, fmt.Errorf("event: Marshal: nil pointer")
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("event: Marshal requires a struct, got %T", v)
	}
	values := make([]Value, s.NumFields())
	t := rv.Type()
	for i := 0; i < t.NumField(); i++ {
		tag, ok := t.Field(i).Tag.Lookup("scrub")
		if !ok || tag == "" || tag == "-" {
			continue
		}
		idx := s.FieldIndex(tag)
		if idx < 0 {
			return nil, fmt.Errorf("event: Marshal: schema %s has no field %q", s.Name(), tag)
		}
		val, err := valueOfGo(rv.Field(i))
		if err != nil {
			return nil, fmt.Errorf("event: Marshal: field %q: %w", tag, err)
		}
		def := s.Field(idx)
		if val.Kind() != def.Kind || (def.Kind == KindList && val.Elem() != def.Elem) {
			return nil, fmt.Errorf("event: Marshal: field %q: kind %s does not match schema %s", tag, val.Kind(), def.Kind)
		}
		values[idx] = val
	}
	return &Event{Schema: s, RequestID: reqID, TimeNanos: ts.UnixNano(), Values: values}, nil
}
