package event

import (
	"strings"
	"testing"
)

const demoSchemaText = `
# Turn bidding platform events
bid exchange_id:int user_id:long city:string bid_price:double when:time
auction line_item_ids:list<int> winner_bid_price:float
flag active:bool
`

func TestParseSchemas(t *testing.T) {
	schemas, err := ParseSchemas(demoSchemaText)
	if err != nil {
		t.Fatalf("ParseSchemas: %v", err)
	}
	if len(schemas) != 3 {
		t.Fatalf("schemas = %d", len(schemas))
	}
	bid := schemas[0]
	if bid.Name() != "bid" || bid.NumFields() != 5 {
		t.Fatalf("bid = %s", bid)
	}
	if k, _ := bid.FieldKind("user_id"); k != KindInt {
		t.Error("long should alias int")
	}
	if k, _ := bid.FieldKind("bid_price"); k != KindFloat {
		t.Error("double should alias float")
	}
	if k, _ := bid.FieldKind("when"); k != KindTime {
		t.Error("time kind")
	}
	auction := schemas[1]
	if f := auction.Field(0); f.Kind != KindList || f.Elem != KindInt {
		t.Errorf("list field = %+v", f)
	}
}

func TestParseSchemasErrors(t *testing.T) {
	bad := []string{
		"bid field_without_type",
		"bid x:blob",
		"bid :int",
		"bid x:",
		"bid x:list",
		"bid x:list<list>",
		"bid request_id:int", // system-field collision
		"bid a:int a:int",    // duplicate
	}
	for _, src := range bad {
		if _, err := ParseSchemas(src); err == nil {
			t.Errorf("ParseSchemas(%q) should fail", src)
		}
	}
}

func TestLoadCatalogAndFormatRoundTrip(t *testing.T) {
	cat, err := LoadCatalog(demoSchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 3 {
		t.Fatalf("catalog = %d", cat.Len())
	}
	// Format → Parse round trip preserves definitions.
	var schemas []*Schema
	for _, name := range cat.Names() {
		s, _ := cat.Lookup(name)
		schemas = append(schemas, s)
	}
	text := FormatSchemas(schemas)
	again, err := ParseSchemas(text)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(again) != len(schemas) {
		t.Fatal("round trip lost schemas")
	}
	for i := range schemas {
		if schemas[i].String() != again[i].String() {
			t.Errorf("schema %d: %s != %s", i, schemas[i], again[i])
		}
	}
	if !strings.Contains(text, "list<int>") {
		t.Errorf("formatted text = %q", text)
	}
	// Duplicate type names rejected at catalog load.
	if _, err := LoadCatalog("a x:int\na y:int"); err == nil {
		t.Error("conflicting duplicate type should fail")
	}
}
