package liveness

import (
	"reflect"
	"testing"
	"time"
)

func ns(s int64) int64 { return s * int64(time.Second) }

func TestTouchExpireReadmit(t *testing.T) {
	tab := NewTable(2 * time.Second)
	k1 := Key{Host: "h1"}
	k2 := Key{Host: "h2"}

	if _, re := tab.Touch(k1, ns(0)); re {
		t.Error("first touch should not be a re-admission")
	}
	tab.Touch(k2, ns(0))
	if tab.Len() != 2 || tab.AnyEvicted() {
		t.Fatalf("len=%d evicted=%v", tab.Len(), tab.AnyEvicted())
	}

	// h1 keeps heartbeating; h2 goes silent.
	tab.Touch(k1, ns(1))
	if got := tab.Expire(ns(1)); len(got) != 0 {
		t.Fatalf("nothing should expire at 1s, got %v", got)
	}
	got := tab.Expire(ns(2))
	if want := []Key{k2}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Expire = %v, want %v", got, want)
	}
	if !tab.AnyEvicted() || !tab.Get(k2).Evicted {
		t.Error("h2 should be evicted")
	}
	// Repeated expiry does not re-report (h1 keeps heartbeating).
	tab.Touch(k1, ns(2))
	if got := tab.Expire(ns(3)); len(got) != 0 {
		t.Errorf("already-evicted stream re-reported: %v", got)
	}

	// h2 reconnects: re-admitted, eviction counted.
	s, re := tab.Touch(k2, ns(4))
	if !re {
		t.Error("touch after eviction should report re-admission")
	}
	if s.Evicted || s.Evictions != 1 {
		t.Errorf("stream = %+v", s)
	}
	if tab.AnyEvicted() {
		t.Error("no stream should remain evicted")
	}
}

func TestWatermarkSkipsEvicted(t *testing.T) {
	tab := NewTable(time.Second)
	k1, k2 := Key{Host: "h1"}, Key{Host: "h2"}

	if _, ok := tab.Watermark(); ok {
		t.Error("empty table should have no watermark")
	}
	s1, _ := tab.Touch(k1, ns(0))
	s1.ObserveTs(ns(10))
	// h2 has only heartbeated — no tuple timestamps — so it must not pin
	// the watermark at zero.
	tab.Touch(k2, ns(0))
	if wm, ok := tab.Watermark(); !ok || wm != ns(10) {
		t.Fatalf("watermark = %d,%v want %d", wm, ok, ns(10))
	}

	s2, _ := tab.Touch(k2, ns(0))
	s2.ObserveTs(ns(4))
	if wm, _ := tab.Watermark(); wm != ns(4) {
		t.Fatalf("watermark = %d, want min %d", wm, ns(4))
	}

	// Evicting h2 releases the watermark to h1's clock.
	tab.Touch(k1, ns(5))
	tab.Expire(ns(5))
	if wm, ok := tab.Watermark(); !ok || wm != ns(10) {
		t.Fatalf("watermark after eviction = %d,%v want %d", wm, ok, ns(10))
	}

	// Re-admission pulls it back in.
	tab.Touch(k2, ns(6))
	if wm, _ := tab.Watermark(); wm != ns(4) {
		t.Fatalf("watermark after re-admission = %d, want %d", wm, ns(4))
	}

	s1.ObserveTs(ns(8)) // regressions are ignored
	if wm, _ := tab.Watermark(); wm != ns(4) {
		t.Fatalf("watermark = %d after stale ObserveTs", wm)
	}
	if s1.LastTs != ns(10) {
		t.Errorf("LastTs regressed to %d", s1.LastTs)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	tab := NewTable(time.Second)
	for _, h := range []string{"h3", "h1", "h2"} {
		for _, ti := range []uint8{1, 0} {
			s, _ := tab.Touch(Key{Host: h, TypeIdx: ti}, ns(0))
			s.Matched, s.Sampled, s.Drops = 10, 5, 1
		}
	}
	tab.Expire(ns(5))
	snap := tab.Snapshot()
	if len(snap) != 6 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		a, b := snap[i-1], snap[i]
		if a.HostID > b.HostID || (a.HostID == b.HostID && a.TypeIdx >= b.TypeIdx) {
			t.Fatalf("snapshot out of order at %d: %+v %+v", i, a, b)
		}
	}
	for _, s := range snap {
		if !s.Evicted || s.Matched != 10 || s.Sampled != 5 || s.Drops != 1 {
			t.Errorf("stat = %+v", s)
		}
	}
	if tab.HostDrops() != 6 {
		t.Errorf("HostDrops = %d, want 6", tab.HostDrops())
	}
}

func TestDefaultTTL(t *testing.T) {
	if got := NewTable(0).TTL(); got != DefaultTTL {
		t.Errorf("TTL = %v, want %v", got, DefaultTTL)
	}
	if got := NewTable(-time.Second).TTL(); got != DefaultTTL {
		t.Errorf("TTL = %v, want %v", got, DefaultTTL)
	}
}
