// Package liveness tracks the health of the per-(host, event-type) tuple
// streams feeding ScrubCentral. Every batch (including counter-only
// heartbeats) renews a stream's lease; a stream whose lease expires is
// *evicted*: it stops participating in the query watermark — so one
// crashed or partitioned host can no longer stall window emission for
// everyone — and the windows emitted while it is out carry a degraded
// marker naming it, with its last-known accounting. A stream that
// reconnects is re-admitted: it rejoins the watermark, and tuples it
// ships for windows that closed in its absence are counted as late
// instead of corrupting closed results.
//
// The paper's design (§4/§6: bounded queues, drop-under-pressure, finite
// spans, no durable state) calls for exactly this shape of graceful
// degradation: progress is never held hostage to a dead peer, and every
// loss is accounted, never silent.
//
// A Table is NOT self-locking: the central engines mutate it while
// holding their own query locks, so adding a second mutex here would only
// buy deadlock surface. Callers must serialize access themselves.
package liveness

import (
	"sort"
	"time"

	"scrub/internal/transport"
)

// Key identifies one tuple stream: a host shipping one event type of one
// query. (The query dimension is implicit — engines keep one Table per
// query.)
type Key struct {
	Host    string
	TypeIdx uint8
}

// Stream is the per-stream lease and accounting state.
type Stream struct {
	// LastSeen is the wall-clock nanos of the last batch or heartbeat.
	LastSeen int64
	// LastTs is the max event time shipped so far; HasTs gates it so a
	// stream that has only sent heartbeats does not pin the watermark at 0.
	LastTs int64
	HasTs  bool
	// Last-known cumulative counters from the host (TupleBatch fields).
	Matched uint64
	Sampled uint64
	Drops   uint64
	// LateDrops counts this stream's tuples that arrived after every
	// covering window had closed — counted, not applied.
	LateDrops uint64
	// Evicted marks an expired lease. Evictions counts how many times the
	// lease has expired over the stream's life (a flapping host shows up
	// here).
	Evicted   bool
	Evictions uint64
	// Governor accounting (TupleBatch fields): the host's last-reported
	// effective event-sampling rate (0 = never reported), whether the
	// budget governor shed the query there (sticky, like the host-side
	// flag), and cumulative measured cost.
	EffRate    float64
	BudgetShed bool
	CPUNs      uint64
	Bytes      uint64
	// Replay framing (TupleBatch fields). Replaying marks a stream
	// currently shipping replayed history: it announced a nonzero replay
	// epoch and has not yet sent its ReplayDone marker. ReplayEnded
	// latches once its replay finished (done marker, or eviction
	// mid-replay), so a duplicated or reordered epoch batch cannot
	// restart a finished replay.
	Replaying   bool
	ReplayEnded bool
}

// FoldGovernor folds one batch's governor accounting into the stream.
// Rates replace (they recover as well as degrade); shed is sticky; the
// cost counters are cumulative so max() tolerates duplicated or
// reordered batches, like the matched/sampled folding in the engines.
func (s *Stream) FoldGovernor(effRate float64, shed bool, cpuNs, bytes uint64) {
	if effRate > 0 {
		s.EffRate = effRate
	}
	if shed {
		s.BudgetShed = true
	}
	if cpuNs > s.CPUNs {
		s.CPUNs = cpuNs
	}
	if bytes > s.Bytes {
		s.Bytes = bytes
	}
}

// Table holds the lease state for one query's streams.
type Table struct {
	ttl     int64
	streams map[Key]*Stream
	// Replay bookkeeping: how many streams ever announced replay and how
	// many are still replaying. Maintained by FoldReplay and Expire; the
	// engines' replay hold reads them through ReplaySettled.
	replayStarted int
	replayActive  int
}

// DefaultTTL is the lease timeout applied when none is configured. It
// must comfortably exceed the host agents' heartbeat cadence (default 1s)
// so a healthy-but-quiet stream is never evicted between heartbeats.
const DefaultTTL = 3 * time.Second

// NewTable creates an empty lease table; ttl <= 0 selects DefaultTTL.
func NewTable(ttl time.Duration) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Table{ttl: int64(ttl), streams: make(map[Key]*Stream)}
}

// TTL reports the configured lease timeout.
func (t *Table) TTL() time.Duration { return time.Duration(t.ttl) }

// Touch renews k's lease at nowNanos, creating the stream on first
// contact. It reports the stream state and whether this touch re-admitted
// a previously evicted stream.
func (t *Table) Touch(k Key, nowNanos int64) (s *Stream, readmitted bool) {
	s = t.streams[k]
	if s == nil {
		s = &Stream{}
		t.streams[k] = s
	}
	s.LastSeen = nowNanos
	if s.Evicted {
		s.Evicted = false
		readmitted = true
	}
	return s, readmitted
}

// FoldReplay folds one batch's replay-epoch framing into the stream and
// the table's replay bookkeeping. Epoch 0 (a live batch) is a no-op:
// replay chunks interleave with live chunks on the same stream, so a
// live batch says nothing about whether the history has finished
// shipping — only the explicit ReplayDone marker (or eviction) does.
func (t *Table) FoldReplay(s *Stream, epoch uint32, done bool) {
	if epoch == 0 {
		return
	}
	if !s.Replaying && !s.ReplayEnded {
		s.Replaying = true
		t.replayStarted++
		t.replayActive++
	}
	if done && s.Replaying {
		s.Replaying = false
		s.ReplayEnded = true
		t.replayActive--
	}
}

// ReplaySettled reports whether replay shipping has finished: at least
// one stream announced replay and none is still replaying. A query no
// recording host serves never settles — the engines' hold deadline
// covers that case.
func (t *Table) ReplaySettled() bool {
	return t.replayStarted > 0 && t.replayActive == 0
}

// ObserveTs folds one batch's max event time into the stream.
func (s *Stream) ObserveTs(maxTs int64) {
	if !s.HasTs || maxTs > s.LastTs {
		s.LastTs = maxTs
		s.HasTs = true
	}
}

// Expire evicts every live stream whose lease is older than the TTL at
// nowNanos and returns the newly evicted keys (sorted, deterministic).
// Already-evicted streams are not reported again.
func (t *Table) Expire(nowNanos int64) []Key {
	var out []Key
	for k, s := range t.streams {
		if s.Evicted {
			continue
		}
		if nowNanos-s.LastSeen >= t.ttl {
			s.Evicted = true
			s.Evictions++
			if s.Replaying {
				// A dead host cannot finish its replay; a replay hold
				// must not wait out its own deadline for it.
				s.Replaying = false
				s.ReplayEnded = true
				t.replayActive--
			}
			out = append(out, k)
		}
	}
	sortKeys(out)
	return out
}

// Watermark returns the minimum LastTs across live (non-evicted) streams
// that have shipped at least one tuple, and false when no such stream
// exists. Evicted streams are excluded — that is the whole point: a dead
// host's frozen clock must not stop everyone else's windows from
// closing.
func (t *Table) Watermark() (int64, bool) {
	first := true
	var wm int64
	for _, s := range t.streams {
		if s.Evicted || !s.HasTs {
			continue
		}
		if first || s.LastTs < wm {
			wm = s.LastTs
			first = false
		}
	}
	return wm, !first
}

// AnyEvicted reports whether at least one stream is currently evicted.
func (t *Table) AnyEvicted() bool {
	for _, s := range t.streams {
		if s.Evicted {
			return true
		}
	}
	return false
}

// AnyShed reports whether at least one stream has been shed by the host
// budget governor.
func (t *Table) AnyShed() bool {
	for _, s := range t.streams {
		if s.BudgetShed {
			return true
		}
	}
	return false
}

// RatesByHost returns each host's effective event-sampling rate — the
// minimum reported across the host's streams — for hosts that have
// reported one. It returns nil when every reported rate equals planRate
// (within rounding), so the common unbudgeted case allocates nothing and
// downstream code can treat nil as "plan rate everywhere".
func (t *Table) RatesByHost(planRate float64) map[string]float64 {
	var out map[string]float64
	deviates := false
	for k, s := range t.streams {
		if s.EffRate <= 0 {
			continue
		}
		if out == nil {
			out = make(map[string]float64, 4)
		}
		if prev, ok := out[k.Host]; !ok || s.EffRate < prev {
			out[k.Host] = s.EffRate
		}
		if diff := s.EffRate - planRate; diff > 1e-12 || diff < -1e-12 {
			deviates = true
		}
	}
	if !deviates {
		return nil
	}
	return out
}

// HostDrops sums the last-known host queue-drop counters across streams
// (evicted ones included — their losses still happened).
func (t *Table) HostDrops() uint64 {
	var n uint64
	for _, s := range t.streams {
		n += s.Drops
	}
	return n
}

// Len returns the number of tracked streams.
func (t *Table) Len() int { return len(t.streams) }

// Get returns a stream's state, or nil.
func (t *Table) Get(k Key) *Stream { return t.streams[k] }

// Snapshot renders every stream as a transport.StreamStat, sorted by
// (host, type) so emitted windows are deterministic.
func (t *Table) Snapshot() []transport.StreamStat {
	if len(t.streams) == 0 {
		return nil
	}
	out := make([]transport.StreamStat, 0, len(t.streams))
	for k, s := range t.streams {
		out = append(out, transport.StreamStat{
			HostID:     k.Host,
			TypeIdx:    k.TypeIdx,
			Matched:    s.Matched,
			Sampled:    s.Sampled,
			Drops:      s.Drops,
			LateDrops:  s.LateDrops,
			Evicted:    s.Evicted,
			EffRate:    s.EffRate,
			BudgetShed: s.BudgetShed,
			CPUNs:      s.CPUNs,
			Bytes:      s.Bytes,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HostID != out[j].HostID {
			return out[i].HostID < out[j].HostID
		}
		return out[i].TypeIdx < out[j].TypeIdx
	})
	return out
}

func sortKeys(ks []Key) {
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Host != ks[j].Host {
			return ks[i].Host < ks[j].Host
		}
		return ks[i].TypeIdx < ks[j].TypeIdx
	})
}
