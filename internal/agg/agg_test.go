package agg

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scrub/internal/event"
)

func TestParseKind(t *testing.T) {
	cases := map[string]Kind{
		"count": KindCount, "SUM": KindSum, "Avg": KindAvg,
		"MIN": KindMin, "max": KindMax,
		"TOP_K": KindTopK, "topk": KindTopK,
		"COUNT_DISTINCT": KindCountDistinct, "countdistinct": KindCountDistinct,
	}
	for name, want := range cases {
		got, ok := ParseKind(name)
		if !ok || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := ParseKind("median"); ok {
		t.Error("ParseKind(median) should fail")
	}
}

func TestKindString(t *testing.T) {
	for k := KindCountStar; k <= KindCountDistinct; k++ {
		if k.String() == "INVALID" {
			t.Errorf("kind %d renders INVALID", k)
		}
	}
	if KindInvalid.String() != "INVALID" {
		t.Error("KindInvalid should render INVALID")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spec{Kind: KindTopK, K: 0}); err == nil {
		t.Error("TOP_K with k=0 should fail")
	}
	if _, err := New(Spec{Kind: KindCountDistinct, Prec: 99}); err == nil {
		t.Error("bad HLL precision should fail")
	}
	if _, err := New(Spec{Kind: KindInvalid}); err == nil {
		t.Error("invalid kind should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on error")
		}
	}()
	MustNew(Spec{Kind: KindInvalid})
}

func TestCountStarVsCount(t *testing.T) {
	star := MustNew(Spec{Kind: KindCountStar})
	plain := MustNew(Spec{Kind: KindCount})
	inputs := []event.Value{event.Int(1), event.Invalid, event.Str("x"), event.Invalid}
	for _, v := range inputs {
		star.Add(v)
		plain.Add(v)
	}
	if got := star.Result(); got.String() != "4" {
		t.Errorf("COUNT(*) = %v, want 4", got)
	}
	if got := plain.Result(); got.String() != "2" {
		t.Errorf("COUNT = %v, want 2 (NULLs skipped)", got)
	}
}

func TestSum(t *testing.T) {
	s := MustNew(Spec{Kind: KindSum})
	if s.Result().IsValid() {
		t.Error("empty SUM should be Invalid (NULL)")
	}
	s.Add(event.Int(3))
	s.Add(event.Int(-1))
	s.Add(event.Invalid)
	if got, _ := s.Result().AsInt(); got != 2 {
		t.Errorf("int SUM = %v", s.Result())
	}
	// Adding a float switches the result kind.
	s.Add(event.Float(0.5))
	f, ok := s.Result().AsFloat()
	if !ok || math.Abs(f-2.5) > 1e-12 {
		t.Errorf("mixed SUM = %v", s.Result())
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
}

func TestAvg(t *testing.T) {
	a := MustNew(Spec{Kind: KindAvg})
	if a.Result().IsValid() {
		t.Error("empty AVG should be Invalid")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		a.Add(event.Float(x))
	}
	a.Add(event.Str("skip")) // non-numeric skipped
	if f, _ := a.Result().AsFloat(); f != 2.5 {
		t.Errorf("AVG = %v", a.Result())
	}
}

func TestMinMax(t *testing.T) {
	mn := MustNew(Spec{Kind: KindMin})
	mx := MustNew(Spec{Kind: KindMax})
	for _, x := range []int64{5, -3, 9, 0} {
		mn.Add(event.Int(x))
		mx.Add(event.Int(x))
	}
	if got, _ := mn.Result().AsInt(); got != -3 {
		t.Errorf("MIN = %v", mn.Result())
	}
	if got, _ := mx.Result().AsInt(); got != 9 {
		t.Errorf("MAX = %v", mx.Result())
	}
	// Strings compare lexically.
	smn := MustNew(Spec{Kind: KindMin})
	smn.Add(event.Str("pear"))
	smn.Add(event.Str("apple"))
	if got, _ := smn.Result().AsStr(); got != "apple" {
		t.Errorf("string MIN = %v", smn.Result())
	}
	// Incomparable inputs are skipped.
	smn.Add(event.Int(1))
	if got, _ := smn.Result().AsStr(); got != "apple" {
		t.Errorf("MIN after incomparable input = %v", smn.Result())
	}
	if MustNew(Spec{Kind: KindMin}).Result().IsValid() {
		t.Error("empty MIN should be Invalid")
	}
}

func TestTopK(t *testing.T) {
	a := MustNew(Spec{Kind: KindTopK, K: 2})
	for i := 0; i < 50; i++ {
		a.Add(event.Str("hot"))
	}
	for i := 0; i < 30; i++ {
		a.Add(event.Str("warm"))
	}
	for i := 0; i < 100; i++ {
		a.Add(event.Str(fmt.Sprintf("cold-%d", i)))
	}
	a.Add(event.Invalid) // skipped
	entries, ok := TopKEntries(a)
	if !ok || len(entries) != 2 {
		t.Fatalf("TopKEntries = %v, %v", entries, ok)
	}
	if entries[0].Item != "hot" || entries[1].Item != "warm" {
		t.Errorf("top-2 = %v", entries)
	}
	res := a.Result()
	l, ok := res.AsList()
	if !ok || len(l) != 2 || !strings.HasPrefix(l[0].String(), "hot=") {
		t.Errorf("Result = %v", res)
	}
	if _, ok := TopKEntries(MustNew(Spec{Kind: KindSum})); ok {
		t.Error("TopKEntries on SUM should be not-ok")
	}
}

func TestCountDistinct(t *testing.T) {
	a := MustNew(Spec{Kind: KindCountDistinct})
	for i := 0; i < 10000; i++ {
		a.Add(event.Int(int64(i % 1000)))
	}
	got, _ := a.Result().AsInt()
	if math.Abs(float64(got)-1000)/1000 > 0.05 {
		t.Errorf("COUNT_DISTINCT = %d, want ~1000", got)
	}
	// int/float numeric identity: Int(5) and Float(5.0) are one item.
	b := MustNew(Spec{Kind: KindCountDistinct})
	b.Add(event.Int(5))
	b.Add(event.Float(5.0))
	if got, _ := b.Result().AsInt(); got != 1 {
		t.Errorf("Int(5)+Float(5.0) distinct = %d, want 1", got)
	}
}

func TestMergeAllKinds(t *testing.T) {
	specs := []Spec{
		{Kind: KindCountStar}, {Kind: KindCount}, {Kind: KindSum},
		{Kind: KindAvg}, {Kind: KindMin}, {Kind: KindMax},
		{Kind: KindTopK, K: 3}, {Kind: KindCountDistinct},
	}
	for _, spec := range specs {
		// Build the same stream split across two partials vs whole.
		whole := MustNew(spec)
		p1, p2 := MustNew(spec), MustNew(spec)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 2000; i++ {
			v := event.Int(int64(rng.Intn(50)))
			whole.Add(v)
			if i%2 == 0 {
				p1.Add(v)
			} else {
				p2.Add(v)
			}
		}
		if err := p1.Merge(p2); err != nil {
			t.Fatalf("%v Merge: %v", spec.Kind, err)
		}
		w, m := whole.Result(), p1.Result()
		if !w.Equal(m) {
			t.Errorf("%v: merged %v != whole %v", spec.Kind, m, w)
		}
		if whole.Count() != p1.Count() {
			t.Errorf("%v: merged count %d != %d", spec.Kind, p1.Count(), whole.Count())
		}
	}
}

func TestMergeKindMismatch(t *testing.T) {
	pairs := [][2]Spec{
		{{Kind: KindCount}, {Kind: KindSum}},
		{{Kind: KindSum}, {Kind: KindAvg}},
		{{Kind: KindAvg}, {Kind: KindMin}},
		{{Kind: KindMin}, {Kind: KindMax}}, // min vs max also incompatible
		{{Kind: KindTopK, K: 2}, {Kind: KindCountDistinct}},
		{{Kind: KindCountDistinct}, {Kind: KindCount}},
	}
	for _, p := range pairs {
		a, b := MustNew(p[0]), MustNew(p[1])
		if err := a.Merge(b); err == nil {
			t.Errorf("Merge %v into %v should fail", p[1].Kind, p[0].Kind)
		}
	}
}

func TestMergeEmptyPartials(t *testing.T) {
	a, b := MustNew(Spec{Kind: KindMin}), MustNew(Spec{Kind: KindMin})
	b.Add(event.Int(4))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Result().AsInt(); got != 4 {
		t.Errorf("empty-merge MIN = %v", a.Result())
	}
	c := MustNew(Spec{Kind: KindMin})
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Result().AsInt(); got != 4 {
		t.Errorf("merge-of-empty disturbed MIN: %v", a.Result())
	}
}

func TestSumMergeAssociativityQuick(t *testing.T) {
	f := func(xs []int32) bool {
		whole := MustNew(Spec{Kind: KindSum})
		parts := []Aggregator{MustNew(Spec{Kind: KindSum}), MustNew(Spec{Kind: KindSum}), MustNew(Spec{Kind: KindSum})}
		for i, x := range xs {
			v := event.Int(int64(x))
			whole.Add(v)
			parts[i%3].Add(v)
		}
		if err := parts[0].Merge(parts[1]); err != nil {
			return false
		}
		if err := parts[0].Merge(parts[2]); err != nil {
			return false
		}
		if len(xs) == 0 {
			return !parts[0].Result().IsValid() && !whole.Result().IsValid()
		}
		return parts[0].Result().Equal(whole.Result())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleResult(t *testing.T) {
	if got := ScaleResult(event.Int(100), 10); got.String() != "1000" {
		t.Errorf("scale int = %v", got)
	}
	if got, _ := ScaleResult(event.Float(2.5), 4).AsFloat(); got != 10 {
		t.Error("scale float failed")
	}
	if got := ScaleResult(event.Int(5), 1); got.String() != "5" {
		t.Error("factor 1 should be identity")
	}
	if ScaleResult(event.Invalid, 2).IsValid() {
		t.Error("scaling Invalid should stay Invalid")
	}
	if got := ScaleResult(event.Str("x"), 2); got.String() != "x" {
		t.Error("non-numeric passes through")
	}
	// Rounding.
	if got, _ := ScaleResult(event.Int(1), 2.6).AsInt(); got != 3 {
		t.Errorf("rounded scale = %d, want 3", got)
	}
}

func TestSpecHelpers(t *testing.T) {
	if !(Spec{Kind: KindSum}).RequiresNumeric() || (Spec{Kind: KindCount}).RequiresNumeric() {
		t.Error("RequiresNumeric misclassifies")
	}
	for _, k := range []Kind{KindCountStar, KindCount, KindSum} {
		if !(Spec{Kind: k}).Scalable() {
			t.Errorf("%v should be scalable", k)
		}
	}
	for _, k := range []Kind{KindAvg, KindMin, KindMax, KindTopK, KindCountDistinct} {
		if (Spec{Kind: k}).Scalable() {
			t.Errorf("%v should not be scalable", k)
		}
	}
}

func BenchmarkSumAdd(b *testing.B) {
	a := MustNew(Spec{Kind: KindSum})
	v := event.Float(1.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Add(v)
	}
}

func BenchmarkCountDistinctAdd(b *testing.B) {
	a := MustNew(Spec{Kind: KindCountDistinct})
	vals := make([]event.Value, 1024)
	for i := range vals {
		vals[i] = event.Int(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Add(vals[i&1023])
	}
}
