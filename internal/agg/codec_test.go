package agg

import (
	"fmt"
	"math/rand"
	"testing"

	"scrub/internal/event"
)

func randValue(rng *rand.Rand) event.Value {
	switch rng.Intn(4) {
	case 0:
		return event.Int(int64(rng.Intn(1000) - 500))
	case 1:
		return event.Float(rng.NormFloat64() * 100)
	case 2:
		return event.Str(fmt.Sprintf("s%d", rng.Intn(50)))
	default:
		return event.Invalid
	}
}

// sameResult treats two Invalid results (SQL NULL) as matching; Equal
// deliberately does not.
func sameResult(a, b event.Value) bool {
	if !a.IsValid() && !b.IsValid() {
		return true
	}
	return a.Equal(b)
}

// TestStateCodecRoundTrip drives every aggregate kind through random
// inputs, round-trips its state, and checks the decoded copy renders the
// same result and keeps merging identically afterwards.
func TestStateCodecRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindCountStar},
		{Kind: KindCount},
		{Kind: KindSum},
		{Kind: KindAvg},
		{Kind: KindMin},
		{Kind: KindMax},
		{Kind: KindTopK, K: 3},
		{Kind: KindCountDistinct},
		{Kind: KindCountDistinct, Prec: 6},
	}
	rng := rand.New(rand.NewSource(11))
	for _, spec := range specs {
		for trial := 0; trial < 10; trial++ {
			a := MustNew(spec)
			for i := rng.Intn(200); i > 0; i-- {
				a.Add(randValue(rng))
			}
			enc, err := AppendState(nil, a)
			if err != nil {
				t.Fatalf("%v: encode: %v", spec.Kind, err)
			}
			d, n, err := DecodeState(spec, enc)
			if err != nil {
				t.Fatalf("%v: decode: %v", spec.Kind, err)
			}
			if n != len(enc) {
				t.Fatalf("%v: consumed %d of %d bytes", spec.Kind, n, len(enc))
			}
			if d.Count() != a.Count() {
				t.Fatalf("%v: count %d vs %d", spec.Kind, d.Count(), a.Count())
			}
			if !sameResult(d.Result(), a.Result()) {
				t.Fatalf("%v: result %v vs %v", spec.Kind, d.Result(), a.Result())
			}
			// The decoded copy must keep evolving identically: fold the
			// same partial into both, then the same direct additions.
			o := MustNew(spec)
			for i := 0; i < 50; i++ {
				o.Add(randValue(rng))
			}
			if err := a.Merge(o); err != nil {
				t.Fatalf("%v: merge into original: %v", spec.Kind, err)
			}
			if err := d.Merge(o); err != nil {
				t.Fatalf("%v: merge into decoded: %v", spec.Kind, err)
			}
			for i := 0; i < 20; i++ {
				v := randValue(rng)
				a.Add(v)
				d.Add(v)
			}
			if d.Count() != a.Count() || !sameResult(d.Result(), a.Result()) {
				t.Fatalf("%v: post-merge divergence: (%d,%v) vs (%d,%v)",
					spec.Kind, d.Count(), d.Result(), a.Count(), a.Result())
			}
		}
	}
}

func TestStateCodecEmpty(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindCountStar}, {Kind: KindSum}, {Kind: KindAvg},
		{Kind: KindMin}, {Kind: KindMax}, {Kind: KindTopK, K: 2},
		{Kind: KindCountDistinct},
	} {
		a := MustNew(spec)
		enc, err := AppendState(nil, a)
		if err != nil {
			t.Fatalf("%v: encode empty: %v", spec.Kind, err)
		}
		d, n, err := DecodeState(spec, enc)
		if err != nil || n != len(enc) {
			t.Fatalf("%v: decode empty: n=%d err=%v", spec.Kind, n, err)
		}
		if d.Count() != 0 || !sameResult(d.Result(), a.Result()) {
			t.Fatalf("%v: empty round-trip mismatch", spec.Kind)
		}
	}
}

func TestStateCodecTruncation(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindSum}, {Kind: KindAvg}, {Kind: KindMin},
		{Kind: KindTopK, K: 2}, {Kind: KindCountDistinct, Prec: 6},
	} {
		a := MustNew(spec)
		a.Add(event.Int(5))
		a.Add(event.Int(9))
		enc, err := AppendState(nil, a)
		if err != nil {
			t.Fatalf("%v: encode: %v", spec.Kind, err)
		}
		for cut := 0; cut < len(enc); cut++ {
			if _, _, err := DecodeState(spec, enc[:cut]); err == nil {
				t.Fatalf("%v: truncation at %d decoded without error", spec.Kind, cut)
			}
		}
	}
}
