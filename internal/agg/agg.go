// Package agg implements Scrub's aggregation framework: the standard SQL
// aggregates (COUNT, SUM, AVG, MIN, MAX) plus the probabilistic aggregates
// the paper calls out — TOP_K via the SpaceSaving stream summary and
// COUNT_DISTINCT via HyperLogLog.
//
// All aggregators are mergeable so partial aggregates can be combined
// (across windows, or across a sharded ScrubCentral) without access to the
// raw tuples. Per the paper's execution model, aggregation runs only at
// ScrubCentral, never on the application hosts.
package agg

import (
	"fmt"
	"math"
	"strings"

	"scrub/internal/event"
	"scrub/internal/sketch"
)

// Kind identifies an aggregate function.
type Kind uint8

// Aggregate kinds.
const (
	KindInvalid Kind = iota
	KindCountStar
	KindCount
	KindSum
	KindAvg
	KindMin
	KindMax
	KindTopK
	KindCountDistinct
)

// String returns the query-language spelling.
func (k Kind) String() string {
	switch k {
	case KindCountStar:
		return "COUNT(*)"
	case KindCount:
		return "COUNT"
	case KindSum:
		return "SUM"
	case KindAvg:
		return "AVG"
	case KindMin:
		return "MIN"
	case KindMax:
		return "MAX"
	case KindTopK:
		return "TOP_K"
	case KindCountDistinct:
		return "COUNT_DISTINCT"
	default:
		return "INVALID"
	}
}

// ParseKind resolves a function name from query text. COUNT(*) is handled
// by the parser; this maps bare names.
func ParseKind(name string) (Kind, bool) {
	switch strings.ToUpper(name) {
	case "COUNT":
		return KindCount, true
	case "SUM":
		return KindSum, true
	case "AVG":
		return KindAvg, true
	case "MIN":
		return KindMin, true
	case "MAX":
		return KindMax, true
	case "TOP_K", "TOPK":
		return KindTopK, true
	case "COUNT_DISTINCT", "COUNTDISTINCT":
		return KindCountDistinct, true
	default:
		return KindInvalid, false
	}
}

// Spec declares one aggregate in a query plan.
type Spec struct {
	Kind Kind
	K    int   // TOP_K parameter
	Prec uint8 // HLL precision for COUNT_DISTINCT; 0 means default
}

// RequiresNumeric reports whether the aggregate's input must be numeric.
func (s Spec) RequiresNumeric() bool {
	return s.Kind == KindSum || s.Kind == KindAvg
}

// Scalable reports whether the aggregate's result scales linearly under
// sampling (so a Horvitz-Thompson factor can be applied). COUNT and SUM
// scale; AVG/MIN/MAX are invariant ratios/extremes; sketches are reported
// unscaled with a caveat.
func (s Spec) Scalable() bool {
	return s.Kind == KindCountStar || s.Kind == KindCount || s.Kind == KindSum
}

// Aggregator accumulates values and produces a result. Implementations are
// not safe for concurrent use; ScrubCentral partitions by group key.
type Aggregator interface {
	// Add folds one input value in. CountStar counts every call; the other
	// aggregates skip Invalid (missing) inputs, mirroring SQL NULL rules.
	Add(v event.Value)
	// Merge combines another partial of the same kind into the receiver.
	Merge(o Aggregator) error
	// Result renders the current aggregate as a result-row value. Empty
	// aggregates yield Invalid (SQL NULL), except COUNT variants which
	// yield 0.
	Result() event.Value
	// Count returns how many inputs were folded in (post-NULL-filtering).
	Count() uint64
}

// New constructs an aggregator for a spec.
func New(s Spec) (Aggregator, error) {
	switch s.Kind {
	case KindCountStar:
		return &countAgg{star: true}, nil
	case KindCount:
		return &countAgg{}, nil
	case KindSum:
		return &sumAgg{}, nil
	case KindAvg:
		return &avgAgg{}, nil
	case KindMin:
		return &extremeAgg{min: true}, nil
	case KindMax:
		return &extremeAgg{}, nil
	case KindTopK:
		k := s.K
		if k <= 0 {
			return nil, fmt.Errorf("agg: TOP_K requires k > 0, got %d", k)
		}
		// Track a multiple of k counters so the reported top-k is accurate
		// even under eviction pressure (standard SpaceSaving practice).
		return &topKAgg{k: k, ss: sketch.MustSpaceSaving(max(8*k, 64))}, nil
	case KindCountDistinct:
		p := s.Prec
		if p == 0 {
			p = sketch.DefaultHLLPrecision
		}
		h, err := sketch.NewHLL(p)
		if err != nil {
			return nil, err
		}
		return &distinctAgg{hll: h}, nil
	default:
		return nil, fmt.Errorf("agg: unknown aggregate kind %d", s.Kind)
	}
}

// MustNew is New that panics on error.
func MustNew(s Spec) Aggregator {
	a, err := New(s)
	if err != nil {
		panic(err)
	}
	return a
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mergeTypeError(dst, src Aggregator) error {
	return fmt.Errorf("agg: cannot merge %T into %T", src, dst)
}

// --- COUNT / COUNT(*) ---

type countAgg struct {
	star bool
	n    uint64
}

func (a *countAgg) Add(v event.Value) {
	if a.star || v.IsValid() {
		a.n++
	}
}

func (a *countAgg) Merge(o Aggregator) error {
	oc, ok := o.(*countAgg)
	if !ok {
		return mergeTypeError(a, o)
	}
	a.n += oc.n
	return nil
}

func (a *countAgg) Result() event.Value { return event.Int(int64(a.n)) }
func (a *countAgg) Count() uint64       { return a.n }

// --- SUM ---

type sumAgg struct {
	n       uint64
	intSum  int64
	fltSum  float64
	isFloat bool
}

func (a *sumAgg) Add(v event.Value) {
	if i, ok := v.AsInt(); ok {
		a.intSum += i
		a.fltSum += float64(i)
		a.n++
		return
	}
	if f, ok := v.AsFloat(); ok {
		a.isFloat = true
		a.fltSum += f
		a.n++
	}
}

func (a *sumAgg) Merge(o Aggregator) error {
	os, ok := o.(*sumAgg)
	if !ok {
		return mergeTypeError(a, o)
	}
	a.n += os.n
	a.intSum += os.intSum
	a.fltSum += os.fltSum
	a.isFloat = a.isFloat || os.isFloat
	return nil
}

func (a *sumAgg) Result() event.Value {
	if a.n == 0 {
		return event.Invalid
	}
	if a.isFloat {
		return event.Float(a.fltSum)
	}
	return event.Int(a.intSum)
}

func (a *sumAgg) Count() uint64 { return a.n }

// --- AVG ---

type avgAgg struct {
	n   uint64
	sum float64
}

func (a *avgAgg) Add(v event.Value) {
	if f, ok := v.AsFloat(); ok {
		a.sum += f
		a.n++
	}
}

func (a *avgAgg) Merge(o Aggregator) error {
	oa, ok := o.(*avgAgg)
	if !ok {
		return mergeTypeError(a, o)
	}
	a.n += oa.n
	a.sum += oa.sum
	return nil
}

func (a *avgAgg) Result() event.Value {
	if a.n == 0 {
		return event.Invalid
	}
	return event.Float(a.sum / float64(a.n))
}

func (a *avgAgg) Count() uint64 { return a.n }

// --- MIN / MAX ---

type extremeAgg struct {
	min  bool
	n    uint64
	best event.Value
}

func (a *extremeAgg) Add(v event.Value) {
	if !v.IsValid() {
		return
	}
	if a.n == 0 {
		a.best = v
		a.n++
		return
	}
	c, ok := v.Compare(a.best)
	if !ok {
		return // incomparable input (kind mismatch): skip, like NULL
	}
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	a.n++
}

func (a *extremeAgg) Merge(o Aggregator) error {
	oe, ok := o.(*extremeAgg)
	if !ok || oe.min != a.min {
		return mergeTypeError(a, o)
	}
	if oe.n == 0 {
		return nil
	}
	if a.n == 0 {
		a.best, a.n = oe.best, oe.n
		return nil
	}
	c, ok2 := oe.best.Compare(a.best)
	if ok2 && ((a.min && c < 0) || (!a.min && c > 0)) {
		a.best = oe.best
	}
	a.n += oe.n
	return nil
}

func (a *extremeAgg) Result() event.Value {
	if a.n == 0 {
		return event.Invalid
	}
	return a.best
}

func (a *extremeAgg) Count() uint64 { return a.n }

// --- TOP_K ---

type topKAgg struct {
	k  int
	n  uint64
	ss *sketch.SpaceSaving
}

func (a *topKAgg) Add(v event.Value) {
	if !v.IsValid() {
		return
	}
	a.ss.Add(v.String())
	a.n++
}

func (a *topKAgg) Merge(o Aggregator) error {
	ot, ok := o.(*topKAgg)
	if !ok {
		return mergeTypeError(a, o)
	}
	a.ss.Merge(ot.ss)
	a.n += ot.n
	return nil
}

// Result renders the top-k as a list of "item=count" strings; use Entries
// for structured access.
func (a *topKAgg) Result() event.Value {
	entries := a.ss.Top(a.k)
	vs := make([]event.Value, len(entries))
	for i, e := range entries {
		vs[i] = event.Str(fmt.Sprintf("%s=%d", e.Item, e.Count))
	}
	return event.List(event.KindString, vs...)
}

func (a *topKAgg) Count() uint64 { return a.n }

// Entries exposes the structured top-k for harnesses and tests.
func (a *topKAgg) Entries() []sketch.Entry { return a.ss.Top(a.k) }

// TopKEntries extracts structured entries when a is a TOP_K aggregator.
func TopKEntries(a Aggregator) ([]sketch.Entry, bool) {
	t, ok := a.(*topKAgg)
	if !ok {
		return nil, false
	}
	return t.Entries(), true
}

// --- COUNT_DISTINCT ---

type distinctAgg struct {
	n   uint64
	hll *sketch.HLL
}

func (a *distinctAgg) Add(v event.Value) {
	if !v.IsValid() {
		return
	}
	a.hll.AddHash(v.Hash())
	a.n++
}

func (a *distinctAgg) Merge(o Aggregator) error {
	od, ok := o.(*distinctAgg)
	if !ok {
		return mergeTypeError(a, o)
	}
	if err := a.hll.Merge(od.hll); err != nil {
		return err
	}
	a.n += od.n
	return nil
}

func (a *distinctAgg) Result() event.Value { return event.Int(int64(a.hll.Estimate())) }
func (a *distinctAgg) Count() uint64       { return a.n }

// ScaleResult applies a Horvitz-Thompson scale factor to a scalable
// aggregate's result (COUNT and SUM under sampling). Non-numeric or
// invalid results pass through unchanged.
func ScaleResult(v event.Value, factor float64) event.Value {
	if factor == 1 || !v.IsValid() {
		return v
	}
	if i, ok := v.AsInt(); ok {
		return event.Int(int64(math.Round(float64(i) * factor)))
	}
	if f, ok := v.AsFloat(); ok {
		return event.Float(f * factor)
	}
	return v
}
