package agg

import (
	"encoding/binary"
	"fmt"
	"math"

	"scrub/internal/event"
	"scrub/internal/sketch"
)

// State codec: serialize an aggregator's accumulated state so a sharded
// ScrubCentral can ship per-shard partials to a coordinator for merging.
// Numeric state travels as raw IEEE-754 bits and sketches use their own
// binary forms, so decode(encode(a)) merges and renders bit-identically
// to a. The spec is not encoded — the decoder is handed the plan's Spec
// for the same aggregate slot, exactly like Merge pairs partials by slot.

// AppendState appends a's accumulated state to dst.
func AppendState(dst []byte, a Aggregator) ([]byte, error) {
	switch ag := a.(type) {
	case *countAgg:
		return binary.AppendUvarint(dst, ag.n), nil
	case *sumAgg:
		dst = binary.AppendUvarint(dst, ag.n)
		dst = appendU64(dst, uint64(ag.intSum))
		dst = appendU64(dst, math.Float64bits(ag.fltSum))
		return appendBool(dst, ag.isFloat), nil
	case *avgAgg:
		dst = binary.AppendUvarint(dst, ag.n)
		return appendU64(dst, math.Float64bits(ag.sum)), nil
	case *extremeAgg:
		dst = binary.AppendUvarint(dst, ag.n)
		if ag.n == 0 {
			return dst, nil
		}
		return event.AppendValue(dst, ag.best), nil
	case *topKAgg:
		dst = binary.AppendUvarint(dst, ag.n)
		return ag.ss.AppendBinary(dst), nil
	case *distinctAgg:
		dst = binary.AppendUvarint(dst, ag.n)
		return ag.hll.AppendBinary(dst), nil
	default:
		return nil, fmt.Errorf("agg: cannot encode state of %T", a)
	}
}

// DecodeState constructs a fresh aggregator for spec and loads state
// serialized by AppendState into it, returning bytes consumed. The spec
// must match the one the encoder's aggregator was built from.
func DecodeState(s Spec, b []byte) (Aggregator, int, error) {
	a, err := New(s)
	if err != nil {
		return nil, 0, err
	}
	n64, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, fmt.Errorf("agg: decode state: bad count")
	}
	n := sz
	switch ag := a.(type) {
	case *countAgg:
		ag.n = n64
		return ag, n, nil
	case *sumAgg:
		if len(b) < n+17 {
			return nil, 0, fmt.Errorf("agg: decode state: short sum")
		}
		ag.n = n64
		ag.intSum = int64(binary.LittleEndian.Uint64(b[n:]))
		ag.fltSum = math.Float64frombits(binary.LittleEndian.Uint64(b[n+8:]))
		ag.isFloat = b[n+16] != 0
		return ag, n + 17, nil
	case *avgAgg:
		if len(b) < n+8 {
			return nil, 0, fmt.Errorf("agg: decode state: short avg")
		}
		ag.n = n64
		ag.sum = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		return ag, n + 8, nil
	case *extremeAgg:
		ag.n = n64
		if n64 == 0 {
			return ag, n, nil
		}
		v, used, err := event.DecodeValue(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("agg: decode state: extreme: %w", err)
		}
		ag.best = v
		return ag, n + used, nil
	case *topKAgg:
		ss, used, err := sketch.DecodeSpaceSaving(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("agg: decode state: top-k: %w", err)
		}
		ag.n = n64
		ag.ss = ss
		return ag, n + used, nil
	case *distinctAgg:
		hll, used, err := sketch.DecodeHLL(b[n:])
		if err != nil {
			return nil, 0, fmt.Errorf("agg: decode state: distinct: %w", err)
		}
		ag.n = n64
		ag.hll = hll
		return ag, n + used, nil
	default:
		return nil, 0, fmt.Errorf("agg: cannot decode state of %T", a)
	}
}

func appendU64(dst []byte, x uint64) []byte {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	return append(dst, buf[:]...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}
