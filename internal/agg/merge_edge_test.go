package agg

import (
	"math"
	"testing"

	"scrub/internal/event"
)

// Satellite: shard merges routinely fold *empty* partials (a shard that
// saw no tuples for a group) and occasionally NaN-bearing readings into
// populated aggregators. An empty partial must be a strict no-op — it
// must not poison AVG with 0-count weighting or MIN/MAX with zero-value
// extremes — and merge must equal feeding one aggregator the combined
// stream.

func feed(t *testing.T, s Spec, vals ...event.Value) Aggregator {
	t.Helper()
	a := MustNew(s)
	for _, v := range vals {
		a.Add(v)
	}
	return a
}

func mustMerge(t *testing.T, dst, src Aggregator) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

func TestMergeEdgeCases(t *testing.T) {
	f := event.Float
	i := event.Int
	nan := event.Float(math.NaN())
	cases := []struct {
		name  string
		spec  Spec
		left  []event.Value
		right []event.Value
		want  event.Value // expected merged Result
		wantN uint64
	}{
		// Empty partials are no-ops in either direction.
		{"avg empty into populated", Spec{Kind: KindAvg}, []event.Value{f(2), f(4)}, nil, f(3), 2},
		{"avg populated into empty", Spec{Kind: KindAvg}, nil, []event.Value{f(2), f(4)}, f(3), 2},
		{"avg empty into empty", Spec{Kind: KindAvg}, nil, nil, event.Invalid, 0},
		{"min empty into populated", Spec{Kind: KindMin}, []event.Value{i(5), i(9)}, nil, i(5), 2},
		{"min populated into empty", Spec{Kind: KindMin}, nil, []event.Value{i(5), i(9)}, i(5), 2},
		{"max empty into populated", Spec{Kind: KindMax}, []event.Value{i(-7), i(-3)}, nil, i(-3), 2},
		{"max populated into empty", Spec{Kind: KindMax}, nil, []event.Value{i(-7), i(-3)}, i(-3), 2},
		{"max negative both sides", Spec{Kind: KindMax}, []event.Value{i(-7)}, []event.Value{i(-3)}, i(-3), 2},
		{"min empty into empty", Spec{Kind: KindMin}, nil, nil, event.Invalid, 0},
		{"sum empty into populated", Spec{Kind: KindSum}, []event.Value{i(1), i(2)}, nil, i(3), 2},
		{"sum empty into empty", Spec{Kind: KindSum}, nil, nil, event.Invalid, 0},
		{"count empty into populated", Spec{Kind: KindCount}, []event.Value{i(1)}, nil, i(1), 1},
		{"count(*) empty into empty", Spec{Kind: KindCountStar}, nil, nil, i(0), 0},

		// Singletons: the smallest populated partials.
		{"avg singleton each side", Spec{Kind: KindAvg}, []event.Value{f(1)}, []event.Value{f(3)}, f(2), 2},
		{"min singleton each side", Spec{Kind: KindMin}, []event.Value{i(4)}, []event.Value{i(2)}, i(2), 2},

		// Invalid (NULL) inputs are filtered at Add, so partials that saw
		// only NULLs behave exactly like empty ones.
		{"avg null-only partial", Spec{Kind: KindAvg}, []event.Value{f(6)}, []event.Value{event.Invalid}, f(6), 1},
		{"min null-only partial", Spec{Kind: KindMin}, []event.Value{i(6)}, []event.Value{event.Invalid}, i(6), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := feed(t, tc.spec, tc.left...)
			src := feed(t, tc.spec, tc.right...)
			mustMerge(t, dst, src)
			got := dst.Result()
			if !resultsEqual(got, tc.want) {
				t.Errorf("merged result = %v, want %v", got, tc.want)
			}
			if dst.Count() != tc.wantN {
				t.Errorf("merged count = %d, want %d", dst.Count(), tc.wantN)
			}

			// Merge must equal one aggregator fed the combined stream.
			seq := feed(t, tc.spec, append(append([]event.Value(nil), tc.left...), tc.right...)...)
			if sg := seq.Result(); !resultsEqual(got, sg) {
				t.Errorf("merge/sequential mismatch: merged %v, sequential %v", got, sg)
			}
		})
	}

	// NaN semantics are pinned (not judged): event.Value.Compare treats
	// NaN as equal to every number, so MIN/MAX keep whichever extreme was
	// installed first and NaN never displaces a real value; AVG and SUM
	// propagate NaN like IEEE addition. Merge must mirror sequential
	// feeding in all of these.
	t.Run("nan pinned semantics", func(t *testing.T) {
		minA := feed(t, Spec{Kind: KindMin}, f(3))
		minB := feed(t, Spec{Kind: KindMin}, nan)
		mustMerge(t, minA, minB)
		if got := minA.Result(); !resultsEqual(got, f(3)) {
			t.Errorf("min(3)⊕min(NaN) = %v, want 3 (NaN never displaces)", got)
		}

		avgA := feed(t, Spec{Kind: KindAvg}, f(1), f(2))
		avgB := feed(t, Spec{Kind: KindAvg}, nan)
		mustMerge(t, avgA, avgB)
		gf, ok := avgA.Result().AsFloat()
		if !ok || !math.IsNaN(gf) {
			t.Errorf("avg with NaN partial = %v, want NaN", avgA.Result())
		}
		seq := feed(t, Spec{Kind: KindAvg}, f(1), f(2), nan)
		sf, _ := seq.Result().AsFloat()
		if math.IsNaN(gf) != math.IsNaN(sf) {
			t.Errorf("avg merge/sequential NaN mismatch: %v vs %v", gf, sf)
		}

		sumA := feed(t, Spec{Kind: KindSum}, f(1))
		sumB := feed(t, Spec{Kind: KindSum}, nan)
		mustMerge(t, sumA, sumB)
		if gf, _ := sumA.Result().AsFloat(); !math.IsNaN(gf) {
			t.Errorf("sum with NaN partial = %v, want NaN", sumA.Result())
		}
	})
}

// resultsEqual compares two aggregate results exactly, treating Invalid
// as equal to Invalid.
func resultsEqual(a, b event.Value) bool {
	if !a.IsValid() || !b.IsValid() {
		return a.IsValid() == b.IsValid()
	}
	if af, aok := a.AsFloat(); aok {
		bf, bok := b.AsFloat()
		if !bok {
			return false
		}
		if math.IsNaN(af) && math.IsNaN(bf) {
			return true
		}
		return af == bf
	}
	c, ok := a.Compare(b)
	return ok && c == 0
}
