package server

import (
	"fmt"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/transport"
)

// newTestHub assembles a hub + server on ephemeral ports.
func newTestHub(t *testing.T) (*Hub, *Server, *cluster.Registry) {
	t.Helper()
	registry := cluster.NewRegistry()
	hub, err := NewHub(registry, "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub.SetLogf(func(string, ...any) {})
	srv, err := New(Config{
		Catalog:      testCatalog(),
		Registry:     registry,
		Engine:       central.NewEngine(),
		Dispatcher:   hub,
		TickInterval: 20 * time.Millisecond,
	})
	if err != nil {
		hub.Close()
		t.Fatal(err)
	}
	hub.SetServer(srv)
	hub.Serve()
	t.Cleanup(func() {
		srv.Close()
		hub.Close()
	})
	return hub, srv, registry
}

func dialT(t *testing.T, addr string) *transport.Conn {
	t.Helper()
	c, err := transport.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHubAgentRegistrationLifecycle(t *testing.T) {
	hub, _, registry := newTestHub(t)

	agent := dialT(t, hub.ControlAddr())
	if err := agent.Send(transport.RegisterHost{HostID: "h1", Service: "BidServers", DC: "DC1"}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "registration", func() bool { return registry.Len() == 1 })
	if h, ok := registry.Lookup("h1"); !ok || h.Service != "BidServers" {
		t.Fatalf("registry entry = %+v, %v", h, ok)
	}

	// The hub can now dispatch to the host.
	if err := hub.SendToHost("h1", transport.StopQuery{QueryID: 9}); err != nil {
		t.Fatal(err)
	}
	msg, err := agent.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if sq, ok := msg.(transport.StopQuery); !ok || sq.QueryID != 9 {
		t.Fatalf("agent got %s", transport.Name(msg))
	}

	// Disconnect deregisters.
	agent.Close()
	waitCond(t, "deregistration", func() bool { return registry.Len() == 0 })
	if err := hub.SendToHost("h1", transport.StopQuery{QueryID: 9}); err == nil {
		t.Error("dispatch to a departed host should fail")
	}
}

func TestHubRejectsBadControlHandshake(t *testing.T) {
	hub, _, registry := newTestHub(t)
	c := dialT(t, hub.ControlAddr())
	// Wrong first message: connection is dropped, nothing registered.
	if err := c.Send(transport.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err == nil {
		t.Error("hub should close the connection")
	}
	if registry.Len() != 0 {
		t.Error("bad handshake registered a host")
	}
}

func TestHubReplacesDuplicateHostConnection(t *testing.T) {
	hub, _, registry := newTestHub(t)
	old := dialT(t, hub.ControlAddr())
	if err := old.Send(transport.RegisterHost{HostID: "h1", Service: "S"}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "first registration", func() bool { return registry.Len() == 1 })

	replacement := dialT(t, hub.ControlAddr())
	if err := replacement.Send(transport.RegisterHost{HostID: "h1", Service: "S"}); err != nil {
		t.Fatal(err)
	}
	// The old connection is closed by the hub; the replacement works.
	if _, err := old.Recv(); err == nil {
		t.Error("old connection should be closed")
	}
	waitCond(t, "replacement dispatchable", func() bool {
		return hub.SendToHost("h1", transport.Ping{Nonce: 1}) == nil
	})
	msg, err := replacement.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(transport.Ping); !ok {
		t.Fatalf("replacement got %s", transport.Name(msg))
	}
	// A host must still be registered (the replacement's deferred cleanup
	// must not have deregistered it).
	if registry.Len() != 1 {
		t.Errorf("registry len = %d", registry.Len())
	}
}

func TestHubDataPath(t *testing.T) {
	hub, srv, registry := newTestHub(t)
	_ = registry.Register(cluster.HostInfo{Name: "h1", Service: "BidServers"})

	// Install a query directly (dispatch goes nowhere, that's fine).
	var got []transport.ResultWindow
	done := make(chan struct{})
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h`, Callbacks{
		Window: func(rw transport.ResultWindow) { got = append(got, rw) },
		Done:   func(transport.QueryDone) { close(done) },
	})
	if err != nil {
		t.Fatal(err)
	}

	data := dialT(t, hub.DataAddr())
	if err := data.Send(transport.DataHello{HostID: "h1"}); err != nil {
		t.Fatal(err)
	}
	if err := data.Send(transport.TupleBatch{
		QueryID: info.ID, HostID: "h1", TypeIdx: 0,
		Tuples: []transport.Tuple{{RequestID: 1, TsNanos: time.Now().UnixNano()}},
	}); err != nil {
		t.Fatal(err)
	}
	// Give the data goroutine a moment, then flush via cancel.
	waitCond(t, "tuple ingested", func() bool {
		st, _ := srv.cfg.Engine.Stats(info.ID)
		return st.TuplesIn == 1
	})
	_ = srv.Cancel(info.ID)
	<-done
	if len(got) != 1 || got[0].Rows[0][0].String() != "1" {
		t.Fatalf("windows = %+v", got)
	}
}

func TestHubDataPathRejectsBadHandshake(t *testing.T) {
	hub, _, _ := newTestHub(t)
	data := dialT(t, hub.DataAddr())
	if err := data.Send(transport.Ping{Nonce: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := data.Recv(); err == nil {
		t.Error("bad data handshake should close the connection")
	}
}

func TestHubClientSession(t *testing.T) {
	hub, _, registry := newTestHub(t)
	_ = registry.Register(cluster.HostInfo{Name: "h1", Service: "BidServers"})

	client := dialT(t, hub.ClientAddr())
	// Ping works pre-query.
	if err := client.Send(transport.Ping{Nonce: 7}); err != nil {
		t.Fatal(err)
	}
	if msg, err := client.Recv(); err != nil {
		t.Fatal(err)
	} else if p, ok := msg.(transport.Pong); !ok || p.Nonce != 7 {
		t.Fatalf("got %s", transport.Name(msg))
	}
	// Bad query → QueryError with no id.
	if err := client.Send(transport.SubmitQuery{Text: "not a query"}); err != nil {
		t.Fatal(err)
	}
	if msg, _ := client.Recv(); msg == nil {
		t.Fatal("no response")
	} else if qe, ok := msg.(transport.QueryError); !ok || qe.QueryID != 0 {
		t.Fatalf("got %#v", msg)
	}
	// Good query → accepted; cancel → done.
	if err := client.Send(transport.SubmitQuery{Text: `select count(*) from bid window 1s duration 1h`}); err != nil {
		t.Fatal(err)
	}
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	acc, ok := msg.(transport.QueryAccepted)
	if !ok {
		t.Fatalf("got %s", transport.Name(msg))
	}
	if err := client.Send(transport.CancelQuery{QueryID: acc.QueryID}); err != nil {
		t.Fatal(err)
	}
	// Drain until QueryDone.
	for {
		msg, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if d, ok := msg.(transport.QueryDone); ok {
			if d.QueryID != acc.QueryID {
				t.Errorf("done for %d", d.QueryID)
			}
			break
		}
	}
	// Cancelling an unknown query → error with the id echoed.
	if err := client.Send(transport.CancelQuery{QueryID: 999}); err != nil {
		t.Fatal(err)
	}
	if msg, _ := client.Recv(); msg == nil {
		t.Fatal("no response")
	} else if qe, ok := msg.(transport.QueryError); !ok || qe.QueryID != 999 {
		t.Fatalf("got %#v", msg)
	}
	// Unexpected message type → error.
	if err := client.Send(transport.DataHello{HostID: "x"}); err != nil {
		t.Fatal(err)
	}
	if msg, _ := client.Recv(); msg == nil {
		t.Fatal("no response")
	} else if _, ok := msg.(transport.QueryError); !ok {
		t.Fatalf("got %#v", msg)
	}
}

func TestHubClientDisconnectCancelsQueries(t *testing.T) {
	hub, srv, registry := newTestHub(t)
	_ = registry.Register(cluster.HostInfo{Name: "h1", Service: "BidServers"})
	client := dialT(t, hub.ClientAddr())
	if err := client.Send(transport.SubmitQuery{Text: `select count(*) from bid window 1s duration 1h`}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "query active", func() bool { return len(srv.Active()) == 1 })
	client.Close()
	waitCond(t, "query cancelled on disconnect", func() bool { return len(srv.Active()) == 0 })
}

func TestDecodedSchemaMismatchClosesEvent(t *testing.T) {
	// event.LoadCatalog used by the daemons: duplicate conflicting types
	// must fail (regression guard for catalog skew between daemons).
	if _, err := event.LoadCatalog("a x:int\na x:string"); err == nil {
		t.Error("conflicting types should fail")
	}
}

func TestHubListQueries(t *testing.T) {
	hub, _, registry := newTestHub(t)
	_ = registry.Register(cluster.HostInfo{Name: "h1", Service: "BidServers"})
	client := dialT(t, hub.ClientAddr())

	// Empty initially.
	if err := client.Send(transport.ListQueries{}); err != nil {
		t.Fatal(err)
	}
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ql, ok := msg.(transport.QueryList); !ok || len(ql.Queries) != 0 {
		t.Fatalf("got %#v", msg)
	}

	// Submit, then list from a second client.
	if err := client.Send(transport.SubmitQuery{Text: `select count(*) from bid window 1s duration 1h`}); err != nil {
		t.Fatal(err)
	}
	acc, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	qid := acc.(transport.QueryAccepted).QueryID

	viewer := dialT(t, hub.ClientAddr())
	if err := viewer.Send(transport.ListQueries{}); err != nil {
		t.Fatal(err)
	}
	msg, err = viewer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	ql, ok := msg.(transport.QueryList)
	if !ok || len(ql.Queries) != 1 {
		t.Fatalf("got %#v", msg)
	}
	q := ql.Queries[0]
	if q.QueryID != qid || q.Hosts != 1 || q.Text == "" || len(q.Columns) != 1 {
		t.Errorf("summary = %+v", q)
	}
}

func TestHubResyncsQueriesOnReconnect(t *testing.T) {
	hub, srv, registry := newTestHub(t)
	_ = registry.Register(cluster.HostInfo{Name: "h1", Service: "BidServers"})

	// An active query targeting h1 exists before the agent connects
	// (dispatch at submit time failed silently — no control conn yet).
	cb := Callbacks{Window: func(transport.ResultWindow) {}, Done: func(transport.QueryDone) {}}
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h`, cb)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Cancel(info.ID)

	// The agent now connects: registration must trigger a re-sync and the
	// query object must arrive.
	agent := dialT(t, hub.ControlAddr())
	if err := agent.Send(transport.RegisterHost{HostID: "h1", Service: "BidServers"}); err != nil {
		t.Fatal(err)
	}
	msg, err := agent.Recv()
	if err != nil {
		t.Fatal(err)
	}
	hq, ok := msg.(transport.HostQuery)
	if !ok {
		t.Fatalf("got %s, want HostQuery", transport.Name(msg))
	}
	if hq.QueryID != info.ID || hq.EventType != "bid" {
		t.Errorf("resynced query = %+v", hq)
	}

	// Reconnect (simulating an app restart): the replacement connection
	// gets the query again.
	agent.Close()
	again := dialT(t, hub.ControlAddr())
	if err := again.Send(transport.RegisterHost{HostID: "h1", Service: "BidServers"}); err != nil {
		t.Fatal(err)
	}
	msg, err = again.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if hq, ok := msg.(transport.HostQuery); !ok || hq.QueryID != info.ID {
		t.Fatalf("reconnect got %s", transport.Name(msg))
	}
}

func TestResyncHostOnlyTargetedQueries(t *testing.T) {
	srv, disp, _ := newTestServer(t, 3)
	cb, _ := noopCallbacks()
	// Query sampled to a subset: only those hosts re-sync.
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h sample hosts 34%`, cb)
	if err != nil {
		t.Fatal(err)
	}
	if info.SampledHosts != 2 {
		t.Fatalf("sampled = %d", info.SampledHosts)
	}
	targeted := map[string]bool{}
	for _, h := range info.Hosts {
		targeted[h] = true
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("h-%02d", i)
		n := srv.ResyncHost(name)
		if targeted[name] && n != 1 {
			t.Errorf("resync %s = %d, want 1", name, n)
		}
		if !targeted[name] && n != 0 {
			t.Errorf("resync %s = %d, want 0 (not targeted)", name, n)
		}
	}
	// After the query ends, nothing re-syncs.
	_ = srv.Cancel(info.ID)
	if n := srv.ResyncHost(info.Hosts[0]); n != 0 {
		t.Errorf("resync after cancel = %d", n)
	}
	_ = disp
}
