package server

import (
	"fmt"
	"log"
	"sync"

	"scrub/internal/cluster"
	"scrub/internal/obs"
	"scrub/internal/transport"
)

// Hub is the TCP front of a Scrub deployment. It owns three listeners:
//
//	client  — troubleshooters submit queries and stream results
//	control — host agents register and receive query objects
//	data    — host agents ship tuple batches for ScrubCentral
//
// The hub implements Dispatcher over the registered control connections.
// Construct the hub first, build the Server with the hub as Dispatcher,
// then call SetServer and Serve.
type Hub struct {
	registry *cluster.Registry
	logf     func(format string, args ...any)

	mu    sync.Mutex
	srv   *Server
	hosts map[string]*transport.Conn

	// dataMet aggregates wire accounting across every accepted data
	// connection; nil without SetMetrics.
	dataMet *transport.ConnMetrics

	clientL  *transport.Listener
	controlL *transport.Listener
	dataL    *transport.Listener

	wg     sync.WaitGroup
	closed sync.Once
}

// NewHub opens the three listeners. Pass "127.0.0.1:0" addresses for
// ephemeral ports; the *Addr methods report what was bound.
func NewHub(registry *cluster.Registry, clientAddr, controlAddr, dataAddr string) (*Hub, error) {
	h := &Hub{
		registry: registry,
		hosts:    make(map[string]*transport.Conn),
		logf:     log.Printf,
	}
	var err error
	if h.clientL, err = transport.Listen(clientAddr); err != nil {
		return nil, err
	}
	if h.controlL, err = transport.Listen(controlAddr); err != nil {
		h.clientL.Close()
		return nil, err
	}
	if h.dataL, err = transport.Listen(dataAddr); err != nil {
		h.clientL.Close()
		h.controlL.Close()
		return nil, err
	}
	return h, nil
}

// SetServer wires the query server in; must happen before Serve.
func (h *Hub) SetServer(s *Server) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.srv = s
}

// SetMetrics registers the hub's transport series with reg; call before
// Serve. All accepted data connections share one aggregate series set.
func (h *Hub) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	h.dataMet = transport.NewConnMetrics(reg, obs.L("conn", "data"))
}

// SetLogf replaces the hub's logger (tests silence it).
func (h *Hub) SetLogf(f func(string, ...any)) { h.logf = f }

// ClientAddr returns the client listener's address.
func (h *Hub) ClientAddr() string { return h.clientL.Addr() }

// ControlAddr returns the agent-control listener's address.
func (h *Hub) ControlAddr() string { return h.controlL.Addr() }

// DataAddr returns the tuple-data listener's address.
func (h *Hub) DataAddr() string { return h.dataL.Addr() }

// SendToHost implements Dispatcher over registered control connections.
func (h *Hub) SendToHost(host string, msg transport.Message) error {
	h.mu.Lock()
	conn := h.hosts[host]
	h.mu.Unlock()
	if conn == nil {
		return fmt.Errorf("server: host %q has no control connection", host)
	}
	return conn.Send(msg)
}

// Serve starts the accept loops; it returns immediately. Stop with Close.
func (h *Hub) Serve() {
	h.acceptLoop(h.clientL, h.handleClient)
	h.acceptLoop(h.controlL, h.handleControl)
	h.acceptLoop(h.dataL, h.handleData)
}

func (h *Hub) acceptLoop(l *transport.Listener, handle func(*transport.Conn)) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			conn, err := l.Accept()
			if err != nil {
				return // listener closed
			}
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				defer conn.Close()
				handle(conn)
			}()
		}
	}()
}

// handleControl serves one agent's control session.
func (h *Hub) handleControl(conn *transport.Conn) {
	first, err := conn.Recv()
	if err != nil {
		return
	}
	reg, ok := first.(transport.RegisterHost)
	if !ok {
		h.logf("scrub: control connection opened with %s, want RegisterHost", transport.Name(first))
		return
	}
	if err := h.registry.Register(cluster.HostInfo{
		Name: reg.HostID, Service: reg.Service, DC: reg.DC,
		Addr: conn.RemoteAddr().String(),
	}); err != nil {
		h.logf("scrub: register host %q: %v", reg.HostID, err)
		return
	}
	h.mu.Lock()
	if old := h.hosts[reg.HostID]; old != nil {
		old.Close()
	}
	h.hosts[reg.HostID] = conn
	srv := h.srv
	h.mu.Unlock()
	// A (re)connecting host missed any query objects dispatched while it
	// was away; re-sync the ones that target it. The shard map goes first:
	// re-synced queries carry epoch pins the host's router must resolve.
	if srv != nil {
		if m, ok := srv.CurrentShardMap(); ok {
			_ = conn.Send(m)
		}
		srv.ResyncHost(reg.HostID)
	}
	defer func() {
		h.mu.Lock()
		if h.hosts[reg.HostID] == conn {
			delete(h.hosts, reg.HostID)
			h.registry.Deregister(reg.HostID)
		}
		h.mu.Unlock()
	}()
	// Control is server-push; the read loop only consumes Pongs and
	// detects disconnects.
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.(type) {
		case transport.Pong:
		default:
			h.logf("scrub: unexpected control message %s from %s", transport.Name(msg), reg.HostID)
		}
	}
}

// handleData serves one agent's tuple stream.
func (h *Hub) handleData(conn *transport.Conn) {
	first, err := conn.Recv()
	if err != nil {
		return
	}
	if _, ok := first.(transport.DataHello); !ok {
		h.logf("scrub: data connection opened with %s, want DataHello", transport.Name(first))
		return
	}
	if h.dataMet != nil {
		conn.SetMetrics(h.dataMet)
	}
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case transport.TupleBatch:
			srv.HandleBatch(m)
		case transport.BatchManifest:
			// A host router's folded batch report; the ack keeps the
			// router's batch → shard-apply → manifest ordering synchronous.
			srv.HandleManifest(m)
			if err := conn.Send(transport.ManifestAck{Seq: m.Seq}); err != nil {
				return
			}
		case transport.ShardHello:
			if err := srv.HandleShardHello(m); err != nil {
				h.logf("scrub: shard %s join: %v", m.ShardID, err)
			}
		case transport.Ping:
			if err := conn.Send(transport.Pong{Nonce: m.Nonce}); err != nil {
				return
			}
		default:
			h.logf("scrub: unexpected data message %s", transport.Name(msg))
			return
		}
	}
}

// BroadcastShardMap pushes a membership epoch to every registered host's
// control connection. Wire it to the coordinator's OnShardMap hook via a
// goroutine — the hook may fire under the coordinator's lock.
func (h *Hub) BroadcastShardMap(m transport.ShardMap) {
	h.mu.Lock()
	conns := make([]*transport.Conn, 0, len(h.hosts))
	for _, c := range h.hosts {
		conns = append(conns, c)
	}
	h.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(m)
	}
}

// handleClient serves one troubleshooter session: queries multiplex over
// the connection by query id.
func (h *Hub) handleClient(conn *transport.Conn) {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	var mine sync.Map // query ids owned by this connection
	defer func() {
		// Tear down this client's queries when it disconnects.
		mine.Range(func(k, _ any) bool {
			_ = srv.Cancel(k.(uint64))
			return true
		})
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case transport.SubmitQuery:
			cb := Callbacks{
				Window: func(rw transport.ResultWindow) { _ = conn.Send(rw) },
				Done: func(d transport.QueryDone) {
					mine.Delete(d.QueryID)
					_ = conn.Send(d)
				},
			}
			info, err := srv.Submit(m.Text, cb)
			if err != nil {
				_ = conn.Send(transport.QueryError{Msg: err.Error()})
				continue
			}
			mine.Store(info.ID, true)
			_ = conn.Send(transport.QueryAccepted{
				QueryID:      info.ID,
				Columns:      info.Columns,
				NumHosts:     uint32(info.NumHosts),
				SampledHosts: uint32(info.SampledHosts),
				EndNanos:     info.End.UnixNano(),
			})
		case transport.CancelQuery:
			if err := srv.Cancel(m.QueryID); err != nil {
				_ = conn.Send(transport.QueryError{QueryID: m.QueryID, Msg: err.Error()})
			}
		case transport.ListQueries:
			_ = conn.Send(transport.QueryList{Queries: srv.List()})
		case transport.ShardStatusReq:
			_ = conn.Send(srv.ShardStatus())
		case transport.Ping:
			_ = conn.Send(transport.Pong{Nonce: m.Nonce})
		default:
			_ = conn.Send(transport.QueryError{Msg: "unexpected message " + transport.Name(msg)})
		}
	}
}

// Close shuts the listeners and all sessions down.
func (h *Hub) Close() {
	h.closed.Do(func() {
		h.clientL.Close()
		h.controlL.Close()
		h.dataL.Close()
		h.mu.Lock()
		for _, c := range h.hosts {
			c.Close()
		}
		h.mu.Unlock()
	})
	h.wg.Wait()
}
