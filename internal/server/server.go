// Package server implements the Scrub query server: the coordinator that
// parses and validates queries, resolves their target-host sets, fans
// query objects out to host agents and ScrubCentral, streams results back
// to troubleshooters, and enforces query spans (paper §4, Figure 3).
//
//scrub:longlived
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/ql"
	"scrub/internal/sampling"
	"scrub/internal/transport"
)

// Dispatcher pushes control messages (HostQuery / StopQuery) to host
// agents. The TCP hub implements it for distributed deployments; the
// in-process testbed calls agents directly.
type Dispatcher interface {
	SendToHost(host string, msg transport.Message) error
}

// DispatcherFunc adapts a function to Dispatcher.
type DispatcherFunc func(host string, msg transport.Message) error

// SendToHost implements Dispatcher.
func (f DispatcherFunc) SendToHost(host string, msg transport.Message) error { return f(host, msg) }

// shardFabric is the optional surface a distributed coordinator engine
// (internal/coord) adds on top of central.Executor. The server detects it
// by interface assertion so single-process deployments need no stubs.
type shardFabric interface {
	QueryEpoch(id uint64) (uint32, bool)
	HandleManifest(m transport.BatchManifest)
	HandleHello(h transport.ShardHello) error
	Status() transport.ShardStatusList
	ShardMap() transport.ShardMap
}

// Callbacks deliver a query's output to its submitter. Window and Done
// must be non-nil; they may be called from internal goroutines and must
// not block for long.
type Callbacks struct {
	Window func(transport.ResultWindow)
	Done   func(transport.QueryDone)
}

// QueryInfo describes an accepted query.
type QueryInfo struct {
	ID           uint64
	Columns      []string
	Hosts        []string // activated hosts (after host sampling)
	NumHosts     int      // hosts matching the target spec
	SampledHosts int
	Start        time.Time
	End          time.Time
}

// Config parametrizes a Server.
type Config struct {
	Catalog  *event.Catalog
	Registry *cluster.Registry
	// Engine is the central execution backend: a single-node
	// central.Engine or a central.ShardedEngine.
	Engine     central.Executor
	Dispatcher Dispatcher
	// TickInterval drives window closing by wall clock. Default 200ms.
	TickInterval time.Duration
	// Clock substitutes time.Now for tests.
	Clock func() time.Time
}

type serverQuery struct {
	info       QueryInfo
	text       string
	plan       *ql.Plan
	cb         Callbacks
	timer      *time.Timer
	done       bool
	shardEpoch uint32 // shard-map epoch the query is pinned to; 0 single-process
	// adopted marks a query resumed from a dead leader's replicated log
	// (Adopt): its host set is discovered incrementally as hosts register,
	// not fixed at submission.
	adopted bool
}

// Server coordinates query execution. Create with New, stop with Close.
type Server struct {
	cfg Config

	mu      sync.Mutex
	nextID  uint64
	queries map[uint64]*serverQuery

	stopTick chan struct{}
	wg       sync.WaitGroup
	closed   sync.Once
}

// New creates a server and starts its window ticker.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil || cfg.Registry == nil || cfg.Engine == nil || cfg.Dispatcher == nil {
		return nil, fmt.Errorf("server: Catalog, Registry, Engine and Dispatcher are all required")
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 200 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	s := &Server{
		cfg:      cfg,
		queries:  make(map[uint64]*serverQuery),
		stopTick: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.tickLoop()
	return s, nil
}

func (s *Server) tickLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.TickInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.cfg.Engine.Tick(s.cfg.Clock().UnixNano())
		case <-s.stopTick:
			return
		}
	}
}

// Submit runs the paper's Figure-3 submission flow: parse, validate,
// create query objects, activate hosts and ScrubCentral, and schedule the
// span expiry. Results stream through cb until Done.
func (s *Server) Submit(text string, cb Callbacks) (QueryInfo, error) {
	if cb.Window == nil || cb.Done == nil {
		return QueryInfo{}, fmt.Errorf("server: Window and Done callbacks are required")
	}
	q, err := ql.Parse(text)
	if err != nil {
		return QueryInfo{}, err
	}
	plan, err := ql.Analyze(q, s.cfg.Catalog)
	if err != nil {
		return QueryInfo{}, err
	}

	// Resolve the target-host set.
	hosts := s.cfg.Registry.Resolve(plan.Target)
	if len(hosts) == 0 {
		return QueryInfo{}, fmt.Errorf("server: target %s matches no hosts", plan.Target)
	}

	s.mu.Lock()
	s.nextID++
	qid := s.nextID
	s.mu.Unlock()

	// Host sampling: deterministic in the query id.
	names := cluster.Names(hosts)
	chosen := sampling.SelectHosts(names, plan.SampleHosts, qid)

	// Resolve the span to absolute times.
	now := s.cfg.Clock()
	start := now
	switch {
	case !plan.StartAt.IsZero():
		start = plan.StartAt
	case plan.StartIn > 0:
		start = now.Add(plan.StartIn)
	}
	end := start.Add(plan.Span)
	if !end.After(now) {
		return QueryInfo{}, fmt.Errorf("server: query span [%s, %s] is entirely in the past", start.Format(time.RFC3339), end.Format(time.RFC3339))
	}

	info := QueryInfo{
		ID:           qid,
		Columns:      columnLabels(plan),
		Hosts:        chosen,
		NumHosts:     len(hosts),
		SampledHosts: len(chosen),
		Start:        start,
		End:          end,
	}

	// Install the central query object first so no tuples race past it.
	cp := central.FromPlan(plan, qid, start.UnixNano(), end.UnixNano(), len(hosts), len(chosen))
	cp.Text = text // shard nodes re-analyze the text against their own catalogs
	emit := func(rw transport.ResultWindow) { cb.Window(rw) }
	if err := s.cfg.Engine.StartQuery(cp, emit); err != nil {
		return QueryInfo{}, err
	}

	// A distributed coordinator pins the query to the shard-map epoch
	// current at registration; hosts route its batches by that epoch.
	var shardEpoch uint32
	if f, ok := s.cfg.Engine.(shardFabric); ok {
		shardEpoch, _ = f.QueryEpoch(qid)
	}

	sq := &serverQuery{info: info, text: text, plan: plan, cb: cb, shardEpoch: shardEpoch}
	s.mu.Lock()
	s.queries[qid] = sq
	s.mu.Unlock()

	// Fan the host query objects out: every chosen host gets one query
	// object per FROM type. Hosts that do not produce a type simply never
	// match events for it. Dispatch failures degrade coverage, not the
	// query.
	for typeIdx, typ := range plan.TypeNames() {
		hq := transport.HostQuery{
			QueryID:           qid,
			EventType:         typ,
			TypeIdx:           uint8(typeIdx),
			Pred:              plan.HostPred[typ],
			Columns:           plan.Columns[typ],
			SampleEvents:      plan.SampleEvents,
			StartNanos:        start.UnixNano(),
			EndNanos:          end.UnixNano(),
			BudgetCPUPct:      plan.BudgetCPUPct,
			BudgetBytesPerSec: plan.BudgetBytesPerSec,
			ReplayNanos:       int64(plan.Replay),
			ShardEpoch:        shardEpoch,
		}
		for _, h := range chosen {
			_ = s.cfg.Dispatcher.SendToHost(h, hq)
		}
	}

	// Span expiry. The timer handle is written under the lock because the
	// callback (or a concurrent Cancel) may reach finish immediately.
	t := time.AfterFunc(end.Sub(now), func() { s.finish(qid) })
	s.mu.Lock()
	if sq.done {
		// Cancelled between fan-out and timer creation.
		t.Stop()
	} else {
		sq.timer = t
	}
	s.mu.Unlock()
	return info, nil
}

func columnLabels(p *ql.Plan) []string {
	out := make([]string, len(p.Select))
	for i, item := range p.Select {
		out[i] = item.Label
	}
	return out
}

// Adopt registers a query that is already running in the engine — a
// promoted coordinator resumed it from the dead leader's replicated
// control-plane log — so span expiry, listing, cancellation and host
// resync treat it like any accepted query. The engine side is not
// started here: the promotion installed it with its own emit hook, so
// cb.Window is optional and cb.Done fires at span expiry or Cancel.
//
// The host set starts empty on purpose. At takeover the fleet has not
// re-registered with this server, so the target resolves to nothing;
// ResyncHost re-resolves it as each host registers (host sampling is
// deterministic in the query id, so the same hosts are chosen the dead
// leader chose), and finish stops exactly the hosts that showed up.
func (s *Server) Adopt(qid uint64, text string, start, end time.Time, shardEpoch uint32, cb Callbacks) (QueryInfo, error) {
	if cb.Done == nil {
		return QueryInfo{}, fmt.Errorf("server: Done callback is required")
	}
	q, err := ql.Parse(text)
	if err != nil {
		return QueryInfo{}, err
	}
	plan, err := ql.Analyze(q, s.cfg.Catalog)
	if err != nil {
		return QueryInfo{}, err
	}
	info := QueryInfo{ID: qid, Columns: columnLabels(plan), Start: start, End: end}
	sq := &serverQuery{info: info, text: text, plan: plan, cb: cb, shardEpoch: shardEpoch, adopted: true}
	s.mu.Lock()
	if _, dup := s.queries[qid]; dup {
		s.mu.Unlock()
		return QueryInfo{}, fmt.Errorf("server: query %d already registered", qid)
	}
	s.queries[qid] = sq
	// Future submissions must not collide with adopted ids.
	if qid > s.nextID {
		s.nextID = qid
	}
	s.mu.Unlock()

	// Span expiry; a span that lapsed during the failover gap finishes
	// immediately (still off the caller's goroutine).
	d := end.Sub(s.cfg.Clock())
	if d < 0 {
		d = 0
	}
	t := time.AfterFunc(d, func() { s.finish(qid) })
	s.mu.Lock()
	if sq.done {
		t.Stop()
	} else {
		sq.timer = t
	}
	s.mu.Unlock()
	return info, nil
}

// finish tears a query down everywhere and reports Done exactly once.
func (s *Server) finish(qid uint64) {
	s.mu.Lock()
	sq, ok := s.queries[qid]
	if !ok || sq.done {
		s.mu.Unlock()
		return
	}
	sq.done = true
	delete(s.queries, qid)
	timer := sq.timer
	s.mu.Unlock()

	if timer != nil {
		timer.Stop()
	}
	for _, h := range sq.info.Hosts {
		_ = s.cfg.Dispatcher.SendToHost(h, transport.StopQuery{QueryID: qid})
	}
	stats, _ := s.cfg.Engine.StopQuery(qid)
	sq.cb.Done(transport.QueryDone{QueryID: qid, Stats: stats})
}

// Cancel ends a query before its span expires. Unknown ids are an error.
func (s *Server) Cancel(qid uint64) error {
	s.mu.Lock()
	_, ok := s.queries[qid]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: unknown query %d", qid)
	}
	s.finish(qid)
	return nil
}

// Active returns the ids of running queries.
func (s *Server) Active() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.queries))
	for id := range s.queries {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ResyncHost re-dispatches the query objects of every active query that
// targets the named host. The hub calls it when a host (re)registers, so
// an application restart mid-query resumes contributing instead of going
// dark until the span expires.
func (s *Server) ResyncHost(hostName string) int {
	s.mu.Lock()
	var targeted, adopted []*serverQuery
	for _, sq := range s.queries {
		listed := false
		for _, h := range sq.info.Hosts {
			if h == hostName {
				listed = true
				break
			}
		}
		switch {
		case listed:
			targeted = append(targeted, sq)
		case sq.adopted:
			adopted = append(adopted, sq)
		}
	}
	s.mu.Unlock()

	// Adopted queries discover their hosts here: the dead leader's chosen
	// set was not replicated, but host sampling is deterministic in the
	// query id, so re-resolving the target against the registry this host
	// just joined reselects the same set the leader activated.
	for _, sq := range adopted {
		hosts := s.cfg.Registry.Resolve(sq.plan.Target)
		chosen := sampling.SelectHosts(cluster.Names(hosts), sq.plan.SampleHosts, sq.info.ID)
		for _, h := range chosen {
			if h != hostName {
				continue
			}
			s.mu.Lock()
			if !sq.done {
				sq.info.Hosts = append(sq.info.Hosts, hostName)
				sq.info.NumHosts = len(hosts)
				sq.info.SampledHosts = len(sq.info.Hosts)
				targeted = append(targeted, sq)
			}
			s.mu.Unlock()
			break
		}
	}

	n := 0
	for _, sq := range targeted {
		for typeIdx, typ := range sq.plan.TypeNames() {
			hq := transport.HostQuery{
				QueryID:           sq.info.ID,
				EventType:         typ,
				TypeIdx:           uint8(typeIdx),
				Pred:              sq.plan.HostPred[typ],
				Columns:           sq.plan.Columns[typ],
				SampleEvents:      sq.plan.SampleEvents,
				StartNanos:        sq.info.Start.UnixNano(),
				EndNanos:          sq.info.End.UnixNano(),
				BudgetCPUPct:      sq.plan.BudgetCPUPct,
				BudgetBytesPerSec: sq.plan.BudgetBytesPerSec,
				ShardEpoch:        sq.shardEpoch,
				// A resync deliberately omits ReplayNanos: the restarted
				// host's record stream is empty (or stale), and a second
				// replay of a query already past its start would duplicate
				// history central has folded in.
			}
			if s.cfg.Dispatcher.SendToHost(hostName, hq) == nil {
				n++
			}
		}
	}
	return n
}

// List returns summaries of the active queries, sorted by id — the
// operational view a troubleshooter or dashboard polls.
func (s *Server) List() []transport.QuerySummary {
	s.mu.Lock()
	sqs := make([]*serverQuery, 0, len(s.queries))
	for _, sq := range s.queries {
		sqs = append(sqs, sq)
	}
	s.mu.Unlock()
	out := make([]transport.QuerySummary, 0, len(sqs))
	for _, sq := range sqs {
		stats, _ := s.cfg.Engine.Stats(sq.info.ID)
		out = append(out, transport.QuerySummary{
			QueryID:  sq.info.ID,
			Text:     sq.text,
			Columns:  sq.info.Columns,
			Hosts:    uint32(sq.info.SampledHosts),
			EndNanos: sq.info.End.UnixNano(),
			Stats:    stats,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].QueryID < out[j].QueryID })
	return out
}

// HandleBatch forwards a host's tuple batch to ScrubCentral. Exposed so
// transport fronts and in-process testbeds share one path.
func (s *Server) HandleBatch(b transport.TupleBatch) {
	s.cfg.Engine.HandleBatch(b)
}

// HandleManifest forwards a host router's batch manifest to the shard
// fabric. A single-process engine has no manifest plane; stray manifests
// are dropped, matching how unknown-query batches are.
func (s *Server) HandleManifest(m transport.BatchManifest) {
	if f, ok := s.cfg.Engine.(shardFabric); ok {
		f.HandleManifest(m)
	}
}

// HandleShardHello enrolls a shard process announcing itself on the data
// plane. Errors (including "not a shard-fabric deployment") are for the
// hub's log; the shard retries by reconnecting.
func (s *Server) HandleShardHello(m transport.ShardHello) error {
	if f, ok := s.cfg.Engine.(shardFabric); ok {
		return f.HandleHello(m)
	}
	return fmt.Errorf("server: not a shard-fabric deployment")
}

// ShardStatus reports the shard fabric's operational view; empty in a
// single-process deployment.
func (s *Server) ShardStatus() transport.ShardStatusList {
	if f, ok := s.cfg.Engine.(shardFabric); ok {
		return f.Status()
	}
	return transport.ShardStatusList{}
}

// CurrentShardMap returns the fabric's current membership, if any — the
// hub pushes it to hosts on registration.
func (s *Server) CurrentShardMap() (transport.ShardMap, bool) {
	if f, ok := s.cfg.Engine.(shardFabric); ok {
		m := f.ShardMap()
		return m, m.Epoch > 0
	}
	return transport.ShardMap{}, false
}

// Close cancels every active query and stops the ticker.
func (s *Server) Close() {
	for _, id := range s.Active() {
		_ = s.Cancel(id)
	}
	s.closed.Do(func() { close(s.stopTick) })
	s.wg.Wait()
}
