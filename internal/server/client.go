package server

import (
	"fmt"
	"sync"
	"time"

	"scrub/internal/transport"
)

// Client is a troubleshooter's connection to the query server. It runs
// one query at a time (the common CLI workflow); open several Clients for
// concurrent queries.
type Client struct {
	conn *transport.Conn
	mu   sync.Mutex
	busy bool
}

// DialClient connects to a query server's client address.
func DialClient(addr string) (*Client, error) {
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// QueryStream is a running query's result feed. Consume Windows until it
// closes, then read Final for the end-of-query statistics.
type QueryStream struct {
	Info    transport.QueryAccepted
	Windows <-chan transport.ResultWindow

	client *Client
	mu     sync.Mutex
	stats  transport.QueryStats
	err    error
	done   chan struct{}
}

// Query submits text and streams results until the query's span ends (or
// Cancel). Rejected queries return an error immediately.
func (c *Client) Query(text string) (*QueryStream, error) {
	c.mu.Lock()
	if c.busy {
		c.mu.Unlock()
		return nil, fmt.Errorf("server: client already has a running query")
	}
	c.busy = true
	c.mu.Unlock()

	fail := func(err error) (*QueryStream, error) {
		c.mu.Lock()
		c.busy = false
		c.mu.Unlock()
		return nil, err
	}

	if err := c.conn.Send(transport.SubmitQuery{Text: text}); err != nil {
		return fail(err)
	}
	first, err := c.conn.Recv()
	if err != nil {
		return fail(err)
	}
	switch m := first.(type) {
	case transport.QueryAccepted:
		wins := make(chan transport.ResultWindow, 64)
		qs := &QueryStream{
			Info:    m,
			Windows: wins,
			client:  c,
			done:    make(chan struct{}),
		}
		go qs.readLoop(wins)
		return qs, nil
	case transport.QueryError:
		return fail(fmt.Errorf("server: query rejected: %s", m.Msg))
	default:
		return fail(fmt.Errorf("server: unexpected response %s", transport.Name(first)))
	}
}

func (qs *QueryStream) readLoop(wins chan<- transport.ResultWindow) {
	defer func() {
		close(wins)
		close(qs.done)
		qs.client.mu.Lock()
		qs.client.busy = false
		qs.client.mu.Unlock()
	}()
	for {
		msg, err := qs.client.conn.Recv()
		if err != nil {
			qs.mu.Lock()
			qs.err = err
			qs.mu.Unlock()
			return
		}
		switch m := msg.(type) {
		case transport.ResultWindow:
			if m.QueryID == qs.Info.QueryID {
				wins <- m
			}
		case transport.QueryDone:
			if m.QueryID == qs.Info.QueryID {
				qs.mu.Lock()
				qs.stats = m.Stats
				qs.mu.Unlock()
				return
			}
		case transport.QueryError:
			qs.mu.Lock()
			qs.err = fmt.Errorf("server: %s", m.Msg)
			qs.mu.Unlock()
			if m.QueryID == qs.Info.QueryID {
				return
			}
		}
	}
}

// Final blocks until the stream ends and returns the query statistics.
func (qs *QueryStream) Final() (transport.QueryStats, error) {
	<-qs.done
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.stats, qs.err
}

// Cancel asks the server to end the query now. Results already in flight
// still drain through Windows.
func (qs *QueryStream) Cancel() error {
	return qs.client.conn.Send(transport.CancelQuery{QueryID: qs.Info.QueryID})
}

// List fetches the server's active-query summaries. Not usable while a
// query stream is open on this client (one conversation at a time).
func (c *Client) List() ([]transport.QuerySummary, error) {
	c.mu.Lock()
	if c.busy {
		c.mu.Unlock()
		return nil, fmt.Errorf("server: client has a running query")
	}
	c.busy = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.busy = false
		c.mu.Unlock()
	}()
	if err := c.conn.Send(transport.ListQueries{}); err != nil {
		return nil, err
	}
	msg, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	ql, ok := msg.(transport.QueryList)
	if !ok {
		return nil, fmt.Errorf("server: unexpected response %s", transport.Name(msg))
	}
	return ql.Queries, nil
}

// ShardStatus fetches the server's shard-fabric view: membership epoch,
// merge counters, and one row per shard process. A single-process
// deployment answers with an empty list (Epoch 0). Not usable while a
// query stream is open on this client.
func (c *Client) ShardStatus() (transport.ShardStatusList, error) {
	c.mu.Lock()
	if c.busy {
		c.mu.Unlock()
		return transport.ShardStatusList{}, fmt.Errorf("server: client has a running query")
	}
	c.busy = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.busy = false
		c.mu.Unlock()
	}()
	if err := c.conn.Send(transport.ShardStatusReq{}); err != nil {
		return transport.ShardStatusList{}, err
	}
	msg, err := c.conn.Recv()
	if err != nil {
		return transport.ShardStatusList{}, err
	}
	sl, ok := msg.(transport.ShardStatusList)
	if !ok {
		return transport.ShardStatusList{}, fmt.Errorf("server: unexpected response %s", transport.Name(msg))
	}
	return sl, nil
}

// Close drops the connection; any running query is torn down server-side.
func (c *Client) Close() error { return c.conn.Close() }
