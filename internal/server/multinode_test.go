package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/coord"
	"scrub/internal/event"
	"scrub/internal/host"
	"scrub/internal/transport"
)

// TestMultinodeSmoke stands up the full distributed deployment in one
// test process: a coordinator-backed hub, two shard nodes (one enrolled
// statically, one joining through the data plane's ShardHello path, the
// way `scrubcentral -shard -join` does), and three host agents whose
// routers have NO fallback sink — every tuple that reaches central
// proves the whole control-plane relay worked: shard map push at
// registration, epoch pin on HostQuery, request-id routing, shard acks,
// and manifest folding. `make multinode-smoke` runs it under -race.
func TestMultinodeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multinode smoke needs a wall-clock query span")
	}
	registry := cluster.NewRegistry()
	hub, err := NewHub(registry, "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub.SetLogf(func(string, ...any) {})
	coordEng := coord.NewCoordinator(central.Options{})
	srv, err := New(Config{
		Catalog:      testCatalog(),
		Registry:     registry,
		Engine:       coordEng,
		Dispatcher:   hub,
		TickInterval: 20 * time.Millisecond,
	})
	if err != nil {
		hub.Close()
		t.Fatal(err)
	}
	hub.SetServer(srv)
	coordEng.OnShardMap(func(m transport.ShardMap) { go hub.BroadcastShardMap(m) })
	hub.Serve()
	t.Cleanup(func() {
		srv.Close()
		hub.Close()
	})

	// Shard 1: static enrollment, as -shard-addrs would.
	shardA := coord.NewShardNode(testCatalog())
	la, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { la.Close() })
	go shardA.Serve(la)
	if err := coordEng.AddShard(la.Addr()); err != nil {
		t.Fatal(err)
	}

	// Shard 2: dynamic join over the hub's data plane, as -join would.
	shardB := coord.NewShardNode(testCatalog())
	lb, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lb.Close() })
	go shardB.Serve(lb)
	joinConn := dialT(t, hub.DataAddr())
	if err := joinConn.Send(transport.DataHello{HostID: "shard:" + lb.Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := joinConn.Send(transport.ShardHello{ShardID: lb.Addr(), DataAddr: lb.Addr()}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "both shards enrolled", func() bool {
		return len(coordEng.ShardMap().Addrs) == 2
	})

	// Three host agents: router sink with no fallback — any routing gap
	// (missing map, missing pin) would surface as host drops, not as
	// silently correct single-process delivery.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var agents []*host.Agent
	for i := 0; i < 3; i++ {
		hostID := fmt.Sprintf("mh-%d", i)
		mconn := dialT(t, hub.DataAddr())
		if err := mconn.Send(transport.DataHello{HostID: hostID}); err != nil {
			t.Fatal(err)
		}
		router := coord.NewRouter(coord.NewManifestClient(mconn), nil)
		t.Cleanup(router.Close)
		agent, err := host.New(host.Config{
			HostID: hostID, Service: "BidServers", DC: "DC1",
			Catalog:       testCatalog(),
			Sink:          router,
			FlushInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(agent.Close)
		agents = append(agents, agent)
		go func() {
			_ = agent.RunControlWith(ctx, hub.ControlAddr(), host.ControlOptions{
				OnShardMap:   router.HandleShardMap,
				OnQueryPin:   router.PinQuery,
				OnQueryUnpin: router.UnpinQuery,
			})
		}()
	}
	waitCond(t, "hosts registered", func() bool { return registry.Len() == 3 })

	client, err := DialClient(hub.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	qs, err := client.Query(`select count(*) from bid window 500ms duration 3s`)
	if err != nil {
		t.Fatal(err)
	}

	// Event generators: one per host, request ids chosen to land on both
	// shards. They run until the span expires.
	var stop atomic.Bool
	genDone := make(chan struct{})
	for i, agent := range agents {
		go func(i int, a *host.Agent) {
			defer func() { genDone <- struct{}{} }()
			schema, _ := testCatalog().Lookup("bid")
			rid := uint64(i * 1_000_000)
			for !stop.Load() {
				rid++
				a.Log(event.NewBuilder(schema).
					SetRequestID(rid).
					SetTime(time.Now()).
					Int("user_id", int64(rid%5)).
					Float("bid_price", 1.5).
					MustBuild())
				time.Sleep(2 * time.Millisecond)
			}
		}(i, agent)
	}

	// Mid-query operational view (the scrubql -stats path): both shards
	// up, each carrying the query, each receiving its half of the id
	// space.
	viewer, err := DialClient(hub.ClientAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	waitCond(t, "both shards ingesting", func() bool {
		sl, err := viewer.ShardStatus()
		if err != nil || len(sl.Shards) != 2 {
			return false
		}
		for _, s := range sl.Shards {
			if s.Down || s.ActiveQueries != 1 || s.TuplesIn == 0 {
				return false
			}
		}
		return true
	})

	var total uint64
	nWins := 0
	for rw := range qs.Windows {
		nWins++
		if len(rw.Rows) == 1 {
			n, _ := rw.Rows[0][0].AsInt()
			total += uint64(n)
		}
		if rw.Degraded {
			t.Errorf("window [%d,%d) degraded with all shards up", rw.WindowStart, rw.WindowEnd)
		}
	}
	final, err := qs.Final()
	stop.Store(true)
	if err != nil {
		t.Fatal(err)
	}
	for range agents {
		<-genDone
	}
	if nWins == 0 || final.TuplesIn == 0 {
		t.Fatalf("no results: windows=%d stats=%+v", nWins, final)
	}
	if total != final.TuplesIn {
		t.Errorf("window counts sum %d != TuplesIn %d", total, final.TuplesIn)
	}
	if final.HostDrops != 0 || final.LateDrops != 0 {
		t.Errorf("lossless run dropped tuples: %+v", final)
	}
	if final.DegradedWindows != 0 {
		t.Errorf("degraded windows with a healthy fabric: %+v", final)
	}
}
