package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"scrub/internal/central"
	"scrub/internal/cluster"
	"scrub/internal/event"
	"scrub/internal/transport"
)

func testCatalog() *event.Catalog {
	cat := event.NewCatalog()
	cat.MustRegister(event.MustSchema("bid",
		event.FieldDef{Name: "user_id", Kind: event.KindInt},
		event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	))
	return cat
}

// recordingDispatcher captures dispatched messages per host.
type recordingDispatcher struct {
	mu   sync.Mutex
	sent map[string][]transport.Message
	fail map[string]bool
}

func newRecordingDispatcher() *recordingDispatcher {
	return &recordingDispatcher{sent: map[string][]transport.Message{}, fail: map[string]bool{}}
}

func (d *recordingDispatcher) SendToHost(host string, msg transport.Message) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fail[host] {
		return fmt.Errorf("host %s unreachable", host)
	}
	d.sent[host] = append(d.sent[host], msg)
	return nil
}

func (d *recordingDispatcher) messages(host string) []transport.Message {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]transport.Message(nil), d.sent[host]...)
}

func newTestServer(t *testing.T, nHosts int) (*Server, *recordingDispatcher, *central.Engine) {
	t.Helper()
	reg := cluster.NewRegistry()
	for i := 0; i < nHosts; i++ {
		if err := reg.Register(cluster.HostInfo{
			Name: fmt.Sprintf("h-%02d", i), Service: "BidServers", DC: "DC1",
		}); err != nil {
			t.Fatal(err)
		}
	}
	disp := newRecordingDispatcher()
	engine := central.NewEngine()
	srv, err := New(Config{
		Catalog:      testCatalog(),
		Registry:     reg,
		Engine:       engine,
		Dispatcher:   disp,
		TickInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv, disp, engine
}

func noopCallbacks() (Callbacks, *sync.WaitGroup) {
	var wg sync.WaitGroup
	wg.Add(1)
	return Callbacks{
		Window: func(transport.ResultWindow) {},
		Done:   func(transport.QueryDone) { wg.Done() },
	}, &wg
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestSubmitRequiresCallbacks(t *testing.T) {
	srv, _, _ := newTestServer(t, 1)
	if _, err := srv.Submit(`select count(*) from bid`, Callbacks{}); err == nil {
		t.Error("missing callbacks should fail")
	}
}

func TestSubmitDispatchesQueryObjects(t *testing.T) {
	srv, disp, engine := newTestServer(t, 3)
	cb, _ := noopCallbacks()
	info, err := srv.Submit(`select bid.user_id, count(*) from bid where bid.bid_price > 1.0 group by bid.user_id window 1s duration 1h`, cb)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumHosts != 3 || info.SampledHosts != 3 {
		t.Errorf("info = %+v", info)
	}
	if len(info.Columns) != 2 {
		t.Errorf("columns = %v", info.Columns)
	}
	if !info.End.After(info.Start) {
		t.Error("span not resolved")
	}
	// Every host received exactly one HostQuery carrying the predicate
	// and projection.
	for i := 0; i < 3; i++ {
		msgs := disp.messages(fmt.Sprintf("h-%02d", i))
		if len(msgs) != 1 {
			t.Fatalf("host %d got %d messages", i, len(msgs))
		}
		hq, ok := msgs[0].(transport.HostQuery)
		if !ok {
			t.Fatalf("got %s", transport.Name(msgs[0]))
		}
		if hq.QueryID != info.ID || hq.EventType != "bid" || hq.Pred == nil {
			t.Errorf("host query = %+v", hq)
		}
		if len(hq.Columns) != 1 || hq.Columns[0] != "user_id" {
			t.Errorf("columns = %v", hq.Columns)
		}
		if hq.EndNanos != info.End.UnixNano() {
			t.Error("span not propagated")
		}
	}
	// Central has the query installed.
	if got := engine.ActiveQueries(); len(got) != 1 || got[0] != info.ID {
		t.Errorf("engine active = %v", got)
	}
	if got := srv.Active(); len(got) != 1 {
		t.Errorf("server active = %v", got)
	}
}

func TestSubmitRejectsBadQueries(t *testing.T) {
	srv, _, _ := newTestServer(t, 1)
	cb, _ := noopCallbacks()
	cases := []struct{ src, want string }{
		{`select count(* from bid`, "syntax"},
		{`select count(*) from ghost`, "unknown event type"},
		{`select count(*) from bid @[Service in NoSuch]`, "matches no hosts"},
		{`select count(*) from bid start "2001-01-01T00:00:00Z" duration 1s`, "in the past"},
	}
	for _, c := range cases {
		_, err := srv.Submit(c.src, cb)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Submit(%q) err = %v, want contains %q", c.src, err, c.want)
		}
	}
}

func TestCancelStopsEverywhere(t *testing.T) {
	srv, disp, engine := newTestServer(t, 2)
	cb, wg := noopCallbacks()
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h`, cb)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // Done callback fired exactly once
	// StopQuery reached both hosts.
	for i := 0; i < 2; i++ {
		msgs := disp.messages(fmt.Sprintf("h-%02d", i))
		last := msgs[len(msgs)-1]
		if _, ok := last.(transport.StopQuery); !ok {
			t.Errorf("host %d last message = %s", i, transport.Name(last))
		}
	}
	if len(engine.ActiveQueries()) != 0 {
		t.Error("engine still has the query")
	}
	if err := srv.Cancel(info.ID); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestSpanExpiryFiresDone(t *testing.T) {
	srv, _, _ := newTestServer(t, 1)
	done := make(chan transport.QueryDone, 1)
	cb := Callbacks{
		Window: func(transport.ResultWindow) {},
		Done:   func(d transport.QueryDone) { done <- d },
	}
	info, err := srv.Submit(`select count(*) from bid window 200ms duration 300ms`, cb)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-done:
		if d.QueryID != info.ID {
			t.Errorf("done for %d, want %d", d.QueryID, info.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("span expiry never fired Done")
	}
	if len(srv.Active()) != 0 {
		t.Error("query still active after expiry")
	}
}

func TestResultsFlowThroughHandleBatch(t *testing.T) {
	srv, _, _ := newTestServer(t, 1)
	var mu sync.Mutex
	var rows [][]string
	cb := Callbacks{
		Window: func(rw transport.ResultWindow) {
			mu.Lock()
			for _, row := range rw.Rows {
				var cells []string
				for _, v := range row {
					cells = append(cells, v.String())
				}
				rows = append(rows, cells)
			}
			mu.Unlock()
		},
		Done: func(transport.QueryDone) {},
	}
	info, err := srv.Submit(`select bid.user_id, count(*) from bid group by bid.user_id window 1s duration 1h`, cb)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	srv.HandleBatch(transport.TupleBatch{
		QueryID: info.ID, HostID: "h-00", TypeIdx: 0,
		Tuples: []transport.Tuple{
			{RequestID: 1, TsNanos: now, Values: []event.Value{event.Int(42)}},
			{RequestID: 2, TsNanos: now, Values: []event.Value{event.Int(42)}},
		},
	})
	if err := srv.Cancel(info.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(rows) != 1 || rows[0][0] != "42" || rows[0][1] != "2" {
		t.Errorf("rows = %v", rows)
	}
}

func TestDispatchFailureDegradesNotFails(t *testing.T) {
	srv, disp, _ := newTestServer(t, 3)
	disp.mu.Lock()
	disp.fail["h-01"] = true
	disp.mu.Unlock()
	cb, _ := noopCallbacks()
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h`, cb)
	if err != nil {
		t.Fatalf("unreachable host should not reject the query: %v", err)
	}
	// Reachable hosts still got their query objects.
	if len(disp.messages("h-00")) != 1 || len(disp.messages("h-02")) != 1 {
		t.Error("reachable hosts missing query objects")
	}
	_ = srv.Cancel(info.ID)
}

func TestHostSamplingInstallsOnSubsetOnly(t *testing.T) {
	srv, disp, _ := newTestServer(t, 10)
	cb, _ := noopCallbacks()
	info, err := srv.Submit(`select count(*) from bid window 1s duration 1h sample hosts 20%`, cb)
	if err != nil {
		t.Fatal(err)
	}
	if info.SampledHosts != 2 || len(info.Hosts) != 2 {
		t.Fatalf("sampled = %d (%v)", info.SampledHosts, info.Hosts)
	}
	installed := 0
	for i := 0; i < 10; i++ {
		if len(disp.messages(fmt.Sprintf("h-%02d", i))) > 0 {
			installed++
		}
	}
	if installed != 2 {
		t.Errorf("query objects reached %d hosts, want 2", installed)
	}
	_ = srv.Cancel(info.ID)
}

func TestJoinQuerySendsPerTypeObjects(t *testing.T) {
	srv, disp, _ := newTestServer(t, 1)
	srv.cfg.Catalog.MustRegister(event.MustSchema("click",
		event.FieldDef{Name: "line_item_id", Kind: event.KindInt}))
	cb, _ := noopCallbacks()
	info, err := srv.Submit(`select count(*) from bid, click window 1s duration 1h`, cb)
	if err != nil {
		t.Fatal(err)
	}
	msgs := disp.messages("h-00")
	if len(msgs) != 2 {
		t.Fatalf("join query sent %d objects, want 2", len(msgs))
	}
	types := map[string]uint8{}
	for _, m := range msgs {
		hq := m.(transport.HostQuery)
		types[hq.EventType] = hq.TypeIdx
	}
	if types["bid"] != 0 || types["click"] != 1 {
		t.Errorf("type indices = %v", types)
	}
	_ = srv.Cancel(info.ID)
}

func TestCloseCancelsActiveQueries(t *testing.T) {
	reg := cluster.NewRegistry()
	_ = reg.Register(cluster.HostInfo{Name: "h", Service: "S"})
	disp := newRecordingDispatcher()
	srv, err := New(Config{
		Catalog: testCatalog(), Registry: reg,
		Engine: central.NewEngine(), Dispatcher: disp,
	})
	if err != nil {
		t.Fatal(err)
	}
	cb, wg := noopCallbacks()
	if _, err := srv.Submit(`select count(*) from bid window 1s duration 1h`, cb); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	wg.Wait()
	if len(srv.Active()) != 0 {
		t.Error("Close left active queries")
	}
}
