package expr

import (
	"reflect"
	"testing"

	"scrub/internal/agg"
	"scrub/internal/event"
)

func TestNodeEncodeRoundTrip(t *testing.T) {
	nodes := []Node{
		Lit{event.Int(42)},
		Lit{event.Str("hello")},
		FieldRef{Type: "bid", Name: "user_id"},
		FieldRef{Name: "city"},
		Unary{Op: OpNot, X: FieldRef{Name: "won"}},
		Unary{Op: OpNeg, X: Lit{event.Float(1.5)}},
		Binary{Op: OpAnd,
			L: Binary{Op: OpGt, L: FieldRef{Name: "bid_price"}, R: Lit{event.Float(1)}},
			R: Binary{Op: OpLike, L: FieldRef{Name: "city"}, R: Lit{event.Str("san%")}},
		},
		In{X: FieldRef{Name: "user_id"}, List: []Node{Lit{event.Int(1)}, Lit{event.Int(2)}}, Negate: true},
		AggRef{Index: 3, Spec: agg.Spec{Kind: agg.KindTopK, K: 10}, Arg: FieldRef{Name: "user_id"}},
		AggRef{Index: 0, Spec: agg.Spec{Kind: agg.KindCountStar}},
		Binary{Op: OpMul, L: Lit{event.Int(1000)}, R: AggRef{Index: 1, Spec: agg.Spec{Kind: agg.KindAvg}, Arg: FieldRef{Type: "impression", Name: "cost"}}},
	}
	for _, n := range nodes {
		buf, err := AppendNode(nil, n)
		if err != nil {
			t.Fatalf("AppendNode(%s): %v", n, err)
		}
		got, used, err := DecodeNode(buf)
		if err != nil {
			t.Fatalf("DecodeNode(%s): %v", n, err)
		}
		if used != len(buf) {
			t.Errorf("%s: consumed %d of %d", n, used, len(buf))
		}
		if !reflect.DeepEqual(got, n) {
			t.Errorf("round trip %s -> %s", n, got)
		}
	}
}

func TestNodeEncodeErrors(t *testing.T) {
	if _, err := AppendNode(nil, nil); err == nil {
		t.Error("nil node should fail")
	}
	if _, err := AppendNode(nil, Call{Name: "COUNT"}); err == nil {
		t.Error("Call should fail to encode")
	}
	if _, err := AppendNode(nil, Binary{Op: OpAnd, L: Call{Name: "x"}, R: Lit{event.Int(1)}}); err == nil {
		t.Error("nested Call should fail")
	}
}

func TestNodeDecodeErrors(t *testing.T) {
	good, err := AppendNode(nil, Binary{Op: OpAdd, L: Lit{event.Int(1)}, R: Lit{event.Int(2)}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeNode(good[:i]); err == nil {
			t.Errorf("truncated decode at %d should fail", i)
		}
	}
	if _, _, err := DecodeNode([]byte{99}); err == nil {
		t.Error("unknown tag should fail")
	}
	// Depth bomb: deeply nested unary ops must be rejected, not overflow.
	deep := make([]byte, 0, 3000)
	for i := 0; i < 1000; i++ {
		deep = append(deep, tagUnary, byte(OpNot))
	}
	deep = append(deep, tagLit)
	deep = event.AppendValue(deep, event.Bool(true))
	if _, _, err := DecodeNode(deep); err == nil {
		t.Error("over-deep tree should be rejected")
	}
}

func TestEncodedDecodedTreeStillCompiles(t *testing.T) {
	n := Binary{Op: OpAnd,
		L: Binary{Op: OpGe, L: FieldRef{Type: "bid", Name: "bid_price"}, R: Lit{event.Float(1)}},
		R: In{X: FieldRef{Type: "bid", Name: "user_id"}, List: []Node{Lit{event.Int(42)}}},
	}
	buf, err := AppendNode(nil, n)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeNode(buf)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Compile(got)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.NewBuilder(bidSchema).
		Int("user_id", 42).Float("bid_price", 1.5).SetTimeNanos(1).MustBuild()
	if v, _ := e(EventRow{Event: ev}).AsBool(); !v {
		t.Error("decoded predicate should pass")
	}
}
