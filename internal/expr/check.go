package expr

import (
	"fmt"

	"scrub/internal/agg"
	"scrub/internal/event"
)

// Resolver supplies field types during checking. Implementations resolve
// unqualified names to a unique event type or report ambiguity.
type Resolver interface {
	// ResolveField returns the fully qualified reference and its kind.
	ResolveField(f FieldRef) (FieldRef, event.Kind, error)
}

// SchemaResolver resolves references against a set of event schemas (one
// for single-source queries, two for join queries).
type SchemaResolver struct {
	Schemas []*event.Schema
}

// ResolveField implements Resolver. Unqualified names must be unique
// across the schemas; qualified names must name a known type and field.
// The system fields request_id and ts resolve against any schema.
func (r SchemaResolver) ResolveField(f FieldRef) (FieldRef, event.Kind, error) {
	if f.Type != "" {
		for _, s := range r.Schemas {
			if s.Name() == f.Type {
				if k, ok := s.FieldKind(f.Name); ok {
					return f, k, nil
				}
				return f, event.KindInvalid, fmt.Errorf("expr: event type %q has no field %q", f.Type, f.Name)
			}
		}
		return f, event.KindInvalid, fmt.Errorf("expr: unknown event type %q", f.Type)
	}
	var hits []FieldRef
	var kind event.Kind
	for _, s := range r.Schemas {
		if k, ok := s.FieldKind(f.Name); ok {
			hits = append(hits, FieldRef{Type: s.Name(), Name: f.Name})
			kind = k
		}
	}
	switch len(hits) {
	case 0:
		return f, event.KindInvalid, fmt.Errorf("expr: unknown field %q", f.Name)
	case 1:
		return hits[0], kind, nil
	default:
		// System fields are join-aligned, so either side works; pick the
		// first schema deterministically.
		if event.IsSystemField(f.Name) {
			return hits[0], kind, nil
		}
		return f, event.KindInvalid, fmt.Errorf("expr: field %q is ambiguous across event types (qualify it)", f.Name)
	}
}

// Check type-checks the tree, resolving field references in place, and
// returns the rewritten tree plus its result kind. Call nodes are rejected:
// the planner must have replaced aggregates with AggRef first, and the
// language defines no other functions.
func Check(n Node, r Resolver) (Node, event.Kind, error) {
	switch t := n.(type) {
	case Lit:
		return t, t.Val.Kind(), nil

	case FieldRef:
		rf, k, err := r.ResolveField(t)
		if err != nil {
			return n, event.KindInvalid, err
		}
		return rf, k, nil

	case Unary:
		x, xk, err := Check(t.X, r)
		if err != nil {
			return n, event.KindInvalid, err
		}
		t.X = x
		switch t.Op {
		case OpNot:
			if xk != event.KindBool {
				return n, event.KindInvalid, fmt.Errorf("expr: not requires bool, got %s", xk)
			}
			return t, event.KindBool, nil
		case OpNeg:
			if xk != event.KindInt && xk != event.KindFloat {
				return n, event.KindInvalid, fmt.Errorf("expr: unary - requires a number, got %s", xk)
			}
			return t, xk, nil
		default:
			return n, event.KindInvalid, fmt.Errorf("expr: bad unary operator %s", t.Op)
		}

	case Binary:
		l, lk, err := Check(t.L, r)
		if err != nil {
			return n, event.KindInvalid, err
		}
		rr, rk, err := Check(t.R, r)
		if err != nil {
			return n, event.KindInvalid, err
		}
		t.L, t.R = l, rr
		numeric := func(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }
		switch t.Op {
		case OpAdd, OpSub, OpMul:
			if !numeric(lk) || !numeric(rk) {
				return n, event.KindInvalid, fmt.Errorf("expr: %s requires numbers, got %s and %s", t.Op, lk, rk)
			}
			if lk == event.KindInt && rk == event.KindInt {
				return t, event.KindInt, nil
			}
			return t, event.KindFloat, nil
		case OpDiv:
			if !numeric(lk) || !numeric(rk) {
				return n, event.KindInvalid, fmt.Errorf("expr: / requires numbers, got %s and %s", lk, rk)
			}
			return t, event.KindFloat, nil
		case OpMod:
			if lk != event.KindInt || rk != event.KindInt {
				return n, event.KindInvalid, fmt.Errorf("expr: %% requires integers, got %s and %s", lk, rk)
			}
			return t, event.KindInt, nil
		case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
			comparable := (numeric(lk) && numeric(rk)) || (lk == rk && lk != event.KindList)
			if !comparable {
				return n, event.KindInvalid, fmt.Errorf("expr: cannot compare %s with %s", lk, rk)
			}
			return t, event.KindBool, nil
		case OpAnd, OpOr:
			if lk != event.KindBool || rk != event.KindBool {
				return n, event.KindInvalid, fmt.Errorf("expr: %s requires booleans, got %s and %s", t.Op, lk, rk)
			}
			return t, event.KindBool, nil
		case OpLike, OpContains:
			// contains doubles as list membership: `list contains elem`.
			if t.Op == OpContains && lk == event.KindList {
				if rk == event.KindList {
					return n, event.KindInvalid, fmt.Errorf("expr: contains element must be a scalar")
				}
				return t, event.KindBool, nil
			}
			if lk != event.KindString || rk != event.KindString {
				return n, event.KindInvalid, fmt.Errorf("expr: %s requires strings (or a list on the left of contains), got %s and %s", t.Op, lk, rk)
			}
			if t.Op == OpLike {
				if _, isLit := t.R.(Lit); !isLit {
					return n, event.KindInvalid, fmt.Errorf("expr: like pattern must be a literal")
				}
			}
			return t, event.KindBool, nil
		default:
			return n, event.KindInvalid, fmt.Errorf("expr: bad binary operator %s", t.Op)
		}

	case In:
		x, xk, err := Check(t.X, r)
		if err != nil {
			return n, event.KindInvalid, err
		}
		t.X = x
		if len(t.List) == 0 {
			return n, event.KindInvalid, fmt.Errorf("expr: empty in-list")
		}
		for i, e := range t.List {
			le, lk, err := Check(e, r)
			if err != nil {
				return n, event.KindInvalid, err
			}
			if _, isLit := le.(Lit); !isLit {
				return n, event.KindInvalid, fmt.Errorf("expr: in-list elements must be literals")
			}
			numeric := func(k event.Kind) bool { return k == event.KindInt || k == event.KindFloat }
			if !(numeric(xk) && numeric(lk)) && xk != lk {
				return n, event.KindInvalid, fmt.Errorf("expr: in-list element %d kind %s does not match %s", i, lk, xk)
			}
			t.List[i] = le
		}
		return t, event.KindBool, nil

	case Call:
		if _, ok := agg.ParseKind(t.Name); ok {
			return n, event.KindInvalid, fmt.Errorf("expr: aggregate %s not allowed here", t.Name)
		}
		return n, event.KindInvalid, fmt.Errorf("expr: unknown function %q", t.Name)

	case AggRef:
		k, err := aggResultKind(t, r)
		if err != nil {
			return n, event.KindInvalid, err
		}
		// Resolve the argument too, so later stages see qualified refs.
		if t.Arg != nil {
			arg, _, err := Check(t.Arg, r)
			if err != nil {
				return n, event.KindInvalid, err
			}
			t.Arg = arg
		}
		return t, k, nil

	default:
		return n, event.KindInvalid, fmt.Errorf("expr: unknown node %T", n)
	}
}

// aggResultKind returns the static kind of an aggregate's result.
func aggResultKind(a AggRef, r Resolver) (event.Kind, error) {
	switch a.Spec.Kind {
	case agg.KindCountStar, agg.KindCount, agg.KindCountDistinct:
		return event.KindInt, nil
	case agg.KindAvg:
		return event.KindFloat, nil
	case agg.KindTopK:
		return event.KindList, nil
	case agg.KindSum, agg.KindMin, agg.KindMax:
		if a.Arg == nil {
			return event.KindInvalid, fmt.Errorf("expr: %s requires an argument", a.Spec.Kind)
		}
		_, k, err := Check(a.Arg, r)
		if err != nil {
			return event.KindInvalid, err
		}
		if a.Spec.Kind == agg.KindSum && k != event.KindInt && k != event.KindFloat {
			return event.KindInvalid, fmt.Errorf("expr: SUM requires a numeric argument, got %s", k)
		}
		return k, nil
	default:
		return event.KindInvalid, fmt.Errorf("expr: unknown aggregate kind %v", a.Spec.Kind)
	}
}
