package expr

import (
	"encoding/binary"
	"fmt"

	"scrub/internal/agg"
	"scrub/internal/event"
)

// Binary codec for expression trees. Query objects carry compiled-down
// plans from the query server to host agents and ScrubCentral; the
// predicate and projection expressions inside them are serialized with
// this codec rather than re-parsed from text, so the server's validated
// plan is exactly what executes.

const (
	tagLit uint8 = iota + 1
	tagFieldRef
	tagUnary
	tagBinary
	tagIn
	tagAggRef
)

const maxNodeDepth = 200

// AppendNode appends the binary encoding of an expression tree. Call nodes
// are rejected — plans never contain unresolved calls.
//
//scrub:allowalloc(control-plane predicate serialization; never on the per-tuple path)
func AppendNode(dst []byte, n Node) ([]byte, error) {
	switch t := n.(type) {
	case Lit:
		dst = append(dst, tagLit)
		return event.AppendValue(dst, t.Val), nil
	case FieldRef:
		dst = append(dst, tagFieldRef)
		dst = appendString(dst, t.Type)
		return appendString(dst, t.Name), nil
	case Unary:
		dst = append(dst, tagUnary, byte(t.Op))
		return AppendNode(dst, t.X)
	case Binary:
		dst = append(dst, tagBinary, byte(t.Op))
		var err error
		dst, err = AppendNode(dst, t.L)
		if err != nil {
			return nil, err
		}
		return AppendNode(dst, t.R)
	case In:
		dst = append(dst, tagIn)
		if t.Negate {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		var err error
		dst, err = AppendNode(dst, t.X)
		if err != nil {
			return nil, err
		}
		dst = binary.AppendUvarint(dst, uint64(len(t.List)))
		for _, e := range t.List {
			dst, err = AppendNode(dst, e)
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	case AggRef:
		dst = append(dst, tagAggRef)
		dst = binary.AppendUvarint(dst, uint64(t.Index))
		dst = append(dst, byte(t.Spec.Kind))
		dst = binary.AppendUvarint(dst, uint64(t.Spec.K))
		dst = append(dst, t.Spec.Prec)
		if t.Arg == nil {
			return append(dst, 0), nil
		}
		dst = append(dst, 1)
		return AppendNode(dst, t.Arg)
	case nil:
		return nil, fmt.Errorf("expr: encode: nil node")
	default:
		return nil, fmt.Errorf("expr: encode: unsupported node %T", n)
	}
}

// DecodeNode decodes one expression tree, returning bytes consumed.
func DecodeNode(b []byte) (Node, int, error) {
	return decodeNode(b, 0)
}

func decodeNode(b []byte, depth int) (Node, int, error) {
	if depth > maxNodeDepth {
		return nil, 0, fmt.Errorf("expr: decode: tree too deep")
	}
	if len(b) == 0 {
		return nil, 0, fmt.Errorf("expr: decode: empty buffer")
	}
	switch b[0] {
	case tagLit:
		v, n, err := event.DecodeValue(b[1:])
		if err != nil {
			return nil, 0, err
		}
		return Lit{Val: v}, 1 + n, nil
	case tagFieldRef:
		typ, n1, err := decodeString(b[1:])
		if err != nil {
			return nil, 0, err
		}
		name, n2, err := decodeString(b[1+n1:])
		if err != nil {
			return nil, 0, err
		}
		return FieldRef{Type: typ, Name: name}, 1 + n1 + n2, nil
	case tagUnary:
		if len(b) < 2 {
			return nil, 0, fmt.Errorf("expr: decode: short unary")
		}
		x, n, err := decodeNode(b[2:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		return Unary{Op: Op(b[1]), X: x}, 2 + n, nil
	case tagBinary:
		if len(b) < 2 {
			return nil, 0, fmt.Errorf("expr: decode: short binary")
		}
		l, n1, err := decodeNode(b[2:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		r, n2, err := decodeNode(b[2+n1:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		return Binary{Op: Op(b[1]), L: l, R: r}, 2 + n1 + n2, nil
	case tagIn:
		if len(b) < 2 {
			return nil, 0, fmt.Errorf("expr: decode: short in")
		}
		negate := b[1] == 1
		off := 2
		x, n, err := decodeNode(b[off:], depth+1)
		if err != nil {
			return nil, 0, err
		}
		off += n
		cnt, sz := binary.Uvarint(b[off:])
		if sz <= 0 || cnt > uint64(len(b)) {
			return nil, 0, fmt.Errorf("expr: decode: bad in-list count")
		}
		off += sz
		list := make([]Node, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			e, n, err := decodeNode(b[off:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			list = append(list, e)
			off += n
		}
		return In{X: x, List: list, Negate: negate}, off, nil
	case tagAggRef:
		off := 1
		idx, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("expr: decode: bad agg index")
		}
		off += sz
		if len(b) < off+1 {
			return nil, 0, fmt.Errorf("expr: decode: short agg kind")
		}
		kind := agg.Kind(b[off])
		off++
		k, sz := binary.Uvarint(b[off:])
		if sz <= 0 {
			return nil, 0, fmt.Errorf("expr: decode: bad agg k")
		}
		off += sz
		if len(b) < off+2 {
			return nil, 0, fmt.Errorf("expr: decode: short agg tail")
		}
		prec := b[off]
		hasArg := b[off+1] == 1
		off += 2
		ref := AggRef{Index: int(idx), Spec: agg.Spec{Kind: kind, K: int(k), Prec: prec}}
		if hasArg {
			arg, n, err := decodeNode(b[off:], depth+1)
			if err != nil {
				return nil, 0, err
			}
			ref.Arg = arg
			off += n
		}
		return ref, off, nil
	default:
		return nil, 0, fmt.Errorf("expr: decode: unknown tag %d", b[0])
	}
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, int, error) {
	ln, sz := binary.Uvarint(b)
	if sz <= 0 {
		return "", 0, fmt.Errorf("expr: decode: bad string length")
	}
	if uint64(len(b)-sz) < ln {
		return "", 0, fmt.Errorf("expr: decode: short string")
	}
	return string(b[sz : sz+int(ln)]), sz + int(ln), nil
}
