package expr

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"scrub/internal/event"
)

// The properties pinned here are the correctness contract of the shared
// query index: Canon must be semantics-preserving and idempotent, and a
// Program must evaluate every interned tree bit-identically to the
// compiled closures, sharing canonically-equal subexpressions.

// genExpr builds a random unchecked tree of the requested kind over
// bidSchema. Depth-bounded; leaves are field references and literals
// (including occasional NaN, zero divisors, and type-mismatched specials
// that survive Check).
func genExpr(rng *rand.Rand, kind event.Kind, depth int) Node {
	if depth <= 0 || rng.Intn(4) == 0 {
		return genLeaf(rng, kind)
	}
	switch kind {
	case event.KindBool:
		switch rng.Intn(10) {
		case 0, 1:
			op := []Op{OpAnd, OpOr}[rng.Intn(2)]
			return Binary{Op: op, L: genExpr(rng, event.KindBool, depth-1), R: genExpr(rng, event.KindBool, depth-1)}
		case 2:
			return Unary{Op: OpNot, X: genExpr(rng, event.KindBool, depth-1)}
		case 3, 4:
			op := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
			nk := []event.Kind{event.KindInt, event.KindFloat}[rng.Intn(2)]
			return Binary{Op: op, L: genExpr(rng, nk, depth-1), R: genExpr(rng, nk, depth-1)}
		case 5:
			op := []Op{OpEq, OpNe}[rng.Intn(2)]
			return Binary{Op: op, L: genExpr(rng, event.KindString, depth-1), R: genExpr(rng, event.KindString, depth-1)}
		case 6:
			// in-list with duplicates and shuffled order
			n := 1 + rng.Intn(4)
			list := make([]Node, n)
			for i := range list {
				list[i] = Lit{Val: event.Int(int64(rng.Intn(4)))}
			}
			return In{X: genExpr(rng, event.KindInt, depth-1), List: list, Negate: rng.Intn(2) == 0}
		case 7:
			pats := []string{"san%", "%jose", "s_n%", "%", "san jose", "a%b%c"}
			return Binary{Op: OpLike, L: FieldRef{Name: "city"}, R: Lit{Val: event.Str(pats[rng.Intn(len(pats))])}}
		case 8:
			if rng.Intn(2) == 0 {
				return Binary{Op: OpContains, L: FieldRef{Name: "city"}, R: genExpr(rng, event.KindString, depth-1)}
			}
			return Binary{Op: OpContains, L: FieldRef{Name: "segments"}, R: genExpr(rng, event.KindInt, depth-1)}
		default:
			return genLeaf(rng, event.KindBool)
		}
	case event.KindInt:
		op := []Op{OpAdd, OpSub, OpMul, OpMod}[rng.Intn(4)]
		return Binary{Op: op, L: genExpr(rng, event.KindInt, depth-1), R: genExpr(rng, event.KindInt, depth-1)}
	case event.KindFloat:
		switch rng.Intn(4) {
		case 0:
			return Binary{Op: OpDiv, L: genExpr(rng, event.KindFloat, depth-1), R: genExpr(rng, event.KindFloat, depth-1)}
		case 1:
			return Unary{Op: OpNeg, X: genExpr(rng, event.KindFloat, depth-1)}
		default:
			op := []Op{OpAdd, OpSub, OpMul}[rng.Intn(3)]
			// Mixing int operands exercises the int/float widening rules.
			lk := []event.Kind{event.KindFloat, event.KindInt}[rng.Intn(2)]
			rk := event.KindFloat
			if lk == event.KindFloat && rng.Intn(2) == 0 {
				rk = event.KindInt
			}
			return Binary{Op: op, L: genExpr(rng, lk, depth-1), R: genExpr(rng, rk, depth-1)}
		}
	case event.KindString:
		return genLeaf(rng, event.KindString)
	}
	return genLeaf(rng, kind)
}

func genLeaf(rng *rand.Rand, kind event.Kind) Node {
	switch kind {
	case event.KindBool:
		if rng.Intn(3) == 0 {
			return FieldRef{Name: "won"}
		}
		return Lit{Val: event.Bool(rng.Intn(2) == 0)}
	case event.KindInt:
		if rng.Intn(2) == 0 {
			return FieldRef{Name: "user_id"}
		}
		return Lit{Val: event.Int(int64(rng.Intn(7)) - 3)} // includes 0 divisors
	case event.KindFloat:
		if rng.Intn(2) == 0 {
			return FieldRef{Name: "bid_price"}
		}
		vals := []float64{0, 1, -1.5, 2.25, 1e9, math.NaN(), math.Inf(1)}
		return Lit{Val: event.Float(vals[rng.Intn(len(vals))])}
	case event.KindString:
		if rng.Intn(2) == 0 {
			return FieldRef{Name: "city"}
		}
		strs := []string{"", "san jose", "sf", "jose"}
		return Lit{Val: event.Str(strs[rng.Intn(len(strs))])}
	}
	return Lit{Val: event.Invalid}
}

// genRow builds a random bid event; some rows omit fields so predicates
// see Invalid (missing) values.
func genRow(rng *rand.Rand) Row {
	b := event.NewBuilder(bidSchema).SetRequestID(uint64(rng.Intn(100))).SetTimeNanos(int64(rng.Intn(1000)) + 1)
	if rng.Intn(8) != 0 {
		b.Int("user_id", int64(rng.Intn(7))-3)
	}
	if rng.Intn(8) != 0 {
		b.Str("city", []string{"", "san jose", "sf", "jose city"}[rng.Intn(4)])
	}
	if rng.Intn(8) != 0 {
		vals := []float64{0, 1, -1.5, 2.25, math.NaN(), math.Inf(-1)}
		b.Float("bid_price", vals[rng.Intn(len(vals))])
	}
	if rng.Intn(8) != 0 {
		b.Bool("won", rng.Intn(2) == 0)
	}
	if rng.Intn(8) != 0 {
		b.Set("segments", event.IntList(int64(rng.Intn(4)), int64(rng.Intn(4))))
	}
	return EventRow{Event: b.MustBuild()}
}

// eqv is the observational equivalence the rewrites promise: same kind
// and same value, where all NaNs are alike (no Scrub operator
// distinguishes NaN payloads) and Invalid equals Invalid.
func eqv(a, b event.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	if !a.IsValid() {
		return true
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if aok && bok && math.IsNaN(af) && math.IsNaN(bf) {
		return true
	}
	return a.Equal(b)
}

func TestCanonPreservesSemantics(t *testing.T) {
	res := singleResolver()
	trees, rows, skipped := 0, 0, 0
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed))
		raw := genExpr(rng, event.KindBool, 4)
		checked, kind, err := Check(raw, res)
		if err != nil {
			skipped++
			continue
		}
		if kind != event.KindBool {
			t.Fatalf("seed %d: generator produced %s, want bool", seed, kind)
		}
		orig, err := Compile(checked)
		if err != nil {
			t.Fatalf("seed %d: compile original: %v", seed, err)
		}
		canon := Canon(checked)
		ce, err := Compile(canon)
		if err != nil {
			t.Fatalf("seed %d: compile canonical form of %s: %v\ncanon: %s", seed, checked, err, canon)
		}
		// Idempotence: canonicalizing twice is a fixed point.
		k1, err1 := AppendNode(nil, canon)
		k2, err2 := AppendNode(nil, Canon(canon))
		if err1 != nil || err2 != nil || !bytes.Equal(k1, k2) {
			t.Fatalf("seed %d: Canon not idempotent:\n  once:  %s\n  twice: %s", seed, canon, Canon(canon))
		}
		// Program built from the canonical tree.
		pb := NewProgramBuilder()
		id, err := pb.Intern(canon)
		if err != nil {
			t.Fatalf("seed %d: intern: %v", seed, err)
		}
		ctx := pb.Build().NewCtx()
		trees++
		for i := 0; i < 32; i++ {
			row := genRow(rng)
			want := orig(row)
			if got := ce(row); !eqv(want, got) {
				t.Fatalf("seed %d row %d: canon diverges\n  expr:  %s\n  canon: %s\n  want %v got %v",
					seed, i, checked, canon, want, got)
			}
			ctx.Begin(row)
			if got := ctx.Value(id); !eqv(want, got) {
				t.Fatalf("seed %d row %d: program diverges\n  expr:  %s\n  canon: %s\n  want %v got %v",
					seed, i, checked, canon, want, got)
			}
			wantB, okB := want.AsBool()
			if gotB := ctx.Bool(id); gotB != (okB && wantB) {
				t.Fatalf("seed %d row %d: predicate diverges: want %v got %v", seed, i, okB && wantB, gotB)
			}
			ctx.Finish()
			rows++
		}
	}
	if trees < 200 {
		t.Fatalf("only %d/%d generated trees type-checked (%d skipped) — generator has rotted", trees, 400, skipped)
	}
	t.Logf("checked %d trees × rows = %d evaluations", trees, rows)
}

func TestCanonSharesEquivalentSpellings(t *testing.T) {
	res := singleResolver()
	price := FieldRef{Name: "bid_price"}
	user := FieldRef{Name: "user_id"}
	city := FieldRef{Name: "city"}
	gt := func(f FieldRef, v float64) Node { return Binary{Op: OpGt, L: f, R: Lit{Val: event.Float(v)}} }
	eqs := func(f FieldRef, s string) Node { return Binary{Op: OpEq, L: f, R: Lit{Val: event.Str(s)}} }
	cases := []struct{ a, b Node }{
		// and-operand order
		{Binary{Op: OpAnd, L: gt(price, 1.5), R: eqs(city, "sf")},
			Binary{Op: OpAnd, L: eqs(city, "sf"), R: gt(price, 1.5)}},
		// nested and-chain associativity
		{Binary{Op: OpAnd, L: Binary{Op: OpAnd, L: gt(price, 1.5), R: eqs(city, "sf")}, R: FieldRef{Name: "won"}},
			Binary{Op: OpAnd, L: eqs(city, "sf"), R: Binary{Op: OpAnd, L: FieldRef{Name: "won"}, R: gt(price, 1.5)}}},
		// equality operand order
		{Binary{Op: OpEq, L: user, R: Lit{Val: event.Int(7)}},
			Binary{Op: OpEq, L: Lit{Val: event.Int(7)}, R: user}},
		// in-list order and duplicates
		{In{X: user, List: []Node{Lit{Val: event.Int(3)}, Lit{Val: event.Int(1)}, Lit{Val: event.Int(3)}}},
			In{X: user, List: []Node{Lit{Val: event.Int(1)}, Lit{Val: event.Int(3)}}}},
		// constant folding
		{Binary{Op: OpGt, L: price, R: Binary{Op: OpMul, L: Lit{Val: event.Float(0.5)}, R: Lit{Val: event.Int(3)}}},
			Binary{Op: OpGt, L: price, R: Lit{Val: event.Float(1.5)}}},
		// identity and annihilator operands
		{Binary{Op: OpAnd, L: gt(price, 2), R: Lit{Val: event.Bool(true)}}, gt(price, 2)},
		{Binary{Op: OpOr, L: gt(price, 2), R: Lit{Val: event.Bool(false)}}, gt(price, 2)},
	}
	for i, c := range cases {
		ca, _, err := Check(c.a, res)
		if err != nil {
			t.Fatalf("case %d: check a: %v", i, err)
		}
		cb, _, err := Check(c.b, res)
		if err != nil {
			t.Fatalf("case %d: check b: %v", i, err)
		}
		pb := NewProgramBuilder()
		ida, err := pb.Intern(Canon(ca))
		if err != nil {
			t.Fatalf("case %d: intern a: %v", i, err)
		}
		idb, err := pb.Intern(Canon(cb))
		if err != nil {
			t.Fatalf("case %d: intern b: %v", i, err)
		}
		if ida != idb {
			t.Errorf("case %d: equivalent spellings interned separately:\n  %s -> %d\n  %s -> %d",
				i, Canon(ca), ida, Canon(cb), idb)
		}
	}
	// Annihilator collapse: X and false folds to the false literal.
	ca, _, err := Check(Binary{Op: OpAnd, L: gt(price, 2), R: Lit{Val: event.Bool(false)}}, res)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := Canon(ca).(Lit); !ok || c.Val.String() != "false" {
		t.Errorf("X and false canonicalized to %s, want the false literal", Canon(ca))
	}
}

func TestProgramSharesSubexpressions(t *testing.T) {
	res := singleResolver()
	price := FieldRef{Name: "bid_price"}
	// Two different predicates over a common subexpression: the field
	// reference and the shared conjunct must intern once each.
	p1 := Binary{Op: OpAnd,
		L: Binary{Op: OpGt, L: price, R: Lit{Val: event.Float(1.5)}},
		R: Binary{Op: OpEq, L: FieldRef{Name: "city"}, R: Lit{Val: event.Str("sf")}}}
	p2 := Binary{Op: OpAnd,
		L: Binary{Op: OpGt, L: price, R: Lit{Val: event.Float(1.5)}},
		R: FieldRef{Name: "won"}}
	pb := NewProgramBuilder()
	var ids []int32
	for _, p := range []Node{p1, p2} {
		checked, _, err := Check(p, res)
		if err != nil {
			t.Fatal(err)
		}
		id, err := pb.Intern(Canon(checked))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	prog := pb.Build()
	// p1: price, 1.5, price>1.5, city, "sf", city="sf", and = 7 nodes.
	// p2 adds: won, and = 2 more. Shared: price, 1.5, price>1.5.
	if prog.NumNodes() != 9 {
		t.Errorf("program has %d nodes, want 9 (price>1.5 subtree shared)", prog.NumNodes())
	}
	if ids[0] == ids[1] {
		t.Error("distinct predicates interned to the same id")
	}
	// Shared-node evaluation count: with memoization the shared conjunct's
	// field read happens once per row even when both roots are evaluated.
	ev := event.NewBuilder(bidSchema).Int("user_id", 1).Str("city", "sf").
		Float("bid_price", 2.0).Bool("won", true).SetTimeNanos(1).MustBuild()
	ctx := prog.NewCtx()
	ctx.Begin(EventRow{Event: ev})
	if !ctx.Bool(ids[0]) || !ctx.Bool(ids[1]) {
		t.Error("both predicates should match")
	}
	// Every node forced at most once: touched ids must be unique.
	seen := map[int32]bool{}
	for _, id := range ctx.touched {
		if seen[id] {
			t.Errorf("node %d forced twice in one row", id)
		}
		seen[id] = true
	}
	ctx.Finish()
	if len(ctx.touched) != 0 {
		t.Error("Finish did not reset the touched list")
	}
	for i, v := range ctx.vals {
		if v.IsValid() {
			t.Errorf("Finish left node %d's value populated (pins event payloads)", i)
		}
	}
}
