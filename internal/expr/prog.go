package expr

import (
	"fmt"

	"scrub/internal/event"
)

// A Program is a set of expression trees compiled into one flat node
// array with every distinct subexpression interned exactly once. Many
// predicates over the same event type compile into one Program; per event
// an evaluation context then computes each distinct node at most once and
// fans the result out to every expression that contains it — the host
// agent's shared query index (DESIGN.md §14) is built on this.
//
// The interpreter is a node-array walker rather than composed closures so
// that (a) results are memoizable by node id and (b) the call graph is
// static: scrubvet's hotpath analyzer chases Ctx.Bool/Value through eval
// into the scalar helpers in eval.go, extending the zero-allocation proof
// to the whole evaluation engine. Semantics are bit-identical to Compile
// because both engines call those same helpers.

// pTag discriminates program node kinds.
type pTag uint8

const (
	pLit pTag = iota + 1
	pField
	pNot
	pNeg
	pArith
	pEqNe
	pCmp
	pAnd
	pOr
	pContains
	pLike
	pIn
	pAgg
)

// pnode is one interned subexpression. l and r are child node ids; the
// remaining fields are populated per tag.
type pnode struct {
	tag    pTag
	op     Op
	l, r   int32
	lit    event.Value
	typ    string
	name   string
	list   []event.Value
	negate bool
	like   likeMatcher
	agg    int
}

// Program is an immutable shared evaluation plan. Build one with
// ProgramBuilder; evaluate with a Ctx.
type Program struct {
	nodes []pnode
}

// NumNodes reports the number of distinct interned subexpressions.
func (p *Program) NumNodes() int { return len(p.nodes) }

// ProgramBuilder interns expression trees into a Program. Trees should be
// canonicalized first (Canon) so that equivalent-but-differently-spelled
// subexpressions intern to the same node; interning keys on the exact
// binary encoding, so it is correct (just less shared) without it.
type ProgramBuilder struct {
	nodes []pnode
	ids   map[string]int32
}

// NewProgramBuilder returns an empty builder.
func NewProgramBuilder() *ProgramBuilder {
	return &ProgramBuilder{ids: make(map[string]int32)}
}

// Intern adds a checked tree and returns its node id, reusing every
// already-interned subexpression. The same requirements as Compile apply:
// field references resolved, no Call nodes, literal like patterns and
// in-lists.
func (b *ProgramBuilder) Intern(n Node) (int32, error) {
	enc, err := AppendNode(nil, n)
	if err != nil {
		return -1, err
	}
	key := string(enc)
	if id, ok := b.ids[key]; ok {
		return id, nil
	}
	var nd pnode
	switch t := n.(type) {
	case Lit:
		nd = pnode{tag: pLit, lit: t.Val}
	case FieldRef:
		nd = pnode{tag: pField, typ: t.Type, name: t.Name}
	case Unary:
		x, err := b.Intern(t.X)
		if err != nil {
			return -1, err
		}
		switch t.Op {
		case OpNot:
			nd = pnode{tag: pNot, l: x}
		case OpNeg:
			nd = pnode{tag: pNeg, l: x}
		default:
			return -1, fmt.Errorf("expr: intern: bad unary op %s", t.Op)
		}
	case Binary:
		l, err := b.Intern(t.L)
		if err != nil {
			return -1, err
		}
		if t.Op == OpLike {
			m, err := likeFor(t.R)
			if err != nil {
				return -1, err
			}
			nd = pnode{tag: pLike, l: l, like: m}
			break
		}
		r, err := b.Intern(t.R)
		if err != nil {
			return -1, err
		}
		switch t.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			nd = pnode{tag: pArith, op: t.Op, l: l, r: r}
		case OpEq, OpNe:
			nd = pnode{tag: pEqNe, op: t.Op, l: l, r: r}
		case OpLt, OpLe, OpGt, OpGe:
			nd = pnode{tag: pCmp, op: t.Op, l: l, r: r}
		case OpAnd:
			nd = pnode{tag: pAnd, l: l, r: r}
		case OpOr:
			nd = pnode{tag: pOr, l: l, r: r}
		case OpContains:
			nd = pnode{tag: pContains, l: l, r: r}
		default:
			return -1, fmt.Errorf("expr: intern: bad binary op %s", t.Op)
		}
	case In:
		x, err := b.Intern(t.X)
		if err != nil {
			return -1, err
		}
		lits := make([]event.Value, len(t.List))
		for i, e := range t.List {
			le, ok := e.(Lit)
			if !ok {
				return -1, fmt.Errorf("expr: intern: in-list element %d is not a literal", i)
			}
			lits[i] = le.Val
		}
		nd = pnode{tag: pIn, l: x, list: lits, negate: t.Negate}
	case AggRef:
		nd = pnode{tag: pAgg, agg: t.Index}
	default:
		return -1, fmt.Errorf("expr: intern: unsupported node %T", n)
	}
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, nd)
	b.ids[key] = id
	return id, nil
}

// Build freezes the interned nodes into a Program. The builder remains
// usable; later Interns do not affect already-built Programs.
func (b *ProgramBuilder) Build() *Program {
	nodes := make([]pnode, len(b.nodes))
	copy(nodes, b.nodes)
	return &Program{nodes: nodes}
}

// Ctx evaluates one Program against one row at a time, memoizing every
// node it computes so shared subexpressions cost one evaluation per row
// regardless of how many expressions contain them. A Ctx is single-
// goroutine; pool Ctxs to share across goroutines. The memo is epoch-
// based: Begin bumps the epoch instead of clearing arrays, so starting a
// row is O(1) and evaluation stays proportional to the nodes actually
// forced (and/or short-circuits never force unreached operands).
type Ctx struct {
	prog    *Program
	row     Row
	epoch   uint64
	vals    []event.Value
	mark    []uint64
	touched []int32
}

// NewCtx allocates an evaluation context for the program.
//
//scrub:allowalloc(context construction is control-plane; hot paths reuse pooled Ctxs)
func (p *Program) NewCtx() *Ctx {
	n := len(p.nodes)
	return &Ctx{
		prog:    p,
		vals:    make([]event.Value, n),
		mark:    make([]uint64, n),
		touched: make([]int32, 0, n),
	}
}

// Begin starts evaluation of a new row, invalidating all memoized
// results.
//
//scrub:hotpath
func (c *Ctx) Begin(row Row) {
	c.row = row
	c.epoch++
	if c.epoch == 0 { // wrapped: marks from the old cycle could alias
		for i := range c.mark {
			c.mark[i] = 0
		}
		c.epoch = 1
	}
}

// Finish releases the row and every memoized value so a pooled Ctx does
// not pin event payloads between uses. Cost is proportional to the nodes
// actually evaluated since Begin.
//
//scrub:hotpath
func (c *Ctx) Finish() {
	for _, id := range c.touched {
		c.vals[id] = event.Value{}
	}
	c.touched = c.touched[:0]
	c.row = nil
}

// Bool evaluates node id as a predicate: missing or non-boolean results
// reject the row, the NULL-filtering semantics of SQL WHERE (the same
// contract as Predicate).
//
//scrub:hotpath
func (c *Ctx) Bool(id int32) bool {
	b, ok := c.force(id).AsBool()
	return ok && b
}

// Value evaluates node id and returns its value.
//
//scrub:hotpath
func (c *Ctx) Value(id int32) event.Value {
	return c.force(id)
}

// force returns the node's value for the current row, computing and
// memoizing it on first use. Literals skip the memo entirely — reading
// the stored value is already cheaper than the bookkeeping.
func (c *Ctx) force(id int32) event.Value {
	if nd := &c.prog.nodes[id]; nd.tag == pLit {
		return nd.lit
	}
	if c.mark[id] == c.epoch {
		return c.vals[id]
	}
	v := c.eval(id)
	c.mark[id] = c.epoch
	c.vals[id] = v
	c.touched = append(c.touched, id)
	return v
}

// eval computes one node. Operand forcing is lazy where the operator is
// (and/or short-circuit exactly as the compiled closures do) and eager
// where it is not, preserving Compile's evaluation order.
func (c *Ctx) eval(id int32) event.Value {
	nd := &c.prog.nodes[id]
	switch nd.tag {
	case pLit:
		return nd.lit
	case pField:
		return c.row.Field(nd.typ, nd.name)
	case pNot:
		b, ok := c.force(nd.l).AsBool()
		if !ok {
			return event.Invalid
		}
		return event.Bool(!b)
	case pNeg:
		v := c.force(nd.l)
		if i, ok := v.AsInt(); ok {
			return event.Int(-i)
		}
		if f, ok := v.AsFloat(); ok {
			return event.Float(-f)
		}
		return event.Invalid
	case pArith:
		a := c.force(nd.l)
		b := c.force(nd.r)
		return arithValue(nd.op, a, b)
	case pEqNe:
		a := c.force(nd.l)
		b := c.force(nd.r)
		return eqValue(nd.op, a, b)
	case pCmp:
		a := c.force(nd.l)
		b := c.force(nd.r)
		return cmpValue(nd.op, a, b)
	case pAnd:
		lb, lok := c.force(nd.l).AsBool()
		if lok && !lb {
			return event.Bool(false)
		}
		rb, rok := c.force(nd.r).AsBool()
		if rok && !rb {
			return event.Bool(false)
		}
		if !lok || !rok {
			return event.Invalid
		}
		return event.Bool(true)
	case pOr:
		lb, lok := c.force(nd.l).AsBool()
		if lok && lb {
			return event.Bool(true)
		}
		rb, rok := c.force(nd.r).AsBool()
		if rok && rb {
			return event.Bool(true)
		}
		if !lok || !rok {
			return event.Invalid
		}
		return event.Bool(false)
	case pContains:
		a := c.force(nd.l)
		b := c.force(nd.r)
		return containsValue(a, b)
	case pLike:
		s, ok := c.force(nd.l).AsStr()
		if !ok {
			return event.Invalid
		}
		return event.Bool(nd.like.match(s))
	case pIn:
		return inValue(c.force(nd.l), nd.list, nd.negate)
	case pAgg:
		return c.row.Agg(nd.agg)
	}
	return event.Invalid
}
