// Package expr defines the expression trees used inside Scrub queries —
// selection predicates, projections, and the scalar arithmetic wrapped
// around aggregates (e.g. `1000*AVG(impression.cost)`) — together with
// type checking and compilation into fast closures evaluated per event.
//
// The package is deliberately independent of the query grammar: the ql
// parser produces these nodes, the host agent compiles selection and
// projection from them, and ScrubCentral compiles the post-aggregation
// select expressions.
package expr

import (
	"fmt"
	"strings"

	"scrub/internal/agg"
	"scrub/internal/event"
)

// Op enumerates the operators of the expression language.
type Op uint8

// Operators.
const (
	OpInvalid Op = iota
	// Arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	// Comparison.
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	// Boolean.
	OpAnd
	OpOr
	OpNot
	// Unary arithmetic.
	OpNeg
	// String matching.
	OpLike
	OpContains
)

// String returns the query-language spelling of the operator.
func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpNot:
		return "not"
	case OpNeg:
		return "-"
	case OpLike:
		return "like"
	case OpContains:
		return "contains"
	default:
		return "?"
	}
}

// Node is an expression-tree node.
type Node interface {
	fmt.Stringer
	node()
}

// Lit is a literal constant.
type Lit struct {
	Val event.Value
}

func (Lit) node() {}

func (l Lit) String() string {
	if s, ok := l.Val.AsStr(); ok {
		return fmt.Sprintf("%q", s)
	}
	return l.Val.String()
}

// FieldRef names an event field, optionally qualified with the event type
// (`bid.user_id` vs `user_id`). Unqualified references are resolved during
// validation; in join queries ambiguous unqualified names are rejected.
type FieldRef struct {
	Type string // event type; "" until resolved for single-source queries
	Name string
}

func (FieldRef) node() {}

func (f FieldRef) String() string {
	if f.Type == "" {
		return f.Name
	}
	return f.Type + "." + f.Name
}

// Unary applies OpNot or OpNeg.
type Unary struct {
	Op Op
	X  Node
}

func (Unary) node() {}

func (u Unary) String() string {
	if u.Op == OpNot {
		return fmt.Sprintf("(not %s)", u.X)
	}
	return fmt.Sprintf("(%s%s)", u.Op, u.X)
}

// Binary applies a binary operator.
type Binary struct {
	Op   Op
	L, R Node
}

func (Binary) node() {}

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// In tests membership of X in a literal list.
type In struct {
	X      Node
	List   []Node
	Negate bool
}

func (In) node() {}

func (i In) String() string {
	parts := make([]string, len(i.List))
	for j, n := range i.List {
		parts[j] = n.String()
	}
	op := "in"
	if i.Negate {
		op = "not in"
	}
	return fmt.Sprintf("(%s %s (%s))", i.X, op, strings.Join(parts, ", "))
}

// Call is a function application as parsed. The validator resolves calls
// into aggregates (the only functions the language defines); unresolved
// calls are rejected.
type Call struct {
	Name string
	Args []Node
	Star bool // COUNT(*)
}

func (Call) node() {}

func (c Call) String() string {
	if c.Star {
		return fmt.Sprintf("%s(*)", c.Name)
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}

// AggRef replaces a Call during planning: it refers to the Index'th
// aggregator of the query. Evaluated only at ScrubCentral, against a row
// that exposes aggregate results.
type AggRef struct {
	Index int
	Spec  agg.Spec
	Arg   Node // the aggregate's input expression (nil for COUNT(*))
}

func (AggRef) node() {}

func (a AggRef) String() string {
	if a.Arg == nil {
		return fmt.Sprintf("agg[%d]:%s", a.Index, a.Spec.Kind)
	}
	return fmt.Sprintf("agg[%d]:%s(%s)", a.Index, a.Spec.Kind, a.Arg)
}

// Walk visits every node of the tree in depth-first order. The visitor
// returns false to prune a subtree.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	switch t := n.(type) {
	case Unary:
		Walk(t.X, visit)
	case Binary:
		Walk(t.L, visit)
		Walk(t.R, visit)
	case In:
		Walk(t.X, visit)
		for _, e := range t.List {
			Walk(e, visit)
		}
	case Call:
		for _, a := range t.Args {
			Walk(a, visit)
		}
	case AggRef:
		Walk(t.Arg, visit)
	}
}

// Fields returns the distinct field references in the tree, in first-seen
// order. The host planner uses this to compute the projection column set.
func Fields(n Node) []FieldRef {
	var out []FieldRef
	seen := make(map[FieldRef]bool)
	Walk(n, func(x Node) bool {
		if f, ok := x.(FieldRef); ok && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
		return true
	})
	return out
}

// HasAggregate reports whether the tree contains an aggregate call or
// reference.
func HasAggregate(n Node) bool {
	found := false
	Walk(n, func(x Node) bool {
		switch c := x.(type) {
		case AggRef:
			found = true
			return false
		case Call:
			if _, ok := agg.ParseKind(c.Name); ok || strings.EqualFold(c.Name, "count") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
