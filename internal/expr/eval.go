package expr

import (
	"fmt"
	"strings"

	"scrub/internal/event"
)

// Row is the evaluation context: a single event, a joined event pair, or a
// closed window's aggregate results.
type Row interface {
	// Field returns the value of a (qualified) field reference.
	Field(typ, name string) event.Value
	// Agg returns the i'th aggregate result; only meaningful at
	// ScrubCentral after a window closes.
	Agg(i int) event.Value
}

// EventRow adapts one event as a Row. Field type qualifiers are checked so
// a join-compiled expression cannot silently read the wrong side.
type EventRow struct {
	Event *event.Event
}

// Field implements Row.
func (r EventRow) Field(typ, name string) event.Value {
	if typ != "" && typ != r.Event.Schema.Name() {
		return event.Invalid
	}
	return r.Event.Get(name)
}

// Agg implements Row; events carry no aggregates.
func (EventRow) Agg(int) event.Value { return event.Invalid }

// Evaluator is a compiled expression.
type Evaluator func(Row) event.Value

// Compile lowers a checked tree into an evaluator closure. The tree must
// have passed Check (field references resolved, Calls replaced); Compile
// returns an error on malformed trees rather than panicking at query time.
func Compile(n Node) (Evaluator, error) {
	switch t := n.(type) {
	case Lit:
		v := t.Val
		return func(Row) event.Value { return v }, nil

	case FieldRef:
		typ, name := t.Type, t.Name
		return func(r Row) event.Value { return r.Field(typ, name) }, nil

	case Unary:
		x, err := Compile(t.X)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case OpNot:
			return func(r Row) event.Value {
				b, ok := x(r).AsBool()
				if !ok {
					return event.Invalid
				}
				return event.Bool(!b)
			}, nil
		case OpNeg:
			return func(r Row) event.Value {
				v := x(r)
				if i, ok := v.AsInt(); ok {
					return event.Int(-i)
				}
				if f, ok := v.AsFloat(); ok {
					return event.Float(-f)
				}
				return event.Invalid
			}, nil
		default:
			return nil, fmt.Errorf("expr: compile: bad unary op %s", t.Op)
		}

	case Binary:
		l, err := Compile(t.L)
		if err != nil {
			return nil, err
		}
		r, err := Compile(t.R)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			return compileArith(t.Op, l, r), nil
		case OpEq, OpNe:
			op := t.Op
			return func(row Row) event.Value {
				return eqValue(op, l(row), r(row))
			}, nil
		case OpLt, OpLe, OpGt, OpGe:
			op := t.Op
			return func(row Row) event.Value {
				return cmpValue(op, l(row), r(row))
			}, nil
		case OpAnd:
			return func(row Row) event.Value {
				lb, lok := l(row).AsBool()
				if lok && !lb {
					return event.Bool(false)
				}
				rb, rok := r(row).AsBool()
				if rok && !rb {
					return event.Bool(false)
				}
				if !lok || !rok {
					return event.Invalid
				}
				return event.Bool(true)
			}, nil
		case OpOr:
			return func(row Row) event.Value {
				lb, lok := l(row).AsBool()
				if lok && lb {
					return event.Bool(true)
				}
				rb, rok := r(row).AsBool()
				if rok && rb {
					return event.Bool(true)
				}
				if !lok || !rok {
					return event.Invalid
				}
				return event.Bool(false)
			}, nil
		case OpContains:
			return func(row Row) event.Value {
				return containsValue(l(row), r(row))
			}, nil
		case OpLike:
			m, err := likeFor(t.R)
			if err != nil {
				return nil, err
			}
			return func(row Row) event.Value {
				s, ok := l(row).AsStr()
				if !ok {
					return event.Invalid
				}
				return event.Bool(m.match(s))
			}, nil
		default:
			return nil, fmt.Errorf("expr: compile: bad binary op %s", t.Op)
		}

	case In:
		x, err := Compile(t.X)
		if err != nil {
			return nil, err
		}
		lits := make([]event.Value, len(t.List))
		for i, e := range t.List {
			le, ok := e.(Lit)
			if !ok {
				return nil, fmt.Errorf("expr: compile: in-list element %d is not a literal", i)
			}
			lits[i] = le.Val
		}
		negate := t.Negate
		return func(row Row) event.Value {
			return inValue(x(row), lits, negate)
		}, nil

	case AggRef:
		idx := t.Index
		return func(r Row) event.Value { return r.Agg(idx) }, nil

	case Call:
		return nil, fmt.Errorf("expr: compile: unresolved call %s (plan the query first)", t.Name)

	default:
		return nil, fmt.Errorf("expr: compile: unknown node %T", n)
	}
}

func compileArith(op Op, l, r Evaluator) Evaluator {
	return func(row Row) event.Value {
		return arithValue(op, l(row), r(row))
	}
}

// The scalar helpers below are the single definition of each operator's
// runtime semantics. Both execution engines — the closure compiler above
// and the shared-program interpreter in prog.go — call them, so the two
// are bit-identical by construction, not by parallel maintenance.

// arithValue applies an arithmetic operator: int op int stays exact
// (except /, which is always float), anything else widens to float,
// division/modulo by zero is Invalid.
func arithValue(op Op, a, b event.Value) event.Value {
	ai, aIsInt := a.AsInt()
	bi, bIsInt := b.AsInt()
	if aIsInt && bIsInt {
		switch op {
		case OpAdd:
			return event.Int(ai + bi)
		case OpSub:
			return event.Int(ai - bi)
		case OpMul:
			return event.Int(ai * bi)
		case OpMod:
			if bi == 0 {
				return event.Invalid
			}
			return event.Int(ai % bi)
		case OpDiv:
			if bi == 0 {
				return event.Invalid
			}
			return event.Float(float64(ai) / float64(bi))
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return event.Invalid
	}
	switch op {
	case OpAdd:
		return event.Float(af + bf)
	case OpSub:
		return event.Float(af - bf)
	case OpMul:
		return event.Float(af * bf)
	case OpDiv:
		if bf == 0 {
			return event.Invalid
		}
		return event.Float(af / bf)
	default: // OpMod on floats is rejected by Check
		return event.Invalid
	}
}

// eqValue applies = / != with SQL NULL semantics: an invalid operand
// poisons the comparison.
func eqValue(op Op, a, b event.Value) event.Value {
	if !a.IsValid() || !b.IsValid() {
		return event.Invalid
	}
	return event.Bool(a.Equal(b) == (op == OpEq))
}

// cmpValue applies an ordering operator via Value.Compare.
func cmpValue(op Op, a, b event.Value) event.Value {
	c, ok := a.Compare(b)
	if !ok {
		return event.Invalid
	}
	switch op {
	case OpLt:
		return event.Bool(c < 0)
	case OpLe:
		return event.Bool(c <= 0)
	case OpGt:
		return event.Bool(c > 0)
	default:
		return event.Bool(c >= 0)
	}
}

// containsValue applies `contains`: list membership when the left side is
// a list, substring match when both sides are strings.
func containsValue(lv, rv event.Value) event.Value {
	if list, ok := lv.AsList(); ok {
		if !rv.IsValid() {
			return event.Invalid
		}
		for _, e := range list {
			if e.Equal(rv) {
				return event.Bool(true)
			}
		}
		return event.Bool(false)
	}
	a, aok := lv.AsStr()
	b, bok := rv.AsStr()
	if !aok || !bok {
		return event.Invalid
	}
	return event.Bool(strings.Contains(a, b))
}

// inValue applies IN / NOT IN over a literal list (first match wins; an
// invalid probe is Invalid).
func inValue(v event.Value, lits []event.Value, negate bool) event.Value {
	if !v.IsValid() {
		return event.Invalid
	}
	for _, lv := range lits {
		if v.Equal(lv) {
			return event.Bool(!negate)
		}
	}
	return event.Bool(negate)
}

// likeMatcher is a pre-compiled SQL LIKE pattern: % matches any run
// (including empty), _ matches exactly one byte. Matching is byte-wise and
// case-sensitive. A struct (rather than a closure) so the shared-program
// interpreter can hold it in a node and scrubvet can chase match
// statically.
type likeMatcher struct {
	// chunks are the literal runs between % separators: the first anchors
	// the start, the last anchors the end, the middle ones float in order.
	chunks []string
}

// likeFor compiles the right-hand side of a LIKE, which must be a string
// literal.
func likeFor(r Node) (likeMatcher, error) {
	pat, ok := r.(Lit)
	if !ok {
		return likeMatcher{}, fmt.Errorf("expr: compile: like pattern must be a literal")
	}
	ps, ok := pat.Val.AsStr()
	if !ok {
		return likeMatcher{}, fmt.Errorf("expr: compile: like pattern must be a string")
	}
	return likeMatcher{chunks: strings.Split(ps, "%")}, nil
}

// match reports whether s matches the pattern.
func (m likeMatcher) match(s string) bool {
	chunks := m.chunks
	// Fast path: no % at all → exact match with _ wildcards.
	if len(chunks) == 1 {
		return matchChunk(s, chunks[0]) && len(s) == len(chunks[0])
	}
	// Anchor the first chunk.
	first := chunks[0]
	if len(s) < len(first) || !matchChunk(s[:len(first)], first) {
		return false
	}
	s = s[len(first):]
	// Anchor the last chunk.
	last := chunks[len(chunks)-1]
	if len(s) < len(last) || !matchChunk(s[len(s)-len(last):], last) {
		return false
	}
	tail := s[:len(s)-len(last)]
	// Middle chunks must appear in order.
	for _, c := range chunks[1 : len(chunks)-1] {
		if c == "" {
			continue
		}
		idx := indexChunk(tail, c)
		if idx < 0 {
			return false
		}
		tail = tail[idx+len(c):]
	}
	return true
}

// matchChunk reports whether s matches chunk exactly, where '_' in chunk
// matches any single byte. len(s) must equal len(chunk) for a match.
func matchChunk(s, chunk string) bool {
	if len(s) != len(chunk) {
		return false
	}
	for i := 0; i < len(chunk); i++ {
		if chunk[i] != '_' && chunk[i] != s[i] {
			return false
		}
	}
	return true
}

// indexChunk finds the first position where chunk (with '_' wildcards)
// matches inside s, or -1.
func indexChunk(s, chunk string) int {
	if len(chunk) == 0 {
		return 0
	}
	for i := 0; i+len(chunk) <= len(s); i++ {
		if matchChunk(s[i:i+len(chunk)], chunk) {
			return i
		}
	}
	return -1
}

// Predicate wraps an evaluator as a boolean filter: missing or non-boolean
// results reject the row, the NULL-filtering semantics of SQL WHERE.
func Predicate(e Evaluator) func(Row) bool {
	return func(r Row) bool {
		b, ok := e(r).AsBool()
		return ok && b
	}
}
