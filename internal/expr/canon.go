package expr

import (
	"bytes"
	"sort"

	"scrub/internal/event"
)

// Canonicalization rewrites a checked tree into a normal form under which
// semantically identical predicates — and their shared subexpressions —
// encode to identical bytes, so the shared-program builder (prog.go) can
// intern one node per distinct computation across many queries. Every
// rewrite below preserves per-row results exactly (see the notes on each),
// including the three-valued NULL semantics: a canonicalized predicate
// accepts and rejects precisely the same rows as the original.
//
// Rules applied:
//
//   - Constant folding: an all-literal subtree is replaced by its value,
//     evaluated by the same Compile used at query time (so folded
//     arithmetic is bit-identical to evaluated arithmetic). Subtrees that
//     fold to Invalid are left alone — they are rare, and keeping them
//     preserves encodability.
//   - and/or chains are flattened, deduplicated, and sorted by canonical
//     encoding. Safe because Kleene three-valued and/or are commutative,
//     associative, and idempotent: `and` is min and `or` is max over the
//     ordering false < invalid < true, which also makes the boolean
//     identity operand (true for and, false for or) removable and the
//     annihilator (false for and, true for or) a constant fold.
//   - +, *, = and != order their operands canonically. Int add/mul wrap
//     commutatively; IEEE float add/mul are commutative up to NaN payload,
//     which no Scrub operator observes (Equal/Compare/String treat all
//     NaNs alike); Value.Equal is symmetric. Chains of + and * are NOT
//     reassociated — float arithmetic is not associative.
//   - Ordering comparisons (<, <=, >, >=), -, /, %, like and contains are
//     not commutative and keep their operand order.
//   - in-lists are sorted by encoding and deduplicated; membership is a
//     first-match scan, so element order and duplicates are unobservable.
//
// Canon is control-plane code (query start/rebuild), never per-event.

// Canon returns the canonical form of a checked tree, or the tree
// unchanged if any part of it cannot be canonicalized (unresolved Call
// nodes, unencodable values). The input tree is not mutated.
func Canon(n Node) Node {
	c, err := canonNode(n)
	if err != nil {
		return n
	}
	return c
}

func canonNode(n Node) (Node, error) {
	switch t := n.(type) {
	case Lit, FieldRef:
		return n, nil

	case AggRef:
		if t.Arg != nil {
			arg, err := canonNode(t.Arg)
			if err != nil {
				return nil, err
			}
			t.Arg = arg
		}
		return t, nil

	case Unary:
		x, err := canonNode(t.X)
		if err != nil {
			return nil, err
		}
		t.X = x
		return foldConst(t), nil

	case In:
		x, err := canonNode(t.X)
		if err != nil {
			return nil, err
		}
		t.X = x
		list, err := canonList(t.List)
		if err != nil {
			return nil, err
		}
		t.List = list
		return foldConst(t), nil

	case Binary:
		switch t.Op {
		case OpAnd, OpOr:
			return canonBoolChain(t)
		case OpAdd, OpMul, OpEq, OpNe:
			l, err := canonNode(t.L)
			if err != nil {
				return nil, err
			}
			r, err := canonNode(t.R)
			if err != nil {
				return nil, err
			}
			lk, err := AppendNode(nil, l)
			if err != nil {
				return nil, err
			}
			rk, err := AppendNode(nil, r)
			if err != nil {
				return nil, err
			}
			if bytes.Compare(rk, lk) < 0 {
				l, r = r, l
			}
			t.L, t.R = l, r
			return foldConst(t), nil
		default:
			l, err := canonNode(t.L)
			if err != nil {
				return nil, err
			}
			r, err := canonNode(t.R)
			if err != nil {
				return nil, err
			}
			t.L, t.R = l, r
			return foldConst(t), nil
		}

	default: // Call, nil, future nodes: not canonicalizable
		return nil, errNotCanonical
	}
}

type canonErr string

func (e canonErr) Error() string { return string(e) }

const errNotCanonical = canonErr("expr: tree cannot be canonicalized")

// canonBoolChain flattens a same-operator and/or chain, canonicalizes and
// sorts the operands, drops identities and duplicates, and rebuilds a
// left-deep chain. Annihilators collapse the whole chain to a literal.
func canonBoolChain(b Binary) (Node, error) {
	var ops []Node
	if err := flattenBool(b.Op, b.L, &ops); err != nil {
		return nil, err
	}
	if err := flattenBool(b.Op, b.R, &ops); err != nil {
		return nil, err
	}
	// For `and`: false annihilates, true is the identity. For `or`,
	// the reverse.
	annihilator := b.Op == OpOr
	kept := ops[:0]
	for _, o := range ops {
		if l, ok := o.(Lit); ok {
			if bv, isBool := l.Val.AsBool(); isBool {
				if bv == annihilator {
					return Lit{Val: event.Bool(annihilator)}, nil
				}
				continue // identity operand: drop
			}
		}
		kept = append(kept, o)
	}
	if len(kept) == 0 {
		return Lit{Val: event.Bool(!annihilator)}, nil
	}
	keys := make([][]byte, len(kept))
	for i, o := range kept {
		k, err := AppendNode(nil, o)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	order := make([]int, len(kept))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return bytes.Compare(keys[order[i]], keys[order[j]]) < 0
	})
	var chain Node
	var prev []byte
	for _, idx := range order {
		if prev != nil && bytes.Equal(prev, keys[idx]) {
			continue // idempotent: drop duplicate operands
		}
		prev = keys[idx]
		if chain == nil {
			chain = kept[idx]
		} else {
			chain = Binary{Op: b.Op, L: chain, R: kept[idx]}
		}
	}
	return chain, nil
}

// flattenBool appends the canonicalized leaves of a same-operator chain
// to out, recursing through nested and/or nodes of the same operator
// (including ones produced by canonicalization itself).
func flattenBool(op Op, n Node, out *[]Node) error {
	if b, ok := n.(Binary); ok && b.Op == op {
		if err := flattenBool(op, b.L, out); err != nil {
			return err
		}
		return flattenBool(op, b.R, out)
	}
	c, err := canonNode(n)
	if err != nil {
		return err
	}
	if b, ok := c.(Binary); ok && b.Op == op {
		if err := flattenBool(op, b.L, out); err != nil {
			return err
		}
		return flattenBool(op, b.R, out)
	}
	*out = append(*out, c)
	return nil
}

// canonList sorts literal in-list elements by encoding and drops exact
// duplicates. Membership is first-match, so the rewrite is unobservable.
func canonList(list []Node) ([]Node, error) {
	keys := make([][]byte, len(list))
	for i, e := range list {
		k, err := AppendNode(nil, e)
		if err != nil {
			return nil, err
		}
		keys[i] = k
	}
	order := make([]int, len(list))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return bytes.Compare(keys[order[i]], keys[order[j]]) < 0
	})
	out := make([]Node, 0, len(list))
	var prev []byte
	for _, idx := range order {
		if prev != nil && bytes.Equal(prev, keys[idx]) {
			continue
		}
		prev = keys[idx]
		out = append(out, list[idx])
	}
	return out, nil
}

// foldConst replaces an all-literal subtree (whose children are already
// canonical) with its value, computed by the production evaluator so the
// fold cannot drift from runtime semantics. Trees whose value is Invalid
// are kept symbolic.
func foldConst(n Node) Node {
	if !constOnly(n) {
		return n
	}
	ev, err := Compile(n)
	if err != nil {
		return n
	}
	v := ev(nil) // no FieldRef/AggRef: the row is never consulted
	if !v.IsValid() {
		return n
	}
	return Lit{Val: v}
}

func constOnly(n Node) bool {
	ok := true
	Walk(n, func(x Node) bool {
		switch x.(type) {
		case FieldRef, AggRef, Call:
			ok = false
			return false
		}
		return true
	})
	return ok
}
