package expr

import (
	"strings"
	"testing"

	"scrub/internal/agg"
	"scrub/internal/event"
)

var bidSchema = event.MustSchema("bid",
	event.FieldDef{Name: "user_id", Kind: event.KindInt},
	event.FieldDef{Name: "city", Kind: event.KindString},
	event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
	event.FieldDef{Name: "won", Kind: event.KindBool},
	event.FieldDef{Name: "segments", Kind: event.KindList, Elem: event.KindInt},
)

var clickSchema = event.MustSchema("click",
	event.FieldDef{Name: "user_id", Kind: event.KindInt},
	event.FieldDef{Name: "line_item_id", Kind: event.KindInt},
)

func singleResolver() SchemaResolver {
	return SchemaResolver{Schemas: []*event.Schema{bidSchema}}
}

func joinResolver() SchemaResolver {
	return SchemaResolver{Schemas: []*event.Schema{bidSchema, clickSchema}}
}

func bidEvent(t *testing.T) *event.Event {
	t.Helper()
	return event.NewBuilder(bidSchema).
		SetRequestID(10).
		SetTimeNanos(1000).
		Int("user_id", 42).
		Str("city", "san jose").
		Float("bid_price", 1.5).
		Bool("won", true).
		MustBuild()
}

// evalOn type-checks, compiles, and evaluates n against a bid event.
func evalOn(t *testing.T, n Node) event.Value {
	t.Helper()
	checked, _, err := Check(n, singleResolver())
	if err != nil {
		t.Fatalf("Check(%s): %v", n, err)
	}
	ev, err := Compile(checked)
	if err != nil {
		t.Fatalf("Compile(%s): %v", n, err)
	}
	return ev(EventRow{Event: bidEvent(t)})
}

func TestFieldResolution(t *testing.T) {
	// Unqualified unique name resolves.
	n, k, err := Check(FieldRef{Name: "city"}, singleResolver())
	if err != nil || k != event.KindString {
		t.Fatalf("Check(city): %v, %v", k, err)
	}
	if f := n.(FieldRef); f.Type != "bid" {
		t.Errorf("resolved type = %q, want bid", f.Type)
	}
	// Ambiguous across join sides.
	if _, _, err := Check(FieldRef{Name: "user_id"}, joinResolver()); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous field error missing: %v", err)
	}
	// Qualification disambiguates.
	if _, k, err := Check(FieldRef{Type: "click", Name: "user_id"}, joinResolver()); err != nil || k != event.KindInt {
		t.Errorf("qualified field: %v, %v", k, err)
	}
	// System fields resolve anywhere, even in joins.
	if _, k, err := Check(FieldRef{Name: "request_id"}, joinResolver()); err != nil || k != event.KindInt {
		t.Errorf("request_id: %v, %v", k, err)
	}
	if _, k, err := Check(FieldRef{Name: "ts"}, singleResolver()); err != nil || k != event.KindTime {
		t.Errorf("ts: %v, %v", k, err)
	}
	// Unknowns.
	if _, _, err := Check(FieldRef{Name: "ghost"}, singleResolver()); err == nil {
		t.Error("unknown field should fail")
	}
	if _, _, err := Check(FieldRef{Type: "ghost", Name: "x"}, singleResolver()); err == nil {
		t.Error("unknown type should fail")
	}
	if _, _, err := Check(FieldRef{Type: "bid", Name: "ghost"}, singleResolver()); err == nil {
		t.Error("unknown qualified field should fail")
	}
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		n    Node
		want string
	}{
		{Binary{Op: OpAdd, L: Lit{event.Int(2)}, R: Lit{event.Int(3)}}, "5"},
		{Binary{Op: OpSub, L: Lit{event.Int(2)}, R: Lit{event.Int(5)}}, "-3"},
		{Binary{Op: OpMul, L: Lit{event.Int(4)}, R: FieldRef{Name: "bid_price"}}, "6"},
		{Binary{Op: OpDiv, L: Lit{event.Int(7)}, R: Lit{event.Int(2)}}, "3.5"},
		{Binary{Op: OpMod, L: Lit{event.Int(7)}, R: Lit{event.Int(3)}}, "1"},
		{Unary{Op: OpNeg, X: Lit{event.Int(9)}}, "-9"},
		{Unary{Op: OpNeg, X: FieldRef{Name: "bid_price"}}, "-1.5"},
		{Binary{Op: OpAdd, L: Lit{event.Float(0.5)}, R: Lit{event.Int(1)}}, "1.5"},
	}
	for _, tc := range cases {
		if got := evalOn(t, tc.n); got.String() != tc.want {
			t.Errorf("%s = %v, want %s", tc.n, got, tc.want)
		}
	}
}

func TestArithmeticTypeErrors(t *testing.T) {
	bad := []Node{
		Binary{Op: OpAdd, L: Lit{event.Str("x")}, R: Lit{event.Int(1)}},
		Binary{Op: OpMod, L: Lit{event.Float(1)}, R: Lit{event.Int(1)}},
		Unary{Op: OpNeg, X: Lit{event.Str("x")}},
		Unary{Op: OpNot, X: Lit{event.Int(1)}},
		Binary{Op: OpAnd, L: Lit{event.Bool(true)}, R: Lit{event.Int(1)}},
		Binary{Op: OpLike, L: Lit{event.Int(1)}, R: Lit{event.Str("%")}},
		Binary{Op: OpEq, L: Lit{event.Str("x")}, R: Lit{event.Int(1)}},
	}
	for _, n := range bad {
		if _, _, err := Check(n, singleResolver()); err == nil {
			t.Errorf("Check(%s) should fail", n)
		}
	}
}

func TestDivModByZero(t *testing.T) {
	if v := evalOn(t, Binary{Op: OpDiv, L: Lit{event.Int(1)}, R: Lit{event.Int(0)}}); v.IsValid() {
		t.Errorf("1/0 = %v, want Invalid", v)
	}
	if v := evalOn(t, Binary{Op: OpMod, L: Lit{event.Int(1)}, R: Lit{event.Int(0)}}); v.IsValid() {
		t.Errorf("1%%0 = %v, want Invalid", v)
	}
	if v := evalOn(t, Binary{Op: OpDiv, L: Lit{event.Float(1)}, R: Lit{event.Float(0)}}); v.IsValid() {
		t.Errorf("1.0/0.0 = %v, want Invalid", v)
	}
}

func TestComparisons(t *testing.T) {
	type tc struct {
		n    Node
		want bool
	}
	price := FieldRef{Name: "bid_price"}
	cases := []tc{
		{Binary{Op: OpEq, L: price, R: Lit{event.Float(1.5)}}, true},
		{Binary{Op: OpNe, L: price, R: Lit{event.Float(1.5)}}, false},
		{Binary{Op: OpLt, L: price, R: Lit{event.Int(2)}}, true},
		{Binary{Op: OpLe, L: price, R: Lit{event.Float(1.5)}}, true},
		{Binary{Op: OpGt, L: price, R: Lit{event.Int(1)}}, true},
		{Binary{Op: OpGe, L: price, R: Lit{event.Int(2)}}, false},
		{Binary{Op: OpEq, L: FieldRef{Name: "city"}, R: Lit{event.Str("san jose")}}, true},
	}
	for _, c := range cases {
		got, ok := evalOn(t, c.n).AsBool()
		if !ok || got != c.want {
			t.Errorf("%s = %v, %v; want %v", c.n, got, ok, c.want)
		}
	}
}

func TestBooleanNullSemantics(t *testing.T) {
	// Comparisons against missing fields yield Invalid; AND/OR shortcut.
	missing := Binary{Op: OpEq, L: FieldRef{Name: "city"}, R: Lit{event.Str("x")}}
	ev := event.NewBuilder(bidSchema).Int("user_id", 1).SetTimeNanos(1).MustBuild() // city unset

	checked, _, err := Check(Binary{Op: OpAnd, L: missing, R: Lit{event.Bool(false)}}, singleResolver())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := Compile(checked)
	if v := e(EventRow{Event: ev}); !v.IsValid() || v.String() != "false" {
		t.Errorf("invalid AND false = %v, want false", v)
	}

	checked, _, _ = Check(Binary{Op: OpOr, L: missing, R: Lit{event.Bool(true)}}, singleResolver())
	e, _ = Compile(checked)
	if v := e(EventRow{Event: ev}); v.String() != "true" {
		t.Errorf("invalid OR true = %v, want true", v)
	}

	checked, _, _ = Check(Binary{Op: OpAnd, L: missing, R: Lit{event.Bool(true)}}, singleResolver())
	e, _ = Compile(checked)
	if v := e(EventRow{Event: ev}); v.IsValid() {
		t.Errorf("invalid AND true = %v, want Invalid", v)
	}

	// Predicate() drops rows with Invalid results.
	p := Predicate(e)
	if p(EventRow{Event: ev}) {
		t.Error("Predicate should reject Invalid")
	}
}

func TestInList(t *testing.T) {
	in := In{X: FieldRef{Name: "user_id"}, List: []Node{Lit{event.Int(1)}, Lit{event.Int(42)}}}
	if got, _ := evalOn(t, in).AsBool(); !got {
		t.Error("42 in (1, 42) should be true")
	}
	notIn := In{X: FieldRef{Name: "user_id"}, List: []Node{Lit{event.Int(1)}}, Negate: true}
	if got, _ := evalOn(t, notIn).AsBool(); !got {
		t.Error("42 not in (1) should be true")
	}
	// Type errors.
	if _, _, err := Check(In{X: FieldRef{Name: "user_id"}, List: []Node{Lit{event.Str("x")}}}, singleResolver()); err == nil {
		t.Error("kind-mismatched in-list should fail")
	}
	if _, _, err := Check(In{X: FieldRef{Name: "user_id"}, List: nil}, singleResolver()); err == nil {
		t.Error("empty in-list should fail")
	}
	if _, _, err := Check(In{X: FieldRef{Name: "user_id"}, List: []Node{FieldRef{Name: "user_id"}}}, singleResolver()); err == nil {
		t.Error("non-literal in-list should fail")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"san jose", "san%", true},
		{"san jose", "%jose", true},
		{"san jose", "%an j%", true},
		{"san jose", "san_jose", true},
		{"san jose", "s%j%e", true},
		{"san jose", "jose%", false},
		{"san jose", "san jose", true},
		{"san jose", "san", false},
		{"", "%", true},
		{"", "_", false},
		{"abc", "a%b%c%", true},
		{"ab", "a_c", false},
	}
	for _, c := range cases {
		m := likeMatcher{chunks: strings.Split(c.pat, "%")}
		if got := m.match(c.s); got != c.want {
			t.Errorf("like(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	// Through the full pipeline.
	n := Binary{Op: OpLike, L: FieldRef{Name: "city"}, R: Lit{event.Str("san%")}}
	if got, _ := evalOn(t, n).AsBool(); !got {
		t.Error("city like 'san%' should match")
	}
	// Non-literal pattern rejected.
	if _, _, err := Check(Binary{Op: OpLike, L: FieldRef{Name: "city"}, R: FieldRef{Name: "city"}}, singleResolver()); err == nil {
		t.Error("non-literal like pattern should fail")
	}
}

func TestContains(t *testing.T) {
	n := Binary{Op: OpContains, L: FieldRef{Name: "city"}, R: Lit{event.Str("jose")}}
	if got, _ := evalOn(t, n).AsBool(); !got {
		t.Error("contains failed")
	}
}

func TestCallsRejected(t *testing.T) {
	if _, _, err := Check(Call{Name: "COUNT", Star: true}, singleResolver()); err == nil {
		t.Error("aggregate call should be rejected by Check")
	}
	if _, _, err := Check(Call{Name: "frobnicate"}, singleResolver()); err == nil {
		t.Error("unknown function should be rejected")
	}
	if _, err := Compile(Call{Name: "COUNT"}); err == nil {
		t.Error("Compile of Call should fail")
	}
}

func TestAggRef(t *testing.T) {
	a := AggRef{Index: 0, Spec: agg.Spec{Kind: agg.KindAvg}, Arg: FieldRef{Name: "bid_price"}}
	n := Binary{Op: OpMul, L: Lit{event.Int(1000)}, R: a}
	checked, k, err := Check(n, singleResolver())
	if err != nil || k != event.KindFloat {
		t.Fatalf("Check(1000*AVG): %v, %v", k, err)
	}
	e, err := Compile(checked)
	if err != nil {
		t.Fatal(err)
	}
	row := aggRow{vals: []event.Value{event.Float(0.0025)}}
	if got, _ := e(row).AsFloat(); got != 2.5 {
		t.Errorf("1000*AVG = %v", e(row))
	}
	// Result kinds per aggregate.
	kinds := map[agg.Kind]event.Kind{
		agg.KindCountStar:     event.KindInt,
		agg.KindCount:         event.KindInt,
		agg.KindCountDistinct: event.KindInt,
		agg.KindAvg:           event.KindFloat,
		agg.KindTopK:          event.KindList,
	}
	for ak, want := range kinds {
		_, k, err := Check(AggRef{Spec: agg.Spec{Kind: ak}, Arg: FieldRef{Name: "user_id"}}, singleResolver())
		if err != nil || k != want {
			t.Errorf("agg %v result kind = %v, %v; want %v", ak, k, err, want)
		}
	}
	// SUM/MIN/MAX inherit arg kind.
	_, k, _ = Check(AggRef{Spec: agg.Spec{Kind: agg.KindSum}, Arg: FieldRef{Name: "bid_price"}}, singleResolver())
	if k != event.KindFloat {
		t.Errorf("SUM(float) kind = %v", k)
	}
	_, k, _ = Check(AggRef{Spec: agg.Spec{Kind: agg.KindMin}, Arg: FieldRef{Name: "city"}}, singleResolver())
	if k != event.KindString {
		t.Errorf("MIN(string) kind = %v", k)
	}
	// SUM of a string is rejected.
	if _, _, err := Check(AggRef{Spec: agg.Spec{Kind: agg.KindSum}, Arg: FieldRef{Name: "city"}}, singleResolver()); err == nil {
		t.Error("SUM(string) should fail")
	}
	// SUM without argument is rejected.
	if _, _, err := Check(AggRef{Spec: agg.Spec{Kind: agg.KindSum}}, singleResolver()); err == nil {
		t.Error("SUM without arg should fail")
	}
}

type aggRow struct{ vals []event.Value }

func (aggRow) Field(string, string) event.Value { return event.Invalid }
func (r aggRow) Agg(i int) event.Value {
	if i < 0 || i >= len(r.vals) {
		return event.Invalid
	}
	return r.vals[i]
}

func TestEventRowTypeQualification(t *testing.T) {
	ev := bidEvent(t)
	r := EventRow{Event: ev}
	if v := r.Field("bid", "city"); v.String() != "san jose" {
		t.Errorf("qualified field = %v", v)
	}
	if v := r.Field("", "city"); v.String() != "san jose" {
		t.Errorf("unqualified field = %v", v)
	}
	if v := r.Field("click", "user_id"); v.IsValid() {
		t.Error("wrong-type qualifier should be Invalid")
	}
	if r.Agg(0).IsValid() {
		t.Error("EventRow.Agg should be Invalid")
	}
}

func TestFieldsAndWalk(t *testing.T) {
	n := Binary{Op: OpAnd,
		L: Binary{Op: OpGt, L: FieldRef{Name: "bid_price"}, R: Lit{event.Int(1)}},
		R: In{X: FieldRef{Name: "city"}, List: []Node{Lit{event.Str("sf")}}},
	}
	fs := Fields(n)
	if len(fs) != 2 || fs[0].Name != "bid_price" || fs[1].Name != "city" {
		t.Errorf("Fields = %v", fs)
	}
	// Duplicates collapse.
	dup := Binary{Op: OpAdd, L: FieldRef{Name: "user_id"}, R: FieldRef{Name: "user_id"}}
	if got := Fields(dup); len(got) != 1 {
		t.Errorf("duplicate Fields = %v", got)
	}
}

func TestHasAggregate(t *testing.T) {
	if !HasAggregate(Call{Name: "COUNT", Star: true}) {
		t.Error("COUNT(*) call should be detected")
	}
	if !HasAggregate(Binary{Op: OpMul, L: Lit{event.Int(2)}, R: AggRef{Spec: agg.Spec{Kind: agg.KindSum}}}) {
		t.Error("nested AggRef should be detected")
	}
	if HasAggregate(FieldRef{Name: "x"}) {
		t.Error("field ref is not an aggregate")
	}
}

func TestNodeStrings(t *testing.T) {
	cases := map[string]Node{
		`"x"`:             Lit{event.Str("x")},
		"3":               Lit{event.Int(3)},
		"bid.city":        FieldRef{Type: "bid", Name: "city"},
		"(not won)":       Unary{Op: OpNot, X: FieldRef{Name: "won"}},
		"(a = 1)":         Binary{Op: OpEq, L: FieldRef{Name: "a"}, R: Lit{event.Int(1)}},
		"(a in (1, 2))":   In{X: FieldRef{Name: "a"}, List: []Node{Lit{event.Int(1)}, Lit{event.Int(2)}}},
		"(a not in (1))":  In{X: FieldRef{Name: "a"}, List: []Node{Lit{event.Int(1)}}, Negate: true},
		"COUNT(*)":        Call{Name: "COUNT", Star: true},
		"SUM(x)":          Call{Name: "SUM", Args: []Node{FieldRef{Name: "x"}}},
		"agg[0]:COUNT(*)": AggRef{Spec: agg.Spec{Kind: agg.KindCountStar}},
		"agg[1]:SUM(x)":   AggRef{Index: 1, Spec: agg.Spec{Kind: agg.KindSum}, Arg: FieldRef{Name: "x"}},
	}
	for want, n := range cases {
		if got := n.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func BenchmarkPredicateEval(b *testing.B) {
	n := Binary{Op: OpAnd,
		L: Binary{Op: OpGt, L: FieldRef{Name: "bid_price"}, R: Lit{event.Float(1.0)}},
		R: Binary{Op: OpEq, L: FieldRef{Name: "city"}, R: Lit{event.Str("san jose")}},
	}
	checked, _, err := Check(n, SchemaResolver{Schemas: []*event.Schema{bidSchema}})
	if err != nil {
		b.Fatal(err)
	}
	e, err := Compile(checked)
	if err != nil {
		b.Fatal(err)
	}
	p := Predicate(e)
	ev := event.NewBuilder(bidSchema).
		Int("user_id", 42).Str("city", "san jose").Float("bid_price", 1.5).
		SetTimeNanos(1).MustBuild()
	row := EventRow{Event: ev}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !p(row) {
			b.Fatal("predicate should pass")
		}
	}
}

func TestContainsOnLists(t *testing.T) {
	n := Binary{Op: OpContains, L: FieldRef{Name: "segments"}, R: Lit{event.Int(2)}}
	checked, k, err := Check(n, singleResolver())
	if err != nil || k != event.KindBool {
		t.Fatalf("Check(list contains): %v, %v", k, err)
	}
	e, err := Compile(checked)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.NewBuilder(bidSchema).
		Set("segments", event.IntList(1, 2, 3)).SetTimeNanos(1).MustBuild()
	if got, _ := e(EventRow{Event: ev}).AsBool(); !got {
		t.Error("[1 2 3] contains 2 should be true")
	}
	n2 := Binary{Op: OpContains, L: FieldRef{Name: "segments"}, R: Lit{event.Int(9)}}
	checked2, _, _ := Check(n2, singleResolver())
	e2, _ := Compile(checked2)
	if got, _ := e2(EventRow{Event: ev}).AsBool(); got {
		t.Error("[1 2 3] contains 9 should be false")
	}
	// Missing list field → Invalid.
	empty := event.NewBuilder(bidSchema).SetTimeNanos(1).MustBuild()
	if e2(EventRow{Event: empty}).IsValid() {
		t.Error("contains on missing list should be Invalid")
	}
	// List on the right is rejected.
	bad := Binary{Op: OpContains, L: FieldRef{Name: "segments"}, R: FieldRef{Name: "segments"}}
	if _, _, err := Check(bad, singleResolver()); err == nil {
		t.Error("list contains list should fail")
	}
}

func TestOpStringsComplete(t *testing.T) {
	for op := OpAdd; op <= OpContains; op++ {
		if op.String() == "?" {
			t.Errorf("op %d has no spelling", op)
		}
	}
	if OpInvalid.String() != "?" {
		t.Error("invalid op should render ?")
	}
}
