// Package obs is Scrub's self-observability layer: counters, gauges, and
// fixed-bucket histograms whose update paths are single atomic operations
// (zero allocations, no locks), plus a registry that exposes them in the
// Prometheus text format.
//
// The design constraint is the same one that shaped the host agent: Scrub
// lives inside mission-critical request paths, so *measuring* Scrub must
// not cost more than Scrub itself. Metrics are therefore plain structs
// whose zero value is ready to use — hot paths update a field the owner
// allocated once at setup, and registration (which takes a lock and builds
// strings) happens only at construction time, never per update.
//
// Naming scheme (see DESIGN.md): every series is `scrub_<component>_<what>`
// with Prometheus unit suffixes (`_total` for counters, `_ns` for
// nanosecond histograms). Per-host and per-query dimensions are labels,
// attached at registration: `scrub_host_logged_total{host="web-42"}`.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; updates are a single atomic add.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
//
//scrub:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// IncValue adds 1 and returns the new count — still one atomic op, for
// hot paths that derive a sampling decision from the count (time every
// Nth event) without paying for a second counter.
//
//scrub:hotpath
func (c *Counter) IncValue() uint64 { return c.v.Add(1) }

// Add adds n.
//
//scrub:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; updates are a single atomic store or add.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
//
//scrub:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
//
//scrub:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed ascending buckets. Observe is
// a linear scan over the bounds (bucket counts are small and cache-hot)
// plus two atomic adds and a CAS loop for the float sum — no allocation,
// no lock. Construct with NewHistogram; the bound slice is immutable
// after construction so concurrent Observe needs no synchronization
// beyond the per-bucket atomics.
type Histogram struct {
	bounds []float64 // ascending upper bounds; implicit +Inf bucket after
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram creates a histogram with the given strictly ascending
// bucket upper bounds. A final +Inf bucket is implicit.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//scrub:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n strictly ascending bounds start, start·factor, …
// — the usual shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Label is one metric dimension, rendered as key="value".
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type kind uint8

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

type series struct {
	labels string // pre-rendered `k1="v1",k2="v2"` (empty for none)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

type family struct {
	name   string
	help   string
	kind   kind
	series map[string]*series
}

// Registry holds metric families for exposition. All methods are safe for
// concurrent use, but they take a lock and build strings — call them at
// setup time, keep the returned metric, and update that on hot paths.
//
// Registration is get-or-create on (name, labels): asking twice for the
// same series returns the same instance, so components that are
// constructed repeatedly in one process (tests, local clusters) do not
// collide. Registering an *existing* instance under a live key replaces
// the old one (a restarted component takes over its series). Registering
// a name under a different kind panics — that is a programming error, not
// a runtime condition.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func (r *Registry) familyLocked(name, help string, k kind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, k))
	}
	return f
}

// Counter returns the counter registered under (name, labels), creating
// it if needed.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, counterKind)
	if s, ok := f.series[ls]; ok {
		return s.c
	}
	c := &Counter{}
	f.series[ls] = &series{labels: ls, c: c}
	return c
}

// Gauge returns the gauge registered under (name, labels), creating it
// if needed.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, gaugeKind)
	if s, ok := f.series[ls]; ok {
		return s.g
	}
	g := &Gauge{}
	f.series[ls] = &series{labels: ls, g: g}
	return g
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given bounds if needed (bounds are ignored when
// the series already exists).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, histogramKind)
	if s, ok := f.series[ls]; ok {
		return s.h
	}
	h := NewHistogram(bounds)
	f.series[ls] = &series{labels: ls, h: h}
	return h
}

// RegisterCounter attaches an existing counter (e.g. a field of a
// component's metric struct) under (name, labels), replacing any previous
// instance at that key.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, counterKind)
	f.series[ls] = &series{labels: ls, c: c}
}

// RegisterGauge attaches an existing gauge under (name, labels).
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, gaugeKind)
	f.series[ls] = &series{labels: ls, g: g}
}

// RegisterHistogram attaches an existing histogram under (name, labels).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, histogramKind)
	f.series[ls] = &series{labels: ls, h: h}
}

// Unregister removes the series at (name, labels); the family disappears
// with its last series. Used when a dynamic dimension (a per-query label)
// ends.
func (r *Registry) Unregister(name string, labels ...Label) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return
	}
	delete(f.series, ls)
	if len(f.series) == 0 {
		delete(r.families, name)
	}
}

// Sample is one flattened series value (histograms contribute their sum
// and count). Used by tests and experiments to read a registry without
// parsing exposition text.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Snapshot returns every series as flattened samples, sorted by name then
// labels.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for _, f := range r.families {
		for _, s := range f.series {
			switch f.kind {
			case counterKind:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: float64(s.c.Value())})
			case gaugeKind:
				out = append(out, Sample{Name: f.name, Labels: s.labels, Value: float64(s.g.Value())})
			case histogramKind:
				out = append(out, Sample{Name: f.name + "_sum", Labels: s.labels, Value: s.h.Sum()})
				out = append(out, Sample{Name: f.name + "_count", Labels: s.labels, Value: float64(s.h.Count())})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Labels < out[j].Labels
	})
	return out
}

// WriteText writes the registry in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, series sorted by label string,
// one # HELP and # TYPE line per family.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot under the lock, render outside it.
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(f.help)
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, k := range keys {
			s := f.series[k]
			switch f.kind {
			case counterKind:
				writeSeries(&b, f.name, "", s.labels, "", strconv.FormatUint(s.c.Value(), 10))
			case gaugeKind:
				writeSeries(&b, f.name, "", s.labels, "", strconv.FormatInt(s.g.Value(), 10))
			case histogramKind:
				var cum uint64
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					le := `le="` + strconv.FormatFloat(bound, 'g', -1, 64) + `"`
					writeSeries(&b, f.name, "_bucket", s.labels, le, strconv.FormatUint(cum, 10))
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				writeSeries(&b, f.name, "_bucket", s.labels, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSeries(&b, f.name, "_sum", s.labels, "", strconv.FormatFloat(s.h.Sum(), 'g', -1, 64))
				writeSeries(&b, f.name, "_count", s.labels, "", strconv.FormatUint(s.h.Count(), 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSeries(b *strings.Builder, name, suffix, labels, extra, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}
