package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-10)
	if g.Value() != -3 {
		t.Fatalf("gauge = %d, want -3", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-556.5) > 1e-9 {
		t.Fatalf("sum = %g, want 556.5", got)
	}
	want := []uint64{2, 1, 1, 1} // (..1], (1..10], (10..100], (100..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Observe(float64(i % 700))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Fatalf("count = %d, want 80000", h.Count())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("scrub_test_total", "help", L("host", "h1"))
	b := r.Counter("scrub_test_total", "help", L("host", "h1"))
	if a != b {
		t.Fatal("get-or-create returned distinct instances for the same series")
	}
	c := r.Counter("scrub_test_total", "help", L("host", "h2"))
	if a == c {
		t.Fatal("distinct labels returned the same instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("scrub_test_total", "help")
}

func TestRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	c1.Add(5)
	c2.Add(9)
	r.RegisterCounter("scrub_replace_total", "h", &c1)
	r.RegisterCounter("scrub_replace_total", "h", &c2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scrub_replace_total 9\n") {
		t.Fatalf("replacement not visible:\n%s", b.String())
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrub_b_total", "second", L("host", "h1")).Add(3)
	r.Gauge("scrub_a_depth", "first").Set(-2)
	h := r.Histogram("scrub_c_ns", "third", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP scrub_a_depth first
# TYPE scrub_a_depth gauge
scrub_a_depth -2
# HELP scrub_b_total second
# TYPE scrub_b_total counter
scrub_b_total{host="h1"} 3
# HELP scrub_c_ns third
# TYPE scrub_c_ns histogram
scrub_c_ns_bucket{le="1"} 1
scrub_c_ns_bucket{le="2"} 2
scrub_c_ns_bucket{le="+Inf"} 3
scrub_c_ns_sum 11
scrub_c_ns_count 3
`
	if got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	// No duplicate series names within the page.
	seen := map[string]bool{}
	for _, line := range strings.Split(got, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrub_q_total", "h", L("query", "1")).Add(1)
	r.Counter("scrub_q_total", "h", L("query", "2")).Add(2)
	r.Unregister("scrub_q_total", L("query", "1"))
	var b strings.Builder
	_ = r.WriteText(&b)
	if strings.Contains(b.String(), `query="1"`) {
		t.Fatal("unregistered series still exposed")
	}
	if !strings.Contains(b.String(), `query="2"`) {
		t.Fatal("sibling series lost")
	}
	r.Unregister("scrub_q_total", L("query", "2"))
	b.Reset()
	_ = r.WriteText(&b)
	if strings.Contains(b.String(), "scrub_q_total") {
		t.Fatal("empty family still exposed")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrub_s_total", "h", L("host", "a")).Add(4)
	h := r.Histogram("scrub_s_ns", "h", []float64{10})
	h.Observe(3)
	samples := r.Snapshot()
	byName := map[string]float64{}
	for _, s := range samples {
		byName[s.Name] = s.Value
	}
	if byName["scrub_s_total"] != 4 || byName["scrub_s_ns_count"] != 1 || byName["scrub_s_ns_sum"] != 3 {
		t.Fatalf("snapshot wrong: %+v", samples)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("scrub_http_total", "h").Inc()
	srv := httptest.NewServer(ServeMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "scrub_http_total 1") {
		t.Fatalf("metrics page missing series: %s", buf[:n])
	}
	pp, err := srv.Client().Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != 200 {
		t.Fatalf("pprof cmdline status %d", pp.StatusCode)
	}
}

// The whole point of obs: updates must not allocate.
func TestUpdateAllocs(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(1000, func() { g.Set(5) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op", n)
	}
	h := NewHistogram(ExpBuckets(100, 4, 12))
	v := 0.0
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 97 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}
