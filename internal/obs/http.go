package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry as Prometheus text.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// ServeMux builds the daemon observability mux: /metrics for the registry
// plus the standard net/http/pprof endpoints under /debug/pprof/.
func ServeMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve listens on addr (use host:0 for an ephemeral port) and serves
// ServeMux(r) in a background goroutine for the life of the process,
// returning the bound address. Daemons print that address so tooling
// (scripts/metricssmoke) can find an ephemerally bound endpoint.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, ServeMux(r)) }()
	return ln.Addr().String(), nil
}
