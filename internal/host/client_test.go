package host

import (
	"context"
	"sync"
	"testing"
	"time"

	"scrub/internal/transport"
)

// fakeCentral accepts data connections and records hellos + batches.
type fakeCentral struct {
	l       *transport.Listener
	mu      sync.Mutex
	hellos  []string
	batches []transport.TupleBatch
}

func newFakeCentral(t *testing.T) *fakeCentral {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeCentral{l: l}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					fc.mu.Lock()
					switch m := msg.(type) {
					case transport.DataHello:
						fc.hellos = append(fc.hellos, m.HostID)
					case transport.TupleBatch:
						fc.batches = append(fc.batches, m)
					}
					fc.mu.Unlock()
				}
			}()
		}
	}()
	return fc
}

func (fc *fakeCentral) counts() (hellos, batches int) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return len(fc.hellos), len(fc.batches)
}

func TestNetSinkHelloAndShip(t *testing.T) {
	fc := newFakeCentral(t)
	sink := NewNetSink(fc.l.Addr(), "h-7")
	defer sink.Close()

	if err := sink.SendBatch(transport.TupleBatch{QueryID: 1, HostID: "h-7"}); err != nil {
		t.Fatal(err)
	}
	if err := sink.SendBatch(transport.TupleBatch{QueryID: 1, HostID: "h-7"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		hellos, batches := fc.counts()
		if hellos == 1 && batches == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hellos=%d batches=%d, want 1/2", hellos, batches)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNetSinkRedialsAfterFailure(t *testing.T) {
	fc := newFakeCentral(t)
	sink := NewNetSink(fc.l.Addr(), "h-8")
	defer sink.Close()
	if err := sink.SendBatch(transport.TupleBatch{QueryID: 1}); err != nil {
		t.Fatal(err)
	}
	// Kill the connection from the sink side; the next send must redial
	// (first send may fail — drop-not-retry is the contract — but a
	// subsequent one succeeds).
	sink.Close()
	var ok bool
	for i := 0; i < 10; i++ {
		if err := sink.SendBatch(transport.TupleBatch{QueryID: 2}); err == nil {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		t.Fatal("sink never recovered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		hellos, _ := fc.counts()
		if hellos == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expected a second DataHello after redial, got %d", hellos)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNetSinkUnreachable(t *testing.T) {
	// Nothing listens on port 1.
	sink := NewNetSinkWith("127.0.0.1:1", "h", NetSinkOptions{DialTimeout: 50 * time.Millisecond})
	if err := sink.SendBatch(transport.TupleBatch{QueryID: 1}); err == nil {
		t.Fatal("send to unreachable central should fail (and be counted by the agent)")
	}
}

func TestRunControlAppliesQueryObjects(t *testing.T) {
	// A fake query server: accepts the agent's registration, pushes a
	// HostQuery, later a StopQuery.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	registered := make(chan transport.RegisterHost, 1)
	conns := make(chan *transport.Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		registered <- msg.(transport.RegisterHost)
		conns <- conn
	}()

	a := newAgent(t, &collectSink{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.RunControl(ctx, l.Addr()) }()

	var reg transport.RegisterHost
	select {
	case reg = <-registered:
	case <-time.After(3 * time.Second):
		t.Fatal("agent never registered")
	}
	if reg.HostID != "h1" || reg.Service != "BidServers" || reg.DC != "DC1" {
		t.Fatalf("registration = %+v", reg)
	}
	conn := <-conns
	defer conn.Close()

	if err := conn.Send(transport.HostQuery{QueryID: 9, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(a.ActiveQueries()) == 1 })

	// Ping/Pong keepalive.
	if err := conn.Send(transport.Ping{Nonce: 5}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := msg.(transport.Pong); !ok || p.Nonce != 5 {
		t.Fatalf("got %s", transport.Name(msg))
	}

	if err := conn.Send(transport.StopQuery{QueryID: 9}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(a.ActiveQueries()) == 0 })

	cancel()
}

func TestRunControlReconnects(t *testing.T) {
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	registrations := make(chan struct{}, 4)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := conn.Recv(); err != nil {
					return
				}
				registrations <- struct{}{}
				// Drop the connection immediately: the agent must retry.
			}()
		}
	}()

	a := newAgent(t, &collectSink{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = a.RunControl(ctx, l.Addr()) }()

	for i := 0; i < 2; i++ {
		select {
		case <-registrations:
		case <-time.After(5 * time.Second):
			t.Fatalf("registration %d never arrived (no reconnect?)", i+1)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
