package host

import (
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/replay"
	"scrub/internal/transport"
)

// newRecordingAgent wires an agent to a fresh in-memory record stream.
func newRecordingAgent(t *testing.T, sink Sink) (*Agent, *replay.Store) {
	t.Helper()
	rs, err := replay.Open(replay.Options{Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	a := newAgent(t, sink, func(c *Config) { c.Record = rs })
	return a, rs
}

// waitReplayDone polls the sink until a batch carrying the ReplayDone
// marker arrives, then returns everything shipped so far.
func waitReplayDone(t *testing.T, sink *collectSink) []transport.TupleBatch {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, b := range sink.all() {
			if b.ReplayDone {
				return sink.all()
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("replay done marker never shipped")
	return nil
}

// replayTuples extracts the historical tuples (nonzero epoch) in ship
// order.
func replayTuples(batches []transport.TupleBatch) []transport.Tuple {
	var out []transport.Tuple
	for _, b := range batches {
		if b.ReplayEpoch != 0 {
			out = append(out, b.Tuples...)
		}
	}
	return out
}

func TestReplayShipsRecordedHistory(t *testing.T) {
	sink := &collectSink{}
	a, _ := newRecordingAgent(t, sink)

	// History logged before any query exists: nothing ships live, but the
	// record stream keeps it.
	now := time.Now().UnixNano()
	a.Log(bidEvent(1, 42, "sf", 2.0, now-int64(3*time.Second)))
	a.Log(bidEvent(2, 43, "la", 0.5, now-int64(2*time.Second))) // predicate will reject
	a.Log(bidEvent(3, 44, "ny", 1.5, now-int64(time.Second)))
	a.Flush()
	if got := sink.tuples(); len(got) != 0 {
		t.Fatalf("no queries yet but %d tuples shipped", len(got))
	}

	err := a.Start(transport.HostQuery{
		QueryID:   1,
		EventType: "bid",
		Pred: expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"},
			R: expr.Lit{Val: event.Float(1.0)}},
		Columns:     []string{"user_id"},
		ReplayNanos: int64(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}

	batches := waitReplayDone(t, sink)
	got := replayTuples(batches)
	if len(got) != 2 {
		t.Fatalf("replayed %d tuples, want 2: %+v", len(got), got)
	}
	if got[0].RequestID != 1 || got[1].RequestID != 3 {
		t.Errorf("request ids = %d, %d (want 1, 3 in record order)", got[0].RequestID, got[1].RequestID)
	}
	// Projection applies to history exactly as it does live.
	if len(got[0].Values) != 1 {
		t.Fatalf("projected %d values, want 1", len(got[0].Values))
	}
	if v, _ := got[0].Values[0].AsInt(); v != 42 {
		t.Errorf("user_id = %v", got[0].Values[0])
	}
	// Every historical batch carries the epoch; exactly one the marker.
	done := 0
	for _, b := range batches {
		if b.ReplayDone {
			done++
			if b.ReplayEpoch == 0 {
				t.Error("done marker must carry the replay epoch")
			}
		}
	}
	if done != 1 {
		t.Errorf("done markers = %d, want 1", done)
	}
	// Replayed matches fold into the cumulative counters central scales by.
	st := a.Stats()
	if st.Matched != 2 {
		t.Errorf("matched = %d, want 2", st.Matched)
	}
}

func TestReplayEmptyHistorySendsMarker(t *testing.T) {
	// A query whose replay span holds nothing still owes central the done
	// marker, or the replay hold would wait out its full deadline.
	sink := &collectSink{}
	a, _ := newRecordingAgent(t, sink)
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", ReplayNanos: int64(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
	batches := waitReplayDone(t, sink)
	if got := replayTuples(batches); len(got) != 0 {
		t.Errorf("empty history replayed %d tuples", len(got))
	}
}

func TestReplayWithoutStoreShipsNothing(t *testing.T) {
	// ReplayNanos on an agent that never recorded is a silent no-op:
	// central's hold deadline covers hosts with nothing to contribute.
	sink := &collectSink{}
	a := newAgent(t, sink)
	a.Log(bidEvent(1, 42, "sf", 2.0, time.Now().UnixNano()-int64(time.Second)))
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", ReplayNanos: int64(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
	a.Flush()
	time.Sleep(30 * time.Millisecond)
	for _, b := range sink.all() {
		if b.ReplayEpoch != 0 || b.ReplayDone {
			t.Fatalf("agent without a record stream shipped a replay batch: %+v", b)
		}
	}
}

func TestReplayStopAbortsScan(t *testing.T) {
	// Stopping a query mid-replay must not leave historical tuples of a
	// dead query in flight; the scan aborts and skips its marker.
	sink := &collectSink{}
	a, _ := newRecordingAgent(t, sink)
	now := time.Now().UnixNano()
	for i := uint64(1); i <= 100; i++ {
		a.Log(bidEvent(i, int64(i), "sf", 2.0, now-int64(time.Second)))
	}
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", Columns: []string{"user_id"},
		ReplayNanos: int64(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
	a.Stop(1)
	a.Flush()
	time.Sleep(30 * time.Millisecond)
	// Raciness is inherent (the scan may finish before Stop lands), so
	// only the invariant is checked: a stopped query's replay either ran
	// to completion with a marker, or aborted without shipping more.
	all := sink.all()
	n := len(replayTuples(all))
	if n > 100 {
		t.Errorf("replayed %d tuples from 100 recorded", n)
	}
}

func TestReplayMetricsCharged(t *testing.T) {
	sink := &collectSink{}
	a, _ := newRecordingAgent(t, sink)
	now := time.Now().UnixNano()
	a.Log(bidEvent(1, 42, "sf", 2.0, now-int64(time.Second)))
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", Columns: []string{"user_id"},
		ReplayNanos: int64(time.Minute),
	}); err != nil {
		t.Fatal(err)
	}
	waitReplayDone(t, sink)
	if n := a.replayShipped.Value(); n != 1 {
		t.Errorf("scrub_host_replay_shipped_total = %d, want 1", n)
	}
	if b := a.replayShipBytes.Value(); b == 0 {
		t.Error("scrub_host_replay_ship_bytes_total = 0, want > 0")
	}
}
