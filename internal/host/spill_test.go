package host

import (
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/transport"
)

func oneTupleBatch(queryID uint64, v int64) transport.TupleBatch {
	return transport.TupleBatch{
		QueryID: queryID, HostID: "h9", TypeIdx: 0,
		Tuples: []transport.Tuple{{RequestID: uint64(v), TsNanos: v, Values: []event.Value{event.Int(v)}}},
	}
}

// TestNetSinkSpillRedelivers covers the disconnect arc: sends during an
// outage spill (bounded, oldest evicted into the drop accounting, deep
// copies so recycled agent memory can't corrupt them), and a reconnect
// drains the survivors in order before new data.
func TestNetSinkSpillRedelivers(t *testing.T) {
	// Reserve an address, then shut the listener so dials fail.
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr()
	l.Close()

	var mu sync.Mutex
	dropped := make(map[uint64]uint64) // queryID -> tuples
	sink := NewNetSinkWith(addr, "h9", NetSinkOptions{
		DialTimeout: 200 * time.Millisecond,
		SpillLimit:  3,
		AccountDrops: func(queryID uint64, typeIdx uint8, n uint64) {
			mu.Lock()
			dropped[queryID] += n
			mu.Unlock()
		},
	})
	defer sink.Close()

	// Five one-tuple sends against a dead endpoint: all error, the last
	// three spill, the first two are evicted and accounted.
	for v := int64(1); v <= 5; v++ {
		b := oneTupleBatch(uint64(v), v)
		if err := sink.SendBatch(b); err == nil {
			t.Fatalf("send %d against dead endpoint should error", v)
		}
		// The sink must have copied: recycle the caller's memory.
		b.Tuples[0] = transport.Tuple{}
	}
	mu.Lock()
	if dropped[1] != 1 || dropped[2] != 1 || len(dropped) != 2 {
		t.Fatalf("dropped = %v, want queries 1 and 2 evicted", dropped)
	}
	mu.Unlock()
	if sink.SpillDrops() != 2 {
		t.Fatalf("SpillDrops = %d, want 2", sink.SpillDrops())
	}

	// Central comes back on the same address.
	l2, err := transport.Listen(addr)
	if err != nil {
		t.Skipf("could not re-listen on %s: %v", addr, err)
	}
	defer l2.Close()
	fc := &fakeCentral{l: l2}
	go func() {
		for {
			conn, err := l2.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := conn.Recv()
					if err != nil {
						return
					}
					fc.mu.Lock()
					switch m := msg.(type) {
					case transport.DataHello:
						fc.hellos = append(fc.hellos, m.HostID)
					case transport.TupleBatch:
						fc.batches = append(fc.batches, m)
					}
					fc.mu.Unlock()
				}
			}()
		}
	}()

	if err := sink.SendBatch(oneTupleBatch(6, 6)); err != nil {
		t.Fatalf("send after recovery: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		fc.mu.Lock()
		n := len(fc.batches)
		fc.mu.Unlock()
		if n == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("central got %d batches, want 4 (3 spilled + 1 fresh)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	wantOrder := []uint64{3, 4, 5, 6}
	for i, b := range fc.batches {
		if b.QueryID != wantOrder[i] {
			t.Fatalf("batch %d is query %d, want %d (order %v)", i, b.QueryID, wantOrder[i], fc.batches)
		}
		// Deep copy held: values survived the caller recycling its memory.
		if len(b.Tuples) != 1 || b.Tuples[0].Values[0].String() != event.Int(int64(wantOrder[i])).String() {
			t.Fatalf("batch %d tuples = %+v, want value %d", i, b.Tuples, wantOrder[i])
		}
		if got, want := b.Tuples[0].TsNanos, int64(wantOrder[i]); got != want {
			t.Fatalf("batch %d ts = %d, want %d (spill corrupted?)", i, got, want)
		}
	}
}

// TestNetSinkSpillDisabled checks SpillLimit < 0 restores pure
// drop-on-failure: nothing buffers, nothing redelivers.
func TestNetSinkSpillDisabled(t *testing.T) {
	sink := NewNetSinkWith("127.0.0.1:1", "h", NetSinkOptions{
		DialTimeout: 50 * time.Millisecond,
		SpillLimit:  -1,
		AccountDrops: func(uint64, uint8, uint64) {
			t.Error("disabled spill must not account drops")
		},
	})
	defer sink.Close()
	if err := sink.SendBatch(oneTupleBatch(1, 1)); err == nil {
		t.Fatal("send to unreachable central should fail")
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.spill) != 0 {
		t.Fatalf("spill = %d batches, want none", len(sink.spill))
	}
}

// TestAgentHeartbeatsWhenQuiet pins the liveness contract on the agent
// side: an active query with nothing to report still ships counter-only
// batches on the heartbeat cadence, so central's lease stays renewed.
func TestAgentHeartbeatsWhenQuiet(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink, func(c *Config) {
		c.HeartbeatInterval = time.Millisecond
	})
	if err := a.Start(transport.HostQuery{QueryID: 3, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		sink.mu.Lock()
		n := len(sink.batches)
		sink.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d heartbeats for a quiet query, want >= 3", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, b := range func() []transport.TupleBatch {
		sink.mu.Lock()
		defer sink.mu.Unlock()
		return append([]transport.TupleBatch(nil), sink.batches...)
	}() {
		if len(b.Tuples) != 0 || b.QueryID != 3 {
			t.Fatalf("unexpected batch %+v", b)
		}
	}
}

// TestAccountDropsFeedsCounters checks the sink-to-agent drop path: a
// charge lands in the query's cumulative QueueDrops and re-arms the
// heartbeat flag so central hears about it.
func TestAccountDropsFeedsCounters(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink, func(c *Config) {
		c.HeartbeatInterval = time.Hour // isolate the dirty-flag path
	})
	if err := a.Start(transport.HostQuery{QueryID: 4, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	a.AccountDrops(4, 0, 7)
	a.AccountDrops(999, 0, 2) // unknown query: agent-level only
	a.Flush()
	if got := a.Stats().QueueDrops; got != 9 {
		t.Fatalf("agent QueueDrops = %d, want 9", got)
	}
	_, _, drops := sink.lastCounters()
	if drops != 7 {
		t.Fatalf("shipped QueueDrops = %d, want 7", drops)
	}
}
