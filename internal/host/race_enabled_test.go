//go:build race

package host

// raceEnabled reports whether the race detector is compiled in. Under it,
// sync.Pool deliberately drops a fraction of Puts to shake out lifecycle
// bugs, so steady-state AllocsPerRun assertions over pooled hot paths are
// meaningless there; tests gate on this and skip. The zero-allocation
// guarantees are enforced by the non-race test run.
const raceEnabled = true
