package host

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/transport"
)

var bidSchema = event.MustSchema("bid",
	event.FieldDef{Name: "user_id", Kind: event.KindInt},
	event.FieldDef{Name: "city", Kind: event.KindString},
	event.FieldDef{Name: "bid_price", Kind: event.KindFloat},
)

func testCatalog() *event.Catalog {
	c := event.NewCatalog()
	c.MustRegister(bidSchema)
	return c
}

// collectSink gathers batches thread-safely.
type collectSink struct {
	mu      sync.Mutex
	batches []transport.TupleBatch
	fail    atomic.Bool
}

func (s *collectSink) SendBatch(b transport.TupleBatch) error {
	if s.fail.Load() {
		return fmt.Errorf("sink down")
	}
	// The agent recycles batch memory once SendBatch returns (see Sink),
	// so a retaining sink must deep-copy.
	cp := transport.CloneBatch(b)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batches = append(s.batches, cp)
	return nil
}

func (s *collectSink) tuples() []transport.Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []transport.Tuple
	for _, b := range s.batches {
		out = append(out, b.Tuples...)
	}
	return out
}

func (s *collectSink) all() []transport.TupleBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]transport.TupleBatch, len(s.batches))
	copy(out, s.batches)
	return out
}

func (s *collectSink) lastCounters() (matched, sampled, drops uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.batches) == 0 {
		return 0, 0, 0
	}
	last := s.batches[len(s.batches)-1]
	return last.MatchedTotal, last.SampledTotal, last.QueueDrops
}

func newAgent(t *testing.T, sink Sink, opts ...func(*Config)) *Agent {
	t.Helper()
	cfg := Config{
		HostID: "h1", Service: "BidServers", DC: "DC1",
		Catalog: testCatalog(), Sink: sink,
		FlushInterval: 5 * time.Millisecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(a.Close)
	return a
}

func bidEvent(req uint64, user int64, city string, price float64, ts int64) *event.Event {
	return event.NewBuilder(bidSchema).
		SetRequestID(req).SetTimeNanos(ts).
		Int("user_id", user).Str("city", city).Float("bid_price", price).
		MustBuild()
}

func TestConfigValidation(t *testing.T) {
	base := Config{HostID: "h", Service: "s", Catalog: testCatalog(), Sink: &collectSink{}}
	bad := []func(Config) Config{
		func(c Config) Config { c.HostID = ""; return c },
		func(c Config) Config { c.Service = ""; return c },
		func(c Config) Config { c.Catalog = nil; return c },
		func(c Config) Config { c.Sink = nil; return c },
	}
	for i, mut := range bad {
		if _, err := New(mut(base)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLogNoQueriesIsCheap(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	for i := 0; i < 1000; i++ {
		a.Log(ev)
	}
	a.Flush()
	if got := sink.tuples(); len(got) != 0 {
		t.Errorf("no queries but %d tuples shipped", len(got))
	}
	st := a.Stats()
	if st.Logged != 1000 || st.Matched != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSelectionProjectionShipping(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	err := a.Start(transport.HostQuery{
		QueryID:   1,
		EventType: "bid",
		Pred: expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"},
			R: expr.Lit{Val: event.Float(1.0)}},
		Columns: []string{"user_id", "city"},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	a.Log(bidEvent(1, 42, "sf", 2.0, now)) // matches
	a.Log(bidEvent(2, 43, "la", 0.5, now)) // selection rejects
	a.Log(bidEvent(3, 44, "ny", 1.5, now)) // matches
	a.Flush()

	got := sink.tuples()
	if len(got) != 2 {
		t.Fatalf("shipped %d tuples, want 2", len(got))
	}
	if got[0].RequestID != 1 || got[1].RequestID != 3 {
		t.Errorf("request ids = %d, %d", got[0].RequestID, got[1].RequestID)
	}
	// Projection: exactly user_id, city — not bid_price.
	if len(got[0].Values) != 2 {
		t.Fatalf("projected %d values", len(got[0].Values))
	}
	if v, _ := got[0].Values[0].AsInt(); v != 42 {
		t.Errorf("user_id = %v", got[0].Values[0])
	}
	if v, _ := got[0].Values[1].AsStr(); v != "sf" {
		t.Errorf("city = %v", got[0].Values[1])
	}
	matched, sampled, drops := sink.lastCounters()
	if matched != 2 || sampled != 2 || drops != 0 {
		t.Errorf("counters = %d/%d/%d", matched, sampled, drops)
	}
}

func TestStartValidation(t *testing.T) {
	a := newAgent(t, &collectSink{})
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "ghost"}); err == nil {
		t.Error("unknown event type should fail")
	}
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid", Columns: []string{"nope"}}); err == nil {
		t.Error("unknown column should fail")
	}
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid",
		Pred: expr.FieldRef{Type: "bid", Name: "user_id"}}); err == nil {
		t.Error("non-bool predicate should fail")
	}
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid",
		Pred: expr.FieldRef{Type: "bid", Name: "ghost"}}); err == nil {
		t.Error("predicate on unknown field should fail")
	}
	if err := a.Start(transport.HostQuery{QueryID: 2, EventType: "bid"}); err != nil {
		t.Fatalf("valid start: %v", err)
	}
	if err := a.Start(transport.HostQuery{QueryID: 2, EventType: "bid"}); err == nil {
		t.Error("duplicate query id should fail")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	if err := a.Start(transport.HostQuery{QueryID: 5, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	a.Stop(5)
	a.Stop(5)
	a.Stop(999)
	a.Log(bidEvent(1, 1, "x", 1, time.Now().UnixNano()))
	a.Flush()
	if len(sink.tuples()) != 0 {
		t.Error("stopped query still shipping")
	}
}

func TestSpanGating(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	base := time.Now().UnixNano()
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid",
		StartNanos: base + 1000, EndNanos: base + 2000,
	}); err != nil {
		t.Fatal(err)
	}
	a.Log(bidEvent(1, 1, "x", 1, base+500))  // before span
	a.Log(bidEvent(2, 1, "x", 1, base+1500)) // inside
	a.Log(bidEvent(3, 1, "x", 1, base+2000)) // at end (exclusive)
	a.Flush()
	got := sink.tuples()
	if len(got) != 1 || got[0].RequestID != 2 {
		t.Errorf("span gating shipped %v", got)
	}
}

func TestPruneExpired(t *testing.T) {
	a := newAgent(t, &collectSink{})
	now := time.Now()
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid", EndNanos: now.Add(-time.Second).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(transport.HostQuery{QueryID: 2, EventType: "bid", EndNanos: now.Add(time.Hour).UnixNano()}); err != nil {
		t.Fatal(err)
	}
	if n := a.PruneExpired(now); n != 1 {
		t.Errorf("pruned %d, want 1", n)
	}
	ids := a.ActiveQueries()
	if len(ids) != 1 || ids[0] != 2 {
		t.Errorf("active = %v", ids)
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	// A wedged ScrubCentral: the first batch send blocks forever. The
	// shipper gets stuck mid-flush, the queue fills, and every further
	// Log must drop instead of blocking the application thread.
	release := make(chan struct{})
	var once sync.Once
	blockingSink := SinkFunc(func(transport.TupleBatch) error {
		<-release
		return nil
	})
	cfg := Config{
		HostID: "h1", Service: "BidServers", Catalog: testCatalog(),
		Sink: blockingSink, QueueSize: 10, BatchSize: 64,
		FlushInterval: time.Hour,
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		once.Do(func() { close(release) })
		a.Close()
	})
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	start := time.Now()
	const n = 10000
	for i := 0; i < n; i++ {
		a.Log(bidEvent(uint64(i), 1, "x", 1, now))
	}
	elapsed := time.Since(start)
	// 10k events against a wedged pipeline must complete quickly.
	if elapsed > 2*time.Second {
		t.Errorf("Log blocked: 10k events took %v", elapsed)
	}
	st := a.Stats()
	if st.QueueDrops == 0 {
		t.Error("expected queue drops")
	}
	// Drops happen at chunk granularity: non-dropped events are bounded by
	// the chunk wedged in the sink, the chunks buffered in the shipping
	// queue, and one partial chunk still filling (≤ 5 chunks total).
	if st.QueueDrops < n-5*64 {
		t.Errorf("drops = %d, want ≥ %d", st.QueueDrops, n-5*64)
	}
	once.Do(func() { close(release) })
}

func TestEventSamplingCountsBothTotals(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", SampleEvents: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	const n = 20000
	for i := 0; i < n; i++ {
		a.Log(bidEvent(uint64(i), 1, "x", 1, now))
	}
	a.Flush()
	matched, sampled, _ := sink.lastCounters()
	if matched != n {
		t.Errorf("matched = %d, want %d", matched, n)
	}
	rate := float64(sampled) / n
	if rate < 0.17 || rate > 0.23 {
		t.Errorf("sampled rate = %g, want ~0.2", rate)
	}
	shipped := len(sink.tuples())
	if uint64(shipped) != sampled {
		t.Errorf("shipped %d != sampled %d", shipped, sampled)
	}
}

func TestCounterOnlyHeartbeat(t *testing.T) {
	// With sampling dropping everything, counters still reach the sink.
	sink := &collectSink{}
	a := newAgent(t, sink)
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", SampleEvents: 0.0000001,
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 100; i++ {
		a.Log(bidEvent(uint64(i), 1, "x", 1, now))
	}
	a.Flush()
	matched, _, _ := sink.lastCounters()
	if matched != 100 {
		t.Errorf("heartbeat matched = %d, want 100", matched)
	}
}

func TestMultipleQueriesIndependent(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid",
		Pred: expr.Binary{Op: expr.OpEq,
			L: expr.FieldRef{Type: "bid", Name: "city"}, R: expr.Lit{Val: event.Str("sf")}},
		Columns: []string{"user_id"}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(transport.HostQuery{QueryID: 2, EventType: "bid", Columns: []string{"city"}}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	a.Log(bidEvent(1, 7, "sf", 1, now))
	a.Log(bidEvent(2, 8, "la", 1, now))
	a.Flush()

	perQuery := map[uint64]int{}
	sink.mu.Lock()
	for _, b := range sink.batches {
		perQuery[b.QueryID] += len(b.Tuples)
	}
	sink.mu.Unlock()
	if perQuery[1] != 1 || perQuery[2] != 2 {
		t.Errorf("per-query tuples = %v", perQuery)
	}
}

func TestConcurrentLogAndStartStop(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	now := time.Now().UnixNano()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					a.Log(bidEvent(uint64(i), int64(w), "x", 1, now))
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		qid := uint64(100 + i)
		if err := a.Start(transport.HostQuery{QueryID: qid, EventType: "bid"}); err != nil {
			t.Error(err)
		}
		time.Sleep(time.Millisecond)
		a.Stop(qid)
	}
	close(stop)
	wg.Wait()
}

func TestCloseFlushesPending(t *testing.T) {
	sink := &collectSink{}
	cfg := Config{
		HostID: "h1", Service: "S", Catalog: testCatalog(), Sink: sink,
		FlushInterval: time.Hour, // only Close can flush
	}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(transport.HostQuery{QueryID: 1, EventType: "bid"}); err != nil {
		t.Fatal(err)
	}
	a.Log(bidEvent(1, 1, "x", 1, time.Now().UnixNano()))
	a.Close()
	if len(sink.tuples()) != 1 {
		t.Errorf("Close lost pending tuples: %d", len(sink.tuples()))
	}
	a.Close() // idempotent
}

func BenchmarkLogNoQueries(b *testing.B) {
	a, err := New(Config{HostID: "h", Service: "s", Catalog: testCatalog(), Sink: &collectSink{}})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Log(ev)
	}
}

func BenchmarkLogOneMatchingQuery(b *testing.B) {
	a, err := New(Config{HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:      SinkFunc(func(transport.TupleBatch) error { return nil }),
		QueueSize: 1 << 16})
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid",
		Pred: expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"}, R: expr.Lit{Val: event.Float(0.5)}},
		Columns: []string{"user_id"},
	}); err != nil {
		b.Fatal(err)
	}
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Log(ev)
	}
}
