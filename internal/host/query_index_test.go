package host

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/transport"
)

// Tests for the shared query index: many concurrent queries compiled into
// one per-type evaluation DAG with projection groups (see typeProgram).
// The contract under test is that sharing is invisible — per-query tuple
// streams, counters, and sampling are bit-identical to running every
// query independently — while the hot path stays allocation-free.

// predSpellings returns predicate trees over the bid schema, including
// equivalent-but-differently-spelled pairs so canonicalization sharing is
// exercised, plus nil (match-all).
func predSpellings() []expr.Node {
	price := func() expr.Node { return expr.FieldRef{Type: "bid", Name: "bid_price"} }
	city := func() expr.Node { return expr.FieldRef{Type: "bid", Name: "city"} }
	user := func() expr.Node { return expr.FieldRef{Type: "bid", Name: "user_id"} }
	gt := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.OpGt, L: l, R: r} }
	eq := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.OpEq, L: l, R: r} }
	and := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.OpAnd, L: l, R: r} }
	or := func(l, r expr.Node) expr.Node { return expr.Binary{Op: expr.OpOr, L: l, R: r} }
	return []expr.Node{
		nil,
		gt(price(), expr.Lit{Val: event.Float(0.5)}),
		// Same conjunction spelled both ways: canonically identical.
		and(eq(city(), expr.Lit{Val: event.Str("sf")}), gt(price(), expr.Lit{Val: event.Float(0.5)})),
		and(gt(price(), expr.Lit{Val: event.Float(0.5)}), eq(city(), expr.Lit{Val: event.Str("sf")})),
		or(eq(expr.Binary{Op: expr.OpMod, L: user(), R: expr.Lit{Val: event.Int(2)}}, expr.Lit{Val: event.Int(0)}),
			expr.Binary{Op: expr.OpLe, L: price(), R: expr.Lit{Val: event.Float(0.2)}}),
		expr.In{X: city(), List: []expr.Node{
			expr.Lit{Val: event.Str("sf")}, expr.Lit{Val: event.Str("nyc")}, expr.Lit{Val: event.Str("sf")}}},
		expr.Unary{Op: expr.OpNot, X: gt(price(), expr.Lit{Val: event.Float(0.5)})},
		// x >= 3 && x >= 3: idempotent duplicate collapses in canon form.
		and(expr.Binary{Op: expr.OpGe, L: user(), R: expr.Lit{Val: event.Int(3)}},
			expr.Binary{Op: expr.OpGe, L: user(), R: expr.Lit{Val: event.Int(3)}}),
	}
}

var colSets = [][]string{
	{"user_id", "city"},
	{"city", "user_id"}, // same columns, different order: distinct group
	{"bid_price"},
	{"user_id", "city"}, // repeat: shares the first group
	nil,                 // zero-width projection
}

func TestSharedIndexZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; AllocsPerRun over the pooled dispatch context is meaningless")
	}
	// 16 queries cycling through 8 predicate spellings and 5 column sets:
	// the shared-DAG dispatch with fan-out, memoized subexpressions, and
	// projection groups must stay allocation-free, exactly like the old
	// per-query loop.
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:      SinkFunc(func(transport.TupleBatch) error { return nil }),
		QueueSize: 1 << 18, BatchSize: 8192,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	preds := predSpellings()
	for i := 0; i < 16; i++ {
		if err := a.Start(transport.HostQuery{
			QueryID:   uint64(i + 1),
			EventType: "bid",
			Pred:      preds[i%len(preds)],
			Columns:   colSets[i%len(colSets)],
		}); err != nil {
			t.Fatal(err)
		}
	}
	ev := bidEvent(1, 4, "sf", 1.0, time.Now().UnixNano())
	a.Log(ev) // size the chunks and the pooled dispatch context
	if allocs := testing.AllocsPerRun(500, func() { a.Log(ev) }); allocs != 0 {
		t.Errorf("shared-index Log allocates %.1f/op, want 0", allocs)
	}
	a.Flush()
	if st := a.Stats(); st.Shipped == 0 {
		t.Error("measured tuples never shipped")
	}
}

func TestRebuildUnderConcurrentLogPredicates(t *testing.T) {
	// Start/Stop churn rebuilds the shared program while Log goroutines
	// dispatch through whichever snapshot they loaded. A stable query rides
	// along the whole time; every tuple it ships must satisfy its own
	// predicate regardless of how often the DAG around it was rebuilt.
	sink := &collectSink{}
	a := newAgent(t, sink)
	stable := transport.HostQuery{
		QueryID: 1, EventType: "bid",
		Pred: expr.Binary{Op: expr.OpEq,
			L: expr.FieldRef{Type: "bid", Name: "city"},
			R: expr.Lit{Val: event.Str("sf")}},
		Columns: []string{"city", "user_id"},
	}
	if err := a.Start(stable); err != nil {
		t.Fatal(err)
	}
	preds := predSpellings()
	now := time.Now().UnixNano()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cities := []string{"sf", "nyc", "la"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					a.Log(bidEvent(uint64(i), int64(w), cities[i%3], float64(i%10)/5, now))
				}
			}
		}(w)
	}
	for i := 0; i < 60; i++ {
		qid := uint64(100 + i)
		if err := a.Start(transport.HostQuery{
			QueryID: qid, EventType: "bid",
			Pred:    preds[i%len(preds)],
			Columns: colSets[i%len(colSets)],
		}); err != nil {
			t.Error(err)
		}
		time.Sleep(500 * time.Microsecond)
		a.Stop(qid)
	}
	close(stop)
	wg.Wait()
	a.Flush()
	for _, b := range sink.all() {
		if b.QueryID != 1 {
			continue
		}
		for _, tu := range b.Tuples {
			if got, _ := tu.Values[0].AsStr(); got != "sf" {
				t.Fatalf("stable query shipped city %q, want sf", got)
			}
		}
	}
}

// refQuery is the naive per-query dispatch the shared index replaced: an
// independently compiled predicate over the ORIGINAL (un-canonicalized)
// tree and its own projection loop. It is the semantic oracle for the
// differential test below.
type refQuery struct {
	id             uint64
	pred           func(expr.Row) bool
	colIdx         []int
	startNs, endNs int64
	matched        uint64
	tuples         []transport.Tuple
}

func (r *refQuery) offer(ev *event.Event, ts int64) {
	if ts < r.startNs {
		return
	}
	if r.endNs != 0 && ts >= r.endNs {
		return
	}
	if r.pred != nil && !r.pred(expr.EventRow{Event: ev}) {
		return
	}
	r.matched++
	vals := make([]event.Value, len(r.colIdx))
	for j, idx := range r.colIdx {
		vals[j] = ev.At(idx)
	}
	if len(vals) == 0 {
		vals = nil
	}
	r.tuples = append(r.tuples, transport.Tuple{RequestID: ev.RequestID, TsNanos: ts, Values: vals})
}

func TestSharedDispatchMatchesReference(t *testing.T) {
	// Differential oracle for the tentpole rewrite: 24 queries (heavy
	// predicate and projection overlap, some span-gated) dispatched through
	// the shared index must produce, per query, exactly the tuple stream
	// and matched count of a naive loop that compiles every original
	// predicate independently. Rate 1 everywhere so sampling cannot hide a
	// divergence.
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sink := &collectSink{}
			// The queue must hold the full run: nothing drains it until the
			// final Flush, and a drop would be a (correct) divergence from
			// the lossless reference.
			a := newAgent(t, sink, func(c *Config) {
				c.FlushInterval = time.Hour
				c.QueueSize = 1 << 17
			})
			preds := predSpellings()
			base := time.Now().UnixNano()
			const n = 2000
			refs := make(map[uint64]*refQuery)
			for i := 0; i < 24; i++ {
				qid := uint64(i + 1)
				hq := transport.HostQuery{
					QueryID: qid, EventType: "bid",
					Pred:    preds[rng.Intn(len(preds))],
					Columns: colSets[rng.Intn(len(colSets))],
				}
				if rng.Intn(3) == 0 { // span-gated third
					lo := rng.Int63n(n)
					hi := lo + 1 + rng.Int63n(n)
					hq.StartNanos = base + lo
					hq.EndNanos = base + hi
				}
				if err := a.Start(hq); err != nil {
					t.Fatal(err)
				}
				ref := &refQuery{id: qid, startNs: hq.StartNanos, endNs: hq.EndNanos}
				if hq.Pred != nil {
					checked, _, err := expr.Check(hq.Pred, expr.SchemaResolver{Schemas: []*event.Schema{bidSchema}})
					if err != nil {
						t.Fatal(err)
					}
					ev, err := expr.Compile(checked)
					if err != nil {
						t.Fatal(err)
					}
					ref.pred = expr.Predicate(ev)
				}
				for _, col := range hq.Columns {
					ref.colIdx = append(ref.colIdx, bidSchema.FieldIndex(col))
				}
				refs[qid] = ref
			}
			cities := []string{"sf", "nyc", "la", ""}
			for i := 0; i < n; i++ {
				ev := bidEvent(uint64(i), rng.Int63n(6), cities[rng.Intn(len(cities))],
					float64(rng.Intn(200))/100-0.3, base+int64(i))
				a.Log(ev)
				for _, ref := range refs {
					ref.offer(ev, ev.TimeNanos)
				}
			}
			a.Flush()
			if st := a.Stats(); st.QueueDrops != 0 {
				t.Fatalf("queue dropped %d tuples; size the queue for the run", st.QueueDrops)
			}
			got := make(map[uint64][]transport.Tuple)
			lastMatched := make(map[uint64]uint64)
			for _, b := range sink.all() {
				got[b.QueryID] = append(got[b.QueryID], b.Tuples...)
				lastMatched[b.QueryID] = b.MatchedTotal
			}
			for qid, ref := range refs {
				if m := lastMatched[qid]; m != ref.matched {
					t.Errorf("query %d: matched %d, reference %d", qid, m, ref.matched)
				}
				gt := got[qid]
				if len(gt) != len(ref.tuples) {
					t.Fatalf("query %d: %d tuples, reference %d", qid, len(gt), len(ref.tuples))
				}
				for i := range gt {
					w := ref.tuples[i]
					g := gt[i]
					if g.RequestID != w.RequestID || g.TsNanos != w.TsNanos || len(g.Values) != len(w.Values) {
						t.Fatalf("query %d tuple %d: got %+v, want %+v", qid, i, g, w)
					}
					for j := range g.Values {
						if !g.Values[j].Equal(w.Values[j]) {
							t.Fatalf("query %d tuple %d col %d: got %v, want %v", qid, i, j, g.Values[j], w.Values[j])
						}
					}
				}
			}
		})
	}
}

func TestSharedPredicateIndependentAccounting(t *testing.T) {
	// Two queries with the identical predicate and column set share one
	// DAG node and one projection group, but sampling and accounting stay
	// per-query: the downsampled query ships fewer tuples while its
	// sibling at rate 1 ships every match, and both report exact Mᵢ.
	sink := &collectSink{}
	a := newAgent(t, sink, func(c *Config) { c.FlushInterval = time.Hour })
	pred := func() expr.Node {
		return expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"},
			R: expr.Lit{Val: event.Float(0.5)}}
	}
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", Pred: pred(), Columns: []string{"user_id"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.Start(transport.HostQuery{
		QueryID: 2, EventType: "bid", Pred: pred(), Columns: []string{"user_id"},
		SampleEvents: 0.25,
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	const n = 4000
	for i := 0; i < n; i++ {
		a.Log(bidEvent(uint64(i), int64(i), "sf", 1.0, now+int64(i)))
	}
	a.Flush()
	counts := make(map[uint64]int)
	matched := make(map[uint64]uint64)
	sampled := make(map[uint64]uint64)
	for _, b := range sink.all() {
		counts[b.QueryID] += len(b.Tuples)
		matched[b.QueryID] = b.MatchedTotal
		sampled[b.QueryID] = b.SampledTotal
	}
	if matched[1] != n || matched[2] != n {
		t.Errorf("matched = %d/%d, want %d for both", matched[1], matched[2], n)
	}
	if counts[1] != n {
		t.Errorf("rate-1 query shipped %d tuples, want %d", counts[1], n)
	}
	if uint64(counts[2]) != sampled[2] {
		t.Errorf("sampled query shipped %d tuples but reported mᵢ=%d", counts[2], sampled[2])
	}
	if counts[2] == 0 || counts[2] >= n/2 {
		t.Errorf("rate-0.25 query shipped %d of %d tuples, want roughly a quarter", counts[2], n)
	}
}
