package host

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"sync"
	"time"

	"scrub/internal/obs"
	"scrub/internal/transport"
)

// NetSinkOptions tunes a NetSink. The zero value matches the historical
// behavior plus a small spill buffer.
type NetSinkOptions struct {
	// DialTimeout bounds each dial attempt. Default 3s.
	DialTimeout time.Duration
	// SpillLimit bounds, in tuples, how much data the sink buffers across
	// a disconnect for redelivery on reconnect. Oldest batches are evicted
	// (and their tuples charged to AccountDrops) when the buffer is full.
	// Default 4096; negative disables spilling entirely.
	SpillLimit int
	// Wrap, when non-nil, interposes on the raw data connection — the
	// fault-injection seam (internal/chaos).
	Wrap func(net.Conn) net.Conn
	// AccountDrops, when non-nil, is told about every tuple the spill
	// buffer gives up on, keyed by query and type. Wire it to
	// Agent.AccountDrops so outage losses surface in the cumulative
	// QueueDrops counters central reports.
	AccountDrops func(queryID uint64, typeIdx uint8, n uint64)
	// Metrics, when non-nil, registers the sink's series (spill depth and
	// drops, reconnects, per-connection transport accounting) labeled
	// host=<hostID>, conn="data".
	Metrics *obs.Registry
}

func (o *NetSinkOptions) fillDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.SpillLimit == 0 {
		o.SpillLimit = 4096
	}
}

// NetSink ships tuple batches to ScrubCentral over TCP. It dials lazily,
// sends a DataHello, and on any send error drops the connection and
// redials on the next batch. A failed batch is not retried in place —
// that would block the shipper — but it is deep-copied into a bounded
// spill buffer and redelivered, in order, once a connection comes back.
// Spill overflow evicts oldest-first and feeds the drop accounting, so
// drop-over-block is preserved and every loss is counted.
type NetSink struct {
	addr   string
	hostID string
	opt    NetSinkOptions

	mu         sync.Mutex
	conn       *transport.Conn
	spill      []transport.TupleBatch // deep copies, oldest first
	spillSize  int                    // tuples across spill
	spillDrops uint64                 // tuples evicted; monotone, for tests

	// Registered series; all nil when no registry was configured.
	spillDepth  *obs.Gauge
	spillDropsC *obs.Counter
	reconnects  *obs.Counter
	connMet     *transport.ConnMetrics
	dialed      bool // a first dial happened; later dials are reconnects
}

// NewNetSink creates a sink for the given ScrubCentral data address with
// default options.
func NewNetSink(addr, hostID string) *NetSink {
	return NewNetSinkWith(addr, hostID, NetSinkOptions{})
}

// NewNetSinkWith creates a sink with explicit options.
func NewNetSinkWith(addr, hostID string, opt NetSinkOptions) *NetSink {
	opt.fillDefaults()
	s := &NetSink{addr: addr, hostID: hostID, opt: opt}
	if reg := opt.Metrics; reg != nil {
		hl := obs.L("host", hostID)
		s.spillDepth = reg.Gauge("scrub_host_spill_depth", "tuples buffered across a central disconnect", hl)
		s.spillDropsC = reg.Counter("scrub_host_spill_drops_total", "tuples the spill buffer evicted", hl)
		s.reconnects = reg.Counter("scrub_host_data_reconnects_total", "data-connection dials after the first", hl)
		s.connMet = transport.NewConnMetrics(reg, hl, obs.L("conn", "data"))
	}
	return s
}

// SendBatch implements Sink. On failure the batch (if it carries tuples)
// is spilled for redelivery and the error is still returned: the caller's
// accounting sees the send as failed, and the counters it re-ships are
// cumulative, so a later redelivery cannot double-count.
func (s *NetSink) SendBatch(b transport.TupleBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ensureConnLocked(); err != nil {
		s.spillLocked(b)
		return err
	}
	if err := s.drainSpillLocked(); err != nil {
		s.spillLocked(b)
		return err
	}
	if err := s.conn.Send(b); err != nil {
		s.conn.Close()
		s.conn = nil
		s.spillLocked(b)
		return err
	}
	return nil
}

func (s *NetSink) ensureConnLocked() error {
	if s.conn != nil {
		return nil
	}
	if s.dialed && s.reconnects != nil {
		s.reconnects.Inc()
	}
	s.dialed = true
	conn, err := transport.DialWith(s.addr, s.opt.DialTimeout, s.opt.Wrap)
	if err != nil {
		return err
	}
	if s.connMet != nil {
		conn.SetMetrics(s.connMet)
	}
	if err := conn.Send(transport.DataHello{HostID: s.hostID}); err != nil {
		conn.Close()
		return err
	}
	s.conn = conn
	return nil
}

// drainSpillLocked redelivers spilled batches in arrival order. On error
// the unsent remainder (failed batch included) stays spilled.
func (s *NetSink) drainSpillLocked() error {
	for len(s.spill) > 0 {
		if err := s.conn.Send(s.spill[0]); err != nil {
			s.conn.Close()
			s.conn = nil
			return err
		}
		s.spillSize -= len(s.spill[0].Tuples)
		s.spill[0] = transport.TupleBatch{}
		s.spill = s.spill[1:]
	}
	if len(s.spill) == 0 {
		s.spill = nil // release the drained backing array
	}
	s.noteDepthLocked()
	return nil
}

func (s *NetSink) noteDepthLocked() {
	if s.spillDepth != nil {
		s.spillDepth.Set(int64(s.spillSize))
	}
}

// spillLocked deep-copies b into the spill buffer, evicting oldest
// batches (with drop accounting) to stay under SpillLimit. Counter-only
// heartbeats are never spilled: the totals are cumulative and the next
// heartbeat supersedes them.
func (s *NetSink) spillLocked(b transport.TupleBatch) {
	if s.opt.SpillLimit < 0 || len(b.Tuples) == 0 {
		return
	}
	if len(b.Tuples) > s.opt.SpillLimit {
		s.dropLocked(b)
		return
	}
	for s.spillSize+len(b.Tuples) > s.opt.SpillLimit {
		s.dropLocked(s.spill[0])
		s.spillSize -= len(s.spill[0].Tuples)
		s.spill[0] = transport.TupleBatch{}
		s.spill = s.spill[1:]
	}
	s.spill = append(s.spill, transport.CloneBatch(b))
	s.spillSize += len(b.Tuples)
	s.noteDepthLocked()
}

func (s *NetSink) dropLocked(b transport.TupleBatch) {
	n := uint64(len(b.Tuples))
	s.spillDrops += n
	if s.spillDropsC != nil {
		s.spillDropsC.Add(n)
	}
	if s.opt.AccountDrops != nil {
		s.opt.AccountDrops(b.QueryID, b.TypeIdx, n)
	}
}

// SetDropAccounting installs (or replaces) the AccountDrops callback.
// Assembly code needs this because the sink is constructed before the
// agent whose counters it should charge.
func (s *NetSink) SetDropAccounting(fn func(queryID uint64, typeIdx uint8, n uint64)) {
	s.mu.Lock()
	s.opt.AccountDrops = fn
	s.mu.Unlock()
}

// SpillDrops reports how many tuples the spill buffer has given up on.
func (s *NetSink) SpillDrops() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spillDrops
}

// Close drops the data connection.
func (s *NetSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// ControlOptions tunes the agent's control-plane connection loop.
type ControlOptions struct {
	// DialTimeout bounds each dial attempt. Default 3s.
	DialTimeout time.Duration
	// BaseBackoff and MaxBackoff shape the reconnect schedule: each
	// attempt sleeps a uniformly random duration in (0, cap] where cap
	// doubles from BaseBackoff up to MaxBackoff (full jitter, so a fleet
	// of hosts doesn't reconnect in lockstep after a server restart).
	// Defaults 250ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed fixes the jitter RNG for reproducible runs; 0 derives one from
	// the host id.
	Seed int64
	// Dial substitutes the control-connection dialer (tests, chaos).
	Dial func(addr string, timeout time.Duration) (*transport.Conn, error)
	// Metrics, when non-nil, counts control reconnect attempts
	// (scrub_host_control_reconnects_total, labeled host=<id>).
	Metrics *obs.Registry
	// OnShardMap, when non-nil, receives shard-membership pushes from a
	// distributed ScrubCentral. Wire it to a coord.Router's HandleShardMap
	// so the host can split batches across shard processes.
	OnShardMap func(transport.ShardMap)
	// OnQueryPin is told each query's shard-epoch pin before the query
	// starts (so no batch ships unrouted); OnQueryUnpin fires after a
	// query stops. Wire to Router.PinQuery / Router.UnpinQuery.
	OnQueryPin   func(queryID uint64, epoch uint32)
	OnQueryUnpin func(queryID uint64)
}

func (o *ControlOptions) fillDefaults(hostID string) {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 3 * time.Second
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 250 * time.Millisecond
	}
	if o.MaxBackoff < o.BaseBackoff {
		o.MaxBackoff = 5 * time.Second
	}
	if o.Seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(hostID))
		o.Seed = int64(h.Sum64())
	}
	if o.Dial == nil {
		o.Dial = transport.Dial
	}
}

// RunControl connects the agent to the query server's control port with
// default ControlOptions. See RunControlWith.
func (a *Agent) RunControl(ctx context.Context, serverAddr string) error {
	return a.RunControlWith(ctx, serverAddr, ControlOptions{})
}

// RunControlWith connects the agent to the query server's control port,
// registers the host, and applies pushed query objects until the context
// ends. It reconnects with full-jitter exponential backoff on failures,
// so a server restart neither requires an application restart nor gets a
// synchronized reconnect stampede from the whole fleet.
func (a *Agent) RunControlWith(ctx context.Context, serverAddr string, opt ControlOptions) error {
	opt.fillDefaults(a.cfg.HostID)
	var reconnects *obs.Counter
	if opt.Metrics != nil {
		reconnects = opt.Metrics.Counter("scrub_host_control_reconnects_total",
			"control-connection dials after the first", obs.L("host", a.cfg.HostID))
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	ceil := opt.BaseBackoff
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !first && reconnects != nil {
			reconnects.Inc()
		}
		first = false
		err := a.controlSession(ctx, serverAddr, &opt)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // session errors only affect the retry cadence
		sleep := time.Duration(1 + rng.Int63n(int64(ceil)))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(sleep):
		}
		if ceil *= 2; ceil > opt.MaxBackoff {
			ceil = opt.MaxBackoff
		}
	}
}

func (a *Agent) controlSession(ctx context.Context, serverAddr string, opt *ControlOptions) error {
	conn, err := opt.Dial(serverAddr, opt.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(transport.RegisterHost{
		HostID:  a.cfg.HostID,
		Service: a.cfg.Service,
		DC:      a.cfg.DC,
	}); err != nil {
		return err
	}
	// Unblock Recv when the context ends.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case transport.HostQuery:
			// Pin the routing epoch first: replay shipping may start
			// pushing batches the moment the query object applies.
			if opt.OnQueryPin != nil {
				opt.OnQueryPin(m.QueryID, m.ShardEpoch)
			}
			// A rejected query object is reported by doing nothing: the
			// server sees no data from this host. Catalog skew is logged
			// via the error return path of Start in embedded setups.
			_ = a.Start(m)
		case transport.StopQuery:
			a.Stop(m.QueryID)
			if opt.OnQueryUnpin != nil {
				opt.OnQueryUnpin(m.QueryID)
			}
		case transport.ShardMap:
			if opt.OnShardMap != nil {
				opt.OnShardMap(m)
			}
		case transport.Ping:
			if err := conn.Send(transport.Pong{Nonce: m.Nonce}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("host: unexpected control message %s", transport.Name(msg))
		}
	}
}
