package host

import (
	"context"
	"fmt"
	"sync"
	"time"

	"scrub/internal/transport"
)

// NetSink ships tuple batches to ScrubCentral over TCP. It dials lazily,
// sends a DataHello, and on any send error drops the connection and
// redials on the next batch — a failed batch is lost, not retried, in
// keeping with drop-over-block.
type NetSink struct {
	addr   string
	hostID string
	dialTO time.Duration

	mu   sync.Mutex
	conn *transport.Conn
}

// NewNetSink creates a sink for the given ScrubCentral data address.
func NewNetSink(addr, hostID string) *NetSink {
	return &NetSink{addr: addr, hostID: hostID, dialTO: 3 * time.Second}
}

// SendBatch implements Sink.
func (s *NetSink) SendBatch(b transport.TupleBatch) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn == nil {
		conn, err := transport.Dial(s.addr, s.dialTO)
		if err != nil {
			return err
		}
		if err := conn.Send(transport.DataHello{HostID: s.hostID}); err != nil {
			conn.Close()
			return err
		}
		s.conn = conn
	}
	if err := s.conn.Send(b); err != nil {
		s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}

// Close drops the data connection.
func (s *NetSink) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
}

// RunControl connects the agent to the query server's control port,
// registers the host, and applies pushed query objects until the context
// ends. It reconnects with backoff on failures, so a server restart does
// not require an application restart.
func (a *Agent) RunControl(ctx context.Context, serverAddr string) error {
	backoff := 250 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := a.controlSession(ctx, serverAddr)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		_ = err // session errors only affect the retry cadence
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

func (a *Agent) controlSession(ctx context.Context, serverAddr string) error {
	conn, err := transport.Dial(serverAddr, 3*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(transport.RegisterHost{
		HostID:  a.cfg.HostID,
		Service: a.cfg.Service,
		DC:      a.cfg.DC,
	}); err != nil {
		return err
	}
	// Unblock Recv when the context ends.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case transport.HostQuery:
			// A rejected query object is reported by doing nothing: the
			// server sees no data from this host. Catalog skew is logged
			// via the error return path of Start in embedded setups.
			_ = a.Start(m)
		case transport.StopQuery:
			a.Stop(m.QueryID)
		case transport.Ping:
			if err := conn.Send(transport.Pong{Nonce: m.Nonce}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("host: unexpected control message %s", transport.Name(msg))
		}
	}
}
