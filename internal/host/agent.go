// Package host implements the Scrub agent embedded in each application
// process. The agent owns the paper's host-side responsibilities and
// nothing else: it activates query objects pushed by the query server,
// and for each log()ed event runs selection, projection, and event
// sampling, then ships the surviving tuples to ScrubCentral in batches.
//
// The design constraint that shapes everything here is the paper's
// headline requirement: minimal impact on the application. Concretely:
//
//   - Log never blocks. The shipping queue is bounded; when it fills,
//     tuples are dropped and counted. Accuracy is traded for impact.
//   - With no active queries, Log is one atomic pointer load and a map
//     lookup.
//   - Log makes no steady-state heap allocations. Projected tuples are
//     appended into per-query chunk buffers backed by a sync.Pool whose
//     flat value arrays are recycled after shipment, and only a full
//     chunk (not every tuple) crosses a channel to the shipper, so the
//     synchronization cost is amortized ~BatchSize×.
//   - Event sampling is amortized too: instead of drawing RNG per event,
//     a geometric skip count is drawn per *kept* event, so an unsampled
//     event costs one atomic decrement.
//   - No joins, group-bys, or aggregations ever run here — those belong
//     to ScrubCentral. Selection and projection run on the host only
//     because they shrink what must be shipped.
//
//scrub:longlived
package host

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/governor"
	"scrub/internal/obs"
	"scrub/internal/replay"
	"scrub/internal/sampling"
	"scrub/internal/transport"
)

// Sink receives tuple batches bound for ScrubCentral. Implementations:
// a transport connection (production) or a direct engine handle (tests,
// single-process clusters).
//
// Ownership: the batch — including the Tuples slice and every tuple's
// Values backing array — is only valid for the duration of the call. The
// agent recycles the memory as soon as SendBatch returns, so an
// implementation that retains tuples past the call must copy them.
// Encoding sinks (the wire, serialize-and-discard benchmarks) copy by
// construction; the central engine copies the tuples it keeps.
type Sink interface {
	SendBatch(transport.TupleBatch) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(transport.TupleBatch) error

// SendBatch implements Sink.
func (f SinkFunc) SendBatch(b transport.TupleBatch) error { return f(b) }

// Config parametrizes an Agent.
type Config struct {
	HostID  string
	Service string
	DC      string
	Catalog *event.Catalog
	Sink    Sink

	// QueueSize bounds (in tuples) the pending work shared by all queries
	// on this host; it is rounded to whole chunks of BatchSize tuples.
	// Default 8192. When full, Log drops (never blocks).
	QueueSize int
	// BatchSize is the chunk capacity: Log appends tuples into a
	// per-query chunk and the shipper sends one TupleBatch per full
	// chunk. Default 256.
	BatchSize int
	// FlushInterval flushes partial chunks at least this often.
	// Default 100ms.
	FlushInterval time.Duration
	// HeartbeatInterval bounds how long a query goes without shipping
	// anything: a query whose last batch is older than this gets a
	// counter-only heartbeat even when its totals haven't moved, so
	// ScrubCentral's stream liveness lease stays renewed for healthy
	// hosts with nothing to report. Default 1s.
	HeartbeatInterval time.Duration
	// Clock substitutes time.Now for tests and simulations.
	Clock func() time.Time
	// Metrics, when non-nil, registers the agent's scrub_host_* series
	// (labeled host=HostID) and enables the sampled Log-latency
	// histogram. Nil skips exposition; the counters run either way.
	Metrics *obs.Registry
	// Governor tunes budget enforcement (zero value = package defaults).
	// Per-query budgets arrive with each HostQuery; Governor.HostBudget
	// additionally caps the aggregate impact of all queries on this host.
	Governor governor.Config
	// Record, when non-nil, appends every logged event to the host's
	// replay store, and queries arriving with ReplayNanos ship matching
	// history from it before going live. Nil disables recording: Log then
	// pays a single pointer comparison for the feature.
	Record *replay.Store
}

func (c *Config) fillDefaults() error {
	if c.HostID == "" {
		return fmt.Errorf("host: empty HostID")
	}
	if c.Service == "" {
		return fmt.Errorf("host: empty Service")
	}
	if c.Catalog == nil {
		return fmt.Errorf("host: nil Catalog")
	}
	if c.Sink == nil {
		return fmt.Errorf("host: nil Sink")
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8192
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// queryKey identifies an installed query object. A join query installs
// one object per event type on each host, all sharing the query id, so
// the key includes the type index.
type queryKey struct {
	id      uint64
	typeIdx uint8
}

// activeQuery is one installed query object, pre-compiled for the hot
// path.
type activeQuery struct {
	hq transport.HostQuery
	// canon is the query's selection predicate in canonical form
	// (expr.Canon), nil to match everything. rebuildLocked interns it into
	// the event type's shared program; Start pre-validates it against a
	// throwaway builder so interning at rebuild time cannot fail.
	canon  expr.Node
	colIdx []int // schema field indices to project
	width  int   // len(colIdx), the projected tuple width
	// Span bounds mirrored out of hq so the per-event gate reads flat
	// fields adjacent to the rest of the hot state.
	startNs, endNs int64

	// Event sampling, amortized: skip counts down to the next kept event;
	// an unsampled event is one atomic decrement. sampleAll short-circuits
	// the common rate-1 case; it is atomic because the governor lowers the
	// rate from the shipper goroutine while Log reads it lock-free.
	// sampler re-draws are guarded by mu (the kept event takes that lock
	// anyway to append its tuple).
	sampleAll atomic.Bool
	skip      atomic.Int64
	//scrub:guardedby(mu)
	sampler *sampling.GeometricSampler

	// Governor state. baseRate/seed/budget are immutable after Start;
	// tracker, shed, effRate, bytesShipped, and the last* interval marks
	// are owned by the shipper goroutine (shed is additionally written
	// under the agent mutex so rebuildLocked can read it from any
	// goroutine). cpuNs is the sampled hot-path cost: 1 in 64 matched
	// events is timed and charged ×64.
	baseRate     float64
	seed         uint64
	budget       governor.Budget
	tracker      *governor.Tracker
	shed         bool
	effRate      float64
	cpuNs        atomic.Uint64
	bytesShipped uint64
	lastCPUNs    uint64
	lastBytes    uint64

	mu sync.Mutex // guards cur and sampler
	// cur is the partially filled chunk, nil when none.
	//scrub:guardedby(mu)
	cur *chunk

	// stopped flips when the query is removed (Stop, span expiry) or shed
	// by the governor; the replay scanner polls it so historical shipping
	// for a dead query aborts instead of running its scan to completion.
	stopped atomic.Bool

	matched atomic.Uint64 // Mᵢ: events passing selection
	// sampled is mᵢ: events surviving event sampling. Maintained only
	// when sampling is active — at rate 1 every matched event is sampled,
	// so sendBatch reports mᵢ = Mᵢ without a second per-event atomic.
	sampled atomic.Uint64
	drops   atomic.Uint64 // queue-full drops
	// Heartbeat change detection, shipper-goroutine only. The counters a
	// successful batch carried are snapshotted in last{Matched,Sampled,
	// Drops}; flushCycle heartbeats when the live counters have moved past
	// the snapshots, so the hot path never touches a dirty flag. A bump
	// racing a send is caught by the next cycle's comparison (the snapshot
	// records what was sent, not what was current afterwards), and a
	// failed send leaves the snapshots alone — a bump is either included
	// in a successful batch or still visible to the comparison, never
	// silently skipped. announce covers the non-counter batch fields
	// (effRate, BudgetShed), which only the shipper itself mutates.
	announce                            bool
	lastMatched, lastSampled, lastDrops uint64
	// lastSentNanos is when the last batch for this query reached the
	// sink. Initialized at Start so a fresh query's first heartbeat honors
	// HeartbeatInterval; shipper-goroutine only afterwards.
	lastSentNanos int64
}

// chunk is a block of pending tuples for one query. tuples has BatchSize
// capacity; vals is the flat backing array the tuples' Values slices are
// carved from, so filling a chunk allocates nothing. Chunks recycle
// through chunkPool; scrubvet's poolsafe analyzer flags any retention
// outside the agent's own pool plumbing.
//
//scrub:pooled
type chunk struct {
	q *activeQuery
	n int
	// epoch tags a chunk of historical tuples replayed from the record
	// stream (nonzero = replay); done marks the stream's final replay
	// chunk. Live chunks leave both zero.
	epoch  uint32
	done   bool
	tuples []transport.Tuple
	vals   []event.Value
}

// subscriber is one query's entry in the shared per-type dispatch index:
// the immutable hot-path facts (predicate node, projection group, span)
// plus the owning query, whose sampling, accounting, and chunk remain
// strictly per-subscriber — sharing stops at selection and projection.
type subscriber struct {
	aq *activeQuery
	// pred is the query's predicate node in the type's shared program;
	// -1 matches every event.
	pred int32
	// group indexes typeProgram.groups (the query's projection column
	// set); -1 for zero-width projections.
	group          int32
	startNs, endNs int64
}

// projGroup is one distinct projection column set shared by one or more
// subscribers: the extracted values live at [off, off+len(colIdx)) in the
// dispatch context's flat scratch, filled at most once per event.
type projGroup struct {
	colIdx []int
	off    int
}

// typeProgram is the per-event-type entry of the immutable dispatch
// snapshot: the type's shared query index, rebuilt wholesale by
// rebuildLocked. Instead of running every query's predicate and
// projection independently, the queries' canonicalized predicates are
// interned into one expr.Program (structurally identical predicates and
// common subexpressions become one node each) and subscribers with
// identical column sets share a projection group — per event, each
// distinct predicate node is evaluated at most once and each distinct
// column set extracted at most once, with the results fanned out to
// subscribers.
//
// Subscribers are pre-split so Log pays span comparisons only for
// queries that actually carry a span:
//
//   - always: no span bounds — zero per-event comparisons.
//   - gated: span-bounded; a single ts >= minStart comparison skips the
//     whole list while every spanned query is still pending. Expired
//     queries are removed by PruneExpired (the shipper ticks it), after
//     which they cost nothing.
//
// The split is by query shape, not wall clock, because event timestamps
// may run on virtual time in simulations — classifying by time.Now would
// drop in-span virtual-time events.
type typeProgram struct {
	// prog is the shared evaluation DAG; nil when every subscriber
	// matches all events.
	prog     *expr.Program
	always   []subscriber
	gated    []subscriber
	minStart int64
	groups   []projGroup
	// solo is the single-subscriber fast path: with exactly one query on
	// the type there is nothing to share, so the memoizing shared-program
	// machinery (context pool round-trip, Begin/Finish epoch bookkeeping)
	// is pure overhead. The subscriber's predicate is compiled into the
	// stateless closure soloPred (nil matches everything) evaluated
	// directly on the event, and projection copies straight from the event
	// into the chunk. Nil when the type has 2+ subscribers or the closure
	// compile failed (the shared path then serves as fallback).
	solo     *subscriber
	soloPred func(expr.Row) bool
	// ctxs pools *dispatchCtx for this snapshot. Per-snapshot (not
	// per-agent) because a context's arrays are sized to this program and
	// group set; a rebuild strands the old pool's contexts along with the
	// old snapshot.
	ctxs sync.Pool
}

// dispatchCtx is the per-event scratch for one pass over a type's
// subscribers: the shared-program evaluation context plus the projection
// groups' extracted values. Pooled; all arrays are preallocated to the
// snapshot's shape so the hot path never grows them.
//
//scrub:pooled
type dispatchCtx struct {
	ec   *expr.Ctx     // nil when the snapshot has no predicate nodes
	proj []event.Value // flat per-group scratch (see projGroup.off)
	done []bool        // per-group: extracted for the current event
}

// project returns group g's extracted column values for ev, extracting
// them on the group's first use for this event and reusing the scratch
// for every later subscriber with the same column set.
func (dc *dispatchCtx) project(tp *typeProgram, g int32, ev *event.Event) []event.Value {
	gr := &tp.groups[g]
	out := dc.proj[gr.off : gr.off+len(gr.colIdx)]
	if !dc.done[g] {
		for j, idx := range gr.colIdx {
			out[j] = ev.At(idx)
		}
		dc.done[g] = true
	}
	return out
}

// clear releases the extracted values so a pooled context does not pin
// event payloads between events.
func (dc *dispatchCtx) clear(tp *typeProgram) {
	for g := range dc.done {
		if !dc.done[g] {
			continue
		}
		gr := &tp.groups[g]
		for j := range gr.colIdx {
			dc.proj[gr.off+j] = event.Value{}
		}
		dc.done[g] = false
	}
}

// newDispatchCtx sizes a context for the snapshot; pool-miss only.
//
//scrub:allowalloc(pool-miss refill; amortized to zero in steady state)
func newDispatchCtx(tp *typeProgram, width int) *dispatchCtx {
	dc := &dispatchCtx{
		proj: make([]event.Value, width),
		done: make([]bool, len(tp.groups)),
	}
	if tp.prog != nil {
		dc.ec = tp.prog.NewCtx()
	}
	return dc
}

// Stats is a snapshot of agent-level accounting.
type Stats struct {
	Logged     uint64 // events offered to Log
	Matched    uint64 // events matching ≥1 active query
	Shipped    uint64 // tuples handed to the sink
	QueueDrops uint64 // tuples dropped because the queue was full
	SinkErrors uint64 // batches the sink rejected
	// Governor ladder actions across all queries this agent ran.
	GovernorDownsamples uint64
	GovernorRecovers    uint64
	GovernorSheds       uint64
}

// Agent is the per-host Scrub runtime. Create with New, feed with Log,
// manage with Start/Stop, terminate with Close.
type Agent struct {
	cfg Config

	// byType is an immutable snapshot map, swapped wholesale on query
	// start/stop. Log only ever loads it — no locks on the hot path.
	byType atomic.Pointer[map[string]*typeProgram]

	mu      sync.Mutex // guards mutations of the query set
	queries map[queryKey]*activeQuery

	chunkPool sync.Pool
	chunks    chan *chunk
	flushReq  chan chan struct{}
	done      chan struct{}
	closed    sync.Once
	wg        sync.WaitGroup

	// shipperScratch, govScratch, and encScratch are reused across flush
	// cycles; shipper-only.
	shipperScratch []*activeQuery
	govScratch     []governor.Usage
	encScratch     []byte
	// lastGovNanos is the previous governor evaluation time; shipper-only.
	// Cycles where the configured clock has not advanced (real ticker
	// firings under a virtual test clock) skip evaluation entirely.
	lastGovNanos int64

	// Agent accounting, obs-native so a configured registry exposes the
	// same counters Stats() reports — no parallel bookkeeping.
	logged         obs.Counter
	matched        obs.Counter
	shipped        obs.Counter
	queueDrops     obs.Counter
	sinkErrors     obs.Counter
	chunkFills     obs.Counter
	shipBytes      obs.Counter
	govDownsamples obs.Counter
	govRecovers    obs.Counter
	govSheds       obs.Counter
	// Replay shipping accounting: historical tuples (and their encoded
	// bytes) shipped from the record stream on behalf of REPLAY queries.
	// Subsets of shipped/shipBytes, split out so replay load is visible.
	replayShipped   obs.Counter
	replayShipBytes obs.Counter
	// logNs is the sampled Log-call latency (1 in 64 calls timed); nil
	// unless a Metrics registry was configured, so unobserved agents pay
	// nothing for it.
	logNs *obs.Histogram
}

// New creates and starts an agent (its shipper goroutine runs until
// Close).
func New(cfg Config) (*Agent, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	slots := cfg.QueueSize / cfg.BatchSize
	if slots < 2 {
		slots = 2
	}
	a := &Agent{
		cfg:      cfg,
		queries:  make(map[queryKey]*activeQuery),
		chunks:   make(chan *chunk, slots),
		flushReq: make(chan chan struct{}),
		done:     make(chan struct{}),
	}
	empty := make(map[string]*typeProgram)
	a.byType.Store(&empty)
	a.lastGovNanos = cfg.Clock().UnixNano()
	if reg := cfg.Metrics; reg != nil {
		hl := obs.L("host", cfg.HostID)
		reg.RegisterCounter("scrub_host_logged_total", "events offered to Log", &a.logged, hl)
		reg.RegisterCounter("scrub_host_matched_total", "events matching at least one active query", &a.matched, hl)
		reg.RegisterCounter("scrub_host_shipped_total", "tuples handed to the sink", &a.shipped, hl)
		reg.RegisterCounter("scrub_host_queue_drops_total", "tuples dropped because the shipping queue was full", &a.queueDrops, hl)
		reg.RegisterCounter("scrub_host_sink_errors_total", "batches the sink rejected", &a.sinkErrors, hl)
		reg.RegisterCounter("scrub_host_chunk_fills_total", "chunks filled to BatchSize and submitted", &a.chunkFills, hl)
		reg.RegisterCounter("scrub_host_ship_bytes_total", "encoded bytes of batches handed to the sink", &a.shipBytes, hl)
		reg.RegisterCounter("scrub_host_governor_downsamples_total", "budget governor rate halvings", &a.govDownsamples, hl)
		reg.RegisterCounter("scrub_host_governor_recovers_total", "budget governor rate recoveries", &a.govRecovers, hl)
		reg.RegisterCounter("scrub_host_governor_sheds_total", "queries shed by the budget governor", &a.govSheds, hl)
		reg.RegisterCounter("scrub_host_replay_shipped_total", "historical tuples shipped from the record stream", &a.replayShipped, hl)
		reg.RegisterCounter("scrub_host_replay_ship_bytes_total", "encoded bytes of replay batches handed to the sink", &a.replayShipBytes, hl)
		a.logNs = obs.NewHistogram(obs.ExpBuckets(64, 4, 10))
		reg.RegisterHistogram("scrub_host_log_ns", "sampled Log call latency in nanoseconds (1 in 64 calls)", a.logNs, hl)
	}
	a.wg.Add(1)
	go a.shipper()
	return a, nil
}

// ID returns the agent's host identifier.
func (a *Agent) ID() string { return a.cfg.HostID }

// Service returns the agent's service name.
func (a *Agent) Service() string { return a.cfg.Service }

// DC returns the agent's data center.
func (a *Agent) DC() string { return a.cfg.DC }

// Catalog returns the agent's event catalog.
func (a *Agent) Catalog() *event.Catalog { return a.cfg.Catalog }

// Start installs a query object. Unknown event types and unknown
// projection columns are rejected — the server validated against the same
// catalog, so a mismatch means skew, and refusing is safer than shipping
// garbage.
func (a *Agent) Start(hq transport.HostQuery) error {
	schema, ok := a.cfg.Catalog.Lookup(hq.EventType)
	if !ok {
		return fmt.Errorf("host: unknown event type %q", hq.EventType)
	}
	aq := &activeQuery{hq: hq, startNs: hq.StartNanos, endNs: hq.EndNanos}
	if hq.Pred != nil {
		checked, kind, err := expr.Check(hq.Pred, expr.SchemaResolver{Schemas: []*event.Schema{schema}})
		if err != nil {
			return fmt.Errorf("host: bad predicate: %w", err)
		}
		if kind != event.KindBool {
			return fmt.Errorf("host: predicate is %s, not bool", kind)
		}
		canon := expr.Canon(checked)
		// Trial-intern against a throwaway builder: rebuildLocked interns
		// the same tree and cannot return an error, so any malformed plan
		// (unresolved call, non-literal like pattern) must be rejected
		// here, at the same point the old per-query compile rejected it.
		if _, err := expr.NewProgramBuilder().Intern(canon); err != nil {
			return fmt.Errorf("host: compile predicate: %w", err)
		}
		aq.canon = canon
	}
	aq.colIdx = make([]int, len(hq.Columns))
	for i, col := range hq.Columns {
		idx := schema.FieldIndex(col)
		if idx < 0 {
			return fmt.Errorf("host: event type %q has no field %q", hq.EventType, col)
		}
		aq.colIdx[i] = idx
	}
	aq.width = len(aq.colIdx)
	rate := hq.SampleEvents
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	// Seed ties the sample to (query, host) so re-runs are reproducible
	// but hosts sample independently. FNV-1a over the full HostID keeps
	// anagram host ids (h-ab vs h-ba) uncorrelated.
	h := fnv.New64a()
	h.Write([]byte(a.cfg.HostID))
	seed := hq.QueryID*1000003 ^ h.Sum64()
	aq.baseRate = rate
	aq.seed = seed
	aq.effRate = rate
	aq.sampleAll.Store(rate >= 1)
	aq.sampler = sampling.NewGeometricSampler(rate, seed)
	if !aq.sampleAll.Load() {
		aq.skip.Store(aq.sampler.NextSkip())
	}
	aq.budget = governor.Budget{CPUPct: hq.BudgetCPUPct, BytesPerSec: hq.BudgetBytesPerSec}
	aq.tracker = governor.NewTracker()
	// Stamp the heartbeat clock now: a fresh query with nothing to report
	// sends its first counter-only heartbeat one HeartbeatInterval after
	// activation, not on the first flush tick.
	aq.lastSentNanos = a.cfg.Clock().UnixNano()

	key := queryKey{id: hq.QueryID, typeIdx: hq.TypeIdx}
	a.mu.Lock()
	if _, dup := a.queries[key]; dup {
		a.mu.Unlock()
		return fmt.Errorf("host: query %d (type %s) already active", hq.QueryID, hq.EventType)
	}
	a.queries[key] = aq
	a.rebuildLocked()
	a.mu.Unlock()
	if hq.ReplayNanos > 0 && a.cfg.Record != nil {
		a.wg.Add(1)
		go a.replayShip(aq)
	}
	return nil
}

// Stop removes a query's objects (all event types); unknown ids are a
// no-op — stop is idempotent because span expiry and explicit cancel can
// race. A removed query's partial chunk is pushed to the shipper so stop
// does not lose sampled tuples.
func (a *Agent) Stop(queryID uint64) {
	a.mu.Lock()
	var removed []*activeQuery
	for key, aq := range a.queries {
		if key.id == queryID {
			delete(a.queries, key)
			removed = append(removed, aq)
		}
	}
	if len(removed) > 0 {
		a.rebuildLocked()
	}
	a.mu.Unlock()
	for _, aq := range removed {
		aq.stopped.Store(true)
		a.salvage(aq)
	}
}

// ActiveQueries returns the distinct ids of installed queries.
func (a *Agent) ActiveQueries() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[uint64]bool, len(a.queries))
	out := make([]uint64, 0, len(a.queries))
	for key := range a.queries {
		if !seen[key.id] {
			seen[key.id] = true
			out = append(out, key.id)
		}
	}
	return out
}

// PruneExpired removes queries whose span ended before now. The server
// also sends StopQuery; pruning is the local backstop so an unreachable
// server cannot leave load on the host (paper: spans guard against
// forgotten queries).
func (a *Agent) PruneExpired(now time.Time) int {
	nowN := now.UnixNano()
	a.mu.Lock()
	var removed []*activeQuery
	for key, aq := range a.queries {
		if aq.hq.EndNanos != 0 && nowN >= aq.hq.EndNanos {
			delete(a.queries, key)
			removed = append(removed, aq)
		}
	}
	if len(removed) > 0 {
		a.rebuildLocked()
	}
	a.mu.Unlock()
	for _, aq := range removed {
		aq.stopped.Store(true)
		a.salvage(aq)
	}
	return len(removed)
}

// rebuildLocked swaps in a new immutable type→program snapshot: each
// event type's queries compiled into one shared typeProgram (see that
// type's comment). Shed queries are excluded — they stop paying per-event
// cost entirely — but stay in a.queries so heartbeats keep announcing the
// BudgetShed state. Queries are processed in (QueryID, TypeIdx) order so
// rebuilds are deterministic: the same query set always interns the same
// program with the same node ids, regardless of map iteration order.
func (a *Agent) rebuildLocked() {
	keys := make([]queryKey, 0, len(a.queries))
	for key, aq := range a.queries {
		if aq.shed {
			continue
		}
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].id != keys[j].id {
			return keys[i].id < keys[j].id
		}
		return keys[i].typeIdx < keys[j].typeIdx
	})
	perType := make(map[string][]*activeQuery, len(keys))
	for _, key := range keys {
		aq := a.queries[key]
		perType[aq.hq.EventType] = append(perType[aq.hq.EventType], aq)
	}
	m := make(map[string]*typeProgram, len(perType))
	for typ, aqs := range perType {
		m[typ] = buildTypeProgram(aqs)
	}
	a.byType.Store(&m)
}

// buildTypeProgram compiles one event type's query list into its shared
// dispatch index: predicates interned into one program, identical column
// sets merged into one projection group, subscribers split into the
// always/gated lists.
func buildTypeProgram(aqs []*activeQuery) *typeProgram {
	tp := &typeProgram{}
	b := expr.NewProgramBuilder()
	groupIdx := make(map[string]int32, len(aqs))
	width := 0
	for _, aq := range aqs {
		s := subscriber{aq: aq, pred: -1, group: -1, startNs: aq.hq.StartNanos, endNs: aq.hq.EndNanos}
		if aq.canon != nil {
			// Start trial-interned the same canonical tree, so this cannot
			// fail here.
			id, err := b.Intern(aq.canon)
			if err != nil {
				continue // unreachable; drop rather than dispatch wrongly
			}
			s.pred = id
		}
		if aq.width > 0 {
			gk := groupKey(aq.colIdx)
			g, ok := groupIdx[gk]
			if !ok {
				g = int32(len(tp.groups))
				groupIdx[gk] = g
				tp.groups = append(tp.groups, projGroup{colIdx: aq.colIdx, off: width})
				width += aq.width
			}
			s.group = g
		}
		if s.startNs == 0 && s.endNs == 0 {
			tp.always = append(tp.always, s)
		} else {
			if len(tp.gated) == 0 || s.startNs < tp.minStart {
				tp.minStart = s.startNs
			}
			tp.gated = append(tp.gated, s)
		}
	}
	if prog := b.Build(); prog.NumNodes() > 0 {
		tp.prog = prog
	}
	if len(tp.always)+len(tp.gated) == 1 {
		s := &subscriber{}
		if len(tp.always) == 1 {
			*s = tp.always[0]
		} else {
			*s = tp.gated[0]
		}
		if s.aq.canon == nil {
			tp.solo = s
		} else if ev, err := expr.Compile(s.aq.canon); err == nil {
			tp.solo = s
			tp.soloPred = expr.Predicate(ev)
		}
	}
	projWidth := width
	tp.ctxs.New = func() any { return newDispatchCtx(tp, projWidth) }
	return tp
}

// groupKey encodes a projection column set so subscribers projecting
// identical columns (in the same order) share one projGroup.
func groupKey(colIdx []int) string {
	b := make([]byte, 0, len(colIdx)*4)
	for _, idx := range colIdx {
		b = binary.AppendVarint(b, int64(idx))
	}
	return string(b)
}

// Log offers one event to every active query. This is the application hot
// path: selection → Mᵢ count → sampling → projection → chunk append. It
// never blocks, never returns an error to the caller, and makes no
// steady-state heap allocations; all losses are counted. scrubvet's
// hotpath analyzer enforces the no-allocation claim transitively.
//
//scrub:hotpath
func (a *Agent) Log(ev *event.Event) {
	if rs := a.cfg.Record; rs != nil {
		rs.Append(ev)
	}
	seq := a.logged.IncValue()
	// Self-observation must cost less than the thing observed: 1 in 64
	// calls is timed into the latency histogram, and only when a registry
	// was configured.
	timed := a.logNs != nil && seq&costSampleMask == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	a.logEvent(ev)
	if timed {
		a.logNs.Observe(float64(time.Since(t0)))
	}
}

// logEvent dispatches one event through the type's shared query index:
// each distinct predicate node is evaluated at most once (memoized in the
// dispatch context's expr.Ctx), each distinct projection column set is
// extracted at most once, and the results fan out to subscribers — whose
// sampling, accounting, and chunks remain strictly per-query.
//
//scrub:hotpath
func (a *Agent) logEvent(ev *event.Event) {
	tp := (*a.byType.Load())[ev.Schema.Name()]
	if tp == nil {
		return
	}
	ts := ev.TimeNanos
	if s := tp.solo; s != nil {
		if ts < s.startNs || (s.endNs != 0 && ts >= s.endNs) {
			return
		}
		if tp.soloPred != nil && !tp.soloPred(expr.EventRow{Event: ev}) {
			return
		}
		a.offerMatched(tp, s, nil, ev, ts)
		a.matched.Add(1)
		return
	}
	dc := tp.ctxs.Get().(*dispatchCtx)
	if dc.ec != nil {
		dc.ec.Begin(expr.EventRow{Event: ev})
	}
	anyMatch := false
	for i := range tp.always {
		s := &tp.always[i]
		if s.pred >= 0 && !dc.ec.Bool(s.pred) {
			continue
		}
		a.offerMatched(tp, s, dc, ev, ts)
		anyMatch = true
	}
	if len(tp.gated) > 0 && ts >= tp.minStart {
		for i := range tp.gated {
			s := &tp.gated[i]
			if ts < s.startNs {
				continue
			}
			if s.endNs != 0 && ts >= s.endNs {
				continue
			}
			if s.pred >= 0 && !dc.ec.Bool(s.pred) {
				continue
			}
			a.offerMatched(tp, s, dc, ev, ts)
			anyMatch = true
		}
	}
	if dc.ec != nil {
		dc.ec.Finish()
	}
	dc.clear(tp)
	tp.ctxs.Put(dc)
	if anyMatch {
		a.matched.Add(1)
	}
}

// Cost sampling: 1 in every 2^costSampleShift matched events (and Log
// calls) is wall-clock timed, and the measurement is charged at
// 2^costSampleShift× — cheap enough for the hot path, accurate enough
// for budget enforcement over 100ms+ intervals.
const (
	costSampleShift = 6
	costSampleMask  = 1<<costSampleShift - 1
)

// offerMatched runs the per-subscriber half of dispatch for an event that
// already passed the shared selection stage: Mᵢ accounting, event
// sampling, and (for kept events) projection into the query's chunk.
func (a *Agent) offerMatched(tp *typeProgram, s *subscriber, dc *dispatchCtx, ev *event.Event, ts int64) {
	aq := s.aq
	m := aq.matched.Add(1)
	// The matched count doubles as the cost-sampling sequence, so the
	// per-query CPU measurement adds no atomics of its own. Shared
	// selection cost is not charged per-query — as before, when selection
	// for non-matching events was not charged — because shedding one
	// subscriber cannot remove a predicate node other queries still need.
	timed := m&costSampleMask == 0
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}
	kept := true
	if !aq.sampleAll.Load() {
		if aq.skip.Add(-1) != 0 {
			// >0: inside the current gap. <0: a racing decrement during a
			// concurrent re-arm; the re-arm's Add folds it into the next
			// gap. Either way the event is unsampled and cost one decrement.
			kept = false
		} else {
			aq.sampled.Add(1)
		}
	}
	if kept {
		a.enqueue(tp, s, dc, ev, ts)
	}
	if timed {
		aq.cpuNs.Add(uint64(time.Since(t0)) << costSampleShift)
	}
}

// enqueue copies the event's projected columns — extracted at most once
// per event per distinct column set by the dispatch context — into the
// query's active chunk, submitting the chunk to the shipper when it
// fills. Allocation-free in steady state: the tuple and its values land
// in pooled chunk memory. A nil dc (the solo fast path) extracts the
// columns directly from the event into the chunk.
func (a *Agent) enqueue(tp *typeProgram, s *subscriber, dc *dispatchCtx, ev *event.Event, ts int64) {
	aq := s.aq
	// Extract (or reuse) the group's columns outside aq.mu: the scratch
	// belongs to the dispatch context, not the query.
	var src []event.Value
	if dc != nil && s.group >= 0 {
		src = dc.project(tp, s.group, ev)
	}
	aq.mu.Lock()
	if !aq.sampleAll.Load() {
		// Re-arm the countdown for the next kept event. Adding (rather
		// than storing) credits decrements that raced past zero, keeping
		// the long-run keep rate unbiased.
		aq.skip.Add(aq.sampler.NextSkip())
	}
	c := aq.cur
	if c == nil {
		c = a.getChunk(aq)
		//scrub:allowretain(chunk parked on its owning query under aq.mu; reclaimed by submit/salvage/flush)
		aq.cur = c
	}
	i := c.n
	var vals []event.Value
	if w := aq.width; w > 0 {
		base := i * w
		vals = c.vals[base : base+w : base+w]
		if src != nil {
			copy(vals, src)
		} else {
			for j, idx := range aq.colIdx {
				vals[j] = ev.At(idx)
			}
		}
	}
	c.tuples[i] = transport.Tuple{RequestID: ev.RequestID, TsNanos: ts, Values: vals}
	c.n++
	full := c.n == len(c.tuples)
	if full {
		aq.cur = nil
	}
	aq.mu.Unlock()
	if full {
		a.chunkFills.Inc()
		a.submit(c)
	}
}

// submit hands a full (or salvaged) chunk to the shipper without
// blocking; when the shipping queue is backlogged the whole chunk is
// dropped and every tuple counted.
func (a *Agent) submit(c *chunk) {
	select {
	//scrub:allowretain(ownership handoff: the shipper goroutine ships and recycles the chunk)
	case a.chunks <- c:
	default:
		n := uint64(c.n)
		c.q.drops.Add(n)
		a.queueDrops.Add(n)
		a.putChunk(c)
	}
}

// getChunk takes a pooled chunk and sizes its flat value array for the
// query's projection width. Steady state allocates nothing; a fresh
// allocation happens only when the pool is empty or a wider query first
// uses a recycled chunk.
func (a *Agent) getChunk(aq *activeQuery) *chunk {
	c, _ := a.chunkPool.Get().(*chunk)
	if c == nil {
		//scrub:allowalloc(pool-miss refill; amortized to zero in steady state)
		c = &chunk{tuples: make([]transport.Tuple, a.cfg.BatchSize)}
	}
	if need := len(c.tuples) * aq.width; cap(c.vals) < need {
		//scrub:allowalloc(first use by a wider query re-sizes the recycled arena)
		c.vals = make([]event.Value, need)
	}
	c.q = aq
	c.n = 0
	return c
}

// putChunk clears value references (so pooled chunks don't pin event
// payloads) and recycles the chunk.
func (a *Agent) putChunk(c *chunk) {
	used := c.n * c.q.width
	vals := c.vals[:cap(c.vals)]
	for i := 0; i < used; i++ {
		vals[i] = event.Value{}
	}
	for i := 0; i < c.n; i++ {
		c.tuples[i] = transport.Tuple{}
	}
	c.q = nil
	c.n = 0
	c.epoch = 0
	c.done = false
	a.chunkPool.Put(c)
}

// salvage pushes a removed query's partial chunk to the shipper so stop
// and span expiry don't lose sampled tuples.
func (a *Agent) salvage(aq *activeQuery) {
	aq.mu.Lock()
	c := aq.cur
	aq.cur = nil
	aq.mu.Unlock()
	if c == nil {
		return
	}
	if c.n == 0 {
		a.putChunk(c)
		return
	}
	a.submit(c)
}

// replayShip scans the record stream for a query's replay span —
// [StartNanos-ReplayNanos, StartNanos), the complement of the live
// partition, so replayed and live tuples never overlap — and ships the
// matching history through the normal chunk/shipper path tagged with the
// replay epoch, ending with a ReplayDone marker batch. Runs as its own
// goroutine per replaying query: the scan is disk- and decode-bound and
// must never touch the application's Log latency.
//
// Replay shipping inherits every impact bound live shipping has: chunks
// go through the same bounded queue (a backlog drops them, counted as
// queue drops), the encoded bytes land in the same governor accounting,
// and a shed or stopped query aborts the scan mid-flight. The ReplayDone
// marker itself can be dropped under backlog; central's replay hold has
// a lease-clock deadline for exactly that case.
func (a *Agent) replayShip(aq *activeQuery) {
	defer a.wg.Done()
	to := aq.startNs
	if to == 0 {
		// Immediate-start query: the live partition begins at activation.
		to = a.cfg.Clock().UnixNano()
	}
	from := to - aq.hq.ReplayNanos
	var pred func(expr.Row) bool
	if aq.canon != nil {
		ev, err := expr.Compile(aq.canon)
		if err != nil {
			// Start validated the tree, so this is unreachable; ship
			// nothing rather than unfiltered history.
			a.submitReplay(nil, aq, true)
			return
		}
		pred = expr.Predicate(ev)
	}
	// Replay applies the query's base event-sampling rate with a fresh
	// sampler under the query's own seed: the sample stays reproducible
	// per (query, host), but is drawn independently of the live sampler's
	// sequence. With sampling off (rate 1) replay is exact.
	sampleAll := aq.baseRate >= 1
	var sampler *sampling.GeometricSampler
	var skip int64
	if !sampleAll {
		sampler = sampling.NewGeometricSampler(aq.baseRate, aq.seed)
		skip = sampler.NextSkip()
	}
	var c *chunk
	err := a.cfg.Record.Scan(from, to, aq.hq.EventType, func(ev *event.Event) bool {
		if aq.stopped.Load() {
			return false
		}
		select {
		case <-a.done:
			return false
		default:
		}
		if pred != nil && !pred(expr.EventRow{Event: ev}) {
			return true
		}
		// Fold replayed accounting into the query's cumulative counters:
		// central's estimator and stream stats then see the same Mᵢ/mᵢ a
		// query submitted before the events would have reported.
		aq.matched.Add(1)
		a.matched.Add(1)
		if !sampleAll {
			skip--
			if skip != 0 {
				return true
			}
			skip = sampler.NextSkip()
			aq.sampled.Add(1)
		}
		if c == nil {
			c = a.getChunk(aq)
			c.epoch = 1
		}
		i := c.n
		var vals []event.Value
		if w := aq.width; w > 0 {
			base := i * w
			vals = c.vals[base : base+w : base+w]
			for j, idx := range aq.colIdx {
				vals[j] = ev.At(idx)
			}
		}
		c.tuples[i] = transport.Tuple{RequestID: ev.RequestID, TsNanos: ev.TimeNanos, Values: vals}
		c.n++
		if c.n == len(c.tuples) {
			a.submitReplay(c, aq, false)
			c = nil
		}
		return true
	})
	_ = err // a failed or aborted scan still owes the done marker below
	if aq.stopped.Load() {
		// Dead query: drop the partial chunk, skip the marker (central
		// tears the query's state down independently).
		if c != nil {
			a.putChunk(c)
		}
		return
	}
	// Final partial chunk doubles as the done marker; an empty scan still
	// sends an explicit (tuple-free) marker so central can release the
	// hold without waiting out the deadline.
	if c == nil {
		c = a.getChunk(aq)
		c.epoch = 1
	}
	a.submitReplay(c, aq, true)
}

// submitReplay tags and submits one replay chunk (nil allocates an empty
// marker-only chunk first).
func (a *Agent) submitReplay(c *chunk, aq *activeQuery, done bool) {
	if c == nil {
		c = a.getChunk(aq)
		c.epoch = 1
	}
	c.done = done
	a.submit(c)
}

// shipper drains full chunks as they arrive and runs a flush cycle on
// the timer, on explicit Flush requests, and at shutdown.
func (a *Agent) shipper() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case c := <-a.chunks:
			a.ship(c)
		case ack := <-a.flushReq:
			a.flushCycle()
			close(ack)
		case <-ticker.C:
			a.flushCycle()
			a.PruneExpired(a.cfg.Clock())
		case <-a.done:
			a.flushCycle()
			return
		}
	}
}

// flushCycle drains queued chunks, swaps out and ships every query's
// partial chunk, then sends counter-only heartbeats for queries whose
// totals moved without producing tuples.
func (a *Agent) flushCycle() {
	for {
		select {
		case c := <-a.chunks:
			a.ship(c)
			continue
		default:
		}
		break
	}
	a.mu.Lock()
	actives := a.shipperScratch[:0]
	for _, aq := range a.queries {
		actives = append(actives, aq)
	}
	a.shipperScratch = actives
	a.mu.Unlock()
	for _, aq := range actives {
		aq.mu.Lock()
		c := aq.cur
		aq.cur = nil
		aq.mu.Unlock()
		if c == nil {
			continue
		}
		if c.n > 0 {
			a.ship(c)
		} else {
			a.putChunk(c)
		}
	}
	now := a.cfg.Clock().UnixNano()
	for _, aq := range actives {
		if aq.needsHeartbeat() || now-aq.lastSentNanos >= int64(a.cfg.HeartbeatInterval) {
			a.sendBatch(aq, nil, 0, false)
		}
	}
	a.governTick(actives)
}

// ship sends one chunk's tuples and recycles the chunk.
func (a *Agent) ship(c *chunk) {
	a.sendBatch(c.q, c.tuples[:c.n], c.epoch, c.done)
	a.putChunk(c)
}

// needsHeartbeat reports whether the query has anything new to announce:
// cumulative counters that moved past what the last successful batch
// carried, or a pending non-counter change (rate, shed). Shipper-
// goroutine only. A counter bump racing this comparison is caught by the
// next cycle — the snapshots record what was sent, never what is current.
func (aq *activeQuery) needsHeartbeat() bool {
	return aq.announce ||
		aq.matched.Load() != aq.lastMatched ||
		aq.sampled.Load() != aq.lastSampled ||
		aq.drops.Load() != aq.lastDrops
}

// sendBatch ships tuples (nil for a counter-only heartbeat) with the
// query's cumulative accounting. On success the counter snapshots record
// what the batch carried; a failed send leaves them alone, so the same
// totals trigger a resend on the next cycle (see needsHeartbeat). A
// nonzero epoch marks the batch as replayed history; done marks the
// stream's final replay batch.
func (a *Agent) sendBatch(aq *activeQuery, tuples []transport.Tuple, epoch uint32, done bool) {
	matched := aq.matched.Load()
	sampledRaw := aq.sampled.Load()
	drops := aq.drops.Load()
	sampled := sampledRaw
	if aq.sampleAll.Load() {
		sampled = matched // rate 1: every matched event is sampled
	}
	batch := transport.TupleBatch{
		QueryID:      aq.hq.QueryID,
		HostID:       a.cfg.HostID,
		TypeIdx:      aq.hq.TypeIdx,
		Tuples:       tuples,
		MatchedTotal: matched,
		SampledTotal: sampled,
		QueueDrops:   drops,
		EffRate:      aq.effRate,
		BudgetShed:   aq.shed,
		CPUNs:        aq.cpuNs.Load(),
		ShipBytes:    aq.bytesShipped, // through the previous batch
		ReplayEpoch:  epoch,
		ReplayDone:   done,
	}
	// Measure the batch's wire size for budget accounting by encoding it
	// into a shipper-owned scratch buffer — exact (it is the same codec
	// the wire uses, plus the 4-byte frame header), allocation-free in
	// steady state, and amortized once per batch, not per tuple.
	size := 0
	if enc, err := transport.AppendEncode(a.encScratch[:0], batch); err == nil {
		size = len(enc) + 4
		a.encScratch = enc[:0]
	}
	if err := a.cfg.Sink.SendBatch(batch); err != nil {
		a.sinkErrors.Add(1)
		return
	}
	// Snapshot the raw counters (not the rate-1 substituted mᵢ, which
	// derives from matched and is covered by its comparison).
	aq.announce = false
	aq.lastMatched = matched
	aq.lastSampled = sampledRaw
	aq.lastDrops = drops
	aq.lastSentNanos = a.cfg.Clock().UnixNano()
	aq.bytesShipped += uint64(size)
	a.shipBytes.Add(uint64(size))
	a.shipped.Add(uint64(len(tuples)))
	if epoch != 0 {
		a.replayShipped.Add(uint64(len(tuples)))
		a.replayShipBytes.Add(uint64(size))
	}
}

// governTick runs one budget-enforcement interval over the active
// queries: per-query cost deltas since the last tick, the host-aggregate
// check, and whatever ladder actions the trackers decide. Shipper-only.
// Cycles where the configured clock has not advanced are skipped, which
// keeps enforcement deterministic when tests drive a virtual clock (the
// real flush ticker still fires, but sees zero elapsed time).
func (a *Agent) governTick(actives []*activeQuery) {
	now := a.cfg.Clock().UnixNano()
	elapsed := now - a.lastGovNanos
	if elapsed <= 0 {
		return
	}
	a.lastGovNanos = now
	hostU := governor.Usage{ElapsedNs: elapsed}
	usages := a.govScratch[:0]
	for _, aq := range actives {
		cpu := aq.cpuNs.Load()
		bytes := aq.bytesShipped
		u := governor.Usage{CPUNs: cpu - aq.lastCPUNs, Bytes: bytes - aq.lastBytes, ElapsedNs: elapsed}
		aq.lastCPUNs = cpu
		aq.lastBytes = bytes
		usages = append(usages, u)
		hostU.CPUNs += u.CPUNs
		hostU.Bytes += u.Bytes
	}
	a.govScratch = usages
	hostOver := governor.Load(hostU, a.cfg.Governor.HostBudget) > 1
	for i, aq := range actives {
		if aq.shed {
			continue
		}
		eb := governor.EffectiveBudget(aq.budget, a.cfg.Governor.HostBudget, hostOver, len(actives))
		switch aq.tracker.Evaluate(usages[i], eb, a.cfg.Governor) {
		case governor.ActionDownsample:
			a.govDownsamples.Inc()
			a.applyRate(aq)
		case governor.ActionRecover:
			a.govRecovers.Inc()
			a.applyRate(aq)
		case governor.ActionShed:
			a.govSheds.Inc()
			a.mu.Lock()
			aq.shed = true
			a.rebuildLocked()
			a.mu.Unlock()
			aq.stopped.Store(true) // replay shipping is sheddable too
			aq.announce = true
			a.salvage(aq)
		}
	}
}

// applyRate re-arms a query's sampler at base rate × the tracker's
// multiplier and records the new effective rate for batch reporting.
// Shipper-only.
func (a *Agent) applyRate(aq *activeQuery) {
	rate := aq.baseRate * aq.tracker.Mult()
	if rate > 1 {
		rate = 1
	}
	aq.mu.Lock()
	if aq.sampleAll.Load() {
		// Leaving the counter-free rate-1 fast path: seed the sampled
		// counter with the matched total (at rate 1, mᵢ = Mᵢ) so the
		// cumulative accounting stays exact across the transition. A Log
		// racing past the flag flip may ship one tuple uncounted in mᵢ —
		// a one-time, one-event skew the estimator cannot notice. Once
		// off the fast path a query never returns to it (a full recovery
		// runs a rate-1 sampler instead), because re-deriving mᵢ = Mᵢ
		// after a degraded period would overstate the sample.
		aq.sampled.Store(aq.matched.Load())
		aq.sampleAll.Store(false)
	}
	aq.sampler = sampling.NewGeometricSampler(rate, aq.seed)
	aq.skip.Store(aq.sampler.NextSkip())
	aq.effRate = rate
	aq.mu.Unlock()
	aq.announce = true
}

// AccountDrops charges n dropped tuples against a query's cumulative
// drop counter. Sinks that buffer across disconnects (NetSink's spill
// queue) call this when their buffer overflows, so tuples lost between
// the agent and the wire land in the same QueueDrops accounting central
// reports. Unknown queries charge only the agent-level counter (the
// query may have been stopped while its batches waited out an outage).
func (a *Agent) AccountDrops(queryID uint64, typeIdx uint8, n uint64) {
	if n == 0 {
		return
	}
	a.queueDrops.Add(n)
	a.mu.Lock()
	aq := a.queries[queryKey{id: queryID, typeIdx: typeIdx}]
	a.mu.Unlock()
	if aq != nil {
		aq.drops.Add(n) // the drops-counter comparison heartbeats this
	}
}

// Flush synchronously pushes pending chunks and counters out (test and
// shutdown aid): it asks the shipper for a flush cycle and waits for the
// acknowledgement, so tests flush deterministically instead of sleeping.
func (a *Agent) Flush() {
	ack := make(chan struct{})
	select {
	case a.flushReq <- ack:
		select {
		case <-ack:
		case <-a.done:
		}
	case <-a.done:
	}
}

// Stats snapshots the agent counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Logged:              a.logged.Value(),
		Matched:             a.matched.Value(),
		Shipped:             a.shipped.Value(),
		QueueDrops:          a.queueDrops.Value(),
		SinkErrors:          a.sinkErrors.Value(),
		GovernorDownsamples: a.govDownsamples.Value(),
		GovernorRecovers:    a.govRecovers.Value(),
		GovernorSheds:       a.govSheds.Value(),
	}
}

// Close stops the shipper after a final flush. The agent must not be used
// afterwards.
func (a *Agent) Close() {
	a.closed.Do(func() {
		close(a.done)
		a.wg.Wait()
	})
}
