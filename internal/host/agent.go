// Package host implements the Scrub agent embedded in each application
// process. The agent owns the paper's host-side responsibilities and
// nothing else: it activates query objects pushed by the query server,
// and for each log()ed event runs selection, projection, and event
// sampling, then ships the surviving tuples to ScrubCentral in batches.
//
// The design constraint that shapes everything here is the paper's
// headline requirement: minimal impact on the application. Concretely:
//
//   - Log never blocks. The shipping queue is bounded; when it fills,
//     tuples are dropped and counted. Accuracy is traded for impact.
//   - With no active queries, Log is one atomic pointer load and a map
//     lookup.
//   - No joins, group-bys, or aggregations ever run here — those belong
//     to ScrubCentral. Selection and projection run on the host only
//     because they shrink what must be shipped.
package host

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/sampling"
	"scrub/internal/transport"
)

// Sink receives tuple batches bound for ScrubCentral. Implementations:
// a transport connection (production) or a direct engine handle (tests,
// single-process clusters).
type Sink interface {
	SendBatch(transport.TupleBatch) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(transport.TupleBatch) error

// SendBatch implements Sink.
func (f SinkFunc) SendBatch(b transport.TupleBatch) error { return f(b) }

// Config parametrizes an Agent.
type Config struct {
	HostID  string
	Service string
	DC      string
	Catalog *event.Catalog
	Sink    Sink

	// QueueSize bounds the pending-tuple queue shared by all queries on
	// this host. Default 8192. When full, Log drops (never blocks).
	QueueSize int
	// BatchSize flushes a per-query batch when it reaches this many
	// tuples. Default 256.
	BatchSize int
	// FlushInterval flushes pending batches at least this often.
	// Default 100ms.
	FlushInterval time.Duration
	// Clock substitutes time.Now for tests and simulations.
	Clock func() time.Time
}

func (c *Config) fillDefaults() error {
	if c.HostID == "" {
		return fmt.Errorf("host: empty HostID")
	}
	if c.Service == "" {
		return fmt.Errorf("host: empty Service")
	}
	if c.Catalog == nil {
		return fmt.Errorf("host: nil Catalog")
	}
	if c.Sink == nil {
		return fmt.Errorf("host: nil Sink")
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 8192
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 100 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return nil
}

// queryKey identifies an installed query object. A join query installs
// one object per event type on each host, all sharing the query id, so
// the key includes the type index.
type queryKey struct {
	id      uint64
	typeIdx uint8
}

// activeQuery is one installed query object, pre-compiled for the hot
// path.
type activeQuery struct {
	hq      transport.HostQuery
	pred    func(expr.Row) bool // nil: match everything
	colIdx  []int               // schema field indices to project
	sampler *sampling.EventSampler

	matched atomic.Uint64 // Mᵢ: events passing selection
	sampled atomic.Uint64 // mᵢ: events surviving event sampling
	drops   atomic.Uint64 // queue-full drops
	// countersDirty marks that totals changed since the last ship, so
	// counter-only batches keep the estimator fresh even when sampling
	// drops every tuple.
	countersDirty atomic.Bool
}

// queued is one tuple awaiting shipment.
type queued struct {
	q     *activeQuery
	tuple transport.Tuple
}

// Stats is a snapshot of agent-level accounting.
type Stats struct {
	Logged     uint64 // events offered to Log
	Matched    uint64 // events matching ≥1 active query
	Shipped    uint64 // tuples handed to the sink
	QueueDrops uint64 // tuples dropped because the queue was full
	SinkErrors uint64 // batches the sink rejected
}

// Agent is the per-host Scrub runtime. Create with New, feed with Log,
// manage with Start/Stop, terminate with Close.
type Agent struct {
	cfg Config

	// byType is an immutable snapshot map, swapped wholesale on query
	// start/stop. Log only ever loads it — no locks on the hot path.
	byType atomic.Pointer[map[string][]*activeQuery]

	mu      sync.Mutex // guards mutations of the query set
	queries map[queryKey]*activeQuery

	queue  chan queued
	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup

	logged     atomic.Uint64
	matched    atomic.Uint64
	shipped    atomic.Uint64
	queueDrops atomic.Uint64
	sinkErrors atomic.Uint64
}

// New creates and starts an agent (its shipper goroutine runs until
// Close).
func New(cfg Config) (*Agent, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	a := &Agent{
		cfg:     cfg,
		queries: make(map[queryKey]*activeQuery),
		queue:   make(chan queued, cfg.QueueSize),
		done:    make(chan struct{}),
	}
	empty := make(map[string][]*activeQuery)
	a.byType.Store(&empty)
	a.wg.Add(1)
	go a.shipper()
	return a, nil
}

// ID returns the agent's host identifier.
func (a *Agent) ID() string { return a.cfg.HostID }

// Service returns the agent's service name.
func (a *Agent) Service() string { return a.cfg.Service }

// DC returns the agent's data center.
func (a *Agent) DC() string { return a.cfg.DC }

// Catalog returns the agent's event catalog.
func (a *Agent) Catalog() *event.Catalog { return a.cfg.Catalog }

// Start installs a query object. Unknown event types and unknown
// projection columns are rejected — the server validated against the same
// catalog, so a mismatch means skew, and refusing is safer than shipping
// garbage.
func (a *Agent) Start(hq transport.HostQuery) error {
	schema, ok := a.cfg.Catalog.Lookup(hq.EventType)
	if !ok {
		return fmt.Errorf("host: unknown event type %q", hq.EventType)
	}
	aq := &activeQuery{hq: hq}
	if hq.Pred != nil {
		checked, kind, err := expr.Check(hq.Pred, expr.SchemaResolver{Schemas: []*event.Schema{schema}})
		if err != nil {
			return fmt.Errorf("host: bad predicate: %w", err)
		}
		if kind != event.KindBool {
			return fmt.Errorf("host: predicate is %s, not bool", kind)
		}
		ev, err := expr.Compile(checked)
		if err != nil {
			return fmt.Errorf("host: compile predicate: %w", err)
		}
		aq.pred = expr.Predicate(ev)
	}
	aq.colIdx = make([]int, len(hq.Columns))
	for i, col := range hq.Columns {
		idx := schema.FieldIndex(col)
		if idx < 0 {
			return fmt.Errorf("host: event type %q has no field %q", hq.EventType, col)
		}
		aq.colIdx[i] = idx
	}
	rate := hq.SampleEvents
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	// Seed ties the sample to (query, host) so re-runs are reproducible
	// but hosts sample independently.
	seed := hq.QueryID*1000003 + uint64(len(a.cfg.HostID))*97
	for _, c := range a.cfg.HostID {
		seed = seed*131 + uint64(c)
	}
	aq.sampler = sampling.NewEventSampler(rate, seed)

	key := queryKey{id: hq.QueryID, typeIdx: hq.TypeIdx}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.queries[key]; dup {
		return fmt.Errorf("host: query %d (type %s) already active", hq.QueryID, hq.EventType)
	}
	a.queries[key] = aq
	a.rebuildLocked()
	return nil
}

// Stop removes a query's objects (all event types); unknown ids are a
// no-op — stop is idempotent because span expiry and explicit cancel can
// race.
func (a *Agent) Stop(queryID uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	removed := false
	for key := range a.queries {
		if key.id == queryID {
			delete(a.queries, key)
			removed = true
		}
	}
	if removed {
		a.rebuildLocked()
	}
}

// ActiveQueries returns the distinct ids of installed queries.
func (a *Agent) ActiveQueries() []uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[uint64]bool, len(a.queries))
	out := make([]uint64, 0, len(a.queries))
	for key := range a.queries {
		if !seen[key.id] {
			seen[key.id] = true
			out = append(out, key.id)
		}
	}
	return out
}

// PruneExpired removes queries whose span ended before now. The server
// also sends StopQuery; pruning is the local backstop so an unreachable
// server cannot leave load on the host (paper: spans guard against
// forgotten queries).
func (a *Agent) PruneExpired(now time.Time) int {
	nowN := now.UnixNano()
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for key, aq := range a.queries {
		if aq.hq.EndNanos != 0 && nowN >= aq.hq.EndNanos {
			delete(a.queries, key)
			n++
		}
	}
	if n > 0 {
		a.rebuildLocked()
	}
	return n
}

// rebuildLocked swaps in a new immutable type→queries snapshot.
func (a *Agent) rebuildLocked() {
	m := make(map[string][]*activeQuery, len(a.queries))
	for _, aq := range a.queries {
		m[aq.hq.EventType] = append(m[aq.hq.EventType], aq)
	}
	a.byType.Store(&m)
}

// Log offers one event to every active query. This is the application hot
// path: selection → Mᵢ count → sampling → projection → non-blocking
// enqueue. It never blocks and never returns an error to the caller; all
// losses are counted.
func (a *Agent) Log(ev *event.Event) {
	a.logged.Add(1)
	byType := *a.byType.Load()
	qs := byType[ev.Schema.Name()]
	if len(qs) == 0 {
		return
	}
	ts := ev.TimeNanos
	var row expr.EventRow
	row.Event = ev
	anyMatch := false
	for _, aq := range qs {
		if aq.hq.StartNanos != 0 && ts < aq.hq.StartNanos {
			continue
		}
		if aq.hq.EndNanos != 0 && ts >= aq.hq.EndNanos {
			continue
		}
		if aq.pred != nil && !aq.pred(row) {
			continue
		}
		aq.matched.Add(1)
		aq.countersDirty.Store(true)
		anyMatch = true
		if !aq.sampler.Keep() {
			continue
		}
		aq.sampled.Add(1)
		vals := make([]event.Value, len(aq.colIdx))
		for i, idx := range aq.colIdx {
			vals[i] = ev.At(idx)
		}
		select {
		case a.queue <- queued{q: aq, tuple: transport.Tuple{
			RequestID: ev.RequestID, TsNanos: ts, Values: vals,
		}}:
		default:
			aq.drops.Add(1)
			a.queueDrops.Add(1)
		}
	}
	if anyMatch {
		a.matched.Add(1)
	}
}

// shipper drains the queue, batching per query, flushing on size or timer.
func (a *Agent) shipper() {
	defer a.wg.Done()
	pending := make(map[*activeQuery][]transport.Tuple)
	ticker := time.NewTicker(a.cfg.FlushInterval)
	defer ticker.Stop()

	flush := func(aq *activeQuery, tuples []transport.Tuple) {
		batch := transport.TupleBatch{
			QueryID:      aq.hq.QueryID,
			HostID:       a.cfg.HostID,
			TypeIdx:      aq.hq.TypeIdx,
			Tuples:       tuples,
			MatchedTotal: aq.matched.Load(),
			SampledTotal: aq.sampled.Load(),
			QueueDrops:   aq.drops.Load(),
		}
		aq.countersDirty.Store(false)
		if err := a.cfg.Sink.SendBatch(batch); err != nil {
			a.sinkErrors.Add(1)
			return
		}
		a.shipped.Add(uint64(len(tuples)))
	}

	flushAll := func() {
		for aq, tuples := range pending {
			if len(tuples) > 0 {
				flush(aq, tuples)
				delete(pending, aq)
			}
		}
		// Counter-only heartbeats for queries with fresh totals but no
		// tuples (heavy sampling or all-drop situations).
		a.mu.Lock()
		actives := make([]*activeQuery, 0, len(a.queries))
		for _, aq := range a.queries {
			actives = append(actives, aq)
		}
		a.mu.Unlock()
		for _, aq := range actives {
			if aq.countersDirty.Load() && len(pending[aq]) == 0 {
				flush(aq, nil)
			}
		}
	}

	for {
		select {
		case item := <-a.queue:
			tuples := append(pending[item.q], item.tuple)
			if len(tuples) >= a.cfg.BatchSize {
				flush(item.q, tuples)
				delete(pending, item.q)
			} else {
				pending[item.q] = tuples
			}
		case <-ticker.C:
			flushAll()
			a.PruneExpired(a.cfg.Clock())
		case <-a.done:
			// Drain what's already queued, then flush and exit.
			for {
				select {
				case item := <-a.queue:
					pending[item.q] = append(pending[item.q], item.tuple)
					continue
				default:
				}
				break
			}
			flushAll()
			return
		}
	}
}

// Flush synchronously pushes pending batches out (test and shutdown aid):
// it waits for the queue to drain and one flush cycle to complete.
func (a *Agent) Flush() {
	// Wait for the queue to empty, then for a tick to flush pending
	// batches. Bounded wait: 50 flush intervals.
	deadline := time.Now().Add(50 * a.cfg.FlushInterval)
	for len(a.queue) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(2 * a.cfg.FlushInterval)
}

// Stats snapshots the agent counters.
func (a *Agent) Stats() Stats {
	return Stats{
		Logged:     a.logged.Load(),
		Matched:    a.matched.Load(),
		Shipped:    a.shipped.Load(),
		QueueDrops: a.queueDrops.Load(),
		SinkErrors: a.sinkErrors.Load(),
	}
}

// Close stops the shipper after a final flush. The agent must not be used
// afterwards.
func (a *Agent) Close() {
	a.closed.Do(func() {
		close(a.done)
		a.wg.Wait()
	})
}
