package host

import (
	"sync"
	"testing"
	"time"

	"scrub/internal/event"
	"scrub/internal/expr"
	"scrub/internal/obs"
	"scrub/internal/replay"
	"scrub/internal/transport"
)

// The zero-allocation guarantees below are regression tests for the
// chunked shipping pipeline: Log must not touch the heap either when no
// query is active or on the match-and-enqueue path (projection lands in
// pooled chunk memory, sampling is an atomic decrement, and only full
// chunks cross a channel).

func TestLogNoQueriesZeroAllocs(t *testing.T) {
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:          SinkFunc(func(transport.TupleBatch) error { return nil }),
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	if allocs := testing.AllocsPerRun(1000, func() { a.Log(ev) }); allocs != 0 {
		t.Errorf("no-query Log allocates %.1f/op, want 0", allocs)
	}
}

func TestLogMatchAndEnqueueZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; AllocsPerRun over the pooled dispatch context is meaningless")
	}
	// BatchSize 4096 with an hour-long flush interval keeps the whole
	// measurement inside one pooled chunk, so the steady state — predicate,
	// counters, projection, chunk append — is what AllocsPerRun sees.
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:      SinkFunc(func(transport.TupleBatch) error { return nil }),
		QueueSize: 1 << 16, BatchSize: 4096,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid",
		Pred: expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"},
			R: expr.Lit{Val: event.Float(0.5)}},
		Columns: []string{"user_id", "city"},
	}); err != nil {
		t.Fatal(err)
	}
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	a.Log(ev) // allocate and size the first chunk
	if allocs := testing.AllocsPerRun(1000, func() { a.Log(ev) }); allocs != 0 {
		t.Errorf("match-and-enqueue Log allocates %.1f/op, want 0", allocs)
	}
	a.Flush()
	if st := a.Stats(); st.Shipped == 0 {
		t.Error("measured tuples never shipped")
	}
}

func TestLogInstrumentedZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; AllocsPerRun over the pooled dispatch context is meaningless")
	}
	// With a metrics registry attached, Log additionally bumps the obs
	// counters, times 1-in-64 calls into the latency histogram, and charges
	// 1-in-64 matches to the query's cost meter. None of that may allocate:
	// the instruments are fixed-shape atomics registered once at startup.
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:      SinkFunc(func(transport.TupleBatch) error { return nil }),
		QueueSize: 1 << 16, BatchSize: 4096,
		FlushInterval: time.Hour,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid",
		Pred: expr.Binary{Op: expr.OpGt,
			L: expr.FieldRef{Type: "bid", Name: "bid_price"},
			R: expr.Lit{Val: event.Float(0.5)}},
		Columns: []string{"user_id", "city"},
	}); err != nil {
		t.Fatal(err)
	}
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	a.Log(ev) // allocate and size the first chunk
	if allocs := testing.AllocsPerRun(1000, func() { a.Log(ev) }); allocs != 0 {
		t.Errorf("instrumented Log allocates %.1f/op, want 0", allocs)
	}
}

func TestLogTwoQueriesZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector; AllocsPerRun over the pooled dispatch context is meaningless")
	}
	// With two subscribers on the type, Log takes the memoized shared-
	// dispatch path instead of the solo fast path — it must stay
	// allocation-free too.
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:      SinkFunc(func(transport.TupleBatch) error { return nil }),
		QueueSize: 1 << 16, BatchSize: 4096,
		FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for qid := uint64(1); qid <= 2; qid++ {
		if err := a.Start(transport.HostQuery{
			QueryID: qid, EventType: "bid",
			Pred: expr.Binary{Op: expr.OpGt,
				L: expr.FieldRef{Type: "bid", Name: "bid_price"},
				R: expr.Lit{Val: event.Float(0.5)}},
			Columns: []string{"user_id", "city"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	a.Log(ev) // allocate and size the first chunks
	if allocs := testing.AllocsPerRun(1000, func() { a.Log(ev) }); allocs != 0 {
		t.Errorf("two-query Log allocates %.1f/op, want 0", allocs)
	}
}

func TestLogRecordingAmortizedAllocs(t *testing.T) {
	// With the record stream attached, Log additionally appends the
	// encoded event into the active chunk. That append is amortized — the
	// scratch buffer grows geometrically and seals copy in bulk — so the
	// per-event average must stay well under one allocation.
	rs, err := replay.Open(replay.Options{Catalog: testCatalog()})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	a, err := New(Config{
		HostID: "h", Service: "s", Catalog: testCatalog(),
		Sink:          SinkFunc(func(transport.TupleBatch) error { return nil }),
		FlushInterval: time.Hour,
		Record:        rs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ev := bidEvent(1, 42, "sf", 1.0, time.Now().UnixNano())
	for i := 0; i < 2000; i++ {
		a.Log(ev) // warm the encode scratch past its growth phase
	}
	if allocs := testing.AllocsPerRun(1000, func() { a.Log(ev) }); allocs >= 1 {
		t.Errorf("recording Log allocates %.2f/op, want amortized < 1", allocs)
	}
}

func TestHeartbeatRearmsOnSinkError(t *testing.T) {
	// A counter bump whose send fails must stay dirty and go out with the
	// next successful flush — not wait for the next tuple.
	sink := &collectSink{}
	a := newAgent(t, sink, func(c *Config) { c.FlushInterval = time.Hour })
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", SampleEvents: 0.0000001,
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	sink.fail.Store(true)
	for i := 0; i < 10; i++ {
		a.Log(bidEvent(uint64(i), 1, "x", 1, now))
	}
	a.Flush() // heartbeat attempted, sink down
	if st := a.Stats(); st.SinkErrors == 0 {
		t.Fatal("failed send not counted")
	}
	if len(sink.tuples()) != 0 {
		t.Fatal("sink recorded batches while failing")
	}
	sink.fail.Store(false)
	a.Flush() // re-armed dirty flag must resend without new events
	matched, _, _ := sink.lastCounters()
	if matched != 10 {
		t.Errorf("recovered heartbeat matched = %d, want 10", matched)
	}
}

func TestAccountingParity(t *testing.T) {
	// Agent-level stats and the counters ScrubCentral receives in batches
	// must agree — the P3 estimator consumes the batch side.
	sink := &collectSink{}
	a := newAgent(t, sink)
	if err := a.Start(transport.HostQuery{
		QueryID: 1, EventType: "bid", SampleEvents: 0.3,
		Columns: []string{"user_id"},
	}); err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	const n = 5000
	for i := 0; i < n; i++ {
		a.Log(bidEvent(uint64(i), 1, "x", 1, now))
	}
	a.Flush()
	matched, sampled, drops := sink.lastCounters()
	st := a.Stats()
	if matched != st.Matched || matched != n {
		t.Errorf("matched: batch %d, agent %d, want %d", matched, st.Matched, n)
	}
	if drops != st.QueueDrops || drops != 0 {
		t.Errorf("drops: batch %d, agent %d, want 0", drops, st.QueueDrops)
	}
	if got := uint64(len(sink.tuples())); got != sampled || got != st.Shipped {
		t.Errorf("tuples: sink %d, batch sampled %d, agent shipped %d", got, sampled, st.Shipped)
	}
}

func TestConcurrentLogStartStopPruneFlush(t *testing.T) {
	sink := &collectSink{}
	a := newAgent(t, sink)
	now := time.Now().UnixNano()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					a.Log(bidEvent(uint64(i), int64(w), "x", 1, now))
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				a.PruneExpired(time.Now())
				a.Flush()
			}
		}
	}()
	for i := 0; i < 40; i++ {
		qid := uint64(300 + i)
		hq := transport.HostQuery{QueryID: qid, EventType: "bid", Columns: []string{"city"}}
		if i%2 == 1 {
			// Expires almost immediately, so PruneExpired races Stop.
			hq.EndNanos = time.Now().Add(500 * time.Microsecond).UnixNano()
		}
		if err := a.Start(hq); err != nil {
			t.Error(err)
		}
		time.Sleep(time.Millisecond)
		a.Stop(qid)
	}
	close(stop)
	wg.Wait()
}
