package governor

import "testing"

func sec(cpuNs, bytes uint64) Usage {
	return Usage{CPUNs: cpuNs, Bytes: bytes, ElapsedNs: 1e9}
}

func TestUnlimitedNoop(t *testing.T) {
	tr := NewTracker()
	if a := tr.Evaluate(sec(1e9, 1e9), Budget{}, Config{}); a != ActionNone {
		t.Fatalf("unlimited budget acted: %v", a)
	}
	if tr.Mult() != 1 || tr.Shed() {
		t.Fatalf("tracker moved: mult=%g shed=%v", tr.Mult(), tr.Shed())
	}
}

func TestZeroElapsedNoop(t *testing.T) {
	tr := NewTracker()
	b := Budget{BytesPerSec: 1}
	if a := tr.Evaluate(Usage{Bytes: 1 << 20, ElapsedNs: 0}, b, Config{}); a != ActionNone {
		t.Fatalf("zero elapsed acted: %v", a)
	}
}

// The ladder: 1 → 1/2 → … → 1/64 (six halvings), then shed, then sticky.
func TestLadderDownToShed(t *testing.T) {
	tr := NewTracker()
	b := Budget{BytesPerSec: 1}
	u := sec(0, 1000) // always over
	wantMults := []float64{1.0 / 2, 1.0 / 4, 1.0 / 8, 1.0 / 16, 1.0 / 32, 1.0 / 64}
	for i, want := range wantMults {
		if a := tr.Evaluate(u, b, Config{}); a != ActionDownsample {
			t.Fatalf("step %d: action %v, want downsample", i, a)
		}
		if tr.Mult() != want {
			t.Fatalf("step %d: mult %g, want %g", i, tr.Mult(), want)
		}
	}
	if a := tr.Evaluate(u, b, Config{}); a != ActionShed {
		t.Fatalf("floor breach: action %v, want shed", a)
	}
	if !tr.Shed() {
		t.Fatal("not shed")
	}
	// Sticky: even a now-idle query stays shed.
	if a := tr.Evaluate(sec(0, 0), b, Config{}); a != ActionNone {
		t.Fatalf("post-shed action %v, want none", a)
	}
	if !tr.Shed() {
		t.Fatal("shed not sticky")
	}
}

func TestRecovery(t *testing.T) {
	tr := NewTracker()
	b := Budget{CPUPct: 0.10} // 10% of a core
	over := sec(200e6, 0)     // 20% used
	idle := sec(1e6, 0)       // 0.1% used
	if a := tr.Evaluate(over, b, Config{}); a != ActionDownsample {
		t.Fatalf("action %v, want downsample", a)
	}
	if a := tr.Evaluate(over, b, Config{}); a != ActionDownsample {
		t.Fatalf("action %v, want downsample", a)
	}
	if tr.Mult() != 0.25 {
		t.Fatalf("mult %g, want 0.25", tr.Mult())
	}
	if a := tr.Evaluate(idle, b, Config{}); a != ActionRecover {
		t.Fatalf("action %v, want recover", a)
	}
	if a := tr.Evaluate(idle, b, Config{}); a != ActionRecover {
		t.Fatalf("action %v, want recover", a)
	}
	if tr.Mult() != 1 {
		t.Fatalf("mult %g, want 1", tr.Mult())
	}
	// At full rate, under-budget load does nothing more.
	if a := tr.Evaluate(idle, b, Config{}); a != ActionNone {
		t.Fatalf("action %v, want none at mult 1", a)
	}
}

// Load just under budget neither halves nor recovers (hysteresis band).
func TestHysteresisBand(t *testing.T) {
	tr := NewTracker()
	b := Budget{CPUPct: 0.10}
	over := sec(300e6, 0) // 3× over
	tr.Evaluate(over, b, Config{})
	mid := sec(80e6, 0) // 80% of budget: inside the band
	if a := tr.Evaluate(mid, b, Config{}); a != ActionNone {
		t.Fatalf("action %v, want none in hysteresis band", a)
	}
	if tr.Mult() != 0.5 {
		t.Fatalf("mult %g, want 0.5", tr.Mult())
	}
}

func TestLoad(t *testing.T) {
	b := Budget{CPUPct: 0.5, BytesPerSec: 100}
	// CPU at 50% of a core = exactly at budget; bytes at 200/s = 2×.
	if l := Load(sec(500e6, 200), b); l != 2 {
		t.Fatalf("load %g, want 2 (bytes dominates)", l)
	}
	if l := Load(sec(250e6, 10), b); l != 0.5 {
		t.Fatalf("load %g, want 0.5", l)
	}
}

func TestBudgetMin(t *testing.T) {
	a := Budget{CPUPct: 0.1}
	b := Budget{CPUPct: 0.5, BytesPerSec: 100}
	m := a.Min(b)
	if m.CPUPct != 0.1 || m.BytesPerSec != 100 {
		t.Fatalf("min = %+v", m)
	}
	if got := (Budget{}).Min(b); got != b {
		t.Fatalf("unlimited.Min = %+v, want %+v", got, b)
	}
}

func TestEffectiveBudget(t *testing.T) {
	host := Budget{CPUPct: 0.1, BytesPerSec: 1000}
	explicit := Budget{BytesPerSec: 100}
	// Host under its cap: explicit budget only.
	if got := EffectiveBudget(explicit, host, false, 4); got != explicit {
		t.Fatalf("under cap: %+v", got)
	}
	// Host over its cap with 4 queries: equal share, min'd with explicit.
	got := EffectiveBudget(explicit, host, true, 4)
	if got.CPUPct != 0.025 || got.BytesPerSec != 100 {
		t.Fatalf("over cap: %+v", got)
	}
	// Unbudgeted query still gets held to the share.
	got = EffectiveBudget(Budget{}, host, true, 2)
	if got.CPUPct != 0.05 || got.BytesPerSec != 500 {
		t.Fatalf("unbudgeted share: %+v", got)
	}
	if got := EffectiveBudget(explicit, Budget{}, true, 2); got != explicit {
		t.Fatalf("no host cap: %+v", got)
	}
}

func TestCustomFloor(t *testing.T) {
	tr := NewTracker()
	b := Budget{BytesPerSec: 1}
	cfg := Config{MinMult: 0.5}
	if a := tr.Evaluate(sec(0, 10), b, cfg); a != ActionDownsample {
		t.Fatalf("action %v", a)
	}
	if a := tr.Evaluate(sec(0, 10), b, cfg); a != ActionShed {
		t.Fatalf("action %v, want shed at custom floor", a)
	}
}
