// Package governor enforces per-query host-impact budgets — the control
// half of the loop whose measurement half is internal/obs.
//
// Scrub's contract (paper §1, §5) is bounded impact on application hosts:
// selection, projection, and sampling exist to shrink what the host pays.
// A troubleshooter can still submit a query whose predicate matches
// everything or whose projection ships every column. The governor closes
// that hole: each query carries an optional budget (CPU share and bytes
// shipped per second, attached with the BUDGET clause at registration),
// the host agent measures actual cost per enforcement interval, and a
// Tracker degrades the query in stages rather than letting it breach the
// budget or killing it outright:
//
//	over budget  → halve the effective sampling-rate multiplier
//	…repeat…     → floor reached (MinMult): shed the query on this host
//	under budget → double the multiplier back toward 1
//
// Downsampling keeps results statistically honest — the effective rate
// ships with every batch so ScrubCentral widens the multistage-sampling
// error bounds accordingly (internal/sampling Eq. 1–3). Shedding is
// sticky for the query's remaining span on that host and is announced
// with an explicit BudgetShed marker, mirroring how lease expiry marks
// windows Degraded: the troubleshooter always sees *that* accuracy was
// traded, never silently wrong numbers.
//
// The package is pure bookkeeping (no clocks, no goroutines): the host
// agent drives Evaluate from its flush cycle with whatever clock it is
// configured with, which keeps enforcement deterministic under test.
package governor

// Budget caps one query's impact on one host. Zero fields are unlimited.
type Budget struct {
	// CPUPct is the share of one core the query may consume, as a
	// fraction in (0, 1]: 0.02 means 2% of a core.
	CPUPct float64
	// BytesPerSec caps encoded tuple-batch bytes shipped per second.
	BytesPerSec float64
}

// Unlimited reports whether the budget constrains nothing.
func (b Budget) Unlimited() bool { return b.CPUPct <= 0 && b.BytesPerSec <= 0 }

// Min combines two budgets field-wise, treating zero as unlimited.
func (b Budget) Min(o Budget) Budget {
	out := b
	if out.CPUPct <= 0 || (o.CPUPct > 0 && o.CPUPct < out.CPUPct) {
		out.CPUPct = o.CPUPct
	}
	if out.BytesPerSec <= 0 || (o.BytesPerSec > 0 && o.BytesPerSec < out.BytesPerSec) {
		out.BytesPerSec = o.BytesPerSec
	}
	return out
}

// Config tunes enforcement; the zero value uses the defaults below.
type Config struct {
	// HostBudget caps the *aggregate* impact of all queries on a host.
	// When the aggregate exceeds it, every query is additionally held to
	// an equal share (see EffectiveBudget) — even queries with no budget
	// of their own, so one host cap bounds total Scrub impact.
	HostBudget Budget
	// MinMult is the sampling-multiplier floor: once halving would go
	// below it the query is shed instead. Default 1/64.
	MinMult float64
	// RecoverBelow: when load (usage/budget) falls under this fraction
	// the multiplier doubles back toward 1. Default 0.45, just under
	// half — so recovery cannot immediately re-trip the halving.
	RecoverBelow float64
}

// DefaultMinMult is the sampling-multiplier floor before shedding.
const DefaultMinMult = 1.0 / 64

// DefaultRecoverBelow is the load fraction under which the multiplier
// recovers.
const DefaultRecoverBelow = 0.45

func (c Config) minMult() float64 {
	if c.MinMult > 0 {
		return c.MinMult
	}
	return DefaultMinMult
}

func (c Config) recoverBelow() float64 {
	if c.RecoverBelow > 0 {
		return c.RecoverBelow
	}
	return DefaultRecoverBelow
}

// Usage is one query's measured cost over one enforcement interval.
type Usage struct {
	CPUNs     uint64 // CPU nanoseconds spent on the query's hot path
	Bytes     uint64 // encoded bytes shipped for the query
	ElapsedNs int64  // interval length; <= 0 skips evaluation
}

// Action is the Tracker's decision for one interval.
type Action int

const (
	// ActionNone: within budget (or nothing to enforce); no change.
	ActionNone Action = iota
	// ActionDownsample: over budget; the multiplier was halved and the
	// caller must re-arm its sampler at Mult()·base rate.
	ActionDownsample
	// ActionRecover: comfortably under budget; the multiplier was
	// doubled back toward 1 and the sampler must be re-armed.
	ActionRecover
	// ActionShed: the floor was reached while still over budget; the
	// query must stop paying per-event cost on this host and announce
	// BudgetShed. Sticky for the query's remaining span.
	ActionShed
)

func (a Action) String() string {
	switch a {
	case ActionDownsample:
		return "downsample"
	case ActionRecover:
		return "recover"
	case ActionShed:
		return "shed"
	default:
		return "none"
	}
}

// Tracker holds one query's position on the degradation ladder. Not safe
// for concurrent use; the host agent drives it from its shipper goroutine.
type Tracker struct {
	mult float64
	shed bool
}

// NewTracker starts at full rate.
func NewTracker() *Tracker { return &Tracker{mult: 1} }

// Mult is the current effective sampling-rate multiplier in (0, 1].
func (t *Tracker) Mult() float64 { return t.mult }

// Shed reports whether the query has been shed on this host.
func (t *Tracker) Shed() bool { return t.shed }

// Load is usage relative to budget: the max over the budgeted dimensions
// of (rate used)/(rate allowed). 0 when nothing is budgeted or elapsed
// is unusable.
func Load(u Usage, b Budget) float64 {
	if u.ElapsedNs <= 0 {
		return 0
	}
	load := 0.0
	if b.CPUPct > 0 {
		if l := float64(u.CPUNs) / float64(u.ElapsedNs) / b.CPUPct; l > load {
			load = l
		}
	}
	if b.BytesPerSec > 0 {
		sec := float64(u.ElapsedNs) / 1e9
		if l := float64(u.Bytes) / sec / b.BytesPerSec; l > load {
			load = l
		}
	}
	return load
}

// Evaluate advances the ladder one interval and returns what the caller
// must apply. A shed tracker never acts again.
func (t *Tracker) Evaluate(u Usage, b Budget, cfg Config) Action {
	if t.shed || b.Unlimited() || u.ElapsedNs <= 0 {
		return ActionNone
	}
	load := Load(u, b)
	switch {
	case load > 1:
		next := t.mult / 2
		if next < cfg.minMult() {
			t.shed = true
			return ActionShed
		}
		t.mult = next
		return ActionDownsample
	case t.mult < 1 && load < cfg.recoverBelow():
		t.mult *= 2
		if t.mult > 1 {
			t.mult = 1
		}
		return ActionRecover
	}
	return ActionNone
}

// EffectiveBudget is the budget to enforce for one query this interval:
// its explicit budget, tightened to an equal share of the host-wide cap
// when the host aggregate is over that cap. nActive is the number of
// queries active on the host (>= 1 when called).
func EffectiveBudget(explicit, host Budget, hostOver bool, nActive int) Budget {
	if !hostOver || host.Unlimited() || nActive < 1 {
		return explicit
	}
	share := Budget{
		CPUPct:      host.CPUPct / float64(nActive),
		BytesPerSec: host.BytesPerSec / float64(nActive),
	}
	return explicit.Min(share)
}
