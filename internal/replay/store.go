package replay

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scrub/internal/event"
	"scrub/internal/obs"
)

// Options configures a Store. Zero values take the defaults noted.
type Options struct {
	// Catalog resolves event types when scanning. Required.
	Catalog *event.Catalog
	// Dir is the disk tier. Empty keeps sealed chunks in memory only.
	Dir string
	// ChunkBytes seals the active chunk when its payload reaches this
	// size (default 256 KiB).
	ChunkBytes int
	// ChunkAge seals a non-empty active chunk this long after its first
	// append (default 5s), so quiet streams still become scannable.
	ChunkAge time.Duration
	// MaxBytes caps total sealed bytes; oldest chunks are evicted first
	// (default 64 MiB).
	MaxBytes int64
	// MaxAge evicts chunks whose newest event is older than this
	// (default 15m).
	MaxAge time.Duration
	// MemBytes bounds sealed payloads kept in memory once they are on
	// disk (default 4 MiB). Scans read evicted payloads back from disk.
	MemBytes int64
	// Clock supplies time for age-based sealing and retention
	// (default time.Now; tests inject virtual clocks).
	Clock func() time.Time
	// Metrics, when non-nil, registers the store's scrub_host_replay_*
	// series (the record stream is host-side infrastructure).
	Metrics *obs.Registry
}

func (o *Options) fillDefaults() {
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 256 << 10
	}
	if o.ChunkAge <= 0 {
		o.ChunkAge = 5 * time.Second
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.MaxAge <= 0 {
		o.MaxAge = 15 * time.Minute
	}
	if o.MemBytes <= 0 {
		o.MemBytes = 4 << 20
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
}

// recBuf is the record hook's reusable encode scratch. Its bytes are
// overwritten by the next Append, so nothing may retain a slice of it —
// sealing must copy into a fresh allocation (chunk.data).
//
//scrub:pooled
type recBuf struct {
	b []byte
}

// sealed is one immutable sealed chunk. data is the full serialized
// form (header + payload + crc); it is nil when the payload has been
// dropped from the memory tier and must be read back from path.
type sealed struct {
	seq      uint64
	ix       Index
	data     []byte
	size     int64 // len(data) even when data is dropped
	onDisk   bool
	path     string
	sealedAt int64 // clock nanos at seal, for age retention of idle stores
}

// Store is the host-side record stream. Append is safe for concurrent
// use and designed for the Log hot path: one mutex, no per-event
// allocation beyond amortized buffer growth. Everything heavier —
// writing sealed chunks to disk, trimming the memory tier, retention —
// happens on a background flusher goroutine.
type Store struct {
	opt Options

	mu       sync.Mutex
	enc      recBuf // event-encode scratch, reused every Append
	active   recBuf // active chunk payload under construction
	activeIx Index
	firstNs  int64 // clock nanos of the active chunk's first append
	nextSeq  uint64
	chunks   []*sealed // oldest first
	total    int64     // sealed bytes, memory + disk
	memHeld  int64     // sealed bytes currently resident in memory
	closed   bool

	flushCh chan *sealed
	done    chan struct{}
	wg      sync.WaitGroup

	// Metrics (nil-safe: left unregistered when Options.Metrics is nil,
	// obs counters work standalone).
	recorded    obs.Counter
	recordBytes obs.Counter
	sealsTotal  obs.Counter
	evictions   obs.Counter
	flushDrops  obs.Counter
	scans       obs.Counter
	scanEvents  obs.Counter
	storeBytes  obs.Gauge
}

// Open creates a Store, recovering any sealed chunks already in
// Options.Dir. Recovery validates every chunk file wholesale: a
// truncated or corrupt file (a crash mid-write leaves exactly one, the
// highest sequence) is deleted and its events are gone; intact chunks
// replay bit-for-bit.
func Open(opt Options) (*Store, error) {
	opt.fillDefaults()
	if opt.Catalog == nil {
		return nil, fmt.Errorf("replay: Options.Catalog is required")
	}
	s := &Store{
		opt:     opt,
		flushCh: make(chan *sealed, 32),
		done:    make(chan struct{}),
	}
	s.enc.b = make([]byte, 0, 512)
	s.active.b = make([]byte, 0, opt.ChunkBytes+1024)
	if opt.Metrics != nil {
		reg := opt.Metrics
		reg.RegisterCounter("scrub_host_replay_recorded_total", "events appended to the record stream", &s.recorded)
		reg.RegisterCounter("scrub_host_replay_record_bytes_total", "encoded event bytes appended to the record stream", &s.recordBytes)
		reg.RegisterCounter("scrub_host_replay_seals_total", "record chunks sealed", &s.sealsTotal)
		reg.RegisterCounter("scrub_host_replay_evictions_total", "sealed chunks evicted by retention", &s.evictions)
		reg.RegisterCounter("scrub_host_replay_flush_drops_total", "sealed chunks not persisted because the flusher was backlogged", &s.flushDrops)
		reg.RegisterCounter("scrub_host_replay_scans_total", "replay scans started", &s.scans)
		reg.RegisterCounter("scrub_host_replay_scan_events_total", "events decoded and delivered by replay scans", &s.scanEvents)
		reg.RegisterGauge("scrub_host_replay_store_bytes", "sealed bytes currently retained (memory + disk)", &s.storeBytes)
	}
	if opt.Dir != "" {
		if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.wg.Add(1)
	go s.flusher()
	return s, nil
}

// chunkPath names chunk files so lexical order is sequence order.
func (s *Store) chunkPath(seq uint64) string {
	return filepath.Join(s.opt.Dir, fmt.Sprintf("chunk-%016d.rec", seq))
}

// recover loads sealed-chunk metadata from disk. Payloads stay on disk
// (data nil); scans read them back on demand.
func (s *Store) recover() error {
	ents, err := os.ReadDir(s.opt.Dir)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "chunk-") && strings.HasSuffix(n, ".rec") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		path := filepath.Join(s.opt.Dir, n)
		seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(n, "chunk-"), ".rec"), 10, 64)
		data, rerr := os.ReadFile(path)
		var ix Index
		if perr == nil && rerr == nil {
			ix, _, perr = DecodeChunk(data)
		}
		if perr != nil || rerr != nil {
			// Truncated tail from a crash mid-write, or garbage: drop it.
			os.Remove(path)
			continue
		}
		sealedAt := s.opt.Clock().UnixNano()
		if fi, err := os.Stat(path); err == nil {
			sealedAt = fi.ModTime().UnixNano()
		}
		s.chunks = append(s.chunks, &sealed{
			seq: seq, ix: ix, size: int64(len(data)), onDisk: true, path: path,
			sealedAt: sealedAt,
		})
		s.total += int64(len(data))
		if seq >= s.nextSeq {
			s.nextSeq = seq + 1
		}
	}
	s.retainLocked(s.opt.Clock().UnixNano())
	s.storeBytes.Set(s.total)
	return nil
}

// Append records one event. It is called from the agent's Log hot path:
// when recording is enabled the cost is one mutex, one encode into a
// reused buffer, and an index update — no per-event allocation beyond
// amortized growth of the chunk buffer.
//
//scrub:allowalloc(record-stream buffers grow amortized toward ChunkBytes and are reused across chunks; sealing allocates once per chunk, not per event)
func (s *Store) Append(ev *event.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.enc.b = event.AppendEvent(s.enc.b[:0], ev)
	n := len(s.enc.b)
	if s.activeIx.Count == 0 {
		s.firstNs = s.opt.Clock().UnixNano()
	}
	s.active.b = binary.AppendUvarint(s.active.b, uint64(n))
	s.active.b = append(s.active.b, s.enc.b...)
	s.activeIx.observeTs(ev.TimeNanos)
	s.activeIx.addType(ev.Schema.Name())
	s.activeIx.addRequest(ev.RequestID)
	s.activeIx.Count++
	// Size sealing happens inline; age sealing is the flusher ticker's
	// job so the hot path pays at most one Clock call per chunk.
	if len(s.active.b) >= s.opt.ChunkBytes {
		s.sealLocked()
	}
	s.mu.Unlock()
	s.recorded.Inc()
	s.recordBytes.Add(uint64(n))
}

// sealLocked freezes the active chunk. The payload is copied into the
// sealed chunk's own allocation — the active buffer (recBuf, pooled) is
// immediately reused for the next chunk.
func (s *Store) sealLocked() {
	if s.activeIx.Count == 0 {
		return
	}
	ix := s.activeIx
	c := &sealed{
		seq:      s.nextSeq,
		ix:       ix,
		data:     appendChunk(make([]byte, 0, chunkHdrSize+len(s.active.b)+4), &ix, s.active.b),
		sealedAt: s.opt.Clock().UnixNano(),
	}
	c.size = int64(len(c.data))
	if s.opt.Dir != "" {
		c.path = s.chunkPath(c.seq)
	}
	s.nextSeq++
	//scrub:allowretain(resetting the store's own scratch, not retaining it: the payload was copied into c.data above)
	s.active.b = s.active.b[:0]
	s.activeIx = Index{}
	s.chunks = append(s.chunks, c)
	s.total += c.size
	s.memHeld += c.size
	s.sealsTotal.Inc()
	s.retainLocked(c.sealedAt)
	s.storeBytes.Set(s.total)
	if s.opt.Dir != "" {
		select {
		case s.flushCh <- c:
		default:
			// Flusher backlogged: the chunk stays memory-only. Retention
			// by bytes still bounds it; only durability is lost for this
			// chunk.
			s.flushDrops.Inc()
		}
	}
}

// retainLocked evicts oldest-first until the byte and age policies
// hold. Age is measured from seal time in the store clock's domain —
// the same domain the cutoff comes from — so synthetic event
// timestamps in tests cannot trip wall-clock retention.
func (s *Store) retainLocked(nowNs int64) {
	cutoff := nowNs - int64(s.opt.MaxAge)
	for len(s.chunks) > 0 {
		c := s.chunks[0]
		if s.total <= s.opt.MaxBytes && c.sealedAt >= cutoff {
			break
		}
		s.chunks = s.chunks[1:]
		s.total -= c.size
		if c.data != nil {
			s.memHeld -= c.size
		}
		if c.onDisk {
			os.Remove(c.path)
		}
		c.data = nil
		s.evictions.Inc()
	}
	s.storeBytes.Set(s.total)
}

// trimMemLocked drops in-memory payloads (oldest first) that are safely
// on disk until the memory tier fits MemBytes.
func (s *Store) trimMemLocked() {
	for _, c := range s.chunks {
		if s.memHeld <= s.opt.MemBytes {
			return
		}
		if c.data != nil && c.onDisk {
			c.data = nil
			s.memHeld -= c.size
		}
	}
}

// flusher persists sealed chunks and maintains the tiers off the hot
// path. The ticker seals idle active chunks past ChunkAge and applies
// age retention even when nothing is being appended.
func (s *Store) flusher() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case c := <-s.flushCh:
			s.flushOne(c)
		case <-tick.C:
			s.mu.Lock()
			now := s.opt.Clock().UnixNano()
			if s.activeIx.Count > 0 && now-s.firstNs >= int64(s.opt.ChunkAge) {
				s.sealLocked()
			}
			s.retainLocked(now)
			s.mu.Unlock()
		case <-s.done:
			for {
				select {
				case c := <-s.flushCh:
					s.flushOne(c)
				default:
					return
				}
			}
		}
	}
}

// flushOne writes a sealed chunk to the disk tier in a single
// write-then-rename so a crash can never leave a half-written file
// under the final name, then trims the memory tier.
func (s *Store) flushOne(c *sealed) {
	s.mu.Lock()
	data, path := c.data, c.path
	evicted := c.data == nil && !c.onDisk
	s.mu.Unlock()
	if path == "" || data == nil {
		if !evicted && path != "" {
			s.flushDrops.Inc()
		}
		return
	}
	tmp := path + ".tmp"
	err := os.WriteFile(tmp, data, 0o644)
	if err == nil {
		err = os.Rename(tmp, path)
	}
	s.mu.Lock()
	if err == nil {
		c.onDisk = true
		s.trimMemLocked()
	} else {
		s.flushDrops.Inc()
		os.Remove(tmp)
	}
	s.mu.Unlock()
}

// Seal seals the active chunk immediately (tests and shutdown).
func (s *Store) Seal() {
	s.mu.Lock()
	s.sealLocked()
	s.mu.Unlock()
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Chunks      int
	TotalBytes  int64
	MemBytes    int64
	ActiveCount uint32
	Recorded    uint64
	Seals       uint64
	Evictions   uint64
}

// StoreStats reports the store's current occupancy.
func (s *Store) StoreStats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Chunks:      len(s.chunks),
		TotalBytes:  s.total,
		MemBytes:    s.memHeld + int64(len(s.active.b)),
		ActiveCount: s.activeIx.Count,
		Recorded:    s.recorded.Value(),
		Seals:       s.sealsTotal.Value(),
		Evictions:   s.evictions.Value(),
	}
}

// Scan replays every recorded event of the named type with TimeNanos in
// [fromNs, toNs), oldest chunk first, in append order within a chunk.
// Chunks are pruned on their index before any decode. The callback
// returns false to stop early. An empty typeName matches every type.
//
// Scan snapshots chunk references under the lock and decodes outside
// it: sealed data is immutable, and the active payload is copied.
func (s *Store) Scan(fromNs, toNs int64, typeName string, fn func(ev *event.Event) bool) error {
	type span struct {
		ix   Index
		data []byte
		path string
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("replay: store closed")
	}
	spans := make([]span, 0, len(s.chunks)+1)
	for _, c := range s.chunks {
		if !c.ix.Overlaps(fromNs, toNs) || (typeName != "" && !c.ix.MayContainType(typeName)) {
			continue
		}
		spans = append(spans, span{ix: c.ix, data: c.data, path: c.path})
	}
	if s.activeIx.Overlaps(fromNs, toNs) && (typeName == "" || s.activeIx.MayContainType(typeName)) {
		cp := make([]byte, len(s.active.b))
		copy(cp, s.active.b)
		ix := s.activeIx
		spans = append(spans, span{ix: ix, data: appendChunk(nil, &ix, cp[:len(cp):len(cp)])})
	}
	s.mu.Unlock()
	s.scans.Inc()

	cont := true
	for _, sp := range spans {
		if !cont {
			break
		}
		data := sp.data
		if data == nil {
			var err error
			data, err = os.ReadFile(sp.path)
			if err != nil {
				continue // evicted between snapshot and read
			}
		}
		_, payload, err := DecodeChunk(data)
		if err != nil {
			return err
		}
		err = DecodeRecords(payload, sp.ix.Count, s.opt.Catalog, func(ev *event.Event) bool {
			if ev.TimeNanos < fromNs || ev.TimeNanos >= toNs {
				return true
			}
			if typeName != "" && ev.Schema.Name() != typeName {
				return true
			}
			s.scanEvents.Inc()
			cont = fn(ev)
			return cont
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Close seals the active chunk, drains pending flushes, and stops the
// background flusher. Append becomes a no-op afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.sealLocked()
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	return nil
}
